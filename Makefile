GO ?= go

.PHONY: all build vet test race check bench fmt

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent packages (stream client/server,
# chaos simulator, parallel ingestion, collector CLI). -short skips the
# scale-1.0 end of the suite; the concurrency paths are fully exercised.
race:
	$(GO) test -race -short ./internal/twitter/ ./internal/pipeline/ ./cmd/...

check: build vet test race

bench:
	$(GO) test -bench=. -benchmem

fmt:
	gofmt -l -w .
