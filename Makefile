GO ?= go

.PHONY: all build vet test race check bench bench-paper fmt

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent packages (stream client/server,
# chaos simulator, metrics registry, parallel ingestion, collector CLI).
# -short skips the scale-1.0 end of the suite; the concurrency paths are
# fully exercised.
race:
	$(GO) test -race -short ./internal/obs/ ./internal/twitter/ ./internal/pipeline/ ./cmd/...

check: build vet test race

# Pipeline ingest benchmarks, archived as both benchstat-friendly text
# (BENCH_pipeline.txt) and machine-readable JSON (BENCH_pipeline.json) so
# perf PRs can prove their wins against a committed baseline.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count 3 ./internal/pipeline/ | tee BENCH_pipeline.txt
	$(GO) run ./cmd/benchjson -in BENCH_pipeline.txt -out BENCH_pipeline.json

# The full per-table/per-figure benchmark suite from the repo root.
bench-paper:
	$(GO) test -bench=. -benchmem

fmt:
	gofmt -l -w .
