GO ?= go

.PHONY: all build vet test race check bench benchcmp bench-paper fmt

# Packages on the ingest hot path whose benchmarks are archived and gated.
BENCH_PKGS = ./internal/pipeline/ ./internal/text/ ./internal/geo/
# Packages of the analytics engine (flat matrices + clustering), archived
# and gated separately from the ingest path.
ANALYTICS_PKGS = ./internal/cluster/ ./internal/mat/

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent packages (stream client/server,
# chaos simulator, metrics registry, parallel ingestion, collector CLI).
# -short skips the scale-1.0 end of the suite; the concurrency paths are
# fully exercised.
race:
	$(GO) test -race -short ./internal/obs/ ./internal/twitter/ ./internal/pipeline/ ./internal/cluster/ ./cmd/...

check: build vet test race

# Ingest hot-path benchmarks (pipeline, extractor, geocoder), archived as
# both benchstat-friendly text (BENCH_pipeline.txt) and machine-readable
# JSON (BENCH_pipeline.json) so perf PRs can prove their wins against a
# committed baseline.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count 3 $(BENCH_PKGS) | tee BENCH_pipeline.txt
	$(GO) run ./cmd/benchjson -in BENCH_pipeline.txt -out BENCH_pipeline.json
	$(GO) test -run '^$$' -bench . -benchmem -count 3 $(ANALYTICS_PKGS) | tee BENCH_analytics.txt
	$(GO) run ./cmd/benchjson -in BENCH_analytics.txt -out BENCH_analytics.json

# Run the hot-path benchmarks fresh and diff them against the committed
# baseline; fails when ns/op or allocs/op regress by more than 10% on any
# benchmark. (Absolute numbers are machine-dependent — run `make bench`
# on the same machine first for a meaningful gate.)
benchcmp:
	$(GO) test -run '^$$' -bench . -benchmem -count 3 $(BENCH_PKGS) > /tmp/benchcmp_new.txt
	$(GO) run ./cmd/benchjson -in /tmp/benchcmp_new.txt -out /tmp/benchcmp_new.json
	$(GO) run ./cmd/benchjson -compare BENCH_pipeline.json /tmp/benchcmp_new.json
	$(GO) test -run '^$$' -bench . -benchmem -count 3 $(ANALYTICS_PKGS) > /tmp/benchcmp_analytics_new.txt
	$(GO) run ./cmd/benchjson -in /tmp/benchcmp_analytics_new.txt -out /tmp/benchcmp_analytics_new.json
	$(GO) run ./cmd/benchjson -compare BENCH_analytics.json /tmp/benchcmp_analytics_new.json

# The full per-table/per-figure benchmark suite from the repo root.
bench-paper:
	$(GO) test -bench=. -benchmem

fmt:
	gofmt -l -w .
