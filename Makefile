GO ?= go

.PHONY: all build vet test race check chaos-shards trace-smoke vulncheck bench benchcmp bench-paper fuzz fmt

# Packages on the ingest hot path whose benchmarks are archived and gated.
BENCH_PKGS = ./internal/pipeline/ ./internal/text/ ./internal/geo/
# Packages of the analytics engine (flat matrices + clustering), archived
# and gated separately from the ingest path.
ANALYTICS_PKGS = ./internal/cluster/ ./internal/mat/
# The wire codec package; only the codec benchmarks are archived so the
# wire gate stays focused (TrackFilter etc. live in the pipeline suite).
WIRE_PKGS = ./internal/twitter/
WIRE_BENCH = ^Benchmark(DecodeTweet|DecodeTweetGeo|DecodeTweetStdlib|AppendTweet|AppendTweetStdlib|DecodeNDJSON)$$

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent packages (stream client/server,
# chaos simulator, metrics registry, parallel ingestion, collector CLI).
# -short skips the scale-1.0 end of the suite; the concurrency paths are
# fully exercised.
race:
	$(GO) test -race -short ./internal/obs/... ./internal/twitter/ ./internal/pipeline/ ./internal/cluster/ ./cmd/...

check: build vet test race

# Multi-shard chaos suite under the race detector: shard crashes, stalls,
# kill-during-checkpoint-save, cross-session resume, and the merge
# subcommand — each asserting bit-identical statistics against a
# single-process reference run.
chaos-shards:
	$(GO) test -race -count=1 -run 'Shard|Merge' ./internal/pipeline/ ./internal/twitter/ ./cmd/donorsense/

# End-to-end tracing smoke: a short sharded collect at 100% sampling must
# yield complete per-tweet waterfalls (stream read → decode → extract →
# geocode → fold → checkpoint) on /debug/traces, with shard+incarnation
# attribution — including across an injected shard kill — and a /statusz
# page reporting every shard.
trace-smoke:
	$(GO) test -race -count=1 -run 'TraceSmokeWaterfall|SupervisorTraceIncarnation|RingRaceStress' ./cmd/donorsense/ ./internal/pipeline/ ./internal/obs/trace/

# Known-vulnerability scan of the module graph (stdlib-only, so findings
# would come from the toolchain itself). Skips with a notice when the
# govulncheck binary is not installed; CI installs it.
vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vulncheck: govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# Ingest hot-path benchmarks (pipeline, extractor, geocoder), archived as
# both benchstat-friendly text (BENCH_pipeline.txt) and machine-readable
# JSON (BENCH_pipeline.json) so perf PRs can prove their wins against a
# committed baseline.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count 3 $(BENCH_PKGS) | tee BENCH_pipeline.txt
	$(GO) run ./cmd/benchjson -in BENCH_pipeline.txt -out BENCH_pipeline.json
	$(GO) test -run '^$$' -bench . -benchmem -count 3 $(ANALYTICS_PKGS) | tee BENCH_analytics.txt
	$(GO) run ./cmd/benchjson -in BENCH_analytics.txt -out BENCH_analytics.json
	$(GO) test -run '^$$' -bench '$(WIRE_BENCH)' -benchmem -count 3 $(WIRE_PKGS) | tee BENCH_wire.txt
	$(GO) run ./cmd/benchjson -in BENCH_wire.txt -out BENCH_wire.json

# Run the hot-path benchmarks fresh and diff them against the committed
# baseline; fails when ns/op or allocs/op regress by more than 10% on any
# benchmark. (Absolute numbers are machine-dependent — run `make bench`
# on the same machine first for a meaningful gate.)
benchcmp:
	$(GO) test -run '^$$' -bench . -benchmem -count 3 $(BENCH_PKGS) > /tmp/benchcmp_new.txt
	$(GO) run ./cmd/benchjson -in /tmp/benchcmp_new.txt -out /tmp/benchcmp_new.json
	$(GO) run ./cmd/benchjson -compare BENCH_pipeline.json /tmp/benchcmp_new.json
	$(GO) test -run '^$$' -bench . -benchmem -count 3 $(ANALYTICS_PKGS) > /tmp/benchcmp_analytics_new.txt
	$(GO) run ./cmd/benchjson -in /tmp/benchcmp_analytics_new.txt -out /tmp/benchcmp_analytics_new.json
	$(GO) run ./cmd/benchjson -compare BENCH_analytics.json /tmp/benchcmp_analytics_new.json
	$(GO) test -run '^$$' -bench '$(WIRE_BENCH)' -benchmem -count 3 $(WIRE_PKGS) > /tmp/benchcmp_wire_new.txt
	$(GO) run ./cmd/benchjson -in /tmp/benchcmp_wire_new.txt -out /tmp/benchcmp_wire_new.json
	$(GO) run ./cmd/benchjson -compare BENCH_wire.json /tmp/benchcmp_wire_new.json

# Differential fuzz of the wire codec against the encoding/json oracle
# (CI runs the same target for 30s on every push).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzWire -fuzztime 30s ./internal/twitter/

# The full per-table/per-figure benchmark suite from the repo root.
bench-paper:
	$(GO) test -bench=. -benchmem

fmt:
	gofmt -l -w .
