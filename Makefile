GO ?= go

.PHONY: all build vet test race check chaos-shards trace-smoke vulncheck bench benchcmp bench-userstore bench-userstore-baseline bench-incremental bench-incremental-baseline bench-serve bench-serve-baseline serve-smoke bench-paper fuzz fmt

# Packages on the ingest hot path whose benchmarks are archived and gated.
BENCH_PKGS = ./internal/pipeline/ ./internal/text/ ./internal/geo/
# Packages of the analytics engine (flat matrices + clustering), archived
# and gated separately from the ingest path.
ANALYTICS_PKGS = ./internal/cluster/ ./internal/mat/
# The wire codec package; only the codec benchmarks are archived so the
# wire gate stays focused (TrackFilter etc. live in the pipeline suite).
WIRE_PKGS = ./internal/twitter/
WIRE_BENCH = ^Benchmark(DecodeTweet|DecodeTweetGeo|DecodeTweetStdlib|AppendTweet|AppendTweetStdlib|DecodeNDJSON)$$

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent packages (stream client/server,
# chaos simulator, metrics registry, parallel ingestion, collector CLI).
# -short skips the scale-1.0 end of the suite; the concurrency paths are
# fully exercised.
race:
	$(GO) test -race -short ./internal/obs/... ./internal/twitter/ ./internal/pipeline/ ./internal/userstore/ ./internal/cluster/ ./internal/serve/ ./cmd/...

check: build vet test race

# Multi-shard chaos suite under the race detector: shard crashes, stalls,
# kill-during-checkpoint-save, cross-session resume, and the merge
# subcommand — each asserting bit-identical statistics against a
# single-process reference run.
chaos-shards:
	$(GO) test -race -count=1 -run 'Shard|Merge' ./internal/pipeline/ ./internal/twitter/ ./cmd/donorsense/

# End-to-end tracing smoke: a short sharded collect at 100% sampling must
# yield complete per-tweet waterfalls (stream read → decode → extract →
# geocode → fold → checkpoint) on /debug/traces, with shard+incarnation
# attribution — including across an injected shard kill — and a /statusz
# page reporting every shard.
trace-smoke:
	$(GO) test -race -count=1 -run 'TraceSmokeWaterfall|SupervisorTraceIncarnation|RingRaceStress' ./cmd/donorsense/ ./internal/pipeline/ ./internal/obs/trace/

# Known-vulnerability scan of the module graph (stdlib-only, so findings
# would come from the toolchain itself). Skips with a notice when the
# govulncheck binary is not installed; CI installs it.
vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vulncheck: govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# Ingest hot-path benchmarks (pipeline, extractor, geocoder), archived as
# both benchstat-friendly text (BENCH_pipeline.txt) and machine-readable
# JSON (BENCH_pipeline.json) so perf PRs can prove their wins against a
# committed baseline.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count 3 $(BENCH_PKGS) | tee BENCH_pipeline.txt
	$(GO) run ./cmd/benchjson -in BENCH_pipeline.txt -out BENCH_pipeline.json
	$(GO) test -run '^$$' -bench . -benchmem -count 3 $(ANALYTICS_PKGS) | tee BENCH_analytics.txt
	$(GO) run ./cmd/benchjson -in BENCH_analytics.txt -out BENCH_analytics.json
	$(GO) test -run '^$$' -bench '$(WIRE_BENCH)' -benchmem -count 3 $(WIRE_PKGS) | tee BENCH_wire.txt
	$(GO) run ./cmd/benchjson -in BENCH_wire.txt -out BENCH_wire.json

# Run the hot-path benchmarks fresh and diff them against the committed
# baseline; fails when ns/op or allocs/op regress by more than 10% on any
# benchmark. (Absolute numbers are machine-dependent — run `make bench`
# on the same machine first for a meaningful gate.)
benchcmp:
	$(GO) test -run '^$$' -bench . -benchmem -count 3 $(BENCH_PKGS) > /tmp/benchcmp_new.txt
	$(GO) run ./cmd/benchjson -in /tmp/benchcmp_new.txt -out /tmp/benchcmp_new.json
	$(GO) run ./cmd/benchjson -compare BENCH_pipeline.json /tmp/benchcmp_new.json
	$(GO) test -run '^$$' -bench . -benchmem -count 3 $(ANALYTICS_PKGS) > /tmp/benchcmp_analytics_new.txt
	$(GO) run ./cmd/benchjson -in /tmp/benchcmp_analytics_new.txt -out /tmp/benchcmp_analytics_new.json
	$(GO) run ./cmd/benchjson -compare BENCH_analytics.json /tmp/benchcmp_analytics_new.json
	$(GO) test -run '^$$' -bench '$(WIRE_BENCH)' -benchmem -count 3 $(WIRE_PKGS) > /tmp/benchcmp_wire_new.txt
	$(GO) run ./cmd/benchjson -in /tmp/benchcmp_wire_new.txt -out /tmp/benchcmp_wire_new.json
	$(GO) run ./cmd/benchjson -compare BENCH_wire.json /tmp/benchcmp_wire_new.json
	$(MAKE) bench-userstore
	$(MAKE) bench-incremental
	$(MAKE) bench-serve

# Columnar user-store benchmarks: the userstore package measuring memory
# footprint (bytes/user at 1M and 10M rows), update latency, and
# state-scan throughput.
USERSTORE_PKG = ./internal/userstore/
# The 1M-row subset rerun by the CI gate; the 10M benchmarks are
# baseline-only (minutes of wall clock and >1 GB of headroom).
USERSTORE_BENCH_1M = ^BenchmarkUserstore(Footprint1M|Update1M|StateScan1M)$$

# Full userstore suite (including 10M rows), archived as the committed
# baseline; the *_before files hold the replaced map-of-pointer-structs
# store measured identically, so the two sets diff directly. The 1M
# subset runs with the gate's exact invocation (same subset, one
# process, -count 3) so the committed numbers carry the same
# within-process interference the gate's rerun will.
bench-userstore-baseline:
	$(GO) test -run '^$$' -bench '$(USERSTORE_BENCH_1M)' -benchmem -count 3 $(USERSTORE_PKG) | tee BENCH_userstore.txt
	$(GO) test -run '^$$' -bench '^BenchmarkUserstore(Footprint10M|Update10M)$$' -benchmem -timeout 60m $(USERSTORE_PKG) | tee -a BENCH_userstore.txt
	$(GO) run ./cmd/benchjson -in BENCH_userstore.txt -out BENCH_userstore.json
	$(GO) test -run '^$$' -bench '^BenchmarkMapstore' -benchmem -timeout 60m $(USERSTORE_PKG) | tee BENCH_userstore_before.txt
	$(GO) run ./cmd/benchjson -in BENCH_userstore_before.txt -out BENCH_userstore_before.json

# CI gate: rerun the 1M-row userstore benchmarks fresh and fail when
# ns/op or allocs/op regress by more than 10% against the committed
# baseline. Benchmarks only in the baseline (the 10M set) are skipped by
# the comparer, so the gate stays fast.
bench-userstore:
	$(GO) test -run '^$$' -bench '$(USERSTORE_BENCH_1M)' -benchmem -count 3 $(USERSTORE_PKG) > /tmp/benchcmp_userstore_new.txt
	$(GO) run ./cmd/benchjson -in /tmp/benchcmp_userstore_new.txt -out /tmp/benchcmp_userstore_new.json
	$(GO) run ./cmd/benchjson -compare BENCH_userstore.json /tmp/benchcmp_userstore_new.json

# Incremental analytics benchmarks: one full-report refresh after a
# 10k-tweet delta lands on a 100k- or 1M-user store, incremental engine
# (BENCH_incremental.*) versus from-scratch Analyze at the same config
# (BENCH_incremental_before.*) — the ≥20× latency claim lives in the
# diff of the two files. The 1M benchmarks are baseline-only; the gate
# reruns the 100k subset.
REPORT_PKG = ./internal/report/

bench-incremental-baseline:
	$(GO) test -run '^$$' -bench '^BenchmarkIncrementalRefresh100k$$' -benchmem -count 3 $(REPORT_PKG) | tee BENCH_incremental.txt
	$(GO) test -run '^$$' -bench '^BenchmarkIncrementalRefresh1M$$' -benchmem -benchtime 10x -timeout 60m $(REPORT_PKG) | tee -a BENCH_incremental.txt
	$(GO) run ./cmd/benchjson -in BENCH_incremental.txt -out BENCH_incremental.json
	$(GO) test -run '^$$' -bench '^BenchmarkFromScratchAnalyze100k$$' -benchmem -count 3 $(REPORT_PKG) | tee BENCH_incremental_before.txt
	$(GO) test -run '^$$' -bench '^BenchmarkFromScratchAnalyze1M$$' -benchmem -benchtime 3x -timeout 60m $(REPORT_PKG) | tee -a BENCH_incremental_before.txt
	$(GO) run ./cmd/benchjson -in BENCH_incremental_before.txt -out BENCH_incremental_before.json

bench-incremental:
	$(GO) test -run '^$$' -bench '^BenchmarkIncrementalRefresh100k$$' -benchmem -count 3 $(REPORT_PKG) > /tmp/benchcmp_incremental_new.txt
	$(GO) run ./cmd/benchjson -in /tmp/benchcmp_incremental_new.txt -out /tmp/benchcmp_incremental_new.json
	$(GO) run ./cmd/benchjson -compare BENCH_incremental.json /tmp/benchcmp_incremental_new.json

# Query-API serving benchmarks: the epoch-cached read path (cached hit,
# 304 revalidation, cold parameterized render, concurrent readers with
# and without refresh churn). ns/op and allocs/op are gated — the cached
# hit and 304 paths must hold 0 allocs/op — and the churn pair's
# p99-ns/op columns carry the readers-never-stall-on-publish claim.
SERVE_PKG = ./internal/serve/

bench-serve-baseline:
	$(GO) test -run '^$$' -bench '^BenchmarkServe' -benchmem -count 3 $(SERVE_PKG) | tee BENCH_serve.txt
	$(GO) run ./cmd/benchjson -in BENCH_serve.txt -out BENCH_serve.json

# CI gate: rerun the serving benchmarks fresh against the committed
# baseline. The serving ops sit at ~100 ns where scheduler jitter on
# virtualized runners is ±15%, so the ns/op threshold is 25% — wide
# enough not to flap, far below the cost of any structural regression
# (a lock, a map lookup, or an allocation on the hot path is +50% or
# more). The allocs/op gate is exact regardless: 0 → anything is an
# unbounded regression at every threshold.
bench-serve:
	$(GO) test -run '^$$' -bench '^BenchmarkServe' -benchmem -count 3 $(SERVE_PKG) > /tmp/benchcmp_serve_new.txt
	$(GO) run ./cmd/benchjson -in /tmp/benchcmp_serve_new.txt -out /tmp/benchcmp_serve_new.json
	$(GO) run ./cmd/benchjson -threshold 25 -compare BENCH_serve.json /tmp/benchcmp_serve_new.json

# Live serving smoke: build the binaries, start a replayed stream and a
# collect -serve consumer, poll the query API to 200, assert a 304
# revalidation, then drive cmd/queryload against it for 5 seconds in
# strict mode (any transport error or non-200/304 status fails).
serve-smoke:
	$(GO) build -o /tmp/donorsense ./cmd/donorsense
	$(GO) build -o /tmp/queryload ./cmd/queryload
	sh scripts/serve_smoke.sh /tmp/donorsense /tmp/queryload

# Differential fuzz of the wire codec against the encoding/json oracle
# (CI runs the same target for 30s on every push).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzWire -fuzztime 30s ./internal/twitter/

# The full per-table/per-figure benchmark suite from the repo root.
bench-paper:
	$(GO) test -bench=. -benchmem

fmt:
	gofmt -l -w .
