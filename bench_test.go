package donorsense_test

// One benchmark per table and figure of the paper's evaluation, plus the
// ablation benches listed in DESIGN.md §4. Each bench times the
// computation that regenerates its artifact over a shared synthetic
// corpus; run cmd/benchtables to see the artifacts themselves.
//
//	go test -bench=. -benchmem

import (
	"sync"
	"testing"

	"donorsense/internal/cluster"
	"donorsense/internal/core"
	"donorsense/internal/gen"
	"donorsense/internal/mat"
	"donorsense/internal/organ"
	"donorsense/internal/pipeline"
	"donorsense/internal/text"
	"donorsense/internal/twitter"
)

// benchScale keeps `go test -bench=.` minutes, not hours; cmd/benchtables
// runs the same code at scale 0.5–1.0.
const benchScale = 0.05

var (
	benchOnce    sync.Once
	benchCorpus  *gen.Corpus
	benchDataset *pipeline.Dataset
	benchAtt     *core.Attention
	benchStates  map[int64]string
	benchRows    [][]float64
)

func benchSetup(b *testing.B) {
	b.Helper()
	benchOnce.Do(func() {
		benchCorpus = gen.Generate(gen.DefaultConfig(benchScale))
		benchDataset = pipeline.NewDataset()
		for _, t := range benchCorpus.Tweets {
			benchDataset.Process(t)
		}
		att, err := benchDataset.BuildAttention()
		if err != nil {
			panic(err)
		}
		benchAtt = att
		benchStates = benchDataset.StateOf()
		benchRows = att.Rows()
	})
	b.ResetTimer()
}

// BenchmarkTableI_DatasetStats times the full collect → augment → filter
// pass that produces Table I.
func BenchmarkTableI_DatasetStats(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := pipeline.NewDataset()
		for _, t := range benchCorpus.Tweets {
			d.Process(t)
		}
		if s := d.Stats(); s.Users == 0 {
			b.Fatal("empty dataset")
		}
	}
}

// BenchmarkFigure1_KeywordProduct times building the Context × Subject
// collection filter and compiling it to Stream API track phrases.
func BenchmarkFigure1_KeywordProduct(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := twitter.NewTrackFilter(organ.TrackTerms())
		if f.NumPhrases() != len(organ.Keywords()) {
			b.Fatal("keyword product mismatch")
		}
	}
}

// BenchmarkFigure2a_OrganPopularity times the users-per-organ histogram
// and its Spearman validation against OPTN transplant counts.
func BenchmarkFigure2a_OrganPopularity(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		counts := benchDataset.UsersPerOrgan()
		if counts[organ.Heart.Index()] == 0 {
			b.Fatal("no heart users")
		}
		if _, err := benchDataset.PopularityCorrelation(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2b_MultiOrganMentions times the tweets-vs-users
// multi-organ histograms.
func BenchmarkFigure2b_MultiOrganMentions(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tweets, users := benchDataset.MultiOrganHistogram()
		if tweets[0] == 0 || users[0] == 0 {
			b.Fatal("degenerate histogram")
		}
	}
}

// BenchmarkFigure3_OrganCharacterization times Û construction plus the
// Equation 1 membership and Equation 3 aggregation.
func BenchmarkFigure3_OrganCharacterization(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		oc, err := core.CharacterizeOrgans(benchAtt)
		if err != nil {
			b.Fatal(err)
		}
		_ = oc.CoMentionRank(organ.Heart)
	}
}

// BenchmarkFigure4_StateCharacterization times the Equation 2 membership
// and aggregation into per-state signatures.
func BenchmarkFigure4_StateCharacterization(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.CharacterizeRegions(benchAtt, benchStates); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5_RelativeRisk times the full per-(state, organ) RR
// analysis with confidence intervals.
func BenchmarkFigure5_RelativeRisk(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h, err := core.HighlightOrgans(benchAtt, benchStates)
		if err != nil {
			b.Fatal(err)
		}
		_ = h.StatesHighlighting(organ.Kidney)
	}
}

// BenchmarkFigure6_StateClustering times the Bhattacharyya distance
// matrix and agglomerative clustering of states.
func BenchmarkFigure6_StateClustering(b *testing.B) {
	benchSetup(b)
	rc, err := core.CharacterizeRegions(benchAtt, benchStates)
	if err != nil {
		b.Fatal(err)
	}
	rows, _ := rc.NonEmptyRows()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := cluster.PairwiseMatrix(rows, cluster.Bhattacharyya)
		if err != nil {
			b.Fatal(err)
		}
		dg, err := cluster.Agglomerative(m, cluster.AverageLinkage)
		if err != nil {
			b.Fatal(err)
		}
		_ = dg.LeafOrder()
	}
}

// BenchmarkFigure7_UserClustering times K-Means (k=12, the paper's
// choice) over the user attention rows plus a sampled silhouette.
func BenchmarkFigure7_UserClustering(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := cluster.KMeans(benchRows, cluster.KMeansConfig{K: 12, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cluster.SilhouetteSampled(benchRows, res.Labels, cluster.Euclidean, 500, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblation_UserVsTweetCharacterization contrasts the paper's
// user-based Û with the naive tweet-based alternative it argues against
// (§III-B): the tweet-based matrix is much larger and dominated by heavy
// tweeters.
func BenchmarkAblation_UserVsTweetCharacterization(b *testing.B) {
	benchSetup(b)
	b.Run("user-based", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bld := core.NewAttentionBuilder()
			benchDataset.EachUser(func(u *pipeline.UserRecord) {
				bld.Observe(u.ID, u.Mentions)
			})
			if _, err := bld.Build(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tweet-based", func(b *testing.B) {
		ex := text.NewExtractor()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Every tweet becomes its own matrix row — the
			// characterization the paper rejects as biased toward heavy
			// tweeters (and ~1.9× the rows).
			bld := core.NewAttentionBuilder()
			var row int64
			for _, t := range benchCorpus.Tweets {
				e := ex.Extract(t.Text)
				if !e.InContext() {
					continue
				}
				row++
				bld.Observe(row, e.Mentions)
			}
			if _, err := bld.Build(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_DistanceMetrics compares the affinity metrics for the
// Figure 6 state clustering (§IV-B2 argues for Bhattacharyya).
func BenchmarkAblation_DistanceMetrics(b *testing.B) {
	benchSetup(b)
	rc, err := core.CharacterizeRegions(benchAtt, benchStates)
	if err != nil {
		b.Fatal(err)
	}
	rows, _ := rc.NonEmptyRows()
	metrics := []struct {
		name string
		d    cluster.Distance
	}{
		{"bhattacharyya", cluster.Bhattacharyya},
		{"hellinger", cluster.Hellinger},
		{"euclidean", cluster.Euclidean},
		{"jensen-shannon", cluster.JensenShannon},
	}
	for _, m := range metrics {
		b.Run(m.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dm, err := cluster.PairwiseMatrix(rows, m.d)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := cluster.Agglomerative(dm, cluster.AverageLinkage); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_RRVsWinnerTakesAll contrasts the paper's relative-
// risk highlighting with the raw-count baseline (§IV-B1).
func BenchmarkAblation_RRVsWinnerTakesAll(b *testing.B) {
	benchSetup(b)
	b.Run("relative-risk", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.HighlightOrgans(benchAtt, benchStates); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("winner-takes-all", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.WinnerTakesAll(benchAtt, benchStates); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_AggregateFastPath contrasts the sparse group-mean
// fast path for Equation 3 with the literal (LᵀL)⁻¹LᵀÛ dense algebra.
func BenchmarkAblation_AggregateFastPath(b *testing.B) {
	benchSetup(b)
	u := benchAtt.Matrix()
	// Build the Equation 1 membership once (mirrors what
	// core.CharacterizeOrgans does internally).
	l := mat.NewMembership(benchAtt.Users(), organ.Count)
	for row := 0; row < benchAtt.Users(); row++ {
		l.Assign(row, benchAtt.PrimaryOrgan(row).Index())
	}
	b.Run("fast-diagonal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := l.Aggregate(u); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("general-inverse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := l.AggregateGeneral(u); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_KMeansKSweep times the model-selection sweep behind
// the paper's k = 12 choice.
func BenchmarkAblation_KMeansKSweep(b *testing.B) {
	benchSetup(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.SweepK(benchRows, []int{6, 12, 16}, 1, 300); err != nil {
			b.Fatal(err)
		}
	}
}
