#!/bin/sh
# serve_smoke.sh — end-to-end smoke of the live query API.
#
# Usage: serve_smoke.sh <donorsense-binary> <queryload-binary>
#
# Starts a replayed stream and a `collect -serve` consumer, polls the
# query API until it answers 200, asserts a 304 If-None-Match
# revalidation, then drives queryload for 5 seconds in strict mode.
set -eu

DS=$1
QL=$2
TMP=$(mktemp -d)
REPLAY_PID=""
COLLECT_PID=""
cleanup() {
	[ -n "$COLLECT_PID" ] && kill "$COLLECT_PID" 2>/dev/null || true
	[ -n "$REPLAY_PID" ] && kill "$REPLAY_PID" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT

REPLAY_PORT=$((20000 + $$ % 10000))
API_PORT=$((31000 + $$ % 10000))
BASE="http://127.0.0.1:$API_PORT"

"$DS" generate -scale 0.01 -seed 7 -out "$TMP/corpus.ndjson" 2>/dev/null

# Throttled replay so the stream outlives the whole smoke; the collector
# keeps refreshing (and republishing snapshots) while queryload runs.
"$DS" replay -in "$TMP/corpus.ndjson" -addr "127.0.0.1:$REPLAY_PORT" -rate 150 \
	>"$TMP/replay.log" 2>&1 &
REPLAY_PID=$!

"$DS" collect -url "http://127.0.0.1:$REPLAY_PORT" \
	-telemetry-addr "127.0.0.1:$API_PORT" -report-every 1s -serve \
	-k 6 -sweep '' -silhouette-sample 0 -progress-every 0 \
	>"$TMP/collect.out" 2>"$TMP/collect.err" &
COLLECT_PID=$!

# Poll the query API to 200 (404 until the first snapshot publishes,
# connection refused until the telemetry listener is up).
code=000
i=0
while [ "$i" -lt 150 ]; do
	code=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/api/epoch" || echo 000)
	[ "$code" = 200 ] && break
	i=$((i + 1))
	sleep 0.2
done
if [ "$code" != 200 ]; then
	echo "serve-smoke: /api/epoch never answered 200 (last status $code)" >&2
	cat "$TMP/collect.err" >&2
	exit 1
fi
echo "serve-smoke: /api/epoch answered 200"

# 304 revalidation. A refresh may republish between the two GETs (the
# ETag moves), so retry the pair a few times; one stable window suffices.
ok304=""
i=0
while [ "$i" -lt 10 ]; do
	etag=$(curl -s -D - -o /dev/null "$BASE/api/epoch" | tr -d '\r' |
		awk -F': ' 'tolower($1)=="etag"{print $2}')
	code=$(curl -s -o /dev/null -w '%{http_code}' \
		-H "If-None-Match: $etag" "$BASE/api/epoch")
	if [ "$code" = 304 ]; then
		ok304=yes
		break
	fi
	i=$((i + 1))
	sleep 0.3
done
if [ -z "$ok304" ]; then
	echo "serve-smoke: never observed a 304 revalidation" >&2
	exit 1
fi
echo "serve-smoke: If-None-Match re-GET answered 304"

"$QL" -base "$BASE" -duration 5s -c 4 -etag -strict

# Graceful shutdown: SIGTERM must end the collector cleanly (it prints
# its final analysis on the way out).
kill -TERM "$COLLECT_PID"
wait "$COLLECT_PID"
COLLECT_PID=""
kill -TERM "$REPLAY_PID" 2>/dev/null || true
wait "$REPLAY_PID" 2>/dev/null || true
REPLAY_PID=""
echo "serve-smoke: OK"
