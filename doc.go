// Package donorsense reproduces "Characterizing Organ Donation Awareness
// from Social Media" (Pacheco, Pinheiro, Cadeiras, Menezes — ICDE 2017):
// a social sensor that characterizes organ-donation awareness from
// Twitter conversations.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); the runnable entry points are:
//
//   - cmd/donorsense — generate / analyze / collect / replay CLI; collect
//     is fault-tolerant (stall detection, jittered backoff, rate-limit
//     schedule) and can checkpoint/resume its dataset atomically
//   - cmd/streamsim — the simulated Twitter Stream API server, with a
//     -chaos mode that injects disconnects, stalls, malformed lines,
//     delete notices, and 420/503 responses
//   - cmd/benchtables — regenerate every table and figure of the paper
//   - examples/ — quickstart, statemap, campaign, streaming
//
// The root-level benchmarks in bench_test.go time the computation behind
// each table and figure of the paper's evaluation, plus the ablations
// listed in DESIGN.md.
package donorsense
