package donorsense_test

// Benchmarks for the extension experiments (DESIGN.md lists them as
// optional/future-work features of the paper): multiple-testing
// correction of the Figure 5 map, the temporal burst sensor, user-role
// recovery, and the parallel pipeline front-end.

import (
	"sort"
	"testing"

	"donorsense/internal/core"
	"donorsense/internal/gen"
	"donorsense/internal/influence"
	"donorsense/internal/organ"
	"donorsense/internal/pipeline"
	"donorsense/internal/roles"
	"donorsense/internal/temporal"
	"donorsense/internal/text"
	"donorsense/internal/twitter"
)

// BenchmarkExtension_MultipleTestingCorrection times the BH/Bonferroni
// adjustment of the full (state, organ) relative-risk table.
func BenchmarkExtension_MultipleTestingCorrection(b *testing.B) {
	benchSetup(b)
	h, err := core.HighlightOrgans(benchAtt, benchStates)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, m := range []core.Correction{core.NoCorrection, core.BHCorrection, core.BonferroniCorrection} {
			if _, err := h.AdjustedHighlights(m); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkExtension_BurstDetection times the causal burst detector over
// a full collection window for all six organs.
func BenchmarkExtension_BurstDetection(b *testing.B) {
	benchSetup(b)
	cfg := gen.DefaultConfig(benchScale)
	series, err := temporal.NewSeries(cfg.Start, cfg.Days)
	if err != nil {
		b.Fatal(err)
	}
	d := pipeline.NewDataset()
	d.OnUSTweet = func(tw twitter.Tweet, ex text.Extraction) { series.Observe(tw, ex) }
	d.ProcessAll(benchCorpus.Tweets, 0)
	det := temporal.DefaultDetectorConfig()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := temporal.DetectAll(series, det); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtension_RoleRecovery times feature extraction, training, and
// evaluation of the user-role classifier.
func BenchmarkExtension_RoleRecovery(b *testing.B) {
	benchSetup(b)
	labelOf := func(id int64) (int, bool) {
		p, ok := benchCorpus.Profiles[id]
		return int(p.Role), ok
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		samples := roles.SamplesFromDataset(benchDataset, labelOf)
		train, test := roles.SplitTrainTest(samples, 0.7)
		nb, err := roles.Train(train, gen.NumRoles)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := roles.Evaluate(nb, test); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtension_ParallelPipeline contrasts the sequential pipeline
// with the sharded front-end.
func BenchmarkExtension_ParallelPipeline(b *testing.B) {
	benchSetup(b)
	for _, workers := range []int{1, 2, 4, 8} {
		name := map[int]string{1: "workers-1", 2: "workers-2", 4: "workers-4", 8: "workers-8"}[workers]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d := pipeline.NewDataset()
				d.ProcessAll(benchCorpus.Tweets, workers)
			}
		})
	}
}

// BenchmarkExtension_InfluencePlanning times the full campaign-planning
// path: synthetic follower graph over the dataset's users, cascade
// simulation, and greedy seed selection vs the baselines.
func BenchmarkExtension_InfluencePlanning(b *testing.B) {
	benchSetup(b)
	nodes := make([]influence.Node, 0, benchAtt.Users())
	benchDataset.EachUser(func(u *pipeline.UserRecord) {
		row := benchAtt.RowOf(u.ID)
		if row < 0 {
			return
		}
		nodes = append(nodes, influence.Node{
			UserID:    u.ID,
			StateCode: u.StateCode,
			Primary:   benchAtt.PrimaryOrgan(row),
			Activity:  u.Tweets,
		})
	})
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].UserID < nodes[j].UserID })
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := influence.SyntheticGraph(nodes, influence.DefaultGraphConfig())
		if err != nil {
			b.Fatal(err)
		}
		cfg := influence.DefaultCascadeConfig(organ.Lung)
		cfg.Runs = 16
		c, err := influence.NewCascade(g, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := influence.PlanCampaign(c, 3); err != nil {
			b.Fatal(err)
		}
	}
}
