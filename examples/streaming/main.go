// Streaming demonstrates the real-time social-sensor mode the paper's
// conclusion envisions: a live Stream API server replays the corpus over
// HTTP, a collector consumes it with the Figure 1 track filter, and the
// dataset is re-characterized on the fly — printing how the organ
// popularity ranking and the Kansas kidney signal sharpen as data
// accumulates.
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"donorsense/internal/core"
	"donorsense/internal/gen"
	"donorsense/internal/geo"
	"donorsense/internal/organ"
	"donorsense/internal/pipeline"
	"donorsense/internal/temporal"
	"donorsense/internal/text"
	"donorsense/internal/twitter"
)

func main() {
	// A stream server replaying a synthetic corpus, as cmd/streamsim
	// would, but in-process.
	corpus := gen.Generate(gen.DefaultConfig(0.05))
	broadcaster := twitter.NewBroadcaster()
	streamServer := twitter.NewStreamServer(broadcaster)
	// A replay is far burstier than a live stream; give subscribers a
	// deep buffer so the collector is not dropped as stalled.
	streamServer.SubscriberBuffer = 1 << 16
	server := httptest.NewServer(streamServer.Handler())
	defer server.Close()

	go func() {
		// Wait for the collector to subscribe before replaying, else the
		// head of the corpus is published to nobody.
		for broadcaster.NumSubscribers() == 0 {
			time.Sleep(10 * time.Millisecond)
		}
		for _, t := range corpus.Tweets {
			broadcaster.Publish(t)
		}
		broadcaster.Close()
	}()

	// The collector side: the paper's exact keyword filter, a reconnecting
	// client, and an incrementally updated dataset.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	client := &twitter.StreamClient{BaseURL: server.URL}
	tweets := make(chan twitter.Tweet, 4096)
	errc := make(chan error, 1)
	go func() { errc <- client.Filter(ctx, organ.TrackTerms(), tweets) }()

	dataset := pipeline.NewDataset()
	series, err := temporal.NewSeries(corpus.Config.Start, corpus.Config.Days)
	if err != nil {
		log.Fatal(err)
	}
	dataset.OnUSTweet = func(tw twitter.Tweet, ex text.Extraction) {
		series.Observe(tw, ex)
	}
	const snapshotEvery = 10000
	n := 0
	for t := range tweets {
		dataset.Process(t)
		n++
		if n%snapshotEvery == 0 {
			snapshot(dataset, n)
		}
	}
	if err := <-errc; err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstream ended after %d tweets — final state:\n", n)
	snapshot(dataset, n)

	// The live sensor's burst log: which awareness campaigns did the
	// stream reveal? (The generator plants Heart Month, Kidney Month,
	// and Donate Life Month; see internal/gen.DefaultEvents.)
	det := temporal.DefaultDetectorConfig()
	det.Threshold = 2.5
	bursts, err := temporal.DetectAll(series, det)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncampaigns detected in the stream:")
	if len(bursts) == 0 {
		fmt.Println("  none (try a larger -scale)")
	}
	for _, b := range bursts {
		fmt.Printf("  %-10s %s – %s  peak %d/day (z=%.1f)\n",
			b.Organ,
			series.Start().AddDate(0, 0, b.StartDay).Format("Jan 02 2006"),
			series.Start().AddDate(0, 0, b.EndDay).Format("Jan 02 2006"),
			b.Peak, b.Z)
	}
}

// snapshot prints the sensor's current reading.
func snapshot(d *pipeline.Dataset, n int) {
	s := d.Stats()
	fmt.Printf("\n--- after %d stream tweets: %d US users, %d US tweets ---\n",
		n, s.Users, s.TweetsCollected)
	rank := d.PopularityRank()
	fmt.Printf("  popularity: %v\n", rank)

	if s.Users < 500 {
		return // too early for geographic signals
	}
	attention, err := d.BuildAttention()
	if err != nil {
		return
	}
	h, err := core.HighlightOrgans(attention, d.StateOf())
	if err != nil {
		return
	}
	row := geo.StateIndex("KS")
	rr := h.Risks[row][organ.Kidney.Index()]
	if rr.Defined {
		sig := ""
		if rr.Highlighted() {
			sig = "  SIGNIFICANT"
		}
		fmt.Printf("  Kansas kidney RR=%.2f [%.2f, %.2f]%s\n",
			rr.RR.RR, rr.RR.Lower, rr.RR.Upper, sig)
	}
}
