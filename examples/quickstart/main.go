// Quickstart: synthesize a corpus, run the collection pipeline, and print
// the headline results of the paper — the dataset statistics (Table I),
// the organ popularity ranking with its OPTN validation (Figure 2a), and
// the organs each state over-discusses (Figure 5).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"donorsense/internal/core"
	"donorsense/internal/gen"
	"donorsense/internal/organ"
	"donorsense/internal/pipeline"
	"donorsense/internal/report"
)

func main() {
	// 1. A synthetic year of organ-donation tweets (scale 0.2 ≈ 14k US
	//    users; use 1.0 for the paper's full magnitude).
	corpus := gen.Generate(gen.DefaultConfig(0.2))

	// 2. Collect → augment → filter: every tweet runs through the keyword
	//    predicate and the geocoder; USA users are retained.
	dataset := pipeline.NewDataset()
	for _, tweet := range corpus.Tweets {
		dataset.Process(tweet)
	}

	// 3. Table I.
	fmt.Print(report.TableIText(dataset.Stats()))

	// 4. Figure 2(a): organ popularity and the transplant-count
	//    validation.
	fmt.Println()
	fmt.Print(report.UsersPerOrganText(dataset.UsersPerOrgan()))
	if sp, err := dataset.PopularityCorrelation(); err == nil {
		fmt.Print(report.SpearmanText(sp))
	}

	// 5. Figure 5: relative-risk highlighting per state.
	attention, err := dataset.BuildAttention()
	if err != nil {
		log.Fatal(err)
	}
	highlights, err := core.HighlightOrgans(attention, dataset.StateOf())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(report.HighlightText(highlights))

	// 6. The paper's headline anomaly: Kansas kidney conversations.
	fmt.Println()
	for _, o := range highlights.HighlightedOrgans("KS") {
		if o == organ.Kidney {
			fmt.Println("Kansas shows a significant excess of kidney conversations,")
			fmt.Println("matching its documented surplus of deceased kidney donors.")
		}
	}
}
