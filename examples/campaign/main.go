// Campaign demonstrates the intervention-design use the paper motivates:
// given a target organ (say, a lung-donation drive), use the
// characterization to decide (a) which states to run the campaign in and
// (b) which user segments to address — including the paper's §IV-A
// insight that users focused on one organ can be receptive to campaigns
// for a co-mentioned organ ("users who are more aware of lung transplant
// may be more influenced to get involved in programs related to heart
// transplant than kidney transplant").
//
//	go run ./examples/campaign [-organ lung]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"donorsense/internal/cluster"
	"donorsense/internal/core"
	"donorsense/internal/gen"
	"donorsense/internal/influence"
	"donorsense/internal/organ"
	"donorsense/internal/pipeline"
)

func main() {
	organName := flag.String("organ", "lung", "campaign target organ")
	scale := flag.Float64("scale", 0.3, "corpus scale")
	flag.Parse()
	target, ok := organ.Parse(*organName)
	if !ok {
		log.Fatalf("unknown organ %q", *organName)
	}

	corpus := gen.Generate(gen.DefaultConfig(*scale))
	dataset := pipeline.NewDataset()
	for _, tweet := range corpus.Tweets {
		dataset.Process(tweet)
	}
	attention, err := dataset.BuildAttention()
	if err != nil {
		log.Fatal(err)
	}
	states := dataset.StateOf()

	fmt.Printf("=== Campaign planner: %s donation ===\n\n", target)

	// 1. Where is awareness already high (reinforce) and where is it low
	//    (greenfield)? Rank states by attention to the target organ.
	regions, err := core.CharacterizeRegions(attention, states)
	if err != nil {
		log.Fatal(err)
	}
	type stateScore struct {
		code  string
		score float64
		users int
	}
	var scored []stateScore
	for i, code := range regions.StateCodes {
		if regions.GroupSizes[i] < 30 {
			continue // too few users to trust
		}
		scored = append(scored, stateScore{code, regions.K.At(i, target.Index()), regions.GroupSizes[i]})
	}
	sort.Slice(scored, func(i, j int) bool { return scored[i].score > scored[j].score })
	fmt.Printf("states by %s attention (n ≥ 30 users):\n", target)
	show := func(list []stateScore) {
		for _, s := range list {
			fmt.Printf("  %-4s attention=%.3f users=%d\n", s.code, s.score, s.users)
		}
	}
	fmt.Println(" highest (reinforce existing awareness):")
	show(scored[:min(5, len(scored))])
	fmt.Println(" lowest (greenfield for outreach):")
	show(scored[max(0, len(scored)-5):])

	// 2. Which other organs' communities are most receptive? Use the
	//    Figure 3 co-mention structure: communities that already devote
	//    attention to the target organ.
	organs, err := core.CharacterizeOrgans(attention)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncross-organ receptiveness (attention of each community to %s):\n", target)
	type recept struct {
		o organ.Organ
		v float64
	}
	var rs []recept
	for _, o := range organ.All() {
		if o == target {
			continue
		}
		rs = append(rs, recept{o, organs.Signature(o)[target.Index()]})
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].v > rs[j].v })
	for _, r := range rs {
		fmt.Printf("  %-10s community: %.4f of its attention on %s (n=%d users)\n",
			r.o, r.v, target, organs.GroupSizes[r.o.Index()])
	}

	// 3. Which user segments to message? Cluster users and rank clusters
	//    by centroid attention to the target organ.
	rows := attention.Rows()
	res, err := cluster.KMeans(rows, cluster.KMeansConfig{K: 12, Seed: 1, Restarts: 2})
	if err != nil {
		log.Fatal(err)
	}
	type seg struct {
		id    int
		v     float64
		size  int
		share float64
	}
	var segs []seg
	for c := range res.Centroids {
		segs = append(segs, seg{
			id: c, v: res.Centroids[c][target.Index()],
			size:  res.Sizes[c],
			share: float64(res.Sizes[c]) / float64(len(rows)),
		})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].v > segs[j].v })
	fmt.Println("\nuser segments (K-Means, k=12) ranked by target attention:")
	for _, s := range segs[:4] {
		fmt.Printf("  cluster %2d: %.3f attention, %d users (%.1f%% of population)\n",
			s.id, s.v, s.size, s.share*100)
	}
	reach := 0
	for _, s := range segs[:4] {
		reach += s.size
	}
	fmt.Printf("\ntargeting the top 4 segments reaches %d users\n", reach)

	// 4. Which accounts should seed the campaign? Simulate diffusion over
	//    a synthetic follower graph (state + interest homophily, loud
	//    hubs) and compare greedy seed selection against the baselines —
	//    the paper's "models of social influence" direction.
	nodes := make([]influence.Node, 0, attention.Users())
	dataset.EachUser(func(u *pipeline.UserRecord) {
		row := attention.RowOf(u.ID)
		if row < 0 {
			return
		}
		nodes = append(nodes, influence.Node{
			UserID:    u.ID,
			StateCode: u.StateCode,
			Primary:   attention.PrimaryOrgan(row),
			Activity:  u.Tweets,
		})
	})
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].UserID < nodes[j].UserID })
	graph, err := influence.SyntheticGraph(nodes, influence.DefaultGraphConfig())
	if err != nil {
		log.Fatal(err)
	}
	cascade, err := influence.NewCascade(graph, influence.DefaultCascadeConfig(target))
	if err != nil {
		log.Fatal(err)
	}
	plan, err := influence.PlanCampaign(cascade, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nseed selection over a %d-user follower graph (%d edges):\n",
		graph.Nodes(), graph.Edges())
	fmt.Printf("  greedy seeds reach %.0f users (%.0f interested in %s)\n",
		plan.Reach, plan.TopicReach, target)
	fmt.Printf("  top-degree baseline reaches %.0f, random baseline %.0f\n",
		plan.DegreeReach, plan.RandomReach)
	for _, s := range plan.Seeds {
		n := graph.Node(s)
		fmt.Printf("    seed user %d (%s, %s-focused, %d tweets, %d followers)\n",
			n.UserID, n.StateCode, n.Primary, n.Activity, graph.OutDegree(s))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
