// Statemap reproduces the paper's geographic analysis in depth: the
// Figure 5 relative-risk state map with the paper's three inset states
// (Louisiana, Massachusetts, Rhode Island), the Kansas/Midwest kidney
// validation against the OPTN donor-surplus finding, and the Figure 6
// hierarchical clustering of states into organ-conversation zones.
//
//	go run ./examples/statemap [-scale 0.5]
package main

import (
	"flag"
	"fmt"
	"log"

	"donorsense/internal/cluster"
	"donorsense/internal/core"
	"donorsense/internal/gen"
	"donorsense/internal/geo"
	"donorsense/internal/organ"
	"donorsense/internal/pipeline"
	"donorsense/internal/report"
)

func main() {
	scale := flag.Float64("scale", 0.5, "corpus scale; RR significance needs >= 0.5")
	flag.Parse()

	fmt.Printf("building dataset at scale %g...\n\n", *scale)
	corpus := gen.Generate(gen.DefaultConfig(*scale))
	dataset := pipeline.NewDataset()
	for _, tweet := range corpus.Tweets {
		dataset.Process(tweet)
	}
	attention, err := dataset.BuildAttention()
	if err != nil {
		log.Fatal(err)
	}
	states := dataset.StateOf()

	// --- Figure 5: the RR map ---
	highlights, err := core.HighlightOrgans(attention, states)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.HighlightText(highlights))

	// --- The paper's three insets: every organ's RR with its CI ---
	for _, inset := range []string{"LA", "MA", "RI"} {
		fmt.Printf("\ninset %s (significant RRs marked *):\n", inset)
		row := geo.StateIndex(inset)
		for _, r := range highlights.Risks[row] {
			if !r.Defined {
				fmt.Printf("  %-10s undefined (no mentions)\n", r.Organ)
				continue
			}
			mark := " "
			if r.Highlighted() {
				mark = "*"
			}
			fmt.Printf("  %-10s RR=%.2f [%.2f, %.2f] %s\n", r.Organ, r.RR.RR, r.RR.Lower, r.RR.Upper, mark)
		}
	}

	// --- Kansas validation (§IV-B1) ---
	fmt.Println("\nMidwest kidney check (Cao et al. 2016: only Kansas has a")
	fmt.Println("deceased kidney-donor surplus):")
	for _, code := range highlights.StatesHighlighting(organ.Kidney) {
		st, _ := geo.StateByCode(code)
		marker := ""
		if st.Region == geo.Midwest {
			marker = "  <-- Midwest"
		}
		fmt.Printf("  %s (%s)%s\n", code, st.Region, marker)
	}

	// --- Figure 6: clustering states into zones ---
	// Tiny states are dominated by sampling noise and would form outlier
	// singletons, so cluster only states with a meaningful user count
	// (the paper's 72k users gave every state a usable sample).
	regions, err := core.CharacterizeRegions(attention, states)
	if err != nil {
		log.Fatal(err)
	}
	var rows [][]float64
	var codes []string
	for i, code := range regions.StateCodes {
		if regions.GroupSizes[i] >= 60 {
			rows = append(rows, regions.K.Row(i))
			codes = append(codes, code)
		}
	}
	dist, err := cluster.PairwiseMatrix(rows, cluster.Bhattacharyya)
	if err != nil {
		log.Fatal(err)
	}
	dg, err := cluster.Agglomerative(dist, cluster.AverageLinkage)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(report.SimilarityHeatmapText(dist, codes, dg))

	// The paper reads Figure 6 as contiguous "zones of organ-related
	// conversation" along the leaf order (liver → lung → kidney → heart).
	// Annotate each leaf with the organ it leans toward (max RR point
	// estimate) to make the bands visible.
	fmt.Println("\nleaf order with each state's leaning organ (max RR):")
	for _, i := range dg.LeafOrder() {
		code := codes[i]
		row := geo.StateIndex(code)
		bestOrgan, bestRR := organ.Heart, 0.0
		for _, r := range highlights.Risks[row] {
			if r.Defined && r.RR.RR > bestRR {
				bestRR, bestOrgan = r.RR.RR, r.Organ
			}
		}
		fmt.Printf("  %-4s leans %-10s (RR=%.2f)\n", code, bestOrgan, bestRR)
	}
}
