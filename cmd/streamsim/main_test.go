package main

import (
	"encoding/json"
	"testing"

	"donorsense/internal/twitter"
)

// TestChaosSummaryJSON pins the machine-readable exit line's schema so
// CI scripts parsing it don't silently break.
func TestChaosSummaryJSON(t *testing.T) {
	st := twitter.ChaosStats{
		Connections: 7, Delivered: 100, Disconnects: 3, Stalls: 2,
		Malformed: 4, Oversized: 1, Deletes: 5, RateLimited: 6, ServerError: 8,
	}
	line, err := chaosSummaryJSON(st, 9)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal([]byte(line), &got); err != nil {
		t.Fatalf("summary not valid JSON: %v\n%s", err, line)
	}
	if got["event"] != "chaos_summary" {
		t.Errorf("event = %v, want chaos_summary", got["event"])
	}
	if got["delivered"] != 100.0 || got["connections"] != 7.0 || got["remaining"] != 9.0 {
		t.Errorf("top-level fields wrong: %s", line)
	}
	inj, ok := got["injected"].(map[string]any)
	if !ok {
		t.Fatalf("injected not an object: %s", line)
	}
	want := map[string]float64{
		"disconnects": 3, "stalls": 2, "malformed": 4, "oversized": 1,
		"deletes": 5, "rate_limited": 6, "server_errors": 8,
	}
	for k, v := range want {
		if inj[k] != v {
			t.Errorf("injected.%s = %v, want %g", k, inj[k], v)
		}
	}
}
