package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"donorsense/internal/obs"
	"donorsense/internal/twitter"
)

// TestChaosSummaryJSON pins the machine-readable exit line's schema so
// CI scripts parsing it don't silently break.
func TestChaosSummaryJSON(t *testing.T) {
	st := twitter.ChaosStats{
		Connections: 7, Delivered: 100, Disconnects: 3, Stalls: 2,
		Malformed: 4, Oversized: 1, Deletes: 5, RateLimited: 6, ServerError: 8,
	}
	line, err := chaosSummaryJSON(st, 9)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal([]byte(line), &got); err != nil {
		t.Fatalf("summary not valid JSON: %v\n%s", err, line)
	}
	if got["event"] != "chaos_summary" {
		t.Errorf("event = %v, want chaos_summary", got["event"])
	}
	if got["delivered"] != 100.0 || got["connections"] != 7.0 || got["remaining"] != 9.0 {
		t.Errorf("top-level fields wrong: %s", line)
	}
	inj, ok := got["injected"].(map[string]any)
	if !ok {
		t.Fatalf("injected not an object: %s", line)
	}
	want := map[string]float64{
		"disconnects": 3, "stalls": 2, "malformed": 4, "oversized": 1,
		"deletes": 5, "rate_limited": 6, "server_errors": 8,
	}
	for k, v := range want {
		if inj[k] != v {
			t.Errorf("injected.%s = %v, want %g", k, inj[k], v)
		}
	}
}

// TestShardDistribution: the preview must account for every corpus
// tweet, agree with the collector's routing hash, and register one gauge
// series per shard.
func TestShardDistribution(t *testing.T) {
	tweets := make([]twitter.Tweet, 500)
	for i := range tweets {
		tweets[i] = twitter.Tweet{ID: int64(i), User: twitter.User{ID: int64(i % 53)}}
	}
	reg := obs.NewRegistry()
	counts := shardDistribution(reg, tweets, 4)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(tweets) {
		t.Errorf("shard counts sum to %d, want %d", total, len(tweets))
	}
	for i := range tweets {
		s := twitter.ShardIndex(tweets[i].User.ID, 4)
		if s < 0 || s >= len(counts) {
			t.Fatalf("routing hash out of range: %d", s)
		}
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		want := fmt.Sprintf(`donorsense_sim_shard_tweets{shard="%d"} %d`, s, counts[s])
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if shardDistribution(reg, tweets, 0) != nil || shardDistribution(reg, tweets, 1) != nil {
		t.Error("shards <= 1 must be a no-op")
	}
}
