// Command streamsim runs the simulated Twitter Stream API server: it
// synthesizes a corpus and replays it over HTTP in the v1.1 streaming
// format (chunked, newline-delimited JSON) at a configurable rate.
// Clients connect to /1.1/statuses/filter.json?track=... exactly as they
// would to the real endpoint.
//
//	streamsim -addr :7700 -scale 0.02 -rate 500
//	donorsense collect -url http://127.0.0.1:7700 -max 5000
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"donorsense/internal/gen"
	"donorsense/internal/twitter"
)

func main() {
	addr := flag.String("addr", ":7700", "listen address")
	scale := flag.Float64("scale", 0.02, "corpus scale (1.0 = paper magnitude)")
	seed := flag.Uint64("seed", 1, "random seed")
	rate := flag.Float64("rate", 500, "tweets per second to replay (0 = as fast as possible)")
	loop := flag.Bool("loop", false, "replay the corpus forever instead of once")
	flag.Parse()

	if err := run(*addr, *scale, *seed, *rate, *loop); err != nil {
		fmt.Fprintln(os.Stderr, "streamsim:", err)
		os.Exit(1)
	}
}

func run(addr string, scale float64, seed uint64, rate float64, loop bool) error {
	cfg := gen.DefaultConfig(scale)
	cfg.Seed = seed
	fmt.Fprintf(os.Stderr, "generating corpus at scale %g...\n", scale)
	corpus := gen.Generate(cfg)
	fmt.Fprintf(os.Stderr, "corpus ready: %d tweets, %d users\n", len(corpus.Tweets), len(corpus.Profiles))

	b := twitter.NewBroadcaster()
	srv := &http.Server{Addr: addr, Handler: twitter.NewStreamServer(b).Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	go func() {
		<-ctx.Done()
		b.Close()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()

	go func() {
		var tick *time.Ticker
		if rate > 0 {
			tick = time.NewTicker(time.Duration(float64(time.Second) / rate))
			defer tick.Stop()
		}
		for {
			for _, t := range corpus.Tweets {
				if tick != nil {
					select {
					case <-tick.C:
					case <-ctx.Done():
						return
					}
				} else if ctx.Err() != nil {
					return
				}
				b.Publish(t)
			}
			if !loop {
				break
			}
		}
		fmt.Fprintln(os.Stderr, "replay complete; closing stream")
		b.Close()
	}()

	fmt.Fprintf(os.Stderr, "serving stream API on %s (filter: %s)\n", addr, twitter.FilterPath)
	err := srv.ListenAndServe()
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}
