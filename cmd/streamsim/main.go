// Command streamsim runs the simulated Twitter Stream API server: it
// synthesizes a corpus and replays it over HTTP in the v1.1 streaming
// format (chunked, newline-delimited JSON) at a configurable rate.
// Clients connect to /1.1/statuses/filter.json?track=... exactly as they
// would to the real endpoint.
//
//	streamsim -addr :7700 -scale 0.02 -rate 500
//	donorsense collect -url http://127.0.0.1:7700 -max 5000
//
// With -chaos the server switches to the fault-injecting replay harness:
// it delivers the corpus exactly once through injected mid-stream
// disconnects, stalls, malformed/oversized lines, delete notices, and
// 420/503 responses with Retry-After — the weather a 385-day collector
// must survive. At exit a chaos run prints one machine-readable JSON
// line on stdout summarizing every injected fault, so CI can diff the
// injected counts against what the collector under test observed.
//
//	streamsim -chaos -fault-rate 0.01 -stall 5s -ratelimit 0.05
//
// With -telemetry-addr the simulator also serves /metrics, /healthz and
// /debug/pprof, mirroring the collector's own telemetry endpoint.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"time"

	"donorsense/internal/gen"
	"donorsense/internal/obs"
	"donorsense/internal/twitter"
)

func main() {
	addr := flag.String("addr", ":7700", "listen address")
	scale := flag.Float64("scale", 0.02, "corpus scale (1.0 = paper magnitude)")
	seed := flag.Uint64("seed", 1, "random seed")
	rate := flag.Float64("rate", 500, "tweets per second to replay (0 = as fast as possible)")
	loop := flag.Bool("loop", false, "replay the corpus forever instead of once (ignored with -chaos)")
	chaos := flag.Bool("chaos", false, "serve the fault-injecting chaos harness instead of the clean broadcaster")
	faultRate := flag.Float64("fault-rate", 0.01, "chaos: per-tweet probability of an injected fault")
	stall := flag.Duration("stall", 5*time.Second, "chaos: silence duration of an injected stall")
	rateLimit := flag.Float64("ratelimit", 0.02, "chaos: per-connection probability of a 420 rate-limit response")
	serverErr := flag.Float64("servererr", 0.02, "chaos: per-connection probability of a 503 response")
	retryAfter := flag.Duration("retry-after", 2*time.Second, "chaos: Retry-After advertised on 420/503 responses")
	telemetryAddr := flag.String("telemetry-addr", "", "serve /metrics, /healthz, /debug/pprof on this address (empty = off)")
	shards := flag.Int("shards", 0, "preview the corpus load split a `collect -shards N` run would see (0 = off)")
	flag.Parse()

	cfg := chaosFlags{
		enabled:         *chaos,
		faultRate:       *faultRate,
		stall:           *stall,
		rateLimitRate:   *rateLimit,
		serverErrorRate: *serverErr,
		retryAfter:      *retryAfter,
	}
	if err := run(*addr, *scale, *seed, *rate, *loop, cfg, *telemetryAddr, *shards); err != nil {
		fmt.Fprintln(os.Stderr, "streamsim:", err)
		os.Exit(1)
	}
}

// chaosFlags carries the -chaos flag group into run.
type chaosFlags struct {
	enabled         bool
	faultRate       float64
	stall           time.Duration
	rateLimitRate   float64
	serverErrorRate float64
	retryAfter      time.Duration
}

// serveTelemetry starts the obs endpoint (when addr is non-empty) with
// gauge funcs over the simulator's state; configure, when non-nil, adds
// mode-specific /statusz sections before the listener starts.
func serveTelemetry(ctx context.Context, addr string, reg *obs.Registry, configure func(*obs.Server)) {
	if addr == "" {
		return
	}
	logger := obs.Logger("streamsim")
	srv := obs.NewServer(reg)
	srv.AddHealthCheck("simulator", func() (any, error) { return "serving", nil })
	if configure != nil {
		configure(srv)
	}
	go func() {
		logger.Info("telemetry listening", "addr", addr)
		if err := srv.ListenAndServe(ctx, addr); err != nil {
			logger.Error("telemetry server failed", "err", err)
		}
	}()
}

// shardDistribution computes the per-shard tweet counts a sharded
// collector (`collect -shards N`) would see for this corpus, registers
// them as donorsense_sim_shard_tweets{shard} gauges, and logs the split
// — a load-balance preview before committing to a shard count.
func shardDistribution(reg *obs.Registry, tweets []twitter.Tweet, shards int) []int {
	if shards <= 1 {
		return nil
	}
	counts := make([]int, shards)
	for i := range tweets {
		counts[twitter.ShardIndex(tweets[i].User.ID, shards)]++
	}
	g := reg.GaugeVec("donorsense_sim_shard_tweets",
		"Corpus tweets per collector shard (user-id hash split previewing collect -shards N).", "shard")
	for s, c := range counts {
		g.With(strconv.Itoa(s)).Set(float64(c))
	}
	obs.Logger("streamsim").Info("shard load split", "shards", shards, "tweets_per_shard", fmt.Sprint(counts))
	return counts
}

func run(addr string, scale float64, seed uint64, rate float64, loop bool, chaos chaosFlags, telemetryAddr string, shards int) error {
	cfg := gen.DefaultConfig(scale)
	cfg.Seed = seed
	logger := obs.Logger("streamsim")
	logger.Info("generating corpus", "scale", scale)
	corpus := gen.Generate(cfg)
	logger.Info("corpus ready", "tweets", len(corpus.Tweets), "users", len(corpus.Profiles))

	if chaos.enabled {
		return runChaos(addr, corpus.Tweets, rate, seed, chaos, telemetryAddr, shards)
	}

	b := twitter.NewBroadcaster()
	srv := &http.Server{Addr: addr, Handler: twitter.NewStreamServer(b).Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	reg := obs.NewRegistry()
	shardDistribution(reg, corpus.Tweets, shards)
	reg.GaugeFunc("donorsense_sim_subscribers",
		"Clients currently subscribed to the broadcast stream.",
		func() float64 { return float64(b.NumSubscribers()) })
	reg.Gauge("donorsense_sim_corpus_tweets", "Tweets in the replayed corpus.").
		Set(float64(len(corpus.Tweets)))
	// Wire-codec self-check: round-trip the corpus through the codec once
	// so a codec regression is caught before serving and the wire metric
	// families carry real values on /metrics.
	wm := twitter.NewWireMetrics(reg)
	dec := twitter.NewDecoder()
	wm.Observe(dec)
	var line []byte
	var decoded twitter.Tweet
	roundTripBad := 0
	for i := range corpus.Tweets {
		var err error
		line, err = twitter.AppendTweet(line[:0], &corpus.Tweets[i])
		if err != nil {
			roundTripBad++
			continue
		}
		if err := dec.Decode(line, &decoded); err != nil {
			roundTripBad++
		}
	}
	if roundTripBad > 0 {
		logger.Error("corpus wire round-trip failures", "count", roundTripBad)
	}
	serveTelemetry(ctx, telemetryAddr, reg, func(srv *obs.Server) {
		srv.AddStatus("simulator", func() obs.StatusSection {
			var sec obs.StatusSection
			sec.Field("mode", "broadcast")
			sec.Field("corpus_tweets", len(corpus.Tweets))
			sec.Field("subscribers", b.NumSubscribers())
			sec.Field("rate", rate)
			sec.Field("loop", loop)
			return sec
		})
	})

	go func() {
		<-ctx.Done()
		b.Close()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()

	go func() {
		var tick *time.Ticker
		if rate > 0 {
			tick = time.NewTicker(time.Duration(float64(time.Second) / rate))
			defer tick.Stop()
		}
		for {
			for _, t := range corpus.Tweets {
				if tick != nil {
					select {
					case <-tick.C:
					case <-ctx.Done():
						return
					}
				} else if ctx.Err() != nil {
					return
				}
				b.Publish(t)
			}
			if !loop {
				break
			}
		}
		logger.Info("replay complete; closing stream")
		b.Close()
	}()

	logger.Info("serving stream API", "addr", addr, "filter", twitter.FilterPath)
	err := srv.ListenAndServe()
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// chaosSummary is the machine-readable exit line of a -chaos run: the
// server-side ground truth of every injected fault, diffable in CI
// against the counters a collector under test reported.
type chaosSummary struct {
	Event       string `json:"event"` // always "chaos_summary"
	Connections int64  `json:"connections"`
	Delivered   int64  `json:"delivered"`
	Remaining   int    `json:"remaining"`
	Injected    struct {
		Disconnects int64 `json:"disconnects"`
		Stalls      int64 `json:"stalls"`
		Malformed   int64 `json:"malformed"`
		Oversized   int64 `json:"oversized"`
		Deletes     int64 `json:"deletes"`
		RateLimited int64 `json:"rate_limited"`
		ServerError int64 `json:"server_errors"`
	} `json:"injected"`
}

// chaosSummaryJSON renders the final stats line for a chaos run.
func chaosSummaryJSON(st twitter.ChaosStats, remaining int) (string, error) {
	s := chaosSummary{Event: "chaos_summary", Connections: st.Connections, Delivered: st.Delivered, Remaining: remaining}
	s.Injected.Disconnects = st.Disconnects
	s.Injected.Stalls = st.Stalls
	s.Injected.Malformed = st.Malformed
	s.Injected.Oversized = st.Oversized
	s.Injected.Deletes = st.Deletes
	s.Injected.RateLimited = st.RateLimited
	s.Injected.ServerError = st.ServerError
	b, err := json.Marshal(s)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// chaosMetrics registers scrape-time views of the injected-fault counters.
func chaosMetrics(reg *obs.Registry, cs *twitter.ChaosServer) {
	stat := func(field func(twitter.ChaosStats) int64) func() float64 {
		return func() float64 { return float64(field(cs.Stats())) }
	}
	reg.CounterFunc("donorsense_chaos_connections_total",
		"Streaming connections accepted (HTTP 200).", stat(func(s twitter.ChaosStats) int64 { return s.Connections }))
	reg.CounterFunc("donorsense_chaos_delivered_total",
		"Real tweets written to clients.", stat(func(s twitter.ChaosStats) int64 { return s.Delivered }))
	reg.CounterFunc("donorsense_chaos_disconnects_total",
		"Injected mid-stream disconnects.", stat(func(s twitter.ChaosStats) int64 { return s.Disconnects }))
	reg.CounterFunc("donorsense_chaos_stalls_total",
		"Injected stalls.", stat(func(s twitter.ChaosStats) int64 { return s.Stalls }))
	reg.CounterFunc("donorsense_chaos_malformed_total",
		"Injected malformed lines.", stat(func(s twitter.ChaosStats) int64 { return s.Malformed }))
	reg.CounterFunc("donorsense_chaos_oversized_total",
		"Injected oversized lines.", stat(func(s twitter.ChaosStats) int64 { return s.Oversized }))
	reg.CounterFunc("donorsense_chaos_deletes_total",
		"Injected delete notices.", stat(func(s twitter.ChaosStats) int64 { return s.Deletes }))
	reg.CounterFunc("donorsense_chaos_rate_limited_total",
		"Connections answered 420.", stat(func(s twitter.ChaosStats) int64 { return s.RateLimited }))
	reg.CounterFunc("donorsense_chaos_server_errors_total",
		"Connections answered 503.", stat(func(s twitter.ChaosStats) int64 { return s.ServerError }))
	reg.GaugeFunc("donorsense_chaos_remaining",
		"Corpus tweets not yet delivered.", func() float64 { return float64(cs.Remaining()) })
}

// runChaos serves the corpus through the exactly-once chaos harness.
func runChaos(addr string, tweets []twitter.Tweet, rate float64, seed uint64, chaos chaosFlags, telemetryAddr string, shards int) error {
	logger := obs.Logger("streamsim")
	cs := twitter.NewChaosServer(tweets, twitter.ChaosConfig{
		Seed:            seed,
		FaultRate:       chaos.faultRate,
		StallDuration:   chaos.stall,
		RateLimitRate:   chaos.rateLimitRate,
		ServerErrorRate: chaos.serverErrorRate,
		RetryAfter:      chaos.retryAfter,
		Rate:            rate,
	})
	srv := &http.Server{Addr: addr, Handler: cs.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()

	reg := obs.NewRegistry()
	shardDistribution(reg, tweets, shards)
	chaosMetrics(reg, cs)
	// Expose the wire-codec families too, so dashboards see one schema
	// whether they scrape the simulator or the collector.
	twitter.NewWireMetrics(reg)
	serveTelemetry(ctx, telemetryAddr, reg, func(srv *obs.Server) {
		srv.AddStatus("simulator", func() obs.StatusSection {
			st := cs.Stats()
			var sec obs.StatusSection
			sec.Field("mode", "chaos")
			sec.Field("corpus_tweets", len(tweets))
			sec.Field("delivered", st.Delivered)
			sec.Field("remaining", cs.Remaining())
			sec.Field("connections", st.Connections)
			sec.Field("injected_disconnects", st.Disconnects)
			sec.Field("injected_stalls", st.Stalls)
			return sec
		})
	})

	logger.Info("serving CHAOS stream API", "addr", addr,
		"fault_rate", chaos.faultRate, "stall", chaos.stall.String(),
		"ratelimit", chaos.rateLimitRate, "servererr", chaos.serverErrorRate)
	err := srv.ListenAndServe()
	st := cs.Stats()
	logger.Info("chaos run finished",
		"delivered", st.Delivered, "disconnects", st.Disconnects, "stalls", st.Stalls,
		"malformed", st.Malformed, "oversized", st.Oversized, "deletes", st.Deletes,
		"rate_limited", st.RateLimited, "server_errors", st.ServerError)
	if line, jerr := chaosSummaryJSON(st, cs.Remaining()); jerr == nil {
		fmt.Println(line)
	}
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}
