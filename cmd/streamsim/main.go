// Command streamsim runs the simulated Twitter Stream API server: it
// synthesizes a corpus and replays it over HTTP in the v1.1 streaming
// format (chunked, newline-delimited JSON) at a configurable rate.
// Clients connect to /1.1/statuses/filter.json?track=... exactly as they
// would to the real endpoint.
//
//	streamsim -addr :7700 -scale 0.02 -rate 500
//	donorsense collect -url http://127.0.0.1:7700 -max 5000
//
// With -chaos the server switches to the fault-injecting replay harness:
// it delivers the corpus exactly once through injected mid-stream
// disconnects, stalls, malformed/oversized lines, delete notices, and
// 420/503 responses with Retry-After — the weather a 385-day collector
// must survive.
//
//	streamsim -chaos -fault-rate 0.01 -stall 5s -ratelimit 0.05
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"donorsense/internal/gen"
	"donorsense/internal/twitter"
)

func main() {
	addr := flag.String("addr", ":7700", "listen address")
	scale := flag.Float64("scale", 0.02, "corpus scale (1.0 = paper magnitude)")
	seed := flag.Uint64("seed", 1, "random seed")
	rate := flag.Float64("rate", 500, "tweets per second to replay (0 = as fast as possible)")
	loop := flag.Bool("loop", false, "replay the corpus forever instead of once (ignored with -chaos)")
	chaos := flag.Bool("chaos", false, "serve the fault-injecting chaos harness instead of the clean broadcaster")
	faultRate := flag.Float64("fault-rate", 0.01, "chaos: per-tweet probability of an injected fault")
	stall := flag.Duration("stall", 5*time.Second, "chaos: silence duration of an injected stall")
	rateLimit := flag.Float64("ratelimit", 0.02, "chaos: per-connection probability of a 420 rate-limit response")
	serverErr := flag.Float64("servererr", 0.02, "chaos: per-connection probability of a 503 response")
	retryAfter := flag.Duration("retry-after", 2*time.Second, "chaos: Retry-After advertised on 420/503 responses")
	flag.Parse()

	cfg := chaosFlags{
		enabled:         *chaos,
		faultRate:       *faultRate,
		stall:           *stall,
		rateLimitRate:   *rateLimit,
		serverErrorRate: *serverErr,
		retryAfter:      *retryAfter,
	}
	if err := run(*addr, *scale, *seed, *rate, *loop, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "streamsim:", err)
		os.Exit(1)
	}
}

// chaosFlags carries the -chaos flag group into run.
type chaosFlags struct {
	enabled         bool
	faultRate       float64
	stall           time.Duration
	rateLimitRate   float64
	serverErrorRate float64
	retryAfter      time.Duration
}

func run(addr string, scale float64, seed uint64, rate float64, loop bool, chaos chaosFlags) error {
	cfg := gen.DefaultConfig(scale)
	cfg.Seed = seed
	fmt.Fprintf(os.Stderr, "generating corpus at scale %g...\n", scale)
	corpus := gen.Generate(cfg)
	fmt.Fprintf(os.Stderr, "corpus ready: %d tweets, %d users\n", len(corpus.Tweets), len(corpus.Profiles))

	if chaos.enabled {
		return runChaos(addr, corpus.Tweets, rate, seed, chaos)
	}

	b := twitter.NewBroadcaster()
	srv := &http.Server{Addr: addr, Handler: twitter.NewStreamServer(b).Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	go func() {
		<-ctx.Done()
		b.Close()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()

	go func() {
		var tick *time.Ticker
		if rate > 0 {
			tick = time.NewTicker(time.Duration(float64(time.Second) / rate))
			defer tick.Stop()
		}
		for {
			for _, t := range corpus.Tweets {
				if tick != nil {
					select {
					case <-tick.C:
					case <-ctx.Done():
						return
					}
				} else if ctx.Err() != nil {
					return
				}
				b.Publish(t)
			}
			if !loop {
				break
			}
		}
		fmt.Fprintln(os.Stderr, "replay complete; closing stream")
		b.Close()
	}()

	fmt.Fprintf(os.Stderr, "serving stream API on %s (filter: %s)\n", addr, twitter.FilterPath)
	err := srv.ListenAndServe()
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// runChaos serves the corpus through the exactly-once chaos harness.
func runChaos(addr string, tweets []twitter.Tweet, rate float64, seed uint64, chaos chaosFlags) error {
	cs := twitter.NewChaosServer(tweets, twitter.ChaosConfig{
		Seed:            seed,
		FaultRate:       chaos.faultRate,
		StallDuration:   chaos.stall,
		RateLimitRate:   chaos.rateLimitRate,
		ServerErrorRate: chaos.serverErrorRate,
		RetryAfter:      chaos.retryAfter,
		Rate:            rate,
	})
	srv := &http.Server{Addr: addr, Handler: cs.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()

	fmt.Fprintf(os.Stderr,
		"serving CHAOS stream API on %s (fault-rate %g, stall %s, ratelimit %g, servererr %g)\n",
		addr, chaos.faultRate, chaos.stall, chaos.rateLimitRate, chaos.serverErrorRate)
	err := srv.ListenAndServe()
	st := cs.Stats()
	fmt.Fprintf(os.Stderr,
		"chaos stats: %d delivered, %d disconnects, %d stalls, %d malformed, %d oversized, %d deletes, %d rate-limited, %d 503s\n",
		st.Delivered, st.Disconnects, st.Stalls, st.Malformed, st.Oversized, st.Deletes, st.RateLimited, st.ServerError)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}
