// Command queryload is a closed-loop load generator for the donorsense
// query API (donorsense serve, or donorsense collect -serve). It rotates
// a set of workers over the /api endpoints for a bounded duration and
// prints throughput, the latency distribution, and per-status counts:
//
//	queryload -base http://127.0.0.1:9090 -duration 5s -c 8 -etag
//
// The exit code doubles as a smoke check: nonzero when any transport
// error occurred, when no request completed, or (with -strict) when any
// response status was something other than 200 or 304.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"donorsense/internal/serve"
)

func main() {
	fs := flag.NewFlagSet("queryload", flag.ExitOnError)
	base := fs.String("base", "", "query API base URL, e.g. http://127.0.0.1:9090 (required)")
	duration := fs.Duration("duration", 5*time.Second, "load duration")
	concurrency := fs.Int("c", 4, "closed-loop workers")
	useETag := fs.Bool("etag", false, "replay each path's last ETag via If-None-Match (measures the 304 path)")
	paths := fs.String("paths", "", "comma-separated request paths (default: the fixed endpoints plus a top-k sample)")
	strict := fs.Bool("strict", false, "fail on any response status other than 200 or 304")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if *base == "" {
		fmt.Fprintln(os.Stderr, "queryload: -base is required")
		fs.Usage()
		os.Exit(2)
	}
	cfg := serve.LoadConfig{
		BaseURL:     *base,
		Concurrency: *concurrency,
		Duration:    *duration,
		UseETag:     *useETag,
	}
	if *paths != "" {
		for _, p := range strings.Split(*paths, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cfg.Paths = append(cfg.Paths, p)
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := serve.RunLoad(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "queryload:", err)
		os.Exit(1)
	}
	fmt.Print(res.String())

	switch {
	case res.Requests == 0:
		fmt.Fprintln(os.Stderr, "queryload: no request completed")
		os.Exit(1)
	case res.Errors > 0:
		fmt.Fprintf(os.Stderr, "queryload: %d transport errors\n", res.Errors)
		os.Exit(1)
	case *strict:
		for code := range res.StatusCounts {
			if code != http.StatusOK && code != http.StatusNotModified {
				fmt.Fprintf(os.Stderr, "queryload: strict mode: saw status %d\n", code)
				os.Exit(1)
			}
		}
	}
}
