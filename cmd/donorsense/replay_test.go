package main

import (
	"context"
	"net"
	"path/filepath"
	"testing"
	"time"

	"donorsense/internal/organ"
	"donorsense/internal/twitter"
)

func TestReplayServesCorpus(t *testing.T) {
	dir := t.TempDir()
	corpus := filepath.Join(dir, "corpus.ndjson")
	if err := cmdGenerate([]string{"-scale", "0.002", "-out", corpus}); err != nil {
		t.Fatal(err)
	}

	// Pick a free port.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	done := make(chan error, 1)
	go func() {
		done <- cmdReplay([]string{"-in", corpus, "-addr", addr})
	}()

	// Consume the replay with the stream client.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	client := &twitter.StreamClient{
		BaseURL:        "http://" + addr,
		InitialBackoff: 20 * time.Millisecond,
	}
	out := make(chan twitter.Tweet, 4096)
	errc := make(chan error, 1)
	go func() { errc <- client.Filter(ctx, organ.TrackTerms(), out) }()

	got := 0
	for range out {
		got++
	}
	if err := <-errc; err != nil {
		t.Fatalf("client: %v", err)
	}
	if got == 0 {
		t.Fatal("replay delivered no tweets")
	}
	// The replay server exits once interrupted; send it a synthetic
	// shutdown by cancelling is not wired — it closed the broadcaster
	// after the corpus, so the HTTP server is still up. Just verify the
	// goroutine hasn't errored yet.
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("replay exited with %v", err)
		}
	default:
		// still serving; fine
	}
}

func TestReplayMissingFile(t *testing.T) {
	if err := cmdReplay([]string{"-in", "/nonexistent.ndjson", "-addr", "127.0.0.1:0"}); err == nil {
		t.Error("missing corpus accepted")
	}
}
