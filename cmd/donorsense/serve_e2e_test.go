package main

import (
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"donorsense/internal/gen"
	"donorsense/internal/pipeline"
	"donorsense/internal/serve"
	"donorsense/internal/twitter"
)

// freeAddr grabs an ephemeral localhost port for a telemetry listener.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// apiGet fetches an API path, returning status, ETag header, and body.
func apiGet(t *testing.T, base, path, inm string) (int, string, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, "", nil
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header.Get("Etag"), body
}

// TestCollectServeEndToEnd runs the full live loop: a stream server, a
// collector with -serve publishing snapshots after each refresh, queries
// against the /api endpoints (200 then 304 on revalidation), a short
// cmd/queryload-style load run, and finally SIGTERM while a reader is
// hammering the API mid-request — asserting the drain semantics and a
// clean exit.
func TestCollectServeEndToEnd(t *testing.T) {
	corpus := gen.Generate(gen.DefaultConfig(0.01))
	b := twitter.NewBroadcaster()
	srv := twitter.NewStreamServer(b)
	srv.SubscriberBuffer = 1 << 16
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	addr := freeAddr(t)
	base := "http://" + addr

	// Run the collector with its final report swallowed (the stream never
	// ends on its own here; SIGTERM ends the run).
	collectDone := make(chan error, 1)
	stdout := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	go func() { _, _ = io.Copy(io.Discard, r) }()
	defer func() { os.Stdout = stdout }()
	go func() {
		collectDone <- cmdCollect([]string{
			"-url", hs.URL, "-k", "6", "-sweep", "", "-silhouette-sample", "0",
			"-report-every", "50ms", "-telemetry-addr", addr, "-serve",
			"-serve-top", "50", "-progress-every", "0",
		})
	}()
	defer w.Close()

	// Feed the corpus once the collector subscribes; keep the stream open
	// so the collector stays live until the signal.
	go func() {
		deadline := time.Now().Add(10 * time.Second)
		for b.NumSubscribers() == 0 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		for _, tw := range corpus.Tweets {
			b.Publish(tw)
		}
	}()

	// Poll until the first snapshot is served (the route 404s before).
	var etag string
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, tag, _ := apiGet(t, base, "/api/epoch", "")
		if code == http.StatusOK && tag != "" {
			etag = tag
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no snapshot served within deadline (last status %d)", code)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Wait for publishing to settle (all tweets folded), then assert the
	// steady-state revalidation answer is 304 with no body.
	for settle := 0; settle < 2; {
		time.Sleep(150 * time.Millisecond)
		_, tag, _ := apiGet(t, base, "/api/epoch", "")
		if tag == etag {
			settle++
		} else {
			etag, settle = tag, 0
		}
		if time.Now().After(deadline) {
			t.Fatal("snapshot never settled")
		}
	}
	code, _, body := apiGet(t, base, "/api/epoch", etag)
	if code != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("revalidation GET: status %d body %d bytes, want bare 304", code, len(body))
	}

	// The parameterized endpoints work over the live snapshot.
	if code, _, body = apiGet(t, base, "/api/top?k=3", ""); code != http.StatusOK {
		t.Fatalf("top?k=3: status %d: %s", code, body)
	}

	// A short closed-loop load run: every response is a 200 or, once the
	// per-path ETags warm up, a 304; no transport errors.
	res, err := serve.RunLoad(context.Background(), serve.LoadConfig{
		BaseURL:     base,
		Concurrency: 4,
		Duration:    1500 * time.Millisecond,
		UseETag:     true,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if res.Requests == 0 || res.Errors != 0 {
		t.Fatalf("load run: %d requests, %d errors\n%s", res.Requests, res.Errors, res)
	}
	for codeSeen := range res.StatusCounts {
		if codeSeen != http.StatusOK && codeSeen != http.StatusNotModified {
			t.Errorf("load run saw status %d\n%s", codeSeen, res)
		}
	}
	if res.NotModified == 0 {
		t.Errorf("load run with ETag reuse saw no 304s\n%s", res)
	}

	// SIGTERM while readers are mid-request: in-flight reads finish, late
	// arrivals get 503 + Retry-After, and collect exits cleanly.
	var badDrain atomic.Int64
	readerStop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 3; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-readerStop:
					return
				default:
				}
				resp, err := http.Get(base + "/api/stats")
				if err != nil {
					continue // listener closing is fine mid-shutdown
				}
				if resp.StatusCode == http.StatusServiceUnavailable &&
					resp.Header.Get("Retry-After") == "" {
					badDrain.Add(1)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	time.Sleep(50 * time.Millisecond) // readers in flight
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-collectDone:
		if err != nil {
			t.Fatalf("collect exited with error after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("collect did not exit after SIGTERM")
	}
	close(readerStop)
	readers.Wait()
	if n := badDrain.Load(); n != 0 {
		t.Errorf("%d drain 503s were missing Retry-After", n)
	}
}

// TestServeSubcommandOverCheckpoint boots the standalone read-only serve
// process over a saved checkpoint, queries it, and shuts it down.
func TestServeSubcommandOverCheckpoint(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "serve.ckpt")
	d := pipeline.SynthDataset(2000, 9)
	if err := d.SaveCheckpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	addr := freeAddr(t)
	base := "http://" + addr
	done := make(chan error, 1)
	go func() {
		done <- cmdServe([]string{
			"-checkpoint", ckpt, "-addr", addr, "-reload-every", "0",
			"-k", "6", "-silhouette-sample", "0",
		})
	}()

	deadline := time.Now().Add(20 * time.Second)
	var etag string
	for {
		code, tag, _ := apiGet(t, base, "/api/epoch", "")
		if code == http.StatusOK {
			etag = tag
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("serve never answered")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if code, _, _ := apiGet(t, base, "/api/epoch", etag); code != http.StatusNotModified {
		t.Fatalf("revalidation: status %d, want 304", code)
	}
	if code, _, body := apiGet(t, base, "/api/states", ""); code != http.StatusOK || len(body) == 0 {
		t.Fatalf("states: status %d", code)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited with error: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("serve did not exit after SIGTERM")
	}
}

// TestServeFlagValidation covers the fail-fast wiring checks.
func TestServeFlagValidation(t *testing.T) {
	if err := cmdCollect([]string{"-serve"}); err == nil ||
		!strings.Contains(err.Error(), "telemetry-addr") {
		t.Errorf("collect -serve without telemetry: err = %v", err)
	}
	if err := cmdCollect([]string{"-serve", "-telemetry-addr", "127.0.0.1:0"}); err == nil ||
		!strings.Contains(err.Error(), "report-every") {
		t.Errorf("collect -serve without report-every: err = %v", err)
	}
	if err := cmdCollect([]string{"-serve", "-telemetry-addr", "127.0.0.1:0",
		"-report-every", "1s", "-shards", "2"}); err == nil ||
		!strings.Contains(err.Error(), "single-shard") {
		t.Errorf("collect -serve with shards: err = %v", err)
	}
	if err := cmdServe(nil); err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Errorf("serve without checkpoint: err = %v", err)
	}
}
