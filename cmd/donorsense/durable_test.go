package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"donorsense/internal/gen"
	"donorsense/internal/pipeline"
	"donorsense/internal/twitter"
)

// durableCorpus is shared by the chaos/checkpoint integration tests; the
// generator is deterministic, so every test sees the same stream.
func durableCorpus() []twitter.Tweet {
	return gen.Generate(gen.DefaultConfig(0.01)).Tweets
}

// statsSection extracts the deterministic statistics region of an
// analysis report — Table I through Figure 2(b) (tweet/user counts,
// geo-tag rate, organs-per-tweet histogram, Spearman validation) — the
// region the equality assertions compare. Later sections involve
// clustering and are not guaranteed byte-stable across identical inputs.
func statsSection(t *testing.T, out string) string {
	t.Helper()
	start := strings.Index(out, "=== Table I")
	end := strings.Index(out, "=== Figure 3")
	if start < 0 || end < 0 || end <= start {
		t.Fatalf("output missing Table I / Figure 3 markers:\n%s", out)
	}
	return out[start:end]
}

// collectArgs are the common fast-reconnect settings for tests.
func collectArgs(url string, extra ...string) []string {
	args := []string{
		"-url", url,
		"-k", "6",
		"-sweep", "",
		"-stall-timeout", "300ms",
		"-backoff", "2ms",
		"-ratelimit-backoff", "20ms",
	}
	return append(args, extra...)
}

func TestCollectThroughChaosMatchesCleanRun(t *testing.T) {
	corpus := durableCorpus()

	clean := twitter.NewChaosServer(corpus, twitter.ChaosConfig{})
	cleanSrv := httptest.NewServer(clean.Handler())
	defer cleanSrv.Close()
	cleanOut := captureStdout(t, func() error {
		return cmdCollect(collectArgs(cleanSrv.URL))
	})

	chaos := twitter.NewChaosServer(corpus, twitter.ChaosConfig{
		Seed:            11,
		FaultRate:       0.01,
		StallDuration:   5 * time.Second, // client's 300ms stall timer fires first
		RateLimitRate:   0.2,
		ServerErrorRate: 0.2,
		RetryAfter:      10 * time.Millisecond, // rounds to a "0" header
	})
	chaosSrv := httptest.NewServer(chaos.Handler())
	defer chaosSrv.Close()
	chaosOut := captureStdout(t, func() error {
		return cmdCollect(collectArgs(chaosSrv.URL))
	})

	if got, want := statsSection(t, chaosOut), statsSection(t, cleanOut); got != want {
		t.Errorf("chaos-run statistics differ from fault-free run:\n--- chaos ---\n%s\n--- clean ---\n%s", got, want)
	}
	st := chaos.Stats()
	if st.Disconnects+st.Stalls+st.Malformed+st.Oversized+st.Deletes+st.RateLimited+st.ServerError == 0 {
		t.Error("chaos server injected nothing; the run was not exercised")
	}
	t.Logf("chaos injected: %+v", st)
}

func TestCollectCheckpointResumeMatchesUninterrupted(t *testing.T) {
	corpus := durableCorpus()
	ckpt := filepath.Join(t.TempDir(), "state.ckpt")

	// Baseline: one uninterrupted collection of the full corpus.
	clean := twitter.NewChaosServer(corpus, twitter.ChaosConfig{})
	cleanSrv := httptest.NewServer(clean.Handler())
	defer cleanSrv.Close()
	baseline := captureStdout(t, func() error {
		return cmdCollect(collectArgs(cleanSrv.URL))
	})

	// The same corpus split into two sessions around a collector restart:
	// session 1 collects the first half under chaos and checkpoints
	// (periodically and at shutdown); session 2 starts from the
	// checkpoint and collects the rest.
	faults := func(seed uint64) twitter.ChaosConfig {
		return twitter.ChaosConfig{
			Seed:          seed,
			FaultRate:     0.01,
			StallDuration: 5 * time.Second,
			RetryAfter:    10 * time.Millisecond,
		}
	}
	half := len(corpus) / 2
	srv1 := httptest.NewServer(twitter.NewChaosServer(corpus[:half], faults(21)).Handler())
	defer srv1.Close()
	captureStdout(t, func() error {
		return cmdCollect(collectArgs(srv1.URL, "-checkpoint", ckpt, "-checkpoint-every", "20ms"))
	})
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("session 1 left no checkpoint: %v", err)
	}

	srv2 := httptest.NewServer(twitter.NewChaosServer(corpus[half:], faults(22)).Handler())
	defer srv2.Close()
	resumed := captureStdout(t, func() error {
		return cmdCollect(collectArgs(srv2.URL, "-checkpoint", ckpt, "-checkpoint-every", "20ms"))
	})

	if got, want := statsSection(t, resumed), statsSection(t, baseline); got != want {
		t.Errorf("restart-resumed statistics differ from uninterrupted run:\n--- resumed ---\n%s\n--- uninterrupted ---\n%s", got, want)
	}

	// The periodic saves and the final save must never leave torn or
	// temporary files next to the snapshot — only the snapshot itself and
	// its rotated .bak predecessor.
	entries, err := os.ReadDir(filepath.Dir(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != filepath.Base(ckpt) && e.Name() != filepath.Base(pipeline.CheckpointBackupPath(ckpt)) {
			t.Errorf("stray file %q beside the checkpoint", e.Name())
		}
	}
}

// TestCollectWorkersThroughChaosMatchesCleanRun: live collection with
// -workers 4 under fault injection must print the exact same Table I /
// Figure 2 statistics as a fault-free sequential run — the bit-identical
// guarantee of the chunked parallel ingest, end to end through the CLI.
func TestCollectWorkersThroughChaosMatchesCleanRun(t *testing.T) {
	corpus := durableCorpus()

	clean := twitter.NewChaosServer(corpus, twitter.ChaosConfig{})
	cleanSrv := httptest.NewServer(clean.Handler())
	defer cleanSrv.Close()
	cleanOut := captureStdout(t, func() error {
		return cmdCollect(collectArgs(cleanSrv.URL))
	})

	chaos := twitter.NewChaosServer(corpus, twitter.ChaosConfig{
		Seed:            31,
		FaultRate:       0.01,
		StallDuration:   5 * time.Second,
		RateLimitRate:   0.2,
		ServerErrorRate: 0.2,
		RetryAfter:      10 * time.Millisecond,
	})
	chaosSrv := httptest.NewServer(chaos.Handler())
	defer chaosSrv.Close()
	parallelOut := captureStdout(t, func() error {
		return cmdCollect(collectArgs(chaosSrv.URL, "-workers", "4"))
	})

	if got, want := statsSection(t, parallelOut), statsSection(t, cleanOut); got != want {
		t.Errorf("parallel chaos-run statistics differ from sequential fault-free run:\n--- workers=4 chaos ---\n%s\n--- sequential clean ---\n%s", got, want)
	}
}
