// Sharded collection mode (collect -shards N) and the merge subcommand.
//
// With -shards N the collector routes the stream by user-id hash across
// N shard workers under a pipeline.Supervisor: each shard owns its own
// dataset and checkpoint file (<base>-shard-<i>), crashes and stalls are
// detected and restarted from the last checkpoint, and at stream end the
// shard datasets are merged — bit-identically to a single-process run.
//
// `donorsense merge` performs the same merge offline, from the shard
// checkpoint files of a finished (or interrupted) sharded run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"donorsense/internal/obs"
	"donorsense/internal/obs/trace"
	"donorsense/internal/organ"
	"donorsense/internal/pipeline"
	"donorsense/internal/report"
	"donorsense/internal/twitter"
)

// shardedCollectOptions carries the collect flags the sharded path uses.
type shardedCollectOptions struct {
	client           *twitter.StreamClient
	shards           int
	checkpoint       string
	checkpointEvery  time.Duration
	heartbeatTimeout time.Duration
	restartBackoff   time.Duration
	bufferCap        int
	maxTweets        int
	k                int
	sweep            string
	sil              int
	telemetryAddr    string
	progressEvery    time.Duration
	tracer           *trace.Tracer
	errRing          *obs.ErrorRing
}

// collectSharded consumes the stream through a shard supervisor and
// analyzes the merged result.
func collectSharded(ctx context.Context, stop context.CancelFunc, opt shardedCollectOptions) error {
	logger := obs.Logger("collect")
	if opt.tracer != nil {
		// Sampling decisions happen once, at the stream read; the shard
		// datasets continue the sampled traces via SupervisorConfig.Tracer.
		opt.client.Tracer = opt.tracer
	}

	var shardMetrics *pipeline.ShardMetrics
	var analyzeMetrics *report.Metrics
	var sup *pipeline.Supervisor // set below; health check reads it via closure
	if opt.telemetryAddr != "" {
		reg := obs.NewRegistry()
		shardMetrics = pipeline.NewShardMetrics(reg)
		analyzeMetrics = report.NewMetrics(reg)
		streamMetrics := twitter.NewStreamMetrics(reg)
		streamMetrics.Instrument(reg, opt.client)
		opt.client.Codec = twitter.NewDecoder()
		twitter.NewWireMetrics(reg).Observe(opt.client.Codec)
		srv := obs.NewServer(reg)
		if opt.tracer != nil {
			srv.SetTraceRing(opt.tracer.Ring())
		}
		started := time.Now()
		srv.AddStatus("stream", func() obs.StatusSection {
			st := opt.client.Snapshot()
			var sec obs.StatusSection
			sec.Field("connected", streamMetrics.Connected())
			sec.Field("tweets", st.Tweets)
			sec.Field("tweets_per_sec", fmt.Sprintf("%.1f", float64(st.Tweets)/time.Since(started).Seconds()))
			sec.Field("connects", st.Connects)
			sec.Field("retries", st.Retries)
			sec.Field("stalls", st.Stalls)
			sec.Field("rate_limits", st.RateLimits)
			sec.Field("malformed_lines", st.MalformedLines)
			return sec
		})
		srv.AddStatus("shards", shardStatusSection(func() *pipeline.Supervisor { return sup }))
		// Runtime memory only: shard datasets are owned by live workers, so
		// their store footprints are read off /metrics gauges, not here.
		srv.AddStatus("memory", obs.MemStatsStatusSection(nil))
		srv.AddStatus("tracing", tracingStatus(opt.tracer))
		if opt.errRing != nil {
			srv.AddStatus("errors", opt.errRing.StatusSection)
		}
		srv.AddHealthCheck("shards", func() (any, error) {
			if sup == nil {
				return map[string]any{"started": false}, nil
			}
			detail := map[string]any{}
			down := 0
			for _, st := range sup.Status() {
				detail[fmt.Sprintf("shard_%d", st.Shard)] = map[string]any{
					"live": st.Live, "done": st.Done,
					"restarts": st.Restarts, "stalls": st.Stalls,
					"buffer_depth": st.BufferDepth,
				}
				if !st.Live && !st.Done {
					down++
				}
			}
			if down > 0 {
				return detail, fmt.Errorf("%d shard(s) down (restarting)", down)
			}
			return detail, nil
		})
		go func() {
			logger.Info("telemetry listening", "addr", opt.telemetryAddr)
			if err := srv.ListenAndServe(ctx, opt.telemetryAddr); err != nil {
				logger.Error("telemetry server failed", "err", err)
			}
		}()
	}

	sup, err := pipeline.NewSupervisor(pipeline.SupervisorConfig{
		Shards:           opt.shards,
		CheckpointBase:   opt.checkpoint,
		CheckpointEvery:  opt.checkpointEvery,
		HeartbeatTimeout: opt.heartbeatTimeout,
		RestartBackoff:   opt.restartBackoff,
		BufferCap:        opt.bufferCap,
		Metrics:          shardMetrics,
		Logger:           logger,
		Tracer:           opt.tracer,
	})
	if err != nil {
		return err
	}

	tweets := make(chan twitter.Tweet, 1024)
	errc := make(chan error, 1)
	go func() { errc <- opt.client.Filter(ctx, organ.TrackTerms(), tweets) }()

	// The router consumes this relay channel; the relay enforces -max and
	// counts throughput for the progress log.
	routed := make(chan twitter.Tweet, 1024)
	var routedN atomic.Int64
	go func() {
		defer close(routed)
		for {
			select {
			case <-ctx.Done():
				return
			case t, ok := <-tweets:
				if !ok {
					return
				}
				select {
				case routed <- t:
				case <-ctx.Done():
					return
				}
				if n := routedN.Add(1); opt.maxTweets > 0 && n >= int64(opt.maxTweets) {
					stop()
					// Drain remaining deliveries so the client can exit.
					go func() {
						for range tweets {
						}
					}()
					return
				}
			}
		}
	}()

	runDone := make(chan struct{})
	if opt.progressEvery > 0 {
		go func() {
			tick := time.NewTicker(opt.progressEvery)
			defer tick.Stop()
			for {
				select {
				case <-runDone:
					return
				case <-tick.C:
					restarts, buffered := 0, 0
					for _, st := range sup.Status() {
						restarts += st.Restarts
						buffered += st.BufferDepth
					}
					logger.Info("progress",
						"tweets", routedN.Load(), "shards", opt.shards,
						"restarts", restarts, "buffered", buffered)
				}
			}
		}()
	}

	err = sup.Run(ctx, routed)
	close(runDone)
	if err != nil {
		return err
	}
	if serr := <-errc; serr != nil && ctx.Err() == nil {
		// Shard checkpoints were already taken on drain; the data is safe.
		return fmt.Errorf("stream: %w", serr)
	}

	cs := opt.client.Snapshot()
	logger.Info("stream ended; merging shards", "tweets", routedN.Load(), "shards", opt.shards)
	logger.Info("client stats",
		"connects", cs.Connects, "disconnects", cs.Disconnects, "retries", cs.Retries,
		"rate_limits", cs.RateLimits, "stalls", cs.Stalls,
		"skipped_lines", cs.SkippedLines, "malformed_lines", cs.MalformedLines)

	merged, err := sup.Merged()
	if err != nil {
		return err
	}
	if merged.Users() == 0 {
		return fmt.Errorf("no US users collected; nothing to analyze")
	}
	return analyzeDataset(merged, opt.k, opt.sweep, opt.sil, 1, analyzeMetrics, nil, "")
}

// cmdMerge folds the shard checkpoints of a sharded run into one dataset
// offline, optionally saving it as a single-file checkpoint and printing
// the full analysis.
func cmdMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	base := fs.String("checkpoint", "", "shard checkpoint base path (reads <base>-shard-<i>)")
	shards := fs.Int("shards", 0, "shard count (0 = probe files until one is missing)")
	out := fs.String("out", "", "write the merged dataset as a single checkpoint to this path")
	noAnalyze := fs.Bool("no-analyze", false, "merge (and -out save) only; skip printing the analysis")
	k := fs.Int("k", 12, "user cluster count (Figure 7)")
	sweep := fs.String("sweep", "", "comma-separated ks for the model-selection sweep")
	sil := fs.Int("silhouette-sample", 2000, "silhouette sample size (0 = exact)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *base == "" {
		return errors.New("merge: -checkpoint is required")
	}
	logger := obs.Logger("merge")

	n := *shards
	if n == 0 {
		for {
			if _, err := os.Stat(pipeline.ShardCheckpointPath(*base, n)); err != nil {
				break
			}
			n++
		}
		if n == 0 {
			return fmt.Errorf("merge: no shard checkpoints found at %s", pipeline.ShardCheckpointPath(*base, 0))
		}
	}

	var merged *pipeline.Dataset
	for i := 0; i < n; i++ {
		path := pipeline.ShardCheckpointPath(*base, i)
		d, usedBackup, err := pipeline.LoadCheckpointFallback(path)
		if err != nil {
			return fmt.Errorf("merge: shard %d: %w", i, err)
		}
		if usedBackup {
			logger.Warn("shard restored from backup checkpoint", "shard", i, "path", path)
		}
		if merged == nil {
			merged = d
		} else {
			merged.Merge(d)
		}
	}
	logger.Info("merged shard checkpoints",
		"shards", n, "us_tweets", merged.USTweets(), "users", merged.Users())

	if *out != "" {
		if err := merged.SaveCheckpoint(*out); err != nil {
			return err
		}
		logger.Info("saved merged checkpoint", "path", *out)
	}
	if *noAnalyze {
		return nil
	}
	if merged.Users() == 0 {
		return fmt.Errorf("merge: no US users in the shard checkpoints; nothing to analyze")
	}
	return analyzeDataset(merged, *k, *sweep, *sil, 1, nil, nil, "")
}
