package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"donorsense/internal/pipeline"
	"donorsense/internal/twitter"
)

func shardFaults(seed uint64) twitter.ChaosConfig {
	return twitter.ChaosConfig{
		Seed:      seed,
		FaultRate: 0.01,
		// Short server-side stalls that end with the server dropping the
		// connection itself. The client's watchdog is set far above this
		// (see shardArgs) so it can never fire spuriously on a loaded
		// machine and tear down a connection whose kernel buffer still
		// holds delivered tweets — these tests assert bit-identical
		// statistics, so even one silently lost tweet is a failure.
		StallDuration: 100 * time.Millisecond,
		RetryAfter:    10 * time.Millisecond,
	}
}

// shardArgs are collectArgs with the stall watchdog effectively disabled
// (the chaos stalls above self-terminate server-side); the watchdog path
// itself is exercised by the client unit tests and the durable suite.
func shardArgs(url string, extra ...string) []string {
	return append(collectArgs(url, "-stall-timeout", "10s"), extra...)
}

// TestCollectShardedChaosMatchesCleanRun: live sharded collection
// (-shards 3) under stream fault injection must print exactly the
// statistics of a fault-free single-process run — the end-to-end
// bit-identical guarantee of hash partitioning plus Dataset.Merge.
func TestCollectShardedChaosMatchesCleanRun(t *testing.T) {
	corpus := durableCorpus()

	clean := twitter.NewChaosServer(corpus, twitter.ChaosConfig{})
	cleanSrv := httptest.NewServer(clean.Handler())
	defer cleanSrv.Close()
	baseline := captureStdout(t, func() error {
		return cmdCollect(shardArgs(cleanSrv.URL))
	})

	ckpt := filepath.Join(t.TempDir(), "state.ckpt")
	chaos := twitter.NewChaosServer(corpus, shardFaults(31))
	chaosSrv := httptest.NewServer(chaos.Handler())
	defer chaosSrv.Close()
	sharded := captureStdout(t, func() error {
		return cmdCollect(shardArgs(chaosSrv.URL,
			"-shards", "3", "-checkpoint", ckpt, "-checkpoint-every", "20ms",
			"-restart-backoff", "1ms"))
	})

	if got, want := statsSection(t, sharded), statsSection(t, baseline); got != want {
		t.Errorf("sharded chaos run differs from clean single-process run:\n--- sharded ---\n%s\n--- clean ---\n%s", got, want)
	}
	for i := 0; i < 3; i++ {
		if _, err := os.Stat(pipeline.ShardCheckpointPath(ckpt, i)); err != nil {
			t.Errorf("shard %d checkpoint missing after run: %v", i, err)
		}
	}
}

// TestCollectShardedResumeAndMergeSubcommand: a sharded collection
// interrupted between two sessions must resume from the per-shard
// checkpoints and end bit-identical to one uninterrupted single-process
// run — and `donorsense merge` over the leftover shard checkpoints must
// print the same statistics again, offline.
func TestCollectShardedResumeAndMergeSubcommand(t *testing.T) {
	corpus := durableCorpus()
	ckpt := filepath.Join(t.TempDir(), "state.ckpt")

	clean := twitter.NewChaosServer(corpus, twitter.ChaosConfig{})
	cleanSrv := httptest.NewServer(clean.Handler())
	defer cleanSrv.Close()
	baseline := captureStdout(t, func() error {
		return cmdCollect(shardArgs(cleanSrv.URL))
	})

	half := len(corpus) / 2
	srv1 := httptest.NewServer(twitter.NewChaosServer(corpus[:half], shardFaults(41)).Handler())
	defer srv1.Close()
	_ = captureStdout(t, func() error {
		return cmdCollect(shardArgs(srv1.URL,
			"-shards", "3", "-checkpoint", ckpt, "-checkpoint-every", "20ms",
			"-restart-backoff", "1ms"))
	})

	srv2 := httptest.NewServer(twitter.NewChaosServer(corpus[half:], shardFaults(42)).Handler())
	defer srv2.Close()
	resumed := captureStdout(t, func() error {
		return cmdCollect(shardArgs(srv2.URL,
			"-shards", "3", "-checkpoint", ckpt, "-checkpoint-every", "20ms",
			"-restart-backoff", "1ms"))
	})
	if got, want := statsSection(t, resumed), statsSection(t, baseline); got != want {
		t.Errorf("resumed sharded run differs from uninterrupted run:\n--- resumed ---\n%s\n--- baseline ---\n%s", got, want)
	}

	// Offline merge of the shard checkpoints, explicit and auto-detected
	// shard counts, plus a merged single-file checkpoint.
	mergedCkpt := filepath.Join(t.TempDir(), "merged.ckpt")
	mergeOut := captureStdout(t, func() error {
		return cmdMerge([]string{"-checkpoint", ckpt, "-shards", "3", "-k", "6",
			"-out", mergedCkpt})
	})
	if got, want := statsSection(t, mergeOut), statsSection(t, baseline); got != want {
		t.Errorf("merge subcommand differs from uninterrupted run:\n--- merge ---\n%s\n--- baseline ---\n%s", got, want)
	}

	autoOut := captureStdout(t, func() error {
		return cmdMerge([]string{"-checkpoint", ckpt, "-k", "6"})
	})
	if got, want := statsSection(t, autoOut), statsSection(t, baseline); got != want {
		t.Errorf("auto-detected merge differs from uninterrupted run:\n--- merge ---\n%s\n--- baseline ---\n%s", got, want)
	}

	// The -out snapshot must round-trip to the same dataset.
	d, err := pipeline.LoadCheckpoint(mergedCkpt)
	if err != nil {
		t.Fatalf("load merged checkpoint: %v", err)
	}
	if d.Users() == 0 || d.USTweets() == 0 {
		t.Error("merged checkpoint round-tripped empty")
	}
}

func TestMergeSubcommandErrors(t *testing.T) {
	if err := cmdMerge([]string{}); err == nil {
		t.Error("merge without -checkpoint must error")
	}
	base := filepath.Join(t.TempDir(), "none.ckpt")
	if err := cmdMerge([]string{"-checkpoint", base}); err == nil {
		t.Error("merge with no shard checkpoint files must error")
	}
}
