// /statusz section builders shared by the sequential and sharded collect
// paths. Sections run on every page request from the telemetry goroutine,
// so they may only read concurrency-safe state: atomics, snapshots, and
// the filesystem.
package main

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"donorsense/internal/obs"
	"donorsense/internal/obs/trace"
	"donorsense/internal/pipeline"
	"donorsense/internal/serve"
)

// serveStatus reports the query-API publisher: what epoch readers see
// and how traffic split across the hit/miss/304 paths.
func serveStatus(p *serve.Publisher) func() obs.StatusSection {
	return func() obs.StatusSection {
		var sec obs.StatusSection
		if p == nil {
			sec.Field("enabled", false)
			return sec
		}
		st := p.Stats()
		sec.Field("enabled", true)
		sec.Field("epoch", st.Epoch)
		sec.Field("seq", st.Seq)
		if st.LastPublish.IsZero() {
			sec.Field("published", "never this run")
		} else {
			sec.Field("published", time.Since(st.LastPublish).Round(time.Second).String()+" ago")
		}
		sec.Field("hits", st.Hits)
		sec.Field("not_modified", st.NotModified)
		sec.Field("misses", st.Misses())
		sec.Field("renders", st.Renders)
		sec.Field("coalesced", st.Coalesced)
		sec.Field("cached_renders", st.CacheSize)
		sec.Field("bad_request", st.BadRequest)
		sec.Field("not_found", st.NotFound)
		sec.Field("rejected_503", st.Rejected)
		sec.Field("draining", st.Draining)
		return sec
	}
}

// checkpointStatus reports checkpoint freshness and on-disk size.
// lastSave holds the UnixNano of the last successful save (0 = never).
func checkpointStatus(path string, lastSave *atomic.Int64) func() obs.StatusSection {
	return func() obs.StatusSection {
		var sec obs.StatusSection
		if path == "" {
			sec.Field("enabled", false)
			return sec
		}
		sec.Field("enabled", true)
		sec.Field("path", path)
		if last := lastSave.Load(); last > 0 {
			sec.Field("age", time.Since(time.Unix(0, last)).Round(time.Second).String())
		} else {
			sec.Field("age", "never saved this run")
		}
		if fi, err := os.Stat(path); err == nil {
			sec.Field("size_bytes", fi.Size())
		}
		return sec
	}
}

// analyticsProbe holds the last incremental-refresh outcome for the
// /statusz analytics section. The collect loop stores after every
// refresh; the telemetry goroutine only loads, so every mutable field is
// an atomic.
type analyticsProbe struct {
	enabled   bool
	every     time.Duration
	refreshes atomic.Uint64
	epoch     atomic.Uint64
	dirty     atomic.Int64
	latencyNS atomic.Int64
	lastUnix  atomic.Int64
	cold      atomic.Bool
	users     atomic.Int64
}

// analyticsStatus reports the incremental analysis engine: refresh
// cadence, attention epoch, and the cost of the last refresh.
func analyticsStatus(p *analyticsProbe) func() obs.StatusSection {
	return func() obs.StatusSection {
		var sec obs.StatusSection
		if p == nil || !p.enabled {
			sec.Field("enabled", false)
			return sec
		}
		sec.Field("enabled", true)
		sec.Field("refresh_every", p.every.String())
		sec.Field("refreshes", p.refreshes.Load())
		sec.Field("epoch", p.epoch.Load())
		if last := p.lastUnix.Load(); last > 0 {
			sec.Field("age", time.Since(time.Unix(0, last)).Round(time.Second).String())
			sec.Field("last_dirty_rows", p.dirty.Load())
			sec.Field("last_latency", time.Duration(p.latencyNS.Load()).Round(time.Microsecond).String())
			sec.Field("last_cold", p.cold.Load())
			sec.Field("users", p.users.Load())
		} else {
			sec.Field("age", "never refreshed this run")
		}
		return sec
	}
}

// tracingStatus reports the sampler configuration and ring fill.
func tracingStatus(tracer *trace.Tracer) func() obs.StatusSection {
	return func() obs.StatusSection {
		var sec obs.StatusSection
		if tracer == nil {
			sec.Field("enabled", false)
			return sec
		}
		ring := tracer.Ring()
		sec.Field("enabled", true)
		sec.Field("sample_rate", fmt.Sprintf("%g", tracer.SampleRate()))
		sec.Field("ring_capacity", ring.Cap())
		sec.Field("spans_recorded", ring.Total())
		return sec
	}
}

// shardStatusSection renders the supervisor's per-shard health table.
// The supervisor pointer is read through getter because the telemetry
// server starts before the supervisor exists.
func shardStatusSection(getter func() *pipeline.Supervisor) func() obs.StatusSection {
	return func() obs.StatusSection {
		var sec obs.StatusSection
		sup := getter()
		if sup == nil {
			sec.Field("started", false)
			return sec
		}
		status := sup.Status()
		live, restarts := 0, 0
		tbl := &obs.StatusTable{Columns: []string{
			"shard", "state", "incarnation", "restarts", "stalls", "buffer", "heartbeat_age",
		}}
		for _, st := range status {
			state := "down"
			switch {
			case st.Done:
				state = "done"
			case st.Live:
				state = "live"
				live++
			}
			restarts += st.Restarts
			tbl.Rows = append(tbl.Rows, []string{
				fmt.Sprint(st.Shard), state,
				fmt.Sprint(st.Incarnation), fmt.Sprint(st.Restarts), fmt.Sprint(st.Stalls),
				fmt.Sprint(st.BufferDepth), st.HeartbeatAge.Round(time.Millisecond).String(),
			})
		}
		sec.Field("shards", len(status))
		sec.Field("live", live)
		sec.Field("restarts", restarts)
		sec.Table = tbl
		return sec
	}
}
