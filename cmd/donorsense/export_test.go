package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestAnalyzeExportFlag(t *testing.T) {
	dir := t.TempDir()
	corpus := filepath.Join(dir, "corpus.ndjson")
	if err := cmdGenerate([]string{"-scale", "0.01", "-out", corpus}); err != nil {
		t.Fatal(err)
	}
	exportDir := filepath.Join(dir, "results")
	_ = captureStdout(t, func() error {
		return cmdAnalyze([]string{"-in", corpus, "-sweep", "", "-k", "6", "-extensions", "-export", exportDir})
	})
	for _, name := range []string{
		"state_signatures.csv", "relative_risk.csv", "user_clusters.csv",
		"daily_series.csv", "summary.json",
	} {
		info, err := os.Stat(filepath.Join(exportDir, name))
		if err != nil {
			t.Errorf("export file %s missing: %v", name, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("export file %s empty", name)
		}
	}
	data, err := os.ReadFile(filepath.Join(exportDir, "summary.json"))
	if err != nil {
		t.Fatal(err)
	}
	var sum map[string]any
	if err := json.Unmarshal(data, &sum); err != nil {
		t.Fatalf("summary.json invalid: %v", err)
	}
	if _, ok := sum["table_i"]; !ok {
		t.Error("summary.json missing table_i")
	}
}

func TestAnalyzeExportWithoutExtensions(t *testing.T) {
	dir := t.TempDir()
	corpus := filepath.Join(dir, "corpus.ndjson")
	if err := cmdGenerate([]string{"-scale", "0.005", "-out", corpus}); err != nil {
		t.Fatal(err)
	}
	exportDir := filepath.Join(dir, "results")
	_ = captureStdout(t, func() error {
		return cmdAnalyze([]string{"-in", corpus, "-sweep", "", "-k", "6", "-export", exportDir})
	})
	// No temporal series without -extensions, so no daily_series.csv.
	if _, err := os.Stat(filepath.Join(exportDir, "daily_series.csv")); !os.IsNotExist(err) {
		t.Error("daily_series.csv written without -extensions")
	}
	if _, err := os.Stat(filepath.Join(exportDir, "summary.json")); err != nil {
		t.Errorf("summary.json missing: %v", err)
	}
}
