package main

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"donorsense/internal/gen"
	"donorsense/internal/twitter"
)

func TestCollectAgainstLiveServer(t *testing.T) {
	corpus := gen.Generate(gen.DefaultConfig(0.01))
	b := twitter.NewBroadcaster()
	srv := twitter.NewStreamServer(b)
	srv.SubscriberBuffer = 1 << 16
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	go func() {
		// Wait for the collector to subscribe, then replay and close.
		deadline := time.Now().Add(5 * time.Second)
		for b.NumSubscribers() == 0 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		for _, tw := range corpus.Tweets {
			b.Publish(tw)
		}
		b.Close()
	}()

	out := captureStdout(t, func() error {
		return cmdCollect([]string{"-url", hs.URL, "-k", "6", "-sweep", ""})
	})
	for _, want := range []string{"Table I", "Figure 5"} {
		if !strings.Contains(out, want) {
			t.Errorf("collect output missing %q", want)
		}
	}
}

func TestCollectBadURL(t *testing.T) {
	// An unroutable URL with one connect attempt must fail cleanly. The
	// client keeps retrying transient errors, so use a 4xx-producing
	// server for a permanent failure instead.
	hs := httptest.NewServer(nil) // 404 on every path
	defer hs.Close()
	err := cmdCollect([]string{"-url", hs.URL})
	if err == nil {
		t.Error("collect against 404 server succeeded")
	}
}
