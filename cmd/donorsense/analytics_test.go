package main

import (
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"donorsense/internal/gen"
	"donorsense/internal/pipeline"
	"donorsense/internal/report"
	"donorsense/internal/twitter"
)

// TestAnalyticsStatusSection pins the /statusz analytics section:
// disabled, enabled-but-idle, and after a refresh has been published.
func TestAnalyticsStatusSection(t *testing.T) {
	get := func(p *analyticsProbe, key string) (string, bool) {
		sec := analyticsStatus(p)()
		for _, f := range sec.Fields {
			if f.Key == key {
				return f.Value, true
			}
		}
		return "", false
	}

	if v, _ := get(&analyticsProbe{}, "enabled"); v != "false" {
		t.Errorf("disabled probe: enabled = %q, want false", v)
	}

	p := &analyticsProbe{enabled: true, every: 5 * time.Second}
	if v, _ := get(p, "enabled"); v != "true" {
		t.Errorf("enabled probe: enabled = %q, want true", v)
	}
	if v, _ := get(p, "age"); v != "never refreshed this run" {
		t.Errorf("idle probe: age = %q, want never refreshed", v)
	}
	if _, ok := get(p, "last_dirty_rows"); ok {
		t.Error("idle probe exposed last_dirty_rows before any refresh")
	}

	p.refreshes.Store(3)
	p.epoch.Store(2)
	p.dirty.Store(417)
	p.latencyNS.Store(int64(1500 * time.Microsecond))
	p.cold.Store(false)
	p.users.Store(9001)
	p.lastUnix.Store(time.Now().UnixNano())
	for key, want := range map[string]string{
		"refresh_every":   "5s",
		"refreshes":       "3",
		"epoch":           "2",
		"last_dirty_rows": "417",
		"last_latency":    "1.5ms",
		"last_cold":       "false",
		"users":           "9001",
	} {
		got, ok := get(p, key)
		if !ok {
			t.Errorf("refreshed probe missing field %q", key)
			continue
		}
		if got != want {
			t.Errorf("field %s = %q, want %q", key, got, want)
		}
	}
}

// TestCollectReportEvery runs a live collect with in-flight incremental
// refreshes enabled and a checkpoint, then asserts the final report
// still prints and the clustering warm state rode the checkpoint: the
// reloaded dataset carries an analytics blob a fresh engine accepts.
func TestCollectReportEvery(t *testing.T) {
	corpus := gen.Generate(gen.DefaultConfig(0.01))
	b := twitter.NewBroadcaster()
	srv := twitter.NewStreamServer(b)
	srv.SubscriberBuffer = 1 << 16
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	go func() {
		deadline := time.Now().Add(5 * time.Second)
		for b.NumSubscribers() == 0 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		for _, tw := range corpus.Tweets {
			b.Publish(tw)
		}
		b.Close()
	}()

	ckpt := filepath.Join(t.TempDir(), "report.ckpt")
	out := captureStdout(t, func() error {
		return cmdCollect([]string{
			"-url", hs.URL, "-k", "6", "-sweep", "", "-silhouette-sample", "0",
			"-checkpoint", ckpt, "-report-every", "1ms",
		})
	})
	for _, want := range []string{"Table I", "Figure 5"} {
		if !strings.Contains(out, want) {
			t.Errorf("collect output missing %q", want)
		}
	}

	d, err := pipeline.LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	blob := d.AnalyticsState()
	if len(blob) == 0 {
		t.Fatal("checkpoint carries no analytics warm state after -report-every run")
	}
	cfg := report.DefaultAnalysisConfig()
	cfg.KUsers = 6
	cfg.SweepKs = nil
	cfg.SilhouetteSample = 0
	eng := report.NewEngine(d, cfg)
	if err := eng.RestoreWarm(blob); err != nil {
		t.Fatalf("RestoreWarm rejected the checkpointed blob: %v", err)
	}
	if _, err := eng.Refresh(); err != nil {
		t.Fatalf("refresh after warm restore: %v", err)
	}
}
