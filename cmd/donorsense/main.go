// Command donorsense is the command-line interface to the organ-donation
// social sensor. It chains the stages of the paper's pipeline:
//
//	donorsense generate -scale 0.05 -seed 1 -out corpus.ndjson
//	    synthesize a tweet corpus (the Twitter-stream stand-in)
//
//	donorsense analyze -in corpus.ndjson [-k 12] [-sweep 6,8,12]
//	    run collect → augment → filter → characterize and print every
//	    table and figure of the paper
//
//	donorsense collect -url http://127.0.0.1:7700 -max 10000
//	    consume a live stream server (see cmd/streamsim) and analyze the
//	    collected tweets
//
//	donorsense keywords
//	    print the Figure 1 keyword product / Stream API track parameter
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"donorsense/internal/core"
	"donorsense/internal/export"
	"donorsense/internal/gen"
	"donorsense/internal/obs"
	"donorsense/internal/obs/trace"
	"donorsense/internal/organ"
	"donorsense/internal/pipeline"
	"donorsense/internal/report"
	"donorsense/internal/serve"
	"donorsense/internal/temporal"
	"donorsense/internal/text"
	"donorsense/internal/twitter"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "collect":
		err = cmdCollect(os.Args[2:])
	case "merge":
		err = cmdMerge(os.Args[2:])
	case "keywords":
		err = cmdKeywords(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "-version", "--version", "version":
		fmt.Println(obs.ReadBuild().String())
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "donorsense: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "donorsense:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: donorsense <command> [flags]

commands:
  generate   synthesize a tweet corpus to NDJSON
  analyze    analyze an NDJSON corpus and print the paper's tables/figures
  collect    consume a stream server, then analyze (-shards N for sharded mode)
  merge      merge the shard checkpoints of a sharded run and analyze
  keywords   print the Figure 1 keyword product (Stream API track syntax)
  replay     serve an NDJSON corpus over the Stream API protocol
  serve      expose a checkpoint's analysis as the /api query endpoints
  version    print build identity (module version, go version, VCS revision)
`)
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	scale := fs.Float64("scale", 0.05, "population scale (1.0 = paper magnitude, ≈1M tweets)")
	seed := fs.Uint64("seed", 1, "random seed")
	out := fs.String("out", "corpus.ndjson", "output file (- for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := gen.DefaultConfig(*scale)
	cfg.Seed = *seed
	corpus := gen.Generate(cfg)

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("create output: %w", err)
		}
		defer f.Close()
		w = f
	}
	if err := twitter.WriteNDJSON(w, corpus.Tweets); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %d tweets (%d users) at scale %g → %s\n",
		len(corpus.Tweets), len(corpus.Profiles), *scale, *out)
	return nil
}

// parseKs parses a comma-separated k list like "6,8,12".
func parseKs(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		k, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad k %q: %w", p, err)
		}
		out = append(out, k)
	}
	return out, nil
}

func analyzeDataset(d *pipeline.Dataset, k int, sweep string, silhouetteSample, workers int, metrics *report.Metrics, series *temporal.Series, exportDir string) error {
	cfg := report.DefaultAnalysisConfig()
	cfg.KUsers = k
	cfg.SilhouetteSample = silhouetteSample
	cfg.Workers = workers
	cfg.Metrics = metrics
	ks, err := parseKs(sweep)
	if err != nil {
		return err
	}
	cfg.SweepKs = ks
	a, err := report.Analyze(d, cfg)
	if err != nil {
		return err
	}
	fmt.Print(a.Render())

	var bursts []temporal.Burst
	if series != nil {
		fmt.Println("\n=== Extensions ===")
		counts := map[string]int{}
		for _, m := range []core.Correction{core.NoCorrection, core.BHCorrection, core.BonferroniCorrection} {
			adj, err := a.Highlight.AdjustedHighlights(m)
			if err != nil {
				return err
			}
			counts[m.String()] = core.CountHighlights(adj)
		}
		fmt.Print(report.CorrectionComparisonText(counts))

		det := temporal.DefaultDetectorConfig()
		if bursts, err = temporal.DetectAll(series, det); err != nil {
			return fmt.Errorf("burst detection: %w", err)
		}
		fmt.Print(report.TemporalText(series, bursts))
	}
	if exportDir != "" {
		if err := exportResults(exportDir, a, series, bursts); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "exported CSV/JSON results to %s\n", exportDir)
	}
	return nil
}

// exportResults writes the machine-readable artifacts of a run.
func exportResults(dir string, a *report.Analysis, series *temporal.Series, bursts []temporal.Burst) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("export dir: %w", err)
	}
	write := func(name string, fn func(w *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("create %s: %w", name, err)
		}
		defer f.Close()
		if err := fn(f); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		return nil
	}
	if err := write("state_signatures.csv", func(w *os.File) error {
		return export.StateSignaturesCSV(w, a.Regions)
	}); err != nil {
		return err
	}
	if err := write("relative_risk.csv", func(w *os.File) error {
		return export.RelativeRiskCSV(w, a.Highlight)
	}); err != nil {
		return err
	}
	if a.Clusters != nil {
		if err := write("user_clusters.csv", func(w *os.File) error {
			return export.ClustersCSV(w, a.Clusters)
		}); err != nil {
			return err
		}
	}
	if series != nil {
		if err := write("daily_series.csv", func(w *os.File) error {
			return export.SeriesCSV(w, series)
		}); err != nil {
			return err
		}
	}
	return write("summary.json", func(w *os.File) error {
		sum := export.BuildSummary(a.Stats, a.Popularity, a.Spearman.R, a.Spearman.P,
			a.Highlight, series, bursts, time.Now().UTC())
		return export.WriteSummaryJSON(w, sum)
	})
}

// newSeriesFor builds an empty temporal series spanning the corpus window
// (derived from the tweet timestamps).
func newSeriesFor(tweets []twitter.Tweet) (*temporal.Series, error) {
	if len(tweets) == 0 {
		return nil, fmt.Errorf("empty corpus")
	}
	first, last := tweets[0].CreatedAt, tweets[0].CreatedAt
	for _, t := range tweets {
		if t.CreatedAt.Before(first) {
			first = t.CreatedAt
		}
		if t.CreatedAt.After(last) {
			last = t.CreatedAt
		}
	}
	days := int(last.Sub(first).Hours()/24) + 1
	return temporal.NewSeries(first.UTC().Truncate(24*time.Hour), days)
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	in := fs.String("in", "corpus.ndjson", "input NDJSON corpus (- for stdin)")
	k := fs.Int("k", 12, "user cluster count (Figure 7)")
	sweep := fs.String("sweep", "6,8,10,12,14,16", "comma-separated ks for the model-selection sweep (empty to skip)")
	sil := fs.Int("silhouette-sample", 2000, "silhouette sample size (0 = exact)")
	extensions := fs.Bool("extensions", false, "also print multiple-testing corrections and the temporal burst sensor")
	workers := fs.Int("workers", 0, "pipeline and analysis workers (0 = GOMAXPROCS; any value gives identical results)")
	exportDir := fs.String("export", "", "directory to write CSV/JSON results into (empty = no export)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return fmt.Errorf("open input: %w", err)
		}
		defer f.Close()
		r = f
	}
	tweets, err := twitter.ReadNDJSON(r)
	if err != nil {
		return err
	}
	d := pipeline.NewDataset()
	var series *temporal.Series
	if *extensions {
		if series, err = newSeriesFor(tweets); err != nil {
			return err
		}
		d.OnUSTweet = func(tw twitter.Tweet, ex text.Extraction) {
			series.Observe(tw, ex)
		}
	}
	d.ProcessAll(tweets, *workers)
	return analyzeDataset(d, *k, *sweep, *sil, *workers, nil, series, *exportDir)
}

func cmdCollect(args []string) error {
	fs := flag.NewFlagSet("collect", flag.ExitOnError)
	url := fs.String("url", "http://127.0.0.1:7700", "stream server base URL")
	maxTweets := fs.Int("max", 0, "stop after this many collected tweets (0 = until stream ends)")
	k := fs.Int("k", 12, "user cluster count (Figure 7)")
	sweep := fs.String("sweep", "", "comma-separated ks for the model-selection sweep")
	sil := fs.Int("silhouette-sample", 2000, "silhouette sample size (0 = exact)")
	workers := fs.Int("workers", 1, "extract/geocode workers for live collection (0 = GOMAXPROCS, 1 = sequential)")
	checkpoint := fs.String("checkpoint", "", "checkpoint file: load on start (if present), save periodically and on shutdown")
	checkpointEvery := fs.Duration("checkpoint-every", 30*time.Second, "interval between periodic checkpoint saves")
	reportEvery := fs.Duration("report-every", 0, "interval between in-flight incremental analysis refreshes (0 = off; single-shard mode only)")
	shards := fs.Int("shards", 1, "hash-partitioned shard workers; >1 runs the crash-tolerant shard supervisor (-checkpoint becomes the per-shard base path)")
	shardBuffer := fs.Int("shard-buffer", 8192, "per-shard replay buffer capacity (sharded mode; full buffer = backpressure, not loss)")
	heartbeatTimeout := fs.Duration("heartbeat-timeout", 30*time.Second, "restart a shard silent for this long with pending work (sharded mode)")
	restartBackoff := fs.Duration("restart-backoff", 250*time.Millisecond, "initial delay before restarting a crashed shard, doubling per failure (sharded mode)")
	stallTimeout := fs.Duration("stall-timeout", 90*time.Second, "tear down connections silent for this long")
	backoff := fs.Duration("backoff", 250*time.Millisecond, "initial reconnect delay (doubles per failure, full jitter)")
	rlBackoff := fs.Duration("ratelimit-backoff", 60*time.Second, "initial delay after a 420/429 rate limit (doubles per repeat)")
	telemetryAddr := fs.String("telemetry-addr", "", "serve /metrics, /healthz, /statusz, /debug/traces, /debug/pprof, /debug/vars on this address (empty = off)")
	serveAPI := fs.Bool("serve", false, "expose the live analysis as /api/... query endpoints on the telemetry server (requires -telemetry-addr and -report-every)")
	serveTop := fs.Int("serve-top", 250, "top mentioning users retained per published snapshot for /api/top")
	progressEvery := fs.Duration("progress-every", 10*time.Second, "interval between progress log lines (0 = silent)")
	logLevel := fs.String("log-level", "info", "log verbosity: debug|info|warn|error")
	logJSON := fs.Bool("log-json", false, "emit logs as single-line JSON instead of text")
	traceSample := fs.Float64("trace-sample", 0, "fraction of tweets to span-trace end to end (0 = off, 1 = every tweet)")
	traceRing := fs.Int("trace-ring", 4096, "spans retained in the /debug/traces ring")
	traceSlow := fs.Duration("trace-slow", 250*time.Millisecond, "log a wide event for any sampled span at least this slow")
	if err := fs.Parse(args); err != nil {
		return err
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	if *serveAPI {
		switch {
		case *telemetryAddr == "":
			return fmt.Errorf("-serve requires -telemetry-addr (the /api endpoints ride the telemetry mux)")
		case *reportEvery <= 0:
			return fmt.Errorf("-serve requires -report-every > 0 (snapshots publish after each refresh)")
		case *shards > 1:
			return fmt.Errorf("-serve is single-shard only (the incremental engine does not run under -shards)")
		}
	}
	// Tee warn-or-worse records into the /statusz error ring on the way to
	// stderr, so the page can show recent trouble without log scraping.
	errRing := obs.NewErrorRing(64)
	obs.SetLogger(slog.New(obs.CaptureErrors(obs.NewLogger(os.Stderr, level, *logJSON).Handler(), errRing)))
	logger := obs.Logger("collect")

	var tracer *trace.Tracer
	if *traceSample > 0 {
		tracer = trace.New(trace.Config{
			SampleRate: *traceSample,
			RingSize:   *traceRing,
			SlowSpan:   *traceSlow,
			Logger:     obs.Logger("trace"),
		})
	}

	if *shards > 1 {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		return collectSharded(ctx, stop, shardedCollectOptions{
			client: &twitter.StreamClient{
				BaseURL:          *url,
				StallTimeout:     *stallTimeout,
				InitialBackoff:   *backoff,
				RateLimitBackoff: *rlBackoff,
			},
			shards:           *shards,
			checkpoint:       *checkpoint,
			checkpointEvery:  *checkpointEvery,
			heartbeatTimeout: *heartbeatTimeout,
			restartBackoff:   *restartBackoff,
			bufferCap:        *shardBuffer,
			maxTweets:        *maxTweets,
			k:                *k,
			sweep:            *sweep,
			sil:              *sil,
			telemetryAddr:    *telemetryAddr,
			progressEvery:    *progressEvery,
			tracer:           tracer,
			errRing:          errRing,
		})
	}

	// lastSaveUnixNano is read by the /healthz checkpoint check from the
	// telemetry goroutine while the collect loop writes it; 0 = never.
	var lastSaveUnixNano atomic.Int64
	started := time.Now()

	d := pipeline.NewDataset()
	if *checkpoint != "" {
		switch loaded, err := pipeline.LoadCheckpoint(*checkpoint); {
		case err == nil:
			d = loaded
			logger.Info("resumed from checkpoint",
				"path", *checkpoint, "us_tweets", d.USTweets(), "users", d.Users())
		case os.IsNotExist(err):
			logger.Info("no checkpoint; starting fresh", "path", *checkpoint)
		default:
			return err
		}
	}

	// Incremental analytics: an engine that keeps the full report warm
	// between refreshes, patching only the users touched since the last
	// one. Its clustering warm state rides the checkpoint (v4), so a
	// resumed collector skips the cold start too. Refreshes run on the
	// collect goroutine against a quiescent dataset; the sweep is left off
	// — it is a cold model-selection tool, not a live artifact.
	var engine *report.Engine
	probe := &analyticsProbe{enabled: *reportEvery > 0, every: *reportEvery}
	if *reportEvery > 0 {
		ecfg := report.DefaultAnalysisConfig()
		ecfg.KUsers = *k
		ecfg.SilhouetteSample = *sil
		ecfg.Workers = *workers
		ecfg.SweepKs = nil
		engine = report.NewEngine(d, ecfg)
		if err := engine.RestoreWarm(d.AnalyticsState()); err != nil {
			logger.Warn("ignoring unreadable analytics warm state", "err", err)
		}
		if tracer != nil {
			engine.SetTracer(tracer)
		}
	}

	// SIGINT and SIGTERM both end collection; the deferred save below
	// checkpoints whatever was gathered before the process exits.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	client := &twitter.StreamClient{
		BaseURL:          *url,
		StallTimeout:     *stallTimeout,
		InitialBackoff:   *backoff,
		RateLimitBackoff: *rlBackoff,
	}
	if tracer != nil {
		client.Tracer = tracer
		d.SetTracer(tracer)
	}

	// Telemetry: registry + instrumented client/pipeline + HTTP endpoint.
	var streamMetrics *twitter.StreamMetrics
	var analyzeMetrics *report.Metrics
	// pub, when -serve is on, owns the RCU snapshot behind /api/...; the
	// collect goroutine publishes after each refresh, request goroutines
	// only load the pointer.
	var pub *serve.Publisher
	if *telemetryAddr != "" {
		reg := obs.NewRegistry()
		d.SetMetrics(pipeline.NewMetrics(reg))
		analyzeMetrics = report.NewMetrics(reg)
		streamMetrics = twitter.NewStreamMetrics(reg)
		streamMetrics.Instrument(reg, client)
		client.Codec = twitter.NewDecoder()
		twitter.NewWireMetrics(reg).Observe(client.Codec)
		srv := obs.NewServer(reg)
		srv.AddHealthCheck("stream", func() (any, error) {
			st := client.Snapshot()
			detail := map[string]any{
				"connected":   streamMetrics.Connected(),
				"connects":    st.Connects,
				"retries":     st.Retries,
				"stalls":      st.Stalls,
				"rate_limits": st.RateLimits,
				"tweets":      st.Tweets,
			}
			if st.Connects > 0 && !streamMetrics.Connected() {
				return detail, fmt.Errorf("stream disconnected (reconnecting)")
			}
			return detail, nil
		})
		srv.AddHealthCheck("checkpoint", func() (any, error) {
			if *checkpoint == "" {
				return map[string]any{"enabled": false}, nil
			}
			last := lastSaveUnixNano.Load()
			detail := map[string]any{"enabled": true, "path": *checkpoint}
			var age time.Duration
			if last == 0 {
				age = time.Since(started)
				detail["age_seconds"] = nil // no save yet this run
			} else {
				age = time.Since(time.Unix(0, last))
				detail["age_seconds"] = age.Seconds()
			}
			if age > 5**checkpointEvery {
				return detail, fmt.Errorf("checkpoint stale: last save %s ago", age.Round(time.Second))
			}
			return detail, nil
		})
		if tracer != nil {
			srv.SetTraceRing(tracer.Ring())
		}
		srv.AddStatus("stream", func() obs.StatusSection {
			st := client.Snapshot()
			var sec obs.StatusSection
			sec.Field("connected", streamMetrics.Connected())
			sec.Field("tweets", st.Tweets)
			sec.Field("tweets_per_sec", fmt.Sprintf("%.1f", float64(st.Tweets)/time.Since(started).Seconds()))
			sec.Field("connects", st.Connects)
			sec.Field("retries", st.Retries)
			sec.Field("stalls", st.Stalls)
			sec.Field("rate_limits", st.RateLimits)
			sec.Field("malformed_lines", st.MalformedLines)
			return sec
		})
		if engine != nil {
			engine.SetMetrics(report.NewEngineMetrics(reg))
		}
		srv.AddStatus("checkpoint", checkpointStatus(*checkpoint, &lastSaveUnixNano))
		srv.AddStatus("analytics", analyticsStatus(probe))
		if *serveAPI {
			pub = serve.NewPublisher()
			handler := serve.NewHandler(pub)
			handler.SetMetrics(serve.NewMetrics(reg, pub))
			srv.SetQueryAPI(handler)
			// On shutdown the server flips the publisher into drain mode
			// first (new requests 503+Retry-After), then Shutdown finishes
			// the reads already in flight.
			srv.OnShutdown(pub.BeginDrain)
			srv.AddStatus("serve", serveStatus(pub))
		}
		srv.AddStatus("memory", obs.MemStatsStatusSection(func(sec *obs.StatusSection) {
			rows, bytes := d.StoreFootprint()
			sec.Field("userstore_rows", rows)
			sec.Field("userstore_bytes", obs.FormatBytes(uint64(bytes)))
		}))
		srv.AddStatus("tracing", tracingStatus(tracer))
		srv.AddStatus("errors", errRing.StatusSection)
		go func() {
			logger.Info("telemetry listening", "addr", *telemetryAddr)
			if err := srv.ListenAndServe(ctx, *telemetryAddr); err != nil {
				logger.Error("telemetry server failed", "err", err)
			}
		}()
	}

	tweets := make(chan twitter.Tweet, 1024)
	errc := make(chan error, 1)
	go func() { errc <- client.Filter(ctx, organ.TrackTerms(), tweets) }()

	save := func() error {
		if *checkpoint == "" {
			return nil
		}
		// Ride the clustering warm state along in the snapshot (v4) so a
		// resumed collector's first refresh resumes instead of cold-starting.
		if engine != nil {
			if b, err := engine.MarshalWarm(); err != nil {
				logger.Warn("analytics warm state not persisted", "err", err)
			} else {
				d.SetAnalyticsState(b)
			}
		}
		if err := d.SaveCheckpoint(*checkpoint); err != nil {
			return err
		}
		lastSaveUnixNano.Store(time.Now().UnixNano())
		return nil
	}
	lastSave := time.Now()

	// refreshReport runs one incremental refresh and publishes the outcome
	// to the log and the /statusz probe. Skipped while the dataset is
	// empty: there is nothing to analyze yet.
	lastReport := time.Now()
	refreshReport := func() {
		if engine == nil || d.Users() == 0 {
			return
		}
		a, err := engine.Refresh()
		if err != nil {
			logger.Warn("analysis refresh failed", "err", err)
			return
		}
		if pub != nil {
			// Publish while this goroutine holds the quiescent dataset:
			// the snapshot build deep-copies everything the next refresh
			// will mutate in place.
			if _, err := pub.Publish(a, serve.Meta{
				Epoch:     engine.Epoch(),
				Refreshes: engine.Refreshes(),
				Top:       report.TopMentioners(d, *serveTop),
			}); err != nil {
				logger.Warn("snapshot publish failed", "err", err)
			}
		}
		dirty, latency, cold := engine.LastRefresh()
		probe.refreshes.Store(engine.Refreshes())
		probe.epoch.Store(engine.Epoch())
		probe.dirty.Store(int64(dirty))
		probe.latencyNS.Store(int64(latency))
		probe.cold.Store(cold)
		probe.users.Store(int64(d.Users()))
		probe.lastUnix.Store(time.Now().UnixNano())
		logger.Info("analysis refreshed",
			"epoch", engine.Epoch(), "dirty_rows", dirty, "cold", cold,
			"latency", latency.Round(time.Microsecond).String(), "users", d.Users())
	}

	// Progress: a periodic one-line pulse — ingest rate, retention, and
	// checkpoint age — so a multi-day run is never silent.
	var progressC <-chan time.Time
	if *progressEvery > 0 {
		tick := time.NewTicker(*progressEvery)
		defer tick.Stop()
		progressC = tick.C
	}
	lastProgress := time.Now()
	lastProgressTweets := int64(0)
	progress := func(n int) {
		st := client.Snapshot()
		elapsed := time.Since(lastProgress)
		rate := float64(st.Tweets-lastProgressTweets) / elapsed.Seconds()
		lastProgress, lastProgressTweets = time.Now(), st.Tweets
		retained := 0.0
		if d.TotalCollected() > 0 {
			retained = 100 * float64(d.USTweets()) / float64(d.TotalCollected())
		}
		attrs := []any{
			"tweets", n,
			"tweets_per_sec", fmt.Sprintf("%.1f", rate),
			"retained_pct", fmt.Sprintf("%.1f", retained),
			"users", d.Users(),
			"connects", st.Connects,
		}
		if *checkpoint != "" {
			if last := lastSaveUnixNano.Load(); last > 0 {
				attrs = append(attrs, "checkpoint_age", time.Since(time.Unix(0, last)).Round(time.Second).String())
			} else {
				attrs = append(attrs, "checkpoint_age", "never")
			}
		}
		logger.Info("progress", attrs...)
	}

	n := 0
	if *workers != 1 {
		// Parallel ingest: extraction and geocoding fan out across
		// workers while folding (and these callbacks) stay on this
		// goroutine, so the checkpoint/progress closures read a quiescent
		// dataset exactly as in the sequential loop below.
		var saveErr error
		reachedMax := false
		n = d.CollectParallel(ctx, tweets, pipeline.CollectOptions{
			Workers: *workers,
			OnFold: func(total int) bool {
				if *checkpoint != "" && time.Since(lastSave) >= *checkpointEvery {
					if err := save(); err != nil {
						saveErr = err
						return false
					}
					lastSave = time.Now()
				}
				if engine != nil && time.Since(lastReport) >= *reportEvery {
					refreshReport()
					lastReport = time.Now()
				}
				if *maxTweets > 0 && total >= *maxTweets {
					reachedMax = true
					return false
				}
				return true
			},
			Ticks:  progressC,
			OnTick: progress,
		})
		if saveErr != nil {
			return saveErr
		}
		if reachedMax {
			stop()
			// Drain remaining deliveries so the client can exit.
			go func() {
				for range tweets {
				}
			}()
		}
	} else {
	collect:
		for {
			select {
			case t, ok := <-tweets:
				if !ok {
					break collect
				}
				d.Process(t)
				n++
				if *checkpoint != "" && time.Since(lastSave) >= *checkpointEvery {
					if err := save(); err != nil {
						return err
					}
					lastSave = time.Now()
				}
				if engine != nil && time.Since(lastReport) >= *reportEvery {
					refreshReport()
					lastReport = time.Now()
				}
				if *maxTweets > 0 && n >= *maxTweets {
					stop()
					// Drain remaining deliveries so the client can exit.
					go func() {
						for range tweets {
						}
					}()
					break collect
				}
			case <-progressC:
				progress(n)
			}
		}
	}
	if err := <-errc; err != nil && ctx.Err() == nil {
		saveErr := save() // keep the data even when the stream died
		if saveErr != nil {
			return fmt.Errorf("stream: %w (and checkpoint save failed: %v)", err, saveErr)
		}
		return fmt.Errorf("stream: %w", err)
	}
	if err := save(); err != nil {
		return err
	}
	cs := client.Snapshot()
	logger.Info("stream ended; analyzing", "tweets", n)
	logger.Info("client stats",
		"connects", cs.Connects, "disconnects", cs.Disconnects, "retries", cs.Retries,
		"rate_limits", cs.RateLimits, "stalls", cs.Stalls,
		"skipped_lines", cs.SkippedLines, "malformed_lines", cs.MalformedLines)
	if d.Users() == 0 {
		return fmt.Errorf("no US users collected; nothing to analyze")
	}
	return analyzeDataset(d, *k, *sweep, *sil, *workers, analyzeMetrics, nil, "")
}

// cmdReplay serves an archived NDJSON corpus over the Stream API
// protocol, so any collector (donorsense collect, or a third-party
// client) can re-consume a stored collection.
func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("in", "corpus.ndjson", "input NDJSON corpus")
	addr := fs.String("addr", ":7700", "listen address")
	rate := fs.Float64("rate", 0, "tweets per second (0 = as fast as clients drain)")
	telemetryAddr := fs.String("telemetry-addr", "", "serve /metrics, /healthz, /debug/pprof, /debug/vars on this address (empty = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var reg *obs.Registry
	nr := &twitter.NDJSONReader{}
	if *telemetryAddr != "" {
		reg = obs.NewRegistry()
		twitter.NewWireMetrics(reg).ObserveReader(nr)
	}

	f, err := os.Open(*in)
	if err != nil {
		return fmt.Errorf("open corpus: %w", err)
	}
	// Stream the archive through the wire codec: one reused line buffer
	// and Tweet, no per-line garbage; only the corpus slice itself grows.
	var tweets []twitter.Tweet
	err = nr.Decode(f, func(t *twitter.Tweet) error {
		tweets = append(tweets, *t)
		return nil
	})
	f.Close()
	if err != nil {
		return err
	}
	if nr.Skipped > 0 {
		fmt.Fprintf(os.Stderr, "skipped %d oversized corpus lines\n", nr.Skipped)
	}
	fmt.Fprintf(os.Stderr, "replaying %d tweets on %s\n", len(tweets), *addr)

	b := twitter.NewBroadcaster()
	srv := twitter.NewStreamServer(b)
	srv.KeepAlive = 30 * time.Second
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if reg != nil {
		osrv := obs.NewServer(reg)
		osrv.AddStatus("replay", func() obs.StatusSection {
			var sec obs.StatusSection
			sec.Field("corpus_tweets", len(tweets))
			sec.Field("subscribers", b.NumSubscribers())
			sec.Field("skipped_lines", nr.Skipped)
			sec.Field("rate", *rate)
			return sec
		})
		osrv.AddStatus("memory", obs.MemStatsStatusSection(nil))
		go func() {
			if err := osrv.ListenAndServe(ctx, *telemetryAddr); err != nil {
				fmt.Fprintf(os.Stderr, "telemetry server failed: %v\n", err)
			}
		}()
	}
	go func() {
		<-ctx.Done()
		b.Close()
		shCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shCtx)
	}()
	go func() {
		// Wait for a first subscriber so the head of the corpus is not
		// replayed to nobody.
		for b.NumSubscribers() == 0 && ctx.Err() == nil {
			time.Sleep(20 * time.Millisecond)
		}
		var tick *time.Ticker
		if *rate > 0 {
			tick = time.NewTicker(time.Duration(float64(time.Second) / *rate))
			defer tick.Stop()
		}
		for _, t := range tweets {
			if tick != nil {
				select {
				case <-tick.C:
				case <-ctx.Done():
					return
				}
			} else if ctx.Err() != nil {
				return
			}
			b.Publish(t)
		}
		fmt.Fprintln(os.Stderr, "replay complete; closing stream")
		b.Close()
	}()
	err = httpSrv.ListenAndServe()
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

func cmdKeywords(args []string) error {
	fs := flag.NewFlagSet("keywords", flag.ExitOnError)
	asTrack := fs.Bool("track", false, "print as a single Stream API track parameter")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *asTrack {
		fmt.Println(organ.TrackTerms())
		return nil
	}
	fmt.Printf("Context terms (%d): %s\n", len(organ.ContextWords()), strings.Join(organ.ContextWords(), ", "))
	fmt.Printf("Subject terms (%d): %s\n", len(organ.SubjectWords()), strings.Join(organ.SubjectWords(), ", "))
	fmt.Printf("Keyword product: %d pairs\n", len(organ.Keywords()))
	return nil
}
