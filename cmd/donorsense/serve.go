// donorsense serve: a standalone read-only query API over a checkpoint.
// It loads the checkpoint, runs one (warm-restored) analysis refresh,
// publishes the snapshot behind /api/..., and optionally re-loads when
// the checkpoint file changes — so a collector writing checkpoints and a
// serve process reading them compose into a live pipeline without
// sharing memory.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"donorsense/internal/obs"
	"donorsense/internal/pipeline"
	"donorsense/internal/report"
	"donorsense/internal/serve"
)

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	checkpoint := fs.String("checkpoint", "", "checkpoint file to serve (required)")
	addr := fs.String("addr", ":9090", "listen address for the telemetry + /api endpoints")
	reloadEvery := fs.Duration("reload-every", 10*time.Second, "poll the checkpoint mtime and republish on change (0 = serve the initial load only)")
	k := fs.Int("k", 12, "user cluster count (Figure 7)")
	sil := fs.Int("silhouette-sample", 2000, "silhouette sample size (0 = exact)")
	workers := fs.Int("workers", 0, "analysis workers (0 = GOMAXPROCS)")
	top := fs.Int("serve-top", 250, "top mentioning users retained per snapshot for /api/top")
	logLevel := fs.String("log-level", "info", "log verbosity: debug|info|warn|error")
	logJSON := fs.Bool("log-json", false, "emit logs as single-line JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *checkpoint == "" {
		return fmt.Errorf("serve: -checkpoint is required")
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	obs.SetLogger(slog.New(obs.NewLogger(os.Stderr, level, *logJSON).Handler()))
	logger := obs.Logger("serve")

	pub := serve.NewPublisher()

	// loadAndPublish reads the checkpoint, refreshes a fresh warm-restored
	// engine, and swaps the snapshot in. It runs on the main goroutine and
	// then on the reload poller — never concurrently, and the dataset it
	// builds is private to this call, so the publish-time copy invariant
	// holds trivially.
	loadAndPublish := func() (time.Time, error) {
		fi, err := os.Stat(*checkpoint)
		if err != nil {
			return time.Time{}, err
		}
		d, err := pipeline.LoadCheckpoint(*checkpoint)
		if err != nil {
			return time.Time{}, fmt.Errorf("load checkpoint: %w", err)
		}
		if d.Users() == 0 {
			return time.Time{}, fmt.Errorf("checkpoint has no US users; nothing to serve")
		}
		cfg := report.DefaultAnalysisConfig()
		cfg.KUsers = *k
		cfg.SilhouetteSample = *sil
		cfg.Workers = *workers
		cfg.SweepKs = nil
		engine := report.NewEngine(d, cfg)
		if err := engine.RestoreWarm(d.AnalyticsState()); err != nil {
			logger.Warn("ignoring unreadable analytics warm state", "err", err)
		}
		a, err := engine.Refresh()
		if err != nil {
			return time.Time{}, fmt.Errorf("analysis: %w", err)
		}
		snap, err := pub.Publish(a, serve.Meta{
			Epoch:     engine.Epoch(),
			Refreshes: engine.Refreshes(),
			Top:       report.TopMentioners(d, *top),
		})
		if err != nil {
			return time.Time{}, err
		}
		logger.Info("snapshot published",
			"seq", snap.Seq, "epoch", snap.Epoch, "users", snap.Users,
			"etag", snap.ETag(), "checkpoint_mtime", fi.ModTime().Format(time.RFC3339))
		return fi.ModTime(), nil
	}

	mtime, err := loadAndPublish()
	if err != nil {
		return err
	}

	reg := obs.NewRegistry()
	srv := obs.NewServer(reg)
	handler := serve.NewHandler(pub)
	handler.SetMetrics(serve.NewMetrics(reg, pub))
	srv.SetQueryAPI(handler)
	srv.OnShutdown(pub.BeginDrain)
	srv.AddStatus("serve", serveStatus(pub))
	srv.AddStatus("memory", obs.MemStatsStatusSection(nil))
	srv.AddHealthCheck("snapshot", func() (any, error) {
		st := pub.Stats()
		detail := map[string]any{"seq": st.Seq, "epoch": st.Epoch}
		if st.Draining {
			return detail, fmt.Errorf("draining")
		}
		return detail, nil
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *reloadEvery > 0 {
		go func() {
			tick := time.NewTicker(*reloadEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
				}
				fi, err := os.Stat(*checkpoint)
				if err != nil || !fi.ModTime().After(mtime) {
					continue
				}
				m, err := loadAndPublish()
				if err != nil {
					logger.Warn("checkpoint reload failed; keeping current snapshot", "err", err)
					continue
				}
				mtime = m
			}
		}()
	}

	logger.Info("serving", "addr", *addr, "checkpoint", *checkpoint,
		"reload_every", reloadEvery.String())
	if err := srv.ListenAndServe(ctx, *addr); err != nil {
		return err
	}
	// ListenAndServe already drained in-flight requests via Shutdown; a
	// bounded Drain double-checks the handler-side count went to zero.
	drainCtx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := pub.Drain(drainCtx); err != nil {
		logger.Warn("drain incomplete", "inflight", pub.Inflight())
	}
	logger.Info("serve stopped", "stats", fmt.Sprintf("%+v", pub.Stats()))
	return nil
}
