package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"donorsense/internal/obs"
	"donorsense/internal/obs/trace"
	"donorsense/internal/organ"
	"donorsense/internal/pipeline"
	"donorsense/internal/twitter"
)

// waterfallStages is the complete per-tweet span chain the tracing
// tentpole promises: stream read → wire decode → organ extraction →
// geocode → in-order fold.
var waterfallStages = []string{
	"stream.read", "wire.decode", "ingest.extract", "ingest.locate", "ingest.fold",
}

// TestTraceSmokeWaterfall is the end-to-end smoke test behind `make
// trace-smoke`: collect a corpus through the sharded supervisor at 100%
// sampling, then assert /debug/traces serves complete per-tweet
// waterfalls with shard attribution and a checkpoint.save continuation,
// and /statusz reports every shard.
func TestTraceSmokeWaterfall(t *testing.T) {
	corpus := durableCorpus()
	b := twitter.NewBroadcaster()
	ssrv := twitter.NewStreamServer(b)
	ssrv.SubscriberBuffer = 1 << 16
	hs := httptest.NewServer(ssrv.Handler())
	defer hs.Close()

	tracer := trace.New(trace.Config{SampleRate: 1, RingSize: 1 << 15, SlowSpan: time.Hour})
	client := &twitter.StreamClient{BaseURL: hs.URL, Tracer: tracer}

	reg := obs.NewRegistry()
	sup, err := pipeline.NewSupervisor(pipeline.SupervisorConfig{
		Shards:           2,
		CheckpointBase:   filepath.Join(t.TempDir(), "smoke.ckpt"),
		CheckpointEveryN: 500,
		Tracer:           tracer,
		Metrics:          pipeline.NewShardMetrics(reg),
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	out := make(chan twitter.Tweet, 256)
	errc := make(chan error, 1)
	go func() { errc <- client.Filter(ctx, organ.TrackTerms(), out) }()
	go func() {
		deadline := time.Now().Add(5 * time.Second)
		for b.NumSubscribers() == 0 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		for _, tw := range corpus {
			b.Publish(tw)
		}
		b.Close()
	}()
	if err := sup.Run(ctx, out); err != nil {
		t.Fatalf("supervisor Run: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("Filter: %v", err)
	}

	osrv := obs.NewServer(reg)
	osrv.SetTraceRing(tracer.Ring())
	osrv.AddStatus("shards", shardStatusSection(func() *pipeline.Supervisor { return sup }))
	ts := httptest.NewServer(osrv.Handler())
	defer ts.Close()

	// JSON view: at least one trace must hold the complete waterfall.
	var body struct {
		Traces int `json:"traces"`
		Spans  []struct {
			TraceID string            `json:"trace_id"`
			Name    string            `json:"name"`
			Attrs   map[string]string `json:"attrs"`
		} `json:"spans"`
	}
	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d\n%s", path, resp.StatusCode, raw)
		}
		return string(raw)
	}
	if err := json.Unmarshal([]byte(get("/debug/traces?format=json")), &body); err != nil {
		t.Fatalf("traces json: %v", err)
	}
	if body.Traces == 0 {
		t.Fatal("no traces recorded at 100% sampling")
	}
	stages := map[string]map[string]bool{} // trace id → span-name set
	foldAttributed := false
	var checkpointTraces []string
	for _, sp := range body.Spans {
		if stages[sp.TraceID] == nil {
			stages[sp.TraceID] = map[string]bool{}
		}
		stages[sp.TraceID][sp.Name] = true
		if sp.Name == "ingest.fold" && sp.Attrs["shard"] != "" && sp.Attrs["incarnation"] != "" {
			foldAttributed = true
		}
		if sp.Name == "checkpoint.save" {
			checkpointTraces = append(checkpointTraces, sp.TraceID)
		}
	}
	var completeTrace string
	for id, names := range stages {
		complete := true
		for _, stage := range waterfallStages {
			if !names[stage] {
				complete = false
				break
			}
		}
		if complete {
			completeTrace = id
			break
		}
	}
	if completeTrace == "" {
		t.Fatalf("no complete waterfall among %d traces", len(stages))
	}
	if !foldAttributed {
		t.Error("no fold span carries shard+incarnation attribution")
	}
	if len(checkpointTraces) == 0 {
		t.Error("no checkpoint.save span recorded")
	}
	// The checkpoint span continues a folded tweet's trace — the
	// waterfall reaches from stream read into durability.
	continues := false
	for _, id := range checkpointTraces {
		if stages[id]["ingest.fold"] {
			continues = true
			break
		}
	}
	if !continues {
		t.Error("checkpoint.save spans do not continue any folded tweet's trace")
	}

	// Text view of the complete trace renders a waterfall.
	text := get("/debug/traces?format=text&trace=" + completeTrace)
	if !strings.Contains(text, "=== trace "+completeTrace) || !strings.Contains(text, "ingest.fold") {
		t.Errorf("text waterfall missing for trace %s:\n%s", completeTrace, text)
	}

	// /statusz reports both shards, retired cleanly.
	statusz := get("/statusz")
	if !strings.Contains(statusz, "== shards ==") {
		t.Fatalf("statusz missing shards section:\n%s", statusz)
	}
	for _, row := range []string{"0      done", "1      done"} {
		if !strings.Contains(statusz, row) {
			t.Errorf("statusz missing shard row %q:\n%s", row, statusz)
		}
	}
}
