package main

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"donorsense/internal/obs"
	"donorsense/internal/organ"
	"donorsense/internal/pipeline"
	"donorsense/internal/report"
	"donorsense/internal/serve"
	"donorsense/internal/twitter"
)

// scrapeMetrics fetches and parses a /metrics exposition into a
// series → value map (labels kept verbatim in the key).
func scrapeMetrics(t *testing.T, url string) (map[string]float64, string) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	series := make(map[string]float64)
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		series[line[:sp]] = v
	}
	return series, body
}

// TestTelemetryMatchesInjectedChaosFaults runs the chaos simulator
// against a fully instrumented collect loop (stream client + pipeline +
// checkpoint), then scrapes /metrics and asserts the reported counters
// equal the faults the simulator actually injected — the property that
// makes a multi-day run's telemetry trustworthy.
func TestTelemetryMatchesInjectedChaosFaults(t *testing.T) {
	corpus := durableCorpus()
	cs := twitter.NewChaosServer(corpus, twitter.ChaosConfig{
		Seed:            11,
		FaultRate:       0.03,
		StallDuration:   10 * time.Second, // client watchdog must fire first
		RateLimitRate:   0.2,
		ServerErrorRate: 0.2,
		RetryAfter:      10 * time.Millisecond,
	})
	hs := httptest.NewServer(cs.Handler())
	defer hs.Close()

	reg := obs.NewRegistry()
	client := &twitter.StreamClient{
		BaseURL:          hs.URL,
		InitialBackoff:   2 * time.Millisecond,
		MaxBackoff:       8 * time.Millisecond,
		RateLimitBackoff: time.Millisecond,
		StallTimeout:     150 * time.Millisecond,
		HealthyTweets:    20,
	}
	twitter.NewStreamMetrics(reg).Instrument(reg, client)

	d := pipeline.NewDataset()
	d.SetMetrics(pipeline.NewMetrics(reg))

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	out := make(chan twitter.Tweet, 256)
	errc := make(chan error, 1)
	go func() { errc <- client.Filter(ctx, organ.TrackTerms(), out) }()
	for tw := range out {
		d.Process(tw)
	}
	if err := <-errc; err != nil {
		t.Fatalf("Filter: %v", err)
	}
	// One checkpoint save so the durability metrics are live too.
	ckpt := filepath.Join(t.TempDir(), "telemetry.ckpt")
	if err := d.SaveCheckpoint(ckpt); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}

	// One incremental analysis refresh so the analytics families are live.
	ecfg := report.DefaultAnalysisConfig()
	ecfg.KUsers = 0
	ecfg.SweepKs = nil
	ecfg.SilhouetteSample = 0
	ecfg.Workers = 1
	eng := report.NewEngine(d, ecfg)
	eng.SetMetrics(report.NewEngineMetrics(reg))
	a, err := eng.Refresh()
	if err != nil {
		t.Fatalf("engine Refresh: %v", err)
	}

	// One snapshot publish behind the query API so the serve families are
	// live in the same exposition.
	pub := serve.NewPublisher()
	apiHandler := serve.NewHandler(pub)
	apiHandler.SetMetrics(serve.NewMetrics(reg, pub))
	if _, err := pub.Publish(a, serve.Meta{
		Epoch:     eng.Epoch(),
		Refreshes: eng.Refreshes(),
		Top:       report.TopMentioners(d, 25),
	}); err != nil {
		t.Fatalf("snapshot publish: %v", err)
	}

	// A minimal sharded run + merge so the supervisor and merge families
	// are live in the same exposition.
	sup, err := pipeline.NewSupervisor(pipeline.SupervisorConfig{
		Shards:  2,
		Metrics: pipeline.NewShardMetrics(reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	shardIn := make(chan twitter.Tweet)
	close(shardIn)
	if err := sup.Run(ctx, shardIn); err != nil {
		t.Fatalf("supervisor Run: %v", err)
	}
	if _, err := sup.Merged(); err != nil {
		t.Fatalf("Merged: %v", err)
	}

	osrv := obs.NewServer(reg)
	osrv.SetQueryAPI(apiHandler)
	ts := httptest.NewServer(osrv.Handler())
	defer ts.Close()

	// Drive each serve result class once — a cached hit, a 304
	// revalidation, and a cold parameterized render — so the per-result
	// series carry exact, assertable values.
	resp, err := http.Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	etag := resp.Header.Get("Etag")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || etag == "" {
		t.Fatalf("GET /api/stats: status %d etag %q", resp.StatusCode, etag)
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/stats", nil)
	req.Header.Set("If-None-Match", etag)
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation GET: status %d, want 304", resp.StatusCode)
	}
	if resp, err = http.Get(ts.URL + "/api/top?k=3"); err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /api/top?k=3: status %d", resp.StatusCode)
	}

	series, body := scrapeMetrics(t, ts.URL)

	injected := cs.Stats()
	if injected.Stalls+injected.Malformed+injected.Oversized+injected.RateLimited == 0 {
		t.Fatal("chaos injected no faults; test exercised nothing")
	}

	// Injected fault counts must equal the scraped metric values.
	equal := map[string]float64{
		"donorsense_stream_stalls_total":          float64(injected.Stalls),
		"donorsense_stream_malformed_lines_total": float64(injected.Malformed),
		"donorsense_stream_skipped_lines_total":   float64(injected.Oversized),
		"donorsense_stream_rate_limits_total":     float64(injected.RateLimited),
		"donorsense_stream_delete_notices_total":  float64(injected.Deletes),
		"donorsense_stream_tweets_total":          float64(injected.Delivered),
	}
	for name, want := range equal {
		got, ok := series[name]
		if !ok {
			t.Errorf("metric %s missing from /metrics", name)
			continue
		}
		if got != want {
			t.Errorf("%s = %g, injected = %g", name, got, want)
		}
	}

	// The pipeline saw exactly what the stream delivered.
	pipelineTotal := series[`donorsense_pipeline_tweets_total{outcome="rejected"}`] +
		series[`donorsense_pipeline_tweets_total{outcome="collected_non_us"}`] +
		series[`donorsense_pipeline_tweets_total{outcome="collected_us"}`]
	if pipelineTotal != float64(injected.Delivered) {
		t.Errorf("pipeline outcomes sum = %g, stream delivered %d", pipelineTotal, injected.Delivered)
	}

	// Checkpoint metrics are live after one save.
	if series["donorsense_checkpoint_saves_total"] != 1 {
		t.Errorf("checkpoint_saves_total = %g, want 1", series["donorsense_checkpoint_saves_total"])
	}
	if series["donorsense_checkpoint_bytes"] <= 0 {
		t.Errorf("checkpoint_bytes = %g, want > 0", series["donorsense_checkpoint_bytes"])
	}

	// Acceptance: the endpoint exposes ≥ 20 distinct families covering
	// stream health, every pipeline stage, geocode cache, checkpointing.
	families := 0
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			families++
		}
	}
	if families < 20 {
		t.Errorf("exposed %d metric families, want >= 20\n%s", families, body)
	}
	for _, must := range []string{
		"donorsense_stream_connected",
		"donorsense_stream_backoff_wait_seconds",
		"donorsense_pipeline_stage_seconds",
		"donorsense_pipeline_geocode_cache_hits_total",
		"donorsense_pipeline_geocode_cache_misses_total",
		"donorsense_geo_resolutions_total",
		"donorsense_pipeline_usa_filter_total",
		"donorsense_checkpoint_save_seconds",
		`donorsense_shard_restarts_total{shard="0"}`,
		`donorsense_shard_buffer_depth{shard="1"}`,
		"donorsense_shard_heartbeat_age_seconds",
		"donorsense_shard_buffer_full_total",
		"donorsense_checkpoint_fallbacks_total",
		"donorsense_merge_seconds",
		"donorsense_analytics_refresh_seconds",
		"donorsense_analytics_epoch",
		"donorsense_analytics_dirty_rows",
		"donorsense_serve_requests_total",
		"donorsense_serve_render_seconds",
		"donorsense_serve_cache_size",
	} {
		if !strings.Contains(body, must) {
			t.Errorf("family %s missing from exposition", must)
		}
	}

	// The mini sharded run registered one merge.
	if series["donorsense_merges_total"] != 1 {
		t.Errorf("merges_total = %g, want 1", series["donorsense_merges_total"])
	}

	// The analytics engine observed exactly one (cold) refresh.
	if series["donorsense_analytics_refresh_seconds_count"] != 1 {
		t.Errorf("analytics_refresh_seconds_count = %g, want 1",
			series["donorsense_analytics_refresh_seconds_count"])
	}
	if series["donorsense_analytics_epoch"] != 0 {
		t.Errorf("analytics_epoch = %g, want 0 after a cold build",
			series["donorsense_analytics_epoch"])
	}

	// The serve layer counted exactly what the three API requests did:
	// one cached hit, one 304, one cold render that landed in the cache.
	serveExact := map[string]float64{
		`donorsense_serve_requests_total{endpoint="stats",result="hit"}`:          1,
		`donorsense_serve_requests_total{endpoint="stats",result="not_modified"}`: 1,
		`donorsense_serve_requests_total{endpoint="top",result="render"}`:         1,
		"donorsense_serve_render_seconds_count":                                   1,
		"donorsense_serve_cache_size":                                             1,
	}
	for name, want := range serveExact {
		if got := series[name]; got != want {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}

	// Histogram quantiles must be derivable: the stage histogram's +Inf
	// bucket equals its count.
	inf := series[`donorsense_pipeline_stage_seconds_bucket{stage="ingest",le="+Inf"}`]
	cnt := series[`donorsense_pipeline_stage_seconds_count{stage="ingest"}`]
	if inf == 0 || inf != cnt {
		t.Errorf("ingest histogram +Inf bucket %g != count %g (or zero)", inf, cnt)
	}
}
