package main

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"donorsense/internal/twitter"
)

func TestParseKs(t *testing.T) {
	tests := []struct {
		in      string
		want    []int
		wantErr bool
	}{
		{"", nil, false},
		{"12", []int{12}, false},
		{"6, 8,12", []int{6, 8, 12}, false},
		{"6,x", nil, true},
		{"6,,8", nil, true},
	}
	for _, tt := range tests {
		got, err := parseKs(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseKs(%q) err = %v", tt.in, err)
			continue
		}
		if !tt.wantErr && !reflect.DeepEqual(got, tt.want) {
			t.Errorf("parseKs(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestNewSeriesFor(t *testing.T) {
	base := time.Date(2015, 4, 22, 10, 0, 0, 0, time.UTC)
	tweets := []twitter.Tweet{
		{CreatedAt: base},
		{CreatedAt: base.AddDate(0, 0, 9)},
		{CreatedAt: base.AddDate(0, 0, 4)},
	}
	s, err := newSeriesFor(tweets)
	if err != nil {
		t.Fatal(err)
	}
	if s.Days() != 10 {
		t.Errorf("Days = %d, want 10", s.Days())
	}
	if _, err := newSeriesFor(nil); err == nil {
		t.Error("empty corpus accepted")
	}
}

// captureStdout runs fn with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(r)
		done <- buf.String()
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if ferr != nil {
		t.Fatalf("command failed: %v\noutput so far:\n%s", ferr, out)
	}
	return out
}

func TestGenerateAnalyzeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	corpus := filepath.Join(dir, "corpus.ndjson")
	if err := cmdGenerate([]string{"-scale", "0.01", "-seed", "7", "-out", corpus}); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(corpus)
	if err != nil || info.Size() == 0 {
		t.Fatalf("corpus not written: %v", err)
	}
	out := captureStdout(t, func() error {
		return cmdAnalyze([]string{"-in", corpus, "-sweep", "", "-k", "6"})
	})
	for _, want := range []string{"Table I", "Figure 2(a)", "Figure 5", "Spearman"} {
		if !strings.Contains(out, want) {
			t.Errorf("analyze output missing %q", want)
		}
	}
}

func TestAnalyzeExtensionsFlag(t *testing.T) {
	dir := t.TempDir()
	corpus := filepath.Join(dir, "corpus.ndjson")
	if err := cmdGenerate([]string{"-scale", "0.01", "-out", corpus}); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() error {
		return cmdAnalyze([]string{"-in", corpus, "-sweep", "", "-k", "6", "-extensions"})
	})
	for _, want := range []string{"=== Extensions ===", "multiple-testing", "Temporal sensor"} {
		if !strings.Contains(out, want) {
			t.Errorf("extensions output missing %q", want)
		}
	}
}

func TestKeywordsCommand(t *testing.T) {
	out := captureStdout(t, func() error { return cmdKeywords(nil) })
	if !strings.Contains(out, "Context terms (17)") || !strings.Contains(out, "323 pairs") {
		t.Errorf("keywords output wrong:\n%s", out)
	}
	track := captureStdout(t, func() error { return cmdKeywords([]string{"-track"}) })
	if !strings.Contains(track, "donor kidney") && !strings.Contains(track, "donor heart") {
		t.Errorf("track output wrong: %.120s", track)
	}
}

func TestAnalyzeMissingFile(t *testing.T) {
	if err := cmdAnalyze([]string{"-in", "/nonexistent/file.ndjson"}); err == nil {
		t.Error("missing input accepted")
	}
}
