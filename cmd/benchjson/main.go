// Command benchjson converts standard `go test -bench` text output into
// a JSON document, so benchmark runs can be archived and diffed by
// machines while the original text stays benchstat-friendly.
//
//	go test -run '^$' -bench . -benchmem ./internal/pipeline/ | tee bench.txt
//	benchjson -in bench.txt -out BENCH_pipeline.json
//
// Repeated names (from -count N) become repeated entries; downstream
// tooling can aggregate however it likes.
//
// With -compare it instead diffs two archived JSON runs and gates on
// regressions — the perf-PR guard `make benchcmp` builds on:
//
//	benchjson -compare [-threshold 10] old.json new.json
//
// Repeated entries are averaged, ns/op and allocs/op deltas are printed
// per benchmark, and the exit status is 1 when either metric regresses
// by more than the threshold percentage on any benchmark present in both
// files.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// benchRun is one benchmark result line.
type benchRun struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"` // unit → value, e.g. "ns/op": 1234.5
}

// benchDoc is the whole converted run.
type benchDoc struct {
	Goos       string     `json:"goos,omitempty"`
	Goarch     string     `json:"goarch,omitempty"`
	Pkg        string     `json:"pkg,omitempty"`
	CPU        string     `json:"cpu,omitempty"`
	Benchmarks []benchRun `json:"benchmarks"`
}

// parse reads go-bench text and extracts header context plus result lines.
func parse(r io.Reader) (benchDoc, error) {
	doc := benchDoc{Benchmarks: []benchRun{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // PASS/FAIL or some other Benchmark-prefixed text
		}
		run := benchRun{
			Name:       strings.TrimPrefix(fields[0], "Benchmark"),
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		// Remaining fields come in (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return doc, fmt.Errorf("bad metric value %q in line %q", fields[i], line)
			}
			run.Metrics[fields[i+1]] = v
		}
		doc.Benchmarks = append(doc.Benchmarks, run)
	}
	return doc, sc.Err()
}

// loadDoc reads an archived benchmark JSON document.
func loadDoc(path string) (benchDoc, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return benchDoc{}, err
	}
	var doc benchDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		return benchDoc{}, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// aggregate averages repeated entries (from -count N runs) into one
// metric map per benchmark name.
func aggregate(doc benchDoc) map[string]map[string]float64 {
	sums := map[string]map[string]float64{}
	counts := map[string]map[string]int{}
	for _, run := range doc.Benchmarks {
		if sums[run.Name] == nil {
			sums[run.Name] = map[string]float64{}
			counts[run.Name] = map[string]int{}
		}
		for unit, v := range run.Metrics {
			sums[run.Name][unit] += v
			counts[run.Name][unit]++
		}
	}
	for name, m := range sums {
		for unit := range m {
			m[unit] /= float64(counts[name][unit])
		}
	}
	return sums
}

// compareUnits are the metrics the regression gate inspects.
var compareUnits = []string{"ns/op", "allocs/op"}

// compare diffs two aggregated runs, writing a per-benchmark report to w.
// It returns the names that regressed beyond threshold percent on any
// gated metric.
func compare(w io.Writer, oldAgg, newAgg map[string]map[string]float64, threshold float64) []string {
	names := make([]string, 0, len(newAgg))
	for name := range newAgg {
		if _, ok := oldAgg[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var regressed []string
	for _, name := range names {
		bad := false
		fmt.Fprintf(w, "%s\n", name)
		for _, unit := range compareUnits {
			o, hasOld := oldAgg[name][unit]
			n, hasNew := newAgg[name][unit]
			if !hasOld || !hasNew {
				continue
			}
			var delta float64
			switch {
			case o != 0:
				delta = (n - o) / o * 100
			case n != 0:
				delta = math.Inf(1) // 0 → something is an unbounded regression
			}
			mark := ""
			if delta > threshold {
				mark = "  REGRESSION"
				bad = true
			}
			fmt.Fprintf(w, "  %-10s %14.2f → %14.2f  %+7.2f%%%s\n", unit, o, n, delta, mark)
		}
		if bad {
			regressed = append(regressed, name)
		}
	}
	for name := range newAgg {
		if _, ok := oldAgg[name]; !ok {
			fmt.Fprintf(w, "%s\n  (new benchmark, no baseline)\n", name)
		}
	}
	for name := range oldAgg {
		if _, ok := newAgg[name]; !ok {
			fmt.Fprintf(w, "%s\n  (baseline only, not in new run)\n", name)
		}
	}
	return regressed
}

// runCompare drives -compare mode and returns the process exit code.
func runCompare(args []string, threshold float64) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: old.json new.json")
		return 2
	}
	oldDoc, err := loadDoc(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	newDoc, err := loadDoc(args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	regressed := compare(os.Stdout, aggregate(oldDoc), aggregate(newDoc), threshold)
	if len(regressed) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %.1f%%: %s\n",
			len(regressed), threshold, strings.Join(regressed, ", "))
		return 1
	}
	fmt.Printf("no regressions beyond %.1f%%\n", threshold)
	return 0
}

func main() {
	in := flag.String("in", "-", "bench text input file (- = stdin)")
	out := flag.String("out", "-", "JSON output file (- = stdout)")
	cmp := flag.Bool("compare", false, "compare two archived JSON runs (old.json new.json) instead of converting")
	threshold := flag.Float64("threshold", 10, "allowed ns/op and allocs/op regression percent in -compare mode")
	flag.Parse()

	if *cmp {
		os.Exit(runCompare(flag.Args(), *threshold))
	}

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	doc, err := parse(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if *out == "-" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
