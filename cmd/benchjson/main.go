// Command benchjson converts standard `go test -bench` text output into
// a JSON document, so benchmark runs can be archived and diffed by
// machines while the original text stays benchstat-friendly.
//
//	go test -run '^$' -bench . -benchmem ./internal/pipeline/ | tee bench.txt
//	benchjson -in bench.txt -out BENCH_pipeline.json
//
// Repeated names (from -count N) become repeated entries; downstream
// tooling can aggregate however it likes.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// benchRun is one benchmark result line.
type benchRun struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"` // unit → value, e.g. "ns/op": 1234.5
}

// benchDoc is the whole converted run.
type benchDoc struct {
	Goos       string     `json:"goos,omitempty"`
	Goarch     string     `json:"goarch,omitempty"`
	Pkg        string     `json:"pkg,omitempty"`
	CPU        string     `json:"cpu,omitempty"`
	Benchmarks []benchRun `json:"benchmarks"`
}

// parse reads go-bench text and extracts header context plus result lines.
func parse(r io.Reader) (benchDoc, error) {
	doc := benchDoc{Benchmarks: []benchRun{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // PASS/FAIL or some other Benchmark-prefixed text
		}
		run := benchRun{
			Name:       strings.TrimPrefix(fields[0], "Benchmark"),
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		// Remaining fields come in (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return doc, fmt.Errorf("bad metric value %q in line %q", fields[i], line)
			}
			run.Metrics[fields[i+1]] = v
		}
		doc.Benchmarks = append(doc.Benchmarks, run)
	}
	return doc, sc.Err()
}

func main() {
	in := flag.String("in", "-", "bench text input file (- = stdin)")
	out := flag.String("out", "-", "JSON output file (- = stdout)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	doc, err := parse(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if *out == "-" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
