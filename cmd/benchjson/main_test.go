package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: donorsense/internal/pipeline
cpu: Example CPU @ 2.00GHz
BenchmarkProcess-8   	  123456	      9876 ns/op	    1234 B/op	      12 allocs/op
BenchmarkProcessAll-8	     500	   2345678 ns/op
PASS
ok  	donorsense/internal/pipeline	3.456s
`
	doc, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.Pkg != "donorsense/internal/pipeline" {
		t.Errorf("header = %+v", doc)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
	}
	b0 := doc.Benchmarks[0]
	if b0.Name != "Process-8" || b0.Iterations != 123456 {
		t.Errorf("b0 = %+v", b0)
	}
	if b0.Metrics["ns/op"] != 9876 || b0.Metrics["B/op"] != 1234 || b0.Metrics["allocs/op"] != 12 {
		t.Errorf("b0 metrics = %v", b0.Metrics)
	}
	if doc.Benchmarks[1].Metrics["ns/op"] != 2345678 {
		t.Errorf("b1 metrics = %v", doc.Benchmarks[1].Metrics)
	}
}

func TestAggregateAveragesRepeats(t *testing.T) {
	doc := benchDoc{Benchmarks: []benchRun{
		{Name: "X-8", Metrics: map[string]float64{"ns/op": 100, "allocs/op": 4}},
		{Name: "X-8", Metrics: map[string]float64{"ns/op": 300, "allocs/op": 4}},
		{Name: "Y-8", Metrics: map[string]float64{"ns/op": 50}},
	}}
	agg := aggregate(doc)
	if agg["X-8"]["ns/op"] != 200 || agg["X-8"]["allocs/op"] != 4 {
		t.Errorf("X-8 = %v", agg["X-8"])
	}
	if agg["Y-8"]["ns/op"] != 50 {
		t.Errorf("Y-8 = %v", agg["Y-8"])
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	oldAgg := map[string]map[string]float64{
		"Fast-8":   {"ns/op": 100, "allocs/op": 10},
		"Slow-8":   {"ns/op": 100, "allocs/op": 10},
		"Allocs-8": {"ns/op": 100, "allocs/op": 0},
		"Gone-8":   {"ns/op": 100},
	}
	newAgg := map[string]map[string]float64{
		"Fast-8":   {"ns/op": 90, "allocs/op": 10},  // improved
		"Slow-8":   {"ns/op": 150, "allocs/op": 10}, // +50% ns/op
		"Allocs-8": {"ns/op": 100, "allocs/op": 3},  // 0 → 3 allocs
		"New-8":    {"ns/op": 1},
	}
	var sb strings.Builder
	regressed := compare(&sb, oldAgg, newAgg, 10)
	if len(regressed) != 2 || regressed[0] != "Allocs-8" || regressed[1] != "Slow-8" {
		t.Errorf("regressed = %v, want [Allocs-8 Slow-8]", regressed)
	}
	out := sb.String()
	for _, want := range []string{"REGRESSION", "new benchmark, no baseline", "baseline only, not in new run"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	oldAgg := map[string]map[string]float64{"A-8": {"ns/op": 100, "allocs/op": 10}}
	newAgg := map[string]map[string]float64{"A-8": {"ns/op": 105, "allocs/op": 10}}
	var sb strings.Builder
	if regressed := compare(&sb, oldAgg, newAgg, 10); len(regressed) != 0 {
		t.Errorf("regressed = %v, want none within threshold", regressed)
	}
}
