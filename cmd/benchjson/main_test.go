package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: donorsense/internal/pipeline
cpu: Example CPU @ 2.00GHz
BenchmarkProcess-8   	  123456	      9876 ns/op	    1234 B/op	      12 allocs/op
BenchmarkProcessAll-8	     500	   2345678 ns/op
PASS
ok  	donorsense/internal/pipeline	3.456s
`
	doc, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.Pkg != "donorsense/internal/pipeline" {
		t.Errorf("header = %+v", doc)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
	}
	b0 := doc.Benchmarks[0]
	if b0.Name != "Process-8" || b0.Iterations != 123456 {
		t.Errorf("b0 = %+v", b0)
	}
	if b0.Metrics["ns/op"] != 9876 || b0.Metrics["B/op"] != 1234 || b0.Metrics["allocs/op"] != 12 {
		t.Errorf("b0 metrics = %v", b0.Metrics)
	}
	if doc.Benchmarks[1].Metrics["ns/op"] != 2345678 {
		t.Errorf("b1 metrics = %v", doc.Benchmarks[1].Metrics)
	}
}
