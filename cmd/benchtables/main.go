// Command benchtables regenerates every table and figure of the paper's
// evaluation in one run and prints them in paper order, together with the
// ablation comparisons DESIGN.md calls out. It is the programmatic
// companion to the root-level Go benchmarks: the benches time the
// computations, benchtables shows their output.
//
//	benchtables -scale 0.5          # ≈36k US users; CI significance holds
//	benchtables -scale 1.0          # paper-magnitude run (≈1M tweets)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"donorsense/internal/cluster"
	"donorsense/internal/core"
	"donorsense/internal/gen"
	"donorsense/internal/influence"
	"donorsense/internal/organ"
	"donorsense/internal/pipeline"
	"donorsense/internal/report"
	"donorsense/internal/roles"
	"donorsense/internal/temporal"
	"donorsense/internal/text"
	"donorsense/internal/twitter"
)

func main() {
	scale := flag.Float64("scale", 0.5, "corpus scale (1.0 = paper magnitude)")
	seed := flag.Uint64("seed", 1, "random seed")
	k := flag.Int("k", 12, "user cluster count")
	flag.Parse()
	if err := run(*scale, *seed, *k); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}

func run(scale float64, seed uint64, k int) error {
	start := time.Now()
	cfg := gen.DefaultConfig(scale)
	cfg.Seed = seed
	fmt.Fprintf(os.Stderr, "[1/3] generating corpus at scale %g...\n", scale)
	corpus := gen.Generate(cfg)

	fmt.Fprintf(os.Stderr, "[2/3] running pipeline over %d tweets...\n", len(corpus.Tweets))
	d := pipeline.NewDataset()
	series, err := temporal.NewSeries(cfg.Start, cfg.Days)
	if err != nil {
		return err
	}
	d.OnUSTweet = func(tw twitter.Tweet, ex text.Extraction) {
		series.Observe(tw, ex)
	}
	rejected, _, _ := d.ProcessAll(corpus.Tweets, 0)
	fmt.Fprintf(os.Stderr, "      rejected %d near-miss tweets, retained %d US tweets from %d users\n",
		rejected, d.USTweets(), d.Users())

	fmt.Fprintln(os.Stderr, "[3/3] analyzing...")
	acfg := report.DefaultAnalysisConfig()
	acfg.KUsers = k
	a, err := report.Analyze(d, acfg)
	if err != nil {
		return err
	}
	fmt.Print(a.Render())

	fmt.Println("\n=== Ablations ===")
	printDistanceAblation(a)
	printBaselineAblation(a)

	fmt.Println("\n=== Extensions ===")
	printCorrections(a)
	printTemporal(series, scale)
	printRoles(d, corpus)
	printInfluence(d, a)

	fmt.Fprintf(os.Stderr, "total time: %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// printCorrections shows how the Figure 5 map shrinks under
// multiple-testing control (the paper applies none).
func printCorrections(a *report.Analysis) {
	counts := map[string]int{}
	for _, m := range []core.Correction{core.NoCorrection, core.BHCorrection, core.BonferroniCorrection} {
		adj, err := a.Highlight.AdjustedHighlights(m)
		if err != nil {
			return
		}
		counts[m.String()] = core.CountHighlights(adj)
	}
	fmt.Print(report.CorrectionComparisonText(counts))
}

// printTemporal runs the burst detector over the collected series.
func printTemporal(series *temporal.Series, scale float64) {
	det := temporal.DefaultDetectorConfig()
	if scale < 0.4 {
		det.Threshold = 2.5
		det.MinCount = 8
	}
	bursts, err := temporal.DetectAll(series, det)
	if err != nil {
		fmt.Fprintln(os.Stderr, "temporal:", err)
		return
	}
	fmt.Print(report.TemporalText(series, bursts))
}

// printRoles trains and evaluates the user-role classifier against the
// generator's ground truth.
func printRoles(d *pipeline.Dataset, corpus *gen.Corpus) {
	samples := roles.SamplesFromDataset(d, func(id int64) (int, bool) {
		p, ok := corpus.Profiles[id]
		return int(p.Role), ok
	})
	train, test := roles.SplitTrainTest(samples, 0.7)
	nb, err := roles.Train(train, gen.NumRoles)
	if err != nil {
		fmt.Fprintln(os.Stderr, "roles:", err)
		return
	}
	ev, err := roles.Evaluate(nb, test)
	if err != nil {
		fmt.Fprintln(os.Stderr, "roles:", err)
		return
	}
	fmt.Print(report.RoleEvaluationText(ev))
}

// printInfluence runs the campaign planner over the dataset's users.
func printInfluence(d *pipeline.Dataset, a *report.Analysis) {
	topic := organ.Lung
	nodes := make([]influence.Node, 0, a.Attention.Users())
	d.EachUser(func(u *pipeline.UserRecord) {
		row := a.Attention.RowOf(u.ID)
		if row < 0 {
			return
		}
		nodes = append(nodes, influence.Node{
			UserID:    u.ID,
			StateCode: u.StateCode,
			Primary:   a.Attention.PrimaryOrgan(row),
			Activity:  u.Tweets,
		})
	})
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].UserID < nodes[j].UserID })
	g, err := influence.SyntheticGraph(nodes, influence.DefaultGraphConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "influence:", err)
		return
	}
	ccfg := influence.DefaultCascadeConfig(topic)
	ccfg.Runs = 24
	c, err := influence.NewCascade(g, ccfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "influence:", err)
		return
	}
	plan, err := influence.PlanCampaign(c, 4)
	if err != nil {
		fmt.Fprintln(os.Stderr, "influence:", err)
		return
	}
	fmt.Print(report.InfluencePlanText(topic, g, plan))
}

// printDistanceAblation contrasts state clusterings under the paper's
// Bhattacharyya distance and the alternatives (§IV-B2's design choice).
func printDistanceAblation(a *report.Analysis) {
	rows, codes := a.Regions.NonEmptyRows()
	if len(rows) < 4 {
		return
	}
	fmt.Println("Distance-metric ablation (state clustering, cut at 4):")
	for name, dist := range map[string]cluster.Distance{
		"bhattacharyya": cluster.Bhattacharyya,
		"hellinger":     cluster.Hellinger,
		"euclidean":     cluster.Euclidean,
		"jensenshannon": cluster.JensenShannon,
	} {
		m, err := cluster.PairwiseMatrix(rows, dist)
		if err != nil {
			continue
		}
		dg, err := cluster.Agglomerative(m, cluster.AverageLinkage)
		if err != nil {
			continue
		}
		labels, err := dg.Cut(4)
		if err != nil {
			continue
		}
		sizes := map[int]int{}
		ksLabel := -1
		for i, l := range labels {
			sizes[l]++
			if codes[i] == "KS" {
				ksLabel = l
			}
		}
		fmt.Printf("  %-14s cluster sizes %v, Kansas in cluster of %d states\n",
			name, sizesList(sizes), sizes[ksLabel])
	}
}

func sizesList(m map[int]int) []int {
	out := make([]int, len(m))
	for l, n := range m {
		if l < len(out) {
			out[l] = n
		}
	}
	return out
}

// printBaselineAblation contrasts RR highlighting with the
// winner-takes-all baseline (§IV-B1's design choice).
func printBaselineAblation(a *report.Analysis) {
	fmt.Println("RR vs winner-takes-all baseline:")
	heartWins, total := 0, 0
	for _, code := range a.Highlight.StateCodes {
		if a.Baseline[code] == organ.Organ(-1) {
			continue
		}
		total++
		if a.Baseline[code] == organ.Heart {
			heartWins++
		}
	}
	fmt.Printf("  winner-takes-all: heart wins %d/%d states (prevalence blind spot)\n", heartWins, total)
	for _, o := range organ.All() {
		states := a.Highlight.StatesHighlighting(o)
		if len(states) > 0 {
			fmt.Printf("  RR highlights %-10s %v\n", o.String()+":", states)
		}
	}
}
