module donorsense

go 1.22
