// Package mat implements the small dense-matrix algebra the
// characterization method needs: transpose, multiplication, Gauss-Jordan
// inversion, row normalization, and the least-squares aggregation
// K = (LᵀL)⁻¹LᵀÛ of the paper's Equation 3 — including a fast path for
// the disjoint-membership case where LᵀL is diagonal.
//
// The package is deliberately minimal and allocation-conscious rather than
// a general linear-algebra library: matrices here are at most a few tens
// of thousands of rows by a handful of columns.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a matrix inversion or solve encounters a
// (numerically) singular matrix.
var ErrSingular = errors.New("mat: singular matrix")

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("mat: incompatible shapes")

// Matrix is a dense row-major matrix of float64: a single flat backing
// slice with stride Cols(). Row i occupies data[i*cols : (i+1)*cols], so
// RowView hands out zero-copy views and the whole matrix walks linearly
// in memory — the layout the clustering engine's hot loops rely on.
type Matrix struct {
	rows, cols int
	data       []float64
}

// Dense is the name the analytics packages use for the shared flat
// row-major matrix. It is the same type as Matrix; the alias exists so
// call sites can say what they mean (a dense numeric block, not the
// package's algebra entry point).
type Dense = Matrix

// New returns a zero matrix with the given shape. It panics if either
// dimension is non-positive, since a zero-sized matrix is always a
// programming error in this codebase.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows, copying the
// data.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("%w: empty row set", ErrShape)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			return nil, fmt.Errorf("%w: row %d has %d cols, want %d", ErrShape, i, len(r), m.cols)
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// FromFlat adopts data as the backing store of a rows×cols matrix
// without copying. The slice must hold exactly rows*cols elements in
// row-major order; mutating it afterwards mutates the matrix.
func FromFlat(rows, cols int, data []float64) (*Matrix, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("%w: %dx%d", ErrShape, rows, cols)
	}
	if len(data) != rows*cols {
		return nil, fmt.Errorf("%w: %d elements for %dx%d", ErrShape, len(data), rows, cols)
	}
	return &Matrix{rows: rows, cols: cols, data: data}, nil
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Stride returns the distance in elements between the starts of
// consecutive rows of the backing slice (equal to Cols for this package's
// always-contiguous matrices).
func (m *Matrix) Stride() int { return m.cols }

// Data returns the row-major backing slice itself, for hot loops that
// want to walk the matrix without per-row slicing. Mutating it mutates
// the matrix.
func (m *Matrix) Data() []float64 { return m.data }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add adds v to the element at (i, j).
func (m *Matrix) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of %d", i, m.rows))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// RowView returns row i as a slice aliasing the matrix storage. Mutating
// the slice mutates the matrix; callers that need isolation should use
// Row.
func (m *Matrix) RowView(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: col %d out of %d", j, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Mul returns the matrix product a·b.
func Mul(a, b *Matrix) (*Matrix, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("%w: %dx%d · %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	c := New(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		crow := c.data[i*c.cols : (i+1)*c.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c, nil
}

// Inverse returns the inverse of a square matrix via Gauss-Jordan
// elimination with partial pivoting. It returns ErrSingular when a pivot
// is numerically zero.
func Inverse(a *Matrix) (*Matrix, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: inverse of %dx%d", ErrShape, a.rows, a.cols)
	}
	n := a.rows
	// Augment [A | I] and reduce.
	w := New(n, 2*n)
	for i := 0; i < n; i++ {
		copy(w.data[i*2*n:i*2*n+n], a.data[i*n:(i+1)*n])
		w.data[i*2*n+n+i] = 1
	}
	for col := 0; col < n; col++ {
		// Partial pivot: largest |value| in this column at or below row col.
		pivot := col
		best := math.Abs(w.data[col*2*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(w.data[r*2*n+col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, fmt.Errorf("%w: pivot %d", ErrSingular, col)
		}
		if pivot != col {
			swapRows(w, pivot, col)
		}
		// Scale pivot row to 1.
		pv := w.data[col*2*n+col]
		prow := w.data[col*2*n : (col+1)*2*n]
		for j := range prow {
			prow[j] /= pv
		}
		// Eliminate the column from every other row.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := w.data[r*2*n+col]
			if f == 0 {
				continue
			}
			rrow := w.data[r*2*n : (r+1)*2*n]
			for j := range rrow {
				rrow[j] -= f * prow[j]
			}
		}
	}
	inv := New(n, n)
	for i := 0; i < n; i++ {
		copy(inv.data[i*n:(i+1)*n], w.data[i*2*n+n:(i+1)*2*n])
	}
	return inv, nil
}

// Solve returns X solving A·X = B for square A via Gaussian elimination
// with partial pivoting — numerically preferable to forming A⁻¹ when the
// inverse itself is not needed. It returns ErrSingular on a (numerically)
// singular A.
func Solve(a, b *Matrix) (*Matrix, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: solve with %dx%d coefficient matrix", ErrShape, a.rows, a.cols)
	}
	if a.rows != b.rows {
		return nil, fmt.Errorf("%w: solve %dx%d against %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	n, m := a.rows, b.cols
	// Augment [A | B].
	w := New(n, n+m)
	for i := 0; i < n; i++ {
		copy(w.data[i*(n+m):i*(n+m)+n], a.data[i*n:(i+1)*n])
		copy(w.data[i*(n+m)+n:(i+1)*(n+m)], b.data[i*m:(i+1)*m])
	}
	stride := n + m
	// Forward elimination with partial pivoting.
	for col := 0; col < n; col++ {
		pivot := col
		best := math.Abs(w.data[col*stride+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(w.data[r*stride+col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, fmt.Errorf("%w: pivot %d", ErrSingular, col)
		}
		if pivot != col {
			swapRows(w, pivot, col)
		}
		prow := w.data[col*stride : (col+1)*stride]
		for r := col + 1; r < n; r++ {
			f := w.data[r*stride+col] / prow[col]
			if f == 0 {
				continue
			}
			rrow := w.data[r*stride : (r+1)*stride]
			for j := col; j < stride; j++ {
				rrow[j] -= f * prow[j]
			}
		}
	}
	// Back substitution.
	x := New(n, m)
	for i := n - 1; i >= 0; i-- {
		irow := w.data[i*stride : (i+1)*stride]
		for j := 0; j < m; j++ {
			v := irow[n+j]
			for k := i + 1; k < n; k++ {
				v -= irow[k] * x.data[k*m+j]
			}
			x.data[i*m+j] = v / irow[i]
		}
	}
	return x, nil
}

func swapRows(m *Matrix, a, b int) {
	ra := m.data[a*m.cols : (a+1)*m.cols]
	rb := m.data[b*m.cols : (b+1)*m.cols]
	for j := range ra {
		ra[j], rb[j] = rb[j], ra[j]
	}
}

// NormalizeRows scales every row of m in place so it sums to 1, turning
// count rows into discrete distributions (the Û of the paper). Rows whose
// sum is zero are left untouched and reported in the returned slice so the
// caller can drop or inspect them.
func (m *Matrix) NormalizeRows() (zeroRows []int) {
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		if sum == 0 {
			zeroRows = append(zeroRows, i)
			continue
		}
		for j := range row {
			row[j] /= sum
		}
	}
	return zeroRows
}

// Equal reports whether a and b have the same shape and all elements agree
// within tol.
func Equal(a, b *Matrix, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i, v := range a.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute elementwise difference between a
// and b. It panics on shape mismatch.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.rows != b.rows || a.cols != b.cols {
		panic("mat: MaxAbsDiff shape mismatch")
	}
	max := 0.0
	for i, v := range a.data {
		if d := math.Abs(v - b.data[i]); d > max {
			max = d
		}
	}
	return max
}
