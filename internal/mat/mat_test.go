package mat

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewShapeAndZero(t *testing.T) {
	m := New(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Errorf("New matrix not zero at (%d,%d)", i, j)
			}
		}
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	for _, sh := range [][2]int{{0, 1}, {1, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", sh[0], sh[1])
				}
			}()
			New(sh[0], sh[1])
		}()
	}
}

func TestSetAtAdd(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 1, 5)
	m.Add(0, 1, 2.5)
	if got := m.At(0, 1); got != 7.5 {
		t.Errorf("At(0,1) = %v, want 7.5", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	m := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	m.At(2, 0)
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(2, 1) != 6 || m.At(0, 0) != 1 {
		t.Errorf("FromRows values wrong: %v %v", m.At(2, 1), m.At(0, 0))
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged FromRows did not error")
	}
	if _, err := FromRows(nil); err == nil {
		t.Error("empty FromRows did not error")
	}
}

func TestRowColCopySemantics(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(0)
	r[0] = 99
	if m.At(0, 0) != 1 {
		t.Error("Row should copy, matrix mutated")
	}
	c := m.Col(1)
	c[0] = 99
	if m.At(0, 1) != 2 {
		t.Error("Col should copy, matrix mutated")
	}
	v := m.RowView(1)
	v[0] = 42
	if m.At(1, 0) != 42 {
		t.Error("RowView should alias storage")
	}
}

func TestTranspose(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("T shape = %dx%d, want 3x2", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Errorf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 1))
		m := randMatrix(r, 1+r.IntN(8), 1+r.IntN(8))
		return Equal(m, m.T().T(), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromRows([][]float64{{19, 22}, {43, 50}})
	if !Equal(c, want, 1e-12) {
		t.Errorf("Mul wrong: got %v", c.data)
	}
}

func TestMulShapeError(t *testing.T) {
	a := New(2, 3)
	b := New(2, 3)
	if _, err := Mul(a, b); err == nil {
		t.Error("Mul with mismatched shapes did not error")
	}
}

func TestMulIdentityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 2))
		n := 1 + r.IntN(6)
		m := randMatrix(r, n, n)
		left, _ := Mul(Identity(n), m)
		right, _ := Mul(m, Identity(n))
		return Equal(left, m, 1e-12) && Equal(right, m, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 3))
		p, q, s, u := 1+r.IntN(5), 1+r.IntN(5), 1+r.IntN(5), 1+r.IntN(5)
		a := randMatrix(r, p, q)
		b := randMatrix(r, q, s)
		c := randMatrix(r, s, u)
		ab, _ := Mul(a, b)
		abc1, _ := Mul(ab, c)
		bc, _ := Mul(b, c)
		abc2, _ := Mul(a, bc)
		return Equal(abc1, abc2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestInverse2x2(t *testing.T) {
	a, _ := FromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromRows([][]float64{{0.6, -0.7}, {-0.2, 0.4}})
	if !Equal(inv, want, 1e-12) {
		t.Errorf("Inverse wrong: %v", inv.data)
	}
}

func TestInverseSingular(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Inverse(a); err == nil {
		t.Error("Inverse of singular matrix did not error")
	}
}

func TestInverseNonSquare(t *testing.T) {
	if _, err := Inverse(New(2, 3)); err == nil {
		t.Error("Inverse of non-square matrix did not error")
	}
}

func TestInverseProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 4))
		n := 1 + r.IntN(7)
		// Diagonally dominant matrices are comfortably invertible.
		a := randMatrix(r, n, n)
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n)+1)
		}
		inv, err := Inverse(a)
		if err != nil {
			return false
		}
		prod, _ := Mul(a, inv)
		return Equal(prod, Identity(n), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestInverseNeedsPivoting(t *testing.T) {
	// Zero in the (0,0) position forces a row swap.
	a, _ := FromRows([][]float64{{0, 1}, {1, 0}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(inv, a, 1e-12) {
		t.Errorf("inverse of permutation wrong: %v", inv.data)
	}
}

func TestNormalizeRows(t *testing.T) {
	m, _ := FromRows([][]float64{{2, 2}, {0, 0}, {1, 3}})
	zero := m.NormalizeRows()
	if len(zero) != 1 || zero[0] != 1 {
		t.Errorf("zeroRows = %v, want [1]", zero)
	}
	if m.At(0, 0) != 0.5 || m.At(2, 1) != 0.75 {
		t.Errorf("normalize wrong: %v", m.data)
	}
	if m.At(1, 0) != 0 {
		t.Error("zero row was modified")
	}
}

func TestNormalizeRowsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 5))
		m := randMatrix(r, 1+r.IntN(10), 1+r.IntN(6))
		// Make entries non-negative counts.
		for i := 0; i < m.Rows(); i++ {
			row := m.RowView(i)
			for j := range row {
				row[j] = math.Abs(row[j])
			}
		}
		zero := m.NormalizeRows()
		zeroSet := map[int]bool{}
		for _, z := range zero {
			zeroSet[z] = true
		}
		for i := 0; i < m.Rows(); i++ {
			if zeroSet[i] {
				continue
			}
			sum := 0.0
			for _, v := range m.RowView(i) {
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestClone(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Error("Clone aliases original")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}})
	b, _ := FromRows([][]float64{{1.5, 2}})
	if d := MaxAbsDiff(a, b); d != 0.5 {
		t.Errorf("MaxAbsDiff = %v, want 0.5", d)
	}
}

func randMatrix(r *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.data {
		m.data[i] = r.Float64()*10 - 5
	}
	return m
}

// --- Membership / Equation 3 ---

func TestMembershipAssignAndSizes(t *testing.T) {
	l := NewMembership(5, 3)
	l.Assign(0, 0)
	l.Assign(1, 0)
	l.Assign(2, 2)
	if got := l.Sizes(); got[0] != 2 || got[1] != 0 || got[2] != 1 {
		t.Errorf("Sizes = %v, want [2 0 1]", got)
	}
	if l.Assigned() != 3 {
		t.Errorf("Assigned = %d, want 3", l.Assigned())
	}
	l.Assign(0, -1)
	if l.Group(0) != -1 || l.Assigned() != 2 {
		t.Error("unassign failed")
	}
}

func TestMembershipPanics(t *testing.T) {
	l := NewMembership(2, 2)
	for _, fn := range []func(){
		func() { l.Assign(-1, 0) },
		func() { l.Assign(2, 0) },
		func() { l.Assign(0, 2) },
		func() { l.Assign(0, -2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad Assign did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestAggregateIsGroupMean(t *testing.T) {
	u, _ := FromRows([][]float64{
		{1, 0},
		{0, 1},
		{0.5, 0.5},
		{0.25, 0.75},
	})
	l := NewMembership(4, 2)
	l.Assign(0, 0)
	l.Assign(1, 0)
	l.Assign(2, 1)
	l.Assign(3, 1)
	k, empty, err := l.Aggregate(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty) != 0 {
		t.Errorf("empty groups = %v, want none", empty)
	}
	want, _ := FromRows([][]float64{{0.5, 0.5}, {0.375, 0.625}})
	if !Equal(k, want, 1e-12) {
		t.Errorf("Aggregate = %v, want %v", k.data, want.data)
	}
}

func TestAggregateEmptyGroupAndUnassigned(t *testing.T) {
	u, _ := FromRows([][]float64{{1, 0}, {0, 1}})
	l := NewMembership(2, 3)
	l.Assign(0, 2)
	// row 1 unassigned
	k, empty, err := l.Aggregate(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty) != 2 || empty[0] != 0 || empty[1] != 1 {
		t.Errorf("empty = %v, want [0 1]", empty)
	}
	if k.At(2, 0) != 1 || k.At(2, 1) != 0 {
		t.Errorf("group 2 row = %v", k.Row(2))
	}
}

func TestAggregateShapeMismatch(t *testing.T) {
	l := NewMembership(3, 2)
	if _, _, err := l.Aggregate(New(2, 2)); err == nil {
		t.Error("Aggregate with wrong row count did not error")
	}
}

// TestAggregateMatchesGeneral is the key validation: the sparse fast path
// must agree with the literal K = (LᵀL)⁻¹LᵀÛ of Equation 3 whenever every
// group is non-empty.
func TestAggregateMatchesGeneral(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 6))
		g := 2 + r.IntN(4)
		m := g + r.IntN(20) // at least one row per group
		u := randMatrix(r, m, 1+r.IntN(5))
		l := NewMembership(m, g)
		// Guarantee non-empty groups, then assign the rest randomly.
		for i := 0; i < g; i++ {
			l.Assign(i, i)
		}
		for i := g; i < m; i++ {
			l.Assign(i, r.IntN(g))
		}
		fast, empty, err := l.Aggregate(u)
		if err != nil || len(empty) != 0 {
			return false
		}
		general, err := l.AggregateGeneral(u)
		if err != nil {
			return false
		}
		return Equal(fast, general, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAggregateGeneralSingularOnEmptyGroup(t *testing.T) {
	u, _ := FromRows([][]float64{{1, 0}})
	l := NewMembership(1, 2)
	l.Assign(0, 0)
	if _, err := l.AggregateGeneral(u); err == nil {
		t.Error("AggregateGeneral with empty group did not error")
	}
}

func TestMembershipDense(t *testing.T) {
	l := NewMembership(3, 2)
	l.Assign(0, 1)
	l.Assign(2, 0)
	d := l.Dense()
	want, _ := FromRows([][]float64{{0, 1}, {0, 0}, {1, 0}})
	if !Equal(d, want, 0) {
		t.Errorf("Dense = %v, want %v", d.data, want.data)
	}
}

func BenchmarkAggregateFast(b *testing.B) {
	r := rand.New(rand.NewPCG(1, 1))
	const m, g, n = 70000, 51, 6
	u := randMatrix(r, m, n)
	l := NewMembership(m, g)
	for i := 0; i < m; i++ {
		l.Assign(i, r.IntN(g))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := l.Aggregate(u); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggregateGeneral(b *testing.B) {
	r := rand.New(rand.NewPCG(1, 1))
	const m, g, n = 5000, 51, 6 // the dense path is O(m·g) memory; keep moderate
	u := randMatrix(r, m, n)
	l := NewMembership(m, g)
	for i := 0; i < m; i++ {
		l.Assign(i, r.IntN(g))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.AggregateGeneral(u); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a, _ := FromRows([][]float64{{2, 1}, {1, 3}})
	b, _ := FromRows([][]float64{{5}, {10}})
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// 2x + y = 5, x + 3y = 10 → x = 1, y = 3.
	if math.Abs(x.At(0, 0)-1) > 1e-12 || math.Abs(x.At(1, 0)-3) > 1e-12 {
		t.Errorf("Solve = %v, %v; want 1, 3", x.At(0, 0), x.At(1, 0))
	}
}

func TestSolveMultipleRHS(t *testing.T) {
	a, _ := FromRows([][]float64{{0, 1}, {1, 0}}) // needs pivoting
	b, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ax, _ := Mul(a, x)
	if !Equal(ax, b, 1e-12) {
		t.Errorf("A·X != B: %v", ax.data)
	}
}

func TestSolveErrors(t *testing.T) {
	if _, err := Solve(New(2, 3), New(2, 1)); err == nil {
		t.Error("non-square A accepted")
	}
	if _, err := Solve(New(2, 2), New(3, 1)); err == nil {
		t.Error("mismatched B accepted")
	}
	sing, _ := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(sing, New(2, 1)); err == nil {
		t.Error("singular A accepted")
	}
}

func TestSolveAgainstInverseProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 10))
		n := 1 + r.IntN(7)
		a := randMatrix(r, n, n)
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n)+1) // diagonally dominant
		}
		b := randMatrix(r, n, 1+r.IntN(4))
		x1, err1 := Solve(a, b)
		inv, err2 := Inverse(a)
		if err1 != nil || err2 != nil {
			return false
		}
		x2, _ := Mul(inv, b)
		return Equal(x1, x2, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
