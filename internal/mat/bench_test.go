package mat

import (
	"math/rand/v2"
	"testing"
)

// benchMatrix returns an n×dim matrix of positive random entries.
func benchMatrix(n, dim int, seed uint64) *Matrix {
	r := rand.New(rand.NewPCG(seed, 0x3a))
	m := New(n, dim)
	for i := 0; i < n; i++ {
		row := m.RowView(i)
		for j := range row {
			row[j] = r.Float64() + 1e-9
		}
	}
	return m
}

// benchMembership assigns every row round-robin to one of g groups.
func benchMembership(rows, g int) *Membership {
	l := NewMembership(rows, g)
	for i := 0; i < rows; i++ {
		l.Assign(i, i%g)
	}
	return l
}

// BenchmarkNormalizeRows is the Û construction: turning count rows into
// distributions, 10k users × 6 organs.
func BenchmarkNormalizeRows(b *testing.B) {
	src := benchMatrix(10000, 6, 1)
	dst := src.Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(dst.data, src.data)
		dst.NormalizeRows()
	}
}

// BenchmarkAggregate is Equation 3 over the sparse membership fast path:
// 10k users × 6 organs into 51 state groups.
func BenchmarkAggregate(b *testing.B) {
	u := benchMatrix(10000, 6, 2)
	l := benchMembership(10000, 51)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := l.Aggregate(u); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMulGram forms the 6×6 Gram matrix ÛᵀÛ of a 10k×6 matrix, the
// shape of every Mul on the analyze path.
func BenchmarkMulGram(b *testing.B) {
	u := benchMatrix(10000, 6, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := u.T()
		if _, err := Mul(t, u); err != nil {
			b.Fatal(err)
		}
	}
}
