package mat

import "fmt"

// Membership is a sparse representation of the paper's membership-
// indicator matrix L (Equations 1 and 2): each of m rows (users) belongs
// to exactly one of g groups, or to no group (Group = -1, e.g. a user whose
// state could not be resolved). L_ij = 1 iff Group[i] == j.
type Membership struct {
	groups int
	of     []int // of[i] = group of row i, or -1
}

// NewMembership builds a Membership over m rows and g groups with every
// row initially unassigned.
func NewMembership(m, g int) *Membership {
	if m <= 0 || g <= 0 {
		panic(fmt.Sprintf("mat: invalid membership %d rows, %d groups", m, g))
	}
	of := make([]int, m)
	for i := range of {
		of[i] = -1
	}
	return &Membership{groups: g, of: of}
}

// Assign places row i in group g. Passing g = -1 unassigns the row.
func (l *Membership) Assign(i, g int) {
	if i < 0 || i >= len(l.of) {
		panic(fmt.Sprintf("mat: membership row %d out of %d", i, len(l.of)))
	}
	if g < -1 || g >= l.groups {
		panic(fmt.Sprintf("mat: membership group %d out of %d", g, l.groups))
	}
	l.of[i] = g
}

// Group returns the group of row i, or -1 if unassigned.
func (l *Membership) Group(i int) int { return l.of[i] }

// Rows returns the number of rows (users).
func (l *Membership) Rows() int { return len(l.of) }

// Groups returns the number of groups.
func (l *Membership) Groups() int { return l.groups }

// Sizes returns the number of rows assigned to each group.
func (l *Membership) Sizes() []int {
	sz := make([]int, l.groups)
	for _, g := range l.of {
		if g >= 0 {
			sz[g]++
		}
	}
	return sz
}

// Assigned returns the number of rows assigned to any group.
func (l *Membership) Assigned() int {
	n := 0
	for _, g := range l.of {
		if g >= 0 {
			n++
		}
	}
	return n
}

// Dense materializes L as an m×g dense 0/1 matrix. Intended for tests and
// for the general-path aggregation; production code uses the sparse form.
func (l *Membership) Dense() *Matrix {
	d := New(len(l.of), l.groups)
	for i, g := range l.of {
		if g >= 0 {
			d.Set(i, g, 1)
		}
	}
	return d
}

// Aggregate computes the paper's Equation 3, K = (LᵀL)⁻¹LᵀÛ, using the
// structure of a disjoint membership: LᵀL is diagonal with the group sizes
// on the diagonal, so K is simply the per-group mean of the rows of u.
// Groups with no members produce an all-zero row and are reported in
// emptyGroups. Rows of u that are unassigned in l do not contribute.
func (l *Membership) Aggregate(u *Matrix) (k *Matrix, emptyGroups []int, err error) {
	if u.Rows() != len(l.of) {
		return nil, nil, fmt.Errorf("%w: membership has %d rows, matrix has %d", ErrShape, len(l.of), u.Rows())
	}
	k = New(l.groups, u.Cols())
	sizes := make([]int, l.groups)
	for i, g := range l.of {
		if g < 0 {
			continue
		}
		sizes[g]++
		urow := u.RowView(i)
		krow := k.RowView(g)
		for j, v := range urow {
			krow[j] += v
		}
	}
	for g, n := range sizes {
		if n == 0 {
			emptyGroups = append(emptyGroups, g)
			continue
		}
		krow := k.RowView(g)
		inv := 1 / float64(n)
		for j := range krow {
			krow[j] *= inv
		}
	}
	return k, emptyGroups, nil
}

// AggregateGeneral computes Equation 3 literally with dense algebra:
// K = (LᵀL)⁻¹LᵀÛ. It exists to validate the fast path (Aggregate) and to
// support non-disjoint membership matrices should they ever be needed.
// It fails with ErrSingular when some group is empty, because LᵀL is then
// not invertible — the fast path instead reports such groups explicitly.
func (l *Membership) AggregateGeneral(u *Matrix) (*Matrix, error) {
	ld := l.Dense()
	lt := ld.T()
	ltl, err := Mul(lt, ld)
	if err != nil {
		return nil, err
	}
	ltu, err := Mul(lt, u)
	if err != nil {
		return nil, err
	}
	// Solving (LᵀL)·K = LᵀÛ beats forming the inverse explicitly.
	return Solve(ltl, ltu)
}
