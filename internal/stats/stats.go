// Package stats implements the statistical machinery of the paper:
// relative risk with log-normal confidence intervals (Equation 4 and the
// Figure 5 significance rule), Spearman rank correlation (the Figure 2
// validation against OPTN transplant counts), ranking, and descriptive
// statistics.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrInsufficientData is returned when a statistic is requested on too few
// observations.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Z95 is the two-sided 95% normal critical value (α = 0.05) used by the
// paper's significance rule for log relative risk.
const Z95 = 1.96

// Mean returns the arithmetic mean of xs. It returns 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (n-1 denominator).
// It returns 0 when fewer than two observations are given.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Ranks returns the fractional ranks of xs (1-based, ties receive the
// average of the ranks they span), the convention Spearman correlation
// requires.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j].
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Pearson returns the Pearson product-moment correlation of x and y.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return 0, ErrInsufficientData
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("%w: zero variance", ErrInsufficientData)
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// SpearmanResult carries a Spearman rank correlation and its significance.
type SpearmanResult struct {
	R float64 // rank correlation coefficient in [-1, 1]
	P float64 // two-sided p-value from the t approximation
	N int     // number of observations
}

// Spearman computes the Spearman rank correlation between x and y with a
// two-sided p-value from the t-distribution approximation
// t = r·sqrt((n-2)/(1-r²)). For the paper's n = 6 organs the approximation
// is coarse but matches common practice (scipy uses the same default).
func Spearman(x, y []float64) (SpearmanResult, error) {
	if len(x) != len(y) {
		return SpearmanResult{}, fmt.Errorf("stats: length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) < 3 {
		return SpearmanResult{}, ErrInsufficientData
	}
	r, err := Pearson(Ranks(x), Ranks(y))
	if err != nil {
		return SpearmanResult{}, err
	}
	n := len(x)
	res := SpearmanResult{R: r, N: n}
	if math.Abs(r) >= 1 {
		res.P = 0
		return res, nil
	}
	tstat := r * math.Sqrt(float64(n-2)/(1-r*r))
	res.P = 2 * studentTSF(math.Abs(tstat), float64(n-2))
	return res, nil
}

// SpearmanPermutation computes the Spearman correlation with an *exact*
// permutation p-value: the two-sided probability, over all n! orderings
// of y, of a |correlation| at least as large as observed. For the paper's
// n = 6 organs that is 720 permutations — exact and cheap, where the t
// approximation used by Spearman (and scipy) is coarse. n is capped at 9
// (362,880 permutations) to bound the cost; larger n should use Spearman.
func SpearmanPermutation(x, y []float64) (SpearmanResult, error) {
	if len(x) != len(y) {
		return SpearmanResult{}, fmt.Errorf("stats: length mismatch %d vs %d", len(x), len(y))
	}
	n := len(x)
	if n < 3 {
		return SpearmanResult{}, ErrInsufficientData
	}
	if n > 9 {
		return SpearmanResult{}, fmt.Errorf("stats: permutation test capped at n=9, got %d", n)
	}
	rx, ry := Ranks(x), Ranks(y)
	observed, err := Pearson(rx, ry)
	if err != nil {
		return SpearmanResult{}, err
	}
	absObs := math.Abs(observed) - 1e-12 // tolerance for FP ties

	perm := make([]float64, n)
	copy(perm, ry)
	total, extreme := 0, 0
	var recurse func(k int)
	recurse = func(k int) {
		if k == n {
			total++
			if r, err := Pearson(rx, perm); err == nil && math.Abs(r) >= absObs {
				extreme++
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			recurse(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	recurse(0)
	return SpearmanResult{R: observed, P: float64(extreme) / float64(total), N: n}, nil
}

// studentTSF returns P(T > t) for a Student t distribution with df degrees
// of freedom, via the regularized incomplete beta function.
func studentTSF(t, df float64) float64 {
	if t <= 0 {
		return 0.5
	}
	x := df / (df + t*t)
	return 0.5 * regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes §6.4).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(math.Log(x)*a + math.Log(1-x)*b + lbeta)
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betaCF evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
