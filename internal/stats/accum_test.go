package stats

import (
	"math/rand"
	"testing"
)

// TestCounterMergeAssociative asserts Counter2D/Counter1D merges are
// associative and order-insensitive: shard a random stream of cell
// deltas, merge the shards in shuffled orders, and compare against the
// unsharded accumulation.
func TestCounterMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const rows, cols, shards = 7, 5, 4

	ref2 := NewCounter2D(rows, cols)
	ref1 := NewCounter1D(rows)
	sh2 := make([]*Counter2D, shards)
	sh1 := make([]*Counter1D, shards)
	for i := range sh2 {
		sh2[i] = NewCounter2D(rows, cols)
		sh1[i] = NewCounter1D(rows)
	}
	for op := 0; op < 5000; op++ {
		r, c := rng.Intn(rows), rng.Intn(cols)
		d := int64(rng.Intn(7) - 3) // subtractable: negative deltas too
		ref2.Add(r, c, d)
		ref1.Add(r, d)
		s := rng.Intn(shards)
		sh2[s].Add(r, c, d)
		sh1[s].Add(r, d)
	}

	order := rng.Perm(shards)
	got2 := NewCounter2D(rows, cols)
	got1 := NewCounter1D(rows)
	for _, s := range order {
		if err := got2.Merge(sh2[s]); err != nil {
			t.Fatal(err)
		}
		if err := got1.Merge(sh1[s]); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < rows; r++ {
		if got1.At(r) != ref1.At(r) {
			t.Fatalf("1D cell %d: %d want %d", r, got1.At(r), ref1.At(r))
		}
		for c := 0; c < cols; c++ {
			if got2.At(r, c) != ref2.At(r, c) {
				t.Fatalf("2D cell (%d,%d): %d want %d", r, c, got2.At(r, c), ref2.At(r, c))
			}
		}
	}
	if got1.Sum() != ref1.Sum() {
		t.Fatalf("Sum %d want %d", got1.Sum(), ref1.Sum())
	}
	for c := 0; c < cols; c++ {
		if got2.ColSum(c) != ref2.ColSum(c) {
			t.Fatalf("ColSum(%d) %d want %d", c, got2.ColSum(c), ref2.ColSum(c))
		}
	}

	// Shape mismatches refuse to merge.
	if err := got2.Merge(NewCounter2D(rows, cols+1)); err == nil {
		t.Fatal("shape-mismatched 2D merge accepted")
	}
	if err := got1.Merge(NewCounter1D(rows + 1)); err == nil {
		t.Fatal("length-mismatched 1D merge accepted")
	}

	// Clone is independent.
	cl := ref2.Clone()
	cl.Add(0, 0, 99)
	if ref2.At(0, 0) == cl.At(0, 0) {
		t.Fatal("Clone shares backing")
	}
}

// TestContinuityRelativeRisk pins the Haldane–Anscombe path: defined on
// zero cells where the uncorrected RR errors, agreeing error behavior on
// truly empty exposure groups, and a sanity check of the corrected
// point estimate.
func TestContinuityRelativeRisk(t *testing.T) {
	cases := []struct {
		name       string
		a, b, c, d int
		plainOK    bool
		contOK     bool
	}{
		{"all positive", 5, 10, 20, 100, true, true},
		{"zero a", 0, 10, 20, 100, false, true},
		{"zero c", 5, 10, 0, 100, false, true},
		{"zero a and c", 0, 10, 0, 100, false, true},
		{"empty inside group", 0, 0, 20, 100, false, false},
		{"empty outside group", 5, 10, 0, 0, false, false},
		{"negative cell", -1, 10, 20, 100, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewRelativeRisk(tc.a, tc.b, tc.c, tc.d)
			if (err == nil) != tc.plainOK {
				t.Fatalf("NewRelativeRisk err=%v, want ok=%v", err, tc.plainOK)
			}
			rr, err := ContinuityRelativeRisk(tc.a, tc.b, tc.c, tc.d)
			if (err == nil) != tc.contOK {
				t.Fatalf("ContinuityRelativeRisk err=%v, want ok=%v", err, tc.contOK)
			}
			if err != nil {
				return
			}
			if rr.A != tc.a || rr.B != tc.b || rr.C != tc.c || rr.D != tc.d {
				t.Fatalf("raw counts not preserved: %+v", rr)
			}
			if rr.RR <= 0 || rr.SE <= 0 || rr.Lower <= 0 || rr.Upper < rr.Lower {
				t.Fatalf("degenerate corrected estimate: %+v", rr)
			}
			pin := (float64(tc.a) + 0.5) / (float64(tc.a) + float64(tc.b) + 1)
			pout := (float64(tc.c) + 0.5) / (float64(tc.c) + float64(tc.d) + 1)
			if got, want := rr.RR, pin/pout; got != want {
				t.Fatalf("RR = %g want %g", got, want)
			}
		})
	}
}
