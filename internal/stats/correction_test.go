package stats

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestPValueFromZ(t *testing.T) {
	tests := []struct {
		z, want, tol float64
	}{
		{0, 0.5, 1e-12},
		{1.6449, 0.05, 1e-4},
		{1.96, 0.025, 1e-4},
		{2.3263, 0.01, 1e-4},
		{-1.96, 0.975, 1e-4},
	}
	for _, tt := range tests {
		if got := PValueFromZ(tt.z); !approx(got, tt.want, tt.tol) {
			t.Errorf("PValueFromZ(%v) = %v, want %v", tt.z, got, tt.want)
		}
	}
}

func TestZFromLogRR(t *testing.T) {
	if got := ZFromLogRR(0.2, 0.1); !approx(got, 2, 1e-12) {
		t.Errorf("ZFromLogRR = %v, want 2", got)
	}
	if !math.IsInf(ZFromLogRR(0.2, 0), 1) {
		t.Error("zero SE should give +Inf")
	}
}

// TestRRSignificanceMatchesZTest: the paper's CI rule (log lower bound >
// 0 at z = 1.96) must agree with a one-sided z-test at α = 0.025.
func TestRRSignificanceMatchesZTest(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 31))
		a, b := 1+r.IntN(100), r.IntN(400)
		c, d := 1+r.IntN(400), r.IntN(4000)
		rr, err := NewRelativeRisk(a, b, c, d)
		if err != nil {
			return true
		}
		p := PValueFromZ(ZFromLogRR(rr.LogRR, rr.SE))
		return rr.Significant() == (p < 0.025)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBonferroni(t *testing.T) {
	got := Bonferroni([]float64{0.01, 0.2, 0.5})
	want := []float64{0.03, 0.6, 1}
	for i := range want {
		if !approx(got[i], want[i], 1e-12) {
			t.Errorf("Bonferroni[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if len(Bonferroni(nil)) != 0 {
		t.Error("empty input should give empty output")
	}
}

func TestBenjaminiHochbergKnown(t *testing.T) {
	// Classic worked example.
	ps := []float64{0.01, 0.04, 0.03, 0.005}
	q := BenjaminiHochberg(ps)
	// Sorted: .005 (q=.02), .01 (q=.02), .03 (q=.04), .04 (q=.04).
	want := map[float64]float64{0.005: 0.02, 0.01: 0.02, 0.03: 0.04, 0.04: 0.04}
	for i, p := range ps {
		if !approx(q[i], want[p], 1e-12) {
			t.Errorf("BH(%v) = %v, want %v", p, q[i], want[p])
		}
	}
}

func TestBenjaminiHochbergProperties(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 33))
		n := 1 + r.IntN(50)
		ps := make([]float64, n)
		for i := range ps {
			ps[i] = r.Float64()
		}
		q := BenjaminiHochberg(ps)
		// q >= p, q <= 1, and q preserves the order of p.
		for i := range ps {
			if q[i] < ps[i]-1e-12 || q[i] > 1 {
				return false
			}
		}
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return ps[idx[a]] < ps[idx[b]] })
		for k := 1; k < n; k++ {
			if q[idx[k]] < q[idx[k-1]]-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBHLessConservativeThanBonferroni(t *testing.T) {
	ps := []float64{0.001, 0.008, 0.039, 0.041, 0.6}
	bh := BenjaminiHochberg(ps)
	bf := Bonferroni(ps)
	for i := range ps {
		if bh[i] > bf[i]+1e-12 {
			t.Errorf("BH[%d]=%v exceeds Bonferroni %v", i, bh[i], bf[i])
		}
	}
}

func TestChiSquare1DF(t *testing.T) {
	// Critical values: P(χ²(1) > 3.841) = .05, > 6.635 = .01.
	if got := ChiSquare1DF(3.841); !approx(got, 0.05, 1e-3) {
		t.Errorf("ChiSquare1DF(3.841) = %v, want .05", got)
	}
	if got := ChiSquare1DF(6.635); !approx(got, 0.01, 1e-3) {
		t.Errorf("ChiSquare1DF(6.635) = %v, want .01", got)
	}
	if ChiSquare1DF(0) != 1 || ChiSquare1DF(-3) != 1 {
		t.Error("non-positive statistic should give p=1")
	}
}

func TestChiSquareStat(t *testing.T) {
	// Balanced table → 0.
	if got := ChiSquareStat(10, 10, 10, 10); got != 0 {
		t.Errorf("balanced table stat = %v", got)
	}
	// Known value: {{20,10},{10,20}} → n=60, diff=300, den=30*30*30*30.
	want := 60.0 * 300 * 300 / (30 * 30 * 30 * 30)
	if got := ChiSquareStat(20, 10, 10, 20); !approx(got, want, 1e-12) {
		t.Errorf("stat = %v, want %v", got, want)
	}
	if ChiSquareStat(0, 0, 0, 0) != 0 {
		t.Error("empty table should give 0")
	}
	if ChiSquareStat(5, 5, 0, 0) != 0 {
		t.Error("degenerate margin should give 0")
	}
}

// TestChiSquareAgreesWithRRDirectionally: strong RR excesses must have
// small chi-square p-values.
func TestChiSquareAgreesWithRRDirectionally(t *testing.T) {
	p := ChiSquare1DF(ChiSquareStat(50, 50, 100, 900))
	if p > 1e-6 {
		t.Errorf("strong excess p = %v, want tiny", p)
	}
	p = ChiSquare1DF(ChiSquareStat(10, 90, 100, 900))
	if p < 0.5 {
		t.Errorf("null-ish table p = %v, want large", p)
	}
}
