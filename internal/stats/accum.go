package stats

import "fmt"

// Mergeable, subtractable integer accumulators. These are the counting
// layer behind the incremental analytics engine: every paper artifact
// whose inputs are integer counts (Table I distinct-organ totals, the
// Figure 5 relative-risk 2×2 cells, the winner-takes-all grid) is kept
// in one of these and updated in place as users enter, change, and
// leave — Add with a negative delta exactly reverses an earlier Add, and
// Merge is associative and commutative like Dataset.Merge, so sharded
// collectors stay composable. Because the cells are integers, an
// accumulator drained through any interleaving of adds, subtracts, and
// merges is bit-identical to one built from scratch over the final
// population.

// Counter1D is a fixed-length vector of int64 counters.
type Counter1D struct {
	cells []int64
}

// NewCounter1D returns an n-cell zeroed counter vector.
func NewCounter1D(n int) *Counter1D {
	return &Counter1D{cells: make([]int64, n)}
}

// Len returns the number of cells.
func (c *Counter1D) Len() int { return len(c.cells) }

// Add adds delta to cell i.
func (c *Counter1D) Add(i int, delta int64) { c.cells[i] += delta }

// At returns cell i.
func (c *Counter1D) At(i int) int64 { return c.cells[i] }

// Sum returns the total over all cells.
func (c *Counter1D) Sum() int64 {
	t := int64(0)
	for _, v := range c.cells {
		t += v
	}
	return t
}

// Merge adds other into c cell-wise. The shapes must match.
func (c *Counter1D) Merge(other *Counter1D) error {
	if len(other.cells) != len(c.cells) {
		return fmt.Errorf("stats: merge of %d-cell counter into %d cells", len(other.cells), len(c.cells))
	}
	for i, v := range other.cells {
		c.cells[i] += v
	}
	return nil
}

// Clone returns an independent copy.
func (c *Counter1D) Clone() *Counter1D {
	out := NewCounter1D(len(c.cells))
	copy(out.cells, c.cells)
	return out
}

// Counter2D is a fixed-shape rows×cols grid of int64 counters, stored
// row-major.
type Counter2D struct {
	rows, cols int
	cells      []int64
}

// NewCounter2D returns a zeroed rows×cols grid.
func NewCounter2D(rows, cols int) *Counter2D {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("stats: invalid counter shape %d×%d", rows, cols))
	}
	return &Counter2D{rows: rows, cols: cols, cells: make([]int64, rows*cols)}
}

// Rows returns the row count.
func (c *Counter2D) Rows() int { return c.rows }

// Cols returns the column count.
func (c *Counter2D) Cols() int { return c.cols }

// Add adds delta to cell (r, col).
func (c *Counter2D) Add(r, col int, delta int64) { c.cells[r*c.cols+col] += delta }

// At returns cell (r, col).
func (c *Counter2D) At(r, col int) int64 { return c.cells[r*c.cols+col] }

// Row returns a borrowed view of row r (do not mutate).
func (c *Counter2D) Row(r int) []int64 { return c.cells[r*c.cols : (r+1)*c.cols] }

// ColSum returns the total of column col across all rows.
func (c *Counter2D) ColSum(col int) int64 {
	t := int64(0)
	for r := 0; r < c.rows; r++ {
		t += c.cells[r*c.cols+col]
	}
	return t
}

// Merge adds other into c cell-wise. The shapes must match.
func (c *Counter2D) Merge(other *Counter2D) error {
	if other.rows != c.rows || other.cols != c.cols {
		return fmt.Errorf("stats: merge of %d×%d counter into %d×%d", other.rows, other.cols, c.rows, c.cols)
	}
	for i, v := range other.cells {
		c.cells[i] += v
	}
	return nil
}

// Clone returns an independent copy.
func (c *Counter2D) Clone() *Counter2D {
	out := NewCounter2D(c.rows, c.cols)
	copy(out.cells, c.cells)
	return out
}
