package stats

import (
	"math"
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	tests := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, tt := range tests {
		if got := Mean(tt.in); !approx(got, tt.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n-1 = 32/7.
	if got := Variance(xs); !approx(got, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if got := StdDev(xs); !approx(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
	if Variance([]float64{1}) != 0 {
		t.Error("Variance of single value should be 0")
	}
}

func TestRanks(t *testing.T) {
	tests := []struct {
		in   []float64
		want []float64
	}{
		{[]float64{10, 20, 30}, []float64{1, 2, 3}},
		{[]float64{30, 10, 20}, []float64{3, 1, 2}},
		{[]float64{1, 1, 2}, []float64{1.5, 1.5, 3}},
		{[]float64{5, 5, 5, 5}, []float64{2.5, 2.5, 2.5, 2.5}},
		{[]float64{}, []float64{}},
	}
	for _, tt := range tests {
		got := Ranks(tt.in)
		if len(got) == 0 && len(tt.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("Ranks(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestRanksSumProperty(t *testing.T) {
	// Ranks always sum to n(n+1)/2 regardless of ties.
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 7))
		n := 1 + r.IntN(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(r.IntN(10)) // many ties
		}
		sum := 0.0
		for _, rk := range Ranks(xs) {
			sum += rk
		}
		return approx(sum, float64(n*(n+1))/2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	r, err := Pearson(x, y)
	if err != nil || !approx(r, 1, 1e-12) {
		t.Errorf("Pearson = %v, %v; want 1", r, err)
	}
	yneg := []float64{8, 6, 4, 2}
	r, _ = Pearson(x, yneg)
	if !approx(r, -1, 1e-12) {
		t.Errorf("Pearson = %v, want -1", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err == nil {
		t.Error("single observation accepted")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("zero variance accepted")
	}
}

func TestSpearmanMonotonic(t *testing.T) {
	// Any strictly increasing transform gives r = 1.
	x := []float64{1, 5, 2, 8, 3}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = v*v*v + 10
	}
	res, err := Spearman(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.R, 1, 1e-12) {
		t.Errorf("Spearman R = %v, want 1", res.R)
	}
	if res.P > 1e-6 {
		t.Errorf("perfect correlation p = %v, want ~0", res.P)
	}
}

func TestSpearmanKnownValue(t *testing.T) {
	// Example with one swapped pair out of 6 ranks:
	// x ranks 1..6, y ranks 1,2,3,4,6,5 → r = 1 - 6*2/(6*35) = 0.9428...
	x := []float64{1, 2, 3, 4, 5, 6}
	y := []float64{1, 2, 3, 4, 6, 5}
	res, err := Spearman(x, y)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - 6.0*2.0/(6.0*35.0)
	if !approx(res.R, want, 1e-12) {
		t.Errorf("Spearman R = %v, want %v", res.R, want)
	}
	if res.P <= 0 || res.P >= 0.05 {
		t.Errorf("p-value = %v, want in (0, .05) for near-perfect n=6", res.P)
	}
}

func TestSpearmanUncorrelated(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	y := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	res, err := Spearman(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.R) > 0.7 {
		t.Errorf("R = %v, expected weak correlation", res.R)
	}
	if res.P < 0.05 {
		t.Errorf("p = %v, expected not significant", res.P)
	}
}

func TestSpearmanErrors(t *testing.T) {
	if _, err := Spearman([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("n=2 accepted")
	}
	if _, err := Spearman([]float64{1, 2, 3}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestSpearmanSymmetryProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 8))
		n := 4 + r.IntN(20)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.Float64()
			y[i] = r.Float64()
		}
		a, err1 := Spearman(x, y)
		b, err2 := Spearman(y, x)
		if err1 != nil || err2 != nil {
			return false
		}
		return approx(a.R, b.R, 1e-12) && approx(a.P, b.P, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestStudentTSFAgainstKnownValues(t *testing.T) {
	// Two-sided t critical values: P(T>2.776, df=4) ≈ 0.025.
	if got := studentTSF(2.776, 4); !approx(got, 0.025, 0.001) {
		t.Errorf("studentTSF(2.776, 4) = %v, want ≈0.025", got)
	}
	// P(T>1.96, df=1e6) ≈ 0.025 (normal limit).
	if got := studentTSF(1.959964, 1e6); !approx(got, 0.025, 0.0005) {
		t.Errorf("studentTSF(1.96, 1e6) = %v, want ≈0.025", got)
	}
	if got := studentTSF(0, 10); got != 0.5 {
		t.Errorf("studentTSF(0) = %v, want 0.5", got)
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if regIncBeta(2, 3, 0) != 0 || regIncBeta(2, 3, 1) != 1 {
		t.Error("regIncBeta bounds wrong")
	}
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0.1, 0.42, 0.9} {
		if got := regIncBeta(1, 1, x); !approx(got, x, 1e-10) {
			t.Errorf("regIncBeta(1,1,%v) = %v", x, got)
		}
	}
	// Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
	if got, want := regIncBeta(2.5, 4, 0.3), 1-regIncBeta(4, 2.5, 0.7); !approx(got, want, 1e-10) {
		t.Errorf("regIncBeta symmetry: %v vs %v", got, want)
	}
}

// --- Relative risk ---

func TestRelativeRiskPointEstimate(t *testing.T) {
	// Inside: 30 of 100; outside: 10 of 100 → RR = 3.
	rr, err := NewRelativeRisk(30, 70, 10, 90)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(rr.RR, 3, 1e-12) {
		t.Errorf("RR = %v, want 3", rr.RR)
	}
	wantSE := math.Sqrt(1.0/30 - 1.0/100 + 1.0/10 - 1.0/100)
	if !approx(rr.SE, wantSE, 1e-12) {
		t.Errorf("SE = %v, want %v", rr.SE, wantSE)
	}
	if !rr.Significant() {
		t.Error("RR=3 with these counts should be significant")
	}
	if rr.SignificantlyLow() {
		t.Error("RR=3 cannot be significantly low")
	}
	if !approx(rr.Lower, math.Exp(rr.LogRR-Z95*rr.SE), 1e-12) {
		t.Error("Lower CI inconsistent")
	}
}

func TestRelativeRiskNull(t *testing.T) {
	// Identical prevalence → RR = 1, never significant.
	rr, err := NewRelativeRisk(10, 90, 100, 900)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(rr.RR, 1, 1e-12) || rr.Significant() || rr.SignificantlyLow() {
		t.Errorf("null RR misbehaves: %+v", rr)
	}
}

func TestRelativeRiskLow(t *testing.T) {
	rr, err := NewRelativeRisk(5, 995, 300, 1700)
	if err != nil {
		t.Fatal(err)
	}
	if rr.RR >= 1 || !rr.SignificantlyLow() || rr.Significant() {
		t.Errorf("low RR misbehaves: %+v", rr)
	}
}

func TestRelativeRiskErrors(t *testing.T) {
	cases := [][4]int{
		{0, 10, 5, 5}, // a == 0
		{5, 5, 0, 10}, // c == 0
		{0, 0, 5, 5},  // empty inside
		{5, 5, 0, 0},  // empty outside
		{-1, 5, 5, 5}, // negative
	}
	for _, c := range cases {
		if _, err := NewRelativeRisk(c[0], c[1], c[2], c[3]); err == nil {
			t.Errorf("NewRelativeRisk(%v) accepted", c)
		}
	}
}

func TestRelativeRiskSignificanceMatchesCI(t *testing.T) {
	// The paper's log-scale rule must agree with the RR-scale CI bound.
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 9))
		a, b := 1+r.IntN(200), r.IntN(500)
		c, d := 1+r.IntN(200), r.IntN(5000)
		rr, err := NewRelativeRisk(a, b, c, d)
		if err != nil {
			return true // invalid table, nothing to check
		}
		return rr.Significant() == (rr.Lower > 1) &&
			rr.SignificantlyLow() == (rr.Upper < 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRelativeRiskMoreDataNarrowsCI(t *testing.T) {
	small, _ := NewRelativeRisk(6, 14, 30, 170)
	big, _ := NewRelativeRisk(60, 140, 300, 1700)
	if !(big.SE < small.SE) {
		t.Errorf("10x data did not shrink SE: %v vs %v", big.SE, small.SE)
	}
	if !approx(small.RR, big.RR, 1e-12) {
		t.Errorf("point estimates differ: %v vs %v", small.RR, big.RR)
	}
}

// --- Histogram / ranking ---

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int{1, 1, 2, 3, 3, 3} {
		h.Observe(v)
	}
	if h.Total() != 6 || h.Count(3) != 3 || h.Count(9) != 0 {
		t.Errorf("histogram counts wrong: %+v", h)
	}
	if got := h.Values(); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Errorf("Values = %v", got)
	}
	if !approx(h.Mean(), 13.0/6.0, 1e-12) {
		t.Errorf("Mean = %v", h.Mean())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Total() != 0 || len(h.Values()) != 0 {
		t.Error("empty histogram misbehaves")
	}
}

func TestRankDescending(t *testing.T) {
	got := RankDescending([]float64{0.1, 0.5, 0.3})
	want := []int{1, 2, 0}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("RankDescending = %v, want %v", got, want)
	}
	// Stable on ties.
	got = RankDescending([]float64{0.5, 0.5, 0.1})
	want = []int{0, 1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("RankDescending ties = %v, want %v", got, want)
	}
}

func TestSpearmanPermutationExactP(t *testing.T) {
	// Perfect monotone n=4: only 2 of 24 permutations reach |r| = 1
	// (identity and full reversal) → p = 2/24.
	x := []float64{1, 2, 3, 4}
	y := []float64{10, 20, 30, 40}
	res, err := SpearmanPermutation(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.R, 1, 1e-12) {
		t.Errorf("R = %v, want 1", res.R)
	}
	if !approx(res.P, 2.0/24.0, 1e-12) {
		t.Errorf("P = %v, want 2/24", res.P)
	}
}

func TestSpearmanPermutationPaperCase(t *testing.T) {
	// The paper's configuration: 6 organs, heart displaced by two ranks.
	// Exact permutation p for r = .829 on n = 6.
	twitterRank := []float64{6, 5, 4, 3, 2, 1}    // heart..intestine popularity
	transplantRank := []float64{4, 6, 5, 3, 2, 1} // heart 3rd, kidney 1st, liver 2nd
	res, err := SpearmanPermutation(twitterRank, transplantRank)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.R, 1-6.0/35.0, 1e-12) {
		t.Errorf("R = %v, want %v", res.R, 1-6.0/35.0)
	}
	// A methodological finding of this reproduction: the *exact*
	// two-sided p for r = .829 at n = 6 is 42/720 ≈ .058 — the paper's
	// "p < .05" holds under the t approximation (p ≈ .042, what scipy
	// reports) but is marginal under the exact permutation test.
	if !approx(res.P, 42.0/720.0, 1e-9) {
		t.Errorf("exact p = %v, want 42/720", res.P)
	}
	approxRes, err := Spearman(twitterRank, transplantRank)
	if err != nil {
		t.Fatal(err)
	}
	if !(approxRes.P < 0.05 && res.P > 0.05) {
		t.Errorf("expected t-approx p (%v) < .05 < exact p (%v)", approxRes.P, res.P)
	}
	if math.Abs(res.P-approxRes.P) > 0.03 {
		t.Errorf("exact p %v far from t-approx %v", res.P, approxRes.P)
	}
}

func TestSpearmanPermutationErrors(t *testing.T) {
	long := make([]float64, 10)
	for i := range long {
		long[i] = float64(i)
	}
	if _, err := SpearmanPermutation(long, long); err == nil {
		t.Error("n=10 accepted")
	}
	if _, err := SpearmanPermutation([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("n=2 accepted")
	}
	if _, err := SpearmanPermutation([]float64{1, 2, 3}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestSpearmanPermutationUncorrelated(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6}
	y := []float64{3, 1, 4, 1.5, 5, 2}
	res, err := SpearmanPermutation(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.3 {
		t.Errorf("uncorrelated exact p = %v, want large", res.P)
	}
}
