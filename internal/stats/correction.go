package stats

import (
	"fmt"
	"math"
	"sort"
)

// The paper's Figure 5 applies the α = 0.05 significance rule to 312
// (state, organ) hypotheses without correction, so a handful of
// highlights are expected to be false positives. These corrections let
// the analysis quantify that: Bonferroni controls the family-wise error
// rate, Benjamini–Hochberg the false-discovery rate.

// PValueFromZ converts a one-sided z-score to its p-value P(Z > z) using
// the complementary error function.
func PValueFromZ(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// ZFromLogRR returns the one-sided z-score of a log relative risk against
// the null RR = 1.
func ZFromLogRR(logRR, se float64) float64 {
	if se == 0 {
		return math.Inf(1)
	}
	return logRR / se
}

// Bonferroni adjusts p-values by the family size: p_adj = min(1, m·p).
func Bonferroni(ps []float64) []float64 {
	m := float64(len(ps))
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = math.Min(1, p*m)
	}
	return out
}

// BenjaminiHochberg returns the BH-adjusted p-values (q-values). A
// hypothesis is rejected at FDR level α when its q-value is ≤ α.
func BenjaminiHochberg(ps []float64) []float64 {
	n := len(ps)
	if n == 0 {
		return nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return ps[idx[a]] < ps[idx[b]] })
	out := make([]float64, n)
	// q_(i) = min over j >= i of p_(j)·n/j, computed right to left.
	minSoFar := 1.0
	for rank := n - 1; rank >= 0; rank-- {
		i := idx[rank]
		q := ps[i] * float64(n) / float64(rank+1)
		if q < minSoFar {
			minSoFar = q
		}
		out[i] = math.Min(1, minSoFar)
	}
	return out
}

// ContinuityRelativeRisk computes the relative risk of a 2×2 table with
// the Haldane–Anscombe continuity correction: 0.5 is added to every
// cell, which keeps the estimate and its log-scale standard error finite
// when a zero cell makes the uncorrected ratio undefined. Incremental
// accumulators hit those tables routinely — a state's last mentioning
// user deleting their tweets decrements a to 0 mid-stream — and route
// through this instead of erroring, so a sparse cell degrades to a
// shrunk estimate rather than a hole in the analysis. The raw counts are
// preserved in A–D. It errors only on negative counts or when either
// exposure group is truly absent (a+b == 0 or c+d == 0), where even the
// corrected ratio would compare against a group that never existed.
func ContinuityRelativeRisk(a, b, c, d int) (RelativeRisk, error) {
	if a < 0 || b < 0 || c < 0 || d < 0 {
		return RelativeRisk{}, fmt.Errorf("stats: negative contingency count (%d,%d,%d,%d)", a, b, c, d)
	}
	if a+b == 0 || c+d == 0 {
		return RelativeRisk{}, fmt.Errorf("%w: empty exposure group", ErrInsufficientData)
	}
	fa, fb := float64(a)+0.5, float64(b)+0.5
	fc, fd := float64(c)+0.5, float64(d)+0.5
	pin := fa / (fa + fb)
	pout := fc / (fc + fd)
	rr := pin / pout
	logrr := math.Log(rr)
	se := math.Sqrt(1/fa - 1/(fa+fb) + 1/fc - 1/(fc+fd))
	return RelativeRisk{
		RR:    rr,
		LogRR: logrr,
		SE:    se,
		Lower: math.Exp(logrr - Z95*se),
		Upper: math.Exp(logrr + Z95*se),
		A:     a, B: b, C: c, D: d,
	}, nil
}

// ChiSquare1DF returns the upper-tail p-value of a chi-square statistic
// with one degree of freedom — the classic 2×2 contingency test that can
// back an RR significance call. χ²(1) upper tail equals
// 2·P(Z > sqrt(x)).
func ChiSquare1DF(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return math.Erfc(math.Sqrt(x / 2))
}

// ChiSquareStat computes the Pearson chi-square statistic of the 2×2
// table {{a, b}, {c, d}}.
func ChiSquareStat(a, b, c, d int) float64 {
	fa, fb, fc, fd := float64(a), float64(b), float64(c), float64(d)
	n := fa + fb + fc + fd
	if n == 0 {
		return 0
	}
	den := (fa + fb) * (fc + fd) * (fa + fc) * (fb + fd)
	if den == 0 {
		return 0
	}
	diff := fa*fd - fb*fc
	return n * diff * diff / den
}
