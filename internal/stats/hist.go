package stats

import "sort"

// Histogram counts occurrences of integer-valued observations, used for
// the Figure 2 dataset histograms (users per organ, mentions per tweet).
type Histogram struct {
	counts map[int]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int)}
}

// Observe adds one observation of value v.
func (h *Histogram) Observe(v int) {
	h.counts[v]++
	h.total++
}

// Count returns the number of observations with value v.
func (h *Histogram) Count(v int) int { return h.counts[v] }

// Total returns the total number of observations.
func (h *Histogram) Total() int { return h.total }

// Values returns the observed values in ascending order.
func (h *Histogram) Values() []int {
	out := make([]int, 0, len(h.counts))
	for v := range h.counts {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Mean returns the mean observed value.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	s := 0
	for v, c := range h.counts {
		s += v * c
	}
	return float64(s) / float64(h.total)
}

// RankDescending returns the indices of xs ordered by descending value
// (ties broken by ascending index), used to present organ attention in
// ranked bins as in Figures 3, 4, and 7.
func RankDescending(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] > xs[idx[b]] })
	return idx
}
