package stats

import (
	"fmt"
	"math"
)

// RelativeRisk is the result of Equation 4: the ratio of the prevalence of
// an outcome (an organ being a user's focus) inside a region to its
// prevalence outside the region, with a log-normal confidence interval.
//
// Writing the 2×2 contingency table as
//
//	                exposed (inside r)   unexposed (outside r)
//	outcome               a                     c
//	no outcome            b                     d
//
// the point estimate is RR = (a/(a+b)) / (c/(c+d)) and the standard error
// of log RR is sqrt(1/a − 1/(a+b) + 1/c − 1/(c+d)).
type RelativeRisk struct {
	RR    float64 // point estimate ρ_in / ρ_out
	LogRR float64 // ln(RR)
	SE    float64 // standard error of ln(RR)
	Lower float64 // lower limit of the (1−α) CI on the RR scale
	Upper float64 // upper limit of the (1−α) CI on the RR scale
	A     int     // outcome inside
	B     int     // no outcome inside
	C     int     // outcome outside
	D     int     // no outcome outside
}

// NewRelativeRisk computes the relative risk and its 95% confidence
// interval from the 2×2 table counts. It errors when either margin has no
// outcome observations (a == 0 or c == 0) or either group is empty, since
// the log-RR standard error is then undefined.
func NewRelativeRisk(a, b, c, d int) (RelativeRisk, error) {
	if a < 0 || b < 0 || c < 0 || d < 0 {
		return RelativeRisk{}, fmt.Errorf("stats: negative contingency count (%d,%d,%d,%d)", a, b, c, d)
	}
	if a+b == 0 || c+d == 0 {
		return RelativeRisk{}, fmt.Errorf("%w: empty exposure group", ErrInsufficientData)
	}
	if a == 0 || c == 0 {
		return RelativeRisk{}, fmt.Errorf("%w: zero outcome count", ErrInsufficientData)
	}
	pin := float64(a) / float64(a+b)
	pout := float64(c) / float64(c+d)
	rr := pin / pout
	logrr := math.Log(rr)
	se := math.Sqrt(1/float64(a) - 1/float64(a+b) + 1/float64(c) - 1/float64(c+d))
	return RelativeRisk{
		RR:    rr,
		LogRR: logrr,
		SE:    se,
		Lower: math.Exp(logrr - Z95*se),
		Upper: math.Exp(logrr + Z95*se),
		A:     a, B: b, C: c, D: d,
	}, nil
}

// Significant reports the paper's Figure 5 rule: the organ significantly
// exceeds its expected national proportion in the region when the lower
// confidence limit of log(RR) is greater than zero — equivalently, when
// the lower CI limit on the RR scale exceeds 1.
func (r RelativeRisk) Significant() bool { return r.LogRR-Z95*r.SE > 0 }

// SignificantlyLow reports the symmetric condition: the organ is mentioned
// significantly *less* than nationally expected (upper CI limit below 1).
// The paper notes states can also be similar in the organs they
// under-mention; this supports that analysis.
func (r RelativeRisk) SignificantlyLow() bool { return r.LogRR+Z95*r.SE < 0 }
