// Package organ defines the solid-organ taxonomy used throughout
// donorsense, the organ-donation keyword set collected from the paper's
// Figure 1 (the Cartesian product of Context and Subject terms), and the
// OPTN/SRTR reference statistics the paper validates against.
//
// The paper characterizes conversations about the six major solid organs
// transplanted in the United States: heart, kidney, liver, lung, pancreas,
// and intestine. Every other package refers to organs through the Organ
// type defined here so that matrix column order, histogram order, and
// report order stay consistent.
package organ

import (
	"fmt"
	"strings"
)

// Organ identifies one of the six major solid organs the paper tracks.
// The zero value is Heart; the ordering is fixed and is used as the column
// order of every attention matrix in the system.
type Organ int

// The six major solid organs transplanted in the USA, in canonical column
// order. The order matches the paper's Figure 3 color legend (heart,
// kidney, liver, lung, pancreas, intestine).
const (
	Heart Organ = iota
	Kidney
	Liver
	Lung
	Pancreas
	Intestine
)

// Count is the number of organs in the taxonomy.
const Count = 6

// All returns the organs in canonical column order.
func All() []Organ {
	return []Organ{Heart, Kidney, Liver, Lung, Pancreas, Intestine}
}

var names = [Count]string{"heart", "kidney", "liver", "lung", "pancreas", "intestine"}

// String returns the lowercase English name of the organ.
func (o Organ) String() string {
	if o < 0 || int(o) >= Count {
		return fmt.Sprintf("organ(%d)", int(o))
	}
	return names[o]
}

// Valid reports whether o is one of the six known organs.
func (o Organ) Valid() bool { return o >= 0 && int(o) < Count }

// Index returns the matrix column index of the organ. It panics if the
// organ is invalid, because an invalid organ reaching matrix code is a
// programming error, not a data error.
func (o Organ) Index() int {
	if !o.Valid() {
		panic(fmt.Sprintf("organ: invalid organ %d", int(o)))
	}
	return int(o)
}

// Parse returns the organ named by s (case-insensitive, singular or
// plural). It reports ok=false for unknown names.
func Parse(s string) (Organ, bool) {
	o, ok := subjectIndex[strings.ToLower(strings.TrimSpace(s))]
	return o, ok
}

// MustParse is like Parse but panics on unknown names. It is intended for
// package initialization and tests.
func MustParse(s string) Organ {
	o, ok := Parse(s)
	if !ok {
		panic(fmt.Sprintf("organ: unknown organ %q", s))
	}
	return o
}

// Names returns the canonical organ names in column order.
func Names() []string {
	out := make([]string, Count)
	for i, o := range All() {
		out[i] = o.String()
	}
	return out
}
