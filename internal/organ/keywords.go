package organ

import "strings"

// The paper's Figure 1 defines the collection filter as the Cartesian
// product of a set of Context words (organ-donation terms) and a set of
// Subject words (the organs of interest). A tweet is collected when it
// contains at least one Context word and at least one Subject word.

// ContextWords returns the organ-donation context vocabulary. These are
// the donation-related terms; a tweet must contain at least one of them
// to be considered in the organ-donation context.
func ContextWords() []string {
	out := make([]string, len(contextWords))
	copy(out, contextWords)
	return out
}

// contextWords is the Context set from Figure 1: terms that anchor the
// conversation in organ donation and transplantation.
var contextWords = []string{
	"donor",
	"donors",
	"donation",
	"donations",
	"donate",
	"donated",
	"donating",
	"transplant",
	"transplants",
	"transplanted",
	"transplantation",
	"recipient",
	"recipients",
	"waiting list",
	"waitlist",
	"organ failure",
	"graft",
}

// SubjectWords returns the organ subject vocabulary: every surface form
// (singular, plural, and common clinical variants) that maps to one of the
// six organs.
func SubjectWords() []string {
	out := make([]string, 0, len(subjectForms))
	for _, f := range subjectForms {
		out = append(out, f.word)
	}
	return out
}

// subjectForm maps a surface form to its organ.
type subjectForm struct {
	word  string
	organ Organ
}

// subjectForms lists the Subject set from Figure 1 with the surface
// variants needed to match informal tweet language.
var subjectForms = []subjectForm{
	{"heart", Heart},
	{"hearts", Heart},
	{"cardiac", Heart},
	{"kidney", Kidney},
	{"kidneys", Kidney},
	{"renal", Kidney},
	{"liver", Liver},
	{"livers", Liver},
	{"hepatic", Liver},
	{"lung", Lung},
	{"lungs", Lung},
	{"pulmonary", Lung},
	{"pancreas", Pancreas},
	{"pancreases", Pancreas},
	{"pancreatic", Pancreas},
	{"intestine", Intestine},
	{"intestines", Intestine},
	{"intestinal", Intestine},
	{"bowel", Intestine},
}

// subjectIndex maps every lowercase subject surface form to its organ.
var subjectIndex = func() map[string]Organ {
	m := make(map[string]Organ, len(subjectForms))
	for _, f := range subjectForms {
		m[f.word] = f.organ
	}
	return m
}()

// SubjectOrgan returns the organ a subject surface form refers to.
// The lookup is case-insensitive. ok is false when the word is not a
// subject form.
func SubjectOrgan(word string) (Organ, bool) {
	o, ok := subjectIndex[strings.ToLower(word)]
	return o, ok
}

// clinicalForms are the clinical/adjectival subject variants, a signal
// for practitioner language in the user-role analysis.
var clinicalForms = map[string]bool{
	"cardiac": true, "renal": true, "hepatic": true,
	"pulmonary": true, "pancreatic": true, "intestinal": true,
}

// IsClinicalForm reports whether the subject surface form is the clinical
// variant (renal, hepatic, ...) rather than the lay word.
func IsClinicalForm(word string) bool {
	return clinicalForms[strings.ToLower(word)]
}

// KeywordPair is one element of the Cartesian product Q = Context × Subject.
type KeywordPair struct {
	Context string // donation-context term
	Subject string // organ surface form
	Organ   Organ  // organ the subject form refers to
}

// Keywords returns the full collection filter Q as the Cartesian product of
// ContextWords and SubjectWords, mirroring Figure 1. The Twitter stream
// filter treats each pair as a conjunction: a tweet matches Q if it matches
// at least one pair, i.e. contains that pair's context term and subject
// term.
func Keywords() []KeywordPair {
	out := make([]KeywordPair, 0, len(contextWords)*len(subjectForms))
	for _, c := range contextWords {
		for _, s := range subjectForms {
			out = append(out, KeywordPair{Context: c, Subject: s.word, Organ: s.organ})
		}
	}
	return out
}

// TrackTerms renders the keyword product in the comma-separated,
// space-conjoined syntax of the Twitter Stream API "track" parameter:
// each pair becomes "context subject" and pairs are joined with commas.
func TrackTerms() string {
	pairs := Keywords()
	parts := make([]string, len(pairs))
	for i, p := range pairs {
		parts[i] = p.Context + " " + p.Subject
	}
	return strings.Join(parts, ",")
}
