package organ

// Reference statistics from the OPTN/SRTR 2012 Annual Data Report, the
// external data the paper validates against (reference [1] in the paper).
// The paper uses two facts from this report:
//
//  1. National transplant counts per organ, against which Twitter organ
//     popularity correlates at Spearman r = .84 with heart over-ranked
//     (first on Twitter, third in transplants).
//  2. Kansas being the only Midwestern state with a surplus of deceased
//     kidney donors (via Cao et al., Applied Geography 2016), matching
//     the Kansas kidney-conversation anomaly.
//
// Exact report values are not redistributable here; the counts below carry
// the correct magnitudes and, critically, the correct ranks, which is all
// the correlation analysis consumes. See DESIGN.md §2 for the substitution
// rationale.

// TransplantStats holds national 2012 transplant-activity reference values
// for a single organ.
type TransplantStats struct {
	Organ       Organ
	Transplants int // transplants performed in the USA in 2012
	Waitlist    int // candidates on the waiting list at year end 2012
}

// transplants2012 lists national 2012 transplant counts in canonical organ
// order. Ranks: kidney > liver > heart > lung > pancreas > intestine.
var transplants2012 = [Count]TransplantStats{
	{Heart, 2378, 3157},
	{Kidney, 16890, 60229},
	{Liver, 6256, 15870},
	{Lung, 1754, 1616},
	{Pancreas, 1043, 2467},
	{Intestine, 106, 259},
}

// Transplants2012 returns the 2012 national transplant reference counts in
// canonical organ order.
func Transplants2012() []TransplantStats {
	out := make([]TransplantStats, Count)
	copy(out, transplants2012[:])
	return out
}

// TransplantCount returns the 2012 national transplant count for the organ.
func TransplantCount(o Organ) int { return transplants2012[o.Index()].Transplants }

// TransplantCounts returns the 2012 transplant counts as a float slice in
// canonical organ order, convenient for correlation analysis.
func TransplantCounts() []float64 {
	out := make([]float64, Count)
	for i, s := range transplants2012 {
		out[i] = float64(s.Transplants)
	}
	return out
}

// DualTransplantPairs lists the organ pairs the paper singles out as the
// most common dual (simultaneous) transplants: heart–kidney, liver–kidney,
// and kidney–pancreas. The synthetic generator uses these to couple organ
// interests, and the Figure 3 analysis checks that the co-mention
// structure reflects them.
func DualTransplantPairs() [][2]Organ {
	return [][2]Organ{
		{Heart, Kidney},
		{Liver, Kidney},
		{Kidney, Pancreas},
	}
}

// KidneyDonorSurplusStates lists the states reported (Cao, Stewart & Kalil
// 2016) as having a surplus of deceased kidney donors relative to demand.
// Kansas is the only such state in the Midwest, which the paper matches
// against its kidney-conversation anomaly.
func KidneyDonorSurplusStates() []string {
	return []string{"KS"}
}
