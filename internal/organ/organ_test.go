package organ

import (
	"strings"
	"testing"
)

func TestAllOrder(t *testing.T) {
	got := All()
	want := []Organ{Heart, Kidney, Liver, Lung, Pancreas, Intestine}
	if len(got) != len(want) {
		t.Fatalf("All() length = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("All()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestString(t *testing.T) {
	tests := []struct {
		o    Organ
		want string
	}{
		{Heart, "heart"},
		{Kidney, "kidney"},
		{Liver, "liver"},
		{Lung, "lung"},
		{Pancreas, "pancreas"},
		{Intestine, "intestine"},
		{Organ(-1), "organ(-1)"},
		{Organ(99), "organ(99)"},
	}
	for _, tt := range tests {
		if got := tt.o.String(); got != tt.want {
			t.Errorf("Organ(%d).String() = %q, want %q", int(tt.o), got, tt.want)
		}
	}
}

func TestValid(t *testing.T) {
	for _, o := range All() {
		if !o.Valid() {
			t.Errorf("%v.Valid() = false, want true", o)
		}
	}
	for _, o := range []Organ{-1, Count, 100} {
		if o.Valid() {
			t.Errorf("Organ(%d).Valid() = true, want false", int(o))
		}
	}
}

func TestIndexRoundTrip(t *testing.T) {
	for i, o := range All() {
		if o.Index() != i {
			t.Errorf("%v.Index() = %d, want %d", o, o.Index(), i)
		}
	}
}

func TestIndexPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Index() on invalid organ did not panic")
		}
	}()
	Organ(42).Index()
}

func TestParse(t *testing.T) {
	tests := []struct {
		in     string
		want   Organ
		wantOK bool
	}{
		{"heart", Heart, true},
		{"Heart", Heart, true},
		{"HEARTS", Heart, true},
		{"kidneys", Kidney, true},
		{"renal", Kidney, true},
		{"hepatic", Liver, true},
		{"  lung  ", Lung, true},
		{"pulmonary", Lung, true},
		{"pancreatic", Pancreas, true},
		{"bowel", Intestine, true},
		{"spleen", 0, false},
		{"", 0, false},
	}
	for _, tt := range tests {
		got, ok := Parse(tt.in)
		if ok != tt.wantOK || (ok && got != tt.want) {
			t.Errorf("Parse(%q) = %v, %v; want %v, %v", tt.in, got, ok, tt.want, tt.wantOK)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on unknown organ did not panic")
		}
	}()
	MustParse("appendix")
}

func TestNames(t *testing.T) {
	want := []string{"heart", "kidney", "liver", "lung", "pancreas", "intestine"}
	got := Names()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestKeywordsIsCartesianProduct(t *testing.T) {
	ks := Keywords()
	wantLen := len(ContextWords()) * len(SubjectWords())
	if len(ks) != wantLen {
		t.Fatalf("len(Keywords()) = %d, want %d", len(ks), wantLen)
	}
	// Every pair must be unique and carry the right organ mapping.
	seen := make(map[string]bool, len(ks))
	for _, k := range ks {
		key := k.Context + "\x00" + k.Subject
		if seen[key] {
			t.Errorf("duplicate keyword pair %q + %q", k.Context, k.Subject)
		}
		seen[key] = true
		o, ok := SubjectOrgan(k.Subject)
		if !ok || o != k.Organ {
			t.Errorf("pair %q+%q maps to %v, SubjectOrgan gives %v (ok=%v)", k.Context, k.Subject, k.Organ, o, ok)
		}
	}
}

func TestSubjectOrganCaseInsensitive(t *testing.T) {
	if o, ok := SubjectOrgan("KIDNEYS"); !ok || o != Kidney {
		t.Errorf("SubjectOrgan(KIDNEYS) = %v, %v; want Kidney, true", o, ok)
	}
	if _, ok := SubjectOrgan("cornea"); ok {
		t.Error("SubjectOrgan(cornea) matched; want no match")
	}
}

func TestEveryOrganHasSubjectForms(t *testing.T) {
	covered := make(map[Organ]bool)
	for _, w := range SubjectWords() {
		o, ok := SubjectOrgan(w)
		if !ok {
			t.Fatalf("SubjectWords contains %q which SubjectOrgan rejects", w)
		}
		covered[o] = true
	}
	for _, o := range All() {
		if !covered[o] {
			t.Errorf("organ %v has no subject surface forms", o)
		}
	}
}

func TestTrackTerms(t *testing.T) {
	s := TrackTerms()
	pairs := strings.Split(s, ",")
	if len(pairs) != len(Keywords()) {
		t.Fatalf("TrackTerms has %d comma-separated pairs, want %d", len(pairs), len(Keywords()))
	}
	for _, p := range pairs[:5] {
		if !strings.Contains(p, " ") {
			t.Errorf("track pair %q lacks space conjunction", p)
		}
	}
}

func TestTransplants2012RanksMatchOPTN(t *testing.T) {
	// The well-known 2012 ordering: kidney > liver > heart > lung >
	// pancreas > intestine.
	c := func(o Organ) int { return TransplantCount(o) }
	if !(c(Kidney) > c(Liver) && c(Liver) > c(Heart) && c(Heart) > c(Lung) &&
		c(Lung) > c(Pancreas) && c(Pancreas) > c(Intestine)) {
		t.Errorf("transplant count ranks wrong: %v", TransplantCounts())
	}
}

func TestTransplantCountsOrder(t *testing.T) {
	counts := TransplantCounts()
	if len(counts) != Count {
		t.Fatalf("len(TransplantCounts()) = %d, want %d", len(counts), Count)
	}
	for i, s := range Transplants2012() {
		if counts[i] != float64(s.Transplants) {
			t.Errorf("TransplantCounts()[%d] = %v, want %v", i, counts[i], s.Transplants)
		}
		if s.Organ != All()[i] {
			t.Errorf("Transplants2012()[%d].Organ = %v, want %v", i, s.Organ, All()[i])
		}
	}
}

func TestDualTransplantPairs(t *testing.T) {
	pairs := DualTransplantPairs()
	if len(pairs) != 3 {
		t.Fatalf("len(DualTransplantPairs()) = %d, want 3", len(pairs))
	}
	// Kidney participates in all three pairs the paper lists.
	for _, p := range pairs {
		if p[0] != Kidney && p[1] != Kidney {
			t.Errorf("pair %v/%v does not involve kidney", p[0], p[1])
		}
	}
}

func TestKidneyDonorSurplusStates(t *testing.T) {
	got := KidneyDonorSurplusStates()
	if len(got) != 1 || got[0] != "KS" {
		t.Errorf("KidneyDonorSurplusStates() = %v, want [KS]", got)
	}
}
