package twitter

import (
	"context"
	"fmt"
)

// Sharded routing of a tweet stream. A single collector tops out at one
// fold goroutine and one checkpoint file; to scale past one process the
// stream is partitioned by user id so that every tweet (and delete
// notice) of a given user lands on the same shard. User-id hashing keeps
// the partition stable across runs and restarts — the property the
// mergeable per-shard datasets rely on: each user's full history lives
// in exactly one shard, so shard outputs union without cross-shard
// user conflicts.

// ShardIndex maps a user id onto one of n shards with an FNV-1a hash of
// the id's little-endian bytes. The mapping is deterministic across
// processes and Go versions (no map iteration, no runtime hash seed), so
// a restarted collector re-routes every user to the same shard.
func ShardIndex(userID int64, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	u := uint64(userID)
	for i := 0; i < 8; i++ {
		h ^= u & 0xff
		h *= prime64
		u >>= 8
	}
	return int(h % uint64(n))
}

// ShardRouter splits one tweet stream across N shards by user-id hash.
// The zero value is unusable; Shards must be >= 1.
type ShardRouter struct {
	// Shards is the partition count.
	Shards int
}

// Shard returns the shard that owns the tweet's user.
func (r ShardRouter) Shard(t *Tweet) int {
	return ShardIndex(t.User.ID, r.Shards)
}

// Split fans the input channel out into one channel per shard,
// preserving per-shard arrival order (the router is a single goroutine,
// so each shard sees its users' tweets in stream order). Sends block
// when a shard's consumer falls behind — head-of-line backpressure, not
// loss. All output channels close after in closes and drains, or when
// ctx is cancelled. Consumers needing bounded buffering with restart
// semantics should use pipeline.Supervisor instead, which routes with
// ShardIndex but owns its own replay buffers.
func (r ShardRouter) Split(ctx context.Context, in <-chan Tweet) ([]<-chan Tweet, error) {
	if r.Shards < 1 {
		return nil, fmt.Errorf("twitter: ShardRouter needs >= 1 shard, have %d", r.Shards)
	}
	outs := make([]chan Tweet, r.Shards)
	ros := make([]<-chan Tweet, r.Shards)
	for i := range outs {
		outs[i] = make(chan Tweet, 64)
		ros[i] = outs[i]
	}
	go func() {
		defer func() {
			for _, ch := range outs {
				close(ch)
			}
		}()
		for {
			select {
			case <-ctx.Done():
				return
			case t, ok := <-in:
				if !ok {
					return
				}
				select {
				case outs[r.Shard(&t)] <- t:
				case <-ctx.Done():
					return
				}
			}
		}
	}()
	return ros, nil
}
