package twitter

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
	"unsafe"

	"donorsense/internal/obs"
)

// ---------------------------------------------------------------------------
// Differential oracle
//
// The hand-rolled codec is held to behavioral equivalence with
// encoding/json: oracleMarshal is an independent reflection-based encode
// (the pre-codec MarshalJSON body), and Tweet.UnmarshalJSON is the
// reflection-based decode. Every payload — valid or not — must produce
// the same verdict, and on success the same Tweet and the same bytes.
// ---------------------------------------------------------------------------

type oracleUser struct {
	ID         int64  `json:"id"`
	ScreenName string `json:"screen_name"`
	Location   string `json:"location"`
}

type oracleCoords struct {
	Type        string     `json:"type"`
	Coordinates [2]float64 `json:"coordinates"`
}

type oracleTweet struct {
	ID          int64         `json:"id"`
	Text        string        `json:"text"`
	CreatedAt   string        `json:"created_at"`
	User        oracleUser    `json:"user"`
	Coordinates *oracleCoords `json:"coordinates,omitempty"`
}

// oracleMarshal encodes t through encoding/json reflection, exactly as
// MarshalJSON did before the codec existed.
func oracleMarshal(t *Tweet) ([]byte, error) {
	w := oracleTweet{
		ID:        t.ID,
		Text:      t.Text,
		CreatedAt: t.CreatedAt.Format(createdAtFormat),
		User: oracleUser{
			ID:         t.User.ID,
			ScreenName: t.User.ScreenName,
			Location:   t.User.Location,
		},
	}
	if t.HasCoordinates {
		w.Coordinates = &oracleCoords{
			Type:        "Point",
			Coordinates: [2]float64{t.Coordinates.Lon, t.Coordinates.Lat},
		}
	}
	return json.Marshal(w)
}

// tweetsMatch compares decoded tweets. CreatedAt is compared as instant,
// rendered text, and zone offset, so a FixedZone from the codec and the
// equivalent zone from time.Parse count as equal.
func tweetsMatch(a, b Tweet) bool {
	_, aoff := a.CreatedAt.Zone()
	_, boff := b.CreatedAt.Zone()
	return a.ID == b.ID && a.Text == b.Text && a.User == b.User &&
		a.HasCoordinates == b.HasCoordinates && a.Coordinates == b.Coordinates &&
		a.CreatedAt.Equal(b.CreatedAt) && aoff == boff &&
		a.CreatedAt.Format(createdAtFormat) == b.CreatedAt.Format(createdAtFormat)
}

// checkWireLine runs the full differential property for one payload:
// codec decode ≡ oracle decode, and when decoding succeeds, codec encode
// ≡ oracle encode and the encoded bytes decode back to the same tweet.
func checkWireLine(t *testing.T, dec *Decoder, line []byte) {
	t.Helper()
	var got Tweet
	gotErr := dec.Decode(line, &got)
	var want Tweet
	wantErr := want.UnmarshalJSON(line)
	if (gotErr != nil) != (wantErr != nil) {
		t.Fatalf("verdict mismatch on %q:\n  codec:  %v\n  oracle: %v", line, gotErr, wantErr)
	}
	if gotErr != nil {
		return
	}
	if !tweetsMatch(got, want) {
		t.Fatalf("decode mismatch on %q:\n  codec:  %+v\n  oracle: %+v", line, got, want)
	}
	enc, encErr := AppendTweet(nil, &got)
	oenc, oencErr := oracleMarshal(&got)
	if (encErr != nil) != (oencErr != nil) {
		t.Fatalf("encode verdict mismatch for %+v: codec %v, oracle %v", got, encErr, oencErr)
	}
	if encErr != nil {
		return
	}
	if !bytes.Equal(enc, oenc) {
		t.Fatalf("encode mismatch for %+v:\n  codec:  %s\n  oracle: %s", got, enc, oenc)
	}
	var again Tweet
	if err := dec.Decode(enc, &again); err != nil {
		t.Fatalf("re-decode of own encoding %s failed: %v", enc, err)
	}
	if !tweetsMatch(again, got) {
		t.Fatalf("round trip drifted on %s:\n  first:  %+v\n  second: %+v", enc, got, again)
	}
}

const caOK = `"Wed Apr 22 13:45:00 +0000 2015"`

// wireSeeds are the crafted payloads both the deterministic differential
// test and FuzzWire start from: escapes, unicode, invalid UTF-8,
// surrogates, duplicate and case-folded keys, nulls, short/long/empty
// coordinate arrays, number edge cases, and malformed JSON.
var wireSeeds = []string{
	// Canonical shapes.
	`{"id":123,"text":"Register as an organ donor","created_at":` + caOK + `,"user":{"id":42,"screen_name":"donor_advocate","location":"Wichita, KS"}}`,
	`{"id":1,"text":"geo","created_at":` + caOK + `,"user":{"id":2,"screen_name":"s","location":"l"},"coordinates":{"type":"Point","coordinates":[-97.3,37.7]}}`,
	// Top-level values of every kind.
	`{}`, `null`, `[]`, `5`, `"x"`, `true`, `false`, ``, `  `, `{} `, ` null `,
	`nullx`, `{"id":1} trailing`,
	// Whitespace and duplicate keys (last wins, structs merge).
	" {\t\"id\" : 1 ,\n\"created_at\":" + caOK + "}\r",
	`{"id":1,"id":2,"created_at":` + caOK + `}`,
	`{"user":{"id":1},"user":{"screen_name":"x"},"created_at":` + caOK + `}`,
	`{"created_at":"bad","created_at":` + caOK + `}`,
	`{"created_at":` + caOK + `,"created_at":null}`,
	// Case-folded keys (encoding/json matches field names with EqualFold).
	`{"ID":7,"TEXT":"x","Created_At":` + caOK + `,"USER":{"SCREEN_NAME":"y","Location":"z"}}`,
	`{"ıd":1,"created_at":` + caOK + `}`,
	// Nulls everywhere.
	`{"id":null,"text":null,"user":null,"coordinates":null,"created_at":` + caOK + `}`,
	`{"user":{"id":null,"screen_name":null,"location":null},"created_at":` + caOK + `}`,
	// Coordinates: empty object, empty/short/long arrays, null elements,
	// null resetting an earlier object, merge without reset.
	`{"created_at":` + caOK + `,"coordinates":{}}`,
	`{"created_at":` + caOK + `,"coordinates":{"coordinates":[]}}`,
	`{"created_at":` + caOK + `,"coordinates":{"coordinates":[5]}}`,
	`{"created_at":` + caOK + `,"coordinates":{"coordinates":[1,2,3,"extra",{}]}}`,
	`{"created_at":` + caOK + `,"coordinates":{"coordinates":[null,5]}}`,
	`{"created_at":` + caOK + `,"coordinates":{"coordinates":null}}`,
	`{"created_at":` + caOK + `,"coordinates":{"coordinates":[1,2]},"coordinates":null,"coordinates":{}}`,
	`{"created_at":` + caOK + `,"coordinates":{"coordinates":[1,2]},"coordinates":{"type":"Point"}}`,
	`{"created_at":` + caOK + `,"coordinates":{"type":5}}`,
	`{"created_at":` + caOK + `,"coordinates":[1,2]}`,
	`{"created_at":` + caOK + `,"coordinates":"Point"}`,
	// String escapes, unicode, surrogates (paired, lone, half-paired),
	// control characters, invalid UTF-8, U+2028/29.
	`{"text":"a\"b\\c\/d\b\f\n\r\t\u0041\u00e9","created_at":` + caOK + `}`,
	`{"text":"\ud83d\ude00 and \ud800 and \ud800\u0041 and \udc00","created_at":` + caOK + `}`,
	"{\"text\":\"raw \xff byte and ok \xc3\xa9\",\"created_at\":" + caOK + "}",
	"{\"text\":\"seps \u2028 \u2029\",\"created_at\":" + caOK + "}",
	`{"text":"<html> & friends","created_at":` + caOK + `}`,
	`{"te\u0078t":"escaped key","created_at":` + caOK + `}`,
	`{"text":"bad \q escape"}`,
	`{"text":"bad \u00zz hex"}`,
	"{\"text\":\"ctrl \x01 char\"}",
	`{"text":"unterminated`,
	// Numbers: type errors, overflow, leading zeros, grammar edges.
	`{"id":1.5,"created_at":` + caOK + `}`,
	`{"id":1e2,"created_at":` + caOK + `}`,
	`{"id":-0,"created_at":` + caOK + `}`,
	`{"id":9223372036854775807,"created_at":` + caOK + `}`,
	`{"id":9223372036854775808,"created_at":` + caOK + `}`,
	`{"id":"123","created_at":` + caOK + `}`,
	`{"id":01}`, `{"id":1.}`, `{"id":1e}`, `{"id":1e+}`, `{"id":-}`, `{"id":.5}`,
	`{"coordinates":{"coordinates":[1e999,0]},"created_at":` + caOK + `}`,
	`{"coordinates":{"coordinates":[1.25e2,-0.5]},"created_at":` + caOK + `}`,
	`{"coordinates":{"coordinates":[1e-7,1e21]},"created_at":` + caOK + `}`,
	// Unknown fields with nested values that must be skipped but
	// validated.
	`{"retweeted_status":{"user":{"id":[1,{"a":null}]},"n":1},"created_at":` + caOK + `}`,
	`{"junk":[[[{"deep":true}]]],"created_at":` + caOK + `}`,
	`{"junk":falsey}`, `{"junk":tru}`, `{"junk":nul}`,
	// Structural errors.
	`{`, `{"a"}`, `{"a":1,}`, `{,}`, `{"a":1 "b":2}`, `[1,]`, `[1 2]`,
	`{"user":{"id":}}`, `{1:2}`,
	// created_at variants the parser must defer to time.Parse on.
	`{"created_at":"wed apr 22 13:45:00 +0000 2015"}`,
	`{"created_at":"Wed Apr 22 9:45:00 +0000 2015"}`,
	`{"created_at":"Wed Apr 22 13:45:00 -0730 2015"}`,
	`{"created_at":"Sun Feb 29 00:00:00 +0000 2015"}`,
	`{"created_at":""}`,
}

// TestWireDecodeMatchesOracle runs the differential property over the
// crafted corpus deterministically (the same payloads seed FuzzWire).
func TestWireDecodeMatchesOracle(t *testing.T) {
	dec := NewDecoder()
	for _, s := range wireSeeds {
		checkWireLine(t, dec, []byte(s))
	}
}

// FuzzWire is the codec's differential fuzz oracle: for every input the
// codec and encoding/json must agree on verdict, value, and bytes.
func FuzzWire(f *testing.F) {
	for _, s := range wireSeeds {
		f.Add(s)
	}
	dec := NewDecoder()
	f.Fuzz(func(t *testing.T, s string) {
		checkWireLine(t, dec, []byte(s))
	})
}

// TestParseCreatedAtMatchesTimeParse pins the fixed-layout timestamp
// parser to time.Parse across edge cases: non-UTC offsets, leap days,
// padding, case folding, and out-of-range fields.
func TestParseCreatedAtMatchesTimeParse(t *testing.T) {
	cases := []string{
		"Wed Apr 22 13:45:00 +0000 2015", // canonical UTC
		"Wed Apr 22 13:45:00 -0700 2015", // negative offset
		"Wed Apr 22 13:45:00 +0530 2015", // half-hour offset
		"Wed Apr 22 13:45:00 -0000 2015", // negative zero offset
		"Mon Feb 29 23:59:59 +0000 2016", // leap day, leap year
		"Sun Feb 29 00:00:00 +0000 2015", // leap day, common year → error
		"Mon Feb 29 00:00:00 +0000 2000", // 400-year leap rule
		"Thu Feb 29 00:00:00 +0000 1900", // 100-year rule → error
		"Wed Apr 1 13:45:00 +0000 2015",  // unpadded day → error (fixed 02)
		"Wed Apr 01 13:45:00 +0000 2015", // zero-padded single-digit day
		"wed apr 22 13:45:00 +0000 2015", // case-folded names (accepted)
		"Mon Apr 22 13:45:00 +0000 2015", // wrong weekday (unvalidated)
		"Wed Apr 22 9:45:00 +0000 2015",  // one-digit hour (layout 15 allows)
		"Wed Apr 22 13:45:00 +2460 2015", // lenient offset maximum
		"Wed Apr 22 13:45:00 +2461 2015", // offset out of range → error
		"Wed Apr 22 24:00:00 +0000 2015", // hour out of range → error
		"Wed Apr 22 13:60:00 +0000 2015", // minute out of range → error
		"Wed Apr 22 13:45:61 +0000 2015", // second out of range → error
		"Wed Jun 31 13:45:00 +0000 2015", // day out of range → error
		"Wed Apr 00 13:45:00 +0000 2015", // day zero → error
		"Wed Apr 22 13:45:00 Z0000 2015", // malformed zone → error
		"Wed Apr 22 13:45:00 +0000 15",   // short year → error
		"Wed Apr 22 13:45:00 +0000 0000", // year zero
		"Xyz Apr 22 13:45:00 +0000 2015", // unknown weekday → error
		"Wed Xyz 22 13:45:00 +0000 2015", // unknown month → error
		"",
		"garbage",
	}
	dec := NewDecoder()
	for _, s := range cases {
		got, gotErr := dec.parseCreatedAt([]byte(s))
		want, wantErr := time.Parse(createdAtFormat, s)
		if (gotErr != nil) != (wantErr != nil) {
			t.Errorf("%q: verdict mismatch: codec %v, time.Parse %v", s, gotErr, wantErr)
			continue
		}
		if gotErr != nil {
			continue
		}
		_, gotOff := got.Zone()
		_, wantOff := want.Zone()
		if !got.Equal(want) || gotOff != wantOff ||
			got.Format(createdAtFormat) != want.Format(createdAtFormat) {
			t.Errorf("%q: codec %v (%+d) vs time.Parse %v (%+d)", s, got, gotOff, want, wantOff)
		}
	}
}

// TestDecodeZeroAllocNoGeo pins the acceptance criterion: a warm decoder
// spends zero allocations per geo-less tweet (arena refills amortize to
// well under 0.05/op).
func TestDecodeZeroAllocNoGeo(t *testing.T) {
	tw := sampleTweet()
	line, err := AppendTweet(nil, &tw)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder()
	var out Tweet
	if err := dec.Decode(line, &out); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(2000, func() {
		if err := dec.Decode(line, &out); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0.05 {
		t.Errorf("decode allocs/op = %v, want ~0", avg)
	}
	if out.Text != tw.Text || out.User != tw.User || !out.CreatedAt.Equal(tw.CreatedAt) {
		t.Errorf("warm decode corrupted tweet: %+v", out)
	}
}

// TestAppendTweetZeroAlloc: encoding into a pre-grown buffer allocates
// nothing, including the created_at fast path.
func TestAppendTweetZeroAlloc(t *testing.T) {
	tw := sampleTweet()
	tw.SetCoordinates(37.7, -97.3)
	buf := make([]byte, 0, 1024)
	avg := testing.AllocsPerRun(2000, func() {
		var err error
		buf, err = AppendTweet(buf[:0], &tw)
		if err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Errorf("encode allocs/op = %v, want 0", avg)
	}
}

// TestDecoderInternsRepeatedStrings: the same screen_name/location bytes
// decode to the identical string allocation, not a fresh copy per tweet.
func TestDecoderInternsRepeatedStrings(t *testing.T) {
	tw := sampleTweet()
	line, _ := AppendTweet(nil, &tw)
	dec := NewDecoder()
	var a, b Tweet
	if err := dec.Decode(line, &a); err != nil {
		t.Fatal(err)
	}
	if err := dec.Decode(line, &b); err != nil {
		t.Fatal(err)
	}
	if unsafe.StringData(a.User.ScreenName) != unsafe.StringData(b.User.ScreenName) {
		t.Error("screen_name not interned across decodes")
	}
	if unsafe.StringData(a.User.Location) != unsafe.StringData(b.User.Location) {
		t.Error("location not interned across decodes")
	}
	dec.Reset()
	var c Tweet
	if err := dec.Decode(line, &c); err != nil {
		t.Fatal(err)
	}
	if c.User != a.User {
		t.Errorf("post-Reset decode mismatch: %+v vs %+v", c.User, a.User)
	}
}

// TestReadNDJSONSkipsOversized is the regression test for the old
// 4 MiB scanner cap: an oversized line must be skipped and counted, not
// abort the whole file.
func TestReadNDJSONSkipsOversized(t *testing.T) {
	tw := sampleTweet()
	line, _ := AppendTweet(nil, &tw)
	var sb strings.Builder
	sb.Write(line)
	sb.WriteByte('\n')
	sb.WriteString(strings.Repeat("x", DefaultNDJSONMaxLine+16))
	sb.WriteByte('\n')
	sb.Write(line)
	sb.WriteByte('\n')
	out, err := ReadNDJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("oversized line aborted the read: %v", err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d tweets, want 2", len(out))
	}
}

// TestNDJSONReaderCountsSkips verifies the skip counter and telemetry
// hook with a small custom cap.
func TestNDJSONReaderCountsSkips(t *testing.T) {
	tw := sampleTweet()
	line, _ := AppendTweet(nil, &tw)
	input := string(line) + "\n" + strings.Repeat("j", 2048) + "\n" + string(line) + "\n"
	hookCalls := 0
	nr := &NDJSONReader{MaxLineBytes: 1024, OnSkipped: func() { hookCalls++ }}
	n := 0
	if err := nr.Decode(strings.NewReader(input), func(*Tweet) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 2 || nr.Skipped != 1 || hookCalls != 1 {
		t.Errorf("tweets=%d skipped=%d hook=%d, want 2/1/1", n, nr.Skipped, hookCalls)
	}
}

// TestDecodeNDJSONCallbackError: a callback error aborts the stream and
// comes back unwrapped, so callers can match their own sentinels.
func TestDecodeNDJSONCallbackError(t *testing.T) {
	tw := sampleTweet()
	line, _ := AppendTweet(nil, &tw)
	input := string(line) + "\n" + string(line) + "\n"
	sentinel := errors.New("stop here")
	n := 0
	err := DecodeNDJSON(strings.NewReader(input), func(*Tweet) error {
		n++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("callback error = %v, want sentinel", err)
	}
	if n != 1 {
		t.Errorf("callback ran %d times after error, want 1", n)
	}
}

// TestWireMetrics: decode latency, per-cause errors, and oversized skips
// all land in the registry with the pre-registered schema.
func TestWireMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	wm := NewWireMetrics(reg)
	dec := NewDecoder()
	wm.Observe(dec)

	tw := sampleTweet()
	line, _ := AppendTweet(nil, &tw)
	var out Tweet
	if err := dec.Decode(line, &out); err != nil {
		t.Fatal(err)
	}
	_ = dec.Decode([]byte(`{`), &out)                    // syntax
	_ = dec.Decode([]byte(`{"id":"x"}`), &out)           // type
	_ = dec.Decode([]byte(`{"created_at":"bad"}`), &out) // created_at

	nr := &NDJSONReader{MaxLineBytes: len(line) + 16}
	wm.ObserveReader(nr)
	input := strings.Repeat("x", len(line)+32) + "\n" + string(line) + "\n"
	seen := 0
	if err := nr.Decode(strings.NewReader(input), func(*Tweet) error { seen++; return nil }); err != nil {
		t.Fatal(err)
	}
	if seen != 1 {
		t.Fatalf("reader delivered %d tweets, want 1", seen)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		`donorsense_wire_decode_errors_total{cause="syntax"} 1`,
		`donorsense_wire_decode_errors_total{cause="type"} 1`,
		`donorsense_wire_decode_errors_total{cause="created_at"} 1`,
		`donorsense_wire_oversized_lines_total 1`,
		`donorsense_wire_decode_seconds_count 5`, // 4 direct + 1 via reader
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q\n%s", want, got)
		}
	}
}

// ---------------------------------------------------------------------------
// Benchmarks — BENCH_wire.{txt,json} archives these; the _before baseline
// is the stdlib path (BenchmarkDecodeTweetStdlib measures it live).
// ---------------------------------------------------------------------------

func benchLine(b *testing.B, geo bool) []byte {
	tw := sampleTweet()
	if geo {
		tw.SetCoordinates(37.7, -97.3)
	}
	line, err := AppendTweet(nil, &tw)
	if err != nil {
		b.Fatal(err)
	}
	return line
}

// BenchmarkDecodeTweet is the acceptance benchmark: geo-less decode, the
// ~98.6% path, must report 0 allocs/op.
func BenchmarkDecodeTweet(b *testing.B) {
	line := benchLine(b, false)
	dec := NewDecoder()
	var out Tweet
	b.SetBytes(int64(len(line)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dec.Decode(line, &out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeTweetGeo(b *testing.B) {
	line := benchLine(b, true)
	dec := NewDecoder()
	var out Tweet
	b.SetBytes(int64(len(line)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dec.Decode(line, &out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeTweetStdlib measures the encoding/json oracle path the
// codec replaced (the live counterpart of BENCH_wire_before).
func BenchmarkDecodeTweetStdlib(b *testing.B) {
	line := benchLine(b, false)
	var out Tweet
	b.SetBytes(int64(len(line)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := out.UnmarshalJSON(line); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendTweet(b *testing.B) {
	tw := sampleTweet()
	buf := make([]byte, 0, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendTweet(buf[:0], &tw)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}

// BenchmarkAppendTweetStdlib measures the reflection encode the codec
// replaced.
func BenchmarkAppendTweetStdlib(b *testing.B) {
	tw := sampleTweet()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := oracleMarshal(&tw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeNDJSON streams a 1000-tweet corpus through the reader,
// the shape of the replay and analyze loaders.
func BenchmarkDecodeNDJSON(b *testing.B) {
	tw := sampleTweet()
	var buf bytes.Buffer
	tweets := make([]Tweet, 1000)
	for i := range tweets {
		tweets[i] = tw
		tweets[i].ID = int64(i)
	}
	if err := WriteNDJSON(&buf, tweets); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	nr := &NDJSONReader{}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := nr.Decode(bytes.NewReader(data), func(*Tweet) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != len(tweets) {
			b.Fatalf("decoded %d, want %d", n, len(tweets))
		}
	}
}
