package twitter

import (
	"sync"
)

// Broadcaster fans a firehose of tweets out to any number of subscribers.
// Each subscriber gets a buffered channel; a subscriber that falls more
// than its buffer behind is disconnected, mirroring the real Stream API's
// stall handling (Twitter closes connections that cannot keep up rather
// than buffering without bound).
type Broadcaster struct {
	mu     sync.Mutex
	subs   map[int]*subscriber
	nextID int
	closed bool
}

type subscriber struct {
	ch     chan Tweet
	filter *TrackFilter // nil means unfiltered (firehose)
}

// NewBroadcaster returns an empty broadcaster.
func NewBroadcaster() *Broadcaster {
	return &Broadcaster{subs: make(map[int]*subscriber)}
}

// Subscribe registers a new subscriber with the given buffer size and
// optional filter (nil receives everything). It returns the delivery
// channel and a cancel function that detaches and closes it. After the
// broadcaster itself is closed, the returned channel is already closed.
func (b *Broadcaster) Subscribe(buffer int, filter *TrackFilter) (<-chan Tweet, func()) {
	if buffer <= 0 {
		buffer = 1024
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	ch := make(chan Tweet, buffer)
	if b.closed {
		close(ch)
		return ch, func() {}
	}
	id := b.nextID
	b.nextID++
	b.subs[id] = &subscriber{ch: ch, filter: filter}
	cancel := func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if s, ok := b.subs[id]; ok {
			delete(b.subs, id)
			close(s.ch)
		}
	}
	return ch, cancel
}

// Publish delivers the tweet to every subscriber whose filter matches.
// Subscribers whose buffers are full are dropped (disconnected), so a
// stalled consumer cannot block the stream. It returns the number of
// subscribers that received the tweet.
func (b *Broadcaster) Publish(t Tweet) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0
	}
	delivered := 0
	for id, s := range b.subs {
		if s.filter != nil && !s.filter.Matches(t.Text) {
			continue
		}
		select {
		case s.ch <- t:
			delivered++
		default:
			// Stalled consumer: disconnect it.
			delete(b.subs, id)
			close(s.ch)
		}
	}
	return delivered
}

// Closed reports whether Close has been called.
func (b *Broadcaster) Closed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.closed
}

// NumSubscribers returns the current subscriber count.
func (b *Broadcaster) NumSubscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Close disconnects all subscribers and marks the broadcaster closed;
// subsequent Publish calls deliver nothing and Subscribe returns closed
// channels.
func (b *Broadcaster) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for id, s := range b.subs {
		delete(b.subs, id)
		close(s.ch)
	}
}
