package twitter

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"donorsense/internal/obs/trace"
)

// StreamClient consumes a streaming filter endpoint, decoding
// newline-delimited JSON tweets and reconnecting on failure — the
// behaviour a long-lived collector (the paper's ran 385 days) needs.
//
// It implements the Stream API's documented failure contract:
//
//   - network errors and 5xx responses reconnect with exponential backoff
//     plus full jitter, starting at InitialBackoff and capped at
//     MaxBackoff;
//   - rate-limit responses (420/429) use a separate, much slower schedule
//     starting at RateLimitBackoff (default 60s) and doubling, and any
//     Retry-After header is honored as a lower bound on the wait;
//   - a connection silent for longer than StallTimeout (no tweets, no
//     keep-alive newlines) is torn down and re-established;
//   - a healthy connection (alive ≥ HealthyAfter or delivering ≥
//     HealthyTweets tweets) resets both backoff schedules, so a
//     collector that has run for days does not reconnect at MaxBackoff
//     after a single blip;
//   - lines longer than MaxLineBytes are skipped, not fatal.
type StreamClient struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:7700".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// InitialBackoff is the first reconnect delay (default 250ms). Each
	// consecutive failure doubles it up to MaxBackoff (default 16s),
	// mirroring Twitter's documented reconnect schedule.
	InitialBackoff time.Duration
	MaxBackoff     time.Duration
	// RateLimitBackoff is the first delay after a 420/429 response
	// (default 60s, per the API's rate-limit guidance). Each consecutive
	// rate-limit doubles it up to MaxRateLimitBackoff (default 15m).
	RateLimitBackoff    time.Duration
	MaxRateLimitBackoff time.Duration
	// StallTimeout tears down a connection that has been silent — no
	// tweets and no keep-alive newlines — for this long (default 90s,
	// the API's documented stall window). Negative disables.
	StallTimeout time.Duration
	// MaxLineBytes bounds a single stream line (default 1 MiB). Longer
	// lines are discarded and counted, not treated as connection errors.
	MaxLineBytes int
	// HealthyAfter and HealthyTweets define a "healthy" connection: one
	// that stayed up at least HealthyAfter (default 30s) or delivered at
	// least HealthyTweets tweets (default 100). A healthy connection
	// resets both backoff schedules.
	HealthyAfter  time.Duration
	HealthyTweets int
	// MaxConnects, when positive, bounds the number of (re)connection
	// attempts; useful in tests. Zero means reconnect forever.
	MaxConnects int
	// OnDelete, when set, receives status-deletion notices (the
	// {"delete": ...} control messages the Stream API interleaves with
	// tweets). A compliant collector must honor them by removing the
	// tweet from its stores.
	OnDelete func(DeleteNotice)
	// OnStateChange, when set, is invoked (from the Filter goroutine)
	// with every connection lifecycle event — connects, disconnects,
	// backoff waits, rate limits, stalls, skipped lines.
	OnStateChange func(StreamEvent)
	// Codec is the wire decoder used to parse tweet lines (see
	// Decoder). Nil allocates a private one when Filter starts. Set it
	// to attach decode telemetry hooks; it must not be shared with any
	// other concurrent user while Filter runs.
	Codec *Decoder
	// Tracer, when set, samples stream lines for end-to-end tracing: a
	// sampled line gets a "stream.read" root span, a "wire.decode" child
	// around the codec, and the resulting context stamped onto the tweet
	// (Tweet.TraceCtx) so downstream pipeline stages extend the same
	// trace. Nil disables sampling at zero cost.
	Tracer *trace.Tracer

	stats streamCounters
	// jitter overrides the full-jitter draw in tests; nil means
	// rand.Float64.
	jitter func() float64
}

// StreamEventKind classifies a connection lifecycle event.
type StreamEventKind int

// Stream lifecycle events.
const (
	// EventConnected: a connection was established (HTTP 200).
	EventConnected StreamEventKind = iota
	// EventDisconnected: an established connection ended (any cause).
	EventDisconnected
	// EventBackoff: the client is waiting Event.Wait before reconnecting.
	EventBackoff
	// EventRateLimited: the server answered 420/429.
	EventRateLimited
	// EventStalled: the stall timer tore down a silent connection.
	EventStalled
	// EventLineSkipped: an oversized line was discarded.
	EventLineSkipped
)

// String returns the event kind name.
func (k StreamEventKind) String() string {
	switch k {
	case EventConnected:
		return "connected"
	case EventDisconnected:
		return "disconnected"
	case EventBackoff:
		return "backoff"
	case EventRateLimited:
		return "rate-limited"
	case EventStalled:
		return "stalled"
	case EventLineSkipped:
		return "line-skipped"
	}
	return "event(?)"
}

// StreamEvent is one connection lifecycle notification.
type StreamEvent struct {
	Kind StreamEventKind
	// Attempt is the 1-based connection attempt number.
	Attempt int
	// Wait is the upcoming delay (EventBackoff only).
	Wait time.Duration
	// Err is the triggering error, when there is one.
	Err error
}

// StreamStats is a snapshot of the client's lifetime counters. It is safe
// to call Snapshot from any goroutine while Filter runs — the API the
// tests, the collector's exit summary, and the telemetry layer all share.
type StreamStats struct {
	Connects       int64 // established connections (HTTP 200)
	Disconnects    int64 // established connections that ended
	Retries        int64 // backoff waits before reconnecting
	RateLimits     int64 // 420/429 responses
	Stalls         int64 // connections torn down by the stall timer
	SkippedLines   int64 // oversized lines discarded
	MalformedLines int64 // lines that failed to parse as tweet or delete
	DeleteNotices  int64 // delete control messages surfaced
	Tweets         int64 // tweets delivered to the output channel
}

// streamCounters is the atomic backing store for StreamStats.
type streamCounters struct {
	connects, disconnects, retries, rateLimits, stalls  atomic.Int64
	skippedLines, malformedLines, deleteNotices, tweets atomic.Int64
}

// Snapshot returns a point-in-time copy of the client's lifetime
// counters.
func (c *StreamClient) Snapshot() StreamStats {
	return StreamStats{
		Connects:       c.stats.connects.Load(),
		Disconnects:    c.stats.disconnects.Load(),
		Retries:        c.stats.retries.Load(),
		RateLimits:     c.stats.rateLimits.Load(),
		Stalls:         c.stats.stalls.Load(),
		SkippedLines:   c.stats.skippedLines.Load(),
		MalformedLines: c.stats.malformedLines.Load(),
		DeleteNotices:  c.stats.deleteNotices.Load(),
		Tweets:         c.stats.tweets.Load(),
	}
}

func (c *StreamClient) emit(ev StreamEvent) {
	if c.OnStateChange != nil {
		c.OnStateChange(ev)
	}
}

// DeleteNotice is the Stream API's status-deletion control message.
type DeleteNotice struct {
	StatusID int64
	UserID   int64
}

// wireDelete mirrors the {"delete":{"status":{...}}} wire shape.
type wireDelete struct {
	Delete struct {
		Status struct {
			ID     int64 `json:"id"`
			UserID int64 `json:"user_id"`
		} `json:"status"`
	} `json:"delete"`
}

// ErrTooManyReconnects is returned when MaxConnects is exhausted.
var ErrTooManyReconnects = errors.New("twitter: reconnect limit reached")

func (c *StreamClient) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *StreamClient) backoffBounds() (time.Duration, time.Duration) {
	ib, mb := c.InitialBackoff, c.MaxBackoff
	if ib <= 0 {
		ib = 250 * time.Millisecond
	}
	if mb <= 0 {
		mb = 16 * time.Second
	}
	return ib, mb
}

func (c *StreamClient) rateLimitBounds() (time.Duration, time.Duration) {
	ib, mb := c.RateLimitBackoff, c.MaxRateLimitBackoff
	if ib <= 0 {
		ib = 60 * time.Second
	}
	if mb <= 0 {
		mb = 15 * time.Minute
	}
	return ib, mb
}

func (c *StreamClient) stallTimeout() time.Duration {
	switch {
	case c.StallTimeout < 0:
		return 0 // disabled
	case c.StallTimeout == 0:
		return 90 * time.Second
	}
	return c.StallTimeout
}

func (c *StreamClient) maxLineBytes() int {
	if c.MaxLineBytes <= 0 {
		return 1 << 20
	}
	return c.MaxLineBytes
}

func (c *StreamClient) healthyBounds() (time.Duration, int) {
	ha, ht := c.HealthyAfter, c.HealthyTweets
	if ha <= 0 {
		ha = 30 * time.Second
	}
	if ht <= 0 {
		ht = 100
	}
	return ha, ht
}

// fullJitter draws a delay uniformly from [0, d] — the "full jitter"
// strategy that decorrelates reconnect storms across a fleet of clients.
func (c *StreamClient) fullJitter(d time.Duration) time.Duration {
	f := rand.Float64
	if c.jitter != nil {
		f = c.jitter
	}
	return time.Duration(f() * float64(d))
}

// Filter connects to the filter endpoint with the given track parameter
// and sends decoded tweets to out until ctx is cancelled, the server
// closes the stream and reconnects are exhausted, or a permanent error
// (4xx other than 420/429) occurs. It closes out on return.
func (c *StreamClient) Filter(ctx context.Context, track string, out chan<- Tweet) error {
	defer close(out)
	if err := ValidateTrack(track); err != nil {
		return err
	}
	if c.Codec == nil {
		c.Codec = NewDecoder()
	}
	endpoint := strings.TrimSuffix(c.BaseURL, "/") + FilterPath + "?track=" + url.QueryEscape(track)

	backoff, maxBackoff := c.backoffBounds()
	rlBackoff, maxRLBackoff := c.rateLimitBounds()
	healthyAfter, healthyTweets := c.healthyBounds()
	delay := backoff
	rlDelay := rlBackoff
	connects := 0
	for {
		if c.MaxConnects > 0 && connects >= c.MaxConnects {
			return ErrTooManyReconnects
		}
		connects++

		start := time.Now()
		delivered, err := c.streamOnce(ctx, endpoint, out)
		switch {
		case errors.Is(err, errStreamGone):
			// The server said the stream has ended for good.
			return nil
		case ctx.Err() != nil:
			return ctx.Err()
		case isPermanent(err):
			return err
		}
		// A clean EOF (err == nil) is a disconnect like any other — the
		// real Stream API drops stalled or long-lived connections and
		// expects clients to come back — so fall through to reconnect.

		// A healthy connection proves the path works: reset both backoff
		// schedules so the next blip restarts the ladder from the bottom.
		if time.Since(start) >= healthyAfter || delivered >= int64(healthyTweets) {
			delay = backoff
			rlDelay = rlBackoff
		}

		// Pick the schedule: rate limits (420/429) escalate on their own,
		// much slower ladder; everything else uses the standard one.
		var wait, floor time.Duration
		var rl rateLimitError
		if errors.As(err, &rl) {
			c.stats.rateLimits.Add(1)
			c.emit(StreamEvent{Kind: EventRateLimited, Attempt: connects, Err: err})
			wait = c.fullJitter(rlDelay)
			floor = rl.retryAfter
			rlDelay = minDuration(rlDelay*2, maxRLBackoff)
		} else {
			wait = c.fullJitter(delay)
			var se serverError
			if errors.As(err, &se) {
				floor = se.retryAfter
			}
			delay = minDuration(delay*2, maxBackoff)
		}
		// Retry-After is a contract, not a hint: never reconnect sooner.
		if wait < floor {
			wait = floor
		}

		c.stats.retries.Add(1)
		c.emit(StreamEvent{Kind: EventBackoff, Attempt: connects, Wait: wait, Err: err})
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(wait):
		}
	}
}

func minDuration(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

// errStreamGone signals the server reported 410: the stream has ended and
// reconnecting is pointless. The client treats this as clean termination.
var errStreamGone = errors.New("twitter: stream gone")

// errStalled marks a connection torn down by the stall timer.
var errStalled = errors.New("twitter: connection stalled")

// permanentError marks non-retryable failures (client errors).
type permanentError struct{ error }

func isPermanent(err error) bool {
	var pe permanentError
	return errors.As(err, &pe)
}

// rateLimitError marks a 420/429 response; retryAfter is the server's
// Retry-After header when present (zero otherwise).
type rateLimitError struct {
	status     int
	retryAfter time.Duration
}

func (e rateLimitError) Error() string {
	return fmt.Sprintf("twitter: rate limited (status %d, retry after %s)", e.status, e.retryAfter)
}

// serverError marks a 5xx response; retryAfter is the server's
// Retry-After header when present (zero otherwise).
type serverError struct {
	status     int
	retryAfter time.Duration
}

func (e serverError) Error() string {
	return fmt.Sprintf("twitter: stream status %d (retry after %s)", e.status, e.retryAfter)
}

// parseRetryAfter reads a Retry-After header as delay-seconds or an
// HTTP-date; zero when absent or unparseable.
func parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// streamOnce performs one connection and returns how many tweets it
// delivered. A nil error means the server ended the stream cleanly; any
// error is either transient (retry) or permanent.
func (c *StreamClient) streamOnce(ctx context.Context, endpoint string, out chan<- Tweet) (delivered int64, err error) {
	// Per-connection context so the stall watchdog can tear down just
	// this connection without cancelling the whole collector.
	connCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	req, err := http.NewRequestWithContext(connCtx, http.MethodGet, endpoint, nil)
	if err != nil {
		return 0, permanentError{fmt.Errorf("twitter: build request: %w", err)}
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return 0, fmt.Errorf("twitter: connect: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		retryAfter := parseRetryAfter(resp.Header)
		switch {
		case resp.StatusCode == http.StatusGone:
			return 0, errStreamGone
		case resp.StatusCode == 420 || resp.StatusCode == http.StatusTooManyRequests:
			return 0, rateLimitError{status: resp.StatusCode, retryAfter: retryAfter}
		case resp.StatusCode >= 500:
			return 0, serverError{status: resp.StatusCode, retryAfter: retryAfter}
		case resp.StatusCode >= 400:
			return 0, permanentError{fmt.Errorf("twitter: stream status %d", resp.StatusCode)}
		}
		return 0, fmt.Errorf("twitter: stream status %d", resp.StatusCode)
	}

	c.stats.connects.Add(1)
	c.emit(StreamEvent{Kind: EventConnected})
	defer func() {
		c.stats.disconnects.Add(1)
		c.emit(StreamEvent{Kind: EventDisconnected, Err: err})
	}()

	// Stall watchdog: any byte of traffic (tweets, control messages,
	// keep-alive newlines) resets the timer; silence past the timeout
	// cancels the connection context, failing the blocked read below.
	var stalled atomic.Bool
	var watchdog *time.Timer
	if st := c.stallTimeout(); st > 0 {
		watchdog = time.AfterFunc(st, func() {
			stalled.Store(true)
			cancel()
		})
		defer watchdog.Stop()
	}

	br := bufio.NewReaderSize(resp.Body, 64*1024)
	maxLine := c.maxLineBytes()
	for {
		line, skipped, rerr := readLine(br, maxLine)
		if watchdog != nil {
			watchdog.Reset(c.stallTimeout())
		}
		if skipped {
			c.stats.skippedLines.Add(1)
			c.emit(StreamEvent{Kind: EventLineSkipped})
		}
		if len(line) > 0 && !skipped {
			if d, ok := c.consumeLine(connCtx, line, out); ok {
				delivered += d
			} else {
				return delivered, ctx.Err()
			}
		}
		if rerr != nil {
			if rerr == io.EOF {
				return delivered, nil
			}
			if stalled.Load() && ctx.Err() == nil {
				c.stats.stalls.Add(1)
				c.emit(StreamEvent{Kind: EventStalled})
				return delivered, errStalled
			}
			return delivered, fmt.Errorf("twitter: read stream: %w", rerr)
		}
	}
}

// consumeLine routes one non-empty stream line: delete notices to
// OnDelete, tweets to out, everything unparseable to the malformed
// counter. It reports delivered tweets and whether to keep reading
// (false only when the send was cancelled).
func (c *StreamClient) consumeLine(ctx context.Context, line []byte, out chan<- Tweet) (int64, bool) {
	if bytes.Contains(line, []byte(`"delete"`)) {
		var dn wireDelete
		if err := json.Unmarshal(line, &dn); err == nil && dn.Delete.Status.ID != 0 {
			c.stats.deleteNotices.Add(1)
			if c.OnDelete != nil {
				c.OnDelete(DeleteNotice{StatusID: dn.Delete.Status.ID, UserID: dn.Delete.Status.UserID})
			}
			return 0, true
		}
	}
	// Sampling decision for the whole trace happens here, once per tweet
	// line: one PRNG draw. Unsampled lines hold a nil root span and every
	// tracing statement below degrades to a nil check.
	root := c.Tracer.StartRoot("stream.read")
	root.SetInt("line_bytes", int64(len(line)))

	dec := c.Tracer.StartChild("wire.decode", root.Context())
	var t Tweet
	err := c.Codec.Decode(line, &t)
	dec.End()
	if err != nil {
		// A malformed line is a data problem, not a connection problem;
		// skip it the way a robust collector must.
		c.stats.malformedLines.Add(1)
		root.SetAttr("outcome", "malformed")
		root.End()
		return 0, true
	}
	if root != nil {
		t.TraceCtx = root.Context()
		root.SetInt("tweet_id", t.ID)
	}
	select {
	case out <- t:
		c.stats.tweets.Add(1)
		root.End()
		return 1, true
	case <-ctx.Done():
		root.SetAttr("outcome", "cancelled")
		root.End()
		return 0, false
	}
}

// readLine reads one newline-terminated line from br, enforcing the size
// cap: a line longer than max is discarded to its terminating newline and
// reported as skipped rather than failing the connection (the fragility
// bufio.Scanner's ErrTooLong has). The returned slice is valid until the
// next read. A final unterminated fragment at EOF is returned as a line.
func readLine(br *bufio.Reader, max int) (line []byte, skipped bool, err error) {
	frag, err := br.ReadSlice('\n')
	if err == nil || err == io.EOF {
		if len(frag) > max+1 { // +1 for the newline itself
			return nil, true, err
		}
		return trimEOL(frag), false, err
	}
	if err != bufio.ErrBufferFull {
		return trimEOL(frag), false, err
	}
	// Line exceeds the reader's buffer: accumulate up to max, then switch
	// to discarding until the newline.
	var buf []byte
	if len(frag) > max {
		skipped = true
	} else {
		buf = append(buf, frag...)
	}
	for {
		frag, err = br.ReadSlice('\n')
		if !skipped {
			if len(buf)+len(frag) > max {
				skipped = true
				buf = nil
			} else {
				buf = append(buf, frag...)
			}
		}
		switch err {
		case nil, io.EOF:
			return trimEOL(buf), skipped, err
		case bufio.ErrBufferFull:
			continue
		default:
			return trimEOL(buf), skipped, err
		}
	}
}

// trimEOL strips a trailing newline (and carriage return) in place.
func trimEOL(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		b = b[:n-1]
	}
	if n := len(b); n > 0 && b[n-1] == '\r' {
		b = b[:n-1]
	}
	return b
}
