package twitter

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// StreamClient consumes a streaming filter endpoint, decoding
// newline-delimited JSON tweets and reconnecting with exponential backoff
// on transient failures — the behaviour a long-lived collector (the
// paper's ran 385 days) needs.
type StreamClient struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:7700".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// InitialBackoff is the first reconnect delay (default 250ms). Each
	// consecutive failure doubles it up to MaxBackoff (default 16s),
	// mirroring Twitter's documented reconnect schedule.
	InitialBackoff time.Duration
	MaxBackoff     time.Duration
	// MaxConnects, when positive, bounds the number of (re)connection
	// attempts; useful in tests. Zero means reconnect forever.
	MaxConnects int
	// OnDelete, when set, receives status-deletion notices (the
	// {"delete": ...} control messages the Stream API interleaves with
	// tweets). A compliant collector must honor them by removing the
	// tweet from its stores.
	OnDelete func(DeleteNotice)
}

// DeleteNotice is the Stream API's status-deletion control message.
type DeleteNotice struct {
	StatusID int64
	UserID   int64
}

// wireDelete mirrors the {"delete":{"status":{...}}} wire shape.
type wireDelete struct {
	Delete struct {
		Status struct {
			ID     int64 `json:"id"`
			UserID int64 `json:"user_id"`
		} `json:"status"`
	} `json:"delete"`
}

// ErrTooManyReconnects is returned when MaxConnects is exhausted.
var ErrTooManyReconnects = errors.New("twitter: reconnect limit reached")

func (c *StreamClient) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *StreamClient) backoffBounds() (time.Duration, time.Duration) {
	ib, mb := c.InitialBackoff, c.MaxBackoff
	if ib <= 0 {
		ib = 250 * time.Millisecond
	}
	if mb <= 0 {
		mb = 16 * time.Second
	}
	return ib, mb
}

// Filter connects to the filter endpoint with the given track parameter
// and sends decoded tweets to out until ctx is cancelled, the server
// closes the stream and reconnects are exhausted, or a permanent error
// (4xx) occurs. It closes out on return.
func (c *StreamClient) Filter(ctx context.Context, track string, out chan<- Tweet) error {
	defer close(out)
	if err := ValidateTrack(track); err != nil {
		return err
	}
	endpoint := strings.TrimSuffix(c.BaseURL, "/") + FilterPath + "?track=" + url.QueryEscape(track)

	backoff, maxBackoff := c.backoffBounds()
	delay := backoff
	connects := 0
	for {
		if c.MaxConnects > 0 && connects >= c.MaxConnects {
			return ErrTooManyReconnects
		}
		connects++

		err := c.streamOnce(ctx, endpoint, out)
		switch {
		case errors.Is(err, errStreamGone):
			// The server said the stream has ended for good.
			return nil
		case ctx.Err() != nil:
			return ctx.Err()
		case isPermanent(err):
			return err
		}
		// A clean EOF (err == nil) is a disconnect like any other — the
		// real Stream API drops stalled or long-lived connections and
		// expects clients to come back — so fall through to reconnect.

		// Transient: back off and reconnect.
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(delay):
		}
		delay *= 2
		if delay > maxBackoff {
			delay = maxBackoff
		}
	}
}

// errStreamGone signals the server reported 410: the stream has ended and
// reconnecting is pointless. The client treats this as clean termination.
var errStreamGone = errors.New("twitter: stream gone")

// permanentError marks non-retryable failures (client errors).
type permanentError struct{ error }

func isPermanent(err error) bool {
	var pe permanentError
	return errors.As(err, &pe)
}

// streamOnce performs one connection. A nil return means the server ended
// the stream cleanly; any error is either transient (retry) or permanent.
func (c *StreamClient) streamOnce(ctx context.Context, endpoint string, out chan<- Tweet) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, endpoint, nil)
	if err != nil {
		return permanentError{fmt.Errorf("twitter: build request: %w", err)}
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("twitter: connect: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode == http.StatusGone {
			return errStreamGone
		}
		err := fmt.Errorf("twitter: stream status %d", resp.StatusCode)
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return permanentError{err}
		}
		return err
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue // keep-alive newline
		}
		if bytes.Contains(line, []byte(`"delete"`)) {
			var dn wireDelete
			if err := json.Unmarshal(line, &dn); err == nil && dn.Delete.Status.ID != 0 {
				if c.OnDelete != nil {
					c.OnDelete(DeleteNotice{StatusID: dn.Delete.Status.ID, UserID: dn.Delete.Status.UserID})
				}
				continue
			}
		}
		var t Tweet
		if err := t.UnmarshalJSON(line); err != nil {
			// A malformed line is a data problem, not a connection
			// problem; skip it the way a robust collector must.
			continue
		}
		select {
		case out <- t:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("twitter: read stream: %w", err)
	}
	return nil
}
