// The decode half of the wire codec: a byte-level JSON tokenizer that
// reads one v1.1 tweet line into a caller-provided *Tweet.
//
// The tokenizer is written to agree with encoding/json on every input —
// not just well-formed tweets. That means mirroring the stdlib's less
// obvious behaviors: case-folded key matching (bytes.EqualFold,
// including Unicode simple folds), duplicate keys decoding last-wins
// with struct merge, null as a field no-op except for the pointer-typed
// coordinates (which it clears), JSON arrays zeroing the tail of a
// fixed-size Go array, invalid UTF-8 in strings coerced byte-wise to
// U+FFFD, unpaired \u surrogates becoming U+FFFD, the strict number
// grammar followed by strconv for range errors, and the 10000-level
// nesting cap. The fuzz tests in wire_test.go hold the codec to
// verdict-and-value equivalence with the Tweet.UnmarshalJSON oracle.
package twitter

import (
	"bytes"
	"fmt"
	"strconv"
	"time"
	"unicode"
	"unicode/utf16"
	"unicode/utf8"
)

// maxWireDepth mirrors encoding/json's maxNestingDepth.
const maxWireDepth = 10000

// Decode error causes, as reported to OnError and the wire metrics.
const (
	causeSyntax    = "syntax"
	causeType      = "type"
	causeCreatedAt = "created_at"
)

// wireError is a decode failure with a coarse cause label for metrics.
type wireError struct {
	cause string
	msg   string
}

func (e *wireError) Error() string { return e.msg }

// wireCause extracts the metrics label from a Decode error.
func wireCause(err error) string {
	if we, ok := err.(*wireError); ok {
		return we.cause
	}
	return causeSyntax
}

// JSON field names of the v1.1 tweet payload. Matching is case-folded to
// agree with encoding/json, so these are compared with bytes.EqualFold.
var (
	wkID          = []byte("id")
	wkText        = []byte("text")
	wkCreatedAt   = []byte("created_at")
	wkUser        = []byte("user")
	wkCoordinates = []byte("coordinates")
	wkScreenName  = []byte("screen_name")
	wkLocation    = []byte("location")
	wkType        = []byte("type")
)

// Decode parses one NDJSON line into *t. On success the Tweet is fully
// self-contained (its strings own their memory); on error *t is left in
// an unspecified partial state, matching the oracle's contract. The
// geo-less path performs zero allocations per call once the decoder's
// scratch is warm.
func (d *Decoder) Decode(line []byte, t *Tweet) error {
	var start time.Time
	if d.OnDecode != nil {
		start = time.Now()
	}
	err := d.decode(line, t)
	if d.OnDecode != nil {
		d.OnDecode(time.Since(start))
	}
	if err != nil && d.OnError != nil {
		d.OnError(wireCause(err))
	}
	return err
}

func (d *Decoder) decode(line []byte, t *Tweet) error {
	*t = Tweet{}
	d.data, d.pos, d.depth = line, 0, 0
	d.caBuf = d.caBuf[:0]
	d.wc = [2]float64{}
	d.coordsSet = false

	d.skipWS()
	c, ok := d.peek()
	if !ok {
		return d.eofErr()
	}
	switch c {
	case '{':
		if err := d.decodeTweetObject(t); err != nil {
			return err
		}
	case 'n':
		// json.Unmarshal(null, &struct) is a successful no-op; the zero
		// created_at then fails below exactly as the oracle's does.
		if err := d.literal("null"); err != nil {
			return err
		}
	default:
		if err := d.skipValue(); err != nil {
			return err
		}
		return d.typeErrf("cannot unmarshal non-object value into Tweet")
	}
	d.skipWS()
	if c, ok := d.peek(); ok {
		return d.syntaxf("invalid character %s after top-level value", quoteChar(c))
	}
	d.data = nil // drop the input reference; the Tweet owns its memory

	// created_at resolves after the whole object so duplicate keys keep
	// last-wins semantics before the (comparatively costly) parse runs.
	ts, err := d.parseCreatedAt(d.caBuf)
	if err != nil {
		return &wireError{
			cause: causeCreatedAt,
			msg:   fmt.Sprintf("twitter: decode created_at %q: %v", d.caBuf, err),
		}
	}
	t.CreatedAt = ts
	if d.coordsSet {
		t.Coordinates = Coordinates{Lon: d.wc[0], Lat: d.wc[1]}
		t.HasCoordinates = true
	}
	return nil
}

// decodeTweetObject walks the top-level object; d.pos is at '{'.
func (d *Decoder) decodeTweetObject(t *Tweet) error {
	if err := d.enter(); err != nil {
		return err
	}
	d.pos++
	d.skipWS()
	if c, ok := d.peek(); ok && c == '}' {
		d.pos++
		d.depth--
		return nil
	}
	for {
		key, err := d.readKey()
		if err != nil {
			return err
		}
		switch {
		case bytes.EqualFold(key, wkID):
			err = d.decodeInt64(&t.ID, "id")
		case bytes.EqualFold(key, wkText):
			var s []byte
			var set bool
			s, set, err = d.decodeString("text")
			if err == nil && set {
				t.Text = d.arenaString(s)
			}
		case bytes.EqualFold(key, wkCreatedAt):
			var s []byte
			var set bool
			s, set, err = d.decodeString("created_at")
			if err == nil && set {
				// s aliases scratch or input; copy so later strings can't
				// clobber it before the deferred parse.
				d.caBuf = append(d.caBuf[:0], s...)
			}
		case bytes.EqualFold(key, wkUser):
			err = d.decodeUser(&t.User)
		case bytes.EqualFold(key, wkCoordinates):
			err = d.decodeCoordsField()
		default:
			err = d.skipValue()
		}
		if err != nil {
			return err
		}
		more, err := d.objectMore()
		if err != nil {
			return err
		}
		if !more {
			return nil
		}
	}
}

// decodeUser decodes the "user" field value into *u. null is a no-op and
// duplicate user objects merge, per stdlib struct semantics.
func (d *Decoder) decodeUser(u *User) error {
	c, ok := d.peek()
	if !ok {
		return d.eofErr()
	}
	switch c {
	case 'n':
		return d.literal("null")
	case '{':
		if err := d.enter(); err != nil {
			return err
		}
		d.pos++
		d.skipWS()
		if c, ok := d.peek(); ok && c == '}' {
			d.pos++
			d.depth--
			return nil
		}
		for {
			key, err := d.readKey()
			if err != nil {
				return err
			}
			switch {
			case bytes.EqualFold(key, wkID):
				err = d.decodeInt64(&u.ID, "user.id")
			case bytes.EqualFold(key, wkScreenName):
				var s []byte
				var set bool
				s, set, err = d.decodeString("user.screen_name")
				if err == nil && set {
					u.ScreenName = d.names.intern(s)
				}
			case bytes.EqualFold(key, wkLocation):
				var s []byte
				var set bool
				s, set, err = d.decodeString("user.location")
				if err == nil && set {
					u.Location = d.locs.intern(s)
				}
			default:
				err = d.skipValue()
			}
			if err != nil {
				return err
			}
			more, err := d.objectMore()
			if err != nil {
				return err
			}
			if !more {
				return nil
			}
		}
	default:
		if err := d.skipValue(); err != nil {
			return err
		}
		return d.typeErrf("cannot unmarshal non-object value into field user")
	}
}

// decodeCoordsField decodes the "coordinates" field. The oracle's target
// is a *wireCoords: null clears the pointer (dropping any earlier
// value), an object allocates-or-merges. coordsSet + wc replicate that.
func (d *Decoder) decodeCoordsField() error {
	c, ok := d.peek()
	if !ok {
		return d.eofErr()
	}
	switch c {
	case 'n':
		if err := d.literal("null"); err != nil {
			return err
		}
		d.coordsSet = false
		d.wc = [2]float64{}
		return nil
	case '{':
		d.coordsSet = true
		if err := d.enter(); err != nil {
			return err
		}
		d.pos++
		d.skipWS()
		if c, ok := d.peek(); ok && c == '}' {
			d.pos++
			d.depth--
			return nil
		}
		for {
			key, err := d.readKey()
			if err != nil {
				return err
			}
			switch {
			case bytes.EqualFold(key, wkType):
				// Decoded for type checking, value discarded (the Tweet
				// model doesn't keep the GeoJSON type tag).
				_, _, err = d.decodeString("coordinates.type")
			case bytes.EqualFold(key, wkCoordinates):
				err = d.decodeFloatPair()
			default:
				err = d.skipValue()
			}
			if err != nil {
				return err
			}
			more, err := d.objectMore()
			if err != nil {
				return err
			}
			if !more {
				return nil
			}
		}
	default:
		if err := d.skipValue(); err != nil {
			return err
		}
		return d.typeErrf("cannot unmarshal non-object value into field coordinates")
	}
}

// decodeFloatPair decodes a JSON array into d.wc with stdlib [2]float64
// semantics: elements past the second are syntax-checked and dropped, a
// shorter array zeroes the tail, null elements leave the slot untouched.
func (d *Decoder) decodeFloatPair() error {
	c, ok := d.peek()
	if !ok {
		return d.eofErr()
	}
	switch c {
	case 'n':
		return d.literal("null")
	case '[':
		if err := d.enter(); err != nil {
			return err
		}
		d.pos++
		d.skipWS()
		n := 0
		if c, ok := d.peek(); ok && c == ']' {
			d.pos++
			d.depth--
		} else {
			for {
				var err error
				if n < len(d.wc) {
					err = d.decodeFloat(&d.wc[n], "coordinates.coordinates")
				} else {
					err = d.skipValue()
				}
				if err != nil {
					return err
				}
				n++
				d.skipWS()
				c, ok := d.peek()
				if !ok {
					return d.eofErr()
				}
				if c == ',' {
					d.pos++
					d.skipWS()
					continue
				}
				if c == ']' {
					d.pos++
					d.depth--
					break
				}
				return d.syntaxf("invalid character %s after array element", quoteChar(c))
			}
		}
		for ; n < len(d.wc); n++ {
			d.wc[n] = 0
		}
		return nil
	default:
		if err := d.skipValue(); err != nil {
			return err
		}
		return d.typeErrf("cannot unmarshal non-array value into field coordinates.coordinates")
	}
}

// decodeInt64 decodes a number into *dst, null as a no-op. The token is
// handed to strconv.ParseInt exactly as the stdlib does, so fractional,
// exponential, and out-of-range numbers fail identically.
func (d *Decoder) decodeInt64(dst *int64, field string) error {
	c, ok := d.peek()
	if !ok {
		return d.eofErr()
	}
	switch {
	case c == 'n':
		return d.literal("null")
	case c == '-' || ('0' <= c && c <= '9'):
		tok, err := d.readNumber()
		if err != nil {
			return err
		}
		n, perr := strconv.ParseInt(unsafeStr(tok), 10, 64)
		if perr != nil {
			return d.typeErrf("cannot unmarshal number %s into field %s of type int64", tok, field)
		}
		*dst = n
		return nil
	default:
		if err := d.skipValue(); err != nil {
			return err
		}
		return d.typeErrf("cannot unmarshal value into field %s of type int64", field)
	}
}

// decodeFloat decodes a number into *dst, null as a no-op.
func (d *Decoder) decodeFloat(dst *float64, field string) error {
	c, ok := d.peek()
	if !ok {
		return d.eofErr()
	}
	switch {
	case c == 'n':
		return d.literal("null")
	case c == '-' || ('0' <= c && c <= '9'):
		tok, err := d.readNumber()
		if err != nil {
			return err
		}
		f, perr := strconv.ParseFloat(unsafeStr(tok), 64)
		if perr != nil {
			return d.typeErrf("cannot unmarshal number %s into field %s of type float64", tok, field)
		}
		*dst = f
		return nil
	default:
		if err := d.skipValue(); err != nil {
			return err
		}
		return d.typeErrf("cannot unmarshal value into field %s of type float64", field)
	}
}

// decodeString decodes a string value. set=false means the value was
// null (field untouched). The returned bytes alias the input line or
// d.scratch: copy before the next token read if they must survive.
func (d *Decoder) decodeString(field string) (s []byte, set bool, err error) {
	c, ok := d.peek()
	if !ok {
		return nil, false, d.eofErr()
	}
	switch c {
	case 'n':
		return nil, false, d.literal("null")
	case '"':
		s, err = d.readString()
		return s, err == nil, err
	default:
		if err := d.skipValue(); err != nil {
			return nil, false, err
		}
		return nil, false, d.typeErrf("cannot unmarshal value into field %s of type string", field)
	}
}

// readKey reads an object key string plus the ':' separator and leaves
// d.pos at the start of the value.
func (d *Decoder) readKey() ([]byte, error) {
	c, ok := d.peek()
	if !ok {
		return nil, d.eofErr()
	}
	if c != '"' {
		return nil, d.syntaxf("invalid character %s looking for beginning of object key string", quoteChar(c))
	}
	key, err := d.readString()
	if err != nil {
		return nil, err
	}
	d.skipWS()
	c, ok = d.peek()
	if !ok {
		return nil, d.eofErr()
	}
	if c != ':' {
		return nil, d.syntaxf("invalid character %s after object key", quoteChar(c))
	}
	d.pos++
	d.skipWS()
	return key, nil
}

// objectMore consumes the ',' or '}' after a key:value pair; more=true
// leaves d.pos at the next key.
func (d *Decoder) objectMore() (more bool, err error) {
	d.skipWS()
	c, ok := d.peek()
	if !ok {
		return false, d.eofErr()
	}
	switch c {
	case ',':
		d.pos++
		d.skipWS()
		return true, nil
	case '}':
		d.pos++
		d.depth--
		return false, nil
	}
	return false, d.syntaxf("invalid character %s after object key:value pair", quoteChar(c))
}

// readString parses a JSON string; d.pos is at the opening '"'. The
// result aliases the input when no unescaping or UTF-8 repair was
// needed, else d.scratch. Escape validation matches the stdlib scanner
// (only \" \\ \/ \b \f \n \r \t \uXXXX), invalid UTF-8 bytes become
// U+FFFD, and surrogate pairs combine per unquoteBytes.
func (d *Decoder) readString() ([]byte, error) {
	data := d.data
	start := d.pos + 1
	i := start
	// Fast path: scan for a clean segment that can alias the input.
	for i < len(data) {
		c := data[i]
		if c == '"' {
			d.pos = i + 1
			return data[start:i], nil
		}
		if c == '\\' {
			break
		}
		if c < 0x20 {
			return nil, d.syntaxf("invalid character %s in string literal", quoteChar(c))
		}
		if c < utf8.RuneSelf {
			i++
			continue
		}
		r, size := utf8.DecodeRune(data[i:])
		if r == utf8.RuneError && size == 1 {
			break // invalid UTF-8: needs rewriting
		}
		i += size
	}
	// Slow path: rewrite into scratch.
	b := append(d.scratch[:0], data[start:i]...)
	for i < len(data) {
		c := data[i]
		switch {
		case c == '"':
			d.pos = i + 1
			d.scratch = b
			return b, nil
		case c == '\\':
			i++
			if i >= len(data) {
				return nil, d.eofErr()
			}
			switch e := data[i]; e {
			case '"', '\\', '/':
				b = append(b, e)
				i++
			case 'b':
				b = append(b, '\b')
				i++
			case 'f':
				b = append(b, '\f')
				i++
			case 'n':
				b = append(b, '\n')
				i++
			case 'r':
				b = append(b, '\r')
				i++
			case 't':
				b = append(b, '\t')
				i++
			case 'u':
				r, err := d.hex4(i + 1)
				if err != nil {
					return nil, err
				}
				i += 5
				if utf16.IsSurrogate(r) {
					if i+1 < len(data) && data[i] == '\\' && data[i+1] == 'u' {
						r2, err := d.hex4(i + 2)
						if err != nil {
							return nil, err
						}
						if dec := utf16.DecodeRune(r, r2); dec != unicode.ReplacementChar {
							i += 6
							b = utf8.AppendRune(b, dec)
							continue
						}
					}
					r = unicode.ReplacementChar
				}
				b = utf8.AppendRune(b, r)
			default:
				return nil, d.syntaxf("invalid character %s in string escape code", quoteChar(e))
			}
		case c < 0x20:
			return nil, d.syntaxf("invalid character %s in string literal", quoteChar(c))
		case c < utf8.RuneSelf:
			b = append(b, c)
			i++
		default:
			r, size := utf8.DecodeRune(data[i:])
			if r == utf8.RuneError && size == 1 {
				b = append(b, 0xEF, 0xBF, 0xBD) // U+FFFD
				i++
			} else {
				b = append(b, data[i:i+size]...)
				i += size
			}
		}
	}
	d.scratch = b
	return nil, d.eofErr()
}

// hex4 reads 4 hex digits of a \uXXXX escape starting at off.
func (d *Decoder) hex4(off int) (rune, error) {
	data := d.data
	if off+4 > len(data) {
		return 0, d.eofErr()
	}
	var r rune
	for _, c := range data[off : off+4] {
		switch {
		case '0' <= c && c <= '9':
			c -= '0'
		case 'a' <= c && c <= 'f':
			c = c - 'a' + 10
		case 'A' <= c && c <= 'F':
			c = c - 'A' + 10
		default:
			return 0, d.syntaxf("invalid character %s in \\u hexadecimal character escape", quoteChar(c))
		}
		r = r*16 + rune(c)
	}
	return r, nil
}

// readNumber validates the strict JSON number grammar and returns the
// token; d.pos is at '-' or a digit.
func (d *Decoder) readNumber() ([]byte, error) {
	data := d.data
	i := d.pos
	start := i
	if data[i] == '-' {
		i++
		if i >= len(data) {
			return nil, d.eofErr()
		}
	}
	switch {
	case data[i] == '0':
		i++
	case '1' <= data[i] && data[i] <= '9':
		i++
		for i < len(data) && '0' <= data[i] && data[i] <= '9' {
			i++
		}
	default:
		return nil, d.syntaxf("invalid character %s in numeric literal", quoteChar(data[i]))
	}
	if i < len(data) && data[i] == '.' {
		i++
		if i >= len(data) {
			return nil, d.eofErr()
		}
		if data[i] < '0' || data[i] > '9' {
			return nil, d.syntaxf("invalid character %s after decimal point in numeric literal", quoteChar(data[i]))
		}
		for i < len(data) && '0' <= data[i] && data[i] <= '9' {
			i++
		}
	}
	if i < len(data) && (data[i] == 'e' || data[i] == 'E') {
		i++
		if i < len(data) && (data[i] == '+' || data[i] == '-') {
			i++
		}
		if i >= len(data) {
			return nil, d.eofErr()
		}
		if data[i] < '0' || data[i] > '9' {
			return nil, d.syntaxf("invalid character %s in exponent of numeric literal", quoteChar(data[i]))
		}
		for i < len(data) && '0' <= data[i] && data[i] <= '9' {
			i++
		}
	}
	d.pos = i
	return data[start:i], nil
}

// skipValue validates and discards any JSON value.
func (d *Decoder) skipValue() error {
	c, ok := d.peek()
	if !ok {
		return d.eofErr()
	}
	switch {
	case c == '{':
		return d.skipObject()
	case c == '[':
		return d.skipArray()
	case c == '"':
		_, err := d.readString()
		return err
	case c == 't':
		return d.literal("true")
	case c == 'f':
		return d.literal("false")
	case c == 'n':
		return d.literal("null")
	case c == '-' || ('0' <= c && c <= '9'):
		_, err := d.readNumber()
		return err
	}
	return d.syntaxf("invalid character %s looking for beginning of value", quoteChar(c))
}

func (d *Decoder) skipObject() error {
	if err := d.enter(); err != nil {
		return err
	}
	d.pos++
	d.skipWS()
	if c, ok := d.peek(); ok && c == '}' {
		d.pos++
		d.depth--
		return nil
	}
	for {
		if _, err := d.readKey(); err != nil {
			return err
		}
		if err := d.skipValue(); err != nil {
			return err
		}
		more, err := d.objectMore()
		if err != nil {
			return err
		}
		if !more {
			return nil
		}
	}
}

func (d *Decoder) skipArray() error {
	if err := d.enter(); err != nil {
		return err
	}
	d.pos++
	d.skipWS()
	if c, ok := d.peek(); ok && c == ']' {
		d.pos++
		d.depth--
		return nil
	}
	for {
		if err := d.skipValue(); err != nil {
			return err
		}
		d.skipWS()
		c, ok := d.peek()
		if !ok {
			return d.eofErr()
		}
		if c == ',' {
			d.pos++
			d.skipWS()
			continue
		}
		if c == ']' {
			d.pos++
			d.depth--
			return nil
		}
		return d.syntaxf("invalid character %s after array element", quoteChar(c))
	}
}

// literal consumes an exact keyword (true/false/null).
func (d *Decoder) literal(lit string) error {
	for i := 0; i < len(lit); i++ {
		if d.pos+i >= len(d.data) {
			return d.eofErr()
		}
		if d.data[d.pos+i] != lit[i] {
			return d.syntaxf("invalid character %s in literal (expecting %s)", quoteChar(d.data[d.pos+i]), lit)
		}
	}
	d.pos += len(lit)
	return nil
}

func (d *Decoder) enter() error {
	d.depth++
	if d.depth > maxWireDepth {
		return d.syntaxf("exceeded max depth")
	}
	return nil
}

func (d *Decoder) skipWS() {
	for d.pos < len(d.data) {
		switch d.data[d.pos] {
		case ' ', '\t', '\r', '\n':
			d.pos++
		default:
			return
		}
	}
}

func (d *Decoder) peek() (byte, bool) {
	if d.pos < len(d.data) {
		return d.data[d.pos], true
	}
	return 0, false
}

func (d *Decoder) eofErr() error {
	return &wireError{cause: causeSyntax, msg: "twitter: decode tweet: unexpected end of JSON input"}
}

func (d *Decoder) syntaxf(format string, args ...any) error {
	return &wireError{cause: causeSyntax, msg: "twitter: decode tweet: " + fmt.Sprintf(format, args...)}
}

func (d *Decoder) typeErrf(format string, args ...any) error {
	return &wireError{cause: causeType, msg: "twitter: decode tweet: " + fmt.Sprintf(format, args...)}
}

// quoteChar formats c as in encoding/json error messages.
func quoteChar(c byte) string {
	if c == '\'' {
		return `'\''`
	}
	if c == '"' {
		return `'"'`
	}
	s := strconv.Quote(string(c))
	return "'" + s[1:len(s)-1] + "'"
}
