package twitter

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestNDJSONRoundTrip(t *testing.T) {
	in := []Tweet{sampleTweet(), sampleTweet()}
	in[1].ID = 999
	in[1].SetCoordinates(1, 2)
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].ID != in[0].ID || out[1].ID != 999 {
		t.Errorf("round trip mismatch: %+v", out)
	}
	if !out[1].HasCoordinates || out[1].Coordinates.Lat != 1 {
		t.Error("coordinates lost")
	}
}

func TestReadNDJSONSkipsBlankLines(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, []Tweet{sampleTweet()}); err != nil {
		t.Fatal(err)
	}
	input := "\n" + buf.String() + "\n\n"
	out, err := ReadNDJSON(strings.NewReader(input))
	if err != nil || len(out) != 1 {
		t.Errorf("blank-line handling: %v, %d tweets", err, len(out))
	}
}

func TestReadNDJSONReportsBadLine(t *testing.T) {
	_, err := ReadNDJSON(strings.NewReader("{bad json}\n"))
	if err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Errorf("bad line error = %v", err)
	}
}

func TestReadNDJSONEmpty(t *testing.T) {
	out, err := ReadNDJSON(strings.NewReader(""))
	if err != nil || len(out) != 0 {
		t.Errorf("empty input: %v, %d", err, len(out))
	}
}

func TestNDJSONLargeCorpus(t *testing.T) {
	base := sampleTweet()
	tweets := make([]Tweet, 5000)
	for i := range tweets {
		tweets[i] = base
		tweets[i].ID = int64(i)
		tweets[i].CreatedAt = base.CreatedAt.Add(time.Duration(i) * time.Second)
	}
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, tweets); err != nil {
		t.Fatal(err)
	}
	out, err := ReadNDJSON(&buf)
	if err != nil || len(out) != 5000 {
		t.Fatalf("large corpus: %v, %d tweets", err, len(out))
	}
	if !out[4999].CreatedAt.Equal(tweets[4999].CreatedAt) {
		t.Error("timestamps corrupted")
	}
}
