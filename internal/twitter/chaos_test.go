package twitter

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"
)

// chaosCorpus builds a small corpus: 2 of every 3 tweets match the
// "donor kidney" track, the rest are off-topic noise.
func chaosCorpus(n int) []Tweet {
	base := time.Date(2015, 4, 1, 0, 0, 0, 0, time.UTC)
	tweets := make([]Tweet, n)
	for i := range tweets {
		text := fmt.Sprintf("be a kidney donor today — story %d", i)
		if i%3 == 2 {
			text = fmt.Sprintf("nothing to see here %d", i)
		}
		tweets[i] = Tweet{
			ID:        int64(i + 1),
			Text:      text,
			CreatedAt: base.Add(time.Duration(i) * time.Minute),
			User:      User{ID: int64(i%17 + 1), ScreenName: "u", Location: "Wichita, KS"},
		}
	}
	return tweets
}

// collectAll runs a hardened client against the server until the stream
// ends, returning the delivered tweet IDs in order.
func collectAll(t *testing.T, url string, client *StreamClient) []int64 {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	out := make(chan Tweet, 64)
	errc := make(chan error, 1)
	go func() { errc <- client.Filter(ctx, "donor kidney", out) }()
	var ids []int64
	for tw := range out {
		ids = append(ids, tw.ID)
	}
	if err := <-errc; err != nil {
		t.Fatalf("Filter: %v (collected %d)", err, len(ids))
	}
	return ids
}

func wantIDs(corpus []Tweet) []int64 {
	f := NewTrackFilter("donor kidney")
	var ids []int64
	for _, tw := range corpus {
		if f.Matches(tw.Text) {
			ids = append(ids, tw.ID)
		}
	}
	return ids
}

func equalIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestChaosServerCleanReplayDeliversExactlyOnce(t *testing.T) {
	corpus := chaosCorpus(300)
	cs := NewChaosServer(corpus, ChaosConfig{})
	hs := httptest.NewServer(cs.Handler())
	defer hs.Close()

	client := &StreamClient{BaseURL: hs.URL, InitialBackoff: time.Millisecond}
	ids := collectAll(t, hs.URL, client)
	if want := wantIDs(corpus); !equalIDs(ids, want) {
		t.Errorf("clean replay delivered %d tweets, want %d, or order differs", len(ids), len(want))
	}
	if cs.Remaining() != 0 {
		t.Errorf("Remaining = %d after full replay", cs.Remaining())
	}
}

func TestChaosServerExactlyOnceUnderFaults(t *testing.T) {
	corpus := chaosCorpus(600)
	want := wantIDs(corpus)

	cs := NewChaosServer(corpus, ChaosConfig{
		Seed:            7,
		FaultRate:       0.05,
		StallDuration:   10 * time.Second, // client stall timer must fire first
		RateLimitRate:   0.25,
		ServerErrorRate: 0.25,
		// Sub-second Retry-After rounds to a "0" header: the floor is
		// still exercised end-to-end without slowing the test down.
		RetryAfter: 10 * time.Millisecond,
	})
	hs := httptest.NewServer(cs.Handler())
	defer hs.Close()

	client := &StreamClient{
		BaseURL:          hs.URL,
		InitialBackoff:   time.Millisecond,
		MaxBackoff:       4 * time.Millisecond,
		RateLimitBackoff: time.Millisecond,
		StallTimeout:     100 * time.Millisecond,
		HealthyTweets:    20,
		jitter:           func() float64 { return 0.5 },
	}
	ids := collectAll(t, hs.URL, client)

	if !equalIDs(ids, want) {
		t.Fatalf("chaos replay delivered %d tweets, want %d (must be exactly-once, in order)", len(ids), len(want))
	}
	st := cs.Stats()
	if st.Disconnects+st.Stalls+st.Malformed+st.Oversized+st.Deletes == 0 {
		t.Error("chaos injected no stream faults; test exercised nothing")
	}
	clientStats := client.Snapshot()
	if clientStats.Connects < 2 {
		t.Errorf("client connected %d times; faults should force reconnects", clientStats.Connects)
	}
	if st.Malformed > 0 && clientStats.MalformedLines == 0 {
		t.Error("server injected malformed lines but client counted none")
	}
	if st.Oversized > 0 && clientStats.SkippedLines == 0 {
		t.Error("server injected oversized lines but client skipped none")
	}
	if st.Stalls > 0 && clientStats.Stalls == 0 {
		t.Error("server stalled but client's stall timer never fired")
	}
	if st.RateLimited > 0 && clientStats.RateLimits == 0 {
		t.Error("server rate-limited but client counted none")
	}
	t.Logf("chaos: %+v", st)
	t.Logf("client: %+v", clientStats)
}

func TestChaosServerDeleteNoticesSurfaced(t *testing.T) {
	corpus := chaosCorpus(200)
	cs := NewChaosServer(corpus, ChaosConfig{Seed: 3, FaultRate: 0.5})
	// Only delete faults matter here; re-roll until some are injected by
	// running the full stream.
	hs := httptest.NewServer(cs.Handler())
	defer hs.Close()

	var deletes []DeleteNotice
	client := &StreamClient{
		BaseURL:          hs.URL,
		InitialBackoff:   time.Millisecond,
		MaxBackoff:       2 * time.Millisecond,
		RateLimitBackoff: time.Millisecond,
		StallTimeout:     100 * time.Millisecond,
		OnDelete:         func(d DeleteNotice) { deletes = append(deletes, d) },
		jitter:           func() float64 { return 0 },
	}
	ids := collectAll(t, hs.URL, client)
	if want := wantIDs(corpus); !equalIDs(ids, want) {
		t.Errorf("delivered %d, want %d", len(ids), len(want))
	}
	st := cs.Stats()
	if st.Deletes == 0 {
		t.Skip("fault schedule injected no deletes at this seed")
	}
	if int64(len(deletes)) != st.Deletes {
		t.Errorf("client surfaced %d delete notices, server injected %d", len(deletes), st.Deletes)
	}
	for _, d := range deletes {
		if d.StatusID < 1<<62 {
			t.Errorf("injected delete notice %d collides with corpus ID space", d.StatusID)
		}
	}
}

func TestChaosServerGoneAfterExhaustion(t *testing.T) {
	corpus := chaosCorpus(30)
	cs := NewChaosServer(corpus, ChaosConfig{})
	hs := httptest.NewServer(cs.Handler())
	defer hs.Close()

	client := &StreamClient{BaseURL: hs.URL, InitialBackoff: time.Millisecond}
	collectAll(t, hs.URL, client)

	resp, err := hs.Client().Get(hs.URL + FilterPath + "?track=donor+kidney")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 410 {
		t.Errorf("status after exhaustion = %d, want 410 Gone", resp.StatusCode)
	}

	// Reset rewinds for another full replay.
	cs.Reset()
	if cs.Remaining() != len(corpus) {
		t.Errorf("Remaining after Reset = %d, want %d", cs.Remaining(), len(corpus))
	}
}

func TestChaosServerRejectsEmptyTrack(t *testing.T) {
	cs := NewChaosServer(chaosCorpus(5), ChaosConfig{})
	hs := httptest.NewServer(cs.Handler())
	defer hs.Close()
	resp, err := hs.Client().Get(hs.URL + FilterPath + "?track=")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 406 {
		t.Errorf("status = %d, want 406", resp.StatusCode)
	}
}

func TestChaosServerRateLimitResponseShape(t *testing.T) {
	cs := NewChaosServer(chaosCorpus(5), ChaosConfig{RateLimitRate: 1, RetryAfter: 3 * time.Second})
	hs := httptest.NewServer(cs.Handler())
	defer hs.Close()
	resp, err := hs.Client().Get(hs.URL + FilterPath + "?track=donor+kidney")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 420 {
		t.Errorf("status = %d, want 420", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", got)
	}
}

func TestChaosClientGivesUpCleanlyWhenCancelled(t *testing.T) {
	// Permanent rate limiting + a cancelled context must not wedge.
	cs := NewChaosServer(chaosCorpus(5), ChaosConfig{RateLimitRate: 1, RetryAfter: time.Second})
	hs := httptest.NewServer(cs.Handler())
	defer hs.Close()

	client := &StreamClient{BaseURL: hs.URL, RateLimitBackoff: time.Millisecond, jitter: func() float64 { return 0 }}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	out := make(chan Tweet, 1)
	err := client.Filter(ctx, "donor kidney", out)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
}
