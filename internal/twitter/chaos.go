package twitter

import (
	"fmt"
	"math/rand/v2"
	"net/http"
	"sync"
	"time"
)

// ChaosServer is the fault-injecting counterpart of StreamServer: it
// serves a fixed corpus over the Stream API wire format while injecting
// the failure modes a 385-day collector must survive — mid-stream
// disconnects, keep-alive-free stalls, truncated/malformed JSON lines,
// oversized (> 1 MiB) lines, interleaved delete notices, and HTTP 420/503
// responses carrying Retry-After headers.
//
// Unlike the Broadcaster (fire-and-forget fan-out), the ChaosServer
// tracks a delivery cursor that only advances when a tweet has been
// written to a client, so a collector that reconnects after any injected
// fault resumes exactly where it left off and eventually receives every
// matching tweet exactly once. That property is what lets the chaos
// integration tests assert bit-identical statistics against a fault-free
// run. The cursor is shared: the server is a single-collector harness,
// not a broadcast hub.
//
// When the corpus is exhausted the stream closes and subsequent connects
// receive 410 Gone, terminating a well-behaved client cleanly.
type ChaosServer struct {
	cfg    ChaosConfig
	corpus []Tweet

	mu     sync.Mutex
	cursor int
	rng    *rand.Rand
	stats  ChaosStats
	line   []byte // reused encode buffer, guarded by mu
}

// ChaosConfig tunes the fault mix. The zero value injects nothing (a
// perfectly clean, lossless replay).
type ChaosConfig struct {
	// Seed makes the fault schedule reproducible.
	Seed uint64
	// FaultRate is the per-tweet probability of injecting a stream fault
	// (disconnect, stall, malformed line, oversized line, or delete
	// notice, chosen uniformly).
	FaultRate float64
	// StallDuration is how long a stall fault stays silent — no tweets,
	// no keep-alives — before dropping the connection (default 2s).
	// Point it above the client's StallTimeout to exercise stall
	// detection.
	StallDuration time.Duration
	// RateLimitRate is the per-connection probability of answering 420
	// (Enhance Your Calm) with a Retry-After header.
	RateLimitRate float64
	// ServerErrorRate is the per-connection probability of answering 503
	// with a Retry-After header.
	ServerErrorRate float64
	// RetryAfter is the Retry-After header value on 420/503 responses
	// (default 1s; the header is sent in whole seconds).
	RetryAfter time.Duration
	// OversizeBytes is the length of an injected oversized junk line
	// (default 2 MiB — past the client's 1 MiB line cap).
	OversizeBytes int
	// Rate, when positive, throttles delivery to this many tweets per
	// second.
	Rate float64
}

// ChaosStats counts what the server actually injected.
type ChaosStats struct {
	Connections int64 // streaming connections accepted (HTTP 200)
	RateLimited int64 // connections answered 420
	ServerError int64 // connections answered 503
	Disconnects int64 // injected mid-stream disconnects
	Stalls      int64 // injected stalls
	Malformed   int64 // injected truncated/malformed lines
	Oversized   int64 // injected oversized lines
	Deletes     int64 // injected delete notices
	Delivered   int64 // real tweets written to clients
}

// chaos fault kinds, drawn uniformly when a fault fires.
const (
	chaosDisconnect = iota
	chaosStall
	chaosMalformed
	chaosOversized
	chaosDelete
	chaosKinds
)

// NewChaosServer returns a server replaying corpus with the given fault
// mix.
func NewChaosServer(corpus []Tweet, cfg ChaosConfig) *ChaosServer {
	if cfg.StallDuration <= 0 {
		cfg.StallDuration = 2 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.OversizeBytes <= 0 {
		cfg.OversizeBytes = 2 << 20
	}
	return &ChaosServer{
		cfg:    cfg,
		corpus: corpus,
		rng:    rand.New(rand.NewPCG(cfg.Seed, 0xc4a05)),
	}
}

// Handler returns an http.Handler serving FilterPath.
func (s *ChaosServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(FilterPath, s.serve)
	return mux
}

// Stats returns a snapshot of the injected-fault counters.
func (s *ChaosServer) Stats() ChaosStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Remaining returns how many corpus tweets have not yet been delivered.
func (s *ChaosServer) Remaining() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.corpus) - s.cursor
}

// Reset rewinds the delivery cursor so the corpus replays from the start.
func (s *ChaosServer) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cursor = 0
}

// roll draws a uniform float under the lock-protected rng.
func (s *ChaosServer) roll() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rng.Float64()
}

func (s *ChaosServer) serve(w http.ResponseWriter, r *http.Request) {
	if err := r.ParseForm(); err != nil {
		http.Error(w, "bad form", http.StatusBadRequest)
		return
	}
	filter := NewTrackFilter(r.Form.Get("track"))
	if filter.Empty() {
		http.Error(w, "at least one predicate (track) is required", http.StatusNotAcceptable)
		return
	}
	if s.Remaining() == 0 {
		// Corpus delivered in full: tell reconnecting clients to stop.
		http.Error(w, "stream has ended", http.StatusGone)
		return
	}

	// Connection-level faults: rate limiting and server errors, both
	// carrying Retry-After like the real API's 420 and 503 responses.
	retryAfter := fmt.Sprintf("%d", int(s.cfg.RetryAfter.Round(time.Second)/time.Second))
	if s.cfg.RateLimitRate > 0 && s.roll() < s.cfg.RateLimitRate {
		s.count(func(st *ChaosStats) { st.RateLimited++ })
		w.Header().Set("Retry-After", retryAfter)
		http.Error(w, "Enhance Your Calm", 420)
		return
	}
	if s.cfg.ServerErrorRate > 0 && s.roll() < s.cfg.ServerErrorRate {
		s.count(func(st *ChaosStats) { st.ServerError++ })
		w.Header().Set("Retry-After", retryAfter)
		http.Error(w, "Service Unavailable", http.StatusServiceUnavailable)
		return
	}

	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Transfer-Encoding", "chunked")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	s.count(func(st *ChaosStats) { st.Connections++ })

	var tick *time.Ticker
	if s.cfg.Rate > 0 {
		tick = time.NewTicker(time.Duration(float64(time.Second) / s.cfg.Rate))
		defer tick.Stop()
	}
	ctx := r.Context()
	for {
		if tick != nil {
			select {
			case <-tick.C:
			case <-ctx.Done():
				return
			}
		} else if ctx.Err() != nil {
			return
		}
		switch s.deliverNext(w, flusher, filter) {
		case deliverOK:
		case deliverStall:
			// Go silent — no tweets, no keep-alive newlines — long enough
			// to trip a stall-aware client, then drop the connection.
			select {
			case <-time.After(s.cfg.StallDuration):
			case <-ctx.Done():
			}
			return
		case deliverClose:
			return
		}
	}
}

type deliverResult int

const (
	deliverOK deliverResult = iota
	deliverStall
	deliverClose
)

// deliverNext sends the next undelivered corpus tweet (possibly preceded
// by injected noise lines), advancing the cursor only after the tweet is
// on the wire. The lock is held across the write so concurrent
// connections cannot duplicate or skip a tweet.
func (s *ChaosServer) deliverNext(w http.ResponseWriter, flusher http.Flusher, filter *TrackFilter) deliverResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Skip past corpus tweets the track filter rejects; they are consumed
	// (cursor advances) but never written, like the real filter endpoint.
	for s.cursor < len(s.corpus) && !filter.Matches(s.corpus[s.cursor].Text) {
		s.cursor++
	}
	if s.cursor >= len(s.corpus) {
		return deliverClose
	}
	t := s.corpus[s.cursor]

	// Stream-level faults. Noise faults (malformed, oversized, delete)
	// inject an extra line and still deliver the real tweet, so no data
	// is lost; connection faults (disconnect, stall) fire before the
	// write, so the tweet is re-sent on the next connection.
	if s.cfg.FaultRate > 0 && s.rng.Float64() < s.cfg.FaultRate {
		switch s.rng.IntN(chaosKinds) {
		case chaosDisconnect:
			s.stats.Disconnects++
			return deliverClose
		case chaosStall:
			s.stats.Stalls++
			return deliverStall
		case chaosMalformed:
			s.stats.Malformed++
			// A truncated tweet payload: valid prefix, no closing brace.
			if _, err := w.Write([]byte(`{"id":1,"text":"truncated mid-fligh` + "\n")); err != nil {
				return deliverClose
			}
		case chaosOversized:
			s.stats.Oversized++
			junk := make([]byte, s.cfg.OversizeBytes)
			for i := range junk {
				junk[i] = 'x'
			}
			junk[len(junk)-1] = '\n'
			if _, err := w.Write(junk); err != nil {
				return deliverClose
			}
		case chaosDelete:
			s.stats.Deletes++
			// A delete notice for a status this corpus never contains, so
			// honoring it is a no-op and statistics stay comparable.
			notice := fmt.Sprintf(`{"delete":{"status":{"id":%d,"user_id":%d}}}`+"\n",
				int64(1)<<62+s.rng.Int64N(1<<30), s.rng.Int64N(1<<30))
			if _, err := w.Write([]byte(notice)); err != nil {
				return deliverClose
			}
		}
	}

	payload, err := AppendTweet(s.line[:0], &t)
	if err != nil {
		// Undeliverable tweet (cannot happen with generated corpora):
		// drop it rather than wedging the stream.
		s.cursor++
		return deliverOK
	}
	payload = append(payload, '\n')
	s.line = payload // reuse the grown buffer next delivery
	if _, err := w.Write(payload); err != nil {
		return deliverClose // client went away; tweet stays undelivered
	}
	flusher.Flush()
	s.cursor++
	s.stats.Delivered++
	return deliverOK
}

// count mutates the stats under the lock.
func (s *ChaosServer) count(fn func(*ChaosStats)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(&s.stats)
}
