// Hand-rolled v1.1 tweet wire codec: shared decoder state, string
// interning, the text arena, and the fixed-layout created_at parser. The
// byte-level tokenizer lives in wire_decode.go and the symmetric
// append-style encoder in wire_encode.go.
//
// The codec exists because the wire boundary was the last allocating
// stage of the ingest path: reflection-based encoding/json built a
// throwaway wireTweet, fresh strings for every field, a pointer
// Coordinates, and ran time.Parse per tweet. Decoder.Decode reads a line
// into a caller-provided *Tweet with zero allocations per operation on
// the geo-less ~98.6% path. encoding/json stays in the tree as the
// differential oracle (Tweet.UnmarshalJSON); fuzz and property tests
// assert the two agree on every payload. See DESIGN.md §10.
package twitter

import (
	"time"
	"unsafe"
)

// internBits sizes the per-decoder intern tables: screen names and
// profile locations repeat heavily (a user tweets many times; popular
// location strings are shared), so a small direct-mapped cache turns the
// common case into a pointer copy instead of a fresh string.
const (
	internBits  = 11
	internSlots = 1 << internBits
)

// internSlot is one direct-mapped cache entry, epoch-stamped so Reset can
// invalidate the whole table in O(1) — the same trick the extractor's
// seen array uses.
type internSlot struct {
	hash  uint64
	epoch uint32
	s     string
}

// internTable is a direct-mapped string cache. It is scratch state of a
// Decoder and therefore not safe for concurrent use.
type internTable struct {
	epoch uint32
	slots [internSlots]internSlot
}

// fnv64 is FNV-1a over b.
func fnv64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// intern returns a string equal to b, reusing a previously allocated copy
// when the slot still holds it. A miss allocates once and replaces the
// slot (direct-mapped: no probing, bounded memory).
func (t *internTable) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	h := fnv64(b)
	sl := &t.slots[h&(internSlots-1)]
	if sl.epoch == t.epoch && sl.hash == h && sl.s == string(b) {
		return sl.s
	}
	s := string(b)
	*sl = internSlot{hash: h, epoch: t.epoch, s: s}
	return s
}

// reset invalidates every slot by bumping the epoch.
func (t *internTable) reset() {
	t.epoch++
	if t.epoch == 0 { // uint32 wrap: clear stale stamps, restart epochs
		t.slots = [internSlots]internSlot{}
		t.epoch = 1
	}
}

// arenaBlock is the size of one text-arena allocation. Tweet texts are
// unique (no point interning them), so they are carved out of append-only
// blocks: one allocation amortized over hundreds of tweets instead of one
// per tweet. Blocks are never rewritten or recycled — when one fills up
// it is abandoned to the strings still referencing it and a fresh block
// is started — so the unsafe.String aliases below stay immutable.
const arenaBlock = 64 * 1024

// Decoder decodes v1.1 tweet wire payloads without per-tweet garbage. It
// owns reusable scratch (unescape buffer, text arena, intern tables), so
// like text.Extractor it is NOT safe for concurrent use — construction is
// cheap, give each goroutine its own.
type Decoder struct {
	// OnDecode, when set, receives the wall time of every Decode call —
	// the hook WireMetrics feeds the decode-latency histogram from.
	OnDecode func(time.Duration)
	// OnError, when set, receives a short cause label ("syntax", "type",
	// "created_at") for every failed Decode.
	OnError func(cause string)

	// tokenizer cursor and per-tweet field state (valid only during a
	// Decode call)
	data      []byte
	pos       int
	depth     int
	wc        [2]float64 // pending coordinates array, GeoJSON [lon, lat]
	coordsSet bool       // a coordinates object (not null) was decoded

	scratch []byte // unescape buffer, reused across strings
	caBuf   []byte // decoded created_at bytes, reused across tweets
	arena   []byte // current text-arena block (append-only)

	names internTable // user.screen_name
	locs  internTable // user.location

	// zone memoizes the last FixedZone built, since a corpus typically
	// carries a single UTC offset.
	zone    *time.Location
	zoneOff int
}

// NewDecoder returns a ready-to-use wire decoder.
func NewDecoder() *Decoder {
	d := &Decoder{}
	d.names.epoch = 1
	d.locs.epoch = 1
	return d
}

// Reset drops the interned strings (O(1) epoch bump) and the current
// arena block reference. Decoded tweets remain valid — their strings own
// their backing memory — so Reset is only useful to unpin retained
// strings between unrelated corpora.
func (d *Decoder) Reset() {
	d.names.reset()
	d.locs.reset()
	d.arena = nil
	d.zone = nil
	d.zoneOff = 0
}

// arenaString copies b into the text arena and returns a string aliasing
// the copy. The alias is safe: arena blocks are append-only and abandoned
// when full, never rewritten, so the returned string's bytes are frozen.
func (d *Decoder) arenaString(b []byte) string {
	n := len(b)
	if n == 0 {
		return ""
	}
	if n > arenaBlock/4 {
		// A huge text would waste most of a fresh block; give it its own
		// allocation (rare — tweet texts are short).
		return string(b)
	}
	if len(d.arena)+n > cap(d.arena) {
		d.arena = make([]byte, 0, arenaBlock)
	}
	off := len(d.arena)
	d.arena = append(d.arena, b...)
	return unsafe.String(&d.arena[off], n)
}

// unsafeStr views b as a string without copying. Callers must not retain
// the result past the lifetime of b's bytes; it is used only to feed
// strconv parsers, which do not hold on to their argument.
func unsafeStr(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// zoneFor returns a fixed zone for the offset, memoizing the last one.
func (d *Decoder) zoneFor(offsetSec int) *time.Location {
	if d.zone != nil && d.zoneOff == offsetSec {
		return d.zone
	}
	d.zone = time.FixedZone("", offsetSec)
	d.zoneOff = offsetSec
	return d.zone
}

// shortDayNames / shortMonthNames are the canonical name sets the fast
// created_at path accepts (exact case, as Format emits). Anything else
// falls back to time.Parse, which also handles case-insensitive names.
var shortDayNames = [...]string{"Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat"}

var shortMonthNames = [...]string{
	"Jan", "Feb", "Mar", "Apr", "May", "Jun",
	"Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
}

// num2 reads a 2-digit decimal at b[0:2]; -1 when not digits.
func num2(b []byte) int {
	if b[0] < '0' || b[0] > '9' || b[1] < '0' || b[1] > '9' {
		return -1
	}
	return int(b[0]-'0')*10 + int(b[1]-'0')
}

// num4 reads a 4-digit decimal at b[0:4]; -1 when not digits.
func num4(b []byte) int {
	hi, lo := num2(b), num2(b[2:])
	if hi < 0 || lo < 0 {
		return -1
	}
	return hi*100 + lo
}

// daysIn mirrors time.Parse's day-of-month validation.
func daysIn(m time.Month, year int) int {
	switch m {
	case time.April, time.June, time.September, time.November:
		return 30
	case time.February:
		if year%4 == 0 && (year%100 != 0 || year%400 == 0) {
			return 29
		}
		return 28
	}
	return 31
}

// parseCreatedAtFast decodes the canonical "Mon Jan 02 15:04:05 -0700
// 2006" shape without allocating: exact-case names, zero-padded fields,
// in-range values. It reports ok=false for anything else — including
// out-of-range values — so the caller can fall back to time.Parse, which
// both accepts the lenient variants (case-folded names, offsets up to
// ±24:60) and produces the exact errors the stdlib oracle produces.
func (d *Decoder) parseCreatedAtFast(b []byte) (time.Time, bool) {
	if len(b) != 30 ||
		b[3] != ' ' || b[7] != ' ' || b[10] != ' ' ||
		b[13] != ':' || b[16] != ':' || b[19] != ' ' || b[25] != ' ' {
		return time.Time{}, false
	}
	okDay := false
	for _, n := range shortDayNames {
		if string(b[0:3]) == n {
			okDay = true
			break
		}
	}
	if !okDay {
		return time.Time{}, false
	}
	mo := time.Month(0)
	for i, n := range shortMonthNames {
		if string(b[4:7]) == n {
			mo = time.Month(i + 1)
			break
		}
	}
	if mo == 0 {
		return time.Time{}, false
	}
	day, hh := num2(b[8:]), num2(b[11:])
	mi, ss := num2(b[14:]), num2(b[17:])
	year := num4(b[26:])
	zh, zm := num2(b[21:]), num2(b[23:])
	if day < 0 || hh < 0 || mi < 0 || ss < 0 || year < 0 || zh < 0 || zm < 0 {
		return time.Time{}, false
	}
	// time.Parse's range rules: hour < 24, minute/second < 60, day within
	// the month; zone parts are lenient up to 24h/60m. Out-of-range input
	// falls back so the error text matches the oracle.
	if hh > 23 || mi > 59 || ss > 59 || zh > 24 || zm > 60 {
		return time.Time{}, false
	}
	if day < 1 || day > daysIn(mo, year) {
		return time.Time{}, false
	}
	sign := b[20]
	if sign != '+' && sign != '-' {
		return time.Time{}, false
	}
	off := (zh*60 + zm) * 60
	if sign == '-' {
		off = -off
	}
	t := time.Date(year, mo, day, hh, mi, ss, 0, time.UTC).
		Add(-time.Duration(off) * time.Second)
	// Mirror time.Parse's zone resolution: prefer the local zone when its
	// offset at that instant matches, else a fixed zone recording the
	// offset.
	lt := t.In(time.Local)
	if _, loff := lt.Zone(); loff == off {
		return lt, true
	}
	return t.In(d.zoneFor(off)), true
}

// parseCreatedAt parses a v1.1 timestamp, allocation-free on the
// canonical layout and deferring to time.Parse otherwise.
func (d *Decoder) parseCreatedAt(b []byte) (time.Time, error) {
	if t, ok := d.parseCreatedAtFast(b); ok {
		return t, nil
	}
	return time.Parse(createdAtFormat, string(b))
}
