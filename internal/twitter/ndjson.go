package twitter

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteNDJSON writes tweets as newline-delimited JSON, the archival
// format collectors store raw streams in.
func WriteNDJSON(w io.Writer, tweets []Tweet) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range tweets {
		if err := enc.Encode(tweets[i]); err != nil {
			return fmt.Errorf("twitter: write ndjson tweet %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadNDJSON reads newline-delimited JSON tweets until EOF. Blank lines
// are skipped; a malformed line aborts with an error naming its number.
func ReadNDJSON(r io.Reader) ([]Tweet, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []Tweet
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var t Tweet
		if err := t.UnmarshalJSON(line); err != nil {
			return nil, fmt.Errorf("twitter: ndjson line %d: %w", lineNo, err)
		}
		out = append(out, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("twitter: read ndjson: %w", err)
	}
	return out, nil
}
