package twitter

import (
	"bufio"
	"fmt"
	"io"
)

// DefaultNDJSONMaxLine bounds a single archive line (4 MiB, the cap the
// pre-streaming reader enforced). Longer lines are skipped and counted,
// mirroring StreamClient's oversized-line semantics, instead of aborting
// the whole file.
const DefaultNDJSONMaxLine = 4 << 20

// NDJSONReader streams tweets out of newline-delimited JSON through the
// wire codec, reusing one line buffer and one Tweet for the whole file —
// the decode side allocates nothing per line on the geo-less path. The
// zero value is ready to use. Not safe for concurrent use.
type NDJSONReader struct {
	// Codec is the wire decoder to parse with; nil allocates a private
	// one on first use. Share a decoder across files to keep its intern
	// tables warm.
	Codec *Decoder
	// MaxLineBytes caps one line (default DefaultNDJSONMaxLine). Longer
	// lines are discarded and counted in Skipped, not treated as errors.
	MaxLineBytes int
	// OnSkipped, when set, is invoked for every oversized line (the
	// telemetry hook).
	OnSkipped func()

	// Skipped counts oversized lines discarded by the last Decode call.
	Skipped int64
}

// Decode reads r line by line, invoking fn with each decoded tweet. The
// *Tweet is reused across calls: fn must copy it (not the pointer) if it
// retains it. Blank lines are skipped; a malformed line aborts with an
// error naming its number (archives are trusted data, unlike the live
// stream); an error from fn aborts and is returned unwrapped.
func (nr *NDJSONReader) Decode(r io.Reader, fn func(*Tweet) error) error {
	dec := nr.Codec
	if dec == nil {
		dec = NewDecoder()
		nr.Codec = dec
	}
	max := nr.MaxLineBytes
	if max <= 0 {
		max = DefaultNDJSONMaxLine
	}
	br := bufio.NewReaderSize(r, 64*1024)
	nr.Skipped = 0
	lineNo := 0
	var t Tweet
	for {
		line, skipped, rerr := readLine(br, max)
		lineNo++
		switch {
		case skipped:
			nr.Skipped++
			if nr.OnSkipped != nil {
				nr.OnSkipped()
			}
		case len(line) > 0:
			if err := dec.Decode(line, &t); err != nil {
				return fmt.Errorf("twitter: ndjson line %d: %w", lineNo, err)
			}
			if err := fn(&t); err != nil {
				return err
			}
		}
		if rerr != nil {
			if rerr == io.EOF {
				return nil
			}
			return fmt.Errorf("twitter: read ndjson: %w", rerr)
		}
	}
}

// DecodeNDJSON streams newline-delimited JSON tweets from r into fn with
// default limits. See NDJSONReader.Decode for the callback contract.
func DecodeNDJSON(r io.Reader, fn func(*Tweet) error) error {
	var nr NDJSONReader
	return nr.Decode(r, fn)
}

// ReadNDJSON reads newline-delimited JSON tweets until EOF. Blank lines
// and oversized lines are skipped; a malformed line aborts with an error
// naming its number.
func ReadNDJSON(r io.Reader) ([]Tweet, error) {
	var out []Tweet
	if err := DecodeNDJSON(r, func(t *Tweet) error {
		out = append(out, *t)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteNDJSON writes tweets as newline-delimited JSON, the archival
// format collectors store raw streams in, through the append-style
// encoder (byte-identical to the encoding/json output it replaced).
func WriteNDJSON(w io.Writer, tweets []Tweet) error {
	bw := bufio.NewWriter(w)
	var buf []byte
	for i := range tweets {
		var err error
		buf, err = AppendTweet(buf[:0], &tweets[i])
		if err != nil {
			return fmt.Errorf("twitter: write ndjson tweet %d: %w", i, err)
		}
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("twitter: write ndjson tweet %d: %w", i, err)
		}
	}
	return bw.Flush()
}
