package twitter

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"donorsense/internal/organ"
)

func sampleTweet() Tweet {
	return Tweet{
		ID:        123456789,
		Text:      "Register as an organ donor — kidney transplants save lives",
		CreatedAt: time.Date(2015, 4, 22, 13, 45, 0, 0, time.UTC),
		User: User{
			ID:         42,
			ScreenName: "donor_advocate",
			Location:   "Wichita, KS",
		},
	}
}

func TestTweetJSONRoundTrip(t *testing.T) {
	in := sampleTweet()
	in.SetCoordinates(37.7, -97.3)
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Tweet
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.Text != in.Text || !out.CreatedAt.Equal(in.CreatedAt) {
		t.Errorf("round trip mismatch: %+v vs %+v", out, in)
	}
	if out.User != in.User {
		t.Errorf("user mismatch: %+v vs %+v", out.User, in.User)
	}
	if !out.HasCoordinates || out.Coordinates.Lat != 37.7 || out.Coordinates.Lon != -97.3 {
		t.Errorf("coordinates mismatch: %+v", out.Coordinates)
	}
}

func TestTweetJSONWireShape(t *testing.T) {
	in := sampleTweet()
	in.SetCoordinates(37.7, -97.3)
	data, _ := json.Marshal(in)
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	// v1.1 shape: created_at string, nested user, GeoJSON [lon, lat].
	if _, ok := raw["created_at"].(string); !ok {
		t.Error("created_at not a string")
	}
	u, ok := raw["user"].(map[string]any)
	if !ok || u["screen_name"] != "donor_advocate" {
		t.Errorf("user wire shape wrong: %v", raw["user"])
	}
	co, ok := raw["coordinates"].(map[string]any)
	if !ok || co["type"] != "Point" {
		t.Fatalf("coordinates wire shape wrong: %v", raw["coordinates"])
	}
	pair := co["coordinates"].([]any)
	if pair[0].(float64) != -97.3 || pair[1].(float64) != 37.7 {
		t.Errorf("GeoJSON order wrong: %v", pair)
	}
}

func TestTweetJSONOmitsNilCoordinates(t *testing.T) {
	data, _ := json.Marshal(sampleTweet())
	if strings.Contains(string(data), "coordinates") {
		t.Error("nil coordinates serialized")
	}
}

func TestTweetUnmarshalErrors(t *testing.T) {
	var tw Tweet
	if err := tw.UnmarshalJSON([]byte("{not json")); err == nil {
		t.Error("bad JSON accepted")
	}
	if err := tw.UnmarshalJSON([]byte(`{"id":1,"created_at":"yesterday"}`)); err == nil {
		t.Error("bad created_at accepted")
	}
}

func TestTrackFilterSemantics(t *testing.T) {
	f := NewTrackFilter("donor kidney,transplant heart")
	tests := []struct {
		text string
		want bool
	}{
		{"be a kidney donor today", true},       // both terms of phrase 1
		{"kidney DONOR", true},                  // case-insensitive, order-free
		{"heart transplant waiting list", true}, // phrase 2
		{"kidney beans", false},                 // only one term
		{"donor heart", false},                  // terms from different phrases
		{"donor, kidney!", true},                // punctuation-delimited
		{"", false},
	}
	for _, tt := range tests {
		if got := f.Matches(tt.text); got != tt.want {
			t.Errorf("Matches(%q) = %v, want %v", tt.text, got, tt.want)
		}
	}
}

func TestTrackFilterEmpty(t *testing.T) {
	f := NewTrackFilter("  , ,, ")
	if !f.Empty() || f.Matches("anything donor kidney") {
		t.Error("empty filter misbehaves")
	}
}

func TestPaperKeywordProductFitsTrackLimit(t *testing.T) {
	// The paper's Figure 1 product must be a valid single track parameter.
	track := organ.TrackTerms()
	if err := ValidateTrack(track); err != nil {
		t.Fatalf("paper keyword product rejected: %v", err)
	}
	f := NewTrackFilter(track)
	if f.NumPhrases() != len(organ.Keywords()) {
		t.Errorf("phrases = %d, want %d", f.NumPhrases(), len(organ.Keywords()))
	}
	if !f.Matches("please donate your kidneys") {
		t.Error("paper filter missed a donation tweet")
	}
	if f.Matches("I donated money to charity") {
		t.Error("paper filter matched a no-organ tweet")
	}
	if f.Matches("my kidney hurts") {
		t.Error("paper filter matched a no-context tweet")
	}
}

func TestValidateTrackLimit(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 401; i++ {
		sb.WriteString("word")
		sb.WriteString(",")
	}
	if err := ValidateTrack(sb.String()); err == nil {
		t.Error("401 phrases accepted")
	}
	if err := ValidateTrack(""); err == nil {
		t.Error("empty track accepted")
	}
}

func TestBroadcasterDeliversToMatchingSubscribers(t *testing.T) {
	b := NewBroadcaster()
	defer b.Close()
	all, cancelAll := b.Subscribe(10, nil)
	defer cancelAll()
	kidneyOnly, cancelK := b.Subscribe(10, NewTrackFilter("kidney donor"))
	defer cancelK()

	tw := sampleTweet()
	if n := b.Publish(tw); n != 2 {
		t.Errorf("Publish delivered to %d, want 2", n)
	}
	other := tw
	other.Text = "heart transplant news"
	if n := b.Publish(other); n != 1 {
		t.Errorf("Publish delivered to %d, want 1", n)
	}
	if got := <-all; got.ID != tw.ID {
		t.Error("firehose subscriber missed tweet")
	}
	if got := <-kidneyOnly; !strings.Contains(got.Text, "kidney") {
		t.Error("filtered subscriber got wrong tweet")
	}
}

func TestBroadcasterDropsStalledSubscriber(t *testing.T) {
	b := NewBroadcaster()
	defer b.Close()
	ch, cancel := b.Subscribe(1, nil)
	defer cancel()
	tw := sampleTweet()
	b.Publish(tw) // fills buffer
	b.Publish(tw) // overflows: subscriber dropped
	if b.NumSubscribers() != 0 {
		t.Errorf("stalled subscriber not dropped: %d", b.NumSubscribers())
	}
	// Channel yields the buffered tweet, then closes.
	if _, open := <-ch; !open {
		t.Error("buffered tweet lost")
	}
	if _, open := <-ch; open {
		t.Error("dropped subscriber channel not closed")
	}
}

func TestBroadcasterClose(t *testing.T) {
	b := NewBroadcaster()
	ch, _ := b.Subscribe(1, nil)
	b.Close()
	if _, open := <-ch; open {
		t.Error("channel open after Close")
	}
	if n := b.Publish(sampleTweet()); n != 0 {
		t.Error("Publish after Close delivered")
	}
	ch2, _ := b.Subscribe(1, nil)
	if _, open := <-ch2; open {
		t.Error("Subscribe after Close returned open channel")
	}
	b.Close() // idempotent
}

func TestBroadcasterCancelIdempotent(t *testing.T) {
	b := NewBroadcaster()
	defer b.Close()
	_, cancel := b.Subscribe(1, nil)
	cancel()
	cancel() // must not panic or double-close
	if b.NumSubscribers() != 0 {
		t.Error("cancel did not remove subscriber")
	}
}

func TestStreamServerEndToEnd(t *testing.T) {
	b := NewBroadcaster()
	srv := httptest.NewServer(NewStreamServer(b).Handler())
	defer srv.Close()
	defer b.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	client := &StreamClient{BaseURL: srv.URL, MaxConnects: 3}
	out := make(chan Tweet, 16)
	errc := make(chan error, 1)
	go func() { errc <- client.Filter(ctx, "donor kidney", out) }()

	// Wait for the subscription to land, then publish.
	deadline := time.Now().Add(2 * time.Second)
	for b.NumSubscribers() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if b.NumSubscribers() == 0 {
		t.Fatal("client never subscribed")
	}

	match := sampleTweet()
	noMatch := match
	noMatch.ID = 2
	noMatch.Text = "nothing relevant"
	b.Publish(match)
	b.Publish(noMatch)
	b.Publish(match)

	got := 0
	for got < 2 {
		select {
		case tw := <-out:
			if tw.ID != match.ID {
				t.Errorf("received non-matching tweet %d", tw.ID)
			}
			got++
		case <-ctx.Done():
			t.Fatalf("timed out after %d tweets", got)
		}
	}

	b.Close() // clean end of stream
	if err := <-errc; err != nil {
		t.Errorf("Filter returned %v, want nil on clean close", err)
	}
}

func TestStreamServerRejectsEmptyTrack(t *testing.T) {
	b := NewBroadcaster()
	defer b.Close()
	srv := httptest.NewServer(NewStreamServer(b).Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	client := &StreamClient{BaseURL: srv.URL, MaxConnects: 1}
	out := make(chan Tweet)
	if err := client.Filter(ctx, "", out); err == nil {
		t.Error("empty track accepted by client")
	}

	// Direct HTTP check for the 406.
	resp, err := srv.Client().Get(srv.URL + FilterPath + "?track=")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 406 {
		t.Errorf("status = %d, want 406", resp.StatusCode)
	}
}

func TestStreamClientReconnects(t *testing.T) {
	b := NewBroadcaster()
	defer b.Close()
	srv := httptest.NewServer(NewStreamServer(b).Handler())

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	client := &StreamClient{
		BaseURL:        srv.URL,
		InitialBackoff: 5 * time.Millisecond,
		MaxBackoff:     20 * time.Millisecond,
		MaxConnects:    5,
	}
	out := make(chan Tweet, 4)
	errc := make(chan error, 1)
	go func() { errc <- client.Filter(ctx, "donor kidney", out) }()

	// First connection.
	deadline := time.Now().Add(2 * time.Second)
	for b.NumSubscribers() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	b.Publish(sampleTweet())
	<-out

	// Force a disconnect by overflowing the subscriber buffer, then check
	// the client comes back.
	prevServer := NewStreamServer(b)
	_ = prevServer
	// Instead: drop all subscribers via Close is terminal; simulate a
	// transient server failure by killing the HTTP server and restarting
	// a new one at a different URL is not possible for the same client.
	// So exercise reconnection by having the handler's subscriber dropped:
	// publish faster than the unread client buffer allows. The server-side
	// subscriber buffer is 1024; fill it without reading.
	for i := 0; i < 3000; i++ {
		b.Publish(sampleTweet())
	}
	// Drain whatever arrives; the client must eventually resubscribe.
	drained := make(chan struct{})
	go func() {
		for range out {
		}
		close(drained)
	}()
	deadline = time.Now().Add(3 * time.Second)
	reconnected := false
	for time.Now().Before(deadline) {
		if b.NumSubscribers() > 0 {
			reconnected = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !reconnected {
		t.Error("client did not reconnect after being dropped")
	}
	cancel()
	<-errc
	<-drained
	srv.Close()
}

func TestTweetJSONPropertyRoundTrip(t *testing.T) {
	f := func(id int64, txt, name, loc string, hasGeo bool, lat, lon float64) bool {
		in := Tweet{
			ID:        id,
			Text:      txt,
			CreatedAt: time.Date(2015, 7, 1, 12, 0, 0, 0, time.UTC),
			User:      User{ID: id + 1, ScreenName: name, Location: loc},
		}
		if hasGeo {
			in.SetCoordinates(lat, lon)
		}
		data, err := json.Marshal(in)
		if err != nil {
			return false
		}
		var out Tweet
		if err := json.Unmarshal(data, &out); err != nil {
			return false
		}
		if out.ID != in.ID || out.Text != in.Text || out.User != in.User {
			return false
		}
		if hasGeo != out.HasCoordinates {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTrackFilterMatch(b *testing.B) {
	f := NewTrackFilter(organ.TrackTerms())
	texts := []string{
		"Register as an organ donor — kidney transplants save lives",
		"what a game last night",
		"my cousin needs a liver transplant, please keep her in your prayers",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Matches(texts[i%len(texts)])
	}
}

func BenchmarkTweetMarshal(b *testing.B) {
	tw := sampleTweet()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := json.Marshal(tw); err != nil {
			b.Fatal(err)
		}
	}
}

func TestStreamServerKeepAlive(t *testing.T) {
	b := NewBroadcaster()
	defer b.Close()
	srv := NewStreamServer(b)
	srv.KeepAlive = 10 * time.Millisecond
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	resp, err := hs.Client().Get(hs.URL + FilterPath + "?track=donor+kidney")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// With no tweets published, the connection must still deliver blank
	// keep-alive lines.
	buf := make([]byte, 8)
	deadline := time.Now().Add(2 * time.Second)
	got := 0
	for got == 0 && time.Now().Before(deadline) {
		n, err := resp.Body.Read(buf)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		for _, c := range buf[:n] {
			if c == '\n' {
				got++
			}
		}
	}
	if got == 0 {
		t.Error("no keep-alive newlines received")
	}
}

func TestStreamClientDeleteNotices(t *testing.T) {
	// A raw handler interleaving tweets, delete notices, keep-alives, and
	// garbage; the client must deliver tweets, surface deletes, and skip
	// the rest.
	tw := sampleTweet()
	payload, _ := json.Marshal(tw)
	mux := http.NewServeMux()
	mux.HandleFunc(FilterPath, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(200)
		w.Write(payload)
		w.Write([]byte("\n\n")) // tweet + keep-alive
		w.Write([]byte(`{"delete":{"status":{"id":123456789,"user_id":42}}}` + "\n"))
		w.Write([]byte("{garbage\n"))
		w.Write(payload)
		w.Write([]byte("\n"))
	})
	hs := httptest.NewServer(mux)
	defer hs.Close()

	var deletes []DeleteNotice
	client := &StreamClient{
		BaseURL:     hs.URL,
		MaxConnects: 1,
		OnDelete:    func(d DeleteNotice) { deletes = append(deletes, d) },
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	out := make(chan Tweet, 8)
	errc := make(chan error, 1)
	go func() { errc <- client.Filter(ctx, "donor kidney", out) }()

	var tweets []Tweet
	for tw := range out {
		tweets = append(tweets, tw)
	}
	<-errc
	if len(tweets) != 2 {
		t.Errorf("delivered %d tweets, want 2", len(tweets))
	}
	if len(deletes) != 1 || deletes[0].StatusID != 123456789 || deletes[0].UserID != 42 {
		t.Errorf("deletes = %+v", deletes)
	}
}
