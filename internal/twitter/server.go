package twitter

import (
	"fmt"
	"net/http"
	"time"
)

// FilterPath is the streaming filter endpoint path, matching the real
// API's POST/GET https://stream.twitter.com/1.1/statuses/filter.json.
const FilterPath = "/1.1/statuses/filter.json"

// SamplePath is the unfiltered sample endpoint (the "gardenhose").
const SamplePath = "/1.1/statuses/sample.json"

// StreamServer serves a Broadcaster over HTTP in the Stream API's
// newline-delimited JSON chunked format. Register its Handler on any mux.
type StreamServer struct {
	b *Broadcaster
	// SubscriberBuffer is the per-connection buffer before a slow client
	// is disconnected. Zero means the Broadcaster default.
	SubscriberBuffer int
	// KeepAlive, when positive, emits a blank line on idle connections at
	// this interval, like the real API's 30-second keep-alive newlines.
	KeepAlive time.Duration
}

// NewStreamServer returns a server streaming from b.
func NewStreamServer(b *Broadcaster) *StreamServer {
	return &StreamServer{b: b}
}

// Handler returns an http.Handler serving FilterPath and SamplePath.
func (s *StreamServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(FilterPath, s.serveFilter)
	mux.HandleFunc(SamplePath, s.serveSample)
	return mux
}

func (s *StreamServer) serveFilter(w http.ResponseWriter, r *http.Request) {
	if err := r.ParseForm(); err != nil {
		http.Error(w, "bad form", http.StatusBadRequest)
		return
	}
	track := r.Form.Get("track")
	filter := NewTrackFilter(track)
	if filter.Empty() {
		// The real API answers 406 Not Acceptable for a filter with no
		// predicates.
		http.Error(w, "at least one predicate (track) is required", http.StatusNotAcceptable)
		return
	}
	if s.b.Closed() {
		// The firehose has shut down for good; tell reconnecting clients
		// to stop rather than letting them retry a dead stream.
		http.Error(w, "stream has ended", http.StatusGone)
		return
	}
	s.stream(w, r, filter)
}

func (s *StreamServer) serveSample(w http.ResponseWriter, r *http.Request) {
	if s.b.Closed() {
		http.Error(w, "stream has ended", http.StatusGone)
		return
	}
	s.stream(w, r, nil)
}

// stream subscribes the connection and writes newline-delimited JSON
// until the client goes away or the broadcaster closes.
func (s *StreamServer) stream(w http.ResponseWriter, r *http.Request, filter *TrackFilter) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	ch, cancel := s.b.Subscribe(s.SubscriberBuffer, filter)
	defer cancel()

	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Transfer-Encoding", "chunked")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	var line []byte // reused per-connection encode buffer
	ctx := r.Context()
	var keepAlive <-chan time.Time
	if s.KeepAlive > 0 {
		t := time.NewTicker(s.KeepAlive)
		defer t.Stop()
		keepAlive = t.C
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-keepAlive:
			if _, err := w.Write([]byte("\n")); err != nil {
				return
			}
			flusher.Flush()
		case t, open := <-ch:
			if !open {
				return // broadcaster closed or we were dropped as stalled
			}
			var err error
			line, err = AppendTweet(line[:0], &t)
			if err != nil {
				continue // undeliverable tweet (non-finite coordinate)
			}
			line = append(line, '\n')
			if _, err := w.Write(line); err != nil {
				return // client went away mid-write
			}
			flusher.Flush()
		}
	}
}

// ValidateTrack checks a track parameter the way the API's request
// validation does: non-empty and at most 400 phrases.
func ValidateTrack(track string) error {
	f := NewTrackFilter(track)
	if f.Empty() {
		return fmt.Errorf("twitter: track parameter has no phrases")
	}
	if f.NumPhrases() > 400 {
		return fmt.Errorf("twitter: track parameter has %d phrases, limit 400", f.NumPhrases())
	}
	return nil
}
