// The encode half of the wire codec: an append-style v1.1 tweet encoder
// producing bytes identical to json.Marshal of the wireTweet mirror, so
// archived corpora stay bit-compatible no matter which path wrote them.
// Identical means mirroring encoding/json's string escaping (HTML-safe
// set, � for invalid UTF-8, U+2028/U+2029 escaped), its float
// formatting ('f' inside [1e-6, 1e21), else 'e' with the exponent's
// leading zero stripped), and its rejection of NaN/Inf.
package twitter

import (
	"fmt"
	"math"
	"strconv"
	"time"
	"unicode/utf8"
)

const hexDigits = "0123456789abcdef"

// AppendTweet appends t in Twitter v1.1 wire format (one JSON object, no
// trailing newline) and returns the extended buffer. The only error is a
// non-finite coordinate, matching json.Marshal's UnsupportedValueError.
func AppendTweet(dst []byte, t *Tweet) ([]byte, error) {
	dst = append(dst, `{"id":`...)
	dst = strconv.AppendInt(dst, t.ID, 10)
	dst = append(dst, `,"text":`...)
	dst = appendJSONString(dst, t.Text)
	dst = append(dst, `,"created_at":`...)
	dst = appendCreatedAt(dst, t.CreatedAt)
	dst = append(dst, `,"user":{"id":`...)
	dst = strconv.AppendInt(dst, t.User.ID, 10)
	dst = append(dst, `,"screen_name":`...)
	dst = appendJSONString(dst, t.User.ScreenName)
	dst = append(dst, `,"location":`...)
	dst = appendJSONString(dst, t.User.Location)
	dst = append(dst, '}')
	if t.HasCoordinates {
		dst = append(dst, `,"coordinates":{"type":"Point","coordinates":[`...)
		var err error
		dst, err = appendJSONFloat(dst, t.Coordinates.Lon)
		if err != nil {
			return nil, err
		}
		dst = append(dst, ',')
		dst, err = appendJSONFloat(dst, t.Coordinates.Lat)
		if err != nil {
			return nil, err
		}
		dst = append(dst, `]}`...)
	}
	dst = append(dst, '}')
	return dst, nil
}

// appendCreatedAt appends the quoted v1.1 timestamp. The fast path
// hand-formats the common case — four-digit year, minute-granular
// rendering of the offset — byte-identically to time.Format; exotic
// years fall back to Format itself.
func appendCreatedAt(dst []byte, t time.Time) []byte {
	year, mo, day := t.Date()
	if year < 0 || year > 9999 {
		return appendJSONString(dst, t.Format(createdAtFormat))
	}
	hh, mi, ss := t.Clock()
	_, off := t.Zone()
	dst = append(dst, '"')
	dst = append(dst, shortDayNames[t.Weekday()]...)
	dst = append(dst, ' ')
	dst = append(dst, shortMonthNames[mo-1]...)
	dst = append(dst, ' ')
	dst = append2(dst, day)
	dst = append(dst, ' ')
	dst = append2(dst, hh)
	dst = append(dst, ':')
	dst = append2(dst, mi)
	dst = append(dst, ':')
	dst = append2(dst, ss)
	dst = append(dst, ' ')
	sign := byte('+')
	if off < 0 {
		sign = '-'
		off = -off
	}
	// time.Format's -0700 truncates any seconds in the offset.
	zone := off / 60
	dst = append(dst, sign)
	dst = append2(dst, zone/60)
	dst = append2(dst, zone%60)
	dst = append(dst, ' ')
	dst = append2(dst, year/100)
	dst = append2(dst, year%100)
	dst = append(dst, '"')
	return dst
}

// append2 appends v zero-padded to two digits (v in [0, 99]).
func append2(dst []byte, v int) []byte {
	return append(dst, byte('0'+v/10), byte('0'+v%10))
}

// appendJSONFloat appends f with encoding/json's formatting rules.
func appendJSONFloat(dst []byte, f float64) ([]byte, error) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return nil, fmt.Errorf("twitter: unsupported coordinate value: %s",
			strconv.FormatFloat(f, 'g', -1, 64))
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// Clean up e-09 to e-9, as the stdlib does.
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst, nil
}

// appendJSONString appends s as a quoted JSON string with the escaping
// json.Marshal applies by default (HTML escaping on).
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if htmlSafe(c) {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch c {
			case '\\', '"':
				dst = append(dst, '\\', c)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				// Bytes < 0x20 other than the named escapes, plus <, >, &.
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, 0xEF, 0xBF, 0xBD) // U+FFFD
			i += size
			start = i
			continue
		}
		// U+2028 and U+2029 break JSONP; the stdlib escapes them always.
		if r == '\u2028' || r == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// htmlSafe reports whether c may appear verbatim inside a JSON string
// under json.Marshal's default HTML-escaping (stdlib htmlSafeSet).
func htmlSafe(c byte) bool {
	return c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&'
}
