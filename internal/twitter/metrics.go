package twitter

import (
	"context"
	"errors"
	"time"

	"donorsense/internal/obs"
)

// StreamMetrics bridges a StreamClient into an obs.Registry: the client's
// lifetime counters become scrape-time counter funcs (one source of truth
// — the same Snapshot the tests and exit summary read), and the
// OnStateChange event stream drives the connection-state gauge, the
// per-cause disconnect counter, and the backoff-wait histogram.
type StreamMetrics struct {
	connected   *obs.Gauge
	disconnects *obs.CounterVec
	backoff     *obs.Histogram
}

// NewStreamMetrics registers the stream metric families. Call Instrument
// to attach a client; the families are registered eagerly so /metrics
// shows the full stream schema from the first scrape.
func NewStreamMetrics(reg *obs.Registry) *StreamMetrics {
	return &StreamMetrics{
		connected: reg.Gauge("donorsense_stream_connected",
			"Whether the stream connection is currently established (1) or down (0)."),
		disconnects: reg.CounterVec("donorsense_stream_disconnects_by_cause_total",
			"Established connections that ended, by cause.", "cause"),
		backoff: reg.Histogram("donorsense_stream_backoff_wait_seconds",
			"Reconnect backoff waits the client slept before redialing.", nil),
	}
}

// disconnectCause classifies the error an established connection ended
// with. The cause set is closed: dashboards can sum over it.
func disconnectCause(err error) string {
	switch {
	case err == nil:
		return "eof"
	case errors.Is(err, errStalled):
		return "stall"
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return "cancelled"
	default:
		return "read_error"
	}
}

// Instrument wires the client's counters and lifecycle hooks into the
// registry the metrics were created on. It chains any OnStateChange
// handler already installed. Intended for the one-client-per-process
// collector; instrumenting a second client onto the same registry
// redirects the counter funcs to the newest client.
func (m *StreamMetrics) Instrument(reg *obs.Registry, c *StreamClient) {
	snap := func(field func(StreamStats) int64) func() float64 {
		return func() float64 { return float64(field(c.Snapshot())) }
	}
	reg.CounterFunc("donorsense_stream_connects_total",
		"Connections established (HTTP 200).", snap(func(s StreamStats) int64 { return s.Connects }))
	reg.CounterFunc("donorsense_stream_disconnects_total",
		"Established connections that ended (any cause).", snap(func(s StreamStats) int64 { return s.Disconnects }))
	reg.CounterFunc("donorsense_stream_retries_total",
		"Backoff waits before reconnecting.", snap(func(s StreamStats) int64 { return s.Retries }))
	reg.CounterFunc("donorsense_stream_rate_limits_total",
		"420/429 rate-limit responses received.", snap(func(s StreamStats) int64 { return s.RateLimits }))
	reg.CounterFunc("donorsense_stream_stalls_total",
		"Connections torn down by the stall watchdog.", snap(func(s StreamStats) int64 { return s.Stalls }))
	reg.CounterFunc("donorsense_stream_skipped_lines_total",
		"Oversized stream lines discarded.", snap(func(s StreamStats) int64 { return s.SkippedLines }))
	reg.CounterFunc("donorsense_stream_malformed_lines_total",
		"Stream lines that failed to parse as tweet or delete notice.", snap(func(s StreamStats) int64 { return s.MalformedLines }))
	reg.CounterFunc("donorsense_stream_delete_notices_total",
		"Status-deletion control messages surfaced.", snap(func(s StreamStats) int64 { return s.DeleteNotices }))
	reg.CounterFunc("donorsense_stream_tweets_total",
		"Tweets delivered to the collector.", snap(func(s StreamStats) int64 { return s.Tweets }))

	prev := c.OnStateChange
	c.OnStateChange = func(ev StreamEvent) {
		switch ev.Kind {
		case EventConnected:
			m.connected.Set(1)
		case EventDisconnected:
			m.connected.Set(0)
			m.disconnects.With(disconnectCause(ev.Err)).Inc()
		case EventBackoff:
			m.backoff.Observe(ev.Wait.Seconds())
		}
		if prev != nil {
			prev(ev)
		}
	}
}

// Connected reports the current connection-state gauge value.
func (m *StreamMetrics) Connected() bool { return m.connected.Value() == 1 }

// WireMetrics bridges wire-codec decoders into an obs.Registry: decode
// latency, decode failures by cause, and oversized NDJSON lines skipped
// by archive readers. One WireMetrics can observe any number of decoders
// and readers (collector, replay, streamsim all share the families).
type WireMetrics struct {
	seconds   *obs.Histogram
	errors    *obs.CounterVec
	oversized *obs.Counter
}

// NewWireMetrics registers the wire codec metric families. The error
// causes are pre-registered so the full schema (and its zeroes) shows
// from the first scrape.
func NewWireMetrics(reg *obs.Registry) *WireMetrics {
	m := &WireMetrics{
		// Sub-microsecond decodes: buckets from 100ns to ~400µs.
		seconds: reg.Histogram("donorsense_wire_decode_seconds",
			"Wall time of one wire-codec tweet decode.", obs.ExpBuckets(1e-7, 2, 12)),
		errors: reg.CounterVec("donorsense_wire_decode_errors_total",
			"Tweet lines the wire codec rejected, by cause.", "cause"),
		oversized: reg.Counter("donorsense_wire_oversized_lines_total",
			"Oversized NDJSON archive lines skipped by readers."),
	}
	for _, cause := range []string{causeSyntax, causeType, causeCreatedAt} {
		m.errors.With(cause)
	}
	return m
}

// Observe chains the metrics onto a decoder's hooks, preserving any
// handlers already installed.
func (m *WireMetrics) Observe(d *Decoder) {
	prevDecode, prevError := d.OnDecode, d.OnError
	d.OnDecode = func(dur time.Duration) {
		m.seconds.Observe(dur.Seconds())
		if prevDecode != nil {
			prevDecode(dur)
		}
	}
	d.OnError = func(cause string) {
		m.errors.With(cause).Inc()
		if prevError != nil {
			prevError(cause)
		}
	}
}

// ObserveReader chains the metrics onto an archive reader's skip hook
// and its decoder.
func (m *WireMetrics) ObserveReader(nr *NDJSONReader) {
	if nr.Codec == nil {
		nr.Codec = NewDecoder()
	}
	m.Observe(nr.Codec)
	prev := nr.OnSkipped
	nr.OnSkipped = func() {
		m.oversized.Inc()
		if prev != nil {
			prev()
		}
	}
}
