package twitter

import (
	"strings"
	"testing"
)

// FuzzReadNDJSON feeds arbitrary input to the corpus reader: it must
// never panic and must either error or return decodable tweets.
func FuzzReadNDJSON(f *testing.F) {
	tw := sampleTweet()
	data, _ := tw.MarshalJSON()
	f.Add(string(data) + "\n")
	f.Add("")
	f.Add("\n\n\n")
	f.Add("{bad json}\n")
	f.Add(`{"id":1,"created_at":"nope"}` + "\n")
	f.Fuzz(func(t *testing.T, s string) {
		tweets, err := ReadNDJSON(strings.NewReader(s))
		if err != nil {
			return
		}
		for _, tw := range tweets {
			if tw.CreatedAt.IsZero() {
				t.Fatalf("accepted tweet with zero timestamp from %q", s)
			}
		}
	})
}

// FuzzTweetUnmarshal drives the wire decoder directly.
func FuzzTweetUnmarshal(f *testing.F) {
	tw := sampleTweet()
	data, _ := tw.MarshalJSON()
	f.Add(string(data))
	f.Add(`{"delete":{"status":{"id":1}}}`)
	f.Add(`{"coordinates":{"type":"Point","coordinates":[1,2]}}`)
	f.Fuzz(func(t *testing.T, s string) {
		var out Tweet
		_ = out.UnmarshalJSON([]byte(s)) // must not panic
	})
}

// FuzzTrackFilter checks filter construction and matching on arbitrary
// parameters and texts.
func FuzzTrackFilter(f *testing.F) {
	f.Add("donor kidney,transplant heart", "be a kidney donor")
	f.Add("", "anything")
	f.Add(",,a  b,", "a b c")
	f.Fuzz(func(t *testing.T, track, text string) {
		fl := NewTrackFilter(track)
		got := fl.Matches(text)
		if fl.Empty() && got {
			t.Fatalf("empty filter matched %q", text)
		}
	})
}
