// Package twitter implements the Twitter substrate the paper collects
// from: tweet and user models with the v1.1 JSON wire format, the Stream
// API "track" filter semantics, and an HTTP streaming server/client pair
// that reproduces the filter endpoint (chunked, newline-delimited JSON).
//
// The paper used the public Twitter Stream API; this package provides a
// statistically equivalent local stand-in so the collection pipeline is
// exercised end-to-end (see DESIGN.md §2).
package twitter

import (
	"encoding/json"
	"fmt"
	"time"

	"donorsense/internal/obs/trace"
)

// createdAtFormat is Twitter's v1.1 timestamp layout.
const createdAtFormat = "Mon Jan 02 15:04:05 -0700 2006"

// User is a Twitter account as embedded in a tweet payload.
type User struct {
	ID         int64
	ScreenName string
	// Location is the free-text self-reported profile location, the
	// paper's main geolocation signal ("more static and abundant" than
	// GPS but messy).
	Location string
}

// Coordinates is a GPS point attached to a geo-tagged tweet. Twitter
// serializes GeoJSON order: [longitude, latitude].
type Coordinates struct {
	Lat float64
	Lon float64
}

// Tweet is a single status update.
type Tweet struct {
	ID        int64
	Text      string
	CreatedAt time.Time
	User      User
	// Coordinates is the GPS geo-tag, meaningful only when HasCoordinates
	// is set — the ~98.6% of tweets without a geo-tag leave both zero.
	// Value-typed so decoding a geo-tagged tweet needs no per-tweet
	// pointer allocation and a decoded Tweet is a self-contained value.
	Coordinates    Coordinates
	HasCoordinates bool
	// TraceCtx carries the sampled-trace context assigned when the stream
	// client read this tweet. Tweets travel through channels and chunk
	// buffers rather than call stacks, so trace propagation rides the value
	// itself; the zero value (the overwhelmingly common case) means
	// unsampled and costs downstream stages one compare. Not part of the
	// wire format.
	TraceCtx trace.SpanContext
}

// SetCoordinates attaches a GPS geo-tag to the tweet.
func (t *Tweet) SetCoordinates(lat, lon float64) {
	t.Coordinates = Coordinates{Lat: lat, Lon: lon}
	t.HasCoordinates = true
}

// wireUser, wireCoords, and wireTweet mirror the v1.1 JSON layout. They
// back the reflection-based compatibility path; the hot ingest path uses
// the hand-rolled codec in wire_decode.go / wire_encode.go instead.
type wireUser struct {
	ID         int64  `json:"id"`
	ScreenName string `json:"screen_name"`
	Location   string `json:"location"`
}

type wireCoords struct {
	Type        string     `json:"type"`
	Coordinates [2]float64 `json:"coordinates"` // [lon, lat]
}

type wireTweet struct {
	ID          int64       `json:"id"`
	Text        string      `json:"text"`
	CreatedAt   string      `json:"created_at"`
	User        wireUser    `json:"user"`
	Coordinates *wireCoords `json:"coordinates,omitempty"`
}

// MarshalJSON encodes the tweet in Twitter v1.1 wire format. It delegates
// to AppendTweet, so json.Marshal and the hand-rolled encoder produce
// identical bytes.
func (t Tweet) MarshalJSON() ([]byte, error) {
	return AppendTweet(nil, &t)
}

// UnmarshalJSON decodes a tweet from Twitter v1.1 wire format through
// encoding/json. It is the reflection-based compatibility path — safe for
// concurrent use but allocation-heavy — and doubles as the differential
// oracle the codec fuzz tests pin Decoder.Decode against. Hot paths
// should use a Decoder instead.
func (t *Tweet) UnmarshalJSON(data []byte) error {
	var w wireTweet
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("twitter: decode tweet: %w", err)
	}
	ts, err := time.Parse(createdAtFormat, w.CreatedAt)
	if err != nil {
		return fmt.Errorf("twitter: decode created_at %q: %w", w.CreatedAt, err)
	}
	*t = Tweet{
		ID:        w.ID,
		Text:      w.Text,
		CreatedAt: ts,
		User: User{
			ID:         w.User.ID,
			ScreenName: w.User.ScreenName,
			Location:   w.User.Location,
		},
	}
	if w.Coordinates != nil {
		t.Coordinates = Coordinates{
			Lon: w.Coordinates.Coordinates[0],
			Lat: w.Coordinates.Coordinates[1],
		}
		t.HasCoordinates = true
	}
	return nil
}
