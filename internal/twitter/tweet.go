// Package twitter implements the Twitter substrate the paper collects
// from: tweet and user models with the v1.1 JSON wire format, the Stream
// API "track" filter semantics, and an HTTP streaming server/client pair
// that reproduces the filter endpoint (chunked, newline-delimited JSON).
//
// The paper used the public Twitter Stream API; this package provides a
// statistically equivalent local stand-in so the collection pipeline is
// exercised end-to-end (see DESIGN.md §2).
package twitter

import (
	"encoding/json"
	"fmt"
	"time"
)

// createdAtFormat is Twitter's v1.1 timestamp layout.
const createdAtFormat = "Mon Jan 02 15:04:05 -0700 2006"

// User is a Twitter account as embedded in a tweet payload.
type User struct {
	ID         int64
	ScreenName string
	// Location is the free-text self-reported profile location, the
	// paper's main geolocation signal ("more static and abundant" than
	// GPS but messy).
	Location string
}

// Coordinates is a GPS point attached to a geo-tagged tweet. Twitter
// serializes GeoJSON order: [longitude, latitude].
type Coordinates struct {
	Lat float64
	Lon float64
}

// Tweet is a single status update.
type Tweet struct {
	ID        int64
	Text      string
	CreatedAt time.Time
	User      User
	// Coordinates is nil for the ~98.6% of tweets without a geo-tag.
	Coordinates *Coordinates
}

// wireUser, wireCoords, and wireTweet mirror the v1.1 JSON layout.
type wireUser struct {
	ID         int64  `json:"id"`
	ScreenName string `json:"screen_name"`
	Location   string `json:"location"`
}

type wireCoords struct {
	Type        string     `json:"type"`
	Coordinates [2]float64 `json:"coordinates"` // [lon, lat]
}

type wireTweet struct {
	ID          int64       `json:"id"`
	Text        string      `json:"text"`
	CreatedAt   string      `json:"created_at"`
	User        wireUser    `json:"user"`
	Coordinates *wireCoords `json:"coordinates,omitempty"`
}

// MarshalJSON encodes the tweet in Twitter v1.1 wire format.
func (t Tweet) MarshalJSON() ([]byte, error) {
	w := wireTweet{
		ID:        t.ID,
		Text:      t.Text,
		CreatedAt: t.CreatedAt.Format(createdAtFormat),
		User: wireUser{
			ID:         t.User.ID,
			ScreenName: t.User.ScreenName,
			Location:   t.User.Location,
		},
	}
	if t.Coordinates != nil {
		w.Coordinates = &wireCoords{
			Type:        "Point",
			Coordinates: [2]float64{t.Coordinates.Lon, t.Coordinates.Lat},
		}
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes a tweet from Twitter v1.1 wire format.
func (t *Tweet) UnmarshalJSON(data []byte) error {
	var w wireTweet
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("twitter: decode tweet: %w", err)
	}
	ts, err := time.Parse(createdAtFormat, w.CreatedAt)
	if err != nil {
		return fmt.Errorf("twitter: decode created_at %q: %w", w.CreatedAt, err)
	}
	*t = Tweet{
		ID:        w.ID,
		Text:      w.Text,
		CreatedAt: ts,
		User: User{
			ID:         w.User.ID,
			ScreenName: w.User.ScreenName,
			Location:   w.User.Location,
		},
	}
	if w.Coordinates != nil {
		t.Coordinates = &Coordinates{
			Lon: w.Coordinates.Coordinates[0],
			Lat: w.Coordinates.Coordinates[1],
		}
	}
	return nil
}
