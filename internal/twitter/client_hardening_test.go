package twitter

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestReadLineSizeCap(t *testing.T) {
	const max = 100
	long := strings.Repeat("x", 200)
	veryLong := strings.Repeat("y", 300*1024) // spans many 64 KiB buffers
	input := "short\n" + long + "\nafter\n" + veryLong + "\nlast\n"
	br := bufio.NewReaderSize(strings.NewReader(input), 16) // tiny buffer forces accumulation

	var lines []string
	skips := 0
	for {
		line, skipped, err := readLine(br, max)
		if skipped {
			skips++
		} else if len(line) > 0 {
			lines = append(lines, string(line))
		}
		if err != nil {
			break
		}
	}
	if want := []string{"short", "after", "last"}; !equalStrings(lines, want) {
		t.Errorf("lines = %q, want %q", lines, want)
	}
	if skips != 2 {
		t.Errorf("skipped = %d, want 2", skips)
	}
}

func TestReadLineUnterminatedFinalLine(t *testing.T) {
	br := bufio.NewReaderSize(strings.NewReader("a\npartial"), 16)
	line, _, err := readLine(br, 1024)
	if string(line) != "a" || err != nil {
		t.Fatalf("first line = %q, %v", line, err)
	}
	line, skipped, _ := readLine(br, 1024)
	if string(line) != "partial" || skipped {
		t.Errorf("final fragment = %q (skipped=%v), want \"partial\"", line, skipped)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestStreamClientSkipsOversizedLines(t *testing.T) {
	tw := sampleTweet()
	payload, _ := json.Marshal(tw)
	mux := http.NewServeMux()
	mux.HandleFunc(FilterPath, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(200)
		w.Write(payload)
		w.Write([]byte("\n"))
		// An oversized junk line must be skipped, not kill the connection
		// (the old bufio.Scanner path died here with ErrTooLong).
		junk := bytes.Repeat([]byte("z"), 2<<20)
		junk[len(junk)-1] = '\n'
		w.Write(junk)
		w.Write(payload)
		w.Write([]byte("\n"))
	})
	hs := httptest.NewServer(mux)
	defer hs.Close()

	client := &StreamClient{BaseURL: hs.URL, MaxConnects: 1}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	out := make(chan Tweet, 8)
	errc := make(chan error, 1)
	go func() { errc <- client.Filter(ctx, "donor kidney", out) }()

	n := 0
	for range out {
		n++
	}
	<-errc
	if n != 2 {
		t.Errorf("delivered %d tweets, want 2 (oversized line must not break the stream)", n)
	}
	if st := client.Snapshot(); st.SkippedLines != 1 {
		t.Errorf("SkippedLines = %d, want 1", st.SkippedLines)
	}
}

func TestStreamClientStallDetection(t *testing.T) {
	connects := atomic.Int32{}
	tw := sampleTweet()
	payload, _ := json.Marshal(tw)
	mux := http.NewServeMux()
	mux.HandleFunc(FilterPath, func(w http.ResponseWriter, r *http.Request) {
		connects.Add(1)
		w.WriteHeader(200)
		w.Write(payload)
		w.Write([]byte("\n"))
		w.(http.Flusher).Flush()
		// Go silent forever: no tweets, no keep-alives. Only the client's
		// stall timer can end this connection.
		<-r.Context().Done()
	})
	hs := httptest.NewServer(mux)
	defer hs.Close()

	client := &StreamClient{
		BaseURL:        hs.URL,
		StallTimeout:   80 * time.Millisecond,
		InitialBackoff: time.Millisecond,
		MaxBackoff:     2 * time.Millisecond,
		MaxConnects:    3,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	out := make(chan Tweet, 8)
	err := client.Filter(ctx, "donor kidney", out)
	if !errors.Is(err, ErrTooManyReconnects) {
		t.Fatalf("err = %v, want ErrTooManyReconnects after stalled connections", err)
	}
	if got := connects.Load(); got != 3 {
		t.Errorf("server saw %d connects, want 3", got)
	}
	if st := client.Snapshot(); st.Stalls != 3 || st.Tweets != 3 {
		t.Errorf("stats = %+v, want 3 stalls and 3 tweets", st)
	}
}

func TestStreamClientStallDisabled(t *testing.T) {
	// StallTimeout < 0 disables the watchdog: a silent connection lives
	// until the context ends.
	mux := http.NewServeMux()
	mux.HandleFunc(FilterPath, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(200)
		w.(http.Flusher).Flush()
		<-r.Context().Done()
	})
	hs := httptest.NewServer(mux)
	defer hs.Close()

	client := &StreamClient{BaseURL: hs.URL, StallTimeout: -1, MaxConnects: 1}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	out := make(chan Tweet, 1)
	err := client.Filter(ctx, "donor kidney", out)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline (connection must outlive any stall window)", err)
	}
	if st := client.Snapshot(); st.Stalls != 0 {
		t.Errorf("Stalls = %d, want 0", st.Stalls)
	}
}

func TestStreamClientRateLimitSchedule(t *testing.T) {
	// Two 420s (one with Retry-After), then a clean 200+close. The client
	// must use the rate-limit ladder, honor Retry-After as a floor, and
	// survive to the successful connection.
	var calls atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc(FilterPath, func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "1")
			http.Error(w, "Enhance Your Calm", 420)
		case 2:
			http.Error(w, "Enhance Your Calm", 420)
		default:
			w.WriteHeader(200)
		}
	})
	hs := httptest.NewServer(mux)
	defer hs.Close()

	var mu sync.Mutex
	var waits []time.Duration
	var kinds []StreamEventKind
	client := &StreamClient{
		BaseURL:          hs.URL,
		InitialBackoff:   time.Millisecond,
		MaxBackoff:       2 * time.Millisecond,
		RateLimitBackoff: 4 * time.Millisecond,
		MaxConnects:      3,
		jitter:           func() float64 { return 1 }, // deterministic: full delay
		OnStateChange: func(ev StreamEvent) {
			mu.Lock()
			defer mu.Unlock()
			kinds = append(kinds, ev.Kind)
			if ev.Kind == EventBackoff {
				waits = append(waits, ev.Wait)
			}
		},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	out := make(chan Tweet, 1)
	start := time.Now()
	err := client.Filter(ctx, "donor kidney", out)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrTooManyReconnects) {
		t.Fatalf("err = %v", err)
	}
	if st := client.Snapshot(); st.RateLimits != 2 || st.Connects != 1 {
		t.Errorf("stats = %+v, want 2 rate limits and 1 connect", st)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(waits) < 2 {
		t.Fatalf("waits = %v, want at least 2 backoff events", waits)
	}
	// First 420 carried Retry-After: 1 — the floor beats the 4ms ladder.
	if waits[0] < time.Second {
		t.Errorf("first wait %v ignored Retry-After floor of 1s", waits[0])
	}
	if elapsed < time.Second {
		t.Errorf("Filter returned after %v, faster than the Retry-After floor", elapsed)
	}
	// Second 420 had no header: the doubled ladder delay (8ms) applies.
	if waits[1] != 8*time.Millisecond {
		t.Errorf("second wait = %v, want 8ms (doubled rate-limit backoff)", waits[1])
	}
	sawRL := 0
	for _, k := range kinds {
		if k == EventRateLimited {
			sawRL++
		}
	}
	if sawRL != 2 {
		t.Errorf("saw %d EventRateLimited, want 2", sawRL)
	}
}

func TestStreamClient503RetryAfterHonored(t *testing.T) {
	var calls atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc(FilterPath, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(200)
	})
	hs := httptest.NewServer(mux)
	defer hs.Close()

	client := &StreamClient{
		BaseURL:        hs.URL,
		InitialBackoff: time.Millisecond,
		MaxConnects:    2,
		jitter:         func() float64 { return 0 }, // jitter says "now"; floor must still hold
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	out := make(chan Tweet, 1)
	start := time.Now()
	_ = client.Filter(ctx, "donor kidney", out)
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Errorf("reconnected after %v, Retry-After demanded ≥ 1s", elapsed)
	}
}

func TestStreamClientBackoffResetAfterHealthyConnection(t *testing.T) {
	// Connection plan: fail, fail, healthy (delivers ≥ HealthyTweets),
	// fail, exhausted. The two failures ramp the ladder 1ms → 2ms; the
	// healthy connection must reset it so the post-healthy wait is 1ms
	// again — the standalone backoff-growth bugfix this PR calls out.
	tw := sampleTweet()
	payload, _ := json.Marshal(tw)
	var calls atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc(FilterPath, func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1, 2:
			http.Error(w, "boom", http.StatusInternalServerError)
		case 3:
			w.WriteHeader(200)
			for i := 0; i < 3; i++ {
				w.Write(payload)
				w.Write([]byte("\n"))
			}
		default:
			http.Error(w, "boom", http.StatusInternalServerError)
		}
	})
	hs := httptest.NewServer(mux)
	defer hs.Close()

	var mu sync.Mutex
	var waits []time.Duration
	client := &StreamClient{
		BaseURL:        hs.URL,
		InitialBackoff: time.Millisecond,
		MaxBackoff:     time.Minute, // far above the waits we expect
		HealthyAfter:   time.Hour,   // force the tweet-count path
		HealthyTweets:  2,
		MaxConnects:    4,
		jitter:         func() float64 { return 1 },
		OnStateChange: func(ev StreamEvent) {
			if ev.Kind == EventBackoff {
				mu.Lock()
				waits = append(waits, ev.Wait)
				mu.Unlock()
			}
		},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	out := make(chan Tweet, 16)
	errc := make(chan error, 1)
	go func() { errc <- client.Filter(ctx, "donor kidney", out) }()
	for range out {
	}
	if err := <-errc; !errors.Is(err, ErrTooManyReconnects) {
		t.Fatalf("err = %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	want := []time.Duration{
		1 * time.Millisecond, // after failure 1
		2 * time.Millisecond, // after failure 2: doubled
		1 * time.Millisecond, // after healthy connection 3: reset
		2 * time.Millisecond, // after failure 4: doubling resumes from the bottom
	}
	if fmt.Sprint(waits) != fmt.Sprint(want) {
		t.Errorf("backoff waits = %v, want %v", waits, want)
	}
}

func TestStreamClientPermanent4xxStillFatal(t *testing.T) {
	hs := httptest.NewServer(http.NotFoundHandler())
	defer hs.Close()
	client := &StreamClient{BaseURL: hs.URL, MaxConnects: 5}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	out := make(chan Tweet, 1)
	err := client.Filter(ctx, "donor kidney", out)
	if err == nil || errors.Is(err, ErrTooManyReconnects) {
		t.Errorf("404 must stay permanent, got %v", err)
	}
}

func TestParseRetryAfter(t *testing.T) {
	h := http.Header{}
	if got := parseRetryAfter(h); got != 0 {
		t.Errorf("absent header = %v, want 0", got)
	}
	h.Set("Retry-After", "7")
	if got := parseRetryAfter(h); got != 7*time.Second {
		t.Errorf("seconds form = %v, want 7s", got)
	}
	h.Set("Retry-After", "-3")
	if got := parseRetryAfter(h); got != 0 {
		t.Errorf("negative = %v, want 0", got)
	}
	h.Set("Retry-After", time.Now().Add(30*time.Second).UTC().Format(http.TimeFormat))
	if got := parseRetryAfter(h); got < 20*time.Second || got > 31*time.Second {
		t.Errorf("http-date form = %v, want ≈30s", got)
	}
	h.Set("Retry-After", "soon")
	if got := parseRetryAfter(h); got != 0 {
		t.Errorf("garbage = %v, want 0", got)
	}
}
