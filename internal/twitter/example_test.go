package twitter_test

import (
	"fmt"

	"donorsense/internal/organ"
	"donorsense/internal/twitter"
)

// ExampleTrackFilter shows the Stream API "track" semantics the
// collection filter relies on: comma-separated phrases, every term of a
// phrase must appear.
func ExampleTrackFilter() {
	f := twitter.NewTrackFilter("donor kidney,transplant heart")
	fmt.Println(f.Matches("be a kidney donor today"))
	fmt.Println(f.Matches("kidney beans recipe"))
	fmt.Println(f.Matches("her heart transplant went well"))
	// Output:
	// true
	// false
	// true
}

// ExampleValidateTrack checks the paper's full Figure 1 keyword product
// against the API's request limits.
func ExampleValidateTrack() {
	track := organ.TrackTerms()
	fmt.Println(twitter.ValidateTrack(track))
	fmt.Println(twitter.NewTrackFilter(track).NumPhrases(), "phrases")
	// Output:
	// <nil>
	// 323 phrases
}
