package twitter

import (
	"context"
	"sync"
	"testing"
)

func TestShardIndexStableAndBounded(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 16} {
		for id := int64(-100); id < 100; id++ {
			got := ShardIndex(id, n)
			if got < 0 || got >= n {
				t.Fatalf("ShardIndex(%d, %d) = %d, out of range", id, n, got)
			}
			if again := ShardIndex(id, n); again != got {
				t.Fatalf("ShardIndex(%d, %d) not deterministic: %d then %d", id, n, got, again)
			}
		}
	}
	if ShardIndex(12345, 0) != 0 || ShardIndex(12345, 1) != 0 {
		t.Error("n <= 1 must map everything to shard 0")
	}
}

// TestShardIndexGoldenValues pins exact mappings: they must never
// change across releases, or a restarted collector would route users to
// different shards than the checkpoints it resumes were built with.
func TestShardIndexGoldenValues(t *testing.T) {
	golden := map[int64]int{0: 5, 1: 4, 2: 7, 42: 7, 1 << 40: 2, -1: 5}
	for id, want := range golden {
		if got := ShardIndex(id, 8); got != want {
			t.Errorf("ShardIndex(%d, 8) = %d, want pinned %d", id, got, want)
		}
	}
	// Distribution sanity over sequential ids: no shard may be empty or
	// hold the majority of 10k users for n = 8.
	counts := make([]int, 8)
	for id := int64(0); id < 10000; id++ {
		counts[ShardIndex(id, 8)]++
	}
	for s, c := range counts {
		if c == 0 {
			t.Errorf("shard %d got no users out of 10000 sequential ids", s)
		}
		if c > 5000 {
			t.Errorf("shard %d got %d of 10000 users — degenerate hash", s, c)
		}
	}
}

func TestShardRouterSplitPartitionsAndPreservesOrder(t *testing.T) {
	const shards = 4
	in := make(chan Tweet)
	r := ShardRouter{Shards: shards}
	outs, err := r.Split(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	received := make([][]Tweet, shards)
	for i, ch := range outs {
		wg.Add(1)
		go func(i int, ch <-chan Tweet) {
			defer wg.Done()
			for tw := range ch {
				received[i] = append(received[i], tw)
			}
		}(i, ch)
	}

	const total = 2000
	for i := 0; i < total; i++ {
		in <- Tweet{ID: int64(i), User: User{ID: int64(i % 37)}}
	}
	close(in)
	wg.Wait()

	n := 0
	for shard, tws := range received {
		n += len(tws)
		lastPerUser := map[int64]int64{}
		for _, tw := range tws {
			if want := ShardIndex(tw.User.ID, shards); want != shard {
				t.Fatalf("tweet of user %d on shard %d, want %d", tw.User.ID, shard, want)
			}
			if last, ok := lastPerUser[tw.User.ID]; ok && tw.ID <= last {
				t.Fatalf("user %d order violated on shard %d: %d after %d", tw.User.ID, shard, tw.ID, last)
			}
			lastPerUser[tw.User.ID] = tw.ID
		}
	}
	if n != total {
		t.Errorf("received %d tweets across shards, want %d (no loss, no duplication)", n, total)
	}
}

func TestShardRouterSplitCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan Tweet)
	outs, err := ShardRouter{Shards: 2}.Split(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	for _, ch := range outs {
		for range ch { // must drain and close, not hang
		}
	}
}

func TestShardRouterSplitRejectsZeroShards(t *testing.T) {
	if _, err := (ShardRouter{}).Split(context.Background(), nil); err == nil {
		t.Error("Split with 0 shards must error")
	}
}
