package twitter

import (
	"strings"

	"donorsense/internal/text"
)

// TrackFilter implements the Twitter Stream API "track" parameter
// semantics: the parameter is a comma-separated list of phrases; a phrase
// matches a tweet when every term in the phrase appears in the tweet's
// text (case-insensitive, order-independent, punctuation-delimited); the
// filter matches when any phrase matches.
//
// The paper's collection filter is the Cartesian product Context × Subject
// rendered as such phrases ("donor kidney", "transplant heart", ...),
// which makes every collected tweet contain at least one Context and one
// Subject term.
type TrackFilter struct {
	phrases [][]string // each phrase is a conjunction of terms
}

// NewTrackFilter parses a track parameter string. Empty phrases are
// ignored; an entirely empty parameter yields a filter that matches
// nothing (Twitter rejects such requests; the server layer turns that
// into an HTTP 406 like the real API).
func NewTrackFilter(track string) *TrackFilter {
	f := &TrackFilter{}
	for _, phrase := range strings.Split(track, ",") {
		terms := strings.Fields(strings.ToLower(strings.TrimSpace(phrase)))
		if len(terms) > 0 {
			f.phrases = append(f.phrases, terms)
		}
	}
	return f
}

// Empty reports whether the filter has no phrases.
func (f *TrackFilter) Empty() bool { return len(f.phrases) == 0 }

// NumPhrases returns the number of phrases in the filter.
func (f *TrackFilter) NumPhrases() int { return len(f.phrases) }

// Matches reports whether the tweet text satisfies any phrase.
func (f *TrackFilter) Matches(tweetText string) bool {
	if len(f.phrases) == 0 {
		return false
	}
	words := text.Words(tweetText)
	set := make(map[string]bool, len(words))
	for _, w := range words {
		set[w] = true
	}
	for _, phrase := range f.phrases {
		all := true
		for _, term := range phrase {
			if !set[term] {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}
