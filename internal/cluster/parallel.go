package cluster

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"donorsense/internal/mat"
)

// resolveWorkers normalizes a Workers knob: 0 (or negative) means
// GOMAXPROCS, anything else is taken as given.
func resolveWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// parallelChunks runs fn(chunk) for every chunk index in [0, nChunks)
// across at most workers goroutines. fn must touch only state owned by
// its chunk; chunks are claimed from a shared counter, so the mapping of
// chunks to goroutines is arbitrary — determinism comes from chunk
// ownership, never from scheduling.
func parallelChunks(nChunks, workers int, fn func(chunk int)) {
	if workers > nChunks {
		workers = nChunks
	}
	if workers <= 1 || nChunks <= 1 {
		for c := 0; c < nChunks; c++ {
			fn(c)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= nChunks {
					return
				}
				fn(c)
			}
		}()
	}
	wg.Wait()
}

// denseFromRows validates a slice-of-rows input and copies it once into
// a flat Dense, the layout every engine in this package runs on. The
// [][]float64 entry points exist for compatibility and tests; bulk
// callers hold a *mat.Dense already and skip this copy.
func denseFromRows(rows [][]float64) (*mat.Dense, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("cluster: empty row set")
	}
	dim := len(rows[0])
	for i, r := range rows {
		if len(r) != dim {
			return nil, fmt.Errorf("cluster: row %d has %d cols, want %d", i, len(r), dim)
		}
	}
	m := mat.New(len(rows), dim)
	data := m.Data()
	for i, r := range rows {
		copy(data[i*dim:(i+1)*dim], r)
	}
	return m, nil
}
