package cluster

import (
	"math"
	"math/rand/v2"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// --- Distances ---

func TestEuclidean(t *testing.T) {
	if got := Euclidean([]float64{0, 0}, []float64{3, 4}); !approx(got, 5, 1e-12) {
		t.Errorf("Euclidean = %v, want 5", got)
	}
	if got := SquaredEuclidean([]float64{0, 0}, []float64{3, 4}); !approx(got, 25, 1e-12) {
		t.Errorf("SquaredEuclidean = %v, want 25", got)
	}
}

func TestBhattacharyya(t *testing.T) {
	p := []float64{0.5, 0.5}
	if got := Bhattacharyya(p, p); !approx(got, 0, 1e-12) {
		t.Errorf("self distance = %v, want 0", got)
	}
	// Disjoint supports → +Inf.
	if got := Bhattacharyya([]float64{1, 0}, []float64{0, 1}); !math.IsInf(got, 1) {
		t.Errorf("disjoint = %v, want +Inf", got)
	}
	// Known value: BC of (.5,.5) vs (.9,.1) = √.45 + √.05 ≈ 0.8944;
	// distance = −ln(0.8944) ≈ 0.1116.
	got := Bhattacharyya([]float64{0.5, 0.5}, []float64{0.9, 0.1})
	if !approx(got, 0.11157, 1e-4) {
		t.Errorf("Bhattacharyya = %v, want ≈0.11157", got)
	}
}

func TestHellingerBounds(t *testing.T) {
	if got := Hellinger([]float64{1, 0}, []float64{0, 1}); !approx(got, 1, 1e-12) {
		t.Errorf("disjoint Hellinger = %v, want 1", got)
	}
	if got := Hellinger([]float64{0.3, 0.7}, []float64{0.3, 0.7}); !approx(got, 0, 1e-7) {
		t.Errorf("self Hellinger = %v, want 0", got)
	}
}

func TestJensenShannonBounds(t *testing.T) {
	if got := JensenShannon([]float64{1, 0}, []float64{0, 1}); !approx(got, 1, 1e-12) {
		t.Errorf("disjoint JSD = %v, want 1", got)
	}
	if got := JensenShannon([]float64{0.4, 0.6}, []float64{0.4, 0.6}); !approx(got, 0, 1e-12) {
		t.Errorf("self JSD = %v, want 0", got)
	}
}

func randDist(r *rand.Rand, n int) []float64 {
	p := make([]float64, n)
	s := 0.0
	for i := range p {
		p[i] = r.Float64() + 1e-9
		s += p[i]
	}
	for i := range p {
		p[i] /= s
	}
	return p
}

func TestDistanceProperties(t *testing.T) {
	metrics := map[string]Distance{
		"euclidean":     Euclidean,
		"bhattacharyya": Bhattacharyya,
		"hellinger":     Hellinger,
		"jensenshannon": JensenShannon,
	}
	for name, d := range metrics {
		f := func(seed uint64) bool {
			r := rand.New(rand.NewPCG(seed, 0))
			n := 2 + r.IntN(6)
			p, q := randDist(r, n), randDist(r, n)
			// Symmetry, non-negativity, identity.
			if !approx(d(p, q), d(q, p), 1e-12) {
				return false
			}
			if d(p, q) < 0 {
				return false
			}
			return approx(d(p, p), 0, 1e-7)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestPairwiseMatrix(t *testing.T) {
	rows := [][]float64{{0, 0}, {3, 4}, {6, 8}}
	m, err := PairwiseMatrix(rows, Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if m[0][1] != 5 || m[1][0] != 5 || m[0][2] != 10 || m[1][1] != 0 {
		t.Errorf("pairwise wrong: %v", m)
	}
	if _, err := PairwiseMatrix(nil, Euclidean); err == nil {
		t.Error("empty rows accepted")
	}
	if _, err := PairwiseMatrix([][]float64{{1}, {1, 2}}, Euclidean); err == nil {
		t.Error("ragged rows accepted")
	}
}

// --- Agglomerative ---

// fourPointDist builds a distance matrix with two tight pairs far apart:
// {0,1} close, {2,3} close, pairs separated.
func fourPointDist() [][]float64 {
	pts := [][]float64{{0}, {1}, {10}, {11}}
	m, _ := PairwiseMatrix(pts, Euclidean)
	return m
}

func TestAgglomerativeMergesTightPairsFirst(t *testing.T) {
	for _, link := range []Linkage{AverageLinkage, SingleLinkage, CompleteLinkage} {
		dg, err := Agglomerative(fourPointDist(), link)
		if err != nil {
			t.Fatal(err)
		}
		if len(dg.Merges) != 3 {
			t.Fatalf("%v: merges = %d, want 3", link, len(dg.Merges))
		}
		// First two merges join {0,1} and {2,3} at height 1.
		first := map[int]bool{dg.Merges[0].A: true, dg.Merges[0].B: true}
		if !(first[0] && first[1] || first[2] && first[3]) {
			t.Errorf("%v: first merge joined %v", link, dg.Merges[0])
		}
		if !approx(dg.Merges[0].Height, 1, 1e-12) || !approx(dg.Merges[1].Height, 1, 1e-12) {
			t.Errorf("%v: early merge heights %v, %v; want 1", link, dg.Merges[0].Height, dg.Merges[1].Height)
		}
		// Final height depends on linkage: single=9, complete=11, average=10.
		want := map[Linkage]float64{SingleLinkage: 9, CompleteLinkage: 11, AverageLinkage: 10}[link]
		if !approx(dg.Merges[2].Height, want, 1e-12) {
			t.Errorf("%v: final height = %v, want %v", link, dg.Merges[2].Height, want)
		}
	}
}

func TestCut(t *testing.T) {
	dg, _ := Agglomerative(fourPointDist(), AverageLinkage)
	labels, err := dg.Cut(2)
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] != labels[1] || labels[2] != labels[3] || labels[0] == labels[2] {
		t.Errorf("Cut(2) = %v, want {0,1} vs {2,3}", labels)
	}
	l1, _ := dg.Cut(1)
	for _, l := range l1 {
		if l != 0 {
			t.Errorf("Cut(1) = %v, want all 0", l1)
		}
	}
	l4, _ := dg.Cut(4)
	seen := map[int]bool{}
	for _, l := range l4 {
		seen[l] = true
	}
	if len(seen) != 4 {
		t.Errorf("Cut(4) = %v, want 4 distinct labels", l4)
	}
	if _, err := dg.Cut(0); err == nil {
		t.Error("Cut(0) accepted")
	}
	if _, err := dg.Cut(5); err == nil {
		t.Error("Cut(5) accepted with n=4")
	}
}

func TestLeafOrderGroupsClusters(t *testing.T) {
	dg, _ := Agglomerative(fourPointDist(), AverageLinkage)
	order := dg.LeafOrder()
	if len(order) != 4 {
		t.Fatalf("LeafOrder length %d", len(order))
	}
	sorted := append([]int{}, order...)
	sort.Ints(sorted)
	if !reflect.DeepEqual(sorted, []int{0, 1, 2, 3}) {
		t.Fatalf("LeafOrder not a permutation: %v", order)
	}
	// The two tight pairs must be adjacent in leaf order.
	pos := map[int]int{}
	for i, l := range order {
		pos[l] = i
	}
	if abs(pos[0]-pos[1]) != 1 || abs(pos[2]-pos[3]) != 1 {
		t.Errorf("tight pairs not adjacent in leaf order %v", order)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestAgglomerativeSingleItem(t *testing.T) {
	dg, err := Agglomerative([][]float64{{0}}, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if len(dg.Merges) != 0 || len(dg.LeafOrder()) != 1 {
		t.Error("single-item dendrogram malformed")
	}
}

func TestAgglomerativeErrors(t *testing.T) {
	if _, err := Agglomerative(nil, AverageLinkage); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := Agglomerative([][]float64{{0, 1}}, AverageLinkage); err == nil {
		t.Error("non-square matrix accepted")
	}
}

func TestCopheneticMonotonicAverageLinkage(t *testing.T) {
	// Average-linkage merge heights are monotone non-decreasing for
	// metric inputs; the cophenetic distance of a tight pair is below
	// that of a cross-pair.
	dg, _ := Agglomerative(fourPointDist(), AverageLinkage)
	cd := dg.CopheneticDistances()
	if cd[[2]int{0, 1}] >= cd[[2]int{0, 2}] {
		t.Errorf("cophenetic structure wrong: %v", cd)
	}
	hs := dg.Heights()
	for i := 1; i < len(hs); i++ {
		if hs[i] < hs[i-1]-1e-12 {
			t.Errorf("merge heights decreasing: %v", hs)
		}
	}
}

func TestAgglomerativeClustersGaussianBlobs(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 5))
	var rows [][]float64
	truth := []int{}
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	for c, ctr := range centers {
		for i := 0; i < 20; i++ {
			rows = append(rows, []float64{ctr[0] + r.NormFloat64(), ctr[1] + r.NormFloat64()})
			truth = append(truth, c)
		}
	}
	m, _ := PairwiseMatrix(rows, Euclidean)
	dg, err := Agglomerative(m, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	labels, _ := dg.Cut(3)
	if !labelsMatch(labels, truth) {
		t.Error("agglomerative failed to recover 3 well-separated blobs")
	}
}

// labelsMatch reports whether two labelings describe the same partition.
func labelsMatch(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := map[int]int{}
	rev := map[int]int{}
	for i := range a {
		if m, ok := fwd[a[i]]; ok && m != b[i] {
			return false
		}
		if m, ok := rev[b[i]]; ok && m != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		rev[b[i]] = a[i]
	}
	return true
}

// --- KMeans ---

func blobs(r *rand.Rand, perBlob int, centers [][]float64, spread float64) ([][]float64, []int) {
	var rows [][]float64
	var truth []int
	for c, ctr := range centers {
		for i := 0; i < perBlob; i++ {
			row := make([]float64, len(ctr))
			for j := range row {
				row[j] = ctr[j] + r.NormFloat64()*spread
			}
			rows = append(rows, row)
			truth = append(truth, c)
		}
	}
	return rows, truth
}

func TestKMeansRecoversBlobs(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 9))
	rows, truth := blobs(r, 50, [][]float64{{0, 0}, {8, 8}, {-8, 8}, {8, -8}}, 0.5)
	res, err := KMeans(rows, KMeansConfig{K: 4, Seed: 1, Restarts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !labelsMatch(res.Labels, truth) {
		t.Error("kmeans failed to recover 4 well-separated blobs")
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != len(rows) {
		t.Errorf("sizes sum to %d, want %d", total, len(rows))
	}
}

func TestKMeansDeterministicForSeed(t *testing.T) {
	r := rand.New(rand.NewPCG(2, 2))
	rows, _ := blobs(r, 30, [][]float64{{0, 0}, {5, 5}}, 1)
	a, _ := KMeans(rows, KMeansConfig{K: 2, Seed: 7})
	b, _ := KMeans(rows, KMeansConfig{K: 2, Seed: 7})
	if !reflect.DeepEqual(a.Labels, b.Labels) || a.Inertia != b.Inertia {
		t.Error("same seed produced different results")
	}
}

func TestKMeansInertiaDecreasesWithK(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 3))
	rows, _ := blobs(r, 40, [][]float64{{0, 0}, {6, 6}, {-6, 6}}, 1)
	prev := math.Inf(1)
	for _, k := range []int{1, 2, 3, 6, 12} {
		res, err := KMeans(rows, KMeansConfig{K: k, Seed: 1, Restarts: 3})
		if err != nil {
			t.Fatal(err)
		}
		if res.Inertia > prev+1e-9 {
			t.Errorf("inertia increased at k=%d: %v > %v", k, res.Inertia, prev)
		}
		prev = res.Inertia
	}
}

func TestKMeansErrors(t *testing.T) {
	if _, err := KMeans(nil, KMeansConfig{K: 2}); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := KMeans([][]float64{{1}}, KMeansConfig{K: 2}); err == nil {
		t.Error("k > n accepted")
	}
	if _, err := KMeans([][]float64{{1}, {1, 2}}, KMeansConfig{K: 1}); err == nil {
		t.Error("ragged data accepted")
	}
	if _, err := KMeans([][]float64{{1}, {2}}, KMeansConfig{K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestKMeansDuplicatePoints(t *testing.T) {
	rows := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	res, err := KMeans(rows, KMeansConfig{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-12 {
		t.Errorf("identical points give inertia %v, want 0", res.Inertia)
	}
}

func TestSilhouetteSeparatedVsOverlapping(t *testing.T) {
	r := rand.New(rand.NewPCG(4, 4))
	// Well separated: silhouette near 1.
	rows, truth := blobs(r, 30, [][]float64{{0, 0}, {20, 20}}, 0.5)
	s, err := Silhouette(rows, truth, Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.9 {
		t.Errorf("separated silhouette = %v, want > 0.9", s)
	}
	// Overlapping: silhouette low.
	rows2, truth2 := blobs(r, 30, [][]float64{{0, 0}, {0.5, 0.5}}, 2)
	s2, _ := Silhouette(rows2, truth2, Euclidean)
	if s2 > 0.4 {
		t.Errorf("overlapping silhouette = %v, want < 0.4", s2)
	}
}

func TestSilhouetteSampledApproximatesExact(t *testing.T) {
	r := rand.New(rand.NewPCG(6, 6))
	rows, truth := blobs(r, 100, [][]float64{{0, 0}, {10, 0}, {5, 8}}, 1)
	exact, _ := Silhouette(rows, truth, Euclidean)
	sampled, _ := SilhouetteSampled(rows, truth, Euclidean, 60, 1)
	if math.Abs(exact-sampled) > 0.1 {
		t.Errorf("sampled %v vs exact %v", sampled, exact)
	}
}

func TestSilhouetteErrors(t *testing.T) {
	if _, err := Silhouette([][]float64{{1}, {2}}, []int{0, 0}, Euclidean); err == nil {
		t.Error("single cluster accepted")
	}
	if _, err := Silhouette([][]float64{{1}}, []int{0, 1}, Euclidean); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Silhouette([][]float64{{1}, {2}}, []int{0, -1}, Euclidean); err == nil {
		t.Error("negative label accepted")
	}
}

func TestSweepK(t *testing.T) {
	r := rand.New(rand.NewPCG(8, 8))
	rows, _ := blobs(r, 40, [][]float64{{0, 0}, {10, 10}, {-10, 10}}, 0.6)
	res, err := SweepK(rows, []int{2, 3, 4, 5}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("sweep results = %d", len(res))
	}
	// The true k=3 must win the silhouette comparison.
	best := res[0]
	for _, sr := range res {
		if sr.Silhouette > best.Silhouette {
			best = sr
		}
	}
	if best.K != 3 {
		t.Errorf("silhouette sweep picked k=%d, want 3", best.K)
	}
	for _, sr := range res {
		if sr.AvgSize != float64(len(rows))/float64(sr.K) {
			t.Errorf("avg size wrong for k=%d", sr.K)
		}
		if sr.MinSize < 0 {
			t.Errorf("min size negative for k=%d", sr.K)
		}
	}
}

func BenchmarkKMeansUsers(b *testing.B) {
	r := rand.New(rand.NewPCG(1, 1))
	rows, _ := blobs(r, 2000, [][]float64{{0, 0, 0, 0, 0, 1}, {0, 1, 0, 0, 0, 0}, {1, 0, 0, 0, 0, 0}}, 0.1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMeans(rows, KMeansConfig{K: 12, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAgglomerativeStates(b *testing.B) {
	r := rand.New(rand.NewPCG(2, 2))
	rows := make([][]float64, 52)
	for i := range rows {
		rows[i] = randDist(r, 6)
	}
	m, _ := PairwiseMatrix(rows, Bhattacharyya)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Agglomerative(m, AverageLinkage); err != nil {
			b.Fatal(err)
		}
	}
}

func TestWardLinkageRecoversBlobs(t *testing.T) {
	r := rand.New(rand.NewPCG(12, 12))
	rows, truth := blobs(r, 25, [][]float64{{0, 0}, {12, 0}, {0, 12}}, 1)
	m, _ := PairwiseMatrix(rows, Euclidean)
	dg, err := Agglomerative(m, WardLinkage)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := dg.Cut(3)
	if err != nil {
		t.Fatal(err)
	}
	if !labelsMatch(labels, truth) {
		t.Error("ward linkage failed to recover 3 blobs")
	}
	// Merge heights monotone (Ward is reducible).
	hs := dg.Heights()
	for i := 1; i < len(hs); i++ {
		if hs[i] < hs[i-1]-1e-9 {
			t.Errorf("ward heights decreasing at %d: %v < %v", i, hs[i], hs[i-1])
		}
	}
}

func TestWardMatchesKnownThreePoint(t *testing.T) {
	// Points 0, 1 at distance 1; point 2 at distance 10 from both.
	// After merging {0,1}: Ward distance to {2} =
	// sqrt((2·100 + 2·100 − 1·1)/3) = sqrt(399/3) = sqrt(133).
	m := [][]float64{
		{0, 1, 10},
		{1, 0, 10},
		{10, 10, 0},
	}
	dg, err := Agglomerative(m, WardLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if len(dg.Merges) != 2 {
		t.Fatalf("merges = %d", len(dg.Merges))
	}
	if !approx(dg.Merges[0].Height, 1, 1e-12) {
		t.Errorf("first merge height = %v, want 1", dg.Merges[0].Height)
	}
	want := math.Sqrt(399.0 / 3.0)
	if !approx(dg.Merges[1].Height, want, 1e-9) {
		t.Errorf("ward merge height = %v, want %v", dg.Merges[1].Height, want)
	}
}

func TestLinkageNames(t *testing.T) {
	for _, l := range []Linkage{AverageLinkage, SingleLinkage, CompleteLinkage, WardLinkage} {
		if l.String() == "linkage(?)" {
			t.Errorf("linkage %d unnamed", int(l))
		}
	}
}
