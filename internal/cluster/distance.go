// Package cluster implements the two clustering algorithms the paper uses
// — agglomerative hierarchical clustering (Figure 6, states) and K-Means
// (Figure 7, users) — together with the distance metrics they need. The
// paper clusters discrete probability distributions (rows of the
// characterization matrix K), for which it argues the Bhattacharyya
// distance is better suited than Euclidean; both are provided, along with
// Hellinger and Jensen–Shannon for the ablation benchmarks.
package cluster

import (
	"fmt"
	"math"
)

// Distance computes the dissimilarity of two equal-length vectors. All
// implementations in this package are symmetric and zero on identical
// inputs.
type Distance func(a, b []float64) float64

// Euclidean is the L2 distance.
func Euclidean(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// SquaredEuclidean is the L2 distance squared (K-Means inertia metric).
func SquaredEuclidean(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// bhattCoeff returns the Bhattacharyya coefficient Σ√(p_i·q_i), clamped
// to [0, 1] against floating-point drift.
func bhattCoeff(p, q []float64) float64 {
	bc := 0.0
	for i := range p {
		if p[i] > 0 && q[i] > 0 {
			bc += math.Sqrt(p[i] * q[i])
		}
	}
	if bc > 1 {
		bc = 1
	}
	return bc
}

// Bhattacharyya is the Bhattacharyya distance −ln(BC) between two discrete
// probability distributions. Disjoint supports give +Inf; identical
// distributions give 0. The paper uses it as the affinity for clustering
// states (citing Kailath 1967).
func Bhattacharyya(p, q []float64) float64 {
	bc := bhattCoeff(p, q)
	if bc == 0 {
		return math.Inf(1)
	}
	return -math.Log(bc)
}

// Hellinger is the Hellinger distance √(1−BC), a bounded ([0,1]) metric
// relative of Bhattacharyya.
func Hellinger(p, q []float64) float64 {
	return math.Sqrt(1 - bhattCoeff(p, q))
}

// JensenShannon is the Jensen–Shannon divergence (base-2 logarithm,
// bounded [0,1]) between two discrete distributions.
func JensenShannon(p, q []float64) float64 {
	kl := func(a, b []float64) float64 {
		s := 0.0
		for i := range a {
			if a[i] > 0 && b[i] > 0 {
				s += a[i] * math.Log2(a[i]/b[i])
			}
		}
		return s
	}
	m := make([]float64, len(p))
	for i := range p {
		m[i] = (p[i] + q[i]) / 2
	}
	return kl(p, m)/2 + kl(q, m)/2
}

// PairwiseMatrix computes the full symmetric distance matrix of the rows.
func PairwiseMatrix(rows [][]float64, d Distance) ([][]float64, error) {
	n := len(rows)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no rows")
	}
	w := len(rows[0])
	for i, r := range rows {
		if len(r) != w {
			return nil, fmt.Errorf("cluster: row %d has %d cols, want %d", i, len(r), w)
		}
	}
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := d(rows[i], rows[j])
			m[i][j], m[j][i] = v, v
		}
	}
	return m, nil
}
