// Package cluster implements the two clustering algorithms the paper uses
// — agglomerative hierarchical clustering (Figure 6, states) and K-Means
// (Figure 7, users) — together with the distance metrics they need. The
// paper clusters discrete probability distributions (rows of the
// characterization matrix K), for which it argues the Bhattacharyya
// distance is better suited than Euclidean; both are provided, along with
// Hellinger and Jensen–Shannon for the ablation benchmarks.
package cluster

import (
	"fmt"
	"math"
)

// Distance computes the dissimilarity of two equal-length vectors. All
// implementations in this package are symmetric and zero on identical
// inputs, and panic when the vectors differ in length — a silent
// truncation (or index panic deep in the loop) would otherwise turn a
// caller's shape bug into a wrong distance.
type Distance func(a, b []float64) float64

// checkLens panics with a diagnosable message on mismatched vector
// lengths. Every exported Distance starts with it.
func checkLens(a, b []float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("cluster: distance over mismatched vector lengths %d vs %d", len(a), len(b)))
	}
}

// Euclidean is the L2 distance.
func Euclidean(a, b []float64) float64 {
	checkLens(a, b)
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// SquaredEuclidean is the L2 distance squared (K-Means inertia metric).
func SquaredEuclidean(a, b []float64) float64 {
	checkLens(a, b)
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// bhattCoeff returns the Bhattacharyya coefficient Σ√(p_i·q_i), clamped
// to [0, 1] against floating-point drift.
func bhattCoeff(p, q []float64) float64 {
	checkLens(p, q)
	bc := 0.0
	for i := range p {
		if p[i] > 0 && q[i] > 0 {
			bc += math.Sqrt(p[i] * q[i])
		}
	}
	if bc > 1 {
		bc = 1
	}
	return bc
}

// Bhattacharyya is the Bhattacharyya distance −ln(BC) between two discrete
// probability distributions. Disjoint supports give +Inf; identical
// distributions give 0. The paper uses it as the affinity for clustering
// states (citing Kailath 1967).
func Bhattacharyya(p, q []float64) float64 {
	bc := bhattCoeff(p, q)
	if bc == 0 {
		return math.Inf(1)
	}
	return -math.Log(bc)
}

// Hellinger is the Hellinger distance √(1−BC), a bounded ([0,1]) metric
// relative of Bhattacharyya.
func Hellinger(p, q []float64) float64 {
	return math.Sqrt(1 - bhattCoeff(p, q))
}

// JensenShannon is the Jensen–Shannon divergence (base-2 logarithm,
// bounded [0,1]) between two discrete distributions.
func JensenShannon(p, q []float64) float64 {
	checkLens(p, q)
	kl := func(a, b []float64) float64 {
		s := 0.0
		for i := range a {
			if a[i] > 0 && b[i] > 0 {
				s += a[i] * math.Log2(a[i]/b[i])
			}
		}
		return s
	}
	m := make([]float64, len(p))
	for i := range p {
		m[i] = (p[i] + q[i]) / 2
	}
	return kl(p, m)/2 + kl(q, m)/2
}

// PairwiseMatrix computes the full symmetric distance matrix of the
// rows, using every core (see PairwiseMatrixWorkers).
func PairwiseMatrix(rows [][]float64, d Distance) ([][]float64, error) {
	return PairwiseMatrixWorkers(rows, d, 0)
}

// PairwiseMatrixWorkers computes the full symmetric distance matrix of
// the rows across workers goroutines (0 = GOMAXPROCS). The returned
// rows share one flat backing array; only the strict upper triangle is
// computed (each row owned by one worker, so the pass is deterministic
// for any worker count) and then mirrored.
func PairwiseMatrixWorkers(rows [][]float64, d Distance, workers int) ([][]float64, error) {
	n := len(rows)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no rows")
	}
	w := len(rows[0])
	for i, r := range rows {
		if len(r) != w {
			return nil, fmt.Errorf("cluster: row %d has %d cols, want %d", i, len(r), w)
		}
	}
	backing := make([]float64, n*n)
	m := make([][]float64, n)
	for i := range m {
		m[i] = backing[i*n : (i+1)*n : (i+1)*n]
	}
	nw := resolveWorkers(workers)
	// Upper triangle: row i owns cells (i, j>i). Rows are claimed from a
	// shared counter, which also balances the shrinking row lengths.
	parallelChunks(n, nw, func(i int) {
		ri, mi := rows[i], m[i]
		for j := i + 1; j < n; j++ {
			mi[j] = d(ri, rows[j])
		}
	})
	// Mirror into the lower triangle, row-parallel again.
	parallelChunks(n, nw, func(j int) {
		mj := m[j]
		for i := 0; i < j; i++ {
			mj[i] = m[i][j]
		}
	})
	return m, nil
}
