package cluster

import (
	"fmt"
	"math"

	"donorsense/internal/mat"
)

// Warm-started clustering: the state a converged run leaves behind is
// enough to make the next run over slightly-changed data nearly free.
//
// For K-Means the state is the final centroid positions plus each
// point's label and Hamerly bounds. A caller that knows which rows
// changed keeps the survivors' entries (their bounds remain valid —
// the centroids they were proved against are exactly the positions the
// warm run starts from) and marks changed or new rows with label -1,
// which forces an exact re-assignment for just those rows. The warm run
// rebuilds the per-cluster sums in one deterministic chunk-folded pass
// and re-enters the standard pruned Lloyd loop; on an unchanged dataset
// it converges immediately, and after a small delta it typically needs
// one or two iterations in which every clean point is pruned by its
// carried bounds. Restarts are skipped — a warm run continues the
// incumbent solution rather than re-searching initializations — so
// callers fall back to the cold path (and its restarts) whenever the
// state is missing or no longer fits the data. Warm results are
// verified converged-equal, not bit-identical, against cold runs: the
// rebuilt sums can differ from the cold run's incrementally-maintained
// sums in the last ulp, so the fixed point is the same partition at
// indistinguishable inertia, reached through different float sequences.
//
// For the (≤ 51-state) agglomerative clustering the expensive part is
// the O(n²) transcendental distance evaluations, so PairwiseCache keys
// the matrix by row identity and recomputes only pairs touching dirty
// rows — the cgmlst pi/lambda idea adapted to our NN-chain: cache what
// survives, recompute what a changed row invalidates, and skip the
// chain rerun entirely when no distance changed.

// KMeansWarmState is the resumable state of a converged K-Means run.
// All slices are owned by the holder; Labels[i] == -1 marks a row whose
// data changed since the state was captured (bounds invalid, exact
// re-assignment required).
type KMeansWarmState struct {
	K         int
	Dim       int
	Centroids []float64 // k×dim final positions
	Labels    []int32   // per row; -1 = dirty/new
	Upper     []float64 // Hamerly upper bound per row
	Lower     []float64 // Hamerly lower bound per row
}

// compatible reports whether the state can seed a warm run over n×dim
// data at the configured k.
func (ws *KMeansWarmState) compatible(n, dim, k int) bool {
	return ws != nil && ws.K == k && ws.Dim == dim &&
		len(ws.Centroids) == k*dim &&
		len(ws.Labels) == n && len(ws.Upper) == n && len(ws.Lower) == n
}

// KMeansDenseWarm is KMeansDense with warm-start: when warm carries a
// compatible prior state the run resumes from it (resumed true),
// otherwise it cold-starts through KMeansDense — bit-identical to a
// direct call, restarts included. In both cases the returned state
// captures the finished run for the next resume, with exact bounds from
// the final assignment pass.
func KMeansDenseWarm(m *mat.Dense, cfg KMeansConfig, warm *KMeansWarmState) (*KMeansResult, *KMeansWarmState, bool, error) {
	n, dim := m.Rows(), m.Cols()
	if cfg.K < 1 || cfg.K > n {
		return nil, nil, false, fmt.Errorf("cluster: kmeans k=%d with n=%d", cfg.K, n)
	}
	if warm.compatible(n, dim, cfg.K) {
		for _, l := range warm.Labels {
			if int(l) >= cfg.K {
				return nil, nil, false, fmt.Errorf("cluster: warm label %d out of k=%d", l, cfg.K)
			}
		}
		res, next := kmeansResume(m, cfg, warm)
		return res, next, true, nil
	}
	res, err := KMeansDense(m, cfg)
	if err != nil {
		return nil, nil, false, err
	}
	return res, captureWarm(m, res, resolveWorkers(cfg.Workers)), false, nil
}

// kmeansResume continues a run from warm state: adopt clean rows' labels
// and bounds, exactly re-assign dirty rows, rebuild sums in chunk order,
// then iterate the standard pruned loop to convergence.
func kmeansResume(m *mat.Dense, cfg KMeansConfig, warm *KMeansWarmState) (*KMeansResult, *KMeansWarmState) {
	n, dim := m.Rows(), m.Cols()
	k := cfg.K
	maxIter := cfg.MaxIterations
	if maxIter <= 0 {
		maxIter = 100
	}
	tol := cfg.Tolerance
	if tol <= 0 {
		tol = 1e-9
	}
	workers := resolveWorkers(cfg.Workers)

	run := &kmeansRun{
		data: m.Data(), n: n, dim: dim, k: k, workers: workers,
		pos:    append([]float64(nil), warm.Centroids...),
		oldPos: make([]float64, k*dim),
		sums:   make([]float64, k*dim),
		counts: make([]int, k),
		labels: make([]int, n),
		upper:  make([]float64, n),
		lower:  make([]float64, n),
		half:   make([]float64, k),
		drift:  make([]float64, k),
	}
	nChunks := (n + assignChunkRows - 1) / assignChunkRows
	run.parts = make([]kmeansChunk, nChunks)
	for i := range run.parts {
		run.parts[i] = kmeansChunk{deltaSums: make([]float64, k*dim), deltaCnt: make([]int, k)}
	}

	run.warmAssign(warm)
	iter := 0
	for ; iter < maxIter; iter++ {
		run.refreshHalf()
		run.assignPruned()
		if moved := run.updateCentroids(); moved <= tol {
			break
		}
	}
	res, next := run.finishCapture(iter + 1)
	return res, next
}

// warmAssign seeds labels, bounds, and per-cluster sums from warm state:
// clean rows adopt their stored entries, dirty rows (label -1) get an
// exact two-closest scan. Sums fold in chunk order like every other
// pass.
func (run *kmeansRun) warmAssign(warm *KMeansWarmState) {
	parallelChunks(len(run.parts), run.workers, func(c int) {
		p := &run.parts[c]
		lo, hi := run.chunkBounds(c)
		run.resetChunk(p)
		for i := lo; i < hi; i++ {
			row := run.row(i)
			if l := warm.Labels[i]; l >= 0 {
				run.labels[i] = int(l)
				run.upper[i] = warm.Upper[i]
				run.lower[i] = warm.Lower[i]
			} else {
				bi, bd, sd := run.closestTwo(row)
				run.labels[i] = bi
				run.upper[i] = math.Sqrt(bd)
				run.lower[i] = math.Sqrt(sd)
			}
			li := run.labels[i]
			p.deltaCnt[li]++
			addTo(p.deltaSums[li*run.dim:(li+1)*run.dim], row)
			if run.upper[i] > p.farD {
				p.farD, p.farIdx = run.upper[i], i
			}
		}
	})
	run.foldDeltas()
}

// finishCapture finalizes the run against the loop's last centroid
// move, building the result and the next warm state in one sweep. The
// pass is exact but Hamerly-pruned: a point whose carried bounds prove
// its label survives the final (sub-tolerance) move pays one distance
// to its own centroid — for the exact inertia term and a tight upper
// bound — instead of a k-way scan, and keeps the loop's conservative
// lower bound, which remains valid for the next resume. Only points
// the bounds cannot clear rescan exactly. On a converged run nearly
// every point prunes, making the capture O(n·dim) rather than
// O(n·k·dim) — the difference between a warm refresh that costs two
// pruned iterations and one that silently re-pays a full assignment.
func (run *kmeansRun) finishCapture(iterations int) (*KMeansResult, *KMeansWarmState) {
	k, dim := run.k, run.dim
	next := &KMeansWarmState{
		K:         k,
		Dim:       dim,
		Centroids: append([]float64(nil), run.pos...),
		Labels:    make([]int32, run.n),
		Upper:     make([]float64, run.n),
		Lower:     make([]float64, run.n),
	}
	run.refreshHalf() // half-distances against the final positions
	maxDrift := 0.0
	for _, d := range run.drift {
		if d > maxDrift {
			maxDrift = d
		}
	}
	type finalPart struct {
		sizes   []int
		inertia float64
	}
	parts := make([]finalPart, len(run.parts))
	parallelChunks(len(run.parts), run.workers, func(c int) {
		parts[c].sizes = make([]int, k)
		lo, hi := run.chunkBounds(c)
		for i := lo; i < hi; i++ {
			row := run.row(i)
			a := run.labels[i]
			u := run.upper[i] + run.drift[a]
			l := run.lower[i] - maxDrift
			m := run.half[a]
			if l > m {
				m = l
			}
			bi := a
			lower := l
			if u > m {
				// Tighten: the exact own-centroid distance may clear the
				// bound without a scan.
				u = math.Sqrt(sqDistTo(row, run.pos[a*dim:(a+1)*dim]))
				if u > m {
					var sd float64
					bi, _, sd = run.closestTwo(row)
					lower = math.Sqrt(sd)
				}
			}
			// The inertia term is always sqDistTo against the final label's
			// centroid, so the summation is identical whichever branch
			// resolved the label.
			bd := sqDistTo(row, run.pos[bi*dim:(bi+1)*dim])
			run.labels[i] = bi
			next.Labels[i] = int32(bi)
			next.Upper[i] = math.Sqrt(bd)
			next.Lower[i] = lower
			parts[c].sizes[bi]++
			parts[c].inertia += bd
		}
	})
	sizes := make([]int, k)
	inertia := 0.0
	for c := range parts {
		inertia += parts[c].inertia
		for i, s := range parts[c].sizes {
			sizes[i] += s
		}
	}
	cents := make([][]float64, k)
	for c := range cents {
		cents[c] = run.pos[c*dim : c*dim+dim : c*dim+dim]
	}
	res := &KMeansResult{
		K:          k,
		Centroids:  cents,
		Labels:     run.labels,
		Inertia:    inertia,
		Iterations: iterations,
		Sizes:      sizes,
	}
	return res, next
}

// captureWarm derives warm state from a finished cold run with one exact
// pass against its centroids — the same computation the run's own final
// pass performed, so the captured labels agree with res.Labels.
func captureWarm(m *mat.Dense, res *KMeansResult, workers int) *KMeansWarmState {
	n, dim := m.Rows(), m.Cols()
	k := res.K
	pos := make([]float64, 0, k*dim)
	for _, c := range res.Centroids {
		pos = append(pos, c...)
	}
	ws := &KMeansWarmState{
		K:         k,
		Dim:       dim,
		Centroids: pos,
		Labels:    make([]int32, n),
		Upper:     make([]float64, n),
		Lower:     make([]float64, n),
	}
	data := m.Data()
	nChunks := (n + assignChunkRows - 1) / assignChunkRows
	parallelChunks(nChunks, workers, func(c int) {
		lo := c * assignChunkRows
		hi := lo + assignChunkRows
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			row := data[i*dim : (i+1)*dim]
			var bi int
			var bd, sd float64
			if dim == 6 {
				bi, bd, sd = closestTwo6(row, pos, k)
			} else {
				bi, bd, sd = closestTwoGeneric(row, pos, k, dim)
			}
			ws.Labels[i] = int32(bi)
			ws.Upper[i] = math.Sqrt(bd)
			ws.Lower[i] = math.Sqrt(sd)
		}
	})
	return ws
}

// PairwiseCache caches a keyed pairwise-distance matrix across refreshes
// and the dendrogram built from it. Keys identify rows (state codes for
// the Figure 6 clustering); a refresh recomputes only the pairs with a
// dirty or previously-unseen endpoint and copies every clean pair from
// the cache. Distances are pure functions of their rows, so a copied
// value is bitwise what recomputation would produce — the full matrix is
// always bit-identical to PairwiseMatrixWorkers over the same rows.
type PairwiseCache struct {
	keys    []string
	index   map[string]int
	d       [][]float64
	dend    *Dendrogram
	linkage Linkage
	fresh   bool // dend matches d
}

// Refresh returns the pairwise matrix for rows/keys, reusing cached
// entries for pairs of clean keys. dirty reports whether a key's row
// changed since the previous refresh (called only for keys the cache
// knows). The returned matrix is owned by the cache; callers must not
// mutate it. changed reports whether any entry was recomputed — when
// false the matrix is the identical cached object.
func (pc *PairwiseCache) Refresh(rows [][]float64, keys []string, dirty func(key string) bool, dist Distance, workers int) (d [][]float64, changed bool, err error) {
	n := len(rows)
	if n == 0 {
		return nil, false, fmt.Errorf("cluster: pairwise of zero rows")
	}
	if len(keys) != n {
		return nil, false, fmt.Errorf("cluster: %d keys for %d rows", len(keys), n)
	}

	// Clean key = known to the cache and not dirty. If every key is
	// clean and the key order is unchanged, the cached matrix is current.
	clean := make([]bool, n)
	allSame := len(pc.keys) == n
	for i, key := range keys {
		old, known := pc.index[key]
		clean[i] = known && !dirty(key)
		if allSame && (!known || old != i || !clean[i]) {
			allSame = false
		}
	}
	if allSame {
		return pc.d, false, nil
	}

	out := make([][]float64, n)
	flat := make([]float64, n*n)
	for i := range out {
		out[i] = flat[i*n : (i+1)*n]
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var v float64
			if clean[i] && clean[j] {
				v = pc.d[pc.index[keys[i]]][pc.index[keys[j]]]
			} else {
				v = dist(rows[i], rows[j])
			}
			out[i][j], out[j][i] = v, v
		}
	}

	pc.keys = append(pc.keys[:0], keys...)
	pc.index = make(map[string]int, n)
	for i, key := range keys {
		pc.index[key] = i
	}
	pc.d = out
	pc.fresh = false
	return out, true, nil
}

// Dendrogram clusters the cached matrix, rerunning the NN-chain only
// when the matrix (or linkage) changed since the last call — otherwise
// the previous dendrogram is returned as-is.
func (pc *PairwiseCache) Dendrogram(linkage Linkage) (*Dendrogram, error) {
	if pc.d == nil {
		return nil, fmt.Errorf("cluster: dendrogram before any refresh")
	}
	if pc.fresh && pc.dend != nil && pc.linkage == linkage {
		return pc.dend, nil
	}
	dg, err := Agglomerative(pc.d, linkage)
	if err != nil {
		return nil, err
	}
	pc.dend, pc.linkage, pc.fresh = dg, linkage, true
	return dg, nil
}
