package cluster

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"donorsense/internal/mat"
)

// warmTestData builds n×dim rows of random simplex-ish points.
func warmTestData(rng *rand.Rand, n, dim int) *mat.Dense {
	m := mat.New(n, dim)
	data := m.Data()
	for i := 0; i < n; i++ {
		row := data[i*dim : (i+1)*dim]
		sum := 0.0
		for j := range row {
			row[j] = rng.Float64()
			sum += row[j]
		}
		for j := range row {
			row[j] /= sum
		}
	}
	return m
}

// lloydFixedPoint asserts a result is a converged Lloyd solution on m:
// every label is the exact nearest centroid, and each centroid is the
// mean of its members to within tol.
func lloydFixedPoint(t *testing.T, m *mat.Dense, res *KMeansResult, tol float64) {
	t.Helper()
	n, dim := m.Rows(), m.Cols()
	data := m.Data()
	pos := make([]float64, 0, res.K*dim)
	for _, c := range res.Centroids {
		pos = append(pos, c...)
	}
	sums := make([]float64, res.K*dim)
	counts := make([]int, res.K)
	for i := 0; i < n; i++ {
		row := data[i*dim : (i+1)*dim]
		bi, _, _ := closestTwoGeneric(row, pos, res.K, dim)
		if bi != res.Labels[i] {
			t.Fatalf("point %d labeled %d, nearest centroid %d", i, res.Labels[i], bi)
		}
		counts[bi]++
		addTo(sums[bi*dim:(bi+1)*dim], row)
	}
	for c := 0; c < res.K; c++ {
		if counts[c] == 0 {
			t.Fatalf("cluster %d empty at convergence", c)
		}
		mean := make([]float64, dim)
		inv := 1 / float64(counts[c])
		for j := range mean {
			mean[j] = sums[c*dim+j] * inv
		}
		if d := sqDistTo(mean, pos[c*dim:(c+1)*dim]); d > tol {
			t.Fatalf("centroid %d off its member mean by %g", c, d)
		}
	}
}

// TestKMeansWarmColdPathIdentical asserts the cold fallback inside
// KMeansDenseWarm is bit-identical to a direct KMeansDense call.
func TestKMeansWarmColdPathIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := warmTestData(rng, 600, 6)
	cfg := KMeansConfig{K: 5, Seed: 11, Restarts: 2, Workers: 2}

	want, err := KMeansDense(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, ws, resumed, err := KMeansDenseWarm(m, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resumed {
		t.Fatal("nil warm state reported resumed")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("cold path through KMeansDenseWarm differs from KMeansDense")
	}
	for i, l := range ws.Labels {
		if int(l) != want.Labels[i] {
			t.Fatalf("captured label %d = %d, result %d", i, l, want.Labels[i])
		}
	}
}

// TestKMeansWarmUnchangedData asserts resuming on unchanged data keeps
// the partition, converges immediately, and is itself a fixed point:
// resuming twice returns bit-identical results.
func TestKMeansWarmUnchangedData(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := warmTestData(rng, 800, 6)
	cfg := KMeansConfig{K: 6, Seed: 3, Restarts: 2, Workers: 2}

	cold, ws, _, err := KMeansDenseWarm(m, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	warm1, ws1, resumed, err := KMeansDenseWarm(m, cfg, ws)
	if err != nil {
		t.Fatal(err)
	}
	if !resumed {
		t.Fatal("compatible warm state not resumed")
	}
	if warm1.Iterations > 2 {
		t.Fatalf("unchanged-data resume took %d iterations", warm1.Iterations)
	}
	if !reflect.DeepEqual(warm1.Labels, cold.Labels) {
		t.Fatal("unchanged-data resume changed the partition")
	}
	if rel := math.Abs(warm1.Inertia-cold.Inertia) / cold.Inertia; rel > 1e-9 {
		t.Fatalf("inertia drifted by %g on unchanged data", rel)
	}
	lloydFixedPoint(t, m, warm1, 1e-7)

	warm2, _, _, err := KMeansDenseWarm(m, cfg, ws1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm2, warm1) {
		t.Fatal("second resume not bit-identical to first (not a fixed point)")
	}
}

// TestKMeansWarmDirtyRows perturbs a fraction of rows, marks them dirty,
// and asserts the resumed run reaches a genuine Lloyd fixed point on the
// new data while clean points' bounds stay usable.
func TestKMeansWarmDirtyRows(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := warmTestData(rng, 1000, 6)
	cfg := KMeansConfig{K: 7, Seed: 19, Restarts: 2, Workers: 2}

	_, ws, _, err := KMeansDenseWarm(m, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Perturb 5% of rows and one brand-new-looking row pattern.
	data := m.Data()
	dim := m.Cols()
	for i := 0; i < m.Rows(); i += 20 {
		row := data[i*dim : (i+1)*dim]
		sum := 0.0
		for j := range row {
			row[j] = rng.Float64()
			sum += row[j]
		}
		for j := range row {
			row[j] /= sum
		}
		ws.Labels[i] = -1
	}

	warm, ws2, resumed, err := KMeansDenseWarm(m, cfg, ws)
	if err != nil {
		t.Fatal(err)
	}
	if !resumed {
		t.Fatal("dirty-row warm state not resumed")
	}
	lloydFixedPoint(t, m, warm, 1e-7)

	// The returned state must itself resume to the identical result.
	again, _, _, err := KMeansDenseWarm(m, cfg, ws2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Labels, warm.Labels) {
		t.Fatal("re-resume moved labels after convergence")
	}
}

// TestKMeansWarmIncompatibleFallsBack asserts mismatched state (wrong
// row count, wrong k) silently cold-starts.
func TestKMeansWarmIncompatibleFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := warmTestData(rng, 300, 6)
	cfg := KMeansConfig{K: 4, Seed: 2, Workers: 1}

	_, ws, _, err := KMeansDenseWarm(m, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Row count changed (e.g. users entered the matrix): fall back cold.
	grown := warmTestData(rng, 301, 6)
	_, _, resumed, err := KMeansDenseWarm(grown, cfg, ws)
	if err != nil {
		t.Fatal(err)
	}
	if resumed {
		t.Fatal("row-count-mismatched state resumed")
	}
	// k changed: fall back cold.
	cfg2 := cfg
	cfg2.K = 5
	_, _, resumed, err = KMeansDenseWarm(m, cfg2, ws)
	if err != nil {
		t.Fatal(err)
	}
	if resumed {
		t.Fatal("k-mismatched state resumed")
	}
}

// TestPairwiseCacheBitIdentical asserts a cache refreshed through
// arbitrary dirty patterns always matches PairwiseMatrixWorkers from
// scratch, bit for bit, and that clean refreshes skip recomputation and
// dendrogram reruns.
func TestPairwiseCacheBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n = 30
	m := warmTestData(rng, n, 6)
	rows := make([][]float64, n)
	keys := make([]string, n)
	for i := range rows {
		rows[i] = m.Data()[i*6 : (i+1)*6]
		keys[i] = string(rune('A'+i/26)) + string(rune('a'+i%26))
	}

	pc := &PairwiseCache{}
	dirtySet := map[string]bool{}
	dirty := func(k string) bool { return dirtySet[k] }

	check := func(rows [][]float64, keys []string) [][]float64 {
		t.Helper()
		got, _, err := pc.Refresh(rows, keys, dirty, Bhattacharyya, 2)
		if err != nil {
			t.Fatal(err)
		}
		want, err := PairwiseMatrixWorkers(rows, Bhattacharyya, 2)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			for j := range want[i] {
				if math.Float64bits(got[i][j]) != math.Float64bits(want[i][j]) {
					t.Fatalf("d[%d][%d] = %g want %g", i, j, got[i][j], want[i][j])
				}
			}
		}
		return got
	}

	check(rows, keys)
	d1, err := pc.Dendrogram(AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}

	// Clean refresh: same object back, dendrogram reused.
	d, changed, err := pc.Refresh(rows, keys, dirty, Bhattacharyya, 2)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("clean refresh reported changed")
	}
	if &d[0][0] != &pc.d[0][0] {
		t.Fatal("clean refresh rebuilt the matrix")
	}
	d2, err := pc.Dendrogram(AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatal("clean refresh reran the dendrogram")
	}

	// Dirty a few rows, change their data.
	for _, i := range []int{3, 17} {
		rows[i][0], rows[i][1] = rows[i][1], rows[i][0]
		dirtySet[keys[i]] = true
	}
	check(rows, keys)
	dirtySet = map[string]bool{}
	d3, err := pc.Dendrogram(AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	want3, err := Agglomerative(pc.d, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d3, want3) {
		t.Fatal("post-change dendrogram differs from scratch")
	}

	// Drop a row and add a new key (state set changes between epochs).
	rows2 := append(append([][]float64{}, rows[:10]...), rows[11:]...)
	keys2 := append(append([]string{}, keys[:10]...), keys[11:]...)
	newRow := []float64{0.5, 0.1, 0.1, 0.1, 0.1, 0.1}
	rows2 = append(rows2, newRow)
	keys2 = append(keys2, "ZZ")
	check(rows2, keys2)
}
