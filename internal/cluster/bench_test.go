package cluster

import (
	"math/rand/v2"
	"testing"
)

// benchMatrix builds an n×dim matrix of random discrete distributions,
// the shape of the paper's Û attention rows.
func benchMatrix(n, dim int, seed uint64) [][]float64 {
	r := rand.New(rand.NewPCG(seed, 0xbe))
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = randDist(r, dim)
	}
	return rows
}

// BenchmarkKMeans is the Figure 7 workload at paper scale: 10k users ×
// 6 organs, k = 12. This benchmark (with BenchmarkAgglomerative) is the
// regression gate for the analytics engine; its archived baseline lives
// in BENCH_analytics_before.{txt,json}.
func BenchmarkKMeans(b *testing.B) {
	rows := benchMatrix(10000, 6, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMeans(rows, KMeansConfig{K: 12, Seed: 1, Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAgglomerative is the Figure 6 workload scaled up: a 500×500
// precomputed distance matrix under average linkage.
func BenchmarkAgglomerative(b *testing.B) {
	rows := benchMatrix(500, 6, 2)
	m, err := PairwiseMatrix(rows, Bhattacharyya)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Agglomerative(m, AverageLinkage); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSilhouette measures the exact (unsampled) silhouette pass
// over 2000 points, the O(n²) part of the model-selection sweep.
func BenchmarkSilhouette(b *testing.B) {
	rows := benchMatrix(2000, 6, 3)
	res, err := KMeans(rows, KMeansConfig{K: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Silhouette(rows, res.Labels, Euclidean); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPairwiseMatrix measures the full symmetric distance matrix
// over 500 distribution rows (the input of BenchmarkAgglomerative).
func BenchmarkPairwiseMatrix(b *testing.B) {
	rows := benchMatrix(500, 6, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PairwiseMatrix(rows, Bhattacharyya); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepK is the model-selection sweep end to end on a reduced
// corpus: K-Means plus sampled silhouette for each candidate k.
func BenchmarkSweepK(b *testing.B) {
	rows := benchMatrix(2000, 6, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SweepK(rows, []int{4, 8, 12}, 1, 500); err != nil {
			b.Fatal(err)
		}
	}
}
