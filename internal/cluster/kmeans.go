package cluster

import (
	"fmt"
	"math"
	"math/rand/v2"

	"donorsense/internal/mat"
)

// KMeansResult is the outcome of one K-Means run.
type KMeansResult struct {
	K          int
	Centroids  [][]float64
	Labels     []int
	Inertia    float64 // sum of squared distances to assigned centroids
	Iterations int
	Sizes      []int // points per cluster
}

// KMeansConfig parameterizes a K-Means run.
type KMeansConfig struct {
	K int
	// MaxIterations bounds Lloyd iterations (default 100).
	MaxIterations int
	// Tolerance stops iteration when no centroid moves more than this
	// (squared distance; default 1e-9).
	Tolerance float64
	// Seed drives the k-means++ initialization.
	Seed uint64
	// Restarts runs the algorithm this many times with different seeds
	// and keeps the lowest-inertia result (default 1).
	Restarts int
	// Workers bounds the concurrency of the assignment pass and of the
	// restarts (0 = GOMAXPROCS). Any worker count produces bit-identical
	// results: the assignment pass reduces over fixed-size row chunks
	// whose partial sums are folded in chunk order, never in scheduling
	// order.
	Workers int
}

// assignChunkRows is the fixed row-chunk granularity of the assignment
// pass. It is deliberately independent of the worker count: the chunk
// decomposition (and therefore every floating-point fold) is identical
// whether one goroutine walks the chunks or eight do.
const assignChunkRows = 1024

// KMeans clusters the rows into cfg.K clusters using k-means++
// initialization and Lloyd's algorithm with Hamerly's triangle-
// inequality pruning. This is the algorithm behind the paper's Figure 7
// user clustering (k = 12, chosen via silhouette / inertia /
// average-cluster-size sweeps). It copies rows into a flat matrix once;
// callers that already hold a *mat.Dense should use KMeansDense, which
// runs zero-copy.
func KMeans(rows [][]float64, cfg KMeansConfig) (*KMeansResult, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("cluster: kmeans on empty data")
	}
	m, err := denseFromRows(rows)
	if err != nil {
		return nil, fmt.Errorf("cluster: kmeans: %w", err)
	}
	return KMeansDense(m, cfg)
}

// KMeansDense is KMeans over a flat row-major matrix, without copying
// the data.
func KMeansDense(m *mat.Dense, cfg KMeansConfig) (*KMeansResult, error) {
	n := m.Rows()
	if cfg.K < 1 || cfg.K > n {
		return nil, fmt.Errorf("cluster: kmeans k=%d with n=%d", cfg.K, n)
	}
	maxIter := cfg.MaxIterations
	if maxIter <= 0 {
		maxIter = 100
	}
	tol := cfg.Tolerance
	if tol <= 0 {
		tol = 1e-9
	}
	restarts := cfg.Restarts
	if restarts <= 0 {
		restarts = 1
	}
	workers := resolveWorkers(cfg.Workers)

	// Restarts are independent runs (each owns its PCG stream), so they
	// run concurrently; each still chunk-parallelizes its assignment
	// pass. The best pick scans attempts in order with a strict <, so
	// the earliest attempt wins inertia ties exactly as a sequential
	// loop would.
	results := make([]*KMeansResult, restarts)
	parallelChunks(restarts, workers, func(attempt int) {
		r := rand.New(rand.NewPCG(cfg.Seed, uint64(attempt)))
		results[attempt] = kmeansOnce(m, cfg.K, maxIter, tol, r, workers)
	})
	best := results[0]
	for _, res := range results[1:] {
		if res.Inertia < best.Inertia {
			best = res
		}
	}
	return best, nil
}

// kmeansRun is the per-restart state of the pruned Lloyd iteration. All
// per-point slices are chunk-owned during parallel passes; all global
// reductions fold per-chunk partials in chunk index order, making every
// run bit-identical for any worker count.
type kmeansRun struct {
	data    []float64 // n×dim row-major points
	n, dim  int
	k       int
	workers int

	pos    []float64 // k×dim current centroid positions
	oldPos []float64 // k×dim scratch for the previous positions
	sums   []float64 // k×dim running per-cluster vector sums
	counts []int     // points per cluster (maintained incrementally)

	labels []int
	upper  []float64 // u(i): upper bound on d(x_i, pos[labels[i]])
	lower  []float64 // l(i): lower bound on d(x_i, second-closest centroid)

	half  []float64 // s(c): half the distance from c to its nearest other centroid
	drift []float64 // per-centroid movement of the last update

	parts []kmeansChunk
}

// kmeansChunk is one chunk's contribution to a pass: vector-sum and
// count deltas from reassignments, plus the chunk's farthest-point
// candidate for empty-cluster repair.
type kmeansChunk struct {
	deltaSums []float64 // k×dim
	deltaCnt  []int     // k
	farIdx    int
	farD      float64
}

func kmeansOnce(m *mat.Dense, k, maxIter int, tol float64, r *rand.Rand, workers int) *KMeansResult {
	n, dim := m.Rows(), m.Cols()
	run := &kmeansRun{
		data: m.Data(), n: n, dim: dim, k: k, workers: workers,
		pos:    kmeansPlusPlusInit(m, k, r),
		oldPos: make([]float64, k*dim),
		sums:   make([]float64, k*dim),
		counts: make([]int, k),
		labels: make([]int, n),
		upper:  make([]float64, n),
		lower:  make([]float64, n),
		half:   make([]float64, k),
		drift:  make([]float64, k),
	}
	nChunks := (n + assignChunkRows - 1) / assignChunkRows
	run.parts = make([]kmeansChunk, nChunks)
	for i := range run.parts {
		run.parts[i] = kmeansChunk{deltaSums: make([]float64, k*dim), deltaCnt: make([]int, k)}
	}

	run.initialAssign()
	iter := 0
	for ; iter < maxIter; iter++ {
		run.refreshHalf()
		run.assignPruned()
		if moved := run.updateCentroids(); moved <= tol {
			break
		}
	}
	labels, sizes, inertia := run.finalAssign()
	cents := make([][]float64, k)
	for c := range cents {
		cents[c] = run.pos[c*dim : c*dim+dim : c*dim+dim]
	}
	return &KMeansResult{
		K:          k,
		Centroids:  cents,
		Labels:     labels,
		Inertia:    inertia,
		Iterations: iter + 1,
		Sizes:      sizes,
	}
}

// initialAssign runs one exact pass: every point finds its two closest
// centroids, seeding labels, both bounds, and the per-cluster sums.
func (run *kmeansRun) initialAssign() {
	parallelChunks(len(run.parts), run.workers, func(c int) {
		p := &run.parts[c]
		lo, hi := run.chunkBounds(c)
		run.resetChunk(p)
		for i := lo; i < hi; i++ {
			row := run.row(i)
			bi, bd, sd := run.closestTwo(row)
			run.labels[i] = bi
			run.upper[i] = math.Sqrt(bd)
			run.lower[i] = math.Sqrt(sd)
			p.deltaCnt[bi]++
			addTo(p.deltaSums[bi*run.dim:(bi+1)*run.dim], row)
		}
	})
	run.foldDeltas()
}

// assignPruned is the Hamerly-pruned assignment pass. A point whose
// upper bound stays below max(s(label), lower) provably keeps its
// assignment and skips the centroid scan entirely; everything else
// tightens its upper bound and, if still unresolved, rescans exactly.
// Reassignments are folded as per-chunk sum/count deltas in chunk order.
func (run *kmeansRun) assignPruned() {
	parallelChunks(len(run.parts), run.workers, func(c int) {
		p := &run.parts[c]
		lo, hi := run.chunkBounds(c)
		run.resetChunk(p)
		maxDrift := 0.0
		for _, d := range run.drift {
			if d > maxDrift {
				maxDrift = d
			}
		}
		for i := lo; i < hi; i++ {
			a := run.labels[i]
			// Carry the bounds across the last centroid move.
			u := run.upper[i] + run.drift[a]
			l := run.lower[i] - maxDrift
			m := run.half[a]
			if l > m {
				m = l
			}
			if u <= m {
				run.upper[i], run.lower[i] = u, l
				if u > p.farD {
					p.farD, p.farIdx = u, i
				}
				continue
			}
			row := run.row(i)
			// Tighten: the exact distance may already satisfy the bound.
			u = math.Sqrt(sqDistTo(row, run.pos[a*run.dim:(a+1)*run.dim]))
			if u <= m {
				run.upper[i], run.lower[i] = u, l
				if u > p.farD {
					p.farD, p.farIdx = u, i
				}
				continue
			}
			bi, bd, sd := run.closestTwo(row)
			run.upper[i] = math.Sqrt(bd)
			run.lower[i] = math.Sqrt(sd)
			if run.upper[i] > p.farD {
				p.farD, p.farIdx = run.upper[i], i
			}
			if bi != a {
				run.labels[i] = bi
				p.deltaCnt[a]--
				p.deltaCnt[bi]++
				dim := run.dim
				subFrom(p.deltaSums[a*dim:(a+1)*dim], row)
				addTo(p.deltaSums[bi*dim:(bi+1)*dim], row)
			}
		}
	})
	run.foldDeltas()
}

// updateCentroids recomputes positions from the running sums, repairs
// empty clusters at the farthest-by-bound point, and records per-
// centroid drift for the next pass's bound updates. It returns the
// total squared movement (the Lloyd convergence measure).
func (run *kmeansRun) updateCentroids() float64 {
	dim := run.dim
	copy(run.oldPos, run.pos)
	// Farthest candidate folded in chunk order: lowest index wins ties.
	farIdx, farD := 0, -1.0
	for c := range run.parts {
		if run.parts[c].farD > farD {
			farD, farIdx = run.parts[c].farD, run.parts[c].farIdx
		}
	}
	moved := 0.0
	for c := 0; c < run.k; c++ {
		nc := run.pos[c*dim : (c+1)*dim]
		if run.counts[c] == 0 {
			// Empty cluster: re-seed at the point farthest from its
			// centroid (by the maintained bound), the standard repair.
			copy(nc, run.row(farIdx))
			run.drift[c] = math.Sqrt(sqDistTo(run.oldPos[c*dim:(c+1)*dim], nc))
			moved += 1 // force another iteration
			continue
		}
		inv := 1 / float64(run.counts[c])
		sums := run.sums[c*dim : (c+1)*dim]
		for j := range nc {
			nc[j] = sums[j] * inv
		}
		d2 := sqDistTo(run.oldPos[c*dim:(c+1)*dim], nc)
		run.drift[c] = math.Sqrt(d2)
		moved += d2
	}
	return moved
}

// finalAssign runs one exact pass against the final centroids and
// returns fresh labels, sizes, and the exact inertia, folded in chunk
// order.
func (run *kmeansRun) finalAssign() ([]int, []int, float64) {
	type finalPart struct {
		sizes   []int
		inertia float64
	}
	parts := make([]finalPart, len(run.parts))
	parallelChunks(len(run.parts), run.workers, func(c int) {
		parts[c].sizes = make([]int, run.k)
		lo, hi := run.chunkBounds(c)
		for i := lo; i < hi; i++ {
			bi, bd, _ := run.closestTwo(run.row(i))
			run.labels[i] = bi
			parts[c].sizes[bi]++
			parts[c].inertia += bd
		}
	})
	sizes := make([]int, run.k)
	inertia := 0.0
	for c := range parts {
		inertia += parts[c].inertia
		for i, s := range parts[c].sizes {
			sizes[i] += s
		}
	}
	return run.labels, sizes, inertia
}

// refreshHalf recomputes s(c), half the distance from each centroid to
// its nearest other centroid — the cheap O(k²) part of the Hamerly
// bound.
func (run *kmeansRun) refreshHalf() {
	dim := run.dim
	for c := 0; c < run.k; c++ {
		best := math.Inf(1)
		pc := run.pos[c*dim : (c+1)*dim]
		for o := 0; o < run.k; o++ {
			if o == c {
				continue
			}
			if d := sqDistTo(pc, run.pos[o*dim:(o+1)*dim]); d < best {
				best = d
			}
		}
		run.half[c] = 0.5 * math.Sqrt(best)
	}
}

func (run *kmeansRun) chunkBounds(c int) (int, int) {
	lo := c * assignChunkRows
	hi := lo + assignChunkRows
	if hi > run.n {
		hi = run.n
	}
	return lo, hi
}

func (run *kmeansRun) row(i int) []float64 {
	return run.data[i*run.dim : (i+1)*run.dim]
}

func (run *kmeansRun) resetChunk(p *kmeansChunk) {
	for i := range p.deltaSums {
		p.deltaSums[i] = 0
	}
	for i := range p.deltaCnt {
		p.deltaCnt[i] = 0
	}
	p.farIdx, p.farD = 0, -1
}

// foldDeltas applies every chunk's sum/count deltas in chunk index
// order — the only place assignment results meet shared state.
func (run *kmeansRun) foldDeltas() {
	for c := range run.parts {
		p := &run.parts[c]
		for i, v := range p.deltaSums {
			run.sums[i] += v
		}
		for i, v := range p.deltaCnt {
			run.counts[i] += v
		}
	}
}

// closestTwo returns the nearest centroid index and the squared
// distances to the nearest and second-nearest centroids.
func (run *kmeansRun) closestTwo(row []float64) (int, float64, float64) {
	if run.dim == 6 {
		return closestTwo6(row, run.pos, run.k)
	}
	return closestTwoGeneric(row, run.pos, run.k, run.dim)
}

// closestTwo6 is the dim=6 scan kernel — the paper's matrices are six
// organs wide, so the Figure 7 hot loop runs fully unrolled with the
// same left-to-right summation order as the generic kernel.
func closestTwo6(row []float64, centroids []float64, k int) (int, float64, float64) {
	x := [6]float64(row[:6])
	bi, bd, sd := 0, math.Inf(1), math.Inf(1)
	for c := 0; c < k; c++ {
		cl := [6]float64(centroids[c*6 : c*6+6])
		d0 := x[0] - cl[0]
		d1 := x[1] - cl[1]
		d2 := x[2] - cl[2]
		d3 := x[3] - cl[3]
		d4 := x[4] - cl[4]
		d5 := x[5] - cl[5]
		s := d0*d0 + d1*d1 + d2*d2 + d3*d3 + d4*d4 + d5*d5
		if s < bd {
			sd, bd, bi = bd, s, c
		} else if s < sd {
			sd = s
		}
	}
	return bi, bd, sd
}

// closestTwoGeneric is the any-dimension scan kernel.
func closestTwoGeneric(row, centroids []float64, k, dim int) (int, float64, float64) {
	bi, bd, sd := 0, math.Inf(1), math.Inf(1)
	for c := 0; c < k; c++ {
		cent := centroids[c*dim : (c+1)*dim]
		s := 0.0
		for j, v := range row {
			d := v - cent[j]
			s += d * d
		}
		if s < bd {
			sd, bd, bi = bd, s, c
		} else if s < sd {
			sd = s
		}
	}
	return bi, bd, sd
}

// sqDistTo is the squared Euclidean distance between two equal-length
// flat vectors, without the public Distance guard (callers here slice
// from the same matrices).
func sqDistTo(a, b []float64) float64 {
	s := 0.0
	for j, v := range a {
		d := v - b[j]
		s += d * d
	}
	return s
}

func addTo(dst, src []float64) {
	for j, v := range src {
		dst[j] += v
	}
}

func subFrom(dst, src []float64) {
	for j, v := range src {
		dst[j] -= v
	}
}

// kmeansPlusPlusInit seeds centroids with the k-means++ scheme: first
// centroid uniform, each next one sampled proportionally to the squared
// distance from the nearest already-chosen centroid. It consumes the
// same RNG sequence as the historical [][]float64 implementation, so
// seeds keep selecting the same starting points.
func kmeansPlusPlusInit(m *mat.Dense, k int, r *rand.Rand) []float64 {
	n, dim := m.Rows(), m.Cols()
	data := m.Data()
	centroids := make([]float64, dim, k*dim)
	first := r.IntN(n)
	copy(centroids, data[first*dim:(first+1)*dim])

	d2 := make([]float64, n)
	last := centroids[:dim]
	for i := range d2 {
		d2[i] = sqDistTo(data[i*dim:i*dim+dim], last)
	}
	for chosen := 1; chosen < k; chosen++ {
		total := 0.0
		for _, d := range d2 {
			total += d
		}
		var idx int
		if total == 0 {
			// All remaining points coincide with centroids; pick uniform.
			idx = r.IntN(n)
		} else {
			x := r.Float64() * total
			for i, d := range d2 {
				x -= d
				if x <= 0 {
					idx = i
					break
				}
			}
		}
		centroids = append(centroids, data[idx*dim:(idx+1)*dim]...)
		last = centroids[chosen*dim : (chosen+1)*dim]
		for i := range d2 {
			if d := sqDistTo(data[i*dim:i*dim+dim], last); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centroids
}
