package cluster

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// KMeansResult is the outcome of one K-Means run.
type KMeansResult struct {
	K          int
	Centroids  [][]float64
	Labels     []int
	Inertia    float64 // sum of squared distances to assigned centroids
	Iterations int
	Sizes      []int // points per cluster
}

// KMeansConfig parameterizes a K-Means run.
type KMeansConfig struct {
	K int
	// MaxIterations bounds Lloyd iterations (default 100).
	MaxIterations int
	// Tolerance stops iteration when no centroid moves more than this
	// (squared distance; default 1e-9).
	Tolerance float64
	// Seed drives the k-means++ initialization.
	Seed uint64
	// Restarts runs the algorithm this many times with different seeds
	// and keeps the lowest-inertia result (default 1).
	Restarts int
}

// KMeans clusters the rows into cfg.K clusters using k-means++
// initialization and Lloyd's algorithm. This is the algorithm behind the
// paper's Figure 7 user clustering (k = 12, chosen via silhouette /
// inertia / average-cluster-size sweeps).
func KMeans(rows [][]float64, cfg KMeansConfig) (*KMeansResult, error) {
	n := len(rows)
	if n == 0 {
		return nil, fmt.Errorf("cluster: kmeans on empty data")
	}
	if cfg.K < 1 || cfg.K > n {
		return nil, fmt.Errorf("cluster: kmeans k=%d with n=%d", cfg.K, n)
	}
	dim := len(rows[0])
	for i, r := range rows {
		if len(r) != dim {
			return nil, fmt.Errorf("cluster: row %d has %d cols, want %d", i, len(r), dim)
		}
	}
	maxIter := cfg.MaxIterations
	if maxIter <= 0 {
		maxIter = 100
	}
	tol := cfg.Tolerance
	if tol <= 0 {
		tol = 1e-9
	}
	restarts := cfg.Restarts
	if restarts <= 0 {
		restarts = 1
	}

	var best *KMeansResult
	for attempt := 0; attempt < restarts; attempt++ {
		r := rand.New(rand.NewPCG(cfg.Seed, uint64(attempt)))
		res := kmeansOnce(rows, cfg.K, maxIter, tol, r)
		if best == nil || res.Inertia < best.Inertia {
			best = res
		}
	}
	return best, nil
}

func kmeansOnce(rows [][]float64, k, maxIter int, tol float64, r *rand.Rand) *KMeansResult {
	n, dim := len(rows), len(rows[0])
	centroids := kmeansPlusPlusInit(rows, k, r)
	labels := make([]int, n)
	sizes := make([]int, k)

	var inertia float64
	iter := 0
	for ; iter < maxIter; iter++ {
		// Assignment step.
		inertia = 0
		for i := range sizes {
			sizes[i] = 0
		}
		for i, row := range rows {
			bi, bd := 0, math.Inf(1)
			for c := range centroids {
				if d := SquaredEuclidean(row, centroids[c]); d < bd {
					bd, bi = d, c
				}
			}
			labels[i] = bi
			sizes[bi]++
			inertia += bd
		}
		// Update step.
		newCentroids := make([][]float64, k)
		for c := range newCentroids {
			newCentroids[c] = make([]float64, dim)
		}
		for i, row := range rows {
			c := newCentroids[labels[i]]
			for j, v := range row {
				c[j] += v
			}
		}
		moved := 0.0
		for c := range newCentroids {
			if sizes[c] == 0 {
				// Empty cluster: re-seed at the point farthest from its
				// centroid, the standard repair.
				far, fd := 0, -1.0
				for i, row := range rows {
					if d := SquaredEuclidean(row, centroids[labels[i]]); d > fd {
						fd, far = d, i
					}
				}
				copy(newCentroids[c], rows[far])
				moved += 1 // force another iteration
				continue
			}
			inv := 1 / float64(sizes[c])
			for j := range newCentroids[c] {
				newCentroids[c][j] *= inv
			}
			moved += SquaredEuclidean(centroids[c], newCentroids[c])
		}
		centroids = newCentroids
		if moved <= tol {
			break
		}
	}

	// Final assignment against the last centroids.
	inertia = 0
	for i := range sizes {
		sizes[i] = 0
	}
	for i, row := range rows {
		bi, bd := 0, math.Inf(1)
		for c := range centroids {
			if d := SquaredEuclidean(row, centroids[c]); d < bd {
				bd, bi = d, c
			}
		}
		labels[i] = bi
		sizes[bi]++
		inertia += bd
	}
	return &KMeansResult{
		K:          k,
		Centroids:  centroids,
		Labels:     labels,
		Inertia:    inertia,
		Iterations: iter + 1,
		Sizes:      sizes,
	}
}

// kmeansPlusPlusInit seeds centroids with the k-means++ scheme: first
// centroid uniform, each next one sampled proportionally to the squared
// distance from the nearest already-chosen centroid.
func kmeansPlusPlusInit(rows [][]float64, k int, r *rand.Rand) [][]float64 {
	n := len(rows)
	centroids := make([][]float64, 0, k)
	first := rows[r.IntN(n)]
	centroids = append(centroids, append([]float64(nil), first...))

	d2 := make([]float64, n)
	for i, row := range rows {
		d2[i] = SquaredEuclidean(row, centroids[0])
	}
	for len(centroids) < k {
		total := 0.0
		for _, d := range d2 {
			total += d
		}
		var idx int
		if total == 0 {
			// All remaining points coincide with centroids; pick uniform.
			idx = r.IntN(n)
		} else {
			x := r.Float64() * total
			for i, d := range d2 {
				x -= d
				if x <= 0 {
					idx = i
					break
				}
			}
		}
		c := append([]float64(nil), rows[idx]...)
		centroids = append(centroids, c)
		for i, row := range rows {
			if d := SquaredEuclidean(row, c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centroids
}

// Silhouette computes the mean silhouette coefficient of a labelling
// under the given distance. For large n, SilhouetteSampled is cheaper.
func Silhouette(rows [][]float64, labels []int, d Distance) (float64, error) {
	return silhouette(rows, labels, d, nil)
}

// SilhouetteSampled estimates the silhouette coefficient from a random
// sample of at most sampleSize points (deterministic for a given seed).
// The paper reports a silhouette for 72k users; the exact computation is
// O(n²) and needs sampling at that scale.
func SilhouetteSampled(rows [][]float64, labels []int, d Distance, sampleSize int, seed uint64) (float64, error) {
	if sampleSize <= 0 || sampleSize >= len(rows) {
		return silhouette(rows, labels, d, nil)
	}
	r := rand.New(rand.NewPCG(seed, 0x51))
	idx := r.Perm(len(rows))[:sampleSize]
	return silhouette(rows, labels, d, idx)
}

// silhouette computes the mean silhouette over the given sample indices
// (nil means all points). Distances a(i)/b(i) are computed against the
// full dataset, only the averaging is sampled.
func silhouette(rows [][]float64, labels []int, d Distance, sample []int) (float64, error) {
	n := len(rows)
	if n != len(labels) {
		return 0, fmt.Errorf("cluster: %d rows, %d labels", n, len(labels))
	}
	k := 0
	for _, l := range labels {
		if l < 0 {
			return 0, fmt.Errorf("cluster: negative label")
		}
		if l+1 > k {
			k = l + 1
		}
	}
	if k < 2 {
		return 0, fmt.Errorf("cluster: silhouette needs at least 2 clusters")
	}
	counts := make([]int, k)
	for _, l := range labels {
		counts[l]++
	}

	indices := sample
	if indices == nil {
		indices = make([]int, n)
		for i := range indices {
			indices[i] = i
		}
	}
	sum := 0.0
	used := 0
	sums := make([]float64, k)
	for _, i := range indices {
		if counts[labels[i]] < 2 {
			continue // silhouette undefined for singleton's member
		}
		for c := range sums {
			sums[c] = 0
		}
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			sums[labels[j]] += d(rows[i], rows[j])
		}
		a := sums[labels[i]] / float64(counts[labels[i]]-1)
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == labels[i] || counts[c] == 0 {
				continue
			}
			if v := sums[c] / float64(counts[c]); v < b {
				b = v
			}
		}
		den := math.Max(a, b)
		if den > 0 {
			sum += (b - a) / den
		}
		used++
	}
	if used == 0 {
		return 0, fmt.Errorf("cluster: no valid silhouette points")
	}
	return sum / float64(used), nil
}

// SweepResult summarizes one k in a model-selection sweep.
type SweepResult struct {
	K          int
	Inertia    float64
	Silhouette float64
	AvgSize    float64
	MinSize    int
}

// SweepK runs K-Means for each k in ks and reports the selection metrics
// the paper compares (inertia, silhouette coefficient, average cluster
// size). silhouetteSample bounds the silhouette computation (0 = exact).
func SweepK(rows [][]float64, ks []int, seed uint64, silhouetteSample int) ([]SweepResult, error) {
	out := make([]SweepResult, 0, len(ks))
	for _, k := range ks {
		res, err := KMeans(rows, KMeansConfig{K: k, Seed: seed, Restarts: 2})
		if err != nil {
			return nil, fmt.Errorf("cluster: sweep k=%d: %w", k, err)
		}
		sil, err := SilhouetteSampled(rows, res.Labels, Euclidean, silhouetteSample, seed)
		if err != nil {
			return nil, fmt.Errorf("cluster: sweep silhouette k=%d: %w", k, err)
		}
		minSize := res.Sizes[0]
		for _, s := range res.Sizes {
			if s < minSize {
				minSize = s
			}
		}
		out = append(out, SweepResult{
			K:          k,
			Inertia:    res.Inertia,
			Silhouette: sil,
			AvgSize:    float64(len(rows)) / float64(k),
			MinSize:    minSize,
		})
	}
	return out, nil
}
