package cluster

import (
	"fmt"
	"math"
	"math/rand/v2"
	"reflect"
	"sync"
	"testing"
)

// detCorpus is the shared seeded 10k×6 corpus for the bit-identity
// tests (paper-scale shape: 10k users × 6 organs).
func detCorpus(t testing.TB) ([][]float64, int) {
	t.Helper()
	n := 10000
	if testing.Short() {
		n = 2000
	}
	return benchMatrix(n, 6, 7), n
}

// TestKMeansWorkersBitIdentical is the parallel-determinism contract:
// any worker count must reproduce the sequential run bit for bit —
// centroids, labels, inertia, sizes, iterations. The chunked assignment
// folds its partials in chunk order, so this holds by construction; the
// test guards the construction.
func TestKMeansWorkersBitIdentical(t *testing.T) {
	rows, _ := detCorpus(t)
	base, err := KMeans(rows, KMeansConfig{K: 12, Seed: 3, Restarts: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 4, 8} {
		got, err := KMeans(rows, KMeansConfig{K: 12, Seed: 3, Restarts: 2, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if got.Inertia != base.Inertia {
			t.Fatalf("workers=%d inertia %v, want %v (bit-identical)", w, got.Inertia, base.Inertia)
		}
		if got.Iterations != base.Iterations {
			t.Fatalf("workers=%d iterations %d, want %d", w, got.Iterations, base.Iterations)
		}
		if !reflect.DeepEqual(got.Labels, base.Labels) {
			t.Fatalf("workers=%d labels differ from sequential", w)
		}
		if !reflect.DeepEqual(got.Sizes, base.Sizes) {
			t.Fatalf("workers=%d sizes %v, want %v", w, got.Sizes, base.Sizes)
		}
		for c := range base.Centroids {
			if !reflect.DeepEqual(got.Centroids[c], base.Centroids[c]) {
				t.Fatalf("workers=%d centroid %d differs from sequential", w, c)
			}
		}
	}
}

// TestSweepKWorkersBitIdentical checks the whole model-selection sweep
// (K-Means + sampled silhouette per k) for bit-identity across worker
// counts, including the silhouette coefficients.
func TestSweepKWorkersBitIdentical(t *testing.T) {
	rows, _ := detCorpus(t)
	ks := []int{4, 8, 12}
	base, err := SweepK(rows, ks, 1, 500)
	if err != nil {
		t.Fatal(err)
	}
	m, err := denseFromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 4} {
		got, err := SweepKDense(m, ks, 1, 500, w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d sweep %+v, want %+v", w, got, base)
		}
	}
}

// TestSilhouetteWorkersBitIdentical checks the exact silhouette pass
// across worker counts.
func TestSilhouetteWorkersBitIdentical(t *testing.T) {
	rows := benchMatrix(1500, 6, 9)
	m, err := denseFromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	res, err := KMeansDense(m, KMeansConfig{K: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	base, err := SilhouetteDense(m, res.Labels, Euclidean, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 7} {
		got, err := SilhouetteDense(m, res.Labels, Euclidean, w)
		if err != nil {
			t.Fatal(err)
		}
		if got != base {
			t.Fatalf("workers=%d silhouette %v, want %v (bit-identical)", w, got, base)
		}
	}
}

// TestPairwiseMatrixWorkersBitIdentical checks the distance matrix pass
// across worker counts.
func TestPairwiseMatrixWorkersBitIdentical(t *testing.T) {
	rows := benchMatrix(300, 6, 11)
	base, err := PairwiseMatrixWorkers(rows, Bhattacharyya, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4} {
		got, err := PairwiseMatrixWorkers(rows, Bhattacharyya, w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d pairwise matrix differs from sequential", w)
		}
	}
}

// euclideanPointMatrix builds a pairwise Euclidean distance matrix from
// random points — the geometry Ward linkage is defined over.
func euclideanPointMatrix(t *testing.T, n, dim int, seed uint64) [][]float64 {
	t.Helper()
	r := rand.New(rand.NewPCG(seed, 0xe))
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, dim)
		for j := range rows[i] {
			rows[i][j] = r.Float64() * 10
		}
	}
	m, err := PairwiseMatrix(rows, Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestNNChainMatchesNaive pits the O(n²) nearest-neighbor-chain
// implementation against the retained O(n³) naive oracle on random
// matrices, for every linkage: merge heights must agree to float
// tolerance, and every dendrogram cut must induce the same partition.
// NN-chain may discover reciprocal pairs in a different order than the
// global-minimum scan, so heights are compared as sorted sequences and
// structure via partitions.
func TestNNChainMatchesNaive(t *testing.T) {
	for _, tc := range []struct {
		name    string
		linkage Linkage
	}{
		{"single", SingleLinkage},
		{"complete", CompleteLinkage},
		{"average", AverageLinkage},
		{"ward", WardLinkage},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, n := range []int{2, 3, 7, 25, 60} {
				var dist [][]float64
				if tc.linkage == WardLinkage {
					dist = euclideanPointMatrix(t, n, 4, uint64(n))
				} else {
					rows := benchMatrix(n, 6, uint64(n)+100)
					var err error
					dist, err = PairwiseMatrix(rows, Bhattacharyya)
					if err != nil {
						t.Fatal(err)
					}
				}
				fast, err := Agglomerative(dist, tc.linkage)
				if err != nil {
					t.Fatal(err)
				}
				naive, err := agglomerativeNaive(dist, tc.linkage)
				if err != nil {
					t.Fatal(err)
				}
				fh, nh := fast.Heights(), naive.Heights()
				if len(fh) != len(nh) {
					t.Fatalf("n=%d: %d merges, oracle has %d", n, len(fh), len(nh))
				}
				for i := range fh {
					if math.Abs(fh[i]-nh[i]) > 1e-9*(1+math.Abs(nh[i])) {
						t.Fatalf("n=%d merge %d height %v, oracle %v", n, i, fh[i], nh[i])
					}
				}
				for k := 1; k <= n; k += 1 + n/6 {
					fc, err := fast.Cut(k)
					if err != nil {
						t.Fatal(err)
					}
					nc, err := naive.Cut(k)
					if err != nil {
						t.Fatal(err)
					}
					if !labelsMatch(fc, nc) {
						t.Fatalf("n=%d cut k=%d partitions differ from oracle", n, k)
					}
				}
			}
		})
	}
}

// TestDistanceMismatchedLengthsPanic locks the documented panic
// contract of every exported Distance.
func TestDistanceMismatchedLengthsPanic(t *testing.T) {
	for _, tc := range []struct {
		name string
		d    Distance
	}{
		{"euclidean", Euclidean},
		{"squared_euclidean", SquaredEuclidean},
		{"bhattacharyya", Bhattacharyya},
		{"hellinger", Hellinger},
		{"jensen_shannon", JensenShannon},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic on mismatched lengths", tc.name)
				}
			}()
			tc.d([]float64{1, 2, 3}, []float64{1, 2})
		})
	}
}

// TestConcurrentSweepKRace exercises SweepK from several goroutines at
// once over the same shared matrix — the -race CI target runs this to
// prove the chunked passes only write chunk-owned state.
func TestConcurrentSweepKRace(t *testing.T) {
	rows := benchMatrix(600, 6, 13)
	m, err := denseFromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := SweepKDense(m, []int{3, 5}, 1, 200, 4)
			if err == nil && len(res) != 2 {
				err = fmt.Errorf("got %d sweep results, want 2", len(res))
			}
			errs[g] = err
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
