package cluster

import (
	"fmt"
	"math"
	"math/rand/v2"

	"donorsense/internal/mat"
)

// silhouetteChunkPoints is the fixed sample-chunk granularity of the
// silhouette pass. Like assignChunkRows it is independent of the worker
// count, so the decomposition is identical for any parallelism.
const silhouetteChunkPoints = 64

// Silhouette computes the mean silhouette coefficient of a labelling
// under the given distance. For large n, SilhouetteSampled is cheaper.
func Silhouette(rows [][]float64, labels []int, d Distance) (float64, error) {
	return silhouetteRows(rows, labels, d, nil, 0)
}

// SilhouetteDense is Silhouette over a flat row-major matrix, without
// copying the data, fanned out across workers (0 = GOMAXPROCS). Results
// are bit-identical for every worker count.
func SilhouetteDense(m *mat.Dense, labels []int, d Distance, workers int) (float64, error) {
	return silhouette(m, labels, d, nil, workers)
}

// SilhouetteSampled estimates the silhouette coefficient from a random
// sample of at most sampleSize points (deterministic for a given seed).
// The paper reports a silhouette for 72k users; the exact computation is
// O(n²) and needs sampling at that scale.
func SilhouetteSampled(rows [][]float64, labels []int, d Distance, sampleSize int, seed uint64) (float64, error) {
	if sampleSize <= 0 || sampleSize >= len(rows) {
		return silhouetteRows(rows, labels, d, nil, 0)
	}
	r := rand.New(rand.NewPCG(seed, 0x51))
	idx := r.Perm(len(rows))[:sampleSize]
	return silhouetteRows(rows, labels, d, idx, 0)
}

// SilhouetteSampledDense is SilhouetteSampled over a flat matrix.
func SilhouetteSampledDense(m *mat.Dense, labels []int, d Distance, sampleSize int, seed uint64, workers int) (float64, error) {
	if sampleSize <= 0 || sampleSize >= m.Rows() {
		return silhouette(m, labels, d, nil, workers)
	}
	r := rand.New(rand.NewPCG(seed, 0x51))
	idx := r.Perm(m.Rows())[:sampleSize]
	return silhouette(m, labels, d, idx, workers)
}

func silhouetteRows(rows [][]float64, labels []int, d Distance, sample []int, workers int) (float64, error) {
	if len(rows) != len(labels) {
		return 0, fmt.Errorf("cluster: %d rows, %d labels", len(rows), len(labels))
	}
	m, err := denseFromRows(rows)
	if err != nil {
		return 0, fmt.Errorf("cluster: silhouette: %w", err)
	}
	return silhouette(m, labels, d, sample, workers)
}

// silhouette computes the mean silhouette over the given sample indices
// (nil means all points). Distances a(i)/b(i) are computed against the
// full dataset, only the averaging is sampled.
//
// The pass is a chunked parallel sweep: each sample chunk owns its
// points, accumulates per-cluster distance sums (O(workers·k) scratch)
// over all n rows in ascending order, and writes per-point coefficients
// into its own slots; the final mean folds those slots in sample order.
// Every float operation therefore happens in the same order for any
// worker count.
func silhouette(m *mat.Dense, labels []int, d Distance, sample []int, workers int) (float64, error) {
	n, dim := m.Rows(), m.Cols()
	data := m.Data()
	if n != len(labels) {
		return 0, fmt.Errorf("cluster: %d rows, %d labels", n, len(labels))
	}
	k := 0
	for _, l := range labels {
		if l < 0 {
			return 0, fmt.Errorf("cluster: negative label")
		}
		if l+1 > k {
			k = l + 1
		}
	}
	if k < 2 {
		return 0, fmt.Errorf("cluster: silhouette needs at least 2 clusters")
	}
	counts := make([]int, k)
	for _, l := range labels {
		counts[l]++
	}

	indices := sample
	if indices == nil {
		indices = make([]int, n)
		for i := range indices {
			indices[i] = i
		}
	}

	vals := make([]float64, len(indices))
	valid := make([]bool, len(indices))
	nChunks := (len(indices) + silhouetteChunkPoints - 1) / silhouetteChunkPoints
	parallelChunks(nChunks, resolveWorkers(workers), func(c int) {
		sums := make([]float64, k)
		lo := c * silhouetteChunkPoints
		hi := lo + silhouetteChunkPoints
		if hi > len(indices) {
			hi = len(indices)
		}
		for si := lo; si < hi; si++ {
			i := indices[si]
			if counts[labels[i]] < 2 {
				continue // silhouette undefined for singleton's member
			}
			for c := range sums {
				sums[c] = 0
			}
			ri := data[i*dim : i*dim+dim]
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				sums[labels[j]] += d(ri, data[j*dim:j*dim+dim])
			}
			a := sums[labels[i]] / float64(counts[labels[i]]-1)
			b := math.Inf(1)
			for c := 0; c < k; c++ {
				if c == labels[i] || counts[c] == 0 {
					continue
				}
				if v := sums[c] / float64(counts[c]); v < b {
					b = v
				}
			}
			valid[si] = true
			if den := math.Max(a, b); den > 0 {
				vals[si] = (b - a) / den
			}
		}
	})
	sum := 0.0
	used := 0
	for si, ok := range valid {
		if !ok {
			continue
		}
		sum += vals[si]
		used++
	}
	if used == 0 {
		return 0, fmt.Errorf("cluster: no valid silhouette points")
	}
	return sum / float64(used), nil
}

// SweepResult summarizes one k in a model-selection sweep.
type SweepResult struct {
	K          int
	Inertia    float64
	Silhouette float64
	AvgSize    float64
	MinSize    int
}

// SweepK runs K-Means for each k in ks and reports the selection metrics
// the paper compares (inertia, silhouette coefficient, average cluster
// size). silhouetteSample bounds the silhouette computation (0 = exact).
func SweepK(rows [][]float64, ks []int, seed uint64, silhouetteSample int) ([]SweepResult, error) {
	if len(ks) == 0 {
		return nil, nil
	}
	m, err := denseFromRows(rows)
	if err != nil {
		return nil, fmt.Errorf("cluster: sweep: %w", err)
	}
	return SweepKDense(m, ks, seed, silhouetteSample, 0)
}

// SweepKDense is SweepK over a flat matrix. The candidate ks are
// independent model fits, so they run concurrently across workers
// (0 = GOMAXPROCS); each k writes only its own result slot, keeping the
// sweep deterministic for any worker count.
func SweepKDense(m *mat.Dense, ks []int, seed uint64, silhouetteSample int, workers int) ([]SweepResult, error) {
	out := make([]SweepResult, len(ks))
	errs := make([]error, len(ks))
	w := resolveWorkers(workers)
	parallelChunks(len(ks), w, func(i int) {
		k := ks[i]
		res, err := KMeansDense(m, KMeansConfig{K: k, Seed: seed, Restarts: 2, Workers: workers})
		if err != nil {
			errs[i] = fmt.Errorf("cluster: sweep k=%d: %w", k, err)
			return
		}
		sil, err := SilhouetteSampledDense(m, res.Labels, Euclidean, silhouetteSample, seed, workers)
		if err != nil {
			errs[i] = fmt.Errorf("cluster: sweep silhouette k=%d: %w", k, err)
			return
		}
		minSize := res.Sizes[0]
		for _, s := range res.Sizes {
			if s < minSize {
				minSize = s
			}
		}
		out[i] = SweepResult{
			K:          k,
			Inertia:    res.Inertia,
			Silhouette: sil,
			AvgSize:    float64(m.Rows()) / float64(k),
			MinSize:    minSize,
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
