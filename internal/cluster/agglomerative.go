package cluster

import (
	"fmt"
	"math"
	"sort"
)

// Linkage selects how agglomerative clustering measures inter-cluster
// distance.
type Linkage int

// Supported linkages. Average linkage (UPGMA) is the default the paper's
// scikit-learn AgglomerativeClustering uses with a precomputed affinity.
const (
	AverageLinkage Linkage = iota
	SingleLinkage
	CompleteLinkage
	// WardLinkage minimizes within-cluster variance. It assumes the
	// input matrix holds Euclidean distances (the Lance–Williams Ward
	// recurrence operates on their squares); with other metrics the
	// result is a Ward-like heuristic, as in scipy.
	WardLinkage
)

// String returns the linkage name.
func (l Linkage) String() string {
	switch l {
	case AverageLinkage:
		return "average"
	case SingleLinkage:
		return "single"
	case CompleteLinkage:
		return "complete"
	case WardLinkage:
		return "ward"
	}
	return "linkage(?)"
}

// Merge records one agglomeration step: clusters A and B merged at the
// given Height (inter-cluster distance). Cluster ids 0..n−1 are leaves;
// merge i creates cluster n+i.
type Merge struct {
	A, B   int
	Height float64
}

// Dendrogram is the full merge tree of an agglomerative run over n items.
type Dendrogram struct {
	N      int
	Merges []Merge
}

// Agglomerative performs hierarchical clustering on a precomputed
// symmetric distance matrix using the Lance–Williams recurrence for the
// chosen linkage. It returns the dendrogram.
//
// The implementation is the O(n²) nearest-neighbor-chain algorithm over
// a packed condensed (upper-triangle) copy of the matrix: chains of
// nearest neighbors end in reciprocal pairs, and for the reducible
// linkages of this package (single, complete, average, Ward) merging a
// reciprocal pair never invalidates other chains. The merges are then
// sorted by height and relabelled, which reproduces the dendrogram of
// the naive O(n³) greedy scan (kept below as agglomerativeNaive, the
// test oracle) exactly, up to the order of equal-height merges.
func Agglomerative(dist [][]float64, linkage Linkage) (*Dendrogram, error) {
	n := len(dist)
	if n == 0 {
		return nil, fmt.Errorf("cluster: empty distance matrix")
	}
	for i, row := range dist {
		if len(row) != n {
			return nil, fmt.Errorf("cluster: distance matrix row %d has %d cols, want %d", i, len(row), n)
		}
	}
	if n == 1 {
		return &Dendrogram{N: 1}, nil
	}
	cd := condense(dist)
	raw := nnChain(cd, n, linkage)
	return labelMerges(raw, n), nil
}

// condense packs the strict upper triangle of a symmetric n×n matrix
// into a flat slice of n(n−1)/2 elements; condIdx maps (i, j), i≠j, to
// the packed offset.
func condense(dist [][]float64) []float64 {
	n := len(dist)
	cd := make([]float64, n*(n-1)/2)
	p := 0
	for i := 0; i < n; i++ {
		row := dist[i]
		for j := i + 1; j < n; j++ {
			cd[p] = row[j]
			p++
		}
	}
	return cd
}

func condIdx(n, i, j int) int {
	if i > j {
		i, j = j, i
	}
	return i*(2*n-i-1)/2 + (j - i - 1)
}

// rawMerge is an unlabelled NN-chain merge: the two surviving slot
// indices joined, and the inter-cluster distance at which they joined.
type rawMerge struct {
	a, b int
	h    float64
}

// nnChain runs the nearest-neighbor-chain agglomeration over the packed
// condensed matrix, destroying it in the process. size doubles as the
// active mask (0 = retired slot).
func nnChain(cd []float64, n int, linkage Linkage) []rawMerge {
	size := make([]int, n)
	for i := range size {
		size[i] = 1
	}
	chain := make([]int, 0, n)
	merges := make([]rawMerge, 0, n-1)
	start := 0 // lowest possibly-active slot, advanced lazily
	for len(merges) < n-1 {
		if len(chain) == 0 {
			for size[start] == 0 {
				start++
			}
			chain = append(chain, start)
		}
		// Grow the chain by nearest neighbors until it doubles back.
		var x, y int
		var best float64
		for {
			x = chain[len(chain)-1]
			// Prefer the previous chain element on ties — with an exact
			// tie the chain must double back, or equal distances could
			// cycle forever.
			y = -1
			best = math.Inf(1)
			if len(chain) >= 2 {
				y = chain[len(chain)-2]
				best = cd[condIdx(n, x, y)]
			}
			for i := 0; i < n; i++ {
				if size[i] == 0 || i == x {
					continue
				}
				if d := cd[condIdx(n, x, i)]; d < best {
					best, y = d, i
				}
			}
			if y == -1 {
				// Nothing finite remains (e.g. Bhattacharyya on disjoint
				// supports): merge with the first active other slot at
				// +Inf, as the naive scan does.
				for i := 0; i < n; i++ {
					if size[i] != 0 && i != x {
						y = i
						break
					}
				}
			}
			if len(chain) >= 2 && y == chain[len(chain)-2] {
				chain = chain[:len(chain)-2]
				break
			}
			chain = append(chain, y)
		}
		merges = append(merges, rawMerge{a: x, b: y, h: best})

		// Lance–Williams update into slot y; retire slot x.
		nx, ny := float64(size[x]), float64(size[y])
		for i := 0; i < n; i++ {
			if size[i] == 0 || i == x || i == y {
				continue
			}
			dxi := cd[condIdx(n, x, i)]
			dyi := cd[condIdx(n, y, i)]
			var nd float64
			switch linkage {
			case SingleLinkage:
				nd = math.Min(dxi, dyi)
			case CompleteLinkage:
				nd = math.Max(dxi, dyi)
			case WardLinkage:
				ni := float64(size[i])
				tot := nx + ny + ni
				nd2 := ((nx+ni)*dxi*dxi + (ny+ni)*dyi*dyi - ni*best*best) / tot
				if nd2 < 0 {
					nd2 = 0
				}
				nd = math.Sqrt(nd2)
			default: // AverageLinkage
				nd = (nx*dxi + ny*dyi) / (nx + ny)
			}
			cd[condIdx(n, y, i)] = nd
		}
		size[y] += size[x]
		size[x] = 0
	}
	return merges
}

// labelMerges sorts NN-chain merges by height (stable, so equal-height
// merges keep discovery order) and rewrites the slot indices into
// dendrogram cluster ids via union-find: leaves are 0..n−1 and merge i
// creates cluster n+i, the convention the rest of the package and the
// naive oracle share.
func labelMerges(raw []rawMerge, n int) *Dendrogram {
	sort.SliceStable(raw, func(i, j int) bool { return raw[i].h < raw[j].h })
	parent := make([]int, 2*n-1)
	for i := range parent {
		parent[i] = i
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	dg := &Dendrogram{N: n, Merges: make([]Merge, len(raw))}
	for i, m := range raw {
		a, b := find(m.a), find(m.b)
		id := n + i
		parent[a], parent[b] = id, id
		dg.Merges[i] = Merge{A: a, B: b, Height: m.h}
	}
	return dg
}

// agglomerativeNaive is the original O(n³) greedy implementation — a
// full scan for the globally closest active pair at every step. It is
// retained verbatim as the correctness oracle for the NN-chain tests.
func agglomerativeNaive(dist [][]float64, linkage Linkage) (*Dendrogram, error) {
	n := len(dist)
	if n == 0 {
		return nil, fmt.Errorf("cluster: empty distance matrix")
	}
	for i, row := range dist {
		if len(row) != n {
			return nil, fmt.Errorf("cluster: distance matrix row %d has %d cols, want %d", i, len(row), n)
		}
	}
	if n == 1 {
		return &Dendrogram{N: 1}, nil
	}

	// Working copy. d[i][j] holds the current inter-cluster distance for
	// active clusters.
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		copy(d[i], dist[i])
	}
	active := make([]bool, n)
	size := make([]int, n)
	id := make([]int, n) // current dendrogram id of slot i
	for i := range active {
		active[i] = true
		size[i] = 1
		id[i] = i
	}

	dg := &Dendrogram{N: n}
	next := n
	for step := 0; step < n-1; step++ {
		// Find the closest active pair. Distances may be +Inf (e.g.
		// Bhattacharyya on disjoint supports); when nothing finite
		// remains, merge the first active pair at +Inf, as scipy does.
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !active[j] {
					continue
				}
				if bi == -1 || d[i][j] < best {
					best, bi, bj = d[i][j], i, j
				}
			}
		}
		dg.Merges = append(dg.Merges, Merge{A: id[bi], B: id[bj], Height: best})

		// Lance–Williams update into slot bi; deactivate bj.
		for k := 0; k < n; k++ {
			if !active[k] || k == bi || k == bj {
				continue
			}
			var nd float64
			switch linkage {
			case SingleLinkage:
				nd = math.Min(d[bi][k], d[bj][k])
			case CompleteLinkage:
				nd = math.Max(d[bi][k], d[bj][k])
			case WardLinkage:
				si, sj, sk := float64(size[bi]), float64(size[bj]), float64(size[k])
				n := si + sj + sk
				nd2 := ((si+sk)*d[bi][k]*d[bi][k] + (sj+sk)*d[bj][k]*d[bj][k] - sk*best*best) / n
				if nd2 < 0 {
					nd2 = 0
				}
				nd = math.Sqrt(nd2)
			default: // AverageLinkage
				si, sj := float64(size[bi]), float64(size[bj])
				nd = (si*d[bi][k] + sj*d[bj][k]) / (si + sj)
			}
			d[bi][k], d[k][bi] = nd, nd
		}
		size[bi] += size[bj]
		active[bj] = false
		id[bi] = next
		next++
	}
	return dg, nil
}

// Cut returns cluster labels (0-based, contiguous) for exactly k clusters,
// by undoing the last k−1 merges.
func (dg *Dendrogram) Cut(k int) ([]int, error) {
	if k < 1 || k > dg.N {
		return nil, fmt.Errorf("cluster: cut at k=%d with n=%d", k, dg.N)
	}
	// Union-find over the first n−k merges.
	parent := make([]int, dg.N+len(dg.Merges))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < dg.N-k; i++ {
		m := dg.Merges[i]
		newID := dg.N + i
		parent[find(m.A)] = newID
		parent[find(m.B)] = newID
	}
	labels := make([]int, dg.N)
	remap := map[int]int{}
	for i := 0; i < dg.N; i++ {
		root := find(i)
		if _, ok := remap[root]; !ok {
			remap[root] = len(remap)
		}
		labels[i] = remap[root]
	}
	return labels, nil
}

// LeafOrder returns the leaves in dendrogram order (depth-first through
// the final merge), the ordering used to arrange rows/columns of the
// Figure 6 similarity heatmap so that similar states sit together.
func (dg *Dendrogram) LeafOrder() []int {
	if dg.N == 1 {
		return []int{0}
	}
	children := map[int][2]int{}
	for i, m := range dg.Merges {
		children[dg.N+i] = [2]int{m.A, m.B}
	}
	var order []int
	var walk func(int)
	walk = func(node int) {
		if node < dg.N {
			order = append(order, node)
			return
		}
		c := children[node]
		walk(c[0])
		walk(c[1])
	}
	walk(dg.N + len(dg.Merges) - 1)
	return order
}

// Heights returns the merge heights in order, useful for picking a cut by
// the largest gap.
func (dg *Dendrogram) Heights() []float64 {
	hs := make([]float64, len(dg.Merges))
	for i, m := range dg.Merges {
		hs[i] = m.Height
	}
	return hs
}

// CopheneticDistances returns the cophenetic distance (merge height at
// which two leaves first join) for every pair, as a condensed map keyed by
// [i][j] with i<j. Used by tests to validate dendrogram structure.
func (dg *Dendrogram) CopheneticDistances() map[[2]int]float64 {
	// members[c] = leaves under cluster id c.
	members := make(map[int][]int, dg.N+len(dg.Merges))
	for i := 0; i < dg.N; i++ {
		members[i] = []int{i}
	}
	out := map[[2]int]float64{}
	for i, m := range dg.Merges {
		for _, a := range members[m.A] {
			for _, b := range members[m.B] {
				x, y := a, b
				if x > y {
					x, y = y, x
				}
				out[[2]int{x, y}] = m.Height
			}
		}
		merged := append(append([]int{}, members[m.A]...), members[m.B]...)
		sort.Ints(merged)
		members[dg.N+i] = merged
	}
	return out
}
