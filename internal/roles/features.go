// Package roles implements the user-class analysis the paper's
// conclusion proposes: differentiating "health care practitioners,
// donors, waiting-list candidates, organ donation advocacy agencies"
// from behaviour alone. It extracts behavioural features from pipeline
// user records, trains a Gaussian naive Bayes classifier, and evaluates
// how recoverable the classes are — including how well the paper's
// Figure 7 K-Means clusters align with them.
package roles

import (
	"math"
	"sort"

	"donorsense/internal/organ"
	"donorsense/internal/pipeline"
)

// NumFeatures is the dimensionality of the feature vector.
const NumFeatures = organ.Count + 4

// Features is a user's behavioural feature vector:
//
//	[0..5]  attention distribution over the six organs
//	[6]     log1p(tweet count)          — activity
//	[7]     distinct organs mentioned    — breadth
//	[8]     clinical-term share          — practitioner language
//	[9]     hashtags per tweet           — campaign language
type Features [NumFeatures]float64

// Extract builds the feature vector from a pipeline user record.
func Extract(u *pipeline.UserRecord) Features {
	var f Features
	total := 0
	for _, m := range u.Mentions {
		total += m
	}
	if total > 0 {
		for i, m := range u.Mentions {
			f[i] = float64(m) / float64(total)
		}
		f[8] = float64(u.ClinicalMentions) / float64(total)
	}
	f[6] = math.Log1p(float64(u.Tweets))
	f[7] = float64(u.DistinctOrgans())
	if u.Tweets > 0 {
		f[9] = float64(u.Hashtags) / float64(u.Tweets)
	}
	return f
}

// FeatureNames labels the feature vector components for reports.
func FeatureNames() []string {
	names := make([]string, 0, NumFeatures)
	for _, o := range organ.All() {
		names = append(names, "attention:"+o.String())
	}
	return append(names, "log-activity", "organ-breadth", "clinical-share", "hashtag-rate")
}

// SamplesFromDataset extracts labelled feature vectors for every dataset
// user whose label labelOf knows, ordered by user ID so downstream
// train/test splits are deterministic (Dataset iteration order is not).
func SamplesFromDataset(d *pipeline.Dataset, labelOf func(id int64) (int, bool)) []Sample {
	type rec struct {
		id int64
		s  Sample
	}
	var recs []rec
	d.EachUser(func(u *pipeline.UserRecord) {
		y, ok := labelOf(u.ID)
		if !ok {
			return
		}
		recs = append(recs, rec{u.ID, Sample{X: Extract(u), Y: y}})
	})
	sort.Slice(recs, func(i, j int) bool { return recs[i].id < recs[j].id })
	out := make([]Sample, len(recs))
	for i, r := range recs {
		out[i] = r.s
	}
	return out
}
