package roles

import (
	"fmt"
	"math"
)

// Sample is one labelled training example.
type Sample struct {
	X Features
	Y int // class label, 0-based
}

// NaiveBayes is a Gaussian naive Bayes classifier: each feature is
// modelled per class as an independent normal distribution.
type NaiveBayes struct {
	classes int
	prior   []float64              // log prior per class
	mean    [][NumFeatures]float64 // per class
	varn    [][NumFeatures]float64 // per class, floored
}

// varFloor prevents degenerate zero-variance features (e.g. a class whose
// members all share one attention value) from producing infinities.
const varFloor = 1e-6

// Train fits the classifier. classes is the number of labels; every label
// in samples must be in [0, classes). Classes with no samples keep a tiny
// prior and uninformative densities.
func Train(samples []Sample, classes int) (*NaiveBayes, error) {
	if classes < 2 {
		return nil, fmt.Errorf("roles: need at least 2 classes, got %d", classes)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("roles: no training samples")
	}
	nb := &NaiveBayes{
		classes: classes,
		prior:   make([]float64, classes),
		mean:    make([][NumFeatures]float64, classes),
		varn:    make([][NumFeatures]float64, classes),
	}
	counts := make([]int, classes)
	for _, s := range samples {
		if s.Y < 0 || s.Y >= classes {
			return nil, fmt.Errorf("roles: label %d out of range [0,%d)", s.Y, classes)
		}
		counts[s.Y]++
		for j, v := range s.X {
			nb.mean[s.Y][j] += v
		}
	}
	for c := 0; c < classes; c++ {
		// Laplace-smoothed prior so empty classes stay representable.
		nb.prior[c] = math.Log(float64(counts[c]+1) / float64(len(samples)+classes))
		if counts[c] == 0 {
			for j := range nb.varn[c] {
				nb.varn[c][j] = 1
			}
			continue
		}
		for j := range nb.mean[c] {
			nb.mean[c][j] /= float64(counts[c])
		}
	}
	for _, s := range samples {
		for j, v := range s.X {
			d := v - nb.mean[s.Y][j]
			nb.varn[s.Y][j] += d * d
		}
	}
	for c := 0; c < classes; c++ {
		if counts[c] == 0 {
			continue
		}
		for j := range nb.varn[c] {
			nb.varn[c][j] = nb.varn[c][j]/float64(counts[c]) + varFloor
		}
	}
	return nb, nil
}

// Classes returns the number of classes the model was trained with.
func (nb *NaiveBayes) Classes() int { return nb.classes }

// LogPosteriors returns the unnormalized log posterior per class.
func (nb *NaiveBayes) LogPosteriors(x Features) []float64 {
	out := make([]float64, nb.classes)
	for c := 0; c < nb.classes; c++ {
		lp := nb.prior[c]
		for j, v := range x {
			d := v - nb.mean[c][j]
			lp += -0.5*math.Log(2*math.Pi*nb.varn[c][j]) - d*d/(2*nb.varn[c][j])
		}
		out[c] = lp
	}
	return out
}

// Predict returns the most probable class for the feature vector.
func (nb *NaiveBayes) Predict(x Features) int {
	lps := nb.LogPosteriors(x)
	best, bi := lps[0], 0
	for c := 1; c < len(lps); c++ {
		if lps[c] > best {
			best, bi = lps[c], c
		}
	}
	return bi
}

// Evaluation summarizes classifier performance on a labelled set.
type Evaluation struct {
	Accuracy  float64
	Confusion [][]int // [true][predicted]
	Recall    []float64
	Precision []float64
	N         int
}

// Evaluate runs the classifier over labelled samples and tabulates
// accuracy, per-class recall/precision, and the confusion matrix.
func Evaluate(nb *NaiveBayes, samples []Sample) (Evaluation, error) {
	if len(samples) == 0 {
		return Evaluation{}, fmt.Errorf("roles: no evaluation samples")
	}
	ev := Evaluation{
		Confusion: make([][]int, nb.classes),
		Recall:    make([]float64, nb.classes),
		Precision: make([]float64, nb.classes),
		N:         len(samples),
	}
	for i := range ev.Confusion {
		ev.Confusion[i] = make([]int, nb.classes)
	}
	correct := 0
	for _, s := range samples {
		if s.Y < 0 || s.Y >= nb.classes {
			return Evaluation{}, fmt.Errorf("roles: label %d out of range", s.Y)
		}
		p := nb.Predict(s.X)
		ev.Confusion[s.Y][p]++
		if p == s.Y {
			correct++
		}
	}
	ev.Accuracy = float64(correct) / float64(len(samples))
	for c := 0; c < nb.classes; c++ {
		var rowSum, colSum int
		for j := 0; j < nb.classes; j++ {
			rowSum += ev.Confusion[c][j]
			colSum += ev.Confusion[j][c]
		}
		if rowSum > 0 {
			ev.Recall[c] = float64(ev.Confusion[c][c]) / float64(rowSum)
		}
		if colSum > 0 {
			ev.Precision[c] = float64(ev.Confusion[c][c]) / float64(colSum)
		}
	}
	return ev, nil
}

// SplitTrainTest partitions samples deterministically (by a hash of the
// index) into train and test sets with roughly the given train fraction.
func SplitTrainTest(samples []Sample, trainFrac float64) (train, test []Sample) {
	for i, s := range samples {
		h := splitmix64(uint64(i) * 0x9e3779b97f4a7c15)
		if float64(h%1000)/1000 < trainFrac {
			train = append(train, s)
		} else {
			test = append(test, s)
		}
	}
	return train, test
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
