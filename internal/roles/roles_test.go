package roles

import (
	"math"
	"math/rand/v2"
	"sync"
	"testing"

	"donorsense/internal/cluster"
	"donorsense/internal/gen"
	"donorsense/internal/pipeline"
)

// --- Classifier unit tests on synthetic Gaussians ---

func gaussSamples(r *rand.Rand, n int) []Sample {
	// Three well-separated classes in the first two features.
	centers := [][2]float64{{0, 0}, {5, 0}, {0, 5}}
	out := make([]Sample, 0, n*3)
	for c, ctr := range centers {
		for i := 0; i < n; i++ {
			var f Features
			f[0] = ctr[0] + r.NormFloat64()*0.5
			f[1] = ctr[1] + r.NormFloat64()*0.5
			out = append(out, Sample{X: f, Y: c})
		}
	}
	return out
}

func TestNaiveBayesSeparatesGaussians(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 1))
	train := gaussSamples(r, 100)
	test := gaussSamples(r, 30)
	nb, err := Train(train, 3)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(nb, test)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Accuracy < 0.98 {
		t.Errorf("accuracy on separated Gaussians = %.3f, want ≥ .98", ev.Accuracy)
	}
	for c, rec := range ev.Recall {
		if rec < 0.95 {
			t.Errorf("class %d recall = %.3f", c, rec)
		}
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, 3); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := Train([]Sample{{Y: 0}}, 1); err == nil {
		t.Error("single class accepted")
	}
	if _, err := Train([]Sample{{Y: 5}}, 3); err == nil {
		t.Error("out-of-range label accepted")
	}
}

func TestTrainHandlesEmptyClass(t *testing.T) {
	r := rand.New(rand.NewPCG(2, 2))
	samples := gaussSamples(r, 50) // labels 0..2
	nb, err := Train(samples, 5)   // classes 3, 4 empty
	if err != nil {
		t.Fatal(err)
	}
	// Prediction still works and never picks the empty classes for
	// in-distribution points.
	for _, s := range samples[:20] {
		if p := nb.Predict(s.X); p > 2 {
			t.Errorf("empty class %d predicted", p)
		}
	}
}

func TestTrainZeroVarianceFeature(t *testing.T) {
	// All samples share feature[3] == 1 exactly; the variance floor must
	// keep densities finite.
	var s0, s1 Sample
	s0.X[3], s1.X[3] = 1, 1
	s0.X[0], s1.X[0] = 0, 10
	s1.Y = 1
	nb, err := Train([]Sample{s0, s1, s0, s1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	lp := nb.LogPosteriors(s0.X)
	for _, v := range lp {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("degenerate log posterior %v", lp)
		}
	}
	if nb.Predict(s0.X) != 0 || nb.Predict(s1.X) != 1 {
		t.Error("zero-variance training set misclassified")
	}
}

func TestEvaluateErrors(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 3))
	nb, _ := Train(gaussSamples(r, 10), 3)
	if _, err := Evaluate(nb, nil); err == nil {
		t.Error("empty evaluation set accepted")
	}
	if _, err := Evaluate(nb, []Sample{{Y: 9}}); err == nil {
		t.Error("out-of-range evaluation label accepted")
	}
}

func TestSplitTrainTest(t *testing.T) {
	samples := make([]Sample, 1000)
	train, test := SplitTrainTest(samples, 0.7)
	if len(train)+len(test) != 1000 {
		t.Fatalf("split loses samples: %d + %d", len(train), len(test))
	}
	frac := float64(len(train)) / 1000
	if frac < 0.6 || frac > 0.8 {
		t.Errorf("train fraction = %.3f, want ≈0.7", frac)
	}
	// Deterministic.
	tr2, _ := SplitTrainTest(samples, 0.7)
	if len(tr2) != len(train) {
		t.Error("split not deterministic")
	}
}

// --- Purity ---

func TestClusterPurity(t *testing.T) {
	clusters := []int{0, 0, 0, 1, 1, 1}
	truth := []int{7, 7, 8, 9, 9, 9}
	p, err := ClusterPurity(clusters, truth)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(p, 5.0/6.0) {
		t.Errorf("purity = %v, want 5/6", p)
	}
	if _, err := ClusterPurity([]int{1}, []int{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := ClusterPurity(nil, nil); err == nil {
		t.Error("empty labelings accepted")
	}
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestMajorityClassShare(t *testing.T) {
	if got := MajorityClassShare([]int{1, 1, 1, 2}); !approx(got, 0.75) {
		t.Errorf("majority share = %v, want .75", got)
	}
	if MajorityClassShare(nil) != 0 {
		t.Error("empty labels share != 0")
	}
}

// --- End-to-end role recovery on the synthetic corpus ---

var (
	roleOnce    sync.Once
	roleSamples []Sample
	roleCorpus  *gen.Corpus
	roleDataset *pipeline.Dataset
)

// roleFixture builds labelled feature vectors from a scale-0.1 corpus.
func roleFixture(t testing.TB) []Sample {
	t.Helper()
	roleOnce.Do(func() {
		roleCorpus = gen.Generate(gen.DefaultConfig(0.1))
		roleDataset = pipeline.NewDataset()
		for _, tw := range roleCorpus.Tweets {
			roleDataset.Process(tw)
		}
		roleSamples = SamplesFromDataset(roleDataset, func(id int64) (int, bool) {
			p, ok := roleCorpus.Profiles[id]
			return int(p.Role), ok
		})
	})
	if len(roleSamples) == 0 {
		t.Fatal("no labelled samples")
	}
	return roleSamples
}

func TestRoleRecoveryBeatsBaseline(t *testing.T) {
	samples := roleFixture(t)
	train, test := SplitTrainTest(samples, 0.7)
	nb, err := Train(train, gen.NumRoles)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(nb, test)
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]int, len(test))
	for i, s := range test {
		labels[i] = s.Y
	}
	t.Logf("accuracy %.3f vs majority share %.3f (n=%d)", ev.Accuracy, MajorityClassShare(labels), ev.N)
	macro := 0.0
	for c := 0; c < gen.NumRoles; c++ {
		t.Logf("  %-15s recall %.3f precision %.3f", gen.Role(c), ev.Recall[c], ev.Precision[c])
		macro += ev.Recall[c]
	}
	macro /= gen.NumRoles
	// The honest yardstick on an imbalanced multi-class problem is macro
	// recall: always-predict-majority scores 1/NumRoles = 0.2. Gaussian
	// NB trades some majority-class accuracy for minority recall, which
	// is exactly what a role detector is for.
	if macro < 2.0/gen.NumRoles {
		t.Errorf("macro recall %.3f does not beat the majority baseline's %.3f", macro, 1.0/gen.NumRoles)
	}
	// The strongly-marked roles must be recoverable: advocacy accounts
	// (activity + breadth + hashtags) and practitioners (clinical
	// vocabulary).
	if ev.Recall[int(gen.Advocacy)] < 0.55 {
		t.Errorf("advocacy recall = %.3f, want ≥ .55", ev.Recall[int(gen.Advocacy)])
	}
	if ev.Recall[int(gen.Practitioner)] < 0.5 {
		t.Errorf("practitioner recall = %.3f, want ≥ .5", ev.Recall[int(gen.Practitioner)])
	}
}

func TestKMeansClustersAlignWithRoles(t *testing.T) {
	samples := roleFixture(t)
	// Cluster on the attention rows only (the paper's Figure 7 input).
	rows := make([][]float64, len(samples))
	truth := make([]int, len(samples))
	for i, s := range samples {
		rows[i] = append([]float64(nil), s.X[:6]...)
		truth[i] = s.Y
	}
	res, err := cluster.KMeans(rows, cluster.KMeansConfig{K: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	purity, err := ClusterPurity(res.Labels, truth)
	if err != nil {
		t.Fatal(err)
	}
	baseline := MajorityClassShare(truth)
	t.Logf("attention-only cluster purity %.3f vs baseline %.3f", purity, baseline)
	// Attention alone cannot separate patient from general public (both
	// are single-organ), so purity should be near — not far above — the
	// baseline. This reproduces the paper's hedge that clusters "might"
	// capture roles: organ attention is not enough; behaviour features
	// are needed (previous test).
	if purity < baseline-0.02 {
		t.Errorf("purity %.3f below baseline %.3f", purity, baseline)
	}
}

func TestFeatureExtraction(t *testing.T) {
	u := &pipeline.UserRecord{
		ID:               1,
		Tweets:           4,
		Mentions:         [6]int{2, 2, 0, 0, 0, 0},
		ClinicalMentions: 1,
		Hashtags:         2,
	}
	f := Extract(u)
	if !approx(f[0], 0.5) || !approx(f[1], 0.5) {
		t.Errorf("attention features = %v", f[:6])
	}
	if !approx(f[6], math.Log1p(4)) {
		t.Errorf("activity feature = %v", f[6])
	}
	if !approx(f[7], 2) {
		t.Errorf("breadth feature = %v", f[7])
	}
	if !approx(f[8], 0.25) {
		t.Errorf("clinical share = %v", f[8])
	}
	if !approx(f[9], 0.5) {
		t.Errorf("hashtag rate = %v", f[9])
	}
	// Zero record stays finite.
	zero := Extract(&pipeline.UserRecord{})
	for _, v := range zero {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("degenerate feature in %v", zero)
		}
	}
	if len(FeatureNames()) != NumFeatures {
		t.Error("feature names out of sync")
	}
}
