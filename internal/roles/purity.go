package roles

import "fmt"

// ClusterPurity measures how well an unsupervised clustering (the
// Figure 7 K-Means labels) aligns with the true classes: each cluster is
// credited with its majority class, and purity is the fraction of points
// so explained. The paper conjectures its clusters "might even represent
// organ-related users with different attitudes"; this quantifies that on
// the synthetic ground truth.
func ClusterPurity(clusterLabels, trueLabels []int) (float64, error) {
	if len(clusterLabels) != len(trueLabels) {
		return 0, fmt.Errorf("roles: %d cluster labels vs %d true labels", len(clusterLabels), len(trueLabels))
	}
	if len(clusterLabels) == 0 {
		return 0, fmt.Errorf("roles: empty labelings")
	}
	counts := map[int]map[int]int{}
	for i, c := range clusterLabels {
		m := counts[c]
		if m == nil {
			m = map[int]int{}
			counts[c] = m
		}
		m[trueLabels[i]]++
	}
	majority := 0
	for _, m := range counts {
		best := 0
		for _, n := range m {
			if n > best {
				best = n
			}
		}
		majority += best
	}
	return float64(majority) / float64(len(clusterLabels)), nil
}

// MajorityClassShare returns the share of the most common true label —
// the baseline any useful clustering or classifier must beat.
func MajorityClassShare(labels []int) float64 {
	if len(labels) == 0 {
		return 0
	}
	counts := map[int]int{}
	best := 0
	for _, l := range labels {
		counts[l]++
		if counts[l] > best {
			best = counts[l]
		}
	}
	return float64(best) / float64(len(labels))
}
