// Package export writes analysis artifacts in machine-readable form —
// CSV for the tabular results (state signatures, the relative-risk
// table, cluster centroids, daily series) and JSON for the full analysis
// summary — so downstream tooling (R, pandas, plotting) can consume a
// run without parsing the text reports.
package export

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"donorsense/internal/cluster"
	"donorsense/internal/core"
	"donorsense/internal/organ"
	"donorsense/internal/pipeline"
	"donorsense/internal/temporal"
)

// writeAll writes records through a csv.Writer, returning the first
// error.
func writeAll(w io.Writer, records [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.WriteAll(records); err != nil {
		return fmt.Errorf("export: write csv: %w", err)
	}
	return nil
}

func f64(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// StateSignaturesCSV writes the Figure 4 matrix: one row per state with
// its attention distribution and user count.
func StateSignaturesCSV(w io.Writer, rc *core.RegionCharacterization) error {
	header := append([]string{"state", "users"}, organ.Names()...)
	records := [][]string{header}
	for i, code := range rc.StateCodes {
		if rc.GroupSizes[i] == 0 {
			continue
		}
		rec := []string{code, strconv.Itoa(rc.GroupSizes[i])}
		for _, v := range rc.K.Row(i) {
			rec = append(rec, f64(v))
		}
		records = append(records, rec)
	}
	return writeAll(w, records)
}

// RelativeRiskCSV writes the Figure 5 table: one row per defined
// (state, organ) cell with the RR, CI, and significance flag.
func RelativeRiskCSV(w io.Writer, h *core.HighlightResult) error {
	records := [][]string{{
		"state", "organ", "rr", "ci_lower", "ci_upper", "log_rr", "se",
		"a", "b", "c", "d", "significant",
	}}
	for s := range h.Risks {
		for _, r := range h.Risks[s] {
			if !r.Defined {
				continue
			}
			records = append(records, []string{
				r.StateCode, r.Organ.String(),
				f64(r.RR.RR), f64(r.RR.Lower), f64(r.RR.Upper),
				f64(r.RR.LogRR), f64(r.RR.SE),
				strconv.Itoa(r.RR.A), strconv.Itoa(r.RR.B),
				strconv.Itoa(r.RR.C), strconv.Itoa(r.RR.D),
				strconv.FormatBool(r.Highlighted()),
			})
		}
	}
	return writeAll(w, records)
}

// ClustersCSV writes the Figure 7 result: one row per cluster with size
// and centroid.
func ClustersCSV(w io.Writer, res *cluster.KMeansResult) error {
	header := append([]string{"cluster", "size"}, organ.Names()...)
	records := [][]string{header}
	for c := range res.Centroids {
		rec := []string{strconv.Itoa(c), strconv.Itoa(res.Sizes[c])}
		for _, v := range res.Centroids[c] {
			rec = append(rec, f64(v))
		}
		records = append(records, rec)
	}
	return writeAll(w, records)
}

// SeriesCSV writes the temporal series: one row per day with per-organ
// counts and the total.
func SeriesCSV(w io.Writer, s *temporal.Series) error {
	header := append([]string{"date", "day"}, organ.Names()...)
	header = append(header, "total")
	records := [][]string{header}
	for d := 0; d < s.Days(); d++ {
		date := s.Start().AddDate(0, 0, d)
		rec := []string{date.Format("2006-01-02"), strconv.Itoa(d)}
		for _, o := range organ.All() {
			rec = append(rec, strconv.Itoa(s.Count(d, o)))
		}
		rec = append(rec, strconv.Itoa(s.Total(d)))
		records = append(records, rec)
	}
	return writeAll(w, records)
}

// Summary is the JSON export of a run's headline results.
type Summary struct {
	GeneratedAt time.Time       `json:"generated_at"`
	TableI      pipeline.TableI `json:"table_i"`
	// UsersPerOrgan is keyed by organ name.
	UsersPerOrgan map[string]int `json:"users_per_organ"`
	// SpearmanR/SpearmanP validate against OPTN transplant counts.
	SpearmanR float64 `json:"spearman_r"`
	SpearmanP float64 `json:"spearman_p"`
	// Highlights maps state code to the organs significantly
	// over-represented there (Figure 5).
	Highlights map[string][]string `json:"highlights"`
	// Bursts lists detected conversation spikes, if temporal analysis
	// ran.
	Bursts []BurstJSON `json:"bursts,omitempty"`
}

// BurstJSON is the JSON shape of a temporal burst.
type BurstJSON struct {
	Organ string    `json:"organ"`
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	Peak  int       `json:"peak_per_day"`
	Z     float64   `json:"z"`
}

// BuildSummary assembles the JSON summary from analysis components.
// series and bursts may be nil.
func BuildSummary(stats pipeline.TableI, popularity [organ.Count]int, spearmanR, spearmanP float64,
	h *core.HighlightResult, s *temporal.Series, bursts []temporal.Burst, now time.Time) Summary {
	sum := Summary{
		GeneratedAt:   now,
		TableI:        stats,
		UsersPerOrgan: map[string]int{},
		SpearmanR:     spearmanR,
		SpearmanP:     spearmanP,
		Highlights:    map[string][]string{},
	}
	for _, o := range organ.All() {
		sum.UsersPerOrgan[o.String()] = popularity[o.Index()]
	}
	if h != nil {
		for _, code := range h.StateCodes {
			for _, o := range h.HighlightedOrgans(code) {
				sum.Highlights[code] = append(sum.Highlights[code], o.String())
			}
		}
	}
	if s != nil {
		for _, b := range bursts {
			sum.Bursts = append(sum.Bursts, BurstJSON{
				Organ: b.Organ.String(),
				Start: s.Start().AddDate(0, 0, b.StartDay),
				End:   s.Start().AddDate(0, 0, b.EndDay),
				Peak:  b.Peak,
				Z:     b.Z,
			})
		}
	}
	return sum
}

// WriteSummaryJSON writes the summary as indented JSON.
func WriteSummaryJSON(w io.Writer, sum Summary) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		return fmt.Errorf("export: write summary: %w", err)
	}
	return nil
}
