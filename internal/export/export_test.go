package export

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
	"time"

	"donorsense/internal/cluster"
	"donorsense/internal/core"
	"donorsense/internal/organ"
	"donorsense/internal/pipeline"
	"donorsense/internal/temporal"
	"donorsense/internal/text"
	"donorsense/internal/twitter"
)

func buildFixture(t *testing.T) (*core.Attention, map[int64]string) {
	t.Helper()
	b := core.NewAttentionBuilder()
	states := map[int64]string{}
	var id int64
	add := func(state string, o organ.Organ, n int) {
		for i := 0; i < n; i++ {
			id++
			var m [organ.Count]int
			m[o.Index()] = 1
			b.Observe(id, m)
			states[id] = state
		}
	}
	add("KS", organ.Kidney, 20)
	add("KS", organ.Heart, 5)
	add("TX", organ.Heart, 60)
	add("TX", organ.Kidney, 15)
	add("CA", organ.Liver, 30)
	add("CA", organ.Heart, 30)
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return a, states
}

func parseCSV(t *testing.T, s string) [][]string {
	t.Helper()
	records, err := csv.NewReader(strings.NewReader(s)).ReadAll()
	if err != nil {
		t.Fatalf("invalid csv: %v\n%s", err, s)
	}
	return records
}

func TestStateSignaturesCSV(t *testing.T) {
	a, states := buildFixture(t)
	rc, err := core.CharacterizeRegions(a, states)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := StateSignaturesCSV(&buf, rc); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, buf.String())
	if len(records) != 4 { // header + KS + TX + CA
		t.Fatalf("rows = %d, want 4:\n%s", len(records), buf.String())
	}
	if records[0][0] != "state" || records[0][2] != "heart" {
		t.Errorf("header = %v", records[0])
	}
	// Every data row: users > 0 and attention sums to 1.
	for _, rec := range records[1:] {
		if rec[1] == "0" {
			t.Errorf("empty state exported: %v", rec)
		}
		sum := 0.0
		for _, cell := range rec[2:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatalf("bad float %q", cell)
			}
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("state %s attention sums to %v", rec[0], sum)
		}
	}
}

func TestRelativeRiskCSV(t *testing.T) {
	a, states := buildFixture(t)
	h, err := core.HighlightOrgans(a, states)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RelativeRiskCSV(&buf, h); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, buf.String())
	if len(records) < 2 {
		t.Fatalf("no RR rows:\n%s", buf.String())
	}
	if records[0][0] != "state" || records[0][11] != "significant" {
		t.Errorf("header = %v", records[0])
	}
	foundKS := false
	for _, rec := range records[1:] {
		if rec[0] == "KS" && rec[1] == "kidney" && rec[11] == "true" {
			foundKS = true
		}
	}
	if !foundKS {
		t.Errorf("KS kidney significance missing:\n%s", buf.String())
	}
}

func TestClustersCSV(t *testing.T) {
	a, _ := buildFixture(t)
	res, err := cluster.KMeans(a.Rows(), cluster.KMeansConfig{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ClustersCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, buf.String())
	if len(records) != 4 {
		t.Fatalf("rows = %d, want header + 3 clusters", len(records))
	}
}

func TestSeriesCSV(t *testing.T) {
	start := time.Date(2015, 4, 22, 0, 0, 0, 0, time.UTC)
	s, err := temporal.NewSeries(start, 3)
	if err != nil {
		t.Fatal(err)
	}
	ex := text.NewExtractor()
	tw := twitter.Tweet{Text: "donate a kidney", CreatedAt: start.AddDate(0, 0, 1)}
	s.Observe(tw, ex.Extract(tw.Text))
	var buf bytes.Buffer
	if err := SeriesCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, buf.String())
	if len(records) != 4 { // header + 3 days
		t.Fatalf("rows = %d, want 4", len(records))
	}
	if records[1][0] != "2015-04-22" {
		t.Errorf("first date = %s", records[1][0])
	}
	// Day 1 kidney = 1, total = 1.
	if records[2][3] != "1" || records[2][8] != "1" {
		t.Errorf("day 1 row = %v", records[2])
	}
}

func TestSummaryJSONRoundTrip(t *testing.T) {
	a, states := buildFixture(t)
	h, err := core.HighlightOrgans(a, states)
	if err != nil {
		t.Fatal(err)
	}
	stats := pipeline.TableI{Users: 160, TweetsCollected: 160, Days: 385}
	var pop [organ.Count]int
	pop[organ.Heart.Index()] = 95
	now := time.Date(2016, 5, 11, 0, 0, 0, 0, time.UTC)

	start := time.Date(2015, 4, 22, 0, 0, 0, 0, time.UTC)
	series, _ := temporal.NewSeries(start, 40)
	bursts := []temporal.Burst{{Organ: organ.Kidney, StartDay: 10, EndDay: 12, Peak: 50, Z: 4}}

	sum := BuildSummary(stats, pop, 0.829, 0.042, h, series, bursts, now)
	var buf bytes.Buffer
	if err := WriteSummaryJSON(&buf, sum); err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid json: %v", err)
	}
	if back.TableI.Users != 160 || back.SpearmanR != 0.829 {
		t.Errorf("summary round trip wrong: %+v", back)
	}
	if back.UsersPerOrgan["heart"] != 95 {
		t.Errorf("popularity missing: %v", back.UsersPerOrgan)
	}
	found := false
	for _, o := range back.Highlights["KS"] {
		if o == "kidney" {
			found = true
		}
	}
	if !found {
		t.Errorf("KS highlight missing: %v", back.Highlights)
	}
	if len(back.Bursts) != 1 || back.Bursts[0].Organ != "kidney" {
		t.Errorf("bursts wrong: %+v", back.Bursts)
	}
	wantStart := start.AddDate(0, 0, 10)
	if !back.Bursts[0].Start.Equal(wantStart) {
		t.Errorf("burst start = %v, want %v", back.Bursts[0].Start, wantStart)
	}
}

func TestBuildSummaryNilOptionals(t *testing.T) {
	var pop [organ.Count]int
	sum := BuildSummary(pipeline.TableI{}, pop, 0, 1, nil, nil, nil, time.Time{})
	if len(sum.Bursts) != 0 || len(sum.Highlights) != 0 {
		t.Errorf("nil optionals produced content: %+v", sum)
	}
	var buf bytes.Buffer
	if err := WriteSummaryJSON(&buf, sum); err != nil {
		t.Fatal(err)
	}
}
