package text

import (
	"reflect"
	"strings"
	"testing"
	"unicode/utf8"

	"donorsense/internal/organ"
)

// FuzzTokenize drives the tweet tokenizer with arbitrary byte soup: it
// must never panic, and word/hashtag tokens must stay valid lowercase
// UTF-8.
func FuzzTokenize(f *testing.F) {
	seeds := []string{
		"Register as an organ donor — kidney saves lives #DonateLife",
		"@user https://x.co/a #tag 60,000 on the waiting list",
		"héllo wörld 🫀 ❤️",
		"a#b@c.d-e'f",
		"\x00\xff\xfe broken bytes",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		toks := Tokenize(s)
		for _, tok := range toks {
			if tok.Kind == Word || tok.Kind == Hashtag {
				if !utf8.ValidString(tok.Text) {
					t.Fatalf("invalid UTF-8 token %q from %q", tok.Text, s)
				}
				for _, r := range tok.Text {
					if r >= 'A' && r <= 'Z' {
						t.Fatalf("uppercase leaked in %q from %q", tok.Text, s)
					}
				}
			}
			if tok.Pos < 0 || tok.Pos > len(s) {
				t.Fatalf("position %d out of range for %q", tok.Pos, s)
			}
		}
	})
}

// FuzzExtract checks the invariant the collection pipeline depends on:
// MatchesFilter and Extract().InContext() always agree.
func FuzzExtract(f *testing.F) {
	e := NewExtractor()
	for _, s := range []string{
		"donate a kidney", "kidney beans", "waiting list for a liver",
		"transplant", "heart", "organ failure pancreas",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		ex := e.Extract(s)
		if e.MatchesFilter(s) != ex.InContext() {
			t.Fatalf("filter/extract disagree on %q", s)
		}
		if ex.TotalMentions() < ex.NumOrgans() {
			t.Fatalf("mention count below distinct organs for %q", s)
		}
	})
}

// referenceExtract is the original map-per-tweet extractor, kept verbatim
// (on top of the allocating Tokenize) as the semantic oracle for the
// allocation-free fast path. The differential fuzz below holds the two
// implementations bit-identical on arbitrary input.
type referenceExtract struct {
	contextUnigrams map[string]bool
	contextBigrams  map[string]map[string]bool
}

func newReferenceExtract() *referenceExtract {
	e := &referenceExtract{
		contextUnigrams: make(map[string]bool),
		contextBigrams:  make(map[string]map[string]bool),
	}
	for _, c := range organ.ContextWords() {
		parts := strings.Fields(c)
		switch len(parts) {
		case 1:
			e.contextUnigrams[parts[0]] = true
		case 2:
			m := e.contextBigrams[parts[0]]
			if m == nil {
				m = make(map[string]bool)
				e.contextBigrams[parts[0]] = m
			}
			m[parts[1]] = true
		}
	}
	return e
}

// refExtraction mirrors the observable surface of Extraction.
type refExtraction struct {
	ContextTerms     []string
	Organs           []organ.Organ
	Mentions         [organ.Count]int
	ClinicalMentions int
	Hashtags         int
}

func (e *referenceExtract) extract(tweet string) refExtraction {
	toks := Tokenize(tweet)
	words := make([]string, 0, len(toks))
	var ex refExtraction
	for _, t := range toks {
		switch t.Kind {
		case Word, Hashtag:
			words = append(words, t.Text)
		}
		if t.Kind == Hashtag {
			ex.Hashtags++
		}
	}
	seenCtx := make(map[string]bool)
	seenOrg := [organ.Count]bool{}
	for i, w := range words {
		if e.contextUnigrams[w] && !seenCtx[w] {
			seenCtx[w] = true
			ex.ContextTerms = append(ex.ContextTerms, w)
		}
		if seconds, ok := e.contextBigrams[w]; ok && i+1 < len(words) {
			if next := words[i+1]; seconds[next] {
				term := w + " " + next
				if !seenCtx[term] {
					seenCtx[term] = true
					ex.ContextTerms = append(ex.ContextTerms, term)
				}
			}
		}
		if o, ok := organ.SubjectOrgan(w); ok {
			ex.Mentions[o.Index()]++
			seenOrg[o.Index()] = true
			if organ.IsClinicalForm(w) {
				ex.ClinicalMentions++
			}
		}
	}
	for _, o := range organ.All() {
		if seenOrg[o.Index()] {
			ex.Organs = append(ex.Organs, o)
		}
	}
	return ex
}

// FuzzExtractDifferential pits the allocation-free extractor against the
// reference implementation on arbitrary text: every observable field of
// the extraction must be bit-identical, which is the guarantee that lets
// the parallel pipeline reuse extractor scratch without changing Table I.
func FuzzExtractDifferential(f *testing.F) {
	for _, s := range []string{
		"Register as an organ donor — kidney saves lives #DonateLife",
		"waiting list waiting list kidney donor",
		"RENAL transplant recipient, pulmonary waitlist",
		"organ failure; graft @mention https://x.co/a 60,000",
		"waiting @x list liver donor", // bigram across a skipped mention
		"héllo Wörld İstanbul kidney donated",
		"\x00\xff#Kidney donor",
		"",
	} {
		f.Add(s)
	}
	fast := NewExtractor()
	ref := newReferenceExtract()
	f.Fuzz(func(t *testing.T, s string) {
		got := fast.Extract(s)
		want := ref.extract(s)
		if !reflect.DeepEqual(got.ContextTerms(), want.ContextTerms) {
			t.Errorf("ContextTerms: fast %v, reference %v (input %q)", got.ContextTerms(), want.ContextTerms, s)
		}
		if !reflect.DeepEqual(got.Organs(), want.Organs) {
			t.Errorf("Organs: fast %v, reference %v (input %q)", got.Organs(), want.Organs, s)
		}
		if got.Mentions != want.Mentions {
			t.Errorf("Mentions: fast %v, reference %v (input %q)", got.Mentions, want.Mentions, s)
		}
		if got.ClinicalMentions != want.ClinicalMentions || got.Hashtags != want.Hashtags {
			t.Errorf("counters: fast (%d,%d), reference (%d,%d) (input %q)",
				got.ClinicalMentions, got.Hashtags, want.ClinicalMentions, want.Hashtags, s)
		}
		inCtx := len(want.ContextTerms) > 0 && len(want.Organs) > 0
		if got.InContext() != inCtx {
			t.Errorf("InContext: fast %v, reference %v (input %q)", got.InContext(), inCtx, s)
		}
	})
}
