package text

import (
	"testing"
	"unicode/utf8"
)

// FuzzTokenize drives the tweet tokenizer with arbitrary byte soup: it
// must never panic, and word/hashtag tokens must stay valid lowercase
// UTF-8.
func FuzzTokenize(f *testing.F) {
	seeds := []string{
		"Register as an organ donor — kidney saves lives #DonateLife",
		"@user https://x.co/a #tag 60,000 on the waiting list",
		"héllo wörld 🫀 ❤️",
		"a#b@c.d-e'f",
		"\x00\xff\xfe broken bytes",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		toks := Tokenize(s)
		for _, tok := range toks {
			if tok.Kind == Word || tok.Kind == Hashtag {
				if !utf8.ValidString(tok.Text) {
					t.Fatalf("invalid UTF-8 token %q from %q", tok.Text, s)
				}
				for _, r := range tok.Text {
					if r >= 'A' && r <= 'Z' {
						t.Fatalf("uppercase leaked in %q from %q", tok.Text, s)
					}
				}
			}
			if tok.Pos < 0 || tok.Pos > len(s) {
				t.Fatalf("position %d out of range for %q", tok.Pos, s)
			}
		}
	})
}

// FuzzExtract checks the invariant the collection pipeline depends on:
// MatchesFilter and Extract().InContext() always agree.
func FuzzExtract(f *testing.F) {
	e := NewExtractor()
	for _, s := range []string{
		"donate a kidney", "kidney beans", "waiting list for a liver",
		"transplant", "heart", "organ failure pancreas",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		ex := e.Extract(s)
		if e.MatchesFilter(s) != ex.InContext() {
			t.Fatalf("filter/extract disagree on %q", s)
		}
		if ex.TotalMentions() < len(ex.Organs) {
			t.Fatalf("mention count below distinct organs for %q", s)
		}
	})
}
