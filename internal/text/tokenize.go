// Package text implements the tweet text processing used by the
// collection filter and the characterization pipeline: a Twitter-aware
// tokenizer, a normalizer, and an extractor that recognizes
// organ-donation context terms and organ mentions (the Context × Subject
// keyword product of the paper's Figure 1).
package text

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// TokenKind classifies a token produced by Tokenize.
type TokenKind int

// Token kinds. Words are the default; hashtags, mentions, and URLs get
// their own kinds because the matcher treats them differently (hashtag
// bodies are matchable text, mentions and URLs are not).
const (
	Word TokenKind = iota
	Hashtag
	Mention
	URL
	NumberTok
)

// Token is a single lexical unit of a tweet.
type Token struct {
	Kind TokenKind
	Text string // normalized (lowercase, no leading #/@) surface text
	Pos  int    // byte offset of the token start in the original text
}

// Tokenize splits tweet text into tokens. It lowercases word and hashtag
// text, strips the leading sigil from hashtags and mentions, recognizes
// http(s) URLs as single URL tokens, and treats any other run of letters
// or digits as a word or number. Punctuation and emoji are skipped but
// terminate tokens, so "kidney," and "kidney" produce the same token.
// Invalid UTF-8 bytes are skipped individually; token positions always
// index the original string.
func Tokenize(s string) []Token {
	var toks []Token
	i := 0 // byte index into s
	for i < len(s) {
		r, size := utf8.DecodeRuneInString(s[i:])
		switch {
		case r == '#' || r == '@':
			kind := Hashtag
			if r == '@' {
				kind = Mention
			}
			start := i
			j := i + size
			for j < len(s) {
				rr, sz := utf8.DecodeRuneInString(s[j:])
				if !isTagRune(rr) {
					break
				}
				j += sz
			}
			if j > i+size {
				toks = append(toks, Token{Kind: kind, Text: strings.ToLower(s[i+size : j]), Pos: start})
			}
			i = j
		case unicode.IsLetter(r):
			if hasURLPrefix(s[i:]) {
				start := i
				j := i
				for j < len(s) {
					rr, sz := utf8.DecodeRuneInString(s[j:])
					if unicode.IsSpace(rr) {
						break
					}
					j += sz
				}
				toks = append(toks, Token{Kind: URL, Text: s[i:j], Pos: start})
				i = j
				continue
			}
			start := i
			j := i
			for j < len(s) {
				rr, sz := utf8.DecodeRuneInString(s[j:])
				if !isWordRune(rr) {
					break
				}
				j += sz
			}
			toks = append(toks, Token{Kind: Word, Text: strings.ToLower(s[start:j]), Pos: start})
			i = j
		case unicode.IsDigit(r):
			start := i
			j := i
			for j < len(s) {
				rr, sz := utf8.DecodeRuneInString(s[j:])
				if unicode.IsDigit(rr) {
					j += sz
					continue
				}
				// A comma binds digit groups ("60,000") only when a digit
				// follows immediately.
				if rr == ',' && j+sz < len(s) {
					nr, _ := utf8.DecodeRuneInString(s[j+sz:])
					if unicode.IsDigit(nr) {
						j += sz
						continue
					}
				}
				break
			}
			toks = append(toks, Token{Kind: NumberTok, Text: s[start:j], Pos: start})
			i = j
		default:
			i += size
		}
	}
	return toks
}

// isTagRune reports whether r may appear inside a hashtag or mention body.
func isTagRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

// isWordRune reports whether r may appear inside a word token. Apostrophes
// bind words together ("donor's"); hyphens split so compound organ
// mentions ("heart-lung") are seen individually.
func isWordRune(r rune) bool {
	return unicode.IsLetter(r) || r == '\''
}

// hasURLPrefix reports whether the string starts with http:// or
// https:// (case-insensitive). It compares bytes in place — the check
// runs once per letter-initial token on the ingest hot path, so it must
// not allocate the way a strings.ToLower round trip would.
func hasURLPrefix(s string) bool {
	rest, ok := cutPrefixFold(s, "http")
	if !ok {
		return false
	}
	if r, ok2 := cutPrefixFold(rest, "s"); ok2 {
		rest = r
	}
	return strings.HasPrefix(rest, "://")
}

// cutPrefixFold strips an ASCII-lowercase prefix from s, matching
// case-insensitively.
func cutPrefixFold(s, prefix string) (string, bool) {
	if len(s) < len(prefix) {
		return s, false
	}
	for i := 0; i < len(prefix); i++ {
		c := s[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != prefix[i] {
			return s, false
		}
	}
	return s[len(prefix):], true
}

// Words returns just the matchable word-like token texts (words and
// hashtag bodies) in order. Mentions, URLs, and numbers are excluded: a
// user handle like @hearts_fan must not count as a heart mention.
func Words(s string) []string {
	toks := Tokenize(s)
	out := make([]string, 0, len(toks))
	for _, t := range toks {
		if t.Kind == Word || t.Kind == Hashtag {
			out = append(out, t.Text)
		}
	}
	return out
}
