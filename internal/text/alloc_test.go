package text

import "testing"

// TestExtractAllocFree enforces the hot-path allocation budget: once the
// scratch buffers have warmed up, Extract and MatchesFilter must not
// allocate at all — on in-context tweets, rejected tweets, or hashtag/
// URL/number-heavy noise. This is the regular-test twin of
// BenchmarkExtract's 0 allocs/op, so a regression fails `go test`, not
// just a benchmark read-out.
func TestExtractAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; budget enforced in non-race runs")
	}
	e := NewExtractor()
	inputs := []string{
		"RT @unos: Nearly 60,000 people are on the #kidney transplant waiting list — register as an organ donor today! https://example.org/donate",
		"please donate a kidney, be an organ donor",
		"I love kidney beans and have nothing to do with donation",
		"#DonateLife #OrganDonation HEART transplant recipient ❤️",
		"no keywords at all, just chatter about the weather",
	}
	// Warm the scratch buffers past their high-water mark first.
	for _, s := range inputs {
		e.Extract(s)
		e.MatchesFilter(s)
	}
	for _, s := range inputs {
		if n := testing.AllocsPerRun(100, func() { e.Extract(s) }); n != 0 {
			t.Errorf("Extract(%q) allocates %.1f times per op, want 0", s, n)
		}
		if n := testing.AllocsPerRun(100, func() { e.MatchesFilter(s) }); n != 0 {
			t.Errorf("MatchesFilter(%q) allocates %.1f times per op, want 0", s, n)
		}
	}
}
