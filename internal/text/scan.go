package text

import (
	"unicode"
	"unicode/utf8"
)

// span is one matchable token (word or hashtag body) located in an
// Extractor's lowered scratch buffer.
type span struct {
	lo, hi  int32 // byte range into Extractor.lower
	hashtag bool
}

// scan fills e.spans and e.lower with the matchable tokens of s. It
// mirrors Tokenize's boundary rules exactly — mentions, URLs, and number
// tokens are consumed with the same rules but not recorded — while
// reusing the Extractor's buffers so steady-state scanning allocates
// nothing.
func (e *Extractor) scan(s string) {
	e.spans = e.spans[:0]
	e.lower = e.lower[:0]
	i := 0
	for i < len(s) {
		r, size := utf8.DecodeRuneInString(s[i:])
		switch {
		case r == '#' || r == '@':
			j := i + size
			for j < len(s) {
				rr, sz := utf8.DecodeRuneInString(s[j:])
				if !isTagRune(rr) {
					break
				}
				j += sz
			}
			if j > i+size && r == '#' {
				e.appendSpan(s[i+size:j], true)
			}
			i = j
		case unicode.IsLetter(r):
			if hasURLPrefix(s[i:]) {
				j := i
				for j < len(s) {
					rr, sz := utf8.DecodeRuneInString(s[j:])
					if unicode.IsSpace(rr) {
						break
					}
					j += sz
				}
				i = j
				continue
			}
			j := i
			for j < len(s) {
				rr, sz := utf8.DecodeRuneInString(s[j:])
				if !isWordRune(rr) {
					break
				}
				j += sz
			}
			e.appendSpan(s[i:j], false)
			i = j
		case unicode.IsDigit(r):
			j := i
			for j < len(s) {
				rr, sz := utf8.DecodeRuneInString(s[j:])
				if unicode.IsDigit(rr) {
					j += sz
					continue
				}
				// A comma binds digit groups ("60,000") only when a digit
				// follows immediately — same rule as Tokenize.
				if rr == ',' && j+sz < len(s) {
					nr, _ := utf8.DecodeRuneInString(s[j+sz:])
					if unicode.IsDigit(nr) {
						j += sz
						continue
					}
				}
				break
			}
			i = j
		default:
			i += size
		}
	}
}

// appendSpan lowers raw into the scratch buffer and records its span.
// Lowering matches strings.ToLower rune for rune (simple Unicode case
// mapping), with a byte fast path for ASCII.
func (e *Extractor) appendSpan(raw string, hashtag bool) {
	lo := int32(len(e.lower))
	for _, r := range raw {
		if r < utf8.RuneSelf {
			c := byte(r)
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
			e.lower = append(e.lower, c)
		} else {
			e.lower = utf8.AppendRune(e.lower, unicode.ToLower(r))
		}
	}
	e.spans = append(e.spans, span{lo: lo, hi: int32(len(e.lower)), hashtag: hashtag})
}
