package text

import (
	"strings"

	"donorsense/internal/organ"
)

// The matcher vocabulary is tiny and fixed (Figure 1's Context terms plus
// the organ subject surface forms), so the extractor can intern every
// canonical term string once and track per-tweet "seen" state in a small
// epoch-stamped array instead of a per-tweet map. Term IDs index both the
// interned string table and the Extractor's seen array.

// maxContextTerms bounds the context vocabulary so term IDs fit in a
// uint8 and Extraction can carry its terms inline without allocating.
const maxContextTerms = 32

// bigramRule is one two-word context term keyed by its first word.
type bigramRule struct {
	second string // second word of the term
	id     uint8  // term ID of the canonical phrase
}

// subjectInfo is the precomputed lookup result for one subject surface
// form, folding organ.SubjectOrgan and organ.IsClinicalForm into a single
// map probe on the hot path.
type subjectInfo struct {
	organ    organ.Organ
	clinical bool
}

// matcherVocab is the immutable, package-wide keyword index shared by all
// Extractors.
type matcherVocab struct {
	// terms holds the canonical context-term strings by ID ("waiting
	// list" stays one interned string, never re-concatenated).
	terms []string
	// unigram maps single-word context terms to their ID.
	unigram map[string]uint8
	// bigrams maps the first word of two-word context terms to the rules
	// completing them.
	bigrams map[string][]bigramRule
	// subject maps every organ subject surface form to its organ and
	// clinical flag.
	subject map[string]subjectInfo
}

// vocab is built once at package init from the canonical keyword set.
var vocab = buildVocab()

func buildVocab() *matcherVocab {
	v := &matcherVocab{
		unigram: make(map[string]uint8),
		bigrams: make(map[string][]bigramRule),
		subject: make(map[string]subjectInfo),
	}
	for _, c := range organ.ContextWords() {
		parts := strings.Fields(c)
		if len(v.terms) >= maxContextTerms {
			panic("text: context vocabulary exceeds maxContextTerms")
		}
		id := uint8(len(v.terms))
		switch len(parts) {
		case 1:
			v.terms = append(v.terms, parts[0])
			v.unigram[parts[0]] = id
		case 2:
			// Intern the canonical space-joined form once.
			v.terms = append(v.terms, parts[0]+" "+parts[1])
			v.bigrams[parts[0]] = append(v.bigrams[parts[0]], bigramRule{second: parts[1], id: id})
		default:
			// The vocabulary only contains unigrams and bigrams; longer
			// phrases would need a trie, which nothing requires yet.
			panic("text: context term longer than two words: " + c)
		}
	}
	for _, w := range organ.SubjectWords() {
		o, ok := organ.SubjectOrgan(w)
		if !ok {
			panic("text: subject word with no organ: " + w)
		}
		v.subject[w] = subjectInfo{organ: o, clinical: organ.IsClinicalForm(w)}
	}
	return v
}
