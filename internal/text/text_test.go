package text

import (
	"reflect"
	"testing"
	"testing/quick"

	"donorsense/internal/organ"
)

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func texts(toks []Token) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

func TestTokenizeBasics(t *testing.T) {
	tests := []struct {
		in        string
		wantText  []string
		wantKinds []TokenKind
	}{
		{
			"Be an organ donor!",
			[]string{"be", "an", "organ", "donor"},
			[]TokenKind{Word, Word, Word, Word},
		},
		{
			"#OrganDonation saves lives @UNOS https://example.org/x",
			[]string{"organdonation", "saves", "lives", "unos", "https://example.org/x"},
			[]TokenKind{Hashtag, Word, Word, Mention, URL},
		},
		{
			"kidney, kidney; KIDNEY!",
			[]string{"kidney", "kidney", "kidney"},
			[]TokenKind{Word, Word, Word},
		},
		{
			"heart-lung transplant",
			[]string{"heart", "lung", "transplant"},
			[]TokenKind{Word, Word, Word},
		},
		{
			"donor's wish",
			[]string{"donor's", "wish"},
			[]TokenKind{Word, Word},
		},
		{
			"60,000 people waiting",
			[]string{"60,000", "people", "waiting"},
			[]TokenKind{NumberTok, Word, Word},
		},
		{"", nil, nil},
		{"   \t\n ", nil, nil},
		{"🫀❤️", nil, nil},
	}
	for _, tt := range tests {
		got := Tokenize(tt.in)
		if !reflect.DeepEqual(texts(got), tt.wantText) && !(len(got) == 0 && len(tt.wantText) == 0) {
			t.Errorf("Tokenize(%q) texts = %v, want %v", tt.in, texts(got), tt.wantText)
			continue
		}
		if len(tt.wantKinds) > 0 && !reflect.DeepEqual(kinds(got), tt.wantKinds) {
			t.Errorf("Tokenize(%q) kinds = %v, want %v", tt.in, kinds(got), tt.wantKinds)
		}
	}
}

func TestTokenizeUnicode(t *testing.T) {
	got := Words("Señor donated a riñón… kidney ❤")
	want := []string{"señor", "donated", "a", "riñón", "kidney"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Words = %v, want %v", got, want)
	}
}

func TestTokenizePositions(t *testing.T) {
	in := "ab #cd"
	toks := Tokenize(in)
	if len(toks) != 2 {
		t.Fatalf("got %d tokens, want 2", len(toks))
	}
	if toks[0].Pos != 0 || toks[1].Pos != 3 {
		t.Errorf("positions = %d,%d; want 0,3", toks[0].Pos, toks[1].Pos)
	}
}

func TestWordsExcludesMentionsAndURLs(t *testing.T) {
	got := Words("@kidney_fan check https://kidney.org now")
	want := []string{"check", "now"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Words = %v, want %v", got, want)
	}
}

func TestTokenizeNeverPanics(t *testing.T) {
	f := func(s string) bool {
		_ = Tokenize(s)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTokenizeLowercasesWords(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok.Kind == Word || tok.Kind == Hashtag {
				for _, r := range tok.Text {
					if r >= 'A' && r <= 'Z' {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExtract(t *testing.T) {
	e := NewExtractor()
	tests := []struct {
		in          string
		wantCtx     bool
		wantOrgans  []organ.Organ
		wantTotal   int
		wantContext []string
	}{
		{
			"Please register as an organ donor — one kidney can save a life",
			true,
			[]organ.Organ{organ.Kidney},
			1,
			[]string{"donor"},
		},
		{
			"My uncle had a heart transplant and a kidney transplant",
			true,
			[]organ.Organ{organ.Heart, organ.Kidney},
			2,
			[]string{"transplant"},
		},
		{
			"I love kidney beans",
			false,
			[]organ.Organ{organ.Kidney},
			1,
			nil,
		},
		{
			"donate blood today",
			false,
			nil,
			0,
			[]string{"donate"},
		},
		{
			"60,000 on the waiting list for a kidney",
			true,
			[]organ.Organ{organ.Kidney},
			1,
			[]string{"waiting list"},
		},
		{
			"#OrganDonation gave my sister new lungs",
			false, // "organdonation" hashtag is one word, not a context term
			[]organ.Organ{organ.Lung},
			1,
			nil,
		},
		{
			"my kidneys, his kidney — donate!",
			true,
			[]organ.Organ{organ.Kidney},
			2,
			[]string{"donate"},
		},
	}
	for _, tt := range tests {
		ex := e.Extract(tt.in)
		if ex.InContext() != tt.wantCtx {
			t.Errorf("Extract(%q).InContext() = %v, want %v", tt.in, ex.InContext(), tt.wantCtx)
		}
		if !reflect.DeepEqual(ex.Organs(), tt.wantOrgans) {
			t.Errorf("Extract(%q).Organs = %v, want %v", tt.in, ex.Organs(), tt.wantOrgans)
		}
		if ex.TotalMentions() != tt.wantTotal {
			t.Errorf("Extract(%q).TotalMentions() = %d, want %d", tt.in, ex.TotalMentions(), tt.wantTotal)
		}
		if !reflect.DeepEqual(ex.ContextTerms(), tt.wantContext) {
			t.Errorf("Extract(%q).ContextTerms = %v, want %v", tt.in, ex.ContextTerms(), tt.wantContext)
		}
	}
}

func TestExtractMentionHandleDoesNotCount(t *testing.T) {
	e := NewExtractor()
	ex := e.Extract("@heart_donor hello")
	if ex.NumOrgans() != 0 || ex.NumContextTerms() != 0 {
		t.Errorf("mention handle matched keywords: %+v", ex)
	}
}

func TestMatchesFilterAgreesWithExtract(t *testing.T) {
	e := NewExtractor()
	cases := []string{
		"donate a kidney",
		"kidney beans rock",
		"be a donor",
		"",
		"heart transplant waiting list lungs donor",
		"the liver is an organ",
		"graft versus host, new liver",
	}
	for _, s := range cases {
		if got, want := e.MatchesFilter(s), e.Extract(s).InContext(); got != want {
			t.Errorf("MatchesFilter(%q) = %v, Extract().InContext() = %v", s, got, want)
		}
	}
}

func TestMatchesFilterProperty(t *testing.T) {
	e := NewExtractor()
	f := func(s string) bool {
		return e.MatchesFilter(s) == e.Extract(s).InContext()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestExtractClinicalVariants(t *testing.T) {
	e := NewExtractor()
	ex := e.Extract("renal transplant recipient with pulmonary complications")
	wantOrgans := []organ.Organ{organ.Kidney, organ.Lung}
	if !reflect.DeepEqual(ex.Organs(), wantOrgans) {
		t.Errorf("Organs = %v, want %v", ex.Organs(), wantOrgans)
	}
	if !ex.InContext() {
		t.Error("clinical-variant tweet should be in context")
	}
}

func BenchmarkTokenize(b *testing.B) {
	s := "RT @unos: Nearly 60,000 people are on the #kidney transplant waiting list — register as an organ donor today! https://example.org/donate"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Tokenize(s)
	}
}

func BenchmarkExtract(b *testing.B) {
	e := NewExtractor()
	s := "RT @unos: Nearly 60,000 people are on the #kidney transplant waiting list — register as an organ donor today!"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Extract(s)
	}
}
