package text

import (
	"strings"

	"donorsense/internal/organ"
)

// Extraction is the result of matching a tweet against the Figure 1
// keyword product.
type Extraction struct {
	// ContextTerms are the donation-context terms found, in order of first
	// appearance, deduplicated.
	ContextTerms []string
	// Organs are the distinct organs mentioned, in canonical order.
	Organs []organ.Organ
	// Mentions counts subject-form occurrences per organ (a tweet saying
	// "kidney" twice counts 2 for kidney).
	Mentions [organ.Count]int
	// ClinicalMentions counts subject occurrences using the clinical
	// variant (renal, hepatic, ...), a practitioner-language signal.
	ClinicalMentions int
	// Hashtags counts hashtag tokens in the tweet.
	Hashtags int
}

// InContext reports whether the tweet satisfies the collection predicate:
// at least one Context term and at least one Subject term (Figure 1).
func (e Extraction) InContext() bool {
	return len(e.ContextTerms) > 0 && len(e.Organs) > 0
}

// TotalMentions returns the total number of organ-subject occurrences.
func (e Extraction) TotalMentions() int {
	n := 0
	for _, c := range e.Mentions {
		n += c
	}
	return n
}

// Extractor matches tweet text against the organ-donation keyword set.
// It is safe for concurrent use after construction.
type Extractor struct {
	// contextUnigrams holds single-word context terms.
	contextUnigrams map[string]bool
	// contextBigrams holds two-word context terms keyed by first word,
	// e.g. "waiting" -> {"list"}.
	contextBigrams map[string]map[string]bool
}

// NewExtractor builds an Extractor from the canonical keyword vocabulary
// in package organ.
func NewExtractor() *Extractor {
	e := &Extractor{
		contextUnigrams: make(map[string]bool),
		contextBigrams:  make(map[string]map[string]bool),
	}
	for _, c := range organ.ContextWords() {
		parts := strings.Fields(c)
		switch len(parts) {
		case 1:
			e.contextUnigrams[parts[0]] = true
		case 2:
			m := e.contextBigrams[parts[0]]
			if m == nil {
				m = make(map[string]bool)
				e.contextBigrams[parts[0]] = m
			}
			m[parts[1]] = true
		default:
			// The vocabulary only contains unigrams and bigrams; longer
			// phrases would need a trie, which nothing requires yet.
			panic("text: context term longer than two words: " + c)
		}
	}
	return e
}

// Extract tokenizes the tweet text and returns its context terms and
// organ mentions.
func (e *Extractor) Extract(tweet string) Extraction {
	toks := Tokenize(tweet)
	words := make([]string, 0, len(toks))
	var ex Extraction
	for _, t := range toks {
		switch t.Kind {
		case Word, Hashtag:
			words = append(words, t.Text)
		}
		if t.Kind == Hashtag {
			ex.Hashtags++
		}
	}
	seenCtx := make(map[string]bool)
	seenOrg := [organ.Count]bool{}
	for i, w := range words {
		if e.contextUnigrams[w] && !seenCtx[w] {
			seenCtx[w] = true
			ex.ContextTerms = append(ex.ContextTerms, w)
		}
		if seconds, ok := e.contextBigrams[w]; ok && i+1 < len(words) {
			if next := words[i+1]; seconds[next] {
				term := w + " " + next
				if !seenCtx[term] {
					seenCtx[term] = true
					ex.ContextTerms = append(ex.ContextTerms, term)
				}
			}
		}
		if o, ok := organ.SubjectOrgan(w); ok {
			ex.Mentions[o.Index()]++
			seenOrg[o.Index()] = true
			if organ.IsClinicalForm(w) {
				ex.ClinicalMentions++
			}
		}
	}
	for _, o := range organ.All() {
		if seenOrg[o.Index()] {
			ex.Organs = append(ex.Organs, o)
		}
	}
	return ex
}

// MatchesFilter reports whether the tweet satisfies the Stream API filter
// predicate without building the full extraction. Equivalent to
// Extract(tweet).InContext().
func (e *Extractor) MatchesFilter(tweet string) bool {
	words := Words(tweet)
	haveCtx, haveOrg := false, false
	for i, w := range words {
		if !haveCtx {
			if e.contextUnigrams[w] {
				haveCtx = true
			} else if seconds, ok := e.contextBigrams[w]; ok && i+1 < len(words) && seconds[words[i+1]] {
				haveCtx = true
			}
		}
		if !haveOrg {
			if _, ok := organ.SubjectOrgan(w); ok {
				haveOrg = true
			}
		}
		if haveCtx && haveOrg {
			return true
		}
	}
	return false
}
