package text

import (
	"donorsense/internal/organ"
)

// Extraction is the result of matching a tweet against the Figure 1
// keyword product. It is a pure value: context terms are carried as
// interned vocabulary IDs and organs as a bitmask, so an Extraction can
// be copied, buffered, and folded later without referencing any
// extractor scratch state.
type Extraction struct {
	// ctxTerms holds the IDs of the donation-context terms found, in
	// order of first appearance, deduplicated. ctxN is the count.
	ctxTerms [maxContextTerms]uint8
	ctxN     uint8
	// organs is the distinct-organ bitmask, bit i = organ with Index i.
	organs uint8
	// Mentions counts subject-form occurrences per organ (a tweet saying
	// "kidney" twice counts 2 for kidney).
	Mentions [organ.Count]int
	// ClinicalMentions counts subject occurrences using the clinical
	// variant (renal, hepatic, ...), a practitioner-language signal.
	ClinicalMentions int
	// Hashtags counts hashtag tokens in the tweet.
	Hashtags int
}

// InContext reports whether the tweet satisfies the collection predicate:
// at least one Context term and at least one Subject term (Figure 1).
func (e Extraction) InContext() bool {
	return e.ctxN > 0 && e.organs != 0
}

// ContextTerms returns the donation-context terms found, in order of
// first appearance, deduplicated. The strings are interned vocabulary
// terms; only the slice header is allocated, and nil is returned when no
// term matched. Hot paths should prefer NumContextTerms.
func (e Extraction) ContextTerms() []string {
	if e.ctxN == 0 {
		return nil
	}
	out := make([]string, e.ctxN)
	for i := range out {
		out[i] = vocab.terms[e.ctxTerms[i]]
	}
	return out
}

// NumContextTerms returns how many distinct context terms matched,
// without allocating.
func (e Extraction) NumContextTerms() int { return int(e.ctxN) }

// Organs returns the distinct organs mentioned, in canonical order, or
// nil when none matched. Hot paths should prefer HasOrgan or iterating
// Mentions, which do not allocate.
func (e Extraction) Organs() []organ.Organ {
	if e.organs == 0 {
		return nil
	}
	out := make([]organ.Organ, 0, organ.Count)
	for _, o := range organ.All() {
		if e.organs&(1<<uint(o.Index())) != 0 {
			out = append(out, o)
		}
	}
	return out
}

// HasOrgan reports whether the organ was mentioned at least once.
func (e Extraction) HasOrgan(o organ.Organ) bool {
	return e.organs&(1<<uint(o.Index())) != 0
}

// NumOrgans returns how many distinct organs were mentioned.
func (e Extraction) NumOrgans() int {
	n := 0
	for b := e.organs; b != 0; b &= b - 1 {
		n++
	}
	return n
}

// TotalMentions returns the total number of organ-subject occurrences.
func (e Extraction) TotalMentions() int {
	n := 0
	for _, c := range e.Mentions {
		n += c
	}
	return n
}

// Extractor matches tweet text against the organ-donation keyword set.
// The keyword index itself is immutable and shared package-wide; an
// Extractor carries only reusable scratch buffers (token spans, lowered
// text, epoch-stamped seen marks), so Extract allocates nothing in the
// steady state. The scratch makes an Extractor NOT safe for concurrent
// use — construction is cheap, so give each goroutine its own.
type Extractor struct {
	spans []span
	lower []byte
	// seen[id] == epoch marks context term id as already emitted for the
	// current Extract call; bumping epoch resets all marks in O(1).
	seen  [maxContextTerms]uint32
	epoch uint32
}

// NewExtractor returns an Extractor backed by the canonical keyword
// vocabulary in package organ.
func NewExtractor() *Extractor { return &Extractor{} }

// Extract tokenizes the tweet text and returns its context terms and
// organ mentions.
func (e *Extractor) Extract(tweet string) Extraction {
	e.scan(tweet)
	e.epoch++
	if e.epoch == 0 { // uint32 wrap: clear stale marks, restart epochs
		e.seen = [maxContextTerms]uint32{}
		e.epoch = 1
	}
	var ex Extraction
	for i := range e.spans {
		sp := e.spans[i]
		if sp.hashtag {
			ex.Hashtags++
		}
		w := e.lower[sp.lo:sp.hi]
		if id, ok := vocab.unigram[string(w)]; ok && e.seen[id] != e.epoch {
			e.seen[id] = e.epoch
			ex.ctxTerms[ex.ctxN] = id
			ex.ctxN++
		}
		if rules, ok := vocab.bigrams[string(w)]; ok && i+1 < len(e.spans) {
			next := e.lower[e.spans[i+1].lo:e.spans[i+1].hi]
			for _, br := range rules {
				if br.second == string(next) {
					if e.seen[br.id] != e.epoch {
						e.seen[br.id] = e.epoch
						ex.ctxTerms[ex.ctxN] = br.id
						ex.ctxN++
					}
					break
				}
			}
		}
		if si, ok := vocab.subject[string(w)]; ok {
			ex.Mentions[si.organ.Index()]++
			ex.organs |= 1 << uint(si.organ.Index())
			if si.clinical {
				ex.ClinicalMentions++
			}
		}
	}
	return ex
}

// MatchesFilter reports whether the tweet satisfies the Stream API filter
// predicate without building the full extraction. Equivalent to
// Extract(tweet).InContext(), and allocation-free like Extract.
func (e *Extractor) MatchesFilter(tweet string) bool {
	e.scan(tweet)
	haveCtx, haveOrg := false, false
	for i := range e.spans {
		w := e.lower[e.spans[i].lo:e.spans[i].hi]
		if !haveCtx {
			if _, ok := vocab.unigram[string(w)]; ok {
				haveCtx = true
			} else if rules, ok := vocab.bigrams[string(w)]; ok && i+1 < len(e.spans) {
				next := e.lower[e.spans[i+1].lo:e.spans[i+1].hi]
				for _, br := range rules {
					if br.second == string(next) {
						haveCtx = true
						break
					}
				}
			}
		}
		if !haveOrg {
			if _, ok := vocab.subject[string(w)]; ok {
				haveOrg = true
			}
		}
		if haveCtx && haveOrg {
			return true
		}
	}
	return false
}
