//go:build !race

package text

// raceEnabled reports that this test binary was built with the race
// detector, which instruments allocations and invalidates strict
// allocs-per-op budgets.
const raceEnabled = false
