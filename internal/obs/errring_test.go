package obs

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestErrorRingCapturesWarnAndAbove(t *testing.T) {
	ring := NewErrorRing(8)
	var out bytes.Buffer
	logger := slog.New(CaptureErrors(slog.NewTextHandler(&out, nil), ring))

	logger.Info("all quiet", "n", 1)
	logger.Warn("stream disconnected", "attempt", 3)
	logger.With("component", "collect").Error("checkpoint failed", "err", "disk full")

	recs := ring.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("captured %d records, want 2 (info must not be captured): %+v", len(recs), recs)
	}
	if recs[0].Level != "WARN" || recs[0].Msg != "stream disconnected" || !strings.Contains(recs[0].Attrs, "attempt=3") {
		t.Errorf("warn record wrong: %+v", recs[0])
	}
	if recs[1].Level != "ERROR" || !strings.Contains(recs[1].Attrs, "component=collect") ||
		!strings.Contains(recs[1].Attrs, "err=disk full") {
		t.Errorf("error record must carry With attrs: %+v", recs[1])
	}
	if ring.Total() != 2 {
		t.Errorf("Total = %d, want 2", ring.Total())
	}
	// The tee must still forward everything to the real handler.
	if !strings.Contains(out.String(), "all quiet") || !strings.Contains(out.String(), "disk full") {
		t.Errorf("tee swallowed output:\n%s", out.String())
	}
}

func TestErrorRingCapturesBelowHandlerLevel(t *testing.T) {
	// stderr at error-only must not hide warnings from /statusz.
	ring := NewErrorRing(8)
	var out bytes.Buffer
	h := slog.NewTextHandler(&out, &slog.HandlerOptions{Level: slog.LevelError})
	logger := slog.New(CaptureErrors(h, ring))

	logger.Warn("quietly wrong")
	if got := len(ring.Snapshot()); got != 1 {
		t.Fatalf("captured %d, want 1", got)
	}
	if strings.Contains(out.String(), "quietly wrong") {
		t.Errorf("warn leaked past an error-level handler:\n%s", out.String())
	}
}

func TestErrorRingOverwritesOldest(t *testing.T) {
	ring := NewErrorRing(3)
	logger := slog.New(CaptureErrors(slog.NewTextHandler(&bytes.Buffer{}, nil), ring))
	for _, msg := range []string{"a", "b", "c", "d", "e"} {
		logger.Warn(msg)
	}
	recs := ring.Snapshot()
	if len(recs) != 3 {
		t.Fatalf("retained %d, want 3", len(recs))
	}
	for i, want := range []string{"c", "d", "e"} {
		if recs[i].Msg != want {
			t.Errorf("recs[%d].Msg = %q, want %q (oldest-first order)", i, recs[i].Msg, want)
		}
	}
	if ring.Total() != 5 {
		t.Errorf("Total = %d, want 5", ring.Total())
	}
}

func TestErrorRingGroupAttrs(t *testing.T) {
	ring := NewErrorRing(4)
	logger := slog.New(CaptureErrors(slog.NewTextHandler(&bytes.Buffer{}, nil), ring))
	logger.WithGroup("shard").With("id", 2).Warn("stalled", slog.Group("beat", "age", "31s"))
	recs := ring.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("captured %d, want 1", len(recs))
	}
	if !strings.Contains(recs[0].Attrs, "shard.id=2") || !strings.Contains(recs[0].Attrs, "shard.beat.age=31s") {
		t.Errorf("group-qualified attrs wrong: %q", recs[0].Attrs)
	}
}

func TestErrorRingStatusSection(t *testing.T) {
	ring := NewErrorRing(4)
	sec := ring.StatusSection()
	if sec.Table != nil {
		t.Error("empty ring must render without a table")
	}
	logger := slog.New(CaptureErrors(slog.NewTextHandler(&bytes.Buffer{}, nil), ring))
	logger.Warn("w1", "k", "v")
	sec = ring.StatusSection()
	if sec.Table == nil || len(sec.Table.Rows) != 1 {
		t.Fatalf("section table wrong: %+v", sec.Table)
	}
	if sec.Table.Rows[0][2] != "w1" || sec.Table.Rows[0][3] != "k=v" {
		t.Errorf("row wrong: %v", sec.Table.Rows[0])
	}
}

// TestServerTracesRouteGated checks /debug/traces answers 404 until a
// ring is attached.
func TestServerTracesRouteGated(t *testing.T) {
	srv := NewServer(NewRegistry())
	h := srv.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("without ring: %d, want 404", rec.Code)
	}
}

// TestHealthzIncludesBuild checks the build block landed in /healthz.
func TestHealthzIncludesBuild(t *testing.T) {
	srv := NewServer(NewRegistry())
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz: %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"go_version"`) {
		t.Errorf("healthz missing build info:\n%s", rec.Body.String())
	}
}

// TestRequestCounterByPath checks the middleware counts requests under
// normalized path labels.
func TestRequestCounterByPath(t *testing.T) {
	reg := NewRegistry()
	srv := NewServer(reg)
	h := srv.Handler()
	for _, p := range []string{"/metrics", "/metrics", "/statusz", "/nope"} {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", p, nil))
	}
	vec := reg.CounterVec("donorsense_telemetry_requests_total",
		"Telemetry HTTP requests handled, by normalized path.", "path")
	if got := vec.With("/metrics").Value(); got != 2 {
		t.Errorf("/metrics count = %v, want 2", got)
	}
	if got := vec.With("other").Value(); got != 1 {
		t.Errorf("other count = %v, want 1", got)
	}
}
