package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync/atomic"
)

// Structured logging: every component of the collector logs through a
// shared slog base logger tagged with a "component" attribute, so a
// multi-day run's stderr is grep-able by subsystem and machine-parseable
// when JSON output is selected.

// baseLogger is the process-wide base; Logger derives component loggers
// from it. Defaults to slog's default logger until SetLogger runs.
var baseLogger atomic.Pointer[slog.Logger]

// SetLogger installs the base logger all components derive from.
func SetLogger(l *slog.Logger) { baseLogger.Store(l) }

// Logger returns the shared base logger tagged with the component name.
func Logger(component string) *slog.Logger {
	if l := baseLogger.Load(); l != nil {
		return l.With("component", component)
	}
	return slog.Default().With("component", component)
}

// NewLogger builds a slog logger writing to w at the given level, as
// human-readable text or single-line JSON.
func NewLogger(w io.Writer, level slog.Level, asJSON bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if asJSON {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}
