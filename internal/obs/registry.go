// Package obs is the operational-telemetry layer of the collector: a
// concurrent metrics registry with Prometheus text-format exposition, an
// HTTP telemetry server (/metrics, /healthz, /debug/pprof, /debug/vars),
// and component-tagged structured logging on log/slog.
//
// The paper's sensor collected for 385 days; a run that long is only
// trustworthy when ingest rate, geocode resolution, and drop causes are
// continuously measurable. Everything here is stdlib-only so the
// collector stays dependency-free.
//
// The registry supports counters, gauges, and histograms, each in plain
// and labeled (vec) form, plus function-backed instruments whose value is
// read at scrape time. All instruments are safe for concurrent use; the
// hot path (Inc/Add/Observe) is lock-free after the first registration.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies a metric family.
type Kind int

// Metric family kinds, matching the Prometheus exposition TYPE keywords.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the exposition TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry holds metric families and renders them in the Prometheus text
// format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric with all its labeled children.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string  // label names; nil for a plain (unlabeled) metric
	buckets []float64 // histogram upper bounds (sorted, without +Inf)

	mu     sync.RWMutex
	series map[string]*series // keyed by joined label values
}

// series is one (labelset, value) pair of a family.
type series struct {
	labelValues []string
	val         atomicFloat    // counter / gauge value
	fn          func() float64 // when set, read at scrape time instead of val

	// Histogram state: per-bucket counts (non-cumulative; cumulated at
	// exposition), plus sum and count of observations.
	counts []atomic.Uint64
	sum    atomicFloat
	count  atomic.Uint64

	// exemplar pins the most recent traced observation to the series —
	// the pivot from "this histogram looks slow" to "show me one slow
	// trace". Last-write-wins via one atomic pointer store.
	exemplar atomic.Pointer[Exemplar]
}

// Exemplar links one observed value to the trace that produced it.
type Exemplar struct {
	Value   float64
	TraceID string
	Time    time.Time
}

// atomicFloat is a float64 with atomic add/store/load.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }

// register returns the family for name, creating it on first use. A name
// re-registered with a different kind, label set, or bucket layout is a
// programming error and panics.
func (r *Registry) register(name, help string, kind Kind, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) || !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different shape", name))
		}
		return f
	}
	f := &family{
		name:    name,
		help:    help,
		kind:    kind,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		series:  make(map[string]*series),
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// child returns the series for the given label values, creating it on
// first use.
func (f *family) child(labelValues []string) *series {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(labelValues)))
	}
	key := strings.Join(labelValues, "\xff")
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok = f.series[key]; ok {
		return s
	}
	s = &series{labelValues: append([]string(nil), labelValues...)}
	if f.kind == KindHistogram {
		s.counts = make([]atomic.Uint64, len(f.buckets)+1) // +1 for +Inf
	}
	f.series[key] = s
	return s
}

// ---- Counter ----

// Counter is a monotonically increasing value.
type Counter struct{ s *series }

// Inc adds 1.
func (c *Counter) Inc() { c.s.val.Add(1) }

// Add adds v; negative deltas are ignored (counters only go up).
func (c *Counter) Add(v float64) {
	if v > 0 {
		c.s.val.Add(v)
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.s.val.Load() }

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return &Counter{r.register(name, help, KindCounter, nil, nil).child(nil)}
}

// CounterFunc registers a counter whose value is produced by fn at scrape
// time — the bridge for components that already keep their own atomic
// counters (e.g. the stream client's lifetime stats). Re-registering the
// same name replaces the function.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, KindCounter, nil, nil).child(nil).fn = fn
}

// CounterVec is a counter family partitioned by labels.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (order matches the
// label names given at registration).
func (v *CounterVec) With(labelValues ...string) *Counter {
	return &Counter{v.f.child(labelValues)}
}

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.register(name, help, KindCounter, labelNames, nil)}
}

// ---- Gauge ----

// Gauge is a value that can go up and down.
type Gauge struct{ s *series }

// Set stores v.
func (g *Gauge) Set(v float64) { g.s.val.Store(v) }

// Add adds v (may be negative).
func (g *Gauge) Add(v float64) { g.s.val.Add(v) }

// Inc adds 1.
func (g *Gauge) Inc() { g.s.val.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.s.val.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.s.val.Load() }

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return &Gauge{r.register(name, help, KindGauge, nil, nil).child(nil)}
}

// GaugeFunc registers a gauge whose value is produced by fn at scrape
// time. Re-registering the same name replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, KindGauge, nil, nil).child(nil).fn = fn
}

// GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return &Gauge{v.f.child(labelValues)}
}

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, KindGauge, labelNames, nil)}
}

// ---- Histogram ----

// Histogram samples observations into configurable buckets; quantiles are
// derivable from the cumulative bucket counts at query time.
type Histogram struct {
	s       *series
	buckets []float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// Buckets are sorted; a linear scan beats binary search for the
	// ~10-bucket layouts used here.
	i := 0
	for i < len(h.buckets) && v > h.buckets[i] {
		i++
	}
	h.s.counts[i].Add(1)
	h.s.sum.Add(v)
	h.s.count.Add(1)
}

// Since records the seconds elapsed from t to now — the idiom for stage
// latency instrumentation.
func (h *Histogram) Since(t time.Time) { h.Observe(time.Since(t).Seconds()) }

// ObserveExemplar records one sample like Observe and, when traceID is
// non-empty, additionally pins it as the series' exemplar. Call sites on
// a sampled-tracing path pass the trace ID of the current trace (or ""
// for unsampled work, which degrades to a plain Observe).
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID != "" {
		h.s.exemplar.Store(&Exemplar{Value: v, TraceID: traceID, Time: time.Now()})
	}
}

// Exemplar returns the series' most recent traced observation, or nil
// when none has been recorded.
func (h *Histogram) Exemplar() *Exemplar { return h.s.exemplar.Load() }

// Count returns how many samples have been observed.
func (h *Histogram) Count() uint64 { return h.s.count.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 { return h.s.sum.Load() }

// DefBuckets is the default latency layout (seconds): 100µs .. ~10s.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// ExpBuckets returns n buckets starting at start, each factor× the last.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = start
		start *= factor
	}
	return b
}

func (r *Registry) histogramFamily(name, help string, buckets []float64) *family {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	sorted := append([]float64(nil), buckets...)
	sort.Float64s(sorted)
	return r.register(name, help, KindHistogram, nil, sorted)
}

// Histogram registers (or fetches) an unlabeled histogram. A nil or empty
// bucket slice uses DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.histogramFamily(name, help, buckets)
	return &Histogram{s: f.child(nil), buckets: f.buckets}
}

// HistogramVec is a histogram family partitioned by labels.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return &Histogram{s: v.f.child(labelValues), buckets: v.f.buckets}
}

// HistogramVec registers (or fetches) a labeled histogram family. A nil
// or empty bucket slice uses DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	sorted := append([]float64(nil), buckets...)
	sort.Float64s(sorted)
	return &HistogramVec{r.register(name, help, KindHistogram, labelNames, sorted)}
}
