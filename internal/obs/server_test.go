package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_total", "A counter.").Add(9)
	s := NewServer(reg)
	s.AddHealthCheck("always_ok", func() (any, error) { return "fine", nil })
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	code, body := get(t, hs.URL+"/metrics")
	if code != 200 || !strings.Contains(body, "test_total 9") {
		t.Errorf("/metrics = %d %q", code, body)
	}

	code, body = get(t, hs.URL+"/healthz")
	if code != 200 {
		t.Errorf("/healthz = %d %q", code, body)
	}
	var st struct {
		Status string         `json:"status"`
		Checks map[string]any `json:"checks"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("healthz not JSON: %v\n%s", err, body)
	}
	if st.Status != "ok" || st.Checks["always_ok"] != "fine" {
		t.Errorf("healthz = %+v", st)
	}

	// /debug/vars must include the bridged registry view.
	code, body = get(t, hs.URL+"/debug/vars")
	if code != 200 || !strings.Contains(body, "donorsense_metrics") {
		t.Errorf("/debug/vars = %d (want donorsense_metrics key)", code)
	}

	// pprof index should respond (content-type text/html).
	code, body = get(t, hs.URL+"/debug/pprof/")
	if code != 200 || !strings.Contains(body, "pprof") {
		t.Errorf("/debug/pprof/ = %d", code)
	}
}

// TestServerQueryAPIGating: /api/ follows the /debug/traces attach
// pattern — 404 with a hint until a handler is attached, live once it
// is, and 404 again after detaching. No nil-handler panic at any point.
func TestServerQueryAPIGating(t *testing.T) {
	s := NewServer(NewRegistry())
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	code, body := get(t, hs.URL+"/api/stats")
	if code != http.StatusNotFound || !strings.Contains(body, "query API disabled") {
		t.Errorf("unattached /api/stats = %d %q, want 404 with hint", code, body)
	}

	s.SetQueryAPI(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "api:%s", r.URL.Path)
	}))
	code, body = get(t, hs.URL+"/api/stats")
	if code != http.StatusOK || body != "api:/api/stats" {
		t.Errorf("attached /api/stats = %d %q", code, body)
	}

	s.SetQueryAPI(nil)
	code, _ = get(t, hs.URL+"/api/stats")
	if code != http.StatusNotFound {
		t.Errorf("detached /api/stats = %d, want 404", code)
	}
}

func TestServerHealthzDegraded(t *testing.T) {
	s := NewServer(NewRegistry())
	s.AddHealthCheck("broken", func() (any, error) { return nil, fmt.Errorf("on fire") })
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	code, body := get(t, hs.URL+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Errorf("degraded healthz = %d, want 503", code)
	}
	if !strings.Contains(body, "on fire") || !strings.Contains(body, "degraded") {
		t.Errorf("healthz body missing failure detail: %s", body)
	}
}
