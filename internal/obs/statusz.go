package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"
)

// /statusz is the collector's one-page live status: where /metrics is a
// firehose for scrapers, /statusz is the page an operator reads to
// answer "is the run healthy right now?" in one glance — uptime, build,
// per-shard supervision, ingest progress, checkpoint freshness, and the
// recent-error ring. It renders as aligned text by default and as JSON
// with ?format=json.

// StatusField is one "key: value" line of a section.
type StatusField struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// StatusTable is an optional aligned table inside a section (e.g. one
// row per shard).
type StatusTable struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// StatusSection is one named block of the page. Sections are produced by
// the functions registered with Server.AddStatus, called at request
// time so the page is always live.
type StatusSection struct {
	Name   string        `json:"name"`
	Fields []StatusField `json:"fields,omitempty"`
	Table  *StatusTable  `json:"table,omitempty"`
}

// Field appends a "key: value" line; value is formatted with %v.
func (s *StatusSection) Field(key string, value any) {
	s.Fields = append(s.Fields, StatusField{Key: key, Value: fmt.Sprint(value)})
}

// StatusPage is the full /statusz document. Sections keep registration
// order so the page reads the same every refresh.
type StatusPage struct {
	App           string          `json:"app"`
	Build         BuildInfo       `json:"build"`
	Time          time.Time       `json:"time"`
	UptimeSeconds float64         `json:"uptime_seconds"`
	Sections      []StatusSection `json:"sections"`
}

// WriteText renders the page as the human-readable default format. The
// output is deterministic for a given page, which the golden test
// relies on.
func (p *StatusPage) WriteText(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", p.App, p.Build.String())
	fmt.Fprintf(w, "time: %s  uptime: %s\n", p.Time.UTC().Format(time.RFC3339), formatUptime(p.UptimeSeconds))
	for i := range p.Sections {
		sec := &p.Sections[i]
		fmt.Fprintf(w, "\n== %s ==\n", sec.Name)
		keyW := 0
		for _, f := range sec.Fields {
			if len(f.Key) > keyW {
				keyW = len(f.Key)
			}
		}
		for _, f := range sec.Fields {
			fmt.Fprintf(w, "%-*s  %s\n", keyW+1, f.Key+":", f.Value)
		}
		if sec.Table != nil {
			if len(sec.Fields) > 0 {
				fmt.Fprintln(w)
			}
			writeStatusTable(w, sec.Table)
		}
	}
}

// WriteJSON renders the page as indented JSON.
func (p *StatusPage) WriteJSON(w io.Writer) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(p)
}

// writeStatusTable renders an aligned column table: widths are computed
// over header and body so rows line up.
func writeStatusTable(w io.Writer, t *StatusTable) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			if i == len(cells)-1 {
				fmt.Fprint(w, cell) // last column unpadded: no trailing spaces
			} else {
				fmt.Fprintf(w, "%-*s", widths[i], cell)
			}
		}
		fmt.Fprintln(w)
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = dashes(widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
}

func dashes(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '-'
	}
	return string(b)
}

// formatUptime renders seconds as "3d4h", "2h13m", "5m3s", or "42s" —
// coarse on purpose; /statusz is read by humans.
func formatUptime(seconds float64) string {
	d := time.Duration(seconds * float64(time.Second))
	switch {
	case d >= 24*time.Hour:
		days := d / (24 * time.Hour)
		return fmt.Sprintf("%dd%dh", days, (d%(24*time.Hour))/time.Hour)
	case d >= time.Hour:
		return fmt.Sprintf("%dh%dm", d/time.Hour, (d%time.Hour)/time.Minute)
	case d >= time.Minute:
		return fmt.Sprintf("%dm%ds", d/time.Minute, (d%time.Minute)/time.Second)
	default:
		return fmt.Sprintf("%ds", d/time.Second)
	}
}

// statusEntry pairs a section name with its live producer.
type statusEntry struct {
	name string
	fn   func() StatusSection
}

// AddStatus registers (or replaces) a named /statusz section. Sections
// render in first-registration order; fn runs on every request and must
// be safe for concurrent use.
func (s *Server) AddStatus(name string, fn func() StatusSection) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.status {
		if s.status[i].name == name {
			s.status[i].fn = fn
			return
		}
	}
	s.status = append(s.status, statusEntry{name: name, fn: fn})
}

// statusPage assembles the live page from the registered sections.
func (s *Server) statusPage(now time.Time) *StatusPage {
	s.mu.RLock()
	entries := append([]statusEntry(nil), s.status...)
	s.mu.RUnlock()
	page := &StatusPage{
		App:           "donorsense",
		Build:         ReadBuild(),
		Time:          now,
		UptimeSeconds: now.Sub(s.start).Seconds(),
	}
	for _, e := range entries {
		sec := e.fn()
		sec.Name = e.name
		page.Sections = append(page.Sections, sec)
	}
	return page
}

// statusz serves /statusz as text (default) or JSON (?format=json).
func (s *Server) statusz(w http.ResponseWriter, r *http.Request) {
	page := s.statusPage(time.Now())
	switch r.URL.Query().Get("format") {
	case "", "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		page.WriteText(w)
	case "json":
		w.Header().Set("Content-Type", "application/json")
		page.WriteJSON(w)
	default:
		http.Error(w, "statusz: unknown format (want text or json)", http.StatusBadRequest)
	}
}

// RegistryStatusSection summarizes the registry itself (family count and
// a few headline series) — a cheap default section so even a bare
// telemetry server has a non-empty page.
func RegistryStatusSection(reg *Registry) func() StatusSection {
	return func() StatusSection {
		reg.mu.RLock()
		names := make([]string, 0, len(reg.families))
		for name := range reg.families {
			names = append(names, name)
		}
		reg.mu.RUnlock()
		sort.Strings(names)
		var sec StatusSection
		sec.Field("metric_families", len(names))
		return sec
	}
}
