package trace

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestNilTracerAndNilSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	if sp := tr.StartRoot("x"); sp != nil {
		t.Fatalf("nil tracer StartRoot = %v, want nil", sp)
	}
	if sp := tr.StartChild("x", SpanContext{TraceID: 1, SpanID: 1}); sp != nil {
		t.Fatalf("nil tracer StartChild = %v, want nil", sp)
	}
	if tr.Ring() != nil {
		t.Fatal("nil tracer Ring() != nil")
	}
	var sp *Span
	sp.SetAttr("k", "v")
	sp.SetInt("k", 1)
	sp.End()
	if ctx := sp.Context(); ctx.Sampled() {
		t.Fatalf("nil span context sampled: %+v", ctx)
	}
}

func TestZeroSampleRateNeverSamples(t *testing.T) {
	tr := New(Config{SampleRate: 0, Seed: 7})
	for i := 0; i < 10000; i++ {
		if tr.StartRoot("x") != nil {
			t.Fatal("sampled at rate 0")
		}
	}
}

func TestFullSampleRateAlwaysSamples(t *testing.T) {
	tr := New(Config{SampleRate: 1, Seed: 7, RingSize: 16})
	for i := 0; i < 100; i++ {
		if tr.StartRoot("x") == nil {
			t.Fatal("unsampled at rate 1")
		}
	}
}

func TestSampleRateIsApproximatelyHonored(t *testing.T) {
	tr := New(Config{SampleRate: 0.1, Seed: 42})
	n := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if sp := tr.StartRoot("x"); sp != nil {
			n++
		}
	}
	got := float64(n) / draws
	if got < 0.08 || got > 0.12 {
		t.Fatalf("sample rate 0.1 produced %.4f", got)
	}
}

func TestSeededIDsAreDeterministic(t *testing.T) {
	a := New(Config{SampleRate: 1, Seed: 99})
	b := New(Config{SampleRate: 1, Seed: 99})
	for i := 0; i < 10; i++ {
		sa, sb := a.StartRoot("x"), b.StartRoot("x")
		if sa.Ctx != sb.Ctx {
			t.Fatalf("draw %d: %+v != %+v under same seed", i, sa.Ctx, sb.Ctx)
		}
	}
}

func TestChildParentLinks(t *testing.T) {
	tr := New(Config{SampleRate: 1, Seed: 1, RingSize: 8})
	root := tr.StartRoot("root")
	child := tr.StartChild("child", root.Context())
	if child.Ctx.TraceID != root.Ctx.TraceID {
		t.Fatalf("child trace %x != root trace %x", child.Ctx.TraceID, root.Ctx.TraceID)
	}
	if child.Parent != root.Ctx.SpanID {
		t.Fatalf("child parent %x != root span %x", child.Parent, root.Ctx.SpanID)
	}
	if child.Ctx.SpanID == root.Ctx.SpanID {
		t.Fatal("child reused root span id")
	}
	if sp := tr.StartChild("orphan", SpanContext{}); sp != nil {
		t.Fatal("child of unsampled context must be nil")
	}
	child.End()
	root.End()
	if got := len(tr.Ring().Snapshot()); got != 2 {
		t.Fatalf("ring holds %d spans, want 2", got)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	tr := New(Config{SampleRate: 1, Seed: 1, RingSize: 4})
	for i := 0; i < 10; i++ {
		sp := tr.StartRoot("x")
		sp.SetInt("i", int64(i))
		sp.End()
	}
	snap := tr.Ring().Snapshot()
	if len(snap) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(snap))
	}
	if tr.Ring().Total() != 10 {
		t.Fatalf("Total = %d, want 10", tr.Ring().Total())
	}
	// The survivors must be the last four published, oldest first.
	for j, want := range []string{"6", "7", "8", "9"} {
		if got := snap[j].Attrs()[0].Value; got != want {
			t.Fatalf("slot %d holds i=%s, want %s", j, got, want)
		}
	}
}

func TestAttrCapDropsExcess(t *testing.T) {
	tr := New(Config{SampleRate: 1, Seed: 1})
	sp := tr.StartRoot("x")
	for i := 0; i < maxAttrs+5; i++ {
		sp.SetInt("k", int64(i))
	}
	if got := len(sp.Attrs()); got != maxAttrs {
		t.Fatalf("attrs = %d, want capped at %d", got, maxAttrs)
	}
}

func TestSlowSpanEmitsWideEvent(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	tr := New(Config{SampleRate: 1, Seed: 1, SlowSpan: time.Nanosecond, Logger: logger})
	sp := tr.StartRoot("slow.stage")
	sp.SetAttr("shard", "3")
	time.Sleep(time.Millisecond)
	sp.End()

	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("wide event not valid JSON: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "slow span" {
		t.Fatalf("msg = %v", rec["msg"])
	}
	if rec["name"] != "slow.stage" || rec["shard"] != "3" {
		t.Fatalf("wide event missing span context: %v", rec)
	}
	if rec["trace"] != sp.Ctx.TraceString() {
		t.Fatalf("trace = %v, want %s", rec["trace"], sp.Ctx.TraceString())
	}

	// Fast spans stay silent.
	buf.Reset()
	tr2 := New(Config{SampleRate: 1, Seed: 1, SlowSpan: time.Hour, Logger: logger})
	tr2.StartRoot("fast").End()
	if buf.Len() != 0 {
		t.Fatalf("fast span logged: %s", buf.String())
	}
}

// buildTestTrace publishes one three-span trace plus one unrelated slow
// span and returns the tracer.
func buildTestTrace(t *testing.T) *Tracer {
	t.Helper()
	tr := New(Config{SampleRate: 1, Seed: 5, RingSize: 64})
	root := tr.StartRoot("stream.read")
	dec := tr.StartChild("wire.decode", root.Context())
	dec.End()
	fold := tr.StartChild("ingest.fold", root.Context())
	fold.SetAttr("shard", "0")
	time.Sleep(2 * time.Millisecond)
	fold.End()
	root.End()

	other := tr.StartRoot("checkpoint.save")
	time.Sleep(2 * time.Millisecond)
	other.End()
	return tr
}

func TestHandlerJSON(t *testing.T) {
	tr := buildTestTrace(t)
	rr := httptest.NewRecorder()
	tr.Ring().Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var body struct {
		Capacity int `json:"capacity"`
		Traces   int `json:"traces"`
		Spans    []struct {
			TraceID  string            `json:"trace_id"`
			ParentID string            `json:"parent_id"`
			Name     string            `json:"name"`
			Attrs    map[string]string `json:"attrs"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rr.Body.String())
	}
	if body.Capacity != 64 || body.Traces != 2 || len(body.Spans) != 4 {
		t.Fatalf("capacity=%d traces=%d spans=%d, want 64/2/4\n%s",
			body.Capacity, body.Traces, len(body.Spans), rr.Body.String())
	}
	// The first trace's spans come grouped and start-ordered, root first.
	if body.Spans[0].Name != "stream.read" || body.Spans[0].ParentID != "" {
		t.Fatalf("first span %+v, want stream.read root", body.Spans[0])
	}
	found := false
	for _, s := range body.Spans {
		if s.Name == "ingest.fold" {
			found = true
			if s.Attrs["shard"] != "0" {
				t.Fatalf("fold attrs = %v", s.Attrs)
			}
			if s.TraceID != body.Spans[0].TraceID {
				t.Fatal("fold span not grouped with its trace")
			}
			if s.ParentID == "" {
				t.Fatal("fold span lost its parent link")
			}
		}
	}
	if !found {
		t.Fatal("ingest.fold span missing")
	}
}

func TestHandlerFilters(t *testing.T) {
	tr := buildTestTrace(t)
	get := func(query string) string {
		rr := httptest.NewRecorder()
		tr.Ring().Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces"+query, nil))
		b, _ := io.ReadAll(rr.Body)
		return string(b)
	}

	// min filters out the fast decode span but keeps the slow ones.
	body := get("?min=1ms")
	if strings.Contains(body, "wire.decode") {
		t.Fatalf("min filter kept fast span:\n%s", body)
	}
	if !strings.Contains(body, "ingest.fold") || !strings.Contains(body, "checkpoint.save") {
		t.Fatalf("min filter dropped slow spans:\n%s", body)
	}

	// stage filters by name substring.
	body = get("?stage=decode")
	if !strings.Contains(body, "wire.decode") || strings.Contains(body, "checkpoint.save") {
		t.Fatalf("stage filter wrong:\n%s", body)
	}

	// limit keeps the most recent traces.
	body = get("?limit=1")
	if strings.Contains(body, "stream.read") || !strings.Contains(body, "checkpoint.save") {
		t.Fatalf("limit filter wrong:\n%s", body)
	}

	// bad parameters are 400s.
	rr := httptest.NewRecorder()
	tr.Ring().Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces?min=bogus", nil))
	if rr.Code != 400 {
		t.Fatalf("bad min: status %d", rr.Code)
	}
}

func TestHandlerTextWaterfall(t *testing.T) {
	tr := buildTestTrace(t)
	rr := httptest.NewRecorder()
	tr.Ring().Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces?format=text", nil))
	body := rr.Body.String()
	if !strings.Contains(body, "=== trace ") {
		t.Fatalf("no trace header:\n%s", body)
	}
	// Children indent under the root and carry a duration bar.
	if !strings.Contains(body, "  wire.decode") || !strings.Contains(body, "  ingest.fold") {
		t.Fatalf("children not indented:\n%s", body)
	}
	if !strings.Contains(body, "#") {
		t.Fatalf("no duration bars:\n%s", body)
	}
	if !strings.Contains(body, "shard=0") {
		t.Fatalf("attrs missing from text view:\n%s", body)
	}
}
