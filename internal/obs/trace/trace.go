// Package trace is the collector's third observability pillar, next to
// the metrics registry and structured logs: cheap sampled spans that
// attribute latency per tweet and per stage across the whole data path —
// stream read → wire decode → organ extraction → geocode → in-order fold
// → checkpoint save — including per-shard attribution and restart
// incarnations under the shard supervisor.
//
// The design is built for a hot path that must stay allocation-free when
// sampling is off:
//
//   - the sampling decision is one seeded-PRNG draw per stream line, and
//     an unsampled tweet costs downstream stages exactly one nil check;
//   - span and trace IDs come from the same seeded splitmix64 sequence,
//     so runs are reproducible under a fixed seed;
//   - spans start on the monotonic clock (time.Now's monotonic reading)
//     and record durations with time.Since, immune to wall-clock steps;
//   - completed spans land in a fixed-size lock-free ring buffer
//     (overwrite-oldest), exported over HTTP as /debug/traces;
//   - a span slower than the configured threshold additionally emits one
//     "wide event" slog line carrying the full span context, so slow
//     outliers survive even after the ring has wrapped.
//
// Everything is stdlib-only, matching the rest of internal/obs.
package trace

import (
	"log/slog"
	"strconv"
	"sync/atomic"
	"time"
)

// SpanContext identifies a sampled trace position: the trace it belongs
// to and the span that is the current parent. The zero value means "not
// sampled" and is what every unsampled tweet carries — downstream stages
// test Sampled() (a single compare) and skip all tracing work.
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
}

// Sampled reports whether this context belongs to a sampled trace.
func (c SpanContext) Sampled() bool { return c.TraceID != 0 }

// TraceString returns the trace ID as fixed-width hex — the form used in
// exemplars, wide events, and the /debug/traces endpoint.
func (c SpanContext) TraceString() string { return formatID(c.TraceID) }

func formatID(id uint64) string {
	const hexDigits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// maxAttrs bounds per-span annotations; the fixed array keeps a span a
// single allocation.
const maxAttrs = 8

// Span is one timed operation of a trace. A Span is created by a Tracer,
// annotated with SetAttr/SetInt, and finished with End, after which it is
// immutable and owned by the ring buffer. All methods are nil-receiver
// safe: an unsampled call site holds a nil *Span and pays only the nil
// check.
type Span struct {
	tracer *Tracer

	// Name is the stage label, e.g. "stream.read" or "ingest.fold".
	Name string
	// Ctx carries this span's trace ID and its own span ID (children
	// parent onto Ctx.SpanID).
	Ctx SpanContext
	// Parent is the parent span's ID within the same trace (0 = root).
	Parent uint64
	// Start is the span's start instant (monotonic). Duration is set by
	// End.
	Start    time.Time
	Duration time.Duration

	attrs  [maxAttrs]Attr
	nattrs int
}

// Context returns the span's context for parenting children; the zero
// context on a nil span.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.Ctx
}

// SetAttr annotates the span. No-op on nil spans or past the attr cap;
// must not be called after End.
func (s *Span) SetAttr(key, value string) {
	if s == nil || s.nattrs >= maxAttrs {
		return
	}
	s.attrs[s.nattrs] = Attr{Key: key, Value: value}
	s.nattrs++
}

// SetInt annotates the span with an integer value.
func (s *Span) SetInt(key string, value int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatInt(value, 10))
}

// Attrs returns the span's annotations.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	return s.attrs[:s.nattrs]
}

// End records the span's duration, publishes it to the tracer's ring
// buffer, and — when the span exceeded the slow threshold — emits one
// wide-event log line. The span must not be mutated afterwards. No-op on
// nil spans.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.Duration = time.Since(s.Start)
	t := s.tracer
	t.ring.put(s)
	if t.slow > 0 && s.Duration >= t.slow && t.logger != nil {
		// One "wide event": every span field on a single structured line,
		// so a slow outlier is fully diagnosable from logs alone even
		// after the ring has wrapped past it.
		args := make([]any, 0, 8+2*s.nattrs)
		args = append(args,
			"trace", s.Ctx.TraceString(),
			"span", formatID(s.Ctx.SpanID),
			"name", s.Name,
			"duration", s.Duration.String(),
		)
		for _, a := range s.Attrs() {
			args = append(args, a.Key, a.Value)
		}
		t.logger.Warn("slow span", args...)
	}
}

// Config configures a Tracer.
type Config struct {
	// SampleRate is the per-root-span sampling probability in [0, 1].
	// 0 disables tracing entirely (Sampled never fires); 1 samples every
	// tweet — the trace-smoke harness setting.
	SampleRate float64
	// Seed seeds the PRNG behind sampling decisions and span/trace IDs,
	// making both reproducible. 0 means 1.
	Seed uint64
	// RingSize is the completed-span ring capacity (default 4096).
	RingSize int
	// SlowSpan is the wide-event threshold: a span at least this slow is
	// logged as one structured line. 0 disables.
	SlowSpan time.Duration
	// Logger receives the wide events (nil disables them).
	Logger *slog.Logger
}

// Tracer creates sampled spans and owns the completed-span ring. All
// methods are safe for concurrent use; Sample and span creation are
// lock-free.
type Tracer struct {
	threshold uint64 // sample when a PRNG draw is below this
	state     atomic.Uint64
	ring      *Ring
	slow      time.Duration
	logger    *slog.Logger
	rate      float64
}

// New builds a tracer. A nil *Tracer is itself valid: every method
// degrades to a no-op, so call sites need no enabled-checks.
func New(cfg Config) *Tracer {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	size := cfg.RingSize
	if size <= 0 {
		size = 4096
	}
	t := &Tracer{
		ring:   NewRing(size),
		slow:   cfg.SlowSpan,
		logger: cfg.Logger,
		rate:   cfg.SampleRate,
	}
	t.state.Store(seed)
	switch {
	case cfg.SampleRate >= 1:
		t.threshold = ^uint64(0)
	case cfg.SampleRate <= 0:
		t.threshold = 0
	default:
		t.threshold = uint64(cfg.SampleRate * float64(1<<63) * 2)
	}
	return t
}

// Ring returns the completed-span ring buffer (nil on a nil tracer).
func (t *Tracer) Ring() *Ring {
	if t == nil {
		return nil
	}
	return t.ring
}

// SampleRate returns the configured sampling probability.
func (t *Tracer) SampleRate() float64 {
	if t == nil {
		return 0
	}
	return t.rate
}

// next draws the next value of the seeded splitmix64 sequence. Lock-free:
// the additive state update is a single atomic add, and the output mix is
// pure.
func (t *Tracer) next() uint64 {
	x := t.state.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// id draws a non-zero identifier (zero is reserved for "unsampled").
func (t *Tracer) id() uint64 {
	for {
		if v := t.next(); v != 0 {
			return v
		}
	}
}

// StartRoot makes the sampling decision for a new trace and, when it
// samples, returns the root span. The common (unsampled) case returns nil
// after exactly one PRNG draw; with SampleRate 0 or a nil tracer, not
// even that.
func (t *Tracer) StartRoot(name string) *Span {
	if t == nil || t.threshold == 0 {
		return nil
	}
	if t.threshold != ^uint64(0) && t.next() >= t.threshold {
		return nil
	}
	id := t.id()
	return &Span{
		tracer: t,
		Name:   name,
		Ctx:    SpanContext{TraceID: id, SpanID: id},
		Start:  time.Now(),
	}
}

// StartChild starts a span parented on ctx. Returns nil (free) when the
// parent is unsampled or the tracer is nil.
func (t *Tracer) StartChild(name string, parent SpanContext) *Span {
	if t == nil || !parent.Sampled() {
		return nil
	}
	return &Span{
		tracer: t,
		Name:   name,
		Ctx:    SpanContext{TraceID: parent.TraceID, SpanID: t.id()},
		Parent: parent.SpanID,
		Start:  time.Now(),
	}
}
