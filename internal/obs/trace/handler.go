package trace

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Handler serves the ring's contents as /debug/traces:
//
//	?format=json   flat span list, grouped by trace, oldest trace first
//	               (the default)
//	?format=text   human-readable per-trace waterfall
//	?min=10ms      only spans at least this slow
//	?stage=extract only spans whose name contains the substring
//	?trace=<hex>   only the given trace ID
//	?limit=50      at most this many traces (most recent kept)
func (r *Ring) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		var min time.Duration
		if v := q.Get("min"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil {
				http.Error(w, "bad min: "+err.Error(), http.StatusBadRequest)
				return
			}
			min = d
		}
		limit := 0
		if v := q.Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, "bad limit", http.StatusBadRequest)
				return
			}
			limit = n
		}
		traces := collectTraces(r.Snapshot(), min, q.Get("stage"), q.Get("trace"), limit)
		if q.Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			writeWaterfalls(w, traces, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, traces, r)
	})
}

// traceGroup is one trace's spans, ordered by start.
type traceGroup struct {
	id    uint64
	spans []*Span
}

// collectTraces groups, filters, and orders the snapshot. Traces are
// ordered by the start of their earliest span; spans within a trace by
// start. When limit > 0, only the most recent traces are kept.
func collectTraces(spans []*Span, min time.Duration, stage, traceHex string, limit int) []traceGroup {
	var wantTrace uint64
	if traceHex != "" {
		if id, err := strconv.ParseUint(traceHex, 16, 64); err == nil {
			wantTrace = id
		} else {
			return nil
		}
	}
	byTrace := make(map[uint64][]*Span)
	for _, s := range spans {
		if s.Duration < min {
			continue
		}
		if stage != "" && !strings.Contains(s.Name, stage) {
			continue
		}
		if wantTrace != 0 && s.Ctx.TraceID != wantTrace {
			continue
		}
		byTrace[s.Ctx.TraceID] = append(byTrace[s.Ctx.TraceID], s)
	}
	out := make([]traceGroup, 0, len(byTrace))
	for id, ss := range byTrace {
		sort.Slice(ss, func(i, j int) bool { return ss[i].Start.Before(ss[j].Start) })
		out = append(out, traceGroup{id: id, spans: ss})
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].spans[0].Start.Before(out[j].spans[0].Start)
	})
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// spanJSON is the wire form of one span on /debug/traces.
type spanJSON struct {
	TraceID  string            `json:"trace_id"`
	SpanID   string            `json:"span_id"`
	ParentID string            `json:"parent_id,omitempty"`
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	Duration float64           `json:"duration_us"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

func writeJSON(w http.ResponseWriter, traces []traceGroup, r *Ring) {
	type body struct {
		Capacity int        `json:"capacity"`
		Total    uint64     `json:"total_spans"`
		Traces   int        `json:"traces"`
		Spans    []spanJSON `json:"spans"`
	}
	b := body{Capacity: r.Cap(), Total: r.Total(), Traces: len(traces)}
	for _, tg := range traces {
		for _, s := range tg.spans {
			sj := spanJSON{
				TraceID:  s.Ctx.TraceString(),
				SpanID:   formatID(s.Ctx.SpanID),
				Name:     s.Name,
				Start:    s.Start,
				Duration: float64(s.Duration) / float64(time.Microsecond),
			}
			if s.Parent != 0 {
				sj.ParentID = formatID(s.Parent)
			}
			if len(s.Attrs()) > 0 {
				sj.Attrs = make(map[string]string, len(s.Attrs()))
				for _, a := range s.Attrs() {
					sj.Attrs[a.Key] = a.Value
				}
			}
			b.Spans = append(b.Spans, sj)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(b)
}

// writeWaterfalls renders the text view: one indented waterfall per
// trace, spans offset relative to the trace start, with a proportional
// duration bar.
func writeWaterfalls(w http.ResponseWriter, traces []traceGroup, r *Ring) {
	fmt.Fprintf(w, "traces: %d   ring: %d spans held (cap %d, %d total)\n",
		len(traces), ringHeld(traces), r.Cap(), r.Total())
	for _, tg := range traces {
		writeWaterfall(w, tg)
	}
}

func ringHeld(traces []traceGroup) int {
	n := 0
	for _, tg := range traces {
		n += len(tg.spans)
	}
	return n
}

const barWidth = 32

func writeWaterfall(w http.ResponseWriter, tg traceGroup) {
	start := tg.spans[0].Start
	end := start
	for _, s := range tg.spans {
		if e := s.Start.Add(s.Duration); e.After(end) {
			end = e
		}
	}
	total := end.Sub(start)
	if total <= 0 {
		total = time.Nanosecond
	}
	fmt.Fprintf(w, "\n=== trace %s — %d spans, %s ===\n",
		formatID(tg.id), len(tg.spans), total.Round(time.Microsecond))

	depths := spanDepths(tg.spans)
	for i, s := range tg.spans {
		indent := strings.Repeat("  ", depths[i])
		off := s.Start.Sub(start)
		// Proportional bar: position and width scaled to the trace window.
		lo := int(float64(off) / float64(total) * barWidth)
		hi := int(float64(off+s.Duration) / float64(total) * barWidth)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > barWidth {
			hi = barWidth
		}
		bar := strings.Repeat(".", lo) + strings.Repeat("#", hi-lo) + strings.Repeat(".", barWidth-hi)
		label := fmt.Sprintf("%s%s", indent, s.Name)
		attrs := ""
		for _, a := range s.Attrs() {
			attrs += " " + a.Key + "=" + a.Value
		}
		fmt.Fprintf(w, "%-28s %10s %10s [%s]%s\n",
			label, "+"+off.Round(time.Microsecond).String(),
			s.Duration.Round(time.Microsecond).String(), bar, attrs)
	}
}

// spanDepths computes each span's indentation depth from its parent
// chain. Spans whose parent is missing from the trace (overwritten in the
// ring) render at depth 0.
func spanDepths(spans []*Span) []int {
	byID := make(map[uint64]int, len(spans)) // span id → index
	for i, s := range spans {
		byID[s.Ctx.SpanID] = i
	}
	depths := make([]int, len(spans))
	var depthOf func(i int, hops int) int
	depthOf = func(i, hops int) int {
		s := spans[i]
		if s.Parent == 0 || s.Parent == s.Ctx.SpanID || hops > len(spans) {
			return 0
		}
		pi, ok := byID[s.Parent]
		if !ok {
			return 0
		}
		return depthOf(pi, hops+1) + 1
	}
	for i := range spans {
		depths[i] = depthOf(i, 0)
	}
	return depths
}
