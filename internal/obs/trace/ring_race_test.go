package trace

import (
	"net/http/httptest"
	"sync"
	"testing"
)

// TestRingRaceStress hammers one small ring with concurrent span writers
// while readers continuously snapshot and serve /debug/traces. Run under
// -race this proves the publish protocol: every span a reader observes is
// complete (non-zero IDs, non-negative duration, name set) even while the
// ring wraps thousands of times.
func TestRingRaceStress(t *testing.T) {
	tr := New(Config{SampleRate: 1, Seed: 3, RingSize: 32})
	const (
		writers     = 8
		spansPer    = 2000
		readers     = 4
		httpReaders = 2
	)

	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	readerErrs := make(chan string, readers+httpReaders)

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < spansPer; i++ {
				root := tr.StartRoot("stream.read")
				root.SetInt("writer", int64(w))
				child := tr.StartChild("wire.decode", root.Context())
				child.End()
				root.End()
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, s := range tr.Ring().Snapshot() {
					if s.Ctx.TraceID == 0 || s.Ctx.SpanID == 0 {
						readerErrs <- "snapshot saw zero span/trace ID"
						return
					}
					if s.Name == "" {
						readerErrs <- "snapshot saw unnamed span"
						return
					}
					if s.Duration < 0 {
						readerErrs <- "snapshot saw negative duration"
						return
					}
				}
			}
		}()
	}

	h := tr.Ring().Handler()
	for r := 0; r < httpReaders; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rr := httptest.NewRecorder()
				h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces?format=text", nil))
				if rr.Code != 200 {
					readerErrs <- "handler returned non-200 under load"
					return
				}
			}
		}()
	}

	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	close(readerErrs)
	for msg := range readerErrs {
		t.Error(msg)
	}

	if got, want := tr.Ring().Total(), uint64(writers*spansPer*2); got != want {
		t.Fatalf("total spans %d, want %d", got, want)
	}
	if got := len(tr.Ring().Snapshot()); got != 32 {
		t.Fatalf("full ring snapshot holds %d, want 32", got)
	}
}
