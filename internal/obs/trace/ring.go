package trace

import "sync/atomic"

// Ring is the fixed-size, lock-free buffer of completed spans. Writers
// claim a slot with one atomic add and publish the immutable span with
// one atomic pointer store; when the ring is full the oldest span is
// overwritten. Readers snapshot concurrently without blocking writers.
//
// The atomic pointer store is the publication point: a span is fully
// written (End set Duration last) before it is stored, so any reader that
// loads the pointer observes a complete span. Spans are never mutated
// after publication.
type Ring struct {
	slots []atomic.Pointer[Span]
	pos   atomic.Uint64 // next slot index to claim; also the lifetime count
}

// NewRing returns a ring holding up to size completed spans (minimum 1).
func NewRing(size int) *Ring {
	if size < 1 {
		size = 1
	}
	return &Ring{slots: make([]atomic.Pointer[Span], size)}
}

// put publishes one completed span, overwriting the oldest when full.
func (r *Ring) put(s *Span) {
	idx := r.pos.Add(1) - 1
	r.slots[idx%uint64(len(r.slots))].Store(s)
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Total returns how many spans have ever been published (including ones
// already overwritten).
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.pos.Load()
}

// Snapshot returns the spans currently held, approximately oldest first.
// It is a best-effort point-in-time view: spans published while the
// snapshot runs may or may not appear, but every returned span is
// complete and immutable. Nil-safe.
func (r *Ring) Snapshot() []*Span {
	if r == nil {
		return nil
	}
	n := uint64(len(r.slots))
	pos := r.pos.Load()
	out := make([]*Span, 0, n)
	// pos is the next slot to claim, so pos%n is the oldest slot; walk one
	// full revolution from there.
	for i := uint64(0); i < n; i++ {
		if s := r.slots[(pos+i)%n].Load(); s != nil {
			out = append(out, s)
		}
	}
	return out
}
