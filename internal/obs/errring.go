package obs

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"time"
)

// ErrorRing keeps the last N warn-or-worse log records in memory so
// /statusz can answer "what has gone wrong lately?" without an operator
// having to scroll a multi-day stderr. It is fed by the slog tee
// installed with CaptureErrors and is safe for concurrent use.
type ErrorRing struct {
	mu    sync.Mutex
	recs  []ErrorRecord
	next  int    // slot the next record lands in
	total uint64 // lifetime records, including overwritten ones
}

// ErrorRecord is one captured log record, pre-rendered to strings so the
// ring never retains live objects from the logging call site.
type ErrorRecord struct {
	Time  time.Time `json:"time"`
	Level string    `json:"level"`
	Msg   string    `json:"msg"`
	Attrs string    `json:"attrs,omitempty"` // "k=v k=v" rendering of the record's attrs
}

// NewErrorRing returns a ring retaining the last n records (minimum 1).
func NewErrorRing(n int) *ErrorRing {
	if n < 1 {
		n = 1
	}
	return &ErrorRing{recs: make([]ErrorRecord, 0, n)}
}

// Add appends a record, overwriting the oldest once the ring is full.
func (r *ErrorRing) Add(rec ErrorRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.recs) < cap(r.recs) {
		r.recs = append(r.recs, rec)
	} else {
		r.recs[r.next] = rec
		r.next = (r.next + 1) % cap(r.recs)
	}
	r.total++
}

// Total returns how many records the ring has ever seen.
func (r *ErrorRing) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot returns the retained records, oldest first.
func (r *ErrorRing) Snapshot() []ErrorRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ErrorRecord, 0, len(r.recs))
	if len(r.recs) < cap(r.recs) {
		return append(out, r.recs...)
	}
	out = append(out, r.recs[r.next:]...)
	return append(out, r.recs[:r.next]...)
}

// StatusSection renders the ring as a /statusz section: a lifetime total
// plus one table row per retained record.
func (r *ErrorRing) StatusSection() StatusSection {
	recs := r.Snapshot()
	sec := StatusSection{
		Fields: []StatusField{{Key: "total_warnings", Value: fmt.Sprintf("%d", r.Total())}},
	}
	if len(recs) == 0 {
		return sec
	}
	tbl := &StatusTable{Columns: []string{"time", "level", "message", "attrs"}}
	for _, rec := range recs {
		tbl.Rows = append(tbl.Rows, []string{
			rec.Time.UTC().Format(time.RFC3339), rec.Level, rec.Msg, rec.Attrs,
		})
	}
	sec.Table = tbl
	return sec
}

// CaptureErrors wraps a slog handler so every record at Warn or above is
// also appended to the ring. The wrapped handler keeps its own level
// filtering for output; capture happens regardless, so /statusz shows
// warnings even when stderr is set to error-only.
func CaptureErrors(h slog.Handler, ring *ErrorRing) slog.Handler {
	return &teeHandler{next: h, ring: ring}
}

// teeHandler forwards everything to next and copies Warn+ records into
// the ring, carrying WithAttrs/WithGroup context along.
type teeHandler struct {
	next   slog.Handler
	ring   *ErrorRing
	prefix string // rendered attrs accumulated via WithAttrs, group-qualified
	groups string // dotted group path for subsequent attrs
}

func (t *teeHandler) Enabled(ctx context.Context, level slog.Level) bool {
	// Warn+ must reach Handle for capture even when next would drop it.
	return level >= slog.LevelWarn || t.next.Enabled(ctx, level)
}

func (t *teeHandler) Handle(ctx context.Context, rec slog.Record) error {
	if rec.Level >= slog.LevelWarn {
		var sb strings.Builder
		sb.WriteString(t.prefix)
		rec.Attrs(func(a slog.Attr) bool {
			appendAttr(&sb, t.groups, a)
			return true
		})
		t.ring.Add(ErrorRecord{
			Time:  rec.Time,
			Level: rec.Level.String(),
			Msg:   rec.Message,
			Attrs: strings.TrimSpace(sb.String()),
		})
	}
	if !t.next.Enabled(ctx, rec.Level) {
		return nil
	}
	return t.next.Handle(ctx, rec)
}

func (t *teeHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	var sb strings.Builder
	sb.WriteString(t.prefix)
	for _, a := range attrs {
		appendAttr(&sb, t.groups, a)
	}
	return &teeHandler{next: t.next.WithAttrs(attrs), ring: t.ring, prefix: sb.String(), groups: t.groups}
}

func (t *teeHandler) WithGroup(name string) slog.Handler {
	g := t.groups
	if name != "" {
		if g != "" {
			g += "."
		}
		g += name
	}
	return &teeHandler{next: t.next.WithGroup(name), ring: t.ring, prefix: t.prefix, groups: g}
}

// appendAttr renders one attr as "key=value " with the dotted group
// prefix, flattening nested groups.
func appendAttr(sb *strings.Builder, groups string, a slog.Attr) {
	a.Value = a.Value.Resolve()
	if a.Value.Kind() == slog.KindGroup {
		g := groups
		if a.Key != "" {
			if g != "" {
				g += "."
			}
			g += a.Key
		}
		for _, ga := range a.Value.Group() {
			appendAttr(sb, g, ga)
		}
		return
	}
	if a.Key == "" {
		return
	}
	key := a.Key
	if groups != "" {
		key = groups + "." + key
	}
	fmt.Fprintf(sb, "%s=%v ", key, a.Value.Any())
}
