package obs

import (
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenStatusPage is a fully fabricated page: fixed build, time, and
// sections, so the text rendering is deterministic.
func goldenStatusPage() *StatusPage {
	shardTable := &StatusTable{
		Columns: []string{"shard", "state", "incarnation", "restarts", "buffer", "heartbeat_age"},
		Rows: [][]string{
			{"0", "live", "1", "0", "12", "103ms"},
			{"1", "live", "3", "2", "4081", "87ms"},
			{"2", "done", "1", "0", "0", "2.5s"},
		},
	}
	var stream, errors StatusSection
	stream.Field("connected", true)
	stream.Field("tweets", 1234567)
	stream.Field("tweets_per_sec", "512.3")
	errors.Field("total_warnings", 2)
	errors.Table = &StatusTable{
		Columns: []string{"time", "level", "message", "attrs"},
		Rows: [][]string{
			{"2026-08-08T11:58:03Z", "WARN", "restarting shard", "shard=1 backoff=250ms"},
			{"2026-08-08T11:59:41Z", "WARN", "restarting shard", "shard=1 backoff=500ms"},
		},
	}
	return &StatusPage{
		App: "donorsense",
		Build: BuildInfo{
			GoVersion: "go1.22.0",
			Path:      "donorsense",
			Version:   "(devel)",
			Revision:  "abcdef1234567890",
			Modified:  true,
		},
		Time:          time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
		UptimeSeconds: 8000,
		Sections: []StatusSection{
			{Name: "stream", Fields: stream.Fields},
			{Name: "shards", Table: shardTable},
			{Name: "errors", Fields: errors.Fields, Table: errors.Table},
		},
	}
}

// TestStatusPageGoldenText pins the exact text rendering of /statusz.
// Run with -update to regenerate the golden after an intentional format
// change.
func TestStatusPageGoldenText(t *testing.T) {
	var sb strings.Builder
	goldenStatusPage().WriteText(&sb)
	got := sb.String()

	path := filepath.Join("testdata", "statusz.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run `go test -run GoldenText -update ./internal/obs/` to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("statusz text drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestStatusPageJSONRoundTrip checks the JSON rendering carries the same
// structure the text view does.
func TestStatusPageJSONRoundTrip(t *testing.T) {
	var sb strings.Builder
	goldenStatusPage().WriteJSON(&sb)
	var back StatusPage
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.App != "donorsense" || back.UptimeSeconds != 8000 {
		t.Errorf("round-trip lost header fields: %+v", back)
	}
	if len(back.Sections) != 3 || back.Sections[1].Name != "shards" {
		t.Fatalf("round-trip lost sections: %+v", back.Sections)
	}
	if got := len(back.Sections[1].Table.Rows); got != 3 {
		t.Errorf("shard table rows = %d, want 3", got)
	}
}

// TestStatuszHandler exercises the live endpoint: registration order,
// replacement, both formats, and the bad-format rejection.
func TestStatuszHandler(t *testing.T) {
	srv := NewServer(NewRegistry())
	srv.AddStatus("beta", func() StatusSection {
		var s StatusSection
		s.Field("b", 1)
		return s
	})
	srv.AddStatus("alpha", func() StatusSection {
		var s StatusSection
		s.Field("a", 2)
		return s
	})
	// Replacing a section keeps its original position.
	srv.AddStatus("beta", func() StatusSection {
		var s StatusSection
		s.Field("b", 42)
		return s
	})
	h := srv.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/statusz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/statusz: %d", rec.Code)
	}
	body := rec.Body.String()
	bi, ai := strings.Index(body, "== beta =="), strings.Index(body, "== alpha ==")
	if bi < 0 || ai < 0 || bi > ai {
		t.Errorf("sections missing or out of registration order:\n%s", body)
	}
	if !strings.Contains(body, "b:  42") {
		t.Errorf("replaced section not live:\n%s", body)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/statusz?format=json", nil))
	var page StatusPage
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatalf("json format: %v", err)
	}
	if len(page.Sections) != 2 || page.Build.GoVersion == "" {
		t.Errorf("json page incomplete: %+v", page)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/statusz?format=xml", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad format: got %d, want 400", rec.Code)
	}
}

func TestFormatUptime(t *testing.T) {
	cases := []struct {
		seconds float64
		want    string
	}{
		{42, "42s"},
		{63, "1m3s"},
		{8000, "2h13m"},
		{3 * 86400, "3d0h"},
		{33*86400 + 4*3600, "33d4h"},
	}
	for _, c := range cases {
		if got := formatUptime(c.seconds); got != c.want {
			t.Errorf("formatUptime(%v) = %q, want %q", c.seconds, got, c.want)
		}
	}
}

func TestNormalizePath(t *testing.T) {
	cases := map[string]string{
		"/metrics":              "/metrics",
		"/statusz":              "/statusz",
		"/debug/traces":         "/debug/traces",
		"/debug/pprof/heap":     "/debug/pprof",
		"/debug/pprof":          "/debug/pprof",
		"/favicon.ico":          "other",
		"/metrics/../anything":  "other",
		"/statusz?format=json/": "other", // query never reaches here; a literal odd path
	}
	for in, want := range cases {
		if got := normalizePath(in); got != want {
			t.Errorf("normalizePath(%q) = %q, want %q", in, got, want)
		}
	}
}
