package obs

import (
	"fmt"
	"runtime"
)

// MemStatsStatusSection returns a /statusz section factory reporting the
// Go runtime's live memory picture — the block an operator reads next to
// the stream and checkpoint sections to judge whether a long collection
// is drifting toward OOM. extra, when non-nil, is called after the
// runtime fields so callers can append process-specific footprint lines
// (the collectors add the columnar user store's rows and bytes).
func MemStatsStatusSection(extra func(sec *StatusSection)) func() StatusSection {
	return func() StatusSection {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		var sec StatusSection
		sec.Field("heap_alloc", FormatBytes(ms.HeapAlloc))
		sec.Field("heap_sys", FormatBytes(ms.HeapSys))
		sec.Field("heap_objects", ms.HeapObjects)
		sec.Field("stack_sys", FormatBytes(ms.StackSys))
		sec.Field("total_alloc", FormatBytes(ms.TotalAlloc))
		sec.Field("gc_cycles", ms.NumGC)
		sec.Field("gc_cpu_percent", fmt.Sprintf("%.2f", ms.GCCPUFraction*100))
		sec.Field("next_gc", FormatBytes(ms.NextGC))
		sec.Field("goroutines", runtime.NumGoroutine())
		if extra != nil {
			extra(&sec)
		}
		return sec
	}
}

// FormatBytes renders a byte count with a binary-prefix unit, one
// decimal place (e.g. "823.6 MiB"). Values under 1 KiB print as plain
// bytes.
func FormatBytes(n uint64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%d B", n)
	}
	units := []string{"KiB", "MiB", "GiB", "TiB"}
	v := float64(n)
	for _, u := range units {
		v /= unit
		if v < unit || u == units[len(units)-1] {
			return fmt.Sprintf("%.1f %s", v, u)
		}
	}
	return fmt.Sprintf("%d B", n) // unreachable
}
