package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"donorsense/internal/obs/trace"
)

// Server is the collector's telemetry endpoint:
//
//	/metrics       Prometheus text exposition of the registry
//	/healthz       JSON health summary (registered checks + uptime + build)
//	/statusz       one-page live status (text; ?format=json)
//	/debug/traces  sampled span waterfalls (when a trace ring is attached)
//	/debug/pprof/  the standard profiling handlers
//	/debug/vars    expvar, including a flattened view of the registry
//
// It is deliberately separate from any data-serving listener so operators
// can firewall it independently.
type Server struct {
	reg   *Registry
	start time.Time

	mu         sync.RWMutex
	checks     map[string]HealthCheck
	status     []statusEntry
	onShutdown []func()

	traceRing atomic.Pointer[trace.Ring]
	queryAPI  atomic.Pointer[apiHolder]

	// requests counts handled requests by normalized path; scrapes and
	// served feed the final "telemetry server stopped" log line so a
	// run's exit record says how observed the run actually was.
	// apiRequests is the "/api" series resolved once at construction so
	// the query-API hot path never touches the vec's family lock.
	requests    *CounterVec
	apiRequests *Counter
	scrapes     atomic.Int64
	served      atomic.Int64
}

// apiHolder wraps the attached query-API handler so it can live behind
// one atomic pointer (mirroring the trace-ring attach pattern).
type apiHolder struct{ h http.Handler }

// HealthCheck reports one component's health: a JSON-serializable detail
// value and an error when the component is unhealthy.
type HealthCheck func() (detail any, err error)

// NewServer returns a telemetry server over the registry.
func NewServer(reg *Registry) *Server {
	s := &Server{reg: reg, start: time.Now(), checks: make(map[string]HealthCheck)}
	s.requests = reg.CounterVec("donorsense_telemetry_requests_total",
		"Telemetry HTTP requests handled, by normalized path.", "path")
	s.apiRequests = s.requests.With("/api")
	bridgeExpvar(reg)
	return s
}

// AddHealthCheck registers (or replaces) a named component check consulted
// by /healthz.
func (s *Server) AddHealthCheck(name string, fn HealthCheck) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.checks[name] = fn
}

// SetTraceRing attaches the span ring served under /debug/traces. Until
// set (or when nil), the route answers 404.
func (s *Server) SetTraceRing(r *trace.Ring) { s.traceRing.Store(r) }

// SetQueryAPI attaches the handler served under /api/. Until set (or
// when set to nil), the route answers 404 — the same gating /debug/traces
// uses, so a mux whose snapshot source has not started yet degrades to a
// clean "not enabled" instead of a nil-handler panic.
func (s *Server) SetQueryAPI(h http.Handler) {
	if h == nil {
		s.queryAPI.Store(nil)
		return
	}
	s.queryAPI.Store(&apiHolder{h: h})
}

// OnShutdown registers a hook run when ListenAndServe begins its graceful
// shutdown, before in-flight requests are drained — the place a query API
// flips into 503-with-Retry-After drain mode.
func (s *Server) OnShutdown(fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onShutdown = append(s.onShutdown, fn)
}

// runShutdownHooks runs the registered shutdown hooks once, in
// registration order.
func (s *Server) runShutdownHooks() {
	s.mu.RLock()
	hooks := append([]func(){}, s.onShutdown...)
	s.mu.RUnlock()
	for _, fn := range hooks {
		fn()
	}
}

// Handler returns the telemetry mux wrapped in the access-log and
// request-counting middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", s.reg.Handler())
	mux.HandleFunc("/healthz", s.healthz)
	mux.HandleFunc("/statusz", s.statusz)
	mux.HandleFunc("/debug/traces", s.traces)
	mux.HandleFunc("/api/", s.api)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s.instrument(mux)
}

// api serves the attached query API, or 404 when none is attached.
func (s *Server) api(w http.ResponseWriter, r *http.Request) {
	qa := s.queryAPI.Load()
	if qa == nil {
		http.Error(w, "query API disabled (run with -serve)", http.StatusNotFound)
		return
	}
	qa.h.ServeHTTP(w, r)
}

// traces serves the attached span ring, or 404 when tracing is off.
func (s *Server) traces(w http.ResponseWriter, r *http.Request) {
	ring := s.traceRing.Load()
	if ring == nil {
		http.Error(w, "tracing disabled (run with -trace-sample > 0)", http.StatusNotFound)
		return
	}
	ring.Handler().ServeHTTP(w, r)
}

// telemetryPaths are the exact routes the requests-by-path counter keeps
// as distinct series; anything else collapses to "other" so an URL scan
// cannot explode label cardinality.
var telemetryPaths = map[string]bool{
	"/metrics": true, "/healthz": true, "/statusz": true,
	"/debug/traces": true, "/debug/vars": true,
}

// normalizePath maps a request path to its counter label.
func normalizePath(p string) string {
	if telemetryPaths[p] {
		return p
	}
	if strings.HasPrefix(p, "/debug/pprof") {
		return "/debug/pprof"
	}
	if strings.HasPrefix(p, "/api/") {
		return "/api"
	}
	return "other"
}

// statusWriter captures the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps the mux with request counting and, when the process
// logger admits debug records (-log-level=debug), an access log line per
// request.
func (s *Server) instrument(next http.Handler) http.Handler {
	logger := Logger("telemetry")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		path := normalizePath(r.URL.Path)
		if path == "/api" {
			// Pre-resolved series: the query-API hot path skips the vec's
			// family lock entirely.
			s.apiRequests.Inc()
		} else {
			s.requests.With(path).Inc()
		}
		s.served.Add(1)
		if path == "/metrics" {
			s.scrapes.Add(1)
		}
		if !logger.Enabled(r.Context(), slog.LevelDebug) {
			next.ServeHTTP(w, r)
			return
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		logger.Debug("http request",
			"method", r.Method, "path", r.URL.Path,
			"status", sw.status, "duration", time.Since(start).String())
	})
}

// healthState is the /healthz response body.
type healthState struct {
	Status        string            `json:"status"` // "ok" or "degraded"
	UptimeSeconds float64           `json:"uptime_seconds"`
	Build         BuildInfo         `json:"build"`
	Checks        map[string]any    `json:"checks,omitempty"`
	Errors        map[string]string `json:"errors,omitempty"`
}

func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	checks := make(map[string]HealthCheck, len(s.checks))
	for name, fn := range s.checks {
		checks[name] = fn
	}
	s.mu.RUnlock()

	st := healthState{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Build:         ReadBuild(),
		Checks:        make(map[string]any, len(checks)),
	}
	for name, fn := range checks {
		detail, err := fn()
		st.Checks[name] = detail
		if err != nil {
			if st.Errors == nil {
				st.Errors = make(map[string]string)
			}
			st.Errors[name] = err.Error()
			st.Status = "degraded"
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if st.Status != "ok" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(st)
}

// ListenAndServe serves the telemetry endpoint on addr until ctx is done,
// then shuts down gracefully (bounded by a 2s deadline) and logs the
// final request tallies before returning any terminal serve error.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.Handler()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		// Flip drain-mode consumers (query API) to 503 first, then let
		// Shutdown finish the requests already in flight.
		s.runShutdownHooks()
		shCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(shCtx)
	}()
	err = srv.Serve(ln)
	<-done
	Logger("telemetry").Info("telemetry server stopped",
		"uptime", time.Since(s.start).Round(time.Second).String(),
		"scrapes", s.scrapes.Load(), "requests", s.served.Load())
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// bridgedRegistry is the registry currently published under the
// "donorsense_metrics" expvar; expvar.Publish is global and forbids
// re-publishing, so the Func closure indirects through this pointer.
var (
	bridgeOnce      sync.Once
	bridgedRegistry atomic.Pointer[Registry]
)

// bridgeExpvar publishes the registry as the "donorsense_metrics" expvar.
// The latest bridged registry wins, matching the one-telemetry-server-
// per-process deployment.
func bridgeExpvar(reg *Registry) {
	bridgedRegistry.Store(reg)
	bridgeOnce.Do(func() {
		expvar.Publish("donorsense_metrics", expvar.Func(func() any {
			r := bridgedRegistry.Load()
			if r == nil {
				return nil
			}
			return r.Export()
		}))
	})
}
