package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// Server is the collector's telemetry endpoint:
//
//	/metrics       Prometheus text exposition of the registry
//	/healthz       JSON health summary (registered checks + uptime)
//	/debug/pprof/  the standard profiling handlers
//	/debug/vars    expvar, including a flattened view of the registry
//
// It is deliberately separate from any data-serving listener so operators
// can firewall it independently.
type Server struct {
	reg   *Registry
	start time.Time

	mu     sync.RWMutex
	checks map[string]HealthCheck
}

// HealthCheck reports one component's health: a JSON-serializable detail
// value and an error when the component is unhealthy.
type HealthCheck func() (detail any, err error)

// NewServer returns a telemetry server over the registry.
func NewServer(reg *Registry) *Server {
	s := &Server{reg: reg, start: time.Now(), checks: make(map[string]HealthCheck)}
	bridgeExpvar(reg)
	return s
}

// AddHealthCheck registers (or replaces) a named component check consulted
// by /healthz.
func (s *Server) AddHealthCheck(name string, fn HealthCheck) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.checks[name] = fn
}

// Handler returns the telemetry mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", s.reg.Handler())
	mux.HandleFunc("/healthz", s.healthz)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// healthState is the /healthz response body.
type healthState struct {
	Status        string            `json:"status"` // "ok" or "degraded"
	UptimeSeconds float64           `json:"uptime_seconds"`
	Checks        map[string]any    `json:"checks,omitempty"`
	Errors        map[string]string `json:"errors,omitempty"`
}

func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	checks := make(map[string]HealthCheck, len(s.checks))
	for name, fn := range s.checks {
		checks[name] = fn
	}
	s.mu.RUnlock()

	st := healthState{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Checks:        make(map[string]any, len(checks)),
	}
	for name, fn := range checks {
		detail, err := fn()
		st.Checks[name] = detail
		if err != nil {
			if st.Errors == nil {
				st.Errors = make(map[string]string)
			}
			st.Errors[name] = err.Error()
			st.Status = "degraded"
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if st.Status != "ok" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(st)
}

// ListenAndServe serves the telemetry endpoint on addr until ctx is done,
// then shuts down gracefully and returns any terminal serve error.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.Handler()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		shCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(shCtx)
	}()
	err = srv.Serve(ln)
	<-done
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// bridgedRegistry is the registry currently published under the
// "donorsense_metrics" expvar; expvar.Publish is global and forbids
// re-publishing, so the Func closure indirects through this pointer.
var (
	bridgeOnce      sync.Once
	bridgedRegistry atomic.Pointer[Registry]
)

// bridgeExpvar publishes the registry as the "donorsense_metrics" expvar.
// The latest bridged registry wins, matching the one-telemetry-server-
// per-process deployment.
func bridgeExpvar(reg *Registry) {
	bridgedRegistry.Store(reg)
	bridgeOnce.Do(func() {
		expvar.Publish("donorsense_metrics", expvar.Func(func() any {
			r := bridgedRegistry.Load()
			if r == nil {
				return nil
			}
			return r.Export()
		}))
	})
}
