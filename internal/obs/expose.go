package obs

import (
	"bufio"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, each with
// its # HELP and # TYPE lines (emitted even when the family has no series
// yet, so dashboards see the full schema from the first scrape), series
// sorted by label values, histograms as cumulative _bucket/_sum/_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.RUnlock()

	for _, f := range fams {
		if err := f.write(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func (f *family) write(w *bufio.Writer) error {
	if f.help != "" {
		w.WriteString("# HELP ")
		w.WriteString(f.name)
		w.WriteByte(' ')
		w.WriteString(escapeHelp(f.help))
		w.WriteByte('\n')
	}
	w.WriteString("# TYPE ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(f.kind.String())
	w.WriteByte('\n')

	f.mu.RLock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]*series, len(keys))
	for i, k := range keys {
		children[i] = f.series[k]
	}
	f.mu.RUnlock()

	for _, s := range children {
		if f.kind == KindHistogram {
			f.writeHistogram(w, s)
			continue
		}
		v := s.val.Load()
		if s.fn != nil {
			v = s.fn()
		}
		w.WriteString(f.name)
		writeLabels(w, f.labels, s.labelValues, "", "")
		w.WriteByte(' ')
		w.WriteString(formatValue(v))
		w.WriteByte('\n')
	}
	return nil
}

// writeHistogram emits the cumulative bucket series plus _sum and _count.
func (f *family) writeHistogram(w *bufio.Writer, s *series) {
	cum := uint64(0)
	for i, ub := range f.buckets {
		cum += s.counts[i].Load()
		w.WriteString(f.name)
		w.WriteString("_bucket")
		writeLabels(w, f.labels, s.labelValues, "le", formatValue(ub))
		w.WriteByte(' ')
		w.WriteString(strconv.FormatUint(cum, 10))
		w.WriteByte('\n')
	}
	cum += s.counts[len(f.buckets)].Load()
	w.WriteString(f.name)
	w.WriteString("_bucket")
	writeLabels(w, f.labels, s.labelValues, "le", "+Inf")
	w.WriteByte(' ')
	w.WriteString(strconv.FormatUint(cum, 10))
	w.WriteByte('\n')

	w.WriteString(f.name)
	w.WriteString("_sum")
	writeLabels(w, f.labels, s.labelValues, "", "")
	w.WriteByte(' ')
	w.WriteString(formatValue(s.sum.Load()))
	w.WriteByte('\n')

	w.WriteString(f.name)
	w.WriteString("_count")
	writeLabels(w, f.labels, s.labelValues, "", "")
	w.WriteByte(' ')
	w.WriteString(strconv.FormatUint(s.count.Load(), 10))
	w.WriteByte('\n')

	// The exemplar rides as a comment line — parsers of the 0.0.4 text
	// format ignore unknown # lines, so the output stays spec-legal while
	// humans (and the trace-aware tooling here) can jump from a slow
	// series straight to a trace ID on /debug/traces.
	if e := s.exemplar.Load(); e != nil {
		w.WriteString("# EXEMPLAR ")
		w.WriteString(f.name)
		writeLabels(w, f.labels, s.labelValues, "", "")
		w.WriteByte(' ')
		w.WriteString(formatValue(e.Value))
		w.WriteString(" trace_id=")
		w.WriteString(e.TraceID)
		w.WriteString(" ts=")
		w.WriteString(strconv.FormatInt(e.Time.Unix(), 10))
		w.WriteByte('\n')
	}
}

// writeLabels renders {k="v",...}, appending the extra pair (used for the
// histogram le label) when extraName is non-empty. Nothing is written
// when there are no labels at all.
func writeLabels(w *bufio.Writer, names, values []string, extraName, extraValue string) {
	if len(names) == 0 && extraName == "" {
		return
	}
	w.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(n)
		w.WriteString(`="`)
		w.WriteString(escapeLabelValue(values[i]))
		w.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			w.WriteByte(',')
		}
		w.WriteString(extraName)
		w.WriteString(`="`)
		w.WriteString(extraValue)
		w.WriteByte('"')
	}
	w.WriteByte('}')
}

// escapeLabelValue escapes backslash, double-quote, and newline, per the
// exposition-format spec.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes backslash and newline in HELP text.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatValue renders a float the way Prometheus clients do: shortest
// round-trip representation, integers without a decimal point.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Export flattens the registry into a name{labels} → value map — the
// /debug/vars (expvar) bridge representation. Histograms export their
// _sum and _count.
func (r *Registry) Export() map[string]any {
	out := make(map[string]any)
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	for _, f := range fams {
		f.mu.RLock()
		for _, s := range f.series {
			key := f.name
			if len(f.labels) > 0 {
				pairs := make([]string, len(f.labels))
				for i, n := range f.labels {
					pairs[i] = n + "=" + s.labelValues[i]
				}
				key += "{" + strings.Join(pairs, ",") + "}"
			}
			if f.kind == KindHistogram {
				out[key+"_sum"] = s.sum.Load()
				out[key+"_count"] = s.count.Load()
				continue
			}
			if s.fn != nil {
				out[key] = s.fn()
			} else {
				out[key] = s.val.Load()
			}
		}
		f.mu.RUnlock()
	}
	return out
}

// Handler serves the registry in the exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
