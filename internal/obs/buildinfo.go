package obs

import (
	"runtime/debug"
	"sync"
)

// BuildInfo is the build identity stamped into every telemetry surface
// (/healthz, /statusz, `donorsense -version`): a multi-day run's output
// is only reviewable when the exact binary that produced it is known.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Path      string `json:"path,omitempty"`    // main module path
	Version   string `json:"version,omitempty"` // main module version ("(devel)" for local builds)
	Revision  string `json:"vcs_revision,omitempty"`
	VCSTime   string `json:"vcs_time,omitempty"`
	Modified  bool   `json:"vcs_modified,omitempty"` // dirty working tree at build time
}

var (
	buildOnce   sync.Once
	cachedBuild BuildInfo
)

// ReadBuild returns the running binary's build identity from
// runtime/debug.ReadBuildInfo, cached after the first call. Binaries
// built without module support yield a BuildInfo with only GoVersion
// set.
func ReadBuild() BuildInfo {
	buildOnce.Do(func() {
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		cachedBuild.GoVersion = bi.GoVersion
		cachedBuild.Path = bi.Main.Path
		cachedBuild.Version = bi.Main.Version
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				cachedBuild.Revision = s.Value
			case "vcs.time":
				cachedBuild.VCSTime = s.Value
			case "vcs.modified":
				cachedBuild.Modified = s.Value == "true"
			}
		}
	})
	return cachedBuild
}

// String renders the build identity on one line, the format of the
// -version flag: "donorsense (devel) go1.22.1 rev 95f8451 (modified)".
func (b BuildInfo) String() string {
	out := "donorsense"
	if b.Version != "" {
		out += " " + b.Version
	}
	if b.GoVersion != "" {
		out += " " + b.GoVersion
	}
	if b.Revision != "" {
		rev := b.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		out += " rev " + rev
	}
	if b.Modified {
		out += " (modified)"
	}
	return out
}
