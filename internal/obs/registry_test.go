package obs

import (
	"fmt"
	"io"
	"sync"
	"testing"
)

// TestRegistryConcurrentStress hammers every instrument type from many
// goroutines while scrapes run concurrently, then asserts the final
// counts are exact. Run with -race (the Makefile's race target includes
// this package) to prove the lock-free hot path is sound.
func TestRegistryConcurrentStress(t *testing.T) {
	const (
		goroutines = 16
		iterations = 2000
	)
	r := NewRegistry()
	counter := r.Counter("stress_counter_total", "")
	gauge := r.Gauge("stress_gauge", "")
	hist := r.Histogram("stress_hist", "", []float64{0.25, 0.5, 0.75})
	vec := r.CounterVec("stress_vec_total", "", "worker")
	hvec := r.HistogramVec("stress_hvec", "", []float64{1, 2}, "worker")

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			label := fmt.Sprintf("w%d", g%4) // contended label children
			for i := 0; i < iterations; i++ {
				counter.Inc()
				gauge.Add(1)
				hist.Observe(float64(i%4) / 4)
				vec.With(label).Inc()
				hvec.With(label).Observe(float64(i % 3))
			}
		}(g)
	}
	// Concurrent scrapes must never block or corrupt the writers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if err := r.WritePrometheus(io.Discard); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	total := float64(goroutines * iterations)
	if got := counter.Value(); got != total {
		t.Errorf("counter = %g, want %g", got, total)
	}
	if got := gauge.Value(); got != total {
		t.Errorf("gauge = %g, want %g", got, total)
	}
	if got := hist.Count(); got != uint64(total) {
		t.Errorf("histogram count = %d, want %g", got, total)
	}
	vecSum := 0.0
	for g := 0; g < 4; g++ {
		vecSum += vec.With(fmt.Sprintf("w%d", g)).Value()
	}
	if vecSum != total {
		t.Errorf("vec sum = %g, want %g", vecSum, total)
	}
	hvecSum := uint64(0)
	for g := 0; g < 4; g++ {
		hvecSum += hvec.With(fmt.Sprintf("w%d", g)).Count()
	}
	if hvecSum != uint64(total) {
		t.Errorf("hvec count sum = %d, want %g", hvecSum, total)
	}
}

// TestExpBuckets checks the generator used for byte-size layouts.
func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 10, 4)
	want := []float64{1, 10, 100, 1000}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

// TestExport flattens the registry for the expvar bridge.
func TestExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(7)
	r.CounterVec("b_total", "", "k").With("v").Add(2)
	h := r.Histogram("h", "", []float64{1})
	h.Observe(0.5)
	h.Observe(2)

	m := r.Export()
	if m["a_total"] != 7.0 {
		t.Errorf("a_total = %v", m["a_total"])
	}
	if m["b_total{k=v}"] != 2.0 {
		t.Errorf("b_total{k=v} = %v", m["b_total{k=v}"])
	}
	if m["h_count"] != uint64(2) {
		t.Errorf("h_count = %v", m["h_count"])
	}
	if m["h_sum"] != 2.5 {
		t.Errorf("h_sum = %v", m["h_sum"])
	}
}
