package obs

import (
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the full exposition output: family
// ordering, HELP/TYPE lines, label rendering and escaping, histogram
// cumulative buckets with _sum/_count, and scrape-time func instruments.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()

	c := r.Counter("app_requests_total", "Requests served.")
	c.Add(3)
	c.Inc()

	g := r.Gauge("app_temperature", "Current temperature.")
	g.Set(36.5)

	r.GaugeFunc("app_uptime_seconds", "Uptime.", func() float64 { return 42 })

	v := r.CounterVec("app_errors_total", "Errors by kind.", "kind", "detail")
	v.With("io", `path "a\b"`).Add(2)
	v.With("net", "line1\nline2").Inc()

	h := r.Histogram("app_latency_seconds", "Request latency.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}

	want := `# HELP app_errors_total Errors by kind.
# TYPE app_errors_total counter
app_errors_total{kind="io",detail="path \"a\\b\""} 2
app_errors_total{kind="net",detail="line1\nline2"} 1
# HELP app_latency_seconds Request latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.1"} 1
app_latency_seconds_bucket{le="1"} 2
app_latency_seconds_bucket{le="10"} 3
app_latency_seconds_bucket{le="+Inf"} 4
app_latency_seconds_sum 55.55
app_latency_seconds_count 4
# HELP app_requests_total Requests served.
# TYPE app_requests_total counter
app_requests_total 4
# HELP app_temperature Current temperature.
# TYPE app_temperature gauge
app_temperature 36.5
# HELP app_uptime_seconds Uptime.
# TYPE app_uptime_seconds gauge
app_uptime_seconds 42
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestEmptyVecStillExposesSchema: a labeled family with no children yet
// must still surface its HELP/TYPE lines so dashboards see the schema.
func TestEmptyVecStillExposesSchema(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("app_things_total", "Things.", "kind")
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := "# HELP app_things_total Things.\n# TYPE app_things_total counter\n"
	if sb.String() != want {
		t.Errorf("got %q, want %q", sb.String(), want)
	}
}

// TestCounterIgnoresNegative: counters are monotonic.
func TestCounterIgnoresNegative(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	c.Add(5)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Errorf("Value = %g, want 5", got)
	}
}

// TestReRegisterSameShapeIsIdempotent: fetching the same family twice
// returns the same underlying series.
func TestReRegisterSameShapeIsIdempotent(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "help").Inc()
	r.Counter("x_total", "help").Inc()
	if got := r.Counter("x_total", "help").Value(); got != 2 {
		t.Errorf("Value = %g, want 2", got)
	}
}

// TestReRegisterDifferentShapePanics: a name reused with another kind is
// a programming error.
func TestReRegisterDifferentShapePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("y_total", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering with a different kind did not panic")
		}
	}()
	r.Gauge("y_total", "")
}

// TestHistogramQuantileDerivable: bucket counts must be cumulative and
// consistent with _count, the property quantile estimation relies on.
func TestHistogramQuantileDerivable(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{0.001, 0.01, 0.1})
	for i := 0; i < 90; i++ {
		h.Observe(0.0005) // le 0.001
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.05) // le 0.1
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, line := range []string{
		`lat_bucket{le="0.001"} 90`,
		`lat_bucket{le="0.01"} 90`,
		`lat_bucket{le="0.1"} 100`,
		`lat_bucket{le="+Inf"} 100`,
		`lat_count 100`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}
