package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"donorsense/internal/organ"
)

// patchShadow is the oracle: a plain map of per-user mention counts,
// flattened into the columnar (ids, counts) shape on demand.
type patchShadow map[int64][]int32

func (sh patchShadow) columns() ([]int64, []int32) {
	ids := make([]int64, 0, len(sh))
	for id := range sh {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	counts := make([]int32, 0, len(ids)*organ.Count)
	for _, id := range ids {
		counts = append(counts, sh[id]...)
	}
	return ids, counts
}

func rowSum(cnt []int32) int64 {
	s := int64(0)
	for _, v := range cnt {
		s += int64(v)
	}
	return s
}

// TestAttentionPatchProperty asserts that an Attention patched through
// randomized update / delete / merge batches stays bit-identical to one
// rebuilt from scratch by AttentionFromCounts at every epoch boundary,
// and that RowOf agrees with the rebuilt index after deletes and merges.
func TestAttentionPatchProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1709))

	for trial := 0; trial < 20; trial++ {
		shadow := patchShadow{}
		// Seed population.
		for i := 0; i < 30+rng.Intn(50); i++ {
			id := int64(rng.Intn(500) + 1)
			cnt := make([]int32, organ.Count)
			cnt[rng.Intn(organ.Count)] = int32(rng.Intn(3) + 1)
			if old, ok := shadow[id]; ok {
				for c := range old {
					old[c] += cnt[c]
				}
			} else {
				shadow[id] = cnt
			}
		}
		ids, counts := shadow.columns()
		att, err := AttentionFromCounts(ids, counts)
		if err != nil {
			t.Fatalf("trial %d: cold build: %v", trial, err)
		}
		if att.Epoch() != 0 {
			t.Fatalf("cold epoch %d", att.Epoch())
		}

		for batch := 0; batch < 15; batch++ {
			// One batch = a mix of mention updates, user deletions, and a
			// merge-like bulk add, applied to the shadow while recording
			// which ids changed.
			changed := map[int64]bool{}
			for op := 0; op < 1+rng.Intn(12); op++ {
				switch k := rng.Intn(10); {
				case k < 5: // mention delta on a random (maybe new) user
					id := int64(rng.Intn(500) + 1)
					cnt := shadow[id]
					if cnt == nil {
						cnt = make([]int32, organ.Count)
						shadow[id] = cnt
					}
					cnt[rng.Intn(organ.Count)] += int32(rng.Intn(4) + 1)
					changed[id] = true
				case k < 7: // decrement (tweet deletion) — may zero the row
					for id, cnt := range shadow {
						for c := range cnt {
							if cnt[c] > 0 {
								cnt[c]--
								changed[id] = true
								break
							}
						}
						break
					}
				case k < 8: // hard delete (user removed from the store)
					for id := range shadow {
						delete(shadow, id)
						changed[id] = true
						break
					}
				default: // merge: bulk-add a small foreign shard
					for i := 0; i < 3+rng.Intn(5); i++ {
						id := int64(rng.Intn(500) + 1)
						cnt := shadow[id]
						if cnt == nil {
							cnt = make([]int32, organ.Count)
							shadow[id] = cnt
						}
						cnt[rng.Intn(organ.Count)] += int32(rng.Intn(2) + 1)
						changed[id] = true
					}
				}
			}

			// Build the patch from the changed set.
			var upIDs, rmIDs []int64
			for id := range changed {
				if cnt, ok := shadow[id]; ok && rowSum(cnt) > 0 {
					upIDs = append(upIDs, id)
				} else {
					rmIDs = append(rmIDs, id)
				}
			}
			sort.Slice(upIDs, func(i, j int) bool { return upIDs[i] < upIDs[j] })
			sort.Slice(rmIDs, func(i, j int) bool { return rmIDs[i] < rmIDs[j] })
			upCounts := make([]int32, 0, len(upIDs)*organ.Count)
			for _, id := range upIDs {
				upCounts = append(upCounts, shadow[id]...)
			}

			wantIDs, wantCounts := shadow.columns()
			live := 0
			for _, id := range wantIDs {
				if rowSum(shadow[id]) > 0 {
					live++
				}
			}
			prevEpoch := att.Epoch()
			err := att.Patch(upIDs, upCounts, rmIDs)
			if live == 0 {
				if err == nil {
					t.Fatalf("trial %d batch %d: patch to empty matrix succeeded", trial, batch)
				}
				break // shadow emptied out; start next trial
			}
			if err != nil {
				t.Fatalf("trial %d batch %d: patch: %v", trial, batch, err)
			}
			if att.Epoch() != prevEpoch+1 {
				t.Fatalf("epoch %d after patch, want %d", att.Epoch(), prevEpoch+1)
			}

			want, err := AttentionFromCounts(wantIDs, wantCounts)
			if err != nil {
				t.Fatalf("trial %d batch %d: rebuild: %v", trial, batch, err)
			}
			compareAttention(t, att, want)
		}
	}
}

// compareAttention asserts got and want are bit-identical: same id
// order, bitwise-equal Û, agreeing RowOf.
func compareAttention(t *testing.T, got, want *Attention) {
	t.Helper()
	gIDs, wIDs := got.UserIDs(), want.UserIDs()
	if len(gIDs) != len(wIDs) {
		t.Fatalf("users %d want %d", len(gIDs), len(wIDs))
	}
	for i := range gIDs {
		if gIDs[i] != wIDs[i] {
			t.Fatalf("row %d id %d want %d", i, gIDs[i], wIDs[i])
		}
	}
	g, w := got.Matrix().Data(), want.Matrix().Data()
	if len(g) != len(w) {
		t.Fatalf("matrix size %d want %d", len(g), len(w))
	}
	for i := range g {
		if math.Float64bits(g[i]) != math.Float64bits(w[i]) {
			t.Fatalf("Û[%d] = %x want %x (%g vs %g)", i,
				math.Float64bits(g[i]), math.Float64bits(w[i]), g[i], w[i])
		}
	}
	for _, id := range wIDs {
		if got.RowOf(id) != want.RowOf(id) {
			t.Fatalf("RowOf(%d) = %d want %d", id, got.RowOf(id), want.RowOf(id))
		}
	}
	if got.RowOf(-99) != -1 {
		t.Fatalf("RowOf(unknown) = %d", got.RowOf(-99))
	}
}

// TestAttentionPatchValidation pins the error paths: misordered inputs,
// zero-sum update rows, update∩remove overlap, and length mismatches.
func TestAttentionPatchValidation(t *testing.T) {
	att, err := AttentionFromCounts([]int64{1, 2}, []int32{
		1, 0, 0, 0, 0, 0,
		0, 2, 0, 0, 0, 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	row := func(v int32) []int32 { return []int32{v, 0, 0, 0, 0, 0} }

	if err := att.Patch([]int64{2, 1}, append(row(1), row(1)...), nil); err == nil {
		t.Fatal("unsorted update ids accepted")
	}
	if err := att.Patch([]int64{1}, row(0), nil); err == nil {
		t.Fatal("zero-sum update row accepted")
	}
	if err := att.Patch([]int64{1}, row(1), []int64{1}); err == nil {
		t.Fatal("update∩remove overlap accepted")
	}
	if err := att.Patch([]int64{1}, nil, nil); err == nil {
		t.Fatal("counts length mismatch accepted")
	}
	if err := att.Patch(nil, nil, []int64{3, 3}); err == nil {
		t.Fatal("non-ascending removes accepted")
	}
	if att.Epoch() != 0 {
		t.Fatalf("failed patches advanced epoch to %d", att.Epoch())
	}
	// Removing every user must error, not produce an empty matrix.
	if err := att.Patch(nil, nil, []int64{1, 2}); err == nil {
		t.Fatal("patch to empty accepted")
	}
}
