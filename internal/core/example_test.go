package core_test

import (
	"fmt"

	"donorsense/internal/core"
	"donorsense/internal/organ"
)

// ExampleAttentionBuilder shows the paper's §III-B user characterization:
// mention counts become a row-normalized attention distribution Û.
func ExampleAttentionBuilder() {
	b := core.NewAttentionBuilder()
	var mentions [organ.Count]int
	mentions[organ.Heart.Index()] = 3
	mentions[organ.Kidney.Index()] = 1
	b.Observe(42, mentions)

	a, _ := b.Build()
	row := a.Row(a.RowOf(42))
	fmt.Printf("heart=%.2f kidney=%.2f primary=%s\n",
		row[organ.Heart.Index()], row[organ.Kidney.Index()], a.PrimaryOrgan(a.RowOf(42)))
	// Output:
	// heart=0.75 kidney=0.25 primary=heart
}

// ExampleHighlightOrgans demonstrates the Figure 5 relative-risk rule on
// a toy two-state population.
func ExampleHighlightOrgans() {
	b := core.NewAttentionBuilder()
	states := map[int64]string{}
	id := int64(0)
	add := func(state string, o organ.Organ, n int) {
		for i := 0; i < n; i++ {
			id++
			var m [organ.Count]int
			m[o.Index()] = 1
			b.Observe(id, m)
			states[id] = state
		}
	}
	add("KS", organ.Kidney, 30) // kidney-heavy Kansas
	add("KS", organ.Heart, 10)
	add("TX", organ.Heart, 150) // heart-typical Texas
	add("TX", organ.Kidney, 50)

	a, _ := b.Build()
	h, _ := core.HighlightOrgans(a, states)
	for _, o := range h.HighlightedOrgans("KS") {
		fmt.Println("Kansas highlights:", o)
	}
	// Output:
	// Kansas highlights: kidney
}

// ExampleCharacterizeOrgans shows a Figure 3 organ signature.
func ExampleCharacterizeOrgans() {
	b := core.NewAttentionBuilder()
	var m [organ.Count]int
	m[organ.Heart.Index()] = 8
	m[organ.Kidney.Index()] = 2
	b.Observe(1, m)

	a, _ := b.Build()
	oc, _ := core.CharacterizeOrgans(a)
	rank := oc.CoMentionRank(organ.Heart)
	fmt.Println("heart users co-mention first:", rank[0])
	// Output:
	// heart users co-mention first: kidney
}
