package core

import (
	"fmt"

	"donorsense/internal/organ"
	"donorsense/internal/stats"
)

// Correction selects a multiple-testing correction for the Figure 5
// highlighting. The paper applies none — with 312 (state, organ)
// hypotheses at α = 0.05 a handful of false highlights are expected —
// so this is an extension that quantifies how much of the map survives
// a principled correction.
type Correction int

// Correction methods.
const (
	// NoCorrection reproduces the paper's rule exactly.
	NoCorrection Correction = iota
	// BonferroniCorrection controls the family-wise error rate.
	BonferroniCorrection
	// BHCorrection controls the false-discovery rate
	// (Benjamini–Hochberg).
	BHCorrection
)

// String returns the correction name.
func (c Correction) String() string {
	switch c {
	case NoCorrection:
		return "none"
	case BonferroniCorrection:
		return "bonferroni"
	case BHCorrection:
		return "benjamini-hochberg"
	}
	return "correction(?)"
}

// alphaOneSided matches the paper's CI rule: log lower bound > 0 at
// z = 1.96 is a one-sided test at 2.5%.
const alphaOneSided = 0.025

// AdjustedHighlights re-evaluates the Figure 5 highlighting under a
// multiple-testing correction. It returns, per state code, the organs
// that remain significant. With NoCorrection the result matches
// HighlightedOrgans for every state.
func (h *HighlightResult) AdjustedHighlights(method Correction) (map[string][]organ.Organ, error) {
	type cell struct {
		state int
		organ organ.Organ
	}
	var cells []cell
	var ps []float64
	for s := range h.Risks {
		for _, r := range h.Risks[s] {
			if !r.Defined {
				continue
			}
			cells = append(cells, cell{s, r.Organ})
			ps = append(ps, stats.PValueFromZ(stats.ZFromLogRR(r.RR.LogRR, r.RR.SE)))
		}
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("core: no defined relative risks to adjust")
	}
	var adj []float64
	switch method {
	case NoCorrection:
		adj = ps
	case BonferroniCorrection:
		adj = stats.Bonferroni(ps)
	case BHCorrection:
		adj = stats.BenjaminiHochberg(ps)
	default:
		return nil, fmt.Errorf("core: unknown correction %d", int(method))
	}
	out := make(map[string][]organ.Organ)
	for i, c := range cells {
		if adj[i] < alphaOneSided {
			code := h.StateCodes[c.state]
			out[code] = append(out[code], c.organ)
		}
	}
	return out, nil
}

// CountHighlights returns the total number of (state, organ) highlights
// in an AdjustedHighlights result.
func CountHighlights(m map[string][]organ.Organ) int {
	n := 0
	for _, os := range m {
		n += len(os)
	}
	return n
}
