package core

import (
	"fmt"
	"math/bits"

	"donorsense/internal/geo"
	"donorsense/internal/organ"
	"donorsense/internal/stats"
)

// The integer counting layer behind Figure 5 and the winner-takes-all
// baseline. Both analyses reduce a user to (state row, mention mask):
// which state the user lives in and which organs they have any attention
// on. StateOrganCells accumulates those pairs into per-state/per-organ
// user counts — mergeable and subtractable (stats.Counter*), so the
// incremental engine updates them in place as users change — and the
// HighlightFromCells / WinnerFromCells constructors turn the counts into
// results with exactly the arithmetic the full-scan paths used. The
// full-scan entry points (HighlightOrgansFunc, WinnerTakesAllFunc) feed
// the same constructors, so an accumulator-built result is bit-identical
// to a scan-built one whenever the counts agree.

// StateOrganCells is the mergeable per-state/per-organ user-count
// accumulator: mention(s, o) distinct users in state s with attention on
// organ o, users(s) distinct users in state s. States follow
// geo.StateCodes() row order; only users with a Û row (a nonzero mention
// vector) and a resolvable state are counted, matching the full-scan
// filters.
type StateOrganCells struct {
	mention *stats.Counter2D
	users   *stats.Counter1D
}

// NewStateOrganCells returns a zeroed accumulator over the canonical
// state rows.
func NewStateOrganCells() *StateOrganCells {
	n := len(geo.StateCodes())
	return &StateOrganCells{
		mention: stats.NewCounter2D(n, organ.Count),
		users:   stats.NewCounter1D(n),
	}
}

// AddUser counts one user in state row s with mention mask (bit
// o.Index() set when the user mentions organ o) with the given delta:
// +1 admits a user, −1 exactly reverses an earlier +1 — the
// subtractability the in-place update path relies on. A zero mask is
// ignored (such users have no Û row).
func (c *StateOrganCells) AddUser(s int, mask uint8, delta int) {
	if mask == 0 {
		return
	}
	c.users.Add(s, int64(delta))
	for m := mask; m != 0; m &= m - 1 {
		c.mention.Add(s, bits.TrailingZeros8(m), int64(delta))
	}
}

// Merge adds other into c — associative and commutative, like
// Dataset.Merge, so per-shard accumulators compose in any order.
func (c *StateOrganCells) Merge(other *StateOrganCells) error {
	if err := c.mention.Merge(other.mention); err != nil {
		return err
	}
	return c.users.Merge(other.users)
}

// Clone returns an independent copy.
func (c *StateOrganCells) Clone() *StateOrganCells {
	return &StateOrganCells{mention: c.mention.Clone(), users: c.users.Clone()}
}

// MentionUsers returns the count of users in state row s mentioning
// organ o.
func (c *StateOrganCells) MentionUsers(s int, o organ.Organ) int64 {
	return c.mention.At(s, o.Index())
}

// StateUsers returns the count of users in state row s.
func (c *StateOrganCells) StateUsers(s int) int64 { return c.users.At(s) }

// cellsFromAttention is the full-scan builder shared by the Figure 5 and
// winner-takes-all entry points: one pass over Û in row (ascending user
// id) order, counting each user with a resolvable state.
func cellsFromAttention(a *Attention, stateOf StateLookup) *StateOrganCells {
	c := NewStateOrganCells()
	for row, id := range a.UserIDs() {
		code, ok := stateOf(id)
		if !ok {
			continue
		}
		s := geo.StateIndex(code)
		if s < 0 {
			continue
		}
		c.AddUser(s, MentionMask(a, row), 1)
	}
	return c
}

// MentionMask returns the organ-mention bit mask of a Û row: bit
// o.Index() is set when the row has any attention on o. The mask of a
// row equals the mask of its integer mention counts (count > 0 ⇔
// normalized share > 0), which is how the incremental engine computes it
// without touching Û.
func MentionMask(a *Attention, row int) uint8 {
	mask := uint8(0)
	for _, o := range organ.All() {
		if a.MentionsOrgan(row, o) {
			mask |= 1 << o.Index()
		}
	}
	return mask
}

// HighlightFromCells builds the Figure 5 result from accumulated
// counts. Cell math is unchanged from the original full-scan
// implementation: a = mentioning users inside the state, b = state users
// not mentioning, c/d the same outside. Zero cells that make the
// uncorrected relative risk undefined leave Defined false (preserving
// the highlight semantics) and fall back to the Haldane–Anscombe
// continuity estimate in Continuity, so a cell decrementing to zero
// mid-stream degrades instead of erroring.
func (c *StateOrganCells) Highlight() (*HighlightResult, error) {
	codes := geo.StateCodes()
	totalUsers := c.users.Sum()
	if totalUsers == 0 {
		return nil, fmt.Errorf("core: no users could be assigned to a state")
	}
	res := &HighlightResult{
		Risks:      make([][]StateOrganRisk, len(codes)),
		StateCodes: codes,
	}
	for s := range codes {
		res.Risks[s] = make([]StateOrganRisk, organ.Count)
		for _, o := range organ.All() {
			j := o.Index()
			aCnt := int(c.mention.At(s, j))
			bCnt := int(c.users.At(s)) - aCnt
			cCnt := int(c.mention.ColSum(j)) - aCnt
			dCnt := int(totalUsers-c.users.At(s)) - cCnt
			risk := StateOrganRisk{StateCode: codes[s], Organ: o}
			if rr, err := stats.NewRelativeRisk(aCnt, bCnt, cCnt, dCnt); err == nil {
				risk.RR = rr
				risk.Defined = true
			} else if rr, err := stats.ContinuityRelativeRisk(aCnt, bCnt, cCnt, dCnt); err == nil {
				risk.Continuity = rr
				risk.ContinuityDefined = true
			}
			res.Risks[s][j] = risk
		}
	}
	return res, nil
}

// WinnerTakesAll builds the winner-takes-all baseline from accumulated
// counts: the most-mentioned organ per state by raw user counts, organ
// ties to the lower index, states with no users mapping to -1.
func (c *StateOrganCells) WinnerTakesAll() (map[string]organ.Organ, error) {
	codes := geo.StateCodes()
	out := make(map[string]organ.Organ, len(codes))
	any := false
	for s, code := range codes {
		if c.users.At(s) == 0 {
			out[code] = organ.Organ(-1)
			continue
		}
		any = true
		best, bi := int64(-1), 0
		for j := 0; j < organ.Count; j++ {
			if v := c.mention.At(s, j); v > best {
				best, bi = v, j
			}
		}
		out[code] = organ.Organ(bi)
	}
	if !any {
		return nil, fmt.Errorf("core: no users could be assigned to a state")
	}
	return out, nil
}

// MentionAccum is the mergeable per-organ user-count accumulator behind
// the Table I and Figure 2 user statistics: distinct users mentioning
// each organ (Figure 2a), users by distinct-organ count (Figure 2b), and
// the distinct (user, organ) pair total that Table I's organs-per-user
// averages. Updated in place from mention-mask transitions — remove the
// old mask, add the new — and associative under Merge.
type MentionAccum struct {
	// PerOrgan[o] counts distinct users mentioning organ o.
	PerOrgan [organ.Count]int64
	// MultiUsers[k-1] counts users mentioning exactly k distinct organs.
	MultiUsers [organ.Count]int64
	// DistinctPairs is the total distinct (user, organ) mention pairs.
	DistinctPairs int64
}

// AddMask counts one user's mention mask with the given delta (+1 on
// entry, −1 to reverse). Zero masks contribute nothing, matching the
// full-scan behavior for users with no mentions.
func (m *MentionAccum) AddMask(mask uint8, delta int) {
	k := bits.OnesCount8(mask)
	if k == 0 {
		return
	}
	d := int64(delta)
	m.MultiUsers[k-1] += d
	m.DistinctPairs += int64(k) * d
	for b := mask; b != 0; b &= b - 1 {
		m.PerOrgan[bits.TrailingZeros8(b)] += d
	}
}

// Merge adds other into m — associative and commutative.
func (m *MentionAccum) Merge(other *MentionAccum) {
	for i := range m.PerOrgan {
		m.PerOrgan[i] += other.PerOrgan[i]
		m.MultiUsers[i] += other.MultiUsers[i]
	}
	m.DistinctPairs += other.DistinctPairs
}

// UsersPerOrgan returns the Figure 2a histogram in the int shape the
// full-scan API uses.
func (m *MentionAccum) UsersPerOrgan() [organ.Count]int {
	var out [organ.Count]int
	for i, v := range m.PerOrgan {
		out[i] = int(v)
	}
	return out
}

// MultiOrganUsers returns the Figure 2b user histogram (index 0 is
// k = 1).
func (m *MentionAccum) MultiOrganUsers() [organ.Count]int {
	var out [organ.Count]int
	for i, v := range m.MultiUsers {
		out[i] = int(v)
	}
	return out
}
