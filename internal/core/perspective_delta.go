package core

import (
	"fmt"

	"donorsense/internal/geo"
	"donorsense/internal/mat"
	"donorsense/internal/organ"
)

// Incremental Equation 3: recompute only the dirty group rows of K.
//
// K's rows are floating-point means, and float addition is not
// associative — a per-group sum is bit-identical to Aggregate's only
// when accumulated over the same members in the same (ascending row)
// order. So unlike the integer layer (StateOrganCells, MentionAccum),
// group rows are not subtracted in place: a group whose membership or
// member rows changed is marked dirty and its row is recomputed from
// scratch with Aggregate's exact summation order, while clean rows are
// carried over bit-for-bit from the previous characterization. The
// required invariant, which callers (the report engine) maintain and the
// differential tests enforce: every attention row that was patched, and
// both the old and new group of every row whose assignment moved, dirty
// the affected groups. Group sizes are plain integers and are maintained
// subtractably by the caller; aggregateDelta cross-checks them against
// the assignment vector.

// aggregateDelta rebuilds K from a previous aggregation: assign gives
// each attention row's group (-1 unassigned), sizes the caller-tracked
// per-group membership counts, dirty the groups whose rows must be
// recomputed. Returns the new K and the empty-group list (ascending),
// exactly as mat.Membership.Aggregate reports them.
func aggregateDelta(a *Attention, prevK *mat.Matrix, groups int, assign []int16, sizes []int, dirty []bool) (*mat.Matrix, []int, error) {
	m := a.Users()
	if len(assign) != m {
		return nil, nil, fmt.Errorf("core: delta assignment has %d rows, attention has %d", len(assign), m)
	}
	if len(sizes) != groups || len(dirty) != groups {
		return nil, nil, fmt.Errorf("core: delta sizes/dirty length %d/%d, want %d groups", len(sizes), len(dirty), groups)
	}
	if prevK.Rows() != groups || prevK.Cols() != organ.Count {
		return nil, nil, fmt.Errorf("core: previous K is %d×%d, want %d×%d", prevK.Rows(), prevK.Cols(), groups, organ.Count)
	}
	// Cross-check the subtractable size counters against the assignment
	// vector; a mismatch means the caller broke the dirtiness invariant.
	hist := make([]int, groups)
	for i, g := range assign {
		if g < -1 || int(g) >= groups {
			return nil, nil, fmt.Errorf("core: row %d assigned to group %d of %d", i, g, groups)
		}
		if g >= 0 {
			hist[g]++
		}
	}
	for g, n := range hist {
		if n != sizes[g] {
			return nil, nil, fmt.Errorf("core: group %d size counter %d, assignment has %d", g, sizes[g], n)
		}
	}

	k := mat.New(groups, organ.Count)
	anyDirty := false
	for g := 0; g < groups; g++ {
		if dirty[g] {
			anyDirty = true
			continue
		}
		copy(k.RowView(g), prevK.RowView(g))
	}
	if anyDirty {
		// One ascending pass accumulating only into dirty rows — the
		// same per-group visit order Aggregate uses over all rows.
		u := a.Matrix()
		for i := 0; i < m; i++ {
			g := assign[i]
			if g < 0 || !dirty[g] {
				continue
			}
			urow := u.RowView(i)
			krow := k.RowView(int(g))
			for j, v := range urow {
				krow[j] += v
			}
		}
		for g := 0; g < groups; g++ {
			if !dirty[g] || sizes[g] == 0 {
				continue
			}
			krow := k.RowView(g)
			inv := 1 / float64(sizes[g])
			for j := range krow {
				krow[j] *= inv
			}
		}
	}
	var empty []int
	for g, n := range sizes {
		if n == 0 {
			empty = append(empty, g)
		}
	}
	return k, empty, nil
}

// CharacterizeOrgansDelta is the incremental CharacterizeOrgans: assign
// holds each attention row's primary-organ group (never -1 — every Û row
// has a primary organ), sizes the per-organ membership counts, dirty the
// organ groups needing recomputation against prev.
func CharacterizeOrgansDelta(a *Attention, prev *OrganCharacterization, assign []int16, sizes []int, dirty []bool) (*OrganCharacterization, error) {
	k, _, err := aggregateDelta(a, prev.K, organ.Count, assign, sizes, dirty)
	if err != nil {
		return nil, fmt.Errorf("core: organ aggregation: %w", err)
	}
	out := &OrganCharacterization{K: k, GroupSizes: make([]int, len(sizes))}
	copy(out.GroupSizes, sizes)
	return out, nil
}

// CharacterizeRegionsDelta is the incremental CharacterizeRegionsFunc:
// assign holds each attention row's geo.StateCodes() row (-1 when the
// user's state is unresolvable), sizes the per-state membership counts,
// dirty the states needing recomputation against prev.
func CharacterizeRegionsDelta(a *Attention, prev *RegionCharacterization, assign []int16, sizes []int, dirty []bool) (*RegionCharacterization, error) {
	codes := geo.StateCodes()
	assigned := 0
	for _, n := range sizes {
		assigned += n
	}
	if assigned == 0 {
		return nil, fmt.Errorf("core: no users could be assigned to a state")
	}
	k, empty, err := aggregateDelta(a, prev.K, len(codes), assign, sizes, dirty)
	if err != nil {
		return nil, fmt.Errorf("core: region aggregation: %w", err)
	}
	out := &RegionCharacterization{
		K:           k,
		StateCodes:  codes,
		GroupSizes:  make([]int, len(sizes)),
		EmptyStates: empty,
	}
	copy(out.GroupSizes, sizes)
	return out, nil
}
