package core

import (
	"math"
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"

	"donorsense/internal/geo"
	"donorsense/internal/organ"
)

func mentions(pairs ...any) [organ.Count]int {
	var m [organ.Count]int
	for i := 0; i+1 < len(pairs); i += 2 {
		m[pairs[i].(organ.Organ).Index()] = pairs[i+1].(int)
	}
	return m
}

func TestBuilderNormalizesRows(t *testing.T) {
	b := NewAttentionBuilder()
	b.Observe(1, mentions(organ.Heart, 3, organ.Kidney, 1))
	b.Observe(2, mentions(organ.Liver, 2))
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if a.Users() != 2 {
		t.Fatalf("Users = %d, want 2", a.Users())
	}
	r := a.Row(a.RowOf(1))
	if r[organ.Heart.Index()] != 0.75 || r[organ.Kidney.Index()] != 0.25 {
		t.Errorf("user 1 row = %v", r)
	}
	r2 := a.Row(a.RowOf(2))
	if r2[organ.Liver.Index()] != 1 {
		t.Errorf("user 2 row = %v", r2)
	}
}

func TestBuilderAccumulatesAcrossObservations(t *testing.T) {
	b := NewAttentionBuilder()
	b.Observe(7, mentions(organ.Heart, 1))
	b.Observe(7, mentions(organ.Heart, 1, organ.Lung, 2))
	a, _ := b.Build()
	r := a.Row(a.RowOf(7))
	if r[organ.Heart.Index()] != 0.5 || r[organ.Lung.Index()] != 0.5 {
		t.Errorf("accumulated row = %v", r)
	}
}

func TestBuilderIgnoresZeroMentions(t *testing.T) {
	b := NewAttentionBuilder()
	b.Observe(1, [organ.Count]int{})
	if b.Users() != 0 {
		t.Error("zero-mention observation created a user")
	}
	if _, err := b.Build(); err == nil {
		t.Error("empty build accepted")
	}
}

func TestRowOfUnknownUser(t *testing.T) {
	b := NewAttentionBuilder()
	b.Observe(1, mentions(organ.Heart, 1))
	a, _ := b.Build()
	if a.RowOf(99) != -1 {
		t.Error("unknown user has a row")
	}
}

func TestPrimaryOrganArgmaxAndTies(t *testing.T) {
	b := NewAttentionBuilder()
	b.Observe(1, mentions(organ.Kidney, 5, organ.Heart, 2))
	b.Observe(2, mentions(organ.Heart, 1, organ.Lung, 1)) // tie
	a, _ := b.Build()
	if got := a.PrimaryOrgan(a.RowOf(1)); got != organ.Kidney {
		t.Errorf("primary of user 1 = %v, want kidney", got)
	}
	// A tie must resolve to one of the tied organs, deterministically.
	tie1 := a.PrimaryOrgan(a.RowOf(2))
	if tie1 != organ.Heart && tie1 != organ.Lung {
		t.Errorf("tie primary = %v, want heart or lung", tie1)
	}
	if again := a.PrimaryOrgan(a.RowOf(2)); again != tie1 {
		t.Errorf("tie break not deterministic: %v then %v", tie1, again)
	}
}

func TestPrimaryOrganTieBreakUnbiased(t *testing.T) {
	// Across many users, 50/50 heart–kidney ties must split roughly
	// evenly between the two groups (the Figure 3 debiasing property).
	b := NewAttentionBuilder()
	const n = 2000
	for i := int64(0); i < n; i++ {
		b.Observe(i+1, mentions(organ.Heart, 1, organ.Kidney, 1))
	}
	a, _ := b.Build()
	heart := 0
	for row := 0; row < a.Users(); row++ {
		switch a.PrimaryOrgan(row) {
		case organ.Heart:
			heart++
		case organ.Kidney:
		default:
			t.Fatal("tie resolved to an un-tied organ")
		}
	}
	frac := float64(heart) / n
	if frac < 0.44 || frac > 0.56 {
		t.Errorf("heart share of ties = %.3f, want ≈0.5", frac)
	}
}

func TestUserIDsSorted(t *testing.T) {
	b := NewAttentionBuilder()
	for _, id := range []int64{42, 7, 99, 13} {
		b.Observe(id, mentions(organ.Heart, 1))
	}
	a, _ := b.Build()
	ids := a.UserIDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("user IDs not sorted: %v", ids)
		}
	}
	for i, id := range ids {
		if a.RowOf(id) != i {
			t.Errorf("RowOf(%d) = %d, want %d", id, a.RowOf(id), i)
		}
	}
}

func TestCharacterizeOrgansHandComputed(t *testing.T) {
	// Two heart-primary users and one kidney-primary user.
	b := NewAttentionBuilder()
	b.Observe(1, mentions(organ.Heart, 3, organ.Kidney, 1)) // [.75 .25 ...]
	b.Observe(2, mentions(organ.Heart, 1))                  // [1 0 ...]
	b.Observe(3, mentions(organ.Kidney, 4, organ.Liver, 1)) // kidney primary
	a, _ := b.Build()
	oc, err := CharacterizeOrgans(a)
	if err != nil {
		t.Fatal(err)
	}
	heartRow := oc.Signature(organ.Heart)
	if !floatEq(heartRow[organ.Heart.Index()], 0.875) || !floatEq(heartRow[organ.Kidney.Index()], 0.125) {
		t.Errorf("heart signature = %v", heartRow)
	}
	kidneyRow := oc.Signature(organ.Kidney)
	if !floatEq(kidneyRow[organ.Kidney.Index()], 0.8) || !floatEq(kidneyRow[organ.Liver.Index()], 0.2) {
		t.Errorf("kidney signature = %v", kidneyRow)
	}
	if oc.GroupSizes[organ.Heart.Index()] != 2 || oc.GroupSizes[organ.Kidney.Index()] != 1 {
		t.Errorf("group sizes = %v", oc.GroupSizes)
	}
}

func floatEq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestCoMentionRank(t *testing.T) {
	b := NewAttentionBuilder()
	b.Observe(1, mentions(organ.Heart, 10, organ.Kidney, 3, organ.Liver, 1))
	a, _ := b.Build()
	oc, _ := CharacterizeOrgans(a)
	rank := oc.CoMentionRank(organ.Heart)
	if len(rank) != organ.Count-1 {
		t.Fatalf("rank length %d", len(rank))
	}
	if rank[0] != organ.Kidney || rank[1] != organ.Liver {
		t.Errorf("co-mention rank = %v", rank)
	}
	for _, o := range rank {
		if o == organ.Heart {
			t.Error("self organ appears in co-mention rank")
		}
	}
}

func TestKRowsAreDistributions(t *testing.T) {
	// Property: every non-empty row of K is a probability distribution,
	// since Equation 3 averages distributions.
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 21))
		b := NewAttentionBuilder()
		n := 5 + r.IntN(50)
		for i := 0; i < n; i++ {
			var m [organ.Count]int
			for j := range m {
				m[j] = r.IntN(5)
			}
			m[r.IntN(organ.Count)]++ // ensure non-zero
			b.Observe(int64(i), m)
		}
		a, err := b.Build()
		if err != nil {
			return false
		}
		oc, err := CharacterizeOrgans(a)
		if err != nil {
			return false
		}
		for i := 0; i < organ.Count; i++ {
			if oc.GroupSizes[i] == 0 {
				continue
			}
			sum := 0.0
			for _, v := range oc.K.Row(i) {
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func buildRegionFixture(t *testing.T) (*Attention, map[int64]string) {
	t.Helper()
	b := NewAttentionBuilder()
	states := map[int64]string{}
	id := int64(0)
	add := func(state string, m [organ.Count]int) {
		id++
		b.Observe(id, m)
		states[id] = state
	}
	// Kansas: kidney-heavy (kidney-only users so heart isn't also
	// universally mentioned there).
	for i := 0; i < 30; i++ {
		add("KS", mentions(organ.Kidney, 2))
	}
	for i := 0; i < 10; i++ {
		add("KS", mentions(organ.Heart, 1))
	}
	// Texas: heart-heavy, larger.
	for i := 0; i < 80; i++ {
		add("TX", mentions(organ.Heart, 2))
	}
	for i := 0; i < 20; i++ {
		add("TX", mentions(organ.Kidney, 1))
	}
	// California: mixed.
	for i := 0; i < 50; i++ {
		add("CA", mentions(organ.Heart, 1, organ.Liver, 1))
	}
	for i := 0; i < 30; i++ {
		add("CA", mentions(organ.Kidney, 1))
	}
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return a, states
}

func TestCharacterizeRegions(t *testing.T) {
	a, states := buildRegionFixture(t)
	rc, err := CharacterizeRegions(a, states)
	if err != nil {
		t.Fatal(err)
	}
	ks := rc.Signature("KS")
	// 30 kidney-only users plus 10 heart-only users: kidney = 30/40 = .75
	if !floatEq(ks[organ.Kidney.Index()], 0.75) {
		t.Errorf("KS kidney attention = %v, want 0.75", ks[organ.Kidney.Index()])
	}
	tx := rc.Signature("TX")
	if !floatEq(tx[organ.Heart.Index()], 0.8) {
		t.Errorf("TX heart attention = %v, want 0.8", tx[organ.Heart.Index()])
	}
	// States with no users are listed empty.
	foundWY := false
	for _, e := range rc.EmptyStates {
		if rc.StateCodes[e] == "WY" {
			foundWY = true
		}
	}
	if !foundWY {
		t.Error("WY not reported empty")
	}
	if rc.Signature("ZZ") != nil {
		t.Error("unknown state has a signature")
	}
	rows, codes := rc.NonEmptyRows()
	if len(rows) != 3 || len(codes) != 3 {
		t.Errorf("NonEmptyRows = %d rows, %v", len(rows), codes)
	}
}

func TestCharacterizeRegionsSkipsUnknownStates(t *testing.T) {
	b := NewAttentionBuilder()
	b.Observe(1, mentions(organ.Heart, 1))
	b.Observe(2, mentions(organ.Kidney, 1))
	a, _ := b.Build()
	rc, err := CharacterizeRegions(a, map[int64]string{1: "KS", 2: "XX"})
	if err != nil {
		t.Fatal(err)
	}
	if rc.GroupSizes[geo.StateIndex("KS")] != 1 {
		t.Error("KS user not counted")
	}
	// No state assignment at all → error.
	if _, err := CharacterizeRegions(a, map[int64]string{}); err == nil {
		t.Error("no assignable users accepted")
	}
}

func TestHighlightOrgansFindsKansasKidney(t *testing.T) {
	a, states := buildRegionFixture(t)
	h, err := HighlightOrgans(a, states)
	if err != nil {
		t.Fatal(err)
	}
	// All 40 KS users vs national: kidney mention rate inside = 30/40,
	// outside = 50/180 — strongly significant.
	ksOrgans := h.HighlightedOrgans("KS")
	if !reflect.DeepEqual(ksOrgans, []organ.Organ{organ.Kidney}) {
		t.Errorf("KS highlighted = %v, want [kidney]", ksOrgans)
	}
	if got := h.StatesHighlighting(organ.Kidney); !reflect.DeepEqual(got, []string{"KS"}) {
		t.Errorf("kidney states = %v, want [KS]", got)
	}
	// TX mentions heart everywhere but so does everyone; with CA liver
	// mixed in, heart inside TX = 80/100 vs outside = 90/120 — RR ≈ 1.07,
	// not significant at these magnitudes... verify it is not *kidney*.
	for _, o := range h.HighlightedOrgans("TX") {
		if o == organ.Kidney {
			t.Error("TX spuriously highlights kidney")
		}
	}
	// Empty states have undefined risks, never highlighted.
	if got := h.HighlightedOrgans("WY"); got != nil {
		t.Errorf("WY highlighted = %v, want none", got)
	}
	if h.HighlightedOrgans("ZZ") != nil {
		t.Error("unknown state highlighted")
	}
}

func TestHighlightErrorsWithNoStates(t *testing.T) {
	b := NewAttentionBuilder()
	b.Observe(1, mentions(organ.Heart, 1))
	a, _ := b.Build()
	if _, err := HighlightOrgans(a, map[int64]string{}); err == nil {
		t.Error("no-state highlight accepted")
	}
	if _, err := WinnerTakesAll(a, map[int64]string{}); err == nil {
		t.Error("no-state winner-takes-all accepted")
	}
}

func TestWinnerTakesAllDominatedByPrevalentOrgan(t *testing.T) {
	a, states := buildRegionFixture(t)
	w, err := WinnerTakesAll(a, states)
	if err != nil {
		t.Fatal(err)
	}
	// Heart wins TX and CA (CA: 50 heart+liver vs 30 kidney); kidney wins
	// KS by raw counts too in this small fixture (30 kidney vs 40 heart
	// mentions — careful: all 40 KS users mention heart... 30+10).
	if w["TX"] != organ.Heart {
		t.Errorf("TX winner = %v, want heart", w["TX"])
	}
	if w["KS"] != organ.Kidney {
		// In this fixture kidney users outnumber heart users in KS, so
		// even the raw-count baseline sees it. (The baseline's blind
		// spot — heart winning everywhere on national prevalence — is
		// demonstrated on the full synthetic corpus in the pipeline
		// tests and the Figure 5 ablation bench.)
		t.Errorf("KS winner = %v, want kidney", w["KS"])
	}
	if w["WY"] != organ.Organ(-1) {
		t.Errorf("WY winner = %v, want -1 sentinel", w["WY"])
	}
}

func TestHighlightUsesUsersNotTweets(t *testing.T) {
	// One hyperactive kidney user in Texas must not flip the state: the
	// prevalence unit is users.
	b := NewAttentionBuilder()
	states := map[int64]string{}
	for i := int64(1); i <= 20; i++ {
		b.Observe(i, mentions(organ.Heart, 1))
		states[i] = "TX"
	}
	// The heavy tweeter: 500 kidney mentions, still one user.
	b.Observe(100, mentions(organ.Kidney, 500))
	states[100] = "TX"
	for i := int64(200); i < 260; i++ {
		b.Observe(i, mentions(organ.Heart, 1, organ.Kidney, 1))
		states[i] = "CA"
	}
	a, _ := b.Build()
	h, err := HighlightOrgans(a, states)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range h.HighlightedOrgans("TX") {
		if o == organ.Kidney {
			t.Error("a single heavy tweeter flipped TX to kidney")
		}
	}
}

func BenchmarkCharacterizeOrgans(b *testing.B) {
	r := rand.New(rand.NewPCG(1, 1))
	bld := NewAttentionBuilder()
	for i := 0; i < 70000; i++ {
		var m [organ.Count]int
		m[r.IntN(organ.Count)] = 1 + r.IntN(5)
		if r.Float64() < 0.15 {
			m[r.IntN(organ.Count)] += 1
		}
		bld.Observe(int64(i), m)
	}
	a, _ := bld.Build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CharacterizeOrgans(a); err != nil {
			b.Fatal(err)
		}
	}
}
