package core

import (
	"fmt"

	"donorsense/internal/geo"
	"donorsense/internal/mat"
	"donorsense/internal/organ"
)

// OrganCharacterization is the organ-perspective aggregate (Figure 3):
// row i of K is the mean attention distribution of the users whose primary
// (most-cited) organ is i.
type OrganCharacterization struct {
	// K is the n×n aggregation matrix of Equation 3 under the Equation 1
	// membership.
	K *mat.Matrix
	// GroupSizes is the number of users aggregated into each organ row.
	GroupSizes []int
}

// CharacterizeOrgans builds the organ perspective from the attention
// matrix: users are grouped by arg-max organ (Equation 1) and aggregated
// with Equation 3.
func CharacterizeOrgans(a *Attention) (*OrganCharacterization, error) {
	l := mat.NewMembership(a.Users(), organ.Count)
	for row := 0; row < a.Users(); row++ {
		l.Assign(row, a.PrimaryOrgan(row).Index())
	}
	k, _, err := l.Aggregate(a.Matrix())
	if err != nil {
		return nil, fmt.Errorf("core: organ aggregation: %w", err)
	}
	return &OrganCharacterization{K: k, GroupSizes: l.Sizes()}, nil
}

// Signature returns organ o's characterization row: how users focused on
// o distribute attention across all organs.
func (oc *OrganCharacterization) Signature(o organ.Organ) []float64 {
	return oc.K.Row(o.Index())
}

// CoMentionRank returns the other organs in descending order of attention
// within o's signature — the ranked bins of Figure 3 (o itself excluded).
func (oc *OrganCharacterization) CoMentionRank(o organ.Organ) []organ.Organ {
	row := oc.K.Row(o.Index())
	row[o.Index()] = -1 // exclude self
	var out []organ.Organ
	for len(out) < organ.Count-1 {
		best, bi := -1.0, -1
		for i, v := range row {
			if v > best {
				best, bi = v, i
			}
		}
		out = append(out, organ.Organ(bi))
		row[bi] = -2
	}
	return out
}

// RegionCharacterization is the region-perspective aggregate
// (Figure 4): row r of K is the mean attention distribution of the users
// living in state r. States follow geo.StateCodes() order.
type RegionCharacterization struct {
	K *mat.Matrix
	// StateCodes gives the row order (canonical geo.StateCodes()).
	StateCodes []string
	// GroupSizes is the number of users aggregated per state.
	GroupSizes []int
	// EmptyStates lists row indices with no users (all-zero rows).
	EmptyStates []int
}

// StateLookup resolves a user id to its USPS state code. It is the
// callback form of the old map[int64]string argument: the columnar store
// answers it with an O(1) hash probe and an interned string, so callers
// no longer materialize an O(users) map to run the region analyses.
type StateLookup func(id int64) (string, bool)

// lookupMap adapts a materialized state map to a StateLookup.
func lookupMap(stateOf map[int64]string) StateLookup {
	return func(id int64) (string, bool) {
		code, ok := stateOf[id]
		return code, ok
	}
}

// CharacterizeRegions builds the region perspective: users are grouped by
// home state (Equation 2) and aggregated with Equation 3. stateOf maps a
// user ID to its USPS state code; users missing from the map or with
// unknown codes are left out of the aggregation (the paper drops users it
// cannot locate).
func CharacterizeRegions(a *Attention, stateOf map[int64]string) (*RegionCharacterization, error) {
	return CharacterizeRegionsFunc(a, lookupMap(stateOf))
}

// CharacterizeRegionsFunc is CharacterizeRegions with a StateLookup
// callback instead of a materialized map. Aggregation visits users in
// attention row order (ascending user id), so the floating-point sums —
// and therefore K — are bit-identical no matter how the lookup is backed.
func CharacterizeRegionsFunc(a *Attention, stateOf StateLookup) (*RegionCharacterization, error) {
	codes := geo.StateCodes()
	l := mat.NewMembership(a.Users(), len(codes))
	for row, id := range a.UserIDs() {
		code, ok := stateOf(id)
		if !ok {
			continue
		}
		idx := geo.StateIndex(code)
		if idx < 0 {
			continue
		}
		l.Assign(row, idx)
	}
	if l.Assigned() == 0 {
		return nil, fmt.Errorf("core: no users could be assigned to a state")
	}
	k, empty, err := l.Aggregate(a.Matrix())
	if err != nil {
		return nil, fmt.Errorf("core: region aggregation: %w", err)
	}
	return &RegionCharacterization{
		K:           k,
		StateCodes:  codes,
		GroupSizes:  l.Sizes(),
		EmptyStates: empty,
	}, nil
}

// StateRow returns the index of a state code in the characterization, or
// -1 when unknown.
func (rc *RegionCharacterization) StateRow(code string) int {
	return geo.StateIndex(code)
}

// Signature returns the state's attention distribution, or nil for
// unknown codes.
func (rc *RegionCharacterization) Signature(code string) []float64 {
	i := rc.StateRow(code)
	if i < 0 {
		return nil
	}
	return rc.K.Row(i)
}

// NonEmptyRows returns the rows (and their codes) of states that had at
// least one user, the input for the Figure 6 clustering. The rows are
// zero-copy views into K; callers must not mutate them.
func (rc *RegionCharacterization) NonEmptyRows() (rows [][]float64, codes []string) {
	empty := make(map[int]bool, len(rc.EmptyStates))
	for _, e := range rc.EmptyStates {
		empty[e] = true
	}
	for i, code := range rc.StateCodes {
		if empty[i] {
			continue
		}
		rows = append(rows, rc.K.RowView(i))
		codes = append(codes, code)
	}
	return rows, codes
}
