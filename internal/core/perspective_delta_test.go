package core

import (
	"math"
	"math/rand"
	"testing"

	"donorsense/internal/geo"
	"donorsense/internal/organ"
)

// TestAggregateDeltaBitIdentical drives randomized mention updates
// through the dirty-group recompute and asserts the resulting organ and
// region characterizations are bit-identical to full recomputation —
// including that clean group rows are carried over untouched.
func TestAggregateDeltaBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	codes := geo.StateCodes()

	// Build a population confined to a few states so some states stay
	// clean across updates.
	usedStates := []string{"OH", "CA", "NY", "TX", "WA", "FL"}
	shadow := map[int64][]int32{}
	stateOfMap := map[int64]string{}
	for i := 0; i < 400; i++ {
		id := int64(i + 1)
		row := make([]int32, organ.Count)
		row[rng.Intn(organ.Count)] = int32(rng.Intn(3) + 1)
		if rng.Intn(4) == 0 {
			row[rng.Intn(organ.Count)] += int32(rng.Intn(2) + 1)
		}
		shadow[id] = row
		stateOfMap[id] = usedStates[rng.Intn(len(usedStates))]
	}
	stateOf := func(id int64) (string, bool) { s, ok := stateOfMap[id]; return s, ok }

	columns := func() ([]int64, []int32) {
		sh := patchShadow(shadow)
		return sh.columns()
	}
	ids, counts := columns()
	att, err := AttentionFromCounts(ids, counts)
	if err != nil {
		t.Fatal(err)
	}
	prevOrg, err := CharacterizeOrgans(att)
	if err != nil {
		t.Fatal(err)
	}
	prevReg, err := CharacterizeRegionsFunc(att, stateOf)
	if err != nil {
		t.Fatal(err)
	}

	assignments := func(a *Attention) (orgAssign, regAssign []int16, orgSizes, regSizes []int) {
		orgAssign = make([]int16, a.Users())
		regAssign = make([]int16, a.Users())
		orgSizes = make([]int, organ.Count)
		regSizes = make([]int, len(codes))
		for row, id := range a.UserIDs() {
			g := a.PrimaryOrgan(row).Index()
			orgAssign[row] = int16(g)
			orgSizes[g]++
			code, _ := stateOf(id)
			s := geo.StateIndex(code)
			regAssign[row] = int16(s)
			if s >= 0 {
				regSizes[s]++
			}
		}
		return
	}

	for round := 0; round < 12; round++ {
		// Touch a handful of users in a couple of states.
		prevPrimary := map[int64]int{}
		for row, id := range att.UserIDs() {
			prevPrimary[id] = att.PrimaryOrgan(row).Index()
		}
		touched := map[int64]bool{}
		for i := 0; i < 1+rng.Intn(8); i++ {
			id := int64(rng.Intn(400) + 1)
			shadow[id][rng.Intn(organ.Count)] += int32(rng.Intn(3) + 1)
			touched[id] = true
		}
		var upIDs []int64
		for id := range touched {
			upIDs = append(upIDs, id)
		}
		for i := range upIDs {
			for j := i + 1; j < len(upIDs); j++ {
				if upIDs[j] < upIDs[i] {
					upIDs[i], upIDs[j] = upIDs[j], upIDs[i]
				}
			}
		}
		var upCounts []int32
		for _, id := range upIDs {
			upCounts = append(upCounts, shadow[id]...)
		}
		if err := att.Patch(upIDs, upCounts, nil); err != nil {
			t.Fatal(err)
		}

		// Dirty groups: the touched users' states, plus old+new primary
		// organs.
		orgDirty := make([]bool, organ.Count)
		regDirty := make([]bool, len(codes))
		for id := range touched {
			row := att.RowOf(id)
			orgDirty[prevPrimary[id]] = true
			orgDirty[att.PrimaryOrgan(row).Index()] = true
			code, _ := stateOf(id)
			regDirty[geo.StateIndex(code)] = true
		}

		orgAssign, regAssign, orgSizes, regSizes := assignments(att)
		gotOrg, err := CharacterizeOrgansDelta(att, prevOrg, orgAssign, orgSizes, orgDirty)
		if err != nil {
			t.Fatal(err)
		}
		gotReg, err := CharacterizeRegionsDelta(att, prevReg, regAssign, regSizes, regDirty)
		if err != nil {
			t.Fatal(err)
		}

		wantOrg, err := CharacterizeOrgans(att)
		if err != nil {
			t.Fatal(err)
		}
		wantReg, err := CharacterizeRegionsFunc(att, stateOf)
		if err != nil {
			t.Fatal(err)
		}

		compareMatrixBits(t, "organ K", gotOrg.K.Data(), wantOrg.K.Data())
		compareMatrixBits(t, "region K", gotReg.K.Data(), wantReg.K.Data())
		if len(gotOrg.GroupSizes) != len(wantOrg.GroupSizes) {
			t.Fatal("organ group sizes length")
		}
		for i := range wantOrg.GroupSizes {
			if gotOrg.GroupSizes[i] != wantOrg.GroupSizes[i] {
				t.Fatalf("organ group %d size %d want %d", i, gotOrg.GroupSizes[i], wantOrg.GroupSizes[i])
			}
		}
		for i := range wantReg.GroupSizes {
			if gotReg.GroupSizes[i] != wantReg.GroupSizes[i] {
				t.Fatalf("region group %d size %d want %d", i, gotReg.GroupSizes[i], wantReg.GroupSizes[i])
			}
		}
		if len(gotReg.EmptyStates) != len(wantReg.EmptyStates) {
			t.Fatalf("empty states %v want %v", gotReg.EmptyStates, wantReg.EmptyStates)
		}
		for i := range wantReg.EmptyStates {
			if gotReg.EmptyStates[i] != wantReg.EmptyStates[i] {
				t.Fatalf("empty states %v want %v", gotReg.EmptyStates, wantReg.EmptyStates)
			}
		}
		prevOrg, prevReg = gotOrg, gotReg
	}
}

func compareMatrixBits(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d want %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d] = %x want %x", what, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

// TestAggregateDeltaValidation pins the cross-checks: mismatched size
// counters and malformed assignments are refused.
func TestAggregateDeltaValidation(t *testing.T) {
	att, err := AttentionFromCounts([]int64{1, 2}, []int32{
		1, 0, 0, 0, 0, 0,
		0, 2, 0, 0, 0, 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	prev, err := CharacterizeOrgans(att)
	if err != nil {
		t.Fatal(err)
	}
	goodAssign := []int16{0, 1}
	goodSizes := []int{1, 1, 0, 0, 0, 0}
	dirty := make([]bool, organ.Count)

	if _, err := CharacterizeOrgansDelta(att, prev, []int16{0}, goodSizes, dirty); err == nil {
		t.Fatal("short assignment accepted")
	}
	if _, err := CharacterizeOrgansDelta(att, prev, goodAssign, []int{2, 0, 0, 0, 0, 0}, dirty); err == nil {
		t.Fatal("size-counter mismatch accepted")
	}
	if _, err := CharacterizeOrgansDelta(att, prev, []int16{0, 99}, goodSizes, dirty); err == nil {
		t.Fatal("out-of-range group accepted")
	}
	if _, err := CharacterizeOrgansDelta(att, prev, goodAssign, goodSizes, dirty); err != nil {
		t.Fatalf("valid no-dirty delta: %v", err)
	}
}
