// Package core implements the paper's contribution: the characterization
// of social-media users by their attention to solid organs, and its
// aggregations.
//
// Users are represented by a row-normalized contingency matrix
// Û = [û_ij] (m users × n organs) where û_ij is the fraction of user i's
// organ mentions that go to organ j (§III-B). Aggregation happens through
// a membership-indicator matrix L via Equation 3,
//
//	K = (LᵀL)⁻¹ Lᵀ Û,
//
// with L built either from each user's most-cited organ (Equation 1, the
// organ perspective of Figure 3) or from each user's state (Equation 2,
// the region perspective of Figures 4–6). Per-state organ highlighting
// uses the relative risk of Equation 4 (Figure 5).
package core

import (
	"fmt"
	"sort"

	"donorsense/internal/mat"
	"donorsense/internal/organ"
)

// AttentionBuilder accumulates per-user organ mention counts from a tweet
// stream and produces the normalized attention matrix Û.
type AttentionBuilder struct {
	counts map[int64]*[organ.Count]float64
}

// NewAttentionBuilder returns an empty builder.
func NewAttentionBuilder() *AttentionBuilder {
	return &AttentionBuilder{counts: make(map[int64]*[organ.Count]float64)}
}

// Observe records organ mentions for a user. mentions is indexed by
// canonical organ order (the text.Extraction.Mentions layout). Users with
// all-zero mentions are ignored.
func (b *AttentionBuilder) Observe(userID int64, mentions [organ.Count]int) {
	total := 0
	for _, m := range mentions {
		total += m
	}
	if total == 0 {
		return
	}
	row := b.counts[userID]
	if row == nil {
		row = new([organ.Count]float64)
		b.counts[userID] = row
	}
	for i, m := range mentions {
		row[i] += float64(m)
	}
}

// Users returns the number of users observed so far.
func (b *AttentionBuilder) Users() int { return len(b.counts) }

// Build produces the Attention matrix. The builder may keep accumulating
// afterwards; Build snapshots the current state. It errors when no users
// have been observed.
func (b *AttentionBuilder) Build() (*Attention, error) {
	if len(b.counts) == 0 {
		return nil, fmt.Errorf("core: no users observed")
	}
	ids := make([]int64, 0, len(b.counts))
	for id := range b.counts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	m := mat.New(len(ids), organ.Count)
	for r, id := range ids {
		row := b.counts[id]
		for c, v := range row {
			m.Set(r, c, v)
		}
	}
	if zero := m.NormalizeRows(); len(zero) != 0 {
		// Observe rejects all-zero mention vectors, so this is a bug.
		return nil, fmt.Errorf("core: %d zero attention rows", len(zero))
	}
	return &Attention{ids: ids, u: m}, nil
}

// AttentionFromCounts builds the Attention matrix straight from columnar
// mention counts: ids is the user-id column and counts the row-major
// len(ids)×organ.Count mention matrix (the userstore layout), both in
// arbitrary row order. Users whose mention row sums to zero are skipped,
// exactly as AttentionBuilder.Observe skips them, and rows are ordered by
// ascending user id, exactly as Build orders them — so the result is
// bit-identical to the builder path while doing one pass and zero
// per-user map work.
func AttentionFromCounts(ids []int64, counts []int32) (*Attention, error) {
	if len(counts) != len(ids)*organ.Count {
		return nil, fmt.Errorf("core: counts length %d does not match %d users", len(counts), len(ids))
	}
	perm := make([]int32, 0, len(ids))
	for r := range ids {
		sum := int32(0)
		for _, v := range counts[r*organ.Count : (r+1)*organ.Count] {
			sum += v
		}
		if sum != 0 {
			perm = append(perm, int32(r))
		}
	}
	if len(perm) == 0 {
		return nil, fmt.Errorf("core: no users observed")
	}
	sort.Slice(perm, func(i, j int) bool { return ids[perm[i]] < ids[perm[j]] })

	m := mat.New(len(perm), organ.Count)
	outIDs := make([]int64, len(perm))
	for r, src := range perm {
		outIDs[r] = ids[src]
		row := counts[int(src)*organ.Count : (int(src)+1)*organ.Count]
		for c, v := range row {
			m.Set(r, c, float64(v))
		}
	}
	if zero := m.NormalizeRows(); len(zero) != 0 {
		// Zero-sum rows were filtered above, so this is a bug.
		return nil, fmt.Errorf("core: %d zero attention rows", len(zero))
	}
	return &Attention{ids: outIDs, u: m}, nil
}

// Attention is the normalized user-attention matrix Û. Each row is a
// discrete probability distribution over the six organs. Rows are
// ordered by ascending user id — lookups binary-search the id column,
// which keeps incremental patching (Patch) free of any per-user index
// maintenance. epoch counts applied patches: 0 is a cold build, and
// every Patch call increments it, so consumers caching row-derived
// state can detect staleness cheaply.
type Attention struct {
	ids   []int64
	u     *mat.Matrix
	epoch uint64
}

// Users returns the number of users (rows).
func (a *Attention) Users() int { return len(a.ids) }

// UserIDs returns the user IDs in row order. The slice is shared; do not
// mutate.
func (a *Attention) UserIDs() []int64 { return a.ids }

// Epoch returns the number of patches applied since the cold build.
func (a *Attention) Epoch() uint64 { return a.epoch }

// RowOf returns the row index of the user, or -1 if unknown. Rows are
// sorted by user id, so this is a binary search.
func (a *Attention) RowOf(userID int64) int {
	lo, hi := 0, len(a.ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a.ids[mid] < userID {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(a.ids) && a.ids[lo] == userID {
		return lo
	}
	return -1
}

// Row returns a copy of the attention distribution of the given row.
func (a *Attention) Row(row int) []float64 { return a.u.Row(row) }

// Matrix returns the underlying Û. Callers must not mutate it.
func (a *Attention) Matrix() *mat.Matrix { return a.u }

// Rows exposes Û as a slice of rows for the clustering APIs. The rows
// are zero-copy views into the matrix; callers must not mutate them
// (use Row for a private copy). Bulk consumers should prefer Matrix()
// and the *Dense clustering entry points, which skip the slice header
// allocation too.
func (a *Attention) Rows() [][]float64 {
	out := make([][]float64, a.u.Rows())
	for i := range out {
		out[i] = a.u.RowView(i)
	}
	return out
}

// PrimaryOrgan returns the arg-max organ of a row (Equation 1's
// aggregation key). Exact ties (common for low-activity users, e.g. one
// heart tweet plus one kidney tweet) resolve by a deterministic hash of
// the user ID rather than NumPy's lowest-index convention: first-index
// tie-breaking funnels every 50/50 user into the lower-indexed organ's
// group, which systematically distorts the Figure 3 co-mention ranks.
// The hash split keeps the aggregation unbiased while staying
// reproducible.
func (a *Attention) PrimaryOrgan(row int) organ.Organ {
	r := a.u.RowView(row)
	best, bi := r[0], 0
	tied := 1
	for i := 1; i < len(r); i++ {
		switch {
		case r[i] > best:
			best, bi, tied = r[i], i, 1
		case r[i] == best:
			tied++
		}
	}
	if tied == 1 {
		return organ.Organ(bi)
	}
	h := splitmix64(uint64(a.ids[row]))
	pick := int(h % uint64(tied))
	for i := bi; i < len(r); i++ {
		if r[i] == best {
			if pick == 0 {
				return organ.Organ(i)
			}
			pick--
		}
	}
	return organ.Organ(bi)
}

// splitmix64 is the standard 64-bit mix used for deterministic hashing.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// MentionsOrgan reports whether the user row has any attention on the
// organ.
func (a *Attention) MentionsOrgan(row int, o organ.Organ) bool {
	return a.u.At(row, o.Index()) > 0
}
