package core

import (
	"reflect"
	"sort"
	"testing"

	"donorsense/internal/organ"
)

func TestCorrectionString(t *testing.T) {
	for _, c := range []Correction{NoCorrection, BonferroniCorrection, BHCorrection} {
		if c.String() == "correction(?)" {
			t.Errorf("correction %d unnamed", int(c))
		}
	}
}

func TestAdjustedHighlightsNoCorrectionMatchesPaperRule(t *testing.T) {
	a, states := buildRegionFixture(t)
	h, err := HighlightOrgans(a, states)
	if err != nil {
		t.Fatal(err)
	}
	adj, err := h.AdjustedHighlights(NoCorrection)
	if err != nil {
		t.Fatal(err)
	}
	for _, code := range h.StateCodes {
		want := h.HighlightedOrgans(code)
		got := adj[code]
		sortOrgans(want)
		sortOrgans(got)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("state %s: adjusted(none) = %v, paper rule = %v", code, got, want)
		}
	}
}

func sortOrgans(os []organ.Organ) {
	sort.Slice(os, func(i, j int) bool { return os[i] < os[j] })
}

func TestCorrectionsAreMonotonicallyStricter(t *testing.T) {
	a, states := buildRegionFixture(t)
	h, err := HighlightOrgans(a, states)
	if err != nil {
		t.Fatal(err)
	}
	none, _ := h.AdjustedHighlights(NoCorrection)
	bh, _ := h.AdjustedHighlights(BHCorrection)
	bonf, _ := h.AdjustedHighlights(BonferroniCorrection)
	if !(CountHighlights(bonf) <= CountHighlights(bh) && CountHighlights(bh) <= CountHighlights(none)) {
		t.Errorf("highlight counts not monotone: bonf=%d bh=%d none=%d",
			CountHighlights(bonf), CountHighlights(bh), CountHighlights(none))
	}
	// Every Bonferroni survivor must also survive BH, and every BH
	// survivor the uncorrected rule.
	subset := func(sub, super map[string][]organ.Organ) bool {
		for code, os := range sub {
			superset := map[organ.Organ]bool{}
			for _, o := range super[code] {
				superset[o] = true
			}
			for _, o := range os {
				if !superset[o] {
					return false
				}
			}
		}
		return true
	}
	if !subset(bonf, bh) || !subset(bh, none) {
		t.Error("correction survivors are not nested")
	}
}

func TestStrongSignalSurvivesBonferroni(t *testing.T) {
	// A very strong planted excess must survive even FWER control.
	b := NewAttentionBuilder()
	states := map[int64]string{}
	id := int64(0)
	add := func(state string, m [organ.Count]int) {
		id++
		b.Observe(id, m)
		states[id] = state
	}
	for i := 0; i < 200; i++ {
		add("KS", mentions(organ.Kidney, 1))
	}
	for i := 0; i < 2000; i++ {
		add("TX", mentions(organ.Heart, 1))
	}
	for i := 0; i < 300; i++ {
		add("TX", mentions(organ.Kidney, 1))
	}
	a, _ := b.Build()
	h, err := HighlightOrgans(a, states)
	if err != nil {
		t.Fatal(err)
	}
	bonf, err := h.AdjustedHighlights(BonferroniCorrection)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, o := range bonf["KS"] {
		if o == organ.Kidney {
			found = true
		}
	}
	if !found {
		t.Errorf("KS kidney (RR≈%.1f) did not survive Bonferroni: %v",
			h.Risks[ksRow(h)][organ.Kidney.Index()].RR.RR, bonf)
	}
}

func ksRow(h *HighlightResult) int {
	for i, c := range h.StateCodes {
		if c == "KS" {
			return i
		}
	}
	return -1
}

func TestAdjustedHighlightsErrors(t *testing.T) {
	a, states := buildRegionFixture(t)
	h, err := HighlightOrgans(a, states)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.AdjustedHighlights(Correction(99)); err == nil {
		t.Error("unknown correction accepted")
	}
}

func TestCountHighlights(t *testing.T) {
	m := map[string][]organ.Organ{
		"KS": {organ.Kidney},
		"MA": {organ.Kidney, organ.Lung},
	}
	if got := CountHighlights(m); got != 3 {
		t.Errorf("CountHighlights = %d, want 3", got)
	}
	if CountHighlights(nil) != 0 {
		t.Error("nil map should count 0")
	}
}
