package core

import (
	"math/rand"
	"reflect"
	"testing"

	"donorsense/internal/geo"
	"donorsense/internal/organ"
)

// randomCellsAttention builds a small attention matrix plus a state
// lookup over random users.
func randomCellsAttention(t *testing.T, rng *rand.Rand, n int) (*Attention, StateLookup, map[int64]uint8) {
	t.Helper()
	codes := geo.StateCodes()
	states := map[int64]string{}
	masks := map[int64]uint8{}
	ids := make([]int64, 0, n)
	counts := make([]int32, 0, n*organ.Count)
	for i := 0; i < n; i++ {
		id := int64(i + 1)
		ids = append(ids, id)
		mask := uint8(0)
		row := make([]int32, organ.Count)
		for j := 0; j < organ.Count; j++ {
			if rng.Intn(3) == 0 {
				row[j] = int32(rng.Intn(4) + 1)
				mask |= 1 << j
			}
		}
		if mask == 0 {
			j := rng.Intn(organ.Count)
			row[j] = 1
			mask = 1 << j
		}
		counts = append(counts, row...)
		states[id] = codes[rng.Intn(len(codes))]
		masks[id] = mask
	}
	a, err := AttentionFromCounts(ids, counts)
	if err != nil {
		t.Fatal(err)
	}
	return a, func(id int64) (string, bool) { s, ok := states[id]; return s, ok }, masks
}

// TestCellsMatchFullScan asserts an accumulator fed (state, mask) pairs
// produces results identical to the full-scan entry points, including
// after merge-sharded accumulation in shuffled order.
func TestCellsMatchFullScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, stateOf, masks := randomCellsAttention(t, rng, 300)

	wantH, err := HighlightOrgansFunc(a, stateOf)
	if err != nil {
		t.Fatal(err)
	}
	wantW, err := WinnerTakesAllFunc(a, stateOf)
	if err != nil {
		t.Fatal(err)
	}

	// Shard the users, accumulate per shard, merge shuffled.
	const shards = 3
	parts := make([]*StateOrganCells, shards)
	for i := range parts {
		parts[i] = NewStateOrganCells()
	}
	for id, mask := range masks {
		code, _ := stateOf(id)
		parts[rng.Intn(shards)].AddUser(geo.StateIndex(code), mask, 1)
	}
	merged := NewStateOrganCells()
	for _, i := range rng.Perm(shards) {
		if err := merged.Merge(parts[i]); err != nil {
			t.Fatal(err)
		}
	}
	gotH, err := merged.Highlight()
	if err != nil {
		t.Fatal(err)
	}
	gotW, err := merged.WinnerTakesAll()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotH, wantH) {
		t.Fatal("merged accumulator highlight differs from full scan")
	}
	if !reflect.DeepEqual(gotW, wantW) {
		t.Fatal("merged accumulator winner-takes-all differs from full scan")
	}
}

// TestCellsIncrementDecrementRoundTrip is the table-driven audit of the
// sparse-cell RR paths under incremental updates: admit a user, build
// the analysis, reverse the admission, and require the result to be
// byte-identical to the analysis that never saw the user — including
// cells that transit through zero, which must surface the continuity
// estimate while passing through, not error.
func TestCellsIncrementDecrementRoundTrip(t *testing.T) {
	base := func() *StateOrganCells {
		c := NewStateOrganCells()
		// Two states, modest counts; organ 0 mentioned only in OH.
		oh, ca := geo.StateIndex("OH"), geo.StateIndex("CA")
		for i := 0; i < 4; i++ {
			c.AddUser(oh, 0b000001, 1)
		}
		for i := 0; i < 6; i++ {
			c.AddUser(ca, 0b000010, 1)
		}
		return c
	}
	cases := []struct {
		name  string
		state string
		mask  uint8
	}{
		{"new organ in CA", "CA", 0b000001},
		{"multi-organ user in OH", "OH", 0b000111},
		{"third state", "TX", 0b100010},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := base()
			before, err := c.Highlight()
			if err != nil {
				t.Fatal(err)
			}
			beforeW, err := c.WinnerTakesAll()
			if err != nil {
				t.Fatal(err)
			}
			s := geo.StateIndex(tc.state)
			c.AddUser(s, tc.mask, 1)
			if _, err := c.Highlight(); err != nil {
				t.Fatalf("highlight after increment: %v", err)
			}
			c.AddUser(s, tc.mask, -1)
			after, err := c.Highlight()
			if err != nil {
				t.Fatal(err)
			}
			afterW, err := c.WinnerTakesAll()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(after, before) {
				t.Fatal("increment→decrement did not round-trip the highlight result")
			}
			if !reflect.DeepEqual(afterW, beforeW) {
				t.Fatal("increment→decrement did not round-trip winner-takes-all")
			}
		})
	}
}

// TestCellsZeroCellContinuity pins the decrement-to-zero behavior: when
// the only user mentioning an organ inside a state is removed, the
// (state, organ) cell's uncorrected RR becomes undefined but the
// continuity estimate is populated — no error, no highlight.
func TestCellsZeroCellContinuity(t *testing.T) {
	c := NewStateOrganCells()
	oh, ca := geo.StateIndex("OH"), geo.StateIndex("CA")
	heart := organ.Organ(1)
	// OH: one user mentioning organs 0+1, three mentioning only 0.
	c.AddUser(oh, 0b000011, 1)
	for i := 0; i < 3; i++ {
		c.AddUser(oh, 0b000001, 1)
	}
	// CA: users mentioning organ 1, so the outside column is nonzero.
	for i := 0; i < 5; i++ {
		c.AddUser(ca, 0b000010, 1)
	}

	h, err := c.Highlight()
	if err != nil {
		t.Fatal(err)
	}
	cell := h.Risks[oh][heart.Index()]
	if !cell.Defined {
		t.Fatalf("cell defined=false before decrement: %+v", cell)
	}

	// The lone OH heart-mentioner deletes their tweets: a 1 → 0.
	c.AddUser(oh, 0b000011, -1)
	c.AddUser(oh, 0b000001, 1) // still a user, now kidney-only

	h, err = c.Highlight()
	if err != nil {
		t.Fatalf("highlight with zero cell errored: %v", err)
	}
	cell = h.Risks[oh][heart.Index()]
	if cell.Defined {
		t.Fatalf("zero cell stayed defined: %+v", cell)
	}
	if cell.Highlighted() {
		t.Fatal("zero cell highlighted")
	}
	if !cell.ContinuityDefined {
		t.Fatal("zero cell missing continuity estimate")
	}
	if cell.Continuity.A != 0 || cell.Continuity.RR <= 0 {
		t.Fatalf("continuity estimate malformed: %+v", cell.Continuity)
	}

	// MentionAccum round-trips the same transition.
	var m MentionAccum
	m.AddMask(0b000011, 1)
	m.AddMask(0b000011, -1)
	m.AddMask(0b000001, 1)
	if got := m.UsersPerOrgan(); got[0] != 1 || got[1] != 0 {
		t.Fatalf("UsersPerOrgan after round-trip: %v", got)
	}
	if got := m.MultiOrganUsers(); got[0] != 1 || got[1] != 0 {
		t.Fatalf("MultiOrganUsers after round-trip: %v", got)
	}
	if m.DistinctPairs != 1 {
		t.Fatalf("DistinctPairs = %d", m.DistinctPairs)
	}
}
