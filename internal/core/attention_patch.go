package core

import (
	"fmt"

	"donorsense/internal/mat"
	"donorsense/internal/organ"
)

// Patch applies one refresh's worth of user changes to Û in place of a
// full rebuild, advancing the epoch. ids/counts carry the users whose
// mention vectors changed (ids strictly ascending, counts row-major
// len(ids)×organ.Count, every row with a nonzero sum — callers route
// users whose mentions dropped to zero through removes instead, exactly
// mirroring the zero-row filter of AttentionFromCounts). removes lists
// user ids to drop, also strictly ascending; ids unknown to the matrix
// are skipped, so callers may pass deletions of users that never earned
// a Û row.
//
// The result is bit-identical to AttentionFromCounts over the
// post-change columnar state: updated and inserted rows are normalized
// with the exact float sequence mat.NormalizeRows uses (left-to-right
// float64 sum, then per-element divide), untouched rows are copied —
// or, when the user set did not change, left in place — so no float is
// ever recomputed from a different expression.
//
// Cost: O(touched) when no users appear or disappear, O(users + touched)
// for one splice pass otherwise — never O(users × corpus-age).
func (a *Attention) Patch(ids []int64, counts []int32, removes []int64) error {
	if len(counts) != len(ids)*organ.Count {
		return fmt.Errorf("core: patch counts length %d does not match %d users", len(counts), len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			return fmt.Errorf("core: patch ids not strictly ascending at %d", i)
		}
	}
	for i := 1; i < len(removes); i++ {
		if removes[i-1] >= removes[i] {
			return fmt.Errorf("core: patch removes not strictly ascending at %d", i)
		}
	}
	for r := range ids {
		sum := int64(0)
		for _, v := range counts[r*organ.Count : (r+1)*organ.Count] {
			sum += int64(v)
		}
		if sum <= 0 {
			return fmt.Errorf("core: patch row for user %d sums to %d (zero rows go through removes)", ids[r], sum)
		}
	}

	// Count inserts and effective removes to decide between the in-place
	// fast path and the splice pass.
	inserts := 0
	for _, id := range ids {
		if a.RowOf(id) < 0 {
			inserts++
		}
	}
	removed := 0
	for _, id := range removes {
		if a.RowOf(id) >= 0 {
			removed++
		}
	}

	if inserts == 0 && removed == 0 {
		// Row set unchanged: renormalize the touched rows in place.
		for r, id := range ids {
			row := a.RowOf(id)
			normalizeInto(a.u.RowView(row), counts[r*organ.Count:(r+1)*organ.Count])
		}
		a.epoch++
		return nil
	}

	newN := len(a.ids) - removed + inserts
	if newN == 0 {
		return fmt.Errorf("core: no users observed")
	}
	outIDs := make([]int64, 0, newN)
	m := mat.New(newN, organ.Count)
	data := m.Data()
	old := a.u.Data()

	// Three-way ascending merge: old rows vs. updates vs. removes.
	oi, ui, ri := 0, 0, 0
	for oi < len(a.ids) || ui < len(ids) {
		var id int64
		switch {
		case oi >= len(a.ids):
			id = ids[ui]
		case ui >= len(ids):
			id = a.ids[oi]
		case ids[ui] < a.ids[oi]:
			id = ids[ui]
		default:
			id = a.ids[oi]
		}
		for ri < len(removes) && removes[ri] < id {
			ri++
		}
		if ri < len(removes) && removes[ri] == id {
			// Dropped user: skip its old row (an id can't be both
			// updated and removed in one patch).
			if ui < len(ids) && ids[ui] == id {
				return fmt.Errorf("core: patch updates and removes both carry user %d", id)
			}
			if oi < len(a.ids) && a.ids[oi] == id {
				oi++
			}
			ri++
			continue
		}
		r := len(outIDs)
		outIDs = append(outIDs, id)
		dst := data[r*organ.Count : (r+1)*organ.Count]
		if ui < len(ids) && ids[ui] == id {
			normalizeInto(dst, counts[ui*organ.Count:(ui+1)*organ.Count])
			if oi < len(a.ids) && a.ids[oi] == id {
				oi++
			}
			ui++
		} else {
			copy(dst, old[oi*organ.Count:(oi+1)*organ.Count])
			oi++
		}
	}
	if len(outIDs) != newN {
		return fmt.Errorf("core: patch merge produced %d rows, expected %d", len(outIDs), newN)
	}
	a.ids = outIDs
	a.u = m
	a.epoch++
	return nil
}

// normalizeInto writes the row-normalized form of an integer mention
// vector, replicating mat.NormalizeRows bit for bit: the denominator is
// the left-to-right float64 sum and each element is one divide.
func normalizeInto(dst []float64, cnt []int32) {
	sum := 0.0
	for _, v := range cnt {
		sum += float64(v)
	}
	for j, v := range cnt {
		dst[j] = float64(v) / sum
	}
}
