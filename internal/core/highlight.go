package core

import (
	"fmt"

	"donorsense/internal/geo"
	"donorsense/internal/organ"
	"donorsense/internal/stats"
)

// StateOrganRisk is the relative-risk analysis of one (state, organ) pair
// (Equation 4 / Figure 5).
type StateOrganRisk struct {
	StateCode string
	Organ     organ.Organ
	// RR carries the point estimate and confidence interval. Undefined
	// (zero-count) cells leave Defined false.
	RR      stats.RelativeRisk
	Defined bool
}

// Highlighted reports the paper's Figure 5 criterion: the organ's
// conversation prevalence significantly exceeds the national expectation
// in this state.
func (s StateOrganRisk) Highlighted() bool {
	return s.Defined && s.RR.Significant()
}

// HighlightResult holds the full Figure 5 analysis.
type HighlightResult struct {
	// Risks is indexed [stateRow][organ] in geo.StateCodes() ×
	// canonical organ order.
	Risks [][]StateOrganRisk
	// StateCodes gives the row order.
	StateCodes []string
}

// HighlightedOrgans returns the organs significantly over-represented in
// the state's conversations, in canonical organ order.
func (h *HighlightResult) HighlightedOrgans(code string) []organ.Organ {
	row := geo.StateIndex(code)
	if row < 0 {
		return nil
	}
	var out []organ.Organ
	for _, r := range h.Risks[row] {
		if r.Highlighted() {
			out = append(out, r.Organ)
		}
	}
	return out
}

// StatesHighlighting returns the state codes where the organ is
// significantly over-represented.
func (h *HighlightResult) StatesHighlighting(o organ.Organ) []string {
	var out []string
	for row, code := range h.StateCodes {
		if h.Risks[row][o.Index()].Highlighted() {
			out = append(out, code)
		}
	}
	return out
}

// HighlightOrgans computes, for every state and organ, the relative risk
// of a user mentioning the organ inside the state versus outside it
// (Equation 4), with the paper's α = 0.05 log-normal significance rule.
//
// The prevalence unit is users (not tweets), matching the paper's
// user-based characterization: a is the number of users in state r who
// mention organ i, b the users in r who do not, c and d the same outside
// r.
func HighlightOrgans(a *Attention, stateOf map[int64]string) (*HighlightResult, error) {
	return HighlightOrgansFunc(a, lookupMap(stateOf))
}

// HighlightOrgansFunc is HighlightOrgans with a StateLookup callback
// instead of a materialized map. The cell counts are integers, so the
// result is identical for any lookup backing.
func HighlightOrgansFunc(a *Attention, stateOf StateLookup) (*HighlightResult, error) {
	codes := geo.StateCodes()
	nStates := len(codes)

	// mention[s][o] = users in state s mentioning organ o;
	// users[s] = users in state s.
	mention := make([][organ.Count]int, nStates)
	users := make([]int, nStates)
	totalMention := [organ.Count]int{}
	totalUsers := 0

	for row, id := range a.UserIDs() {
		code, ok := stateOf(id)
		if !ok {
			continue
		}
		s := geo.StateIndex(code)
		if s < 0 {
			continue
		}
		users[s]++
		totalUsers++
		for _, o := range organ.All() {
			if a.MentionsOrgan(row, o) {
				mention[s][o.Index()]++
				totalMention[o.Index()]++
			}
		}
	}
	if totalUsers == 0 {
		return nil, fmt.Errorf("core: no users could be assigned to a state")
	}

	res := &HighlightResult{
		Risks:      make([][]StateOrganRisk, nStates),
		StateCodes: codes,
	}
	for s := 0; s < nStates; s++ {
		res.Risks[s] = make([]StateOrganRisk, organ.Count)
		for _, o := range organ.All() {
			j := o.Index()
			aCnt := mention[s][j]
			bCnt := users[s] - aCnt
			cCnt := totalMention[j] - aCnt
			dCnt := (totalUsers - users[s]) - cCnt
			risk := StateOrganRisk{StateCode: codes[s], Organ: o}
			if rr, err := stats.NewRelativeRisk(aCnt, bCnt, cCnt, dCnt); err == nil {
				risk.RR = rr
				risk.Defined = true
			}
			res.Risks[s][j] = risk
		}
	}
	return res, nil
}

// WinnerTakesAll is the baseline the paper argues against (§IV-B1): the
// most-mentioned organ per state by raw user counts. Because organ
// prevalence is skewed, this declares heart nearly everywhere; the bench
// harness contrasts it with the RR highlighting. States with no users map
// to -1.
func WinnerTakesAll(a *Attention, stateOf map[int64]string) (map[string]organ.Organ, error) {
	return WinnerTakesAllFunc(a, lookupMap(stateOf))
}

// WinnerTakesAllFunc is WinnerTakesAll with a StateLookup callback.
func WinnerTakesAllFunc(a *Attention, stateOf StateLookup) (map[string]organ.Organ, error) {
	codes := geo.StateCodes()
	counts := make([][organ.Count]int, len(codes))
	seen := make([]bool, len(codes))
	for row, id := range a.UserIDs() {
		code, ok := stateOf(id)
		if !ok {
			continue
		}
		s := geo.StateIndex(code)
		if s < 0 {
			continue
		}
		seen[s] = true
		for _, o := range organ.All() {
			if a.MentionsOrgan(row, o) {
				counts[s][o.Index()]++
			}
		}
	}
	out := make(map[string]organ.Organ, len(codes))
	any := false
	for s, code := range codes {
		if !seen[s] {
			out[code] = organ.Organ(-1)
			continue
		}
		any = true
		best, bi := -1, 0
		for j, c := range counts[s] {
			if c > best {
				best, bi = c, j
			}
		}
		out[code] = organ.Organ(bi)
	}
	if !any {
		return nil, fmt.Errorf("core: no users could be assigned to a state")
	}
	return out, nil
}
