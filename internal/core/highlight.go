package core

import (
	"donorsense/internal/geo"
	"donorsense/internal/organ"
	"donorsense/internal/stats"
)

// StateOrganRisk is the relative-risk analysis of one (state, organ) pair
// (Equation 4 / Figure 5).
type StateOrganRisk struct {
	StateCode string
	Organ     organ.Organ
	// RR carries the point estimate and confidence interval. Undefined
	// (zero-count) cells leave Defined false.
	RR      stats.RelativeRisk
	Defined bool
	// Continuity carries the Haldane–Anscombe continuity-corrected
	// estimate for cells where the uncorrected RR is undefined (a zero
	// outcome cell — routinely produced by incremental decrements), so
	// sparse cells degrade to a shrunk estimate instead of a hole.
	// Populated only when Defined is false and both exposure groups are
	// nonempty; it never influences Highlighted().
	Continuity        stats.RelativeRisk
	ContinuityDefined bool
}

// Highlighted reports the paper's Figure 5 criterion: the organ's
// conversation prevalence significantly exceeds the national expectation
// in this state.
func (s StateOrganRisk) Highlighted() bool {
	return s.Defined && s.RR.Significant()
}

// HighlightResult holds the full Figure 5 analysis.
type HighlightResult struct {
	// Risks is indexed [stateRow][organ] in geo.StateCodes() ×
	// canonical organ order.
	Risks [][]StateOrganRisk
	// StateCodes gives the row order.
	StateCodes []string
}

// HighlightedOrgans returns the organs significantly over-represented in
// the state's conversations, in canonical organ order.
func (h *HighlightResult) HighlightedOrgans(code string) []organ.Organ {
	row := geo.StateIndex(code)
	if row < 0 {
		return nil
	}
	var out []organ.Organ
	for _, r := range h.Risks[row] {
		if r.Highlighted() {
			out = append(out, r.Organ)
		}
	}
	return out
}

// StatesHighlighting returns the state codes where the organ is
// significantly over-represented.
func (h *HighlightResult) StatesHighlighting(o organ.Organ) []string {
	var out []string
	for row, code := range h.StateCodes {
		if h.Risks[row][o.Index()].Highlighted() {
			out = append(out, code)
		}
	}
	return out
}

// HighlightOrgans computes, for every state and organ, the relative risk
// of a user mentioning the organ inside the state versus outside it
// (Equation 4), with the paper's α = 0.05 log-normal significance rule.
//
// The prevalence unit is users (not tweets), matching the paper's
// user-based characterization: a is the number of users in state r who
// mention organ i, b the users in r who do not, c and d the same outside
// r.
func HighlightOrgans(a *Attention, stateOf map[int64]string) (*HighlightResult, error) {
	return HighlightOrgansFunc(a, lookupMap(stateOf))
}

// HighlightOrgansFunc is HighlightOrgans with a StateLookup callback
// instead of a materialized map. The cell counts are integers, so the
// result is identical for any lookup backing. It scans Û into a
// StateOrganCells accumulator and builds the result with Highlight —
// the same constructor the incremental engine feeds from its in-place
// accumulators, so the two paths cannot diverge.
func HighlightOrgansFunc(a *Attention, stateOf StateLookup) (*HighlightResult, error) {
	return cellsFromAttention(a, stateOf).Highlight()
}

// WinnerTakesAll is the baseline the paper argues against (§IV-B1): the
// most-mentioned organ per state by raw user counts. Because organ
// prevalence is skewed, this declares heart nearly everywhere; the bench
// harness contrasts it with the RR highlighting. States with no users map
// to -1.
func WinnerTakesAll(a *Attention, stateOf map[int64]string) (map[string]organ.Organ, error) {
	return WinnerTakesAllFunc(a, lookupMap(stateOf))
}

// WinnerTakesAllFunc is WinnerTakesAll with a StateLookup callback. Like
// HighlightOrgansFunc it scans into a StateOrganCells accumulator and
// shares the WinnerTakesAll constructor with the incremental engine.
func WinnerTakesAllFunc(a *Attention, stateOf StateLookup) (map[string]organ.Organ, error) {
	return cellsFromAttention(a, stateOf).WinnerTakesAll()
}
