// Package temporal implements the real-time dimension of the social
// sensor the paper's conclusion envisions: daily per-organ conversation
// time series and a rolling-baseline burst detector that flags awareness
// campaigns (National Kidney Month and the like) as they happen.
package temporal

import (
	"fmt"
	"time"

	"donorsense/internal/organ"
	"donorsense/internal/text"
	"donorsense/internal/twitter"
)

// Series holds daily tweet counts per organ over a collection window.
type Series struct {
	start time.Time
	// counts[day][organ] = US tweets mentioning that organ on that day.
	counts [][organ.Count]int
	// totals[day] = US tweets on that day (any organ).
	totals []int
}

// NewSeries returns an empty series starting at the given day (truncated
// to midnight UTC) spanning days entries.
func NewSeries(start time.Time, days int) (*Series, error) {
	if days <= 0 {
		return nil, fmt.Errorf("temporal: non-positive day span %d", days)
	}
	return &Series{
		start:  start.UTC().Truncate(24 * time.Hour),
		counts: make([][organ.Count]int, days),
		totals: make([]int, days),
	}, nil
}

// Days returns the series length in days.
func (s *Series) Days() int { return len(s.counts) }

// Start returns the first day of the window.
func (s *Series) Start() time.Time { return s.start }

// DayOf returns the day index of a timestamp, or -1 when it falls outside
// the window.
func (s *Series) DayOf(t time.Time) int {
	d := int(t.UTC().Sub(s.start).Hours() / 24)
	if d < 0 || d >= len(s.counts) {
		return -1
	}
	return d
}

// Observe folds one tweet extraction into the series. Tweets outside the
// window are ignored and reported false.
func (s *Series) Observe(t twitter.Tweet, ex text.Extraction) bool {
	d := s.DayOf(t.CreatedAt)
	if d < 0 {
		return false
	}
	s.totals[d]++
	// Iterate the mention counts rather than materializing an organ
	// slice; Observe runs once per retained US tweet on the hot path.
	for i, m := range ex.Mentions {
		if m > 0 {
			s.counts[d][i]++
		}
	}
	return true
}

// Count returns the tweets mentioning the organ on the given day.
func (s *Series) Count(day int, o organ.Organ) int {
	return s.counts[day][o.Index()]
}

// Total returns all tweets on the given day.
func (s *Series) Total(day int) int { return s.totals[day] }

// OrganSeries returns the full daily series for one organ.
func (s *Series) OrganSeries(o organ.Organ) []int {
	out := make([]int, len(s.counts))
	for d := range s.counts {
		out[d] = s.counts[d][o.Index()]
	}
	return out
}

// WeeklyTotals aggregates the per-day totals into calendar weeks
// (7-day buckets from the window start; the last bucket may be short).
func (s *Series) WeeklyTotals() []int {
	weeks := (len(s.totals) + 6) / 7
	out := make([]int, weeks)
	for d, n := range s.totals {
		out[d/7] += n
	}
	return out
}
