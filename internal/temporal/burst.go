package temporal

import (
	"fmt"
	"math"

	"donorsense/internal/organ"
)

// Burst is a detected conversation spike for one organ.
type Burst struct {
	Organ    organ.Organ
	StartDay int
	EndDay   int // inclusive
	Peak     int // highest daily count inside the burst
	PeakDay  int
	// Z is the peak day's z-score against the trailing baseline.
	Z float64
}

// DetectorConfig tunes the rolling-baseline burst detector.
type DetectorConfig struct {
	// Window is the trailing baseline length in days (default 28).
	Window int
	// Threshold is the z-score a day must exceed to be bursting
	// (default 3).
	Threshold float64
	// MinCount suppresses bursts whose peak daily count is below this,
	// so near-zero series (intestine in a small corpus) don't fire on
	// 0 → 2 jumps (default 5).
	MinCount int
	// MinRun requires at least this many consecutive bursting days
	// (default 2), filtering one-day blips.
	MinRun int
}

// DefaultDetectorConfig returns the standard detector tuning.
func DefaultDetectorConfig() DetectorConfig {
	return DetectorConfig{Window: 28, Threshold: 3, MinCount: 5, MinRun: 2}
}

func (c *DetectorConfig) fill() {
	if c.Window <= 0 {
		c.Window = 28
	}
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.MinCount <= 0 {
		c.MinCount = 5
	}
	if c.MinRun <= 0 {
		c.MinRun = 2
	}
}

// DetectBursts scans one organ's daily series with a trailing-window
// z-score: day d bursts when count[d] > mean + threshold·std of the
// preceding window. Consecutive bursting days merge into one Burst. The
// baseline deliberately excludes the current day and never looks ahead,
// so detection is causal — usable on a live stream.
func DetectBursts(series []int, o organ.Organ, cfg DetectorConfig) ([]Burst, error) {
	cfg.fill()
	if len(series) < cfg.Window+1 {
		return nil, fmt.Errorf("temporal: series of %d days shorter than window %d", len(series), cfg.Window)
	}
	bursting := make([]bool, len(series))
	zscores := make([]float64, len(series))
	// Baseline over the last Window NON-bursting days: a detected burst
	// must not inflate its own baseline, or a month-long campaign would
	// silence the detector after its first week.
	baseline := make([]float64, 0, cfg.Window)
	var sum, sumSq float64
	push := func(v float64) {
		if len(baseline) == cfg.Window {
			old := baseline[0]
			baseline = baseline[1:]
			sum -= old
			sumSq -= old * old
		}
		baseline = append(baseline, v)
		sum += v
		sumSq += v * v
	}
	for d := 0; d < cfg.Window; d++ {
		push(float64(series[d]))
	}
	for d := cfg.Window; d < len(series); d++ {
		n := float64(len(baseline))
		mean := sum / n
		variance := sumSq/n - mean*mean
		if variance < 0 {
			variance = 0
		}
		// A floor keeps flat baselines from making every uptick infinite.
		std := math.Sqrt(variance)
		if std < 1 {
			std = 1
		}
		z := (float64(series[d]) - mean) / std
		zscores[d] = z
		if z > cfg.Threshold && series[d] >= cfg.MinCount {
			bursting[d] = true
			continue // frozen: bursting days stay out of the baseline
		}
		push(float64(series[d]))
	}

	var bursts []Burst
	d := 0
	for d < len(bursting) {
		if !bursting[d] {
			d++
			continue
		}
		start := d
		for d < len(bursting) && bursting[d] {
			d++
		}
		end := d - 1
		if end-start+1 < cfg.MinRun {
			continue
		}
		b := Burst{Organ: o, StartDay: start, EndDay: end}
		for day := start; day <= end; day++ {
			if series[day] > b.Peak {
				b.Peak = series[day]
				b.PeakDay = day
				b.Z = zscores[day]
			}
		}
		bursts = append(bursts, b)
	}
	return bursts, nil
}

// DetectAll runs the detector for every organ in the series.
func DetectAll(s *Series, cfg DetectorConfig) ([]Burst, error) {
	var out []Burst
	for _, o := range organ.All() {
		bs, err := DetectBursts(s.OrganSeries(o), o, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, bs...)
	}
	return out, nil
}

// Overlaps reports whether the burst intersects the [start, end] day
// range (inclusive), for matching detections against known campaigns.
func (b Burst) Overlaps(start, end int) bool {
	return b.StartDay <= end && b.EndDay >= start
}
