package temporal

import (
	"testing"
	"time"

	"donorsense/internal/gen"
	"donorsense/internal/organ"
	"donorsense/internal/pipeline"
	"donorsense/internal/text"
	"donorsense/internal/twitter"
)

func TestSeriesBasics(t *testing.T) {
	start := time.Date(2015, 4, 22, 0, 0, 0, 0, time.UTC)
	s, err := NewSeries(start, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.Days() != 10 || !s.Start().Equal(start) {
		t.Fatalf("series shape wrong: %d days, start %v", s.Days(), s.Start())
	}
	ex := text.NewExtractor()
	tw := twitter.Tweet{
		Text:      "please donate a kidney",
		CreatedAt: start.Add(3*24*time.Hour + 5*time.Hour),
	}
	if !s.Observe(tw, ex.Extract(tw.Text)) {
		t.Fatal("in-window tweet rejected")
	}
	if s.Count(3, organ.Kidney) != 1 || s.Total(3) != 1 {
		t.Errorf("counts wrong: %d, %d", s.Count(3, organ.Kidney), s.Total(3))
	}
	if s.Count(3, organ.Heart) != 0 {
		t.Error("heart counted spuriously")
	}
	// Outside the window.
	late := tw
	late.CreatedAt = start.AddDate(0, 0, 20)
	if s.Observe(late, ex.Extract(late.Text)) {
		t.Error("out-of-window tweet accepted")
	}
	early := tw
	early.CreatedAt = start.AddDate(0, 0, -1)
	if s.Observe(early, ex.Extract(early.Text)) {
		t.Error("pre-window tweet accepted")
	}
}

func TestNewSeriesErrors(t *testing.T) {
	if _, err := NewSeries(time.Now(), 0); err == nil {
		t.Error("zero-day series accepted")
	}
}

func TestWeeklyTotals(t *testing.T) {
	start := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
	s, _ := NewSeries(start, 15)
	ex := text.NewExtractor()
	for d := 0; d < 15; d++ {
		tw := twitter.Tweet{Text: "heart donor", CreatedAt: start.AddDate(0, 0, d)}
		s.Observe(tw, ex.Extract(tw.Text))
	}
	weeks := s.WeeklyTotals()
	if len(weeks) != 3 || weeks[0] != 7 || weeks[1] != 7 || weeks[2] != 1 {
		t.Errorf("weekly totals = %v", weeks)
	}
}

func TestDetectBurstsOnStep(t *testing.T) {
	// Flat baseline of 10/day, then a 5-day spike at 40.
	series := make([]int, 100)
	for d := range series {
		series[d] = 10
	}
	for d := 60; d < 65; d++ {
		series[d] = 40
	}
	bursts, err := DetectBursts(series, organ.Kidney, DefaultDetectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(bursts) != 1 {
		t.Fatalf("bursts = %+v, want exactly 1", bursts)
	}
	b := bursts[0]
	if b.StartDay != 60 || b.EndDay < 63 || b.Peak != 40 || b.Organ != organ.Kidney {
		t.Errorf("burst = %+v", b)
	}
	if !b.Overlaps(58, 61) || b.Overlaps(0, 10) {
		t.Error("Overlaps wrong")
	}
}

func TestDetectBurstsQuietSeries(t *testing.T) {
	// Mild noise around 10 must not fire.
	series := make([]int, 120)
	for d := range series {
		series[d] = 10 + (d*7)%3
	}
	bursts, err := DetectBursts(series, organ.Heart, DefaultDetectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(bursts) != 0 {
		t.Errorf("false bursts on quiet series: %+v", bursts)
	}
}

func TestDetectBurstsMinCountSuppressesSparse(t *testing.T) {
	// A 0 → 3 jump on a near-empty series is not a campaign.
	series := make([]int, 60)
	series[40], series[41] = 3, 3
	bursts, err := DetectBursts(series, organ.Intestine, DefaultDetectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(bursts) != 0 {
		t.Errorf("sparse blip detected as burst: %+v", bursts)
	}
}

func TestDetectBurstsMinRunFiltersBlips(t *testing.T) {
	series := make([]int, 60)
	for d := range series {
		series[d] = 10
	}
	series[50] = 100 // one-day blip
	bursts, err := DetectBursts(series, organ.Lung, DefaultDetectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(bursts) != 0 {
		t.Errorf("one-day blip detected: %+v", bursts)
	}
}

func TestDetectBurstsErrors(t *testing.T) {
	if _, err := DetectBursts(make([]int, 10), organ.Heart, DefaultDetectorConfig()); err == nil {
		t.Error("short series accepted")
	}
}

func TestDetectBurstsIsCausal(t *testing.T) {
	// Identical prefixes must give identical detections regardless of
	// what comes later (live-stream property).
	base := make([]int, 100)
	for d := range base {
		base[d] = 10
	}
	for d := 50; d < 55; d++ {
		base[d] = 50
	}
	alt := append([]int{}, base...)
	for d := 80; d < 100; d++ {
		alt[d] = 200 // a later burst must not change the first detection
	}
	b1, _ := DetectBursts(base, organ.Heart, DefaultDetectorConfig())
	b2, _ := DetectBursts(alt, organ.Heart, DefaultDetectorConfig())
	if len(b1) == 0 || len(b2) == 0 {
		t.Fatal("bursts missing")
	}
	if b1[0] != b2[0] {
		t.Errorf("first burst changed by future data: %+v vs %+v", b1[0], b2[0])
	}
}

// TestSensorDetectsPlantedCampaigns is the end-to-end extension
// experiment: the generator plants American Heart Month, National Kidney
// Month, and Donate Life Month; the sensor must find kidney and heart
// bursts inside their windows.
func TestSensorDetectsPlantedCampaigns(t *testing.T) {
	// Scale 0.3 gives ≈100 US tweets/day — enough for daily z-scores to
	// resolve the planted monthly campaigns.
	cfg := gen.DefaultConfig(0.3)
	corpus := gen.Generate(cfg)

	series, err := NewSeries(cfg.Start, cfg.Days)
	if err != nil {
		t.Fatal(err)
	}
	d := pipeline.NewDataset()
	d.OnUSTweet = func(tw twitter.Tweet, ex text.Extraction) {
		series.Observe(tw, ex)
	}
	for _, tw := range corpus.Tweets {
		d.Process(tw)
	}

	det := DefaultDetectorConfig()
	det.Threshold = 2.5 // daily counts at this scale are modest
	det.MinCount = 8

	kidney, err := DetectBursts(series.OrganSeries(organ.Kidney), organ.Kidney, det)
	if err != nil {
		t.Fatal(err)
	}
	foundKidneyMonth := false
	for _, b := range kidney {
		if b.Overlaps(314, 344) {
			foundKidneyMonth = true
		}
	}
	if !foundKidneyMonth {
		t.Errorf("National Kidney Month (days 314–344) not detected; kidney bursts: %+v", kidney)
	}

	heart, err := DetectBursts(series.OrganSeries(organ.Heart), organ.Heart, det)
	if err != nil {
		t.Fatal(err)
	}
	foundHeartMonth := false
	for _, b := range heart {
		if b.Overlaps(285, 313) {
			foundHeartMonth = true
		}
	}
	if !foundHeartMonth {
		t.Errorf("American Heart Month (days 285–313) not detected; heart bursts: %+v", heart)
	}

	// An event-free corpus must stay quiet: every organ, no bursts.
	flat := cfg
	flat.Events = nil
	flatCorpus := gen.Generate(flat)
	flatSeries, _ := NewSeries(flat.Start, flat.Days)
	fd := pipeline.NewDataset()
	fd.OnUSTweet = func(tw twitter.Tweet, ex text.Extraction) {
		flatSeries.Observe(tw, ex)
	}
	for _, tw := range flatCorpus.Tweets {
		fd.Process(tw)
	}
	all, err := DetectAll(flatSeries, det)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) > 1 { // allow at most one noise blip across 6×385 days
		t.Errorf("event-free corpus produced %d bursts: %+v", len(all), all)
	}
}

func BenchmarkDetectBursts(b *testing.B) {
	series := make([]int, 385)
	for d := range series {
		series[d] = 300 + (d*13)%40
	}
	for d := 314; d < 345; d++ {
		series[d] = 600
	}
	cfg := DefaultDetectorConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DetectBursts(series, organ.Kidney, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
