package userstore

import (
	"math/rand"
	"testing"
)

// shadowRec is the oracle's copy of one user's mutable data.
type shadowRec struct {
	tweets, clinical, hashtags int32
	mentions                   [3]int32
	state                      string
	flags                      uint8
	firstSeen, firstTweetID    int64
}

// TestDeltaOracle drives a store through randomized insert / count /
// mention / identity / remove sequences against a brute-force shadow
// map, draining at random points and asserting the delta contract:
// every live user the oracle saw touched since the last drain sits at a
// marked row (including users relocated by swap-last deletes), every
// removal is reported, no bit indexes past Len(), and the drain resets.
func TestDeltaOracle(t *testing.T) {
	const nCols = 3
	rng := rand.New(rand.NewSource(909))
	states := []string{"OH", "CA", "NY", "TX"}

	s := New(nCols)
	s.EnableDeltaTracking()

	shadow := map[int64]*shadowRec{} // live users
	touched := map[int64]bool{}      // ids mutated since last drain
	var removed []int64              // ids removed since last drain

	drain := func() {
		d := s.DrainDelta()
		// Removals: same multiset, order-insensitive.
		gotDel := map[int64]int{}
		for _, id := range d.Deleted {
			gotDel[id]++
		}
		wantDel := map[int64]int{}
		for _, id := range removed {
			wantDel[id]++
		}
		if len(gotDel) != len(wantDel) {
			t.Fatalf("deleted ids: got %v want %v", d.Deleted, removed)
		}
		for id, n := range wantDel {
			if gotDel[id] != n {
				t.Fatalf("deleted id %d reported %d times, want %d", id, gotDel[id], n)
			}
		}
		// Every marked row is in range and live.
		d.Rows.Each(func(b uint32) {
			if int(b) >= s.Len() {
				t.Fatalf("dirty bit %d past Len %d", b, s.Len())
			}
		})
		// Every touched live user sits at a marked row with values
		// matching the shadow.
		for id := range touched {
			rec, live := shadow[id]
			if !live {
				continue // covered by Deleted
			}
			row, ok := s.Find(id)
			if !ok {
				t.Fatalf("touched id %d missing from store", id)
			}
			if !d.Rows.Test(uint32(row)) {
				t.Fatalf("touched id %d at row %d not marked dirty", id, row)
			}
			checkRow(t, s, row, id, rec)
		}
		if s.DirtyRows() != 0 {
			t.Fatalf("DirtyRows %d after drain", s.DirtyRows())
		}
		if !s.DrainDelta().Empty() {
			t.Fatal("second drain not empty")
		}
		touched = map[int64]bool{}
		removed = nil
	}

	liveIDs := func() []int64 {
		ids := make([]int64, 0, len(shadow))
		for id := range shadow {
			ids = append(ids, id)
		}
		return ids
	}

	for step := 0; step < 20000; step++ {
		switch op := rng.Intn(100); {
		case op < 35: // insert a (possibly recycled) id
			id := int64(rng.Intn(400) + 1)
			if _, ok := shadow[id]; ok {
				break
			}
			st := states[rng.Intn(len(states))]
			fs, ft := rng.Int63n(1000), rng.Int63n(1000)
			fl := uint8(rng.Intn(2))
			s.Insert(id, st, fl, fs, ft)
			shadow[id] = &shadowRec{state: st, flags: fl, firstSeen: fs, firstTweetID: ft}
			touched[id] = true
		case op < 65: // count + mention update on a live user
			ids := liveIDs()
			if len(ids) == 0 {
				break
			}
			id := ids[rng.Intn(len(ids))]
			row, _ := s.Find(id)
			dt, dc, dh := int32(rng.Intn(3)), int32(rng.Intn(2)), int32(rng.Intn(2))
			s.AddCounts(row, dt, dc, dh)
			col := rng.Intn(nCols)
			s.MentionsRow(row)[col]++
			s.MarkDirty(row)
			rec := shadow[id]
			rec.tweets += dt
			rec.clinical += dc
			rec.hashtags += dh
			rec.mentions[col]++
			touched[id] = true
		case op < 75: // identity rewrite
			ids := liveIDs()
			if len(ids) == 0 {
				break
			}
			id := ids[rng.Intn(len(ids))]
			row, _ := s.Find(id)
			st := states[rng.Intn(len(states))]
			fs, ft := rng.Int63n(1000), rng.Int63n(1000)
			fl := uint8(rng.Intn(2))
			s.SetIdentity(row, st, fl, fs, ft)
			rec := shadow[id]
			rec.state, rec.flags, rec.firstSeen, rec.firstTweetID = st, fl, fs, ft
			touched[id] = true
		case op < 92: // remove (exercises swap-last moves)
			ids := liveIDs()
			if len(ids) == 0 {
				break
			}
			id := ids[rng.Intn(len(ids))]
			if !s.Remove(id) {
				t.Fatalf("Remove(%d) reported absent", id)
			}
			delete(shadow, id)
			delete(touched, id)
			removed = append(removed, id)
		default:
			drain()
		}
	}
	drain()

	// Final integrity sweep: store equals shadow exactly.
	if s.Len() != len(shadow) {
		t.Fatalf("Len %d, shadow %d", s.Len(), len(shadow))
	}
	for id, rec := range shadow {
		row, ok := s.Find(id)
		if !ok {
			t.Fatalf("id %d missing", id)
		}
		checkRow(t, s, row, id, rec)
	}
}

func checkRow(t *testing.T, s *Store, row int32, id int64, rec *shadowRec) {
	t.Helper()
	if s.ID(row) != id {
		t.Fatalf("row %d id %d want %d", row, s.ID(row), id)
	}
	if s.Tweets(row) != rec.tweets || s.Clinical(row) != rec.clinical || s.Hashtags(row) != rec.hashtags {
		t.Fatalf("id %d counters (%d,%d,%d) want (%d,%d,%d)", id,
			s.Tweets(row), s.Clinical(row), s.Hashtags(row), rec.tweets, rec.clinical, rec.hashtags)
	}
	for c, v := range s.MentionsRow(row) {
		if v != rec.mentions[c] {
			t.Fatalf("id %d mention col %d = %d want %d", id, c, v, rec.mentions[c])
		}
	}
	if s.StateCode(row) != rec.state || s.Flags(row) != rec.flags ||
		s.FirstSeen(row) != rec.firstSeen || s.FirstTweetID(row) != rec.firstTweetID {
		t.Fatalf("id %d identity mismatch", id)
	}
}

// TestDeltaDisabled asserts the default store pays no tracking cost and
// reports empty deltas.
func TestDeltaDisabled(t *testing.T) {
	s := New(2)
	row := s.Insert(1, "OH", 0, 1, 1)
	s.AddCounts(row, 1, 0, 0)
	s.MarkDirty(row)
	s.Remove(1)
	if s.DeltaTracking() {
		t.Fatal("tracking enabled by default")
	}
	if s.DirtyRows() != 0 {
		t.Fatal("DirtyRows nonzero while disabled")
	}
	if d := s.DrainDelta(); !d.Empty() {
		t.Fatalf("drain while disabled: %+v", d)
	}
}

// TestDeltaSwapLastMove pins the swap-last contract precisely: deleting
// a clean middle row must mark the relocated tail row dirty and clear
// the vacated tail bit.
func TestDeltaSwapLastMove(t *testing.T) {
	s := New(2)
	s.Insert(10, "OH", 0, 1, 1)
	s.Insert(20, "CA", 0, 2, 2)
	s.Insert(30, "NY", 0, 3, 3)
	s.DrainDelta() // not yet tracking: empty
	s.EnableDeltaTracking()
	if !s.DrainDelta().Empty() {
		t.Fatal("expected clean store after enable")
	}

	s.Remove(10) // row 0 vacated; id 30 moves 2 → 0
	d := s.DrainDelta()
	if len(d.Deleted) != 1 || d.Deleted[0] != 10 {
		t.Fatalf("Deleted = %v, want [10]", d.Deleted)
	}
	row30, ok := s.Find(30)
	if !ok || row30 != 0 {
		t.Fatalf("id 30 at row %d (ok=%v), want 0", row30, ok)
	}
	if !d.Rows.Test(0) {
		t.Fatal("moved row 0 not marked dirty")
	}
	if d.Rows.Test(2) {
		t.Fatal("vacated tail bit 2 still set")
	}

	// Deleting the tail row itself (id 20 stayed at row 1) moves
	// nothing: no dirty rows.
	s.Remove(20)
	d = s.DrainDelta()
	if len(d.Deleted) != 1 || d.Deleted[0] != 20 {
		t.Fatalf("Deleted = %v, want [20]", d.Deleted)
	}
	if d.Rows.Count() != 0 {
		t.Fatalf("tail delete marked %d rows dirty", d.Rows.Count())
	}
}
