// Package userstore is the columnar per-user store behind
// pipeline.Dataset. At millions of retained users a map of pointer
// structs costs ~100+ bytes of header, pointer, and GC-metadata overhead
// per user before any data; this store keeps the same information in a
// handful of flat parallel slices — a few dozen bytes per user, no
// per-entry allocation, nothing for the garbage collector to trace —
// with O(1) amortized find-or-insert and delete.
//
// Layout:
//
//   - A dense-index open-addressing hash (int64 user id → row) with
//     linear probing and backward-shift deletion. The table is two flat
//     slices (keys, rows); growth rehashes at 75% load.
//   - Parallel column slices indexed by row: id, first-seen time, first
//     tweet id (int64); tweet/clinical/hashtag counters (int32); an
//     interned state index and a flags byte (uint8 each).
//   - One row-major mention-count matrix ([]int32, nCols columns per
//     row) — the shape the analytics engine consumes, so building Û is a
//     single linear pass with no intermediate maps.
//   - Per-state Bitset membership indices, so per-state slices iterate
//     64 rows per word instead of hashing every user.
//
// Rows are kept dense: deleting a user moves the last row into the hole
// (updating its hash slot and bitset bit), so columns never fragment and
// iteration is always a linear scan. Row order is consequently
// unspecified; consumers that need determinism sort by user id.
package userstore

import (
	"fmt"
	"math"
)

// Flag bits of the per-row flags byte.
const (
	// FlagGeoTagged records that the user's state came from a GPS
	// geo-tag; unset means the geocoded profile location (the two
	// location sources the pipeline distinguishes).
	FlagGeoTagged uint8 = 1 << 0
)

// NoState is the interned state index of a row whose identity has not
// been set yet (Insert assigns a real state immediately; the sentinel
// only exists so the zero column value is never a valid state).
const NoState = math.MaxUint8

const (
	minTableSize = 64 // power of two; small enough that tests exercise growth
	emptySlot    = -1
)

// Store is the columnar user store. It is not safe for concurrent
// mutation; like pipeline.Dataset, the collecting goroutine owns it.
type Store struct {
	nCols int

	// Open-addressing index: slots[i] is a row index or emptySlot. The
	// key itself is not duplicated in the table — probes compare
	// against ids[slots[i]] — so the index costs 4 bytes per slot.
	// len(slots) is a power of two.
	slots []int32
	mask  uint64
	used  int

	// Columns, indexed by row. All have identical length.
	ids          []int64
	firstSeen    []int64
	firstTweetID []int64
	tweets       []int32
	clinical     []int32
	hashtags     []int32
	stateIdx     []uint8
	flags        []uint8
	mentions     []int32 // row-major, nCols per row

	// State interning and per-state membership. stateCodes is
	// append-ordered (first-seen order, not canonical); members[i] is
	// the row bitset of stateCodes[i].
	stateCodes  []string
	stateByCode map[string]uint8
	members     []Bitset

	// Dirty-row tracking (delta.go); nil means disabled.
	delta *deltaState
}

// New returns an empty store with nCols mention columns per user.
func New(nCols int) *Store {
	if nCols <= 0 {
		panic(fmt.Sprintf("userstore: invalid column count %d", nCols))
	}
	return &Store{
		nCols:       nCols,
		stateByCode: make(map[string]uint8, 64),
	}
}

// Len returns the number of live rows (retained users).
func (s *Store) Len() int { return len(s.ids) }

// Cols returns the number of mention columns per row.
func (s *Store) Cols() int { return s.nCols }

// splitmix64 is the standard 64-bit finalizer; it spreads sequential
// user ids across the table.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Find returns the row of id, or (-1, false) when absent.
func (s *Store) Find(id int64) (int32, bool) {
	if s.used == 0 {
		return -1, false
	}
	i := splitmix64(uint64(id)) & s.mask
	for {
		r := s.slots[i]
		if r == emptySlot {
			return -1, false
		}
		if s.ids[r] == id {
			return r, true
		}
		i = (i + 1) & s.mask
	}
}

// findSlot returns the table slot holding id, or (0, false).
func (s *Store) findSlot(id int64) (uint64, bool) {
	if s.used == 0 {
		return 0, false
	}
	i := splitmix64(uint64(id)) & s.mask
	for {
		r := s.slots[i]
		if r == emptySlot {
			return 0, false
		}
		if s.ids[r] == id {
			return i, true
		}
		i = (i + 1) & s.mask
	}
}

// Insert appends a new row for id with the given identity fields and
// zeroed counters, and returns its row index. id must not already be
// present (Find first); inserting a duplicate corrupts the index.
func (s *Store) Insert(id int64, stateCode string, flags uint8, firstSeen, firstTweetID int64) int32 {
	if len(s.ids) >= math.MaxInt32 {
		panic("userstore: row count exceeds int32")
	}
	s.grow()
	row := int32(len(s.ids))
	i := splitmix64(uint64(id)) & s.mask
	for s.slots[i] != emptySlot {
		i = (i + 1) & s.mask
	}
	s.slots[i] = row
	s.used++

	st := s.internState(stateCode)
	s.ids = append(s.ids, id)
	s.firstSeen = append(s.firstSeen, firstSeen)
	s.firstTweetID = append(s.firstTweetID, firstTweetID)
	s.tweets = append(s.tweets, 0)
	s.clinical = append(s.clinical, 0)
	s.hashtags = append(s.hashtags, 0)
	s.stateIdx = append(s.stateIdx, st)
	s.flags = append(s.flags, flags)
	s.mentions = append(s.mentions, make([]int32, s.nCols)...)
	s.members[st].Set(uint32(row))
	s.markTouch(row)
	return row
}

// grow rehashes the table when load would exceed 75% (or it is empty).
func (s *Store) grow() {
	if s.slots != nil && (s.used+1)*4 <= len(s.slots)*3 {
		return
	}
	newSize := minTableSize
	if len(s.slots) > 0 {
		newSize = 2 * len(s.slots)
	}
	slots := make([]int32, newSize)
	for i := range slots {
		slots[i] = emptySlot
	}
	mask := uint64(newSize - 1)
	for _, r := range s.slots {
		if r == emptySlot {
			continue
		}
		j := splitmix64(uint64(s.ids[r])) & mask
		for slots[j] != emptySlot {
			j = (j + 1) & mask
		}
		slots[j] = r
	}
	s.slots, s.mask = slots, mask
}

// internState returns the intern index of code, adding it on first use.
func (s *Store) internState(code string) uint8 {
	if i, ok := s.stateByCode[code]; ok {
		return i
	}
	if len(s.stateCodes) >= int(NoState) {
		panic(fmt.Sprintf("userstore: state intern table overflow at %q", code))
	}
	i := uint8(len(s.stateCodes))
	s.stateCodes = append(s.stateCodes, code)
	s.stateByCode[code] = i
	s.members = append(s.members, nil)
	return i
}

// Remove deletes id's row. The last row is moved into the hole so
// columns stay dense; its hash slot and bitset bit follow. It reports
// whether the id was present.
func (s *Store) Remove(id int64) bool {
	slot, ok := s.findSlot(id)
	if !ok {
		return false
	}
	row := s.slots[slot]
	s.deleteSlot(slot)
	s.used--

	last := int32(len(s.ids) - 1)
	s.markRemove(id, row, last)
	s.members[s.stateIdx[row]].Clear(uint32(row))
	if row != last {
		// Move the last row into the hole.
		s.members[s.stateIdx[last]].Clear(uint32(last))
		s.members[s.stateIdx[last]].Set(uint32(row))
		s.ids[row] = s.ids[last]
		s.firstSeen[row] = s.firstSeen[last]
		s.firstTweetID[row] = s.firstTweetID[last]
		s.tweets[row] = s.tweets[last]
		s.clinical[row] = s.clinical[last]
		s.hashtags[row] = s.hashtags[last]
		s.stateIdx[row] = s.stateIdx[last]
		s.flags[row] = s.flags[last]
		copy(s.mentions[int(row)*s.nCols:(int(row)+1)*s.nCols],
			s.mentions[int(last)*s.nCols:(int(last)+1)*s.nCols])
		ms, ok := s.findSlot(s.ids[last])
		if !ok {
			panic("userstore: moved row missing from index")
		}
		s.slots[ms] = row
	}
	s.ids = s.ids[:last]
	s.firstSeen = s.firstSeen[:last]
	s.firstTweetID = s.firstTweetID[:last]
	s.tweets = s.tweets[:last]
	s.clinical = s.clinical[:last]
	s.hashtags = s.hashtags[:last]
	s.stateIdx = s.stateIdx[:last]
	s.flags = s.flags[:last]
	s.mentions = s.mentions[:int(last)*s.nCols]
	return true
}

// deleteSlot removes table slot i with backward-shift deletion: later
// entries of the probe chain slide back so lookups never need
// tombstones.
func (s *Store) deleteSlot(i uint64) {
	for {
		s.slots[i] = emptySlot
		j := i
		for {
			j = (j + 1) & s.mask
			if s.slots[j] == emptySlot {
				return
			}
			ideal := splitmix64(uint64(s.ids[s.slots[j]])) & s.mask
			// Entry j may move into the hole at i only if its ideal
			// position is cyclically at or before i.
			if (j-ideal)&s.mask >= (j-i)&s.mask {
				s.slots[i] = s.slots[j]
				i = j
				break
			}
		}
	}
}

// Column accessors. Rows are valid indices in [0, Len()); no bounds
// checks beyond the slice's own.

// ID returns the user id of row.
func (s *Store) ID(row int32) int64 { return s.ids[row] }

// FirstSeen returns the first-retained-tweet time (UnixNano) of row.
func (s *Store) FirstSeen(row int32) int64 { return s.firstSeen[row] }

// FirstTweetID returns the first retained tweet id of row.
func (s *Store) FirstTweetID(row int32) int64 { return s.firstTweetID[row] }

// Tweets returns the retained tweet count of row.
func (s *Store) Tweets(row int32) int32 { return s.tweets[row] }

// Clinical returns the clinical-variant mention count of row.
func (s *Store) Clinical(row int32) int32 { return s.clinical[row] }

// Hashtags returns the hashtag-token count of row.
func (s *Store) Hashtags(row int32) int32 { return s.hashtags[row] }

// Flags returns the flags byte of row.
func (s *Store) Flags(row int32) uint8 { return s.flags[row] }

// GeoTagged reports whether row's state came from a GPS geo-tag.
func (s *Store) GeoTagged(row int32) bool { return s.flags[row]&FlagGeoTagged != 0 }

// StateIndex returns the interned state index of row.
func (s *Store) StateIndex(row int32) uint8 { return s.stateIdx[row] }

// StateCode returns the state code of row (an interned string; no
// allocation).
func (s *Store) StateCode(row int32) string { return s.stateCodes[s.stateIdx[row]] }

// MentionsRow returns row's mention-count slice — a zero-copy view into
// the row-major matrix. The caller may mutate it to update counts.
func (s *Store) MentionsRow(row int32) []int32 {
	return s.mentions[int(row)*s.nCols : (int(row)+1)*s.nCols : (int(row)+1)*s.nCols]
}

// IDs returns the id column in row order (a view; do not mutate).
func (s *Store) IDs() []int64 { return s.ids }

// Mentions returns the whole row-major mention matrix (a view; mutate
// only through MentionsRow).
func (s *Store) Mentions() []int32 { return s.mentions }

// AddCounts adds deltas to row's tweet/clinical/hashtag counters.
func (s *Store) AddCounts(row, tweets, clinical, hashtags int32) {
	s.tweets[row] += tweets
	s.clinical[row] += clinical
	s.hashtags[row] += hashtags
	s.markTouch(row)
}

// SetIdentity rewrites row's identity fields (the merge tie-break
// winner's state, flags, and first-tweet key), moving the row between
// state bitsets when the state changes.
func (s *Store) SetIdentity(row int32, stateCode string, flags uint8, firstSeen, firstTweetID int64) {
	st := s.internState(stateCode)
	if st != s.stateIdx[row] {
		s.members[s.stateIdx[row]].Clear(uint32(row))
		s.members[st].Set(uint32(row))
		s.stateIdx[row] = st
	}
	s.flags[row] = flags
	s.firstSeen[row] = firstSeen
	s.firstTweetID[row] = firstTweetID
	s.markTouch(row)
}

// StateCount returns the number of interned states.
func (s *Store) StateCount() int { return len(s.stateCodes) }

// StateCodeAt returns the interned state code at index i.
func (s *Store) StateCodeAt(i int) string { return s.stateCodes[i] }

// StateIndexOf returns the intern index of code, or (0, false) when the
// code has never been seen.
func (s *Store) StateIndexOf(code string) (uint8, bool) {
	i, ok := s.stateByCode[code]
	return i, ok
}

// StateRows returns the membership bitset of interned state i (a view;
// do not mutate). Bits index rows.
func (s *Store) StateRows(i uint8) Bitset { return s.members[i] }

// EachStateRow calls fn for every row in interned state i, ascending.
func (s *Store) EachStateRow(i uint8, fn func(row int32)) {
	s.members[i].Each(func(b uint32) { fn(int32(b)) })
}

// StateUserCount returns the number of users in interned state i — one
// popcount pass over the bitset words.
func (s *Store) StateUserCount(i uint8) int { return s.members[i].Count() }

// StateMentionSums accumulates the per-column mention totals of
// interned state i into sums (len nCols). The scan iterates bitset
// words and reads mention rows straight out of the matrix.
func (s *Store) StateMentionSums(i uint8, sums []int64) {
	s.members[i].Each(func(b uint32) {
		row := s.mentions[int(b)*s.nCols : (int(b)+1)*s.nCols]
		for c, v := range row {
			sums[c] += int64(v)
		}
	})
}

// SizeBytes returns the retained heap footprint of the store: columns,
// hash table, and bitset words, by capacity. String headers of the
// (≤ 51-entry) intern table are ignored.
func (s *Store) SizeBytes() int64 {
	n := int64(0)
	n += int64(cap(s.ids)+cap(s.firstSeen)+cap(s.firstTweetID)) * 8
	n += int64(cap(s.tweets)+cap(s.clinical)+cap(s.hashtags)+cap(s.mentions)) * 4
	n += int64(cap(s.stateIdx) + cap(s.flags))
	n += int64(cap(s.slots)) * 4
	for _, m := range s.members {
		n += int64(cap(m)) * 8
	}
	return n
}

// Columns is a borrowed view of every dense column plus the state
// intern table, in row order — the checkpoint encoder's input. Slices
// alias store memory: read-only, and invalidated by the next mutation.
type Columns struct {
	IDs          []int64
	FirstSeen    []int64
	FirstTweetID []int64
	Tweets       []int32
	Clinical     []int32
	Hashtags     []int32
	StateIdx     []uint8
	Flags        []uint8
	Mentions     []int32
	StateCodes   []string
}

// Columns returns the store's column views.
func (s *Store) Columns() Columns {
	return Columns{
		IDs:          s.ids,
		FirstSeen:    s.firstSeen,
		FirstTweetID: s.firstTweetID,
		Tweets:       s.tweets,
		Clinical:     s.clinical,
		Hashtags:     s.hashtags,
		StateIdx:     s.stateIdx,
		Flags:        s.flags,
		Mentions:     s.mentions,
		StateCodes:   s.stateCodes,
	}
}

// FromColumns rebuilds a store from decoded columns, adopting the
// slices (the checkpoint loader owns freshly-decoded memory). It
// validates column lengths, state indices, and id uniqueness, and
// reconstructs the hash index and state bitsets.
func FromColumns(nCols int, c Columns) (*Store, error) {
	n := len(c.IDs)
	if len(c.FirstSeen) != n || len(c.FirstTweetID) != n ||
		len(c.Tweets) != n || len(c.Clinical) != n || len(c.Hashtags) != n ||
		len(c.StateIdx) != n || len(c.Flags) != n || len(c.Mentions) != n*nCols {
		return nil, fmt.Errorf("userstore: column lengths disagree (rows=%d)", n)
	}
	if len(c.StateCodes) >= int(NoState) {
		return nil, fmt.Errorf("userstore: %d interned states exceeds limit", len(c.StateCodes))
	}
	s := New(nCols)
	s.ids = c.IDs
	s.firstSeen = c.FirstSeen
	s.firstTweetID = c.FirstTweetID
	s.tweets = c.Tweets
	s.clinical = c.Clinical
	s.hashtags = c.Hashtags
	s.stateIdx = c.StateIdx
	s.flags = c.Flags
	s.mentions = c.Mentions
	s.stateCodes = c.StateCodes
	s.members = make([]Bitset, len(c.StateCodes))
	for i, code := range c.StateCodes {
		if _, dup := s.stateByCode[code]; dup {
			return nil, fmt.Errorf("userstore: duplicate interned state %q", code)
		}
		s.stateByCode[code] = uint8(i)
	}

	size := minTableSize
	for size*3 < n*4 {
		size *= 2
	}
	s.slots = make([]int32, size)
	for i := range s.slots {
		s.slots[i] = emptySlot
	}
	s.mask = uint64(size - 1)
	for row, id := range s.ids {
		st := s.stateIdx[row]
		if int(st) >= len(s.stateCodes) {
			return nil, fmt.Errorf("userstore: row %d has state index %d out of range", row, st)
		}
		i := splitmix64(uint64(id)) & s.mask
		for s.slots[i] != emptySlot {
			if s.ids[s.slots[i]] == id {
				return nil, fmt.Errorf("userstore: duplicate user id %d", id)
			}
			i = (i + 1) & s.mask
		}
		s.slots[i] = int32(row)
		s.used++
		s.members[st].Set(uint32(row))
	}
	return s, nil
}
