package userstore

import "math/bits"

// Bitset is a dense bit vector over row indices, stored as uint64 words.
// It is the membership-index representation the per-state (and, for the
// analytics engine, per-cluster) slices use: testing, setting, and
// clearing are O(1), and iteration walks 64 rows per word instead of one
// map entry per user.
type Bitset []uint64

// Set sets bit i, growing the word slice as needed.
func (b *Bitset) Set(i uint32) {
	w := int(i >> 6)
	if w >= len(*b) {
		if w >= cap(*b) {
			nb := make(Bitset, w+1, max(2*cap(*b), w+1))
			copy(nb, *b)
			*b = nb
		} else {
			*b = (*b)[:w+1]
		}
	}
	(*b)[w] |= 1 << (i & 63)
}

// Clear clears bit i. Clearing past the end is a no-op.
func (b Bitset) Clear(i uint32) {
	if w := int(i >> 6); w < len(b) {
		b[w] &^= 1 << (i & 63)
	}
}

// Test reports whether bit i is set.
func (b Bitset) Test(i uint32) bool {
	w := int(i >> 6)
	return w < len(b) && b[w]&(1<<(i&63)) != 0
}

// Count returns the number of set bits (population count over words).
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Each calls fn for every set bit in ascending order. The scan is
// word-at-a-time: zero words are skipped with one comparison, and set
// bits are extracted with trailing-zero counts.
func (b Bitset) Each(fn func(i uint32)) {
	for wi, w := range b {
		base := uint32(wi) << 6
		for w != 0 {
			fn(base + uint32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
}

// Words exposes the raw backing words (read-only for callers).
func (b Bitset) Words() []uint64 { return b }
