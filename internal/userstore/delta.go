package userstore

// Delta tracking: an opt-in record of which rows changed since the last
// drain, so incremental consumers (the report engine) can re-read only
// the touched users instead of scanning every column.
//
// The contract is row-centric but consumers key by user id: a drained
// Delta promises that every user whose counters, mentions, or identity
// changed since the previous drain occupies a set row bit *now*, and
// every user removed since then appears in Deleted. Swap-last deletes
// are covered — the moved row's new position is marked dirty (its values
// did not change, but anything tracking positions must re-read it) and
// the vacated tail bit is cleared so no bit ever indexes past Len().
//
// Tracking is off by default: the hot-path cost when disabled is one
// nil check per mutator, preserving the committed userstore update
// benchmarks. MentionsRow hands out a mutable view the store cannot
// observe writes through; callers that mutate it must pair the write
// with MarkDirty (the pipeline's fold/delete/merge paths always call
// AddCounts on the same row, which marks it, but the requirement is
// part of the MentionsRow contract regardless).

// Delta is the drained change-set: Rows holds the indices (valid
// against the store at drain time) of rows touched since the previous
// drain, Deleted the user ids removed since then. A user that was both
// inserted and removed within one window appears only in Deleted.
type Delta struct {
	Rows    Bitset
	Deleted []int64
}

// Empty reports whether the delta carries no changes.
func (d Delta) Empty() bool { return len(d.Deleted) == 0 && d.Rows.Count() == 0 }

// deltaState is the live tracking state; nil means tracking disabled.
type deltaState struct {
	dirty   Bitset
	deleted []int64
}

// EnableDeltaTracking starts recording row changes. The first drained
// delta covers mutations from this call on, so callers snapshot or
// cold-build their view first, then enable. Idempotent.
func (s *Store) EnableDeltaTracking() {
	if s.delta == nil {
		s.delta = &deltaState{}
	}
}

// DeltaTracking reports whether delta tracking is enabled.
func (s *Store) DeltaTracking() bool { return s.delta != nil }

// DirtyRows returns the number of rows currently marked dirty (0 when
// tracking is disabled) — an observability accessor; it does not drain.
func (s *Store) DirtyRows() int {
	if s.delta == nil {
		return 0
	}
	return s.delta.dirty.Count()
}

// DrainDelta hands the accumulated change-set to the caller and resets
// tracking for the next window. The returned slices are owned by the
// caller. Returns a zero Delta when tracking is disabled.
func (s *Store) DrainDelta() Delta {
	if s.delta == nil {
		return Delta{}
	}
	d := Delta{Rows: s.delta.dirty, Deleted: s.delta.deleted}
	s.delta.dirty = nil
	s.delta.deleted = nil
	return d
}

// MarkDirty records that row's data changed. Required after mutating a
// MentionsRow view; a no-op when tracking is disabled.
func (s *Store) MarkDirty(row int32) {
	if s.delta != nil {
		s.delta.dirty.Set(uint32(row))
	}
}

// markInsert, markTouch, and markRemove are the mutator hooks.

func (s *Store) markTouch(row int32) {
	if s.delta != nil {
		s.delta.dirty.Set(uint32(row))
	}
}

// markRemove records id's removal and fixes up row bits for the
// swap-last move: the vacated tail bit is cleared (that row index is
// gone) and, when a row actually moved, its new position is marked.
func (s *Store) markRemove(id int64, hole, last int32) {
	if s.delta == nil {
		return
	}
	s.delta.deleted = append(s.delta.deleted, id)
	s.delta.dirty.Clear(uint32(last))
	if hole != last {
		s.delta.dirty.Set(uint32(hole))
	}
}
