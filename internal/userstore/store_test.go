package userstore

import (
	"fmt"
	"math/rand"
	"testing"
)

const testCols = 6

// oracleRec mirrors one user in the map-of-structs representation the
// store replaces; the randomized tests fold the same operations into
// both and assert equality.
type oracleRec struct {
	id           int64
	state        string
	flags        uint8
	firstSeen    int64
	firstTweetID int64
	tweets       int32
	clinical     int32
	hashtags     int32
	mentions     [testCols]int32
}

func checkAgainstOracle(t *testing.T, s *Store, oracle map[int64]*oracleRec) {
	t.Helper()
	if s.Len() != len(oracle) {
		t.Fatalf("Len = %d, oracle has %d", s.Len(), len(oracle))
	}
	seen := make(map[int64]bool, s.Len())
	for row := int32(0); row < int32(s.Len()); row++ {
		id := s.ID(row)
		if seen[id] {
			t.Fatalf("row %d: duplicate id %d", row, id)
		}
		seen[id] = true
		o := oracle[id]
		if o == nil {
			t.Fatalf("row %d: id %d not in oracle", row, id)
		}
		if got, ok := s.Find(id); !ok || got != row {
			t.Fatalf("Find(%d) = (%d, %v), want (%d, true)", id, got, ok, row)
		}
		if s.StateCode(row) != o.state || s.Flags(row) != o.flags ||
			s.FirstSeen(row) != o.firstSeen || s.FirstTweetID(row) != o.firstTweetID ||
			s.Tweets(row) != o.tweets || s.Clinical(row) != o.clinical || s.Hashtags(row) != o.hashtags {
			t.Fatalf("row %d (id %d): scalar columns diverge from oracle", row, id)
		}
		m := s.MentionsRow(row)
		for c := 0; c < testCols; c++ {
			if m[c] != o.mentions[c] {
				t.Fatalf("row %d (id %d): mentions[%d] = %d, want %d", row, id, c, m[c], o.mentions[c])
			}
		}
		si, ok := s.StateIndexOf(o.state)
		if !ok || !s.StateRows(si).Test(uint32(row)) {
			t.Fatalf("row %d (id %d): not a member of state %q bitset", row, id, o.state)
		}
		// The row must be in exactly one state bitset.
		for i := 0; i < s.StateCount(); i++ {
			if uint8(i) != si && s.StateRows(uint8(i)).Test(uint32(row)) {
				t.Fatalf("row %d (id %d): also member of state %q", row, id, s.StateCodeAt(i))
			}
		}
	}
	// Absent ids do not resolve.
	if _, ok := s.Find(-99999999); ok {
		t.Fatal("Find of absent id succeeded")
	}
}

// checkStateSlices asserts the bitset slicing APIs (per-state user
// counts and per-state mention sums) against a brute-force scan of the
// oracle map — the satellite's state-bitset coverage at store level.
func checkStateSlices(t *testing.T, s *Store, oracle map[int64]*oracleRec) {
	t.Helper()
	wantUsers := map[string]int{}
	wantSums := map[string][testCols]int64{}
	for _, o := range oracle {
		wantUsers[o.state]++
		sums := wantSums[o.state]
		for c := 0; c < testCols; c++ {
			sums[c] += int64(o.mentions[c])
		}
		wantSums[o.state] = sums
	}
	for i := 0; i < s.StateCount(); i++ {
		code := s.StateCodeAt(i)
		if got := s.StateUserCount(uint8(i)); got != wantUsers[code] {
			t.Fatalf("StateUserCount(%q) = %d, want %d", code, got, wantUsers[code])
		}
		sums := make([]int64, testCols)
		s.StateMentionSums(uint8(i), sums)
		want := wantSums[code]
		for c := 0; c < testCols; c++ {
			if sums[c] != want[c] {
				t.Fatalf("StateMentionSums(%q)[%d] = %d, want %d", code, c, sums[c], want[c])
			}
		}
		// Bitset iteration must visit each member exactly once, in
		// ascending row order.
		last := int32(-1)
		n := 0
		s.EachStateRow(uint8(i), func(row int32) {
			if row <= last {
				t.Fatalf("EachStateRow(%q): rows not ascending (%d after %d)", code, row, last)
			}
			last = row
			n++
		})
		if n != wantUsers[code] {
			t.Fatalf("EachStateRow(%q) visited %d rows, want %d", code, n, wantUsers[code])
		}
	}
}

var testStates = []string{"KS", "NY", "CA", "TX", "FL", "WA", "OH", "VT"}

// TestStoreRandomizedOps drives a long random schedule of inserts,
// count updates, identity rewrites, and removals against the map
// oracle, checking full equality (including bitset membership and
// per-state slices) at intervals.
func TestStoreRandomizedOps(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			s := New(testCols)
			oracle := map[int64]*oracleRec{}
			ids := []int64{}
			const ops = 6000
			for op := 0; op < ops; op++ {
				switch k := r.Intn(10); {
				case k < 5 || len(ids) == 0: // insert or update
					id := int64(r.Intn(900)) // dense id space → frequent collisions
					row, ok := s.Find(id)
					o := oracle[id]
					if ok != (o != nil) {
						t.Fatalf("op %d: Find(%d) = %v, oracle %v", op, id, ok, o != nil)
					}
					if !ok {
						st := testStates[r.Intn(len(testStates))]
						fl := uint8(r.Intn(2))
						fs, ft := r.Int63n(1e9), r.Int63n(1e9)
						row = s.Insert(id, st, fl, fs, ft)
						o = &oracleRec{id: id, state: st, flags: fl, firstSeen: fs, firstTweetID: ft}
						oracle[id] = o
						ids = append(ids, id)
					}
					dc, dh := int32(r.Intn(3)), int32(r.Intn(3))
					s.AddCounts(row, 1, dc, dh)
					o.tweets++
					o.clinical += dc
					o.hashtags += dh
					m := s.MentionsRow(row)
					for c := 0; c < testCols; c++ {
						d := int32(r.Intn(3))
						m[c] += d
						o.mentions[c] += d
					}
				case k < 7: // remove a random existing id
					i := r.Intn(len(ids))
					id := ids[i]
					ids[i] = ids[len(ids)-1]
					ids = ids[:len(ids)-1]
					if !s.Remove(id) {
						t.Fatalf("op %d: Remove(%d) reported absent", op, id)
					}
					delete(oracle, id)
				case k < 8: // remove an absent id
					if s.Remove(-int64(op) - 1) {
						t.Fatalf("op %d: Remove of absent id succeeded", op)
					}
				default: // identity rewrite (merge tie-break path)
					id := ids[r.Intn(len(ids))]
					row, _ := s.Find(id)
					st := testStates[r.Intn(len(testStates))]
					fl := uint8(r.Intn(2))
					fs, ft := r.Int63n(1e9), r.Int63n(1e9)
					s.SetIdentity(row, st, fl, fs, ft)
					o := oracle[id]
					o.state, o.flags, o.firstSeen, o.firstTweetID = st, fl, fs, ft
				}
				if op%500 == 499 {
					checkAgainstOracle(t, s, oracle)
					checkStateSlices(t, s, oracle)
				}
			}
			checkAgainstOracle(t, s, oracle)
			checkStateSlices(t, s, oracle)
		})
	}
}

// TestStoreColumnsRoundTrip checks the checkpoint path: snapshot
// columns, deep-copy them (as gob decode would), rebuild, and compare —
// then keep mutating the rebuilt store.
func TestStoreColumnsRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	s := New(testCols)
	oracle := map[int64]*oracleRec{}
	for i := 0; i < 1000; i++ {
		id := int64(i * 3)
		st := testStates[r.Intn(len(testStates))]
		fl := uint8(r.Intn(2))
		row := s.Insert(id, st, fl, int64(i), int64(i+1))
		s.AddCounts(row, int32(1+r.Intn(5)), int32(r.Intn(4)), int32(r.Intn(4)))
		o := &oracleRec{id: id, state: st, flags: fl, firstSeen: int64(i), firstTweetID: int64(i + 1),
			tweets: s.Tweets(row), clinical: s.Clinical(row), hashtags: s.Hashtags(row)}
		m := s.MentionsRow(row)
		for c := 0; c < testCols; c++ {
			m[c] = int32(r.Intn(9))
			o.mentions[c] = m[c]
		}
		oracle[id] = o
	}
	// A few removals so the snapshot covers post-delete state.
	for _, id := range []int64{0, 300, 2997} {
		s.Remove(id)
		delete(oracle, id)
	}

	c := s.Columns()
	cp := Columns{
		IDs:          append([]int64(nil), c.IDs...),
		FirstSeen:    append([]int64(nil), c.FirstSeen...),
		FirstTweetID: append([]int64(nil), c.FirstTweetID...),
		Tweets:       append([]int32(nil), c.Tweets...),
		Clinical:     append([]int32(nil), c.Clinical...),
		Hashtags:     append([]int32(nil), c.Hashtags...),
		StateIdx:     append([]uint8(nil), c.StateIdx...),
		Flags:        append([]uint8(nil), c.Flags...),
		Mentions:     append([]int32(nil), c.Mentions...),
		StateCodes:   append([]string(nil), c.StateCodes...),
	}
	re, err := FromColumns(testCols, cp)
	if err != nil {
		t.Fatalf("FromColumns: %v", err)
	}
	checkAgainstOracle(t, re, oracle)
	checkStateSlices(t, re, oracle)

	// The rebuilt store must accept further mutation.
	row := re.Insert(999999, "NM", 0, 5, 6)
	re.AddCounts(row, 1, 0, 0)
	oracle[999999] = &oracleRec{id: 999999, state: "NM", firstSeen: 5, firstTweetID: 6, tweets: 1}
	re.Remove(3)
	delete(oracle, 3)
	checkAgainstOracle(t, re, oracle)
	checkStateSlices(t, re, oracle)
}

// TestStoreFromColumnsRejectsCorruption covers the validation paths.
func TestStoreFromColumnsRejectsCorruption(t *testing.T) {
	good := func() Columns {
		s := New(testCols)
		s.Insert(1, "KS", 0, 1, 1)
		s.Insert(2, "NY", 0, 2, 2)
		return s.Columns()
	}
	c := good()
	c.Tweets = c.Tweets[:1]
	if _, err := FromColumns(testCols, c); err == nil {
		t.Error("short column accepted")
	}
	c = good()
	c.IDs = []int64{1, 1}
	if _, err := FromColumns(testCols, c); err == nil {
		t.Error("duplicate id accepted")
	}
	c = good()
	c.StateIdx = []uint8{0, 9}
	if _, err := FromColumns(testCols, c); err == nil {
		t.Error("out-of-range state index accepted")
	}
	c = good()
	c.StateCodes = []string{"KS", "KS"}
	if _, err := FromColumns(testCols, c); err == nil {
		t.Error("duplicate interned state accepted")
	}
}

// TestBitset exercises the bit vector directly, including growth and
// word-boundary indices.
func TestBitset(t *testing.T) {
	var b Bitset
	idx := []uint32{0, 1, 63, 64, 65, 127, 128, 1000}
	for _, i := range idx {
		b.Set(i)
	}
	for _, i := range idx {
		if !b.Test(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if b.Test(2) || b.Test(999) {
		t.Error("unexpected bit set")
	}
	if got := b.Count(); got != len(idx) {
		t.Errorf("Count = %d, want %d", got, len(idx))
	}
	var seen []uint32
	b.Each(func(i uint32) { seen = append(seen, i) })
	for k, i := range idx {
		if seen[k] != i {
			t.Fatalf("Each order: got %v, want %v", seen, idx)
		}
	}
	b.Clear(64)
	if b.Test(64) || b.Count() != len(idx)-1 {
		t.Error("Clear(64) failed")
	}
	b.Clear(100000) // past the end: no-op
}

// TestStoreEmpty covers the zero-value edge cases.
func TestStoreEmpty(t *testing.T) {
	s := New(testCols)
	if s.Len() != 0 || s.StateCount() != 0 {
		t.Fatal("new store not empty")
	}
	if _, ok := s.Find(1); ok {
		t.Error("Find on empty store succeeded")
	}
	if s.Remove(1) {
		t.Error("Remove on empty store succeeded")
	}
	if s.SizeBytes() != 0 {
		t.Errorf("empty SizeBytes = %d", s.SizeBytes())
	}
	re, err := FromColumns(testCols, Columns{})
	if err != nil {
		t.Fatalf("FromColumns(empty): %v", err)
	}
	if re.Len() != 0 {
		t.Error("rebuilt empty store not empty")
	}
	re.Insert(5, "KS", FlagGeoTagged, 1, 2)
	if !re.GeoTagged(0) || re.StateCode(0) != "KS" {
		t.Error("insert after empty restore broken")
	}
}

// TestStoreRemoveLastAndOnly covers swap-delete's row==last branch.
func TestStoreRemoveLastAndOnly(t *testing.T) {
	s := New(testCols)
	s.Insert(10, "KS", 0, 1, 1)
	if !s.Remove(10) || s.Len() != 0 {
		t.Fatal("remove only row failed")
	}
	s.Insert(11, "NY", 0, 1, 1)
	s.Insert(12, "KS", 0, 2, 2)
	if !s.Remove(12) || s.Len() != 1 || s.ID(0) != 11 {
		t.Fatal("remove last row failed")
	}
	if row, ok := s.Find(11); !ok || row != 0 {
		t.Fatal("surviving row lost from index")
	}
}
