package userstore

import (
	"runtime"
	"testing"
)

// The benchmark suite behind BENCH_userstore.{txt,json}: memory per user
// at 1M and 10M synthetic users, amortized tweet-update cost (which must
// stay flat from 1M to 10M rows — the O(1) claim), and per-state slice
// scan throughput. The BenchmarkMapstore* twins measure the
// map-of-pointer-structs representation the store replaced; their run is
// archived as BENCH_userstore_before.* so the bytes/user win stays
// visible next to the gate.

const benchCols = 6

// benchStates mimics the 51-code USPS universe without importing geo.
var benchStates = func() []string {
	out := make([]string, 51)
	for i := range out {
		out[i] = string([]byte{'A' + byte(i/26), 'A' + byte(i%26)})
	}
	return out
}()

// benchID scatters sequential indices across the id space the way real
// snowflake ids scatter.
func benchID(i int) int64 { return int64(splitmix64(uint64(i)) >> 1) }

func buildStore(users int) *Store {
	s := New(benchCols)
	for i := 0; i < users; i++ {
		row := s.Insert(benchID(i), benchStates[i%len(benchStates)], uint8(i&1), int64(i), int64(i))
		s.AddCounts(row, 1, 0, 1)
		s.MentionsRow(row)[i%benchCols]++
	}
	return s
}

// heapDelta measures the retained heap growth of build: GC before and
// after, difference of live HeapAlloc. It is the honest footprint —
// slice headers, map buckets, GC metadata and all.
func heapDelta(build func() any) (live any, bytes float64) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	live = build()
	runtime.GC()
	runtime.ReadMemStats(&after)
	return live, float64(after.HeapAlloc) - float64(before.HeapAlloc)
}

func benchFootprint(b *testing.B, users int) {
	b.ReportAllocs()
	var bytes float64
	var s *Store
	for i := 0; i < b.N; i++ {
		var live any
		live, bytes = heapDelta(func() any { return buildStore(users) })
		s = live.(*Store)
	}
	b.ReportMetric(bytes/float64(users), "bytes/user")
	b.ReportMetric(float64(s.SizeBytes())/float64(users), "acct-bytes/user")
	runtime.KeepAlive(s)
}

func BenchmarkUserstoreFootprint1M(b *testing.B) { benchFootprint(b, 1_000_000) }

func BenchmarkUserstoreFootprint10M(b *testing.B) {
	if testing.Short() {
		b.Skip("10M-row footprint skipped in -short")
	}
	benchFootprint(b, 10_000_000)
}

// benchUpdate measures one tweet arrival against a pre-populated store:
// find the row, bump the counters, bump one mention cell. Flat ns/op
// from 1M to 10M rows is the O(1)-amortized-update acceptance check.
func benchUpdate(b *testing.B, users int) {
	s := buildStore(users)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row, ok := s.Find(benchID(i % users))
		if !ok {
			b.Fatal("benchmark id missing")
		}
		s.AddCounts(row, 1, 0, 1)
		s.MentionsRow(row)[i%benchCols]++
	}
}

func BenchmarkUserstoreUpdate1M(b *testing.B) { benchUpdate(b, 1_000_000) }

func BenchmarkUserstoreUpdate10M(b *testing.B) {
	if testing.Short() {
		b.Skip("10M-row update skipped in -short")
	}
	benchUpdate(b, 10_000_000)
}

// BenchmarkUserstoreStateScan1M sweeps every state slice once: per-state
// user counts plus per-state mention sums, straight off the bitset words
// and the row-major matrix. SetBytes counts the mention cells visited so
// the result reads as scan throughput.
func BenchmarkUserstoreStateScan1M(b *testing.B) {
	const users = 1_000_000
	s := buildStore(users)
	sums := make([]int64, benchCols)
	b.SetBytes(int64(users) * benchCols * 4)
	b.ResetTimer()
	var total int
	for i := 0; i < b.N; i++ {
		for st := 0; st < s.StateCount(); st++ {
			total += s.StateUserCount(uint8(st))
			for c := range sums {
				sums[c] = 0
			}
			s.StateMentionSums(uint8(st), sums)
		}
	}
	if total == 0 {
		b.Fatal("scan visited no users")
	}
}

// --- The map-of-pointer-structs "before" representation ---

type mapRec struct {
	ID           int64
	StateCode    string
	GeoTagged    bool
	Tweets       int
	Mentions     [benchCols]int
	Clinical     int
	Hashtags     int
	FirstSeen    int64
	FirstTweetID int64
}

func buildMapStore(users int) map[int64]*mapRec {
	m := make(map[int64]*mapRec)
	for i := 0; i < users; i++ {
		id := benchID(i)
		u := &mapRec{ID: id, StateCode: benchStates[i%len(benchStates)], GeoTagged: i&1 == 1,
			FirstSeen: int64(i), FirstTweetID: int64(i)}
		u.Tweets++
		u.Hashtags++
		u.Mentions[i%benchCols]++
		m[id] = u
	}
	return m
}

func benchMapFootprint(b *testing.B, users int) {
	b.ReportAllocs()
	var bytes float64
	var m map[int64]*mapRec
	for i := 0; i < b.N; i++ {
		var live any
		live, bytes = heapDelta(func() any { return buildMapStore(users) })
		m = live.(map[int64]*mapRec)
	}
	b.ReportMetric(bytes/float64(users), "bytes/user")
	runtime.KeepAlive(m)
}

func BenchmarkMapstoreFootprint1M(b *testing.B) { benchMapFootprint(b, 1_000_000) }

func BenchmarkMapstoreFootprint10M(b *testing.B) {
	if testing.Short() {
		b.Skip("10M-row footprint skipped in -short")
	}
	benchMapFootprint(b, 10_000_000)
}

func benchMapUpdate(b *testing.B, users int) {
	m := buildMapStore(users)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := m[benchID(i%users)]
		if u == nil {
			b.Fatal("benchmark id missing")
		}
		u.Tweets++
		u.Hashtags++
		u.Mentions[i%benchCols]++
	}
}

func BenchmarkMapstoreUpdate1M(b *testing.B) { benchMapUpdate(b, 1_000_000) }

func BenchmarkMapstoreStateScan1M(b *testing.B) {
	const users = 1_000_000
	m := buildMapStore(users)
	counts := map[string]int{}
	sums := map[string]*[benchCols]int64{}
	b.SetBytes(int64(users) * benchCols * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clear(counts)
		clear(sums)
		for _, u := range m {
			counts[u.StateCode]++
			s := sums[u.StateCode]
			if s == nil {
				s = new([benchCols]int64)
				sums[u.StateCode] = s
			}
			for c, v := range u.Mentions {
				s[c] += int64(v)
			}
		}
	}
	if len(counts) == 0 {
		b.Fatal("scan visited no users")
	}
}
