package gen

import (
	"math/rand/v2"

	"donorsense/internal/organ"
)

// Event is an awareness campaign that lifts conversation volume for one
// organ (or all organs) during a span of days — the signal a real-time
// organ-donation sensor (the paper's stated goal) must be able to pick
// up. Real-world anchors: National Kidney Month (March) and National
// Donate Life Month (April).
type Event struct {
	// StartDay is the offset from Config.Start (0-based).
	StartDay int
	// Days is the event duration.
	Days int
	// Organ is the promoted organ; AllOrgans lifts everything.
	Organ organ.Organ
	// Lift multiplies tweet volume for matching tweets during the event
	// (1.0 = no effect).
	Lift float64
}

// AllOrgans marks an event that promotes donation generally.
const AllOrgans organ.Organ = -1

// DefaultEvents returns the awareness campaigns in the paper's collection
// window (Apr 22 2015 – May 11 2016): National Donate Life Month
// (April 2016, all organs), National Kidney Month (March 2016), and
// American Heart Month (February 2016).
func DefaultEvents() []Event {
	// Day 0 = Apr 22 2015. Feb 1 2016 = day 285, Mar 1 = day 314,
	// Apr 1 = day 345.
	return []Event{
		{StartDay: 285, Days: 29, Organ: organ.Heart, Lift: 1.5},
		{StartDay: 314, Days: 31, Organ: organ.Kidney, Lift: 1.8},
		{StartDay: 345, Days: 30, Organ: AllOrgans, Lift: 1.6},
	}
}

// dayPicker samples tweet days from per-organ day-weight distributions
// shaped by the events.
type dayPicker struct {
	days int
	// cum[o] is the cumulative day distribution for organ o.
	cum [organ.Count][]float64
}

func newDayPicker(days int, events []Event) *dayPicker {
	p := &dayPicker{days: days}
	for o := 0; o < organ.Count; o++ {
		w := make([]float64, days)
		for d := range w {
			w[d] = 1
		}
		for _, e := range events {
			if e.Organ != AllOrgans && e.Organ.Index() != o {
				continue
			}
			for d := e.StartDay; d < e.StartDay+e.Days && d < days; d++ {
				if d >= 0 {
					w[d] *= e.Lift
				}
			}
		}
		cum := make([]float64, days)
		total := 0.0
		for d, v := range w {
			total += v
			cum[d] = total
		}
		for d := range cum {
			cum[d] /= total
		}
		p.cum[o] = cum
	}
	return p
}

// pick samples a day for a tweet about organ o.
func (p *dayPicker) pick(r *rand.Rand, o organ.Organ) int {
	cum := p.cum[o.Index()]
	x := r.Float64()
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
