package gen

import (
	"fmt"
	"math/rand/v2"

	"donorsense/internal/organ"
)

// Role models the user classes the paper's conclusion proposes to
// distinguish: "health care practitioners, donors, waiting-list
// candidates, organ donation advocacy agencies, or simply ... different
// behaviors towards organ donation". Each role conditions the user's
// organ profile, activity, and language; the roles analysis
// (internal/roles) then tests whether those classes can be recovered from
// behaviour alone.
type Role int

// The user roles.
const (
	// GeneralPublic tweets occasionally about whatever organ touched
	// their life; the base behaviour.
	GeneralPublic Role = iota
	// Patient is on (or near) a waiting list: single-organ focus,
	// personal language, somewhat elevated activity.
	Patient
	// DonorFamily posts memorials about one organ, rarely.
	DonorFamily
	// Practitioner is a clinician: multi-organ interest, clinical
	// vocabulary, regular activity.
	Practitioner
	// Advocacy is an organization account: very high activity, broad
	// all-organ attention, campaign language with hashtags.
	Advocacy
)

// NumRoles is the number of user roles.
const NumRoles = 5

// String returns the role name.
func (r Role) String() string {
	switch r {
	case GeneralPublic:
		return "general-public"
	case Patient:
		return "patient"
	case DonorFamily:
		return "donor-family"
	case Practitioner:
		return "practitioner"
	case Advocacy:
		return "advocacy"
	}
	return fmt.Sprintf("role(%d)", int(r))
}

// roleShares is the population mix. Organizations are rare but loud;
// most accounts are ordinary people.
var roleShares = [NumRoles]float64{
	GeneralPublic: 0.72,
	Patient:       0.12,
	DonorFamily:   0.08,
	Practitioner:  0.06,
	Advocacy:      0.02,
}

// roleTraits bundles the behavioural knobs a role sets.
type roleTraits struct {
	// activityMult scales the power-law tweet count.
	activityMult float64
	// forceSecondary / forbidSecondary override the secondary-interest
	// coin flip.
	forceSecondary  bool
	forbidSecondary bool
	// broadProfile makes the per-tweet organ nearly uniform over all six
	// organs (advocacy accounts campaign for donation generally).
	broadProfile bool
	// clinicalBias is the probability a tweet uses the clinical surface
	// form (renal, hepatic, ...) instead of the lay word.
	clinicalBias float64
	// hashtagBias is the probability a tweet gains a campaign hashtag.
	hashtagBias float64
}

// The multipliers are normalized so the population mean stays 1: the
// Table I tweets-per-user figure (1.88) must not drift when roles are
// enabled (Σ share·mult ≈ 1).
var traits = [NumRoles]roleTraits{
	GeneralPublic: {activityMult: 0.82, clinicalBias: 0.04, hashtagBias: 0.10},
	Patient:       {activityMult: 1.3, forbidSecondary: true, clinicalBias: 0.10, hashtagBias: 0.12},
	DonorFamily:   {activityMult: 0.6, forbidSecondary: true, clinicalBias: 0.02, hashtagBias: 0.08},
	Practitioner:  {activityMult: 1.8, forceSecondary: true, clinicalBias: 0.45, hashtagBias: 0.05},
	Advocacy:      {activityMult: 5.0, broadProfile: true, clinicalBias: 0.06, hashtagBias: 0.55},
}

// sampleRole draws a role from the population mix.
func sampleRole(r *rand.Rand) Role {
	x := r.Float64()
	for role, share := range roleShares {
		x -= share
		if x <= 0 {
			return Role(role)
		}
	}
	return GeneralPublic
}

// campaignHashtags decorate advocacy (and some personal) tweets. None of
// the tags tokenizes into a Subject word, so they never add organ
// mentions.
var campaignHashtags = []string{
	"#DonateLife", "#OrganDonation", "#BeADonor", "#GiftOfLife",
	"#RegisterToday", "#DonationSavesLives",
}

// roleTweetOrgan picks the organ for one tweet given the profile and
// role.
func roleTweetOrgan(r *rand.Rand, p *Profile, cfg Config) organ.Organ {
	if traits[p.Role].broadProfile {
		// Advocacy accounts campaign across every organ, weighted like
		// the national conversation.
		return organ.Organ(pickWeighted(r, basePopularity[:]))
	}
	o := p.Primary
	if p.HasSecondary && r.Float64() < cfg.SecondaryDrawRate {
		o = p.Secondary
	}
	return o
}
