package gen

import (
	"fmt"
	"math/rand/v2"
	"strings"

	"donorsense/internal/geo"
)

// usLocationString renders a US user's self-reported profile location in
// one of the messy formats real Twitter profiles use. The mix is chosen
// so the geocoder sees every format it supports.
func usLocationString(r *rand.Rand, city geo.City) string {
	st, _ := geo.StateByCode(city.StateCode)
	cityTitle := titleCase(city.Name)
	switch pick := r.Float64(); {
	case pick < 0.34: // "Wichita, KS"
		return fmt.Sprintf("%s, %s", cityTitle, city.StateCode)
	case pick < 0.46: // "Wichita"
		return cityTitle
	case pick < 0.56: // "Kansas"
		return st.Name
	case pick < 0.63: // "KS"
		return city.StateCode
	case pick < 0.70: // "Wichita, Kansas"
		return fmt.Sprintf("%s, %s", cityTitle, st.Name)
	case pick < 0.77: // "wichita ks"
		return strings.ToLower(fmt.Sprintf("%s %s", city.Name, city.StateCode))
	case pick < 0.84: // decorated: "📍 Wichita, KS ✈"
		return fmt.Sprintf("📍 %s, %s ✈", cityTitle, city.StateCode)
	case pick < 0.88: // "Wichita, KS, USA"
		return fmt.Sprintf("%s, %s, USA", cityTitle, city.StateCode)
	case pick < 0.92: // state + USA
		return fmt.Sprintf("%s, USA", st.Name)
	case pick < 0.96: // with a ZIP: "Wichita, KS 67202"
		return fmt.Sprintf("%s, %s %s", cityTitle, city.StateCode, randomZIP(r, city.StateCode))
	case pick < 0.98: // bare ZIP
		return randomZIP(r, city.StateCode)
	default: // "Wichita | USA"
		return fmt.Sprintf("%s | USA", cityTitle)
	}
}

// randomZIP fabricates a ZIP code inside the state's allocation.
func randomZIP(r *rand.Rand, state string) string {
	ranges := geo.ZIPRangesFor(state)
	if len(ranges) == 0 {
		return "00000"
	}
	rg := ranges[r.IntN(len(ranges))]
	prefix := rg[0] + r.IntN(rg[1]-rg[0]+1)
	return fmt.Sprintf("%03d%02d", prefix, r.IntN(100))
}

// junkLocations are the unresolvable strings real profiles are full of.
var junkLocations = []string{
	"", "", "", // empty is the most common junk
	"wonderland", "in my head", "somewhere over the rainbow",
	"probably napping", "between two worlds", "your heart",
	"hogwarts", "the upside down", "127.0.0.1", "she/her",
	"stream my mixtape", "DMs open", "est. 1998",
}

// foreignLocationTemplates yields plausible non-US profile locations.
var foreignLocationStrings = []string{
	"London", "London, England", "Toronto", "Toronto, Canada", "Canada",
	"Manchester uk", "Glasgow", "Dublin", "Sydney", "Melbourne",
	"Melbourne, Australia", "Vancouver", "Paris", "Paris, France",
	"Berlin", "Madrid", "Rome", "Amsterdam", "Stockholm", "Tokyo",
	"Seoul", "Mumbai", "Delhi", "Karachi", "Manila", "Jakarta",
	"Lagos, Nigeria", "Nairobi", "Cape Town", "Mexico City",
	"São Paulo", "Rio de Janeiro", "Buenos Aires", "Bogota", "Lima",
	"england", "scotland", "ireland", "australia", "new zealand",
	"india", "philippines", "south africa", "brasil", "worldwide",
	"UK", "Hong Kong", "Singapore", "Dubai", "Istanbul", "Cairo",
}

// foreignLocationString picks a non-US profile location; about a third of
// non-US users leave junk/empty locations instead of a real place.
func foreignLocationString(r *rand.Rand) string {
	if r.Float64() < 0.35 {
		return junkLocations[r.IntN(len(junkLocations))]
	}
	return foreignLocationStrings[r.IntN(len(foreignLocationStrings))]
}

// titleCase capitalizes each word of a lowercase gazetteer name.
func titleCase(s string) string {
	words := strings.Fields(s)
	for i, w := range words {
		if w == "st" {
			words[i] = "St."
			continue
		}
		words[i] = strings.ToUpper(w[:1]) + w[1:]
	}
	return strings.Join(words, " ")
}
