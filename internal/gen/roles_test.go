package gen

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"donorsense/internal/organ"
	"donorsense/internal/text"
)

func TestRoleSharesSumToOne(t *testing.T) {
	sum := 0.0
	for _, s := range roleShares {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("role shares sum to %v", sum)
	}
}

func TestRoleStrings(t *testing.T) {
	for r := Role(0); r < NumRoles; r++ {
		if strings.HasPrefix(r.String(), "role(") {
			t.Errorf("role %d unnamed", int(r))
		}
	}
	if !strings.HasPrefix(Role(99).String(), "role(") {
		t.Error("invalid role should render as role(n)")
	}
}

// TestActivityMultipliersPreserveMean: Σ share·mult ≈ 1 so the Table I
// tweets-per-user figure does not drift when roles are enabled. (The ≥1
// floor still inflates slightly; ActivityAlpha compensates — see
// TestActivityMeanMatchesPaper.)
func TestActivityMultipliersPreserveMean(t *testing.T) {
	mean := 0.0
	for r, share := range roleShares {
		mean += share * traits[r].activityMult
	}
	if math.Abs(mean-1) > 0.05 {
		t.Errorf("share-weighted activity multiplier = %.3f, want ≈1", mean)
	}
}

func TestSampleRoleDistribution(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 5))
	counts := make([]int, NumRoles)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[sampleRole(r)]++
	}
	for role, share := range roleShares {
		got := float64(counts[role]) / n
		if math.Abs(got-share) > 0.01 {
			t.Errorf("role %v share = %.3f, want %.3f", Role(role), got, share)
		}
	}
}

func TestCampaignHashtagsCarryNoOrganMentions(t *testing.T) {
	ex := text.NewExtractor()
	for _, tag := range campaignHashtags {
		e := ex.Extract("hello world " + tag)
		if e.NumOrgans() != 0 {
			t.Errorf("hashtag %q introduces organ mentions", tag)
		}
	}
}

func TestRoleTweetOrganBroadVsFocused(t *testing.T) {
	r := rand.New(rand.NewPCG(6, 6))
	cfg := DefaultConfig(0.01)
	focused := &Profile{Role: Patient, Primary: organ.Liver}
	for i := 0; i < 100; i++ {
		if got := roleTweetOrgan(r, focused, cfg); got != organ.Liver {
			t.Fatalf("patient without secondary tweeted about %v", got)
		}
	}
	broad := &Profile{Role: Advocacy, Primary: organ.Liver}
	seen := map[organ.Organ]bool{}
	for i := 0; i < 2000; i++ {
		seen[roleTweetOrgan(r, broad, cfg)] = true
	}
	if len(seen) != organ.Count {
		t.Errorf("advocacy account covered %d organs, want all %d", len(seen), organ.Count)
	}
}

func TestRoleBehaviourInCorpus(t *testing.T) {
	ex := text.NewExtractor()
	// Aggregate per-role stats from the shared corpus ground truth.
	type agg struct {
		users, tweets, clinical, mentions, hashtags int
	}
	stats := make([]agg, NumRoles)
	perUserTweets := map[int64]int{}
	for _, tw := range testCorpus.Tweets {
		p := testCorpus.Profiles[tw.User.ID]
		if p.TweetCount == 0 {
			continue
		}
		e := ex.Extract(tw.Text)
		a := &stats[p.Role]
		a.tweets++
		a.clinical += e.ClinicalMentions
		a.mentions += e.TotalMentions()
		a.hashtags += e.Hashtags
		perUserTweets[tw.User.ID]++
	}
	for id, p := range testCorpus.Profiles {
		if p.TweetCount > 0 && perUserTweets[id] > 0 {
			stats[p.Role].users++
		}
	}
	// Practitioners use clinical language far more than the public.
	pr := stats[Practitioner]
	gp := stats[GeneralPublic]
	if pr.mentions == 0 || gp.mentions == 0 {
		t.Fatal("degenerate corpus")
	}
	prClin := float64(pr.clinical) / float64(pr.mentions)
	gpClin := float64(gp.clinical) / float64(gp.mentions)
	if prClin < gpClin*4 {
		t.Errorf("practitioner clinical share %.3f not ≫ public %.3f", prClin, gpClin)
	}
	// Advocacy accounts are far more active and hashtag-heavy.
	adv := stats[Advocacy]
	if adv.users == 0 {
		t.Fatal("no advocacy users")
	}
	advRate := float64(adv.tweets) / float64(adv.users)
	gpRate := float64(gp.tweets) / float64(gp.users)
	if advRate < gpRate*3 {
		t.Errorf("advocacy tweets/user %.2f not ≫ public %.2f", advRate, gpRate)
	}
	advTag := float64(adv.hashtags) / float64(adv.tweets)
	gpTag := float64(gp.hashtags) / float64(gp.tweets)
	if advTag < gpTag*2 {
		t.Errorf("advocacy hashtag rate %.3f not ≫ public %.3f", advTag, gpTag)
	}
}

// --- Events ---

func TestDefaultEventsInsideWindow(t *testing.T) {
	cfg := DefaultConfig(0.01)
	for _, e := range cfg.Events {
		if e.StartDay < 0 || e.StartDay+e.Days > cfg.Days {
			t.Errorf("event %+v outside the %d-day window", e, cfg.Days)
		}
		if e.Lift <= 1 {
			t.Errorf("event %+v has no lift", e)
		}
	}
}

func TestDayPickerConcentratesEvents(t *testing.T) {
	events := []Event{{StartDay: 100, Days: 30, Organ: organ.Kidney, Lift: 2.0}}
	dp := newDayPicker(385, events)
	r := rand.New(rand.NewPCG(7, 7))
	inWindow := func(o organ.Organ) float64 {
		hits := 0
		const n = 50000
		for i := 0; i < n; i++ {
			d := dp.pick(r, o)
			if d >= 100 && d < 130 {
				hits++
			}
		}
		return float64(hits) / n
	}
	baseShare := 30.0 / 385.0
	kidneyShare := inWindow(organ.Kidney)
	heartShare := inWindow(organ.Heart)
	// Kidney days concentrate: 2x weight on 30 of 385 days →
	// 60/(355+60) ≈ 0.145.
	if math.Abs(kidneyShare-0.145) > 0.01 {
		t.Errorf("kidney in-window share = %.3f, want ≈0.145", kidneyShare)
	}
	if math.Abs(heartShare-baseShare) > 0.01 {
		t.Errorf("heart in-window share = %.3f, want ≈%.3f (unaffected)", heartShare, baseShare)
	}
}

func TestDayPickerAllOrgansEvent(t *testing.T) {
	events := []Event{{StartDay: 50, Days: 10, Organ: AllOrgans, Lift: 3.0}}
	dp := newDayPicker(100, events)
	r := rand.New(rand.NewPCG(8, 8))
	for _, o := range organ.All() {
		hits := 0
		const n = 20000
		for i := 0; i < n; i++ {
			d := dp.pick(r, o)
			if d >= 50 && d < 60 {
				hits++
			}
		}
		share := float64(hits) / n
		want := 30.0 / 120.0 // 10 days at 3x vs 90 at 1x
		if math.Abs(share-want) > 0.015 {
			t.Errorf("organ %v in-window share = %.3f, want ≈%.3f", o, share, want)
		}
	}
}

func TestNilEventsGiveFlatDays(t *testing.T) {
	dp := newDayPicker(100, nil)
	r := rand.New(rand.NewPCG(9, 9))
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[dp.pick(r, organ.Heart)]++
	}
	for d, c := range counts {
		if math.Abs(float64(c)/n-0.01) > 0.003 {
			t.Errorf("day %d share %.4f, want ≈0.01", d, float64(c)/n)
		}
	}
}
