package gen

import (
	"math/rand/v2"
	"sort"
	"time"

	"donorsense/internal/organ"
	"donorsense/internal/twitter"
)

// Corpus is a generated tweet stream with its ground truth.
type Corpus struct {
	// Tweets is the full firehose in chronological order, including the
	// near-miss noise tweets the collection filter must reject.
	Tweets []twitter.Tweet
	// Profiles is the ground truth per user ID.
	Profiles map[int64]Profile
	// Config echoes the generation parameters.
	Config Config
}

// foreignGeoPoints are coordinates used for the rare geo-tags of non-US
// users; the reverse geocoder must fail on them, excluding the tweet.
var foreignGeoPoints = [][2]float64{
	{51.5, -0.1},   // London
	{45.5, -73.6},  // Montreal (Toronto would fall inside NY's bbox hull)
	{48.9, 2.4},    // Paris
	{-33.9, 151.2}, // Sydney
	{19.4, -99.1},  // Mexico City
	{-23.6, -46.6}, // São Paulo
	{35.7, 139.7},  // Tokyo
	{28.6, 77.2},   // Delhi
}

// hourWeights shapes the diurnal posting pattern (local-ish evening peak).
var hourWeights = []float64{
	1, 0.6, 0.4, 0.3, 0.3, 0.5, // 00–05
	1, 2, 3, 3.5, 3.5, 3.5, // 06–11
	4, 4, 3.5, 3.5, 3.5, 4, // 12–17
	4.5, 5, 5, 4.5, 3.5, 2, // 18–23
}

// Generate synthesizes the full corpus for the configuration. The same
// Config (including Seed) always produces the identical corpus.
func Generate(cfg Config) *Corpus {
	r := rand.New(rand.NewPCG(cfg.Seed, 0xD0A0))
	sp := newStatePicker()
	cp := newCityPicker()
	act := newActivitySampler(cfg.ActivityAlpha, cfg.ActivityMax)
	dp := newDayPicker(cfg.Days, cfg.Events)

	c := &Corpus{Profiles: make(map[int64]Profile, cfg.USUsers+cfg.NonUSUsers), Config: cfg}

	var nextUser int64 = 1000
	newProfile := func(us bool, tweetCount int) *Profile {
		id := nextUser
		nextUser++
		role := sampleRole(r)
		tr := traits[role]
		if tweetCount > 0 {
			tweetCount = int(float64(tweetCount)*tr.activityMult + 0.5)
			if tweetCount < 1 {
				tweetCount = 1
			}
			if tweetCount > cfg.ActivityMax {
				tweetCount = cfg.ActivityMax
			}
		}
		p := Profile{
			UserID:     id,
			ScreenName: screenName(r, id),
			Role:       role,
			US:         us,
			TweetCount: tweetCount,
		}
		if us {
			st := sp.pick(r)
			p.StateCode = st.Code
			p.City = cp.pick(r, st.Code)
			if r.Float64() < cfg.UnparseableLocRate {
				p.Location = junkLocations[r.IntN(len(junkLocations))]
			} else {
				p.Location = usLocationString(r, p.City)
			}
			p.Primary = primaryOrgan(r, st.Code)
		} else {
			p.Location = foreignLocationString(r)
			p.Primary = organ.Organ(pickWeighted(r, basePopularity[:]))
		}
		wantSecondary := r.Float64() < cfg.SecondaryFocusRate
		if tr.forceSecondary {
			wantSecondary = true
		}
		if tr.forbidSecondary {
			wantSecondary = false
		}
		if wantSecondary {
			p.Secondary = secondaryOrgan(r, p.Primary, p.StateCode)
			p.HasSecondary = true
		}
		c.Profiles[id] = p
		return &p
	}

	var tweets []twitter.Tweet
	emit := func(p *Profile, text string, day int, geoTagged bool) {
		t := twitter.Tweet{
			Text:      text,
			CreatedAt: timeAt(r, cfg.Start, day),
			User: twitter.User{
				ID:         p.UserID,
				ScreenName: p.ScreenName,
				Location:   p.Location,
			},
		}
		if geoTagged {
			if p.US {
				t.SetCoordinates(
					p.City.Lat+(r.Float64()-0.5)*0.1,
					p.City.Lon+(r.Float64()-0.5)*0.1,
				)
			} else {
				pt := foreignGeoPoints[r.IntN(len(foreignGeoPoints))]
				t.SetCoordinates(pt[0], pt[1])
			}
		}
		tweets = append(tweets, t)
	}

	emitUserTweets := func(p *Profile) {
		tr := traits[p.Role]
		for i := 0; i < p.TweetCount; i++ {
			o := roleTweetOrgan(r, p, cfg)
			var text string
			if r.Float64() < cfg.MultiOrganTweetRate {
				second := secondaryOrgan(r, o, p.StateCode)
				text = renderDualTweet(r, o, second, tr.clinicalBias)
			} else {
				text = renderTweet(r, o, tr.clinicalBias)
			}
			if r.Float64() < tr.hashtagBias {
				text += " " + campaignHashtags[r.IntN(len(campaignHashtags))]
			}
			emit(p, text, dp.pick(r, o), r.Float64() < cfg.GeoTagRate)
		}
	}

	for i := 0; i < cfg.USUsers; i++ {
		emitUserTweets(newProfile(true, act.sample(r)))
	}
	for i := 0; i < cfg.NonUSUsers; i++ {
		emitUserTweets(newProfile(false, act.sample(r)))
	}

	// Near-miss noise: extra tweets that must NOT pass the filter,
	// attributed to fresh users (TweetCount 0: they contribute nothing in
	// context) so they cannot perturb real profiles.
	noiseCount := int(float64(len(tweets)) * cfg.NoiseRate)
	for i := 0; i < noiseCount; i++ {
		p := newProfile(r.Float64() < 0.14, 0) // mixed US / non-US noise
		emit(p, renderNoise(r), r.IntN(cfg.Days), false)
	}

	// Chronological order with snowflake-style increasing IDs.
	sort.Slice(tweets, func(i, j int) bool { return tweets[i].CreatedAt.Before(tweets[j].CreatedAt) })
	var id int64 = 590000000000000000 // plausible 2015 snowflake magnitude
	for i := range tweets {
		tweets[i].ID = id
		id += int64(1 + r.IntN(1_000_000))
	}
	c.Tweets = tweets
	return c
}

// timeAt places a timestamp on the given day with the diurnal hour
// profile.
func timeAt(r *rand.Rand, start time.Time, day int) time.Time {
	hour := pickWeighted(r, hourWeights)
	return start.AddDate(0, 0, day).
		Add(time.Duration(hour) * time.Hour).
		Add(time.Duration(r.IntN(3600)) * time.Second)
}

// End returns the last instant of the configured collection window.
func (c *Corpus) End() time.Time {
	return c.Config.Start.AddDate(0, 0, c.Config.Days)
}

// InContextTweets counts tweets that genuinely carry the donation context
// (everything except injected noise); exposed for calibration tests.
func (c *Corpus) InContextTweets() int {
	n := 0
	for _, p := range c.Profiles {
		n += p.TweetCount
	}
	return n
}
