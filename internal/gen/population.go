package gen

import (
	"fmt"
	"math"
	"math/rand/v2"

	"donorsense/internal/geo"
	"donorsense/internal/organ"
)

// Profile is the ground truth behind one synthetic user. The pipeline
// never sees it; tests use it to validate geocoding and characterization
// against what the generator intended.
type Profile struct {
	UserID     int64
	ScreenName string
	// Role is the user class (general public, patient, donor family,
	// practitioner, advocacy organization).
	Role Role
	// US reports whether the user truly lives in the USA.
	US bool
	// StateCode is the true home state when US.
	StateCode string
	// City is the gazetteer home city when US (geo-tags jitter around it).
	City geo.City
	// Location is the self-reported profile location string.
	Location string
	// Primary is the user's main organ of interest.
	Primary organ.Organ
	// Secondary is a second interest; valid only when HasSecondary.
	Secondary    organ.Organ
	HasSecondary bool
	// TweetCount is how many in-context tweets the user will produce.
	TweetCount int
}

// statePicker samples home states proportionally to population times the
// Twitter demographic bias.
type statePicker struct {
	states []geo.State
	cum    []float64
}

func newStatePicker() *statePicker {
	sts := geo.States()
	p := &statePicker{states: sts, cum: make([]float64, len(sts))}
	total := 0.0
	for i, s := range sts {
		w := float64(s.Population) * regionBias[s.Region.String()]
		total += w
		p.cum[i] = total
	}
	for i := range p.cum {
		p.cum[i] /= total
	}
	return p
}

func (p *statePicker) pick(r *rand.Rand) geo.State {
	x := r.Float64()
	lo, hi := 0, len(p.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if p.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return p.states[lo]
}

// cityPicker caches the gazetteer cities per state, weighted by
// population.
type cityPicker struct {
	byState map[string][]geo.City
	cum     map[string][]float64
}

func newCityPicker() *cityPicker {
	p := &cityPicker{byState: map[string][]geo.City{}, cum: map[string][]float64{}}
	for _, c := range geo.Cities() {
		p.byState[c.StateCode] = append(p.byState[c.StateCode], c)
	}
	for code, list := range p.byState {
		cum := make([]float64, len(list))
		total := 0.0
		for i, c := range list {
			total += float64(c.Population)
			cum[i] = total
		}
		for i := range cum {
			cum[i] /= total
		}
		p.cum[code] = cum
	}
	return p
}

func (p *cityPicker) pick(r *rand.Rand, state string) geo.City {
	list := p.byState[state]
	cum := p.cum[state]
	x := r.Float64()
	for i, c := range cum {
		if x <= c {
			return list[i]
		}
	}
	return list[len(list)-1]
}

// activitySampler draws tweet counts from a truncated discrete power law
// P(k) ∝ k^−α, k ∈ [1, max], by inversion over the precomputed CDF.
type activitySampler struct {
	cum []float64
}

func newActivitySampler(alpha float64, max int) *activitySampler {
	if max < 1 {
		max = 1
	}
	cum := make([]float64, max)
	total := 0.0
	for k := 1; k <= max; k++ {
		total += math.Pow(float64(k), -alpha)
		cum[k-1] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &activitySampler{cum: cum}
}

func (a *activitySampler) sample(r *rand.Rand) int {
	x := r.Float64()
	lo, hi := 0, len(a.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if a.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// Mean returns the expected value of the sampler's distribution.
func (a *activitySampler) Mean() float64 {
	m := 0.0
	prev := 0.0
	for i, c := range a.cum {
		m += float64(i+1) * (c - prev)
		prev = c
	}
	return m
}

// pickWeighted samples an index from non-negative weights.
func pickWeighted(r *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return i
		}
	}
	return len(weights) - 1
}

// primaryOrgan samples a user's primary organ given their home state,
// applying the state-level anomaly boosts.
func primaryOrgan(r *rand.Rand, stateCode string) organ.Organ {
	w := make([]float64, organ.Count)
	boosts := stateOrganBoost[stateCode]
	for i := range w {
		w[i] = basePopularity[i]
		if b, ok := boosts[organ.Organ(i)]; ok {
			w[i] *= b
		}
	}
	return organ.Organ(pickWeighted(r, w))
}

// secondaryOrgan samples a secondary interest from the coupling row of
// the primary. When a state code is given, the state's organ boosts also
// weight the choice: local conditions shape which other organ a user
// cares about, not just the primary (this is what lets the Figure 5
// anomalies survive the dilution from secondary mentions).
func secondaryOrgan(r *rand.Rand, primary organ.Organ, stateCode string) organ.Organ {
	row := coupling[primary]
	boosts := stateOrganBoost[stateCode]
	if len(boosts) == 0 {
		return organ.Organ(pickWeighted(r, row[:]))
	}
	w := row
	for o, b := range boosts {
		w[o.Index()] *= b
	}
	return organ.Organ(pickWeighted(r, w[:]))
}

// screenName fabricates a plausible Twitter handle.
func screenName(r *rand.Rand, id int64) string {
	adjectives := []string{"happy", "real", "the", "its", "just", "only", "mr", "ms", "dr", "tx"}
	nouns := []string{"donor", "hope", "life", "heart", "nurse", "runner", "mom", "dad", "fan", "advocate"}
	a := adjectives[r.IntN(len(adjectives))]
	n := nouns[r.IntN(len(nouns))]
	return fmt.Sprintf("%s_%s_%d", a, n, id%100000)
}
