package gen

import (
	"fmt"
	"math/rand/v2"

	"donorsense/internal/organ"
)

// tweetTemplates produce in-context tweet text: every template contains a
// %s slot for an organ subject word and a donation-context term, so the
// rendered tweet always satisfies the Figure 1 collection predicate.
var tweetTemplates = []string{
	"Please register as an organ donor — one %s can save a life #DonateLife",
	"My cousin just got her %s transplant after 3 years on the waiting list 🙏",
	"Proud to be a %s donor family. Organ donation saves lives.",
	"RT @donate_life: thousands are waiting for a %s transplant right now",
	"Thinking of everyone on the %s waitlist tonight. Be a donor.",
	"%s transplant recipients live full lives — sign up to donate today",
	"One organ donor can save 8 lives. The %s shortage is real.",
	"Just met an amazing %s recipient at the hospital. Donation works!",
	"5 years since my %s transplant. Forever grateful to my donor ❤",
	"Why aren't more people registered to donate? The %s waiting list keeps growing",
	"Our hospital performed its 100th %s transplant this year! #donation",
	"she finally got the call — a %s donor matched!! surgery tomorrow 🙏🙏",
	"Learned today you can be a living %s donor. Thinking about it seriously.",
	"In memory of my dad, a %s donor who saved three strangers.",
	"National donor day: talk to your family about %s donation",
}

// dualTemplates mention two organs in one tweet (the ~3% multi-organ
// tweets of Figure 2b).
var dualTemplates = []string{
	"Uncle needs a combined %s and %s transplant — please be an organ donor",
	"Amazing: one donor gave a %s and a %s to two different patients",
	"Both the %s and %s waiting lists got shorter this week thanks to donors",
	"%s-%s transplant recipient doing great one year on. Register as a donor!",
}

// noiseTemplates render near-miss tweets: organ word without donation
// context, or context word without an organ. The collection filter must
// reject them.
var noiseTemplates = []string{
	"%s beans are so underrated honestly",
	"my %s hurts after that workout lol",
	"pouring my %s out in this essay rn",
	"this song hits me right in the %s",
	"donated some old clothes to the shelter today", // context, no organ
	"blood donation drive at the library tomorrow",  // context, no organ
	"donate to my gofundme please",                  // context, no organ
}

// organSurface picks a surface form for an organ. clinicalBias is the
// chance of the clinical variant (renal, hepatic, ...); otherwise the
// plain singular is favoured over the plural. Practitioner accounts set
// a high bias, lay users a low one.
func organSurface(r *rand.Rand, o organ.Organ, clinicalBias float64) string {
	forms := surfaceForms[o]
	if r.Float64() < clinicalBias {
		return forms[2]
	}
	if r.Float64() < 0.25 {
		return forms[1]
	}
	return forms[0]
}

// surfaceForms per organ: [singular, plural, clinical].
var surfaceForms = [organ.Count][]string{
	organ.Heart:     {"heart", "hearts", "cardiac"},
	organ.Kidney:    {"kidney", "kidneys", "renal"},
	organ.Liver:     {"liver", "livers", "hepatic"},
	organ.Lung:      {"lung", "lungs", "pulmonary"},
	organ.Pancreas:  {"pancreas", "pancreases", "pancreatic"},
	organ.Intestine: {"intestine", "intestines", "intestinal"},
}

// renderTweet builds in-context tweet text about one organ.
func renderTweet(r *rand.Rand, o organ.Organ, clinicalBias float64) string {
	t := tweetTemplates[r.IntN(len(tweetTemplates))]
	return fmt.Sprintf(t, organSurface(r, o, clinicalBias))
}

// renderDualTweet builds in-context tweet text mentioning two organs.
func renderDualTweet(r *rand.Rand, a, b organ.Organ, clinicalBias float64) string {
	t := dualTemplates[r.IntN(len(dualTemplates))]
	return fmt.Sprintf(t, organSurface(r, a, clinicalBias), organSurface(r, b, clinicalBias))
}

// renderNoise builds a near-miss tweet that must not pass the filter.
func renderNoise(r *rand.Rand) string {
	t := noiseTemplates[r.IntN(len(noiseTemplates))]
	if containsPercentS(t) {
		o := organ.Organ(r.IntN(organ.Count))
		return fmt.Sprintf(t, surfaceForms[o][0])
	}
	return t
}

func containsPercentS(s string) bool {
	for i := 0; i+1 < len(s); i++ {
		if s[i] == '%' && s[i+1] == 's' {
			return true
		}
	}
	return false
}
