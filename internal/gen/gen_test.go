package gen

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"

	"donorsense/internal/geo"
	"donorsense/internal/organ"
	"donorsense/internal/text"
	"donorsense/internal/twitter"
)

// testCorpus generates a small but statistically meaningful corpus once.
var testCorpus = Generate(DefaultConfig(0.02))

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig(0.005))
	b := Generate(DefaultConfig(0.005))
	if len(a.Tweets) != len(b.Tweets) {
		t.Fatalf("tweet counts differ: %d vs %d", len(a.Tweets), len(b.Tweets))
	}
	for i := range a.Tweets {
		if a.Tweets[i].Text != b.Tweets[i].Text || a.Tweets[i].User.ID != b.Tweets[i].User.ID ||
			!a.Tweets[i].CreatedAt.Equal(b.Tweets[i].CreatedAt) {
			t.Fatalf("tweet %d differs between identical seeds", i)
		}
	}
	c := DefaultConfig(0.005)
	c.Seed = 99
	other := Generate(c)
	if len(other.Tweets) == len(a.Tweets) {
		same := true
		for i := range a.Tweets {
			if a.Tweets[i].Text != other.Tweets[i].Text {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical corpus")
		}
	}
}

func TestTweetsChronologicalWithIncreasingIDs(t *testing.T) {
	tw := testCorpus.Tweets
	for i := 1; i < len(tw); i++ {
		if tw[i].CreatedAt.Before(tw[i-1].CreatedAt) {
			t.Fatalf("tweets out of order at %d", i)
		}
		if tw[i].ID <= tw[i-1].ID {
			t.Fatalf("IDs not strictly increasing at %d", i)
		}
	}
}

func TestTweetsWithinWindow(t *testing.T) {
	cfg := testCorpus.Config
	end := testCorpus.End()
	for _, tw := range testCorpus.Tweets {
		if tw.CreatedAt.Before(cfg.Start) || !tw.CreatedAt.Before(end) {
			t.Fatalf("tweet at %v outside window [%v, %v)", tw.CreatedAt, cfg.Start, end)
		}
	}
}

func TestInContextTweetsPassFilterAndNoiseDoesNot(t *testing.T) {
	ex := text.NewExtractor()
	filter := twitter.NewTrackFilter(organ.TrackTerms())
	inCtx, noise := 0, 0
	for _, tw := range testCorpus.Tweets {
		p := testCorpus.Profiles[tw.User.ID]
		if p.TweetCount > 0 {
			inCtx++
			if !ex.MatchesFilter(tw.Text) {
				t.Fatalf("in-context tweet fails extractor: %q", tw.Text)
			}
			if !filter.Matches(tw.Text) {
				t.Fatalf("in-context tweet fails track filter: %q", tw.Text)
			}
		} else {
			noise++
			if ex.MatchesFilter(tw.Text) {
				t.Fatalf("noise tweet passes filter: %q", tw.Text)
			}
		}
	}
	if noise == 0 || inCtx == 0 {
		t.Fatalf("degenerate corpus: %d in-context, %d noise", inCtx, noise)
	}
	gotRate := float64(noise) / float64(inCtx)
	if math.Abs(gotRate-testCorpus.Config.NoiseRate) > 0.01 {
		t.Errorf("noise rate = %.3f, want ≈%.3f", gotRate, testCorpus.Config.NoiseRate)
	}
}

func TestActivityMeanMatchesPaper(t *testing.T) {
	// Paper Table I: 1.88 tweets per user. The raw truncated power law
	// sits a bit lower (≈1.78); the role activity multipliers (with the
	// ≥1 floor) lift the realized mean to ≈1.88.
	s := newActivitySampler(2.58, 2000)
	if m := s.Mean(); m < 1.65 || m > 1.90 {
		t.Errorf("raw activity mean = %.3f, want ≈1.78", m)
	}
	// And the empirical corpus mean, too.
	counts := map[int64]int{}
	for _, tw := range testCorpus.Tweets {
		if testCorpus.Profiles[tw.User.ID].TweetCount > 0 {
			counts[tw.User.ID]++
		}
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	mean := float64(total) / float64(len(counts))
	if math.Abs(mean-1.88) > 0.15 {
		t.Errorf("empirical tweets/user = %.3f, want ≈1.88", mean)
	}
}

func TestGeoTagRate(t *testing.T) {
	tagged, total := 0, 0
	for _, tw := range testCorpus.Tweets {
		if testCorpus.Profiles[tw.User.ID].TweetCount == 0 {
			continue
		}
		total++
		if tw.HasCoordinates {
			tagged++
		}
	}
	rate := float64(tagged) / float64(total)
	if math.Abs(rate-0.014) > 0.006 {
		t.Errorf("geo-tag rate = %.4f, want ≈0.014", rate)
	}
}

func TestUSGeoTagsReverseGeocodeToTrueState(t *testing.T) {
	g := geo.NewGeocoder()
	checked, wrong := 0, 0
	for _, tw := range testCorpus.Tweets {
		if !tw.HasCoordinates {
			continue
		}
		p := testCorpus.Profiles[tw.User.ID]
		loc, ok := g.Reverse(tw.Coordinates.Lat, tw.Coordinates.Lon)
		if !p.US {
			if ok {
				t.Errorf("foreign geo-tag (%v,%v) resolved to %s", tw.Coordinates.Lat, tw.Coordinates.Lon, loc.StateCode)
			}
			continue
		}
		checked++
		if !ok || loc.StateCode != p.StateCode {
			wrong++
		}
	}
	if checked == 0 {
		t.Fatal("no US geo-tags generated")
	}
	if frac := float64(wrong) / float64(checked); frac > 0.05 {
		t.Errorf("%.1f%% of US geo-tags reverse-geocode wrongly", frac*100)
	}
}

func TestUSLocationsGeocodeToTrueState(t *testing.T) {
	g := geo.NewGeocoder()
	checked, wrong := 0, 0
	for _, p := range testCorpus.Profiles {
		if !p.US || p.TweetCount == 0 {
			continue
		}
		loc := g.Locate(p.Location)
		if !loc.IsUSState() {
			continue // junk-location users legitimately drop out
		}
		checked++
		if loc.StateCode != p.StateCode {
			wrong++
			t.Logf("location %q geocoded to %s, truth %s", p.Location, loc.StateCode, p.StateCode)
		}
	}
	if checked == 0 {
		t.Fatal("no locatable US users")
	}
	if frac := float64(wrong) / float64(checked); frac > 0.02 {
		t.Errorf("%.2f%% of parseable US locations resolve to the wrong state", frac*100)
	}
	// And the share of US users that geocode at all must match the
	// intended survival rate (~96.5%).
	usTotal := 0
	for _, p := range testCorpus.Profiles {
		if p.US && p.TweetCount > 0 {
			usTotal++
		}
	}
	survival := float64(checked) / float64(usTotal)
	if survival < 0.93 || survival > 0.99 {
		t.Errorf("US location survival = %.3f, want ≈0.965", survival)
	}
}

func TestForeignLocationsDoNotResolveToUS(t *testing.T) {
	g := geo.NewGeocoder()
	resolved := 0
	total := 0
	for _, p := range testCorpus.Profiles {
		if p.US || p.TweetCount == 0 {
			continue
		}
		total++
		if g.Locate(p.Location).IsUSState() {
			resolved++
			t.Logf("foreign location %q resolved to a US state", p.Location)
		}
	}
	if total == 0 {
		t.Fatal("no non-US users")
	}
	if resolved > 0 {
		t.Errorf("%d/%d foreign locations leak into the US dataset", resolved, total)
	}
}

func TestOrganPopularityOrder(t *testing.T) {
	// Count distinct users mentioning each organ (Figure 2a) over true
	// in-context tweets.
	ex := text.NewExtractor()
	usersByOrgan := make([]map[int64]bool, organ.Count)
	for i := range usersByOrgan {
		usersByOrgan[i] = map[int64]bool{}
	}
	for _, tw := range testCorpus.Tweets {
		if testCorpus.Profiles[tw.User.ID].TweetCount == 0 {
			continue
		}
		for _, o := range ex.Extract(tw.Text).Organs() {
			usersByOrgan[o.Index()][tw.User.ID] = true
		}
	}
	counts := make([]float64, organ.Count)
	for i, m := range usersByOrgan {
		counts[i] = float64(len(m))
	}
	// Heart most popular, intestine least (Figure 2a).
	order := []organ.Organ{organ.Heart, organ.Kidney, organ.Liver, organ.Lung, organ.Pancreas, organ.Intestine}
	for i := 1; i < len(order); i++ {
		if counts[order[i].Index()] >= counts[order[i-1].Index()] {
			t.Errorf("popularity order broken: %v (%v) >= %v (%v)",
				order[i], counts[order[i].Index()], order[i-1], counts[order[i-1].Index()])
		}
	}
}

func TestOrgansPerTweetCalibration(t *testing.T) {
	ex := text.NewExtractor()
	tweets, organsTotal := 0, 0
	for _, tw := range testCorpus.Tweets {
		if testCorpus.Profiles[tw.User.ID].TweetCount == 0 {
			continue
		}
		tweets++
		organsTotal += len(ex.Extract(tw.Text).Organs())
	}
	avg := float64(organsTotal) / float64(tweets)
	if math.Abs(avg-1.03) > 0.02 {
		t.Errorf("organs/tweet = %.3f, want ≈1.03", avg)
	}
}

func TestOrgansPerUserCalibration(t *testing.T) {
	ex := text.NewExtractor()
	perUser := map[int64]map[organ.Organ]bool{}
	for _, tw := range testCorpus.Tweets {
		if testCorpus.Profiles[tw.User.ID].TweetCount == 0 {
			continue
		}
		m := perUser[tw.User.ID]
		if m == nil {
			m = map[organ.Organ]bool{}
			perUser[tw.User.ID] = m
		}
		for _, o := range ex.Extract(tw.Text).Organs() {
			m[o] = true
		}
	}
	total := 0
	for _, m := range perUser {
		total += len(m)
	}
	avg := float64(total) / float64(len(perUser))
	if math.Abs(avg-1.13) > 0.06 {
		t.Errorf("organs/user = %.3f, want ≈1.13", avg)
	}
}

func TestUSShareOfTweets(t *testing.T) {
	// Paper: 134,986 of 975,021 collected tweets identified as US ≈ 13.8%.
	us, total := 0, 0
	for _, tw := range testCorpus.Tweets {
		p := testCorpus.Profiles[tw.User.ID]
		if p.TweetCount == 0 {
			continue
		}
		total++
		if p.US {
			us++
		}
	}
	share := float64(us) / float64(total)
	if math.Abs(share-0.138) > 0.02 {
		t.Errorf("US tweet share = %.3f, want ≈0.138", share)
	}
}

func TestKansasKidneyAnomalyPresent(t *testing.T) {
	// The per-state organ sampler must elevate kidney in Kansas well
	// above the base rate (Figure 5's anomaly); small corpora are too
	// noisy, so sample the generator's organ model directly.
	r := rand.New(rand.NewPCG(11, 11))
	const n = 50000
	ksKidney, neutralKidney := 0, 0
	for i := 0; i < n; i++ {
		if primaryOrgan(r, "KS") == organ.Kidney {
			ksKidney++
		}
		if primaryOrgan(r, "TX") == organ.Kidney { // TX has no boosts
			neutralKidney++
		}
	}
	ksRate := float64(ksKidney) / n
	baseRate := float64(neutralKidney) / n
	// Boost 1.28 with renormalization gives ≈1.19x; heart must stay the
	// raw winner (paper Figure 4), so the effect is deliberately subtle.
	if ksRate < baseRate*1.12 {
		t.Errorf("Kansas kidney rate %.3f not elevated vs base %.3f", ksRate, baseRate)
	}
	// No other Midwestern state gets a kidney boost (Kansas is the only
	// one in the paper).
	for code, boosts := range stateOrganBoost {
		if code == "KS" {
			continue
		}
		st, ok := geo.StateByCode(code)
		if !ok {
			t.Fatalf("boost for unknown state %s", code)
		}
		if st.Region == geo.Midwest {
			if _, hasKidney := boosts[organ.Kidney]; hasKidney {
				t.Errorf("state %s in the Midwest has a kidney boost; only Kansas may", code)
			}
		}
	}
}

func TestMidwestUnderrepresented(t *testing.T) {
	// Twitter bias: Midwest share among users must be below its
	// population share.
	popByRegion := map[geo.Region]float64{}
	popTotal := 0.0
	for _, s := range geo.States() {
		popByRegion[s.Region] += float64(s.Population)
		popTotal += float64(s.Population)
	}
	userByRegion := map[geo.Region]float64{}
	userTotal := 0.0
	for _, p := range testCorpus.Profiles {
		if !p.US || p.TweetCount == 0 {
			continue
		}
		st, _ := geo.StateByCode(p.StateCode)
		userByRegion[st.Region]++
		userTotal++
	}
	midwestPop := popByRegion[geo.Midwest] / popTotal
	midwestUsers := userByRegion[geo.Midwest] / userTotal
	if midwestUsers >= midwestPop {
		t.Errorf("Midwest user share %.3f not below population share %.3f", midwestUsers, midwestPop)
	}
}

func TestActivitySamplerDistribution(t *testing.T) {
	s := newActivitySampler(2.58, 100)
	r := rand.New(rand.NewPCG(7, 7))
	counts := map[int]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		k := s.sample(r)
		if k < 1 || k > 100 {
			t.Fatalf("sample %d out of range", k)
		}
		counts[k]++
	}
	// Monotone decreasing head.
	if !(counts[1] > counts[2] && counts[2] > counts[3]) {
		t.Errorf("power law head not decreasing: %d, %d, %d", counts[1], counts[2], counts[3])
	}
	// P(1) ≈ 1/ζ(2.58) ≈ 0.77.
	p1 := float64(counts[1]) / n
	if math.Abs(p1-0.77) > 0.03 {
		t.Errorf("P(k=1) = %.3f, want ≈0.77", p1)
	}
}

func TestProfilesConsistent(t *testing.T) {
	for id, p := range testCorpus.Profiles {
		if p.UserID != id {
			t.Fatalf("profile key %d holds user %d", id, p.UserID)
		}
		if p.US {
			if _, ok := geo.StateByCode(p.StateCode); !ok {
				t.Errorf("US user %d has invalid state %q", id, p.StateCode)
			}
			if p.City.StateCode != p.StateCode {
				t.Errorf("user %d city %s in %s, state %s", id, p.City.Name, p.City.StateCode, p.StateCode)
			}
		}
		if p.HasSecondary && p.Secondary == p.Primary {
			t.Errorf("user %d secondary equals primary", id)
		}
		if !p.Primary.Valid() {
			t.Errorf("user %d has invalid primary", id)
		}
	}
}

func TestCorpusScalesLinearly(t *testing.T) {
	small := Generate(DefaultConfig(0.005))
	big := Generate(DefaultConfig(0.01))
	ratio := float64(len(big.Tweets)) / float64(len(small.Tweets))
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("2x scale produced %.2fx tweets", ratio)
	}
}

func TestStatePickerCoversAllStates(t *testing.T) {
	sp := newStatePicker()
	r := rand.New(rand.NewPCG(3, 3))
	seen := map[string]bool{}
	for i := 0; i < 200000; i++ {
		seen[sp.pick(r).Code] = true
	}
	for _, s := range geo.States() {
		if !seen[s.Code] {
			t.Errorf("state %s never sampled", s.Code)
		}
	}
}

func TestDiurnalPattern(t *testing.T) {
	byHour := make([]int, 24)
	for _, tw := range testCorpus.Tweets {
		byHour[tw.CreatedAt.Hour()]++
	}
	// Evening (19h) must beat pre-dawn (3h) decisively.
	if byHour[19] < byHour[3]*3 {
		t.Errorf("diurnal pattern flat: 19h=%d vs 3h=%d", byHour[19], byHour[3])
	}
}

func TestScreenNamesPlausible(t *testing.T) {
	ids := make([]int64, 0, len(testCorpus.Profiles))
	for id := range testCorpus.Profiles {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids[:10] {
		name := testCorpus.Profiles[id].ScreenName
		if name == "" || len(name) > 30 {
			t.Errorf("bad screen name %q", name)
		}
	}
}

func BenchmarkGenerate(b *testing.B) {
	cfg := DefaultConfig(0.01)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Generate(cfg)
	}
}
