// Package gen synthesizes the Twitter corpus that stands in for the
// paper's 385-day Stream API collection. The generator produces a
// population of users with organ-interest profiles, heavy-tailed activity,
// messy self-reported profile locations, sparse GPS geo-tags, and
// template-based tweet text — calibrated so that every statistic the paper
// reports (Table I, Figure 2, the organ popularity ranks, the state-level
// organ anomalies like Kansas/kidney) emerges from the synthetic data.
//
// Everything is driven by a seeded PCG generator, so a (Config, Seed) pair
// reproduces the corpus bit-for-bit.
package gen

import (
	"time"

	"donorsense/internal/organ"
)

// Config parameterizes corpus generation. The zero value is not useful;
// start from DefaultConfig.
type Config struct {
	// Seed drives all randomness.
	Seed uint64

	// Scale multiplies the population sizes. 1.0 reproduces the paper's
	// magnitudes (≈72k US users, ≈975k collected tweets); tests run at
	// 0.01–0.05.
	Scale float64

	// Start and Days delimit the collection window. The paper collected
	// Apr 22 2015 – May 11 2016 (385 days).
	Start time.Time
	Days  int

	// USUsers is the number of US-resident users generated (before
	// geocoding losses). NonUSUsers post in the donation context from
	// outside the USA or from unresolvable locations; the paper could
	// identify only 134,986 of 975,021 collected tweets as US (≈13.8%),
	// so non-US users dominate the raw stream.
	USUsers    int
	NonUSUsers int

	// ActivityAlpha is the discrete power-law exponent for tweets per
	// user (P(k) ∝ k^−α, k ≥ 1). 2.58, after the role activity multipliers, gives the paper's mean of ≈1.88.
	ActivityAlpha float64
	// ActivityMax truncates the activity distribution.
	ActivityMax int

	// GeoTagRate is the fraction of tweets carrying GPS coordinates
	// (≈1.4% per Morstatter et al.).
	GeoTagRate float64

	// MultiOrganTweetRate is the chance a single tweet mentions a second
	// organ (calibrates organs/tweet ≈ 1.03).
	MultiOrganTweetRate float64

	// SecondaryFocusRate is the chance a user has a secondary organ
	// interest in addition to the primary (calibrates organs/user ≈ 1.13
	// together with the per-tweet rates).
	SecondaryFocusRate float64

	// SecondaryDrawRate is the chance a tweet of a secondary-focus user
	// is about the secondary organ rather than the primary.
	SecondaryDrawRate float64

	// NoiseRate is the fraction of extra near-miss tweets (organ word
	// without donation context, or context without organ) injected into
	// the firehose to exercise the collection filter; they must be
	// rejected by it.
	NoiseRate float64

	// UnparseableLocRate is the fraction of US users whose profile
	// location is junk the geocoder cannot resolve ("wonderland", empty).
	// Those users drop out of the dataset unless rescued by a geo-tag.
	UnparseableLocRate float64

	// Events are awareness campaigns that concentrate each organ's tweet
	// volume into spike windows (National Kidney Month and the like);
	// they redistribute when tweets happen without changing totals, so
	// Table I calibration is unaffected. Nil means a flat year.
	Events []Event
}

// DefaultConfig returns the calibration that reproduces the paper's
// dataset statistics at the given scale.
func DefaultConfig(scale float64) Config {
	return Config{
		Seed:  1,
		Scale: scale,
		Start: time.Date(2015, 4, 22, 0, 0, 0, 0, time.UTC),
		Days:  385,
		// 74.5k intended US users ≈ 71.9k surviving geocoding at the
		// default 3.5% junk-location rate.
		USUsers:             int(74500 * scale),
		NonUSUsers:          int(447000 * scale),
		ActivityAlpha:       2.58,
		ActivityMax:         2000,
		GeoTagRate:          0.014,
		MultiOrganTweetRate: 0.028,
		SecondaryFocusRate:  0.25,
		SecondaryDrawRate:   0.35,
		NoiseRate:           0.02,
		UnparseableLocRate:  0.035,
		Events:              DefaultEvents(),
	}
}

// basePopularity is the share of users whose primary interest is each
// organ, in canonical organ order. Heart leads on Twitter (first in
// conversation, third in transplants — the paper's headline mismatch),
// intestine trails by more than an order of magnitude.
var basePopularity = [organ.Count]float64{
	organ.Heart:     0.360,
	organ.Kidney:    0.250,
	organ.Liver:     0.160,
	organ.Lung:      0.125,
	organ.Pancreas:  0.077,
	organ.Intestine: 0.028,
}

// coupling[primary][secondary] weights the choice of a secondary interest
// given the primary. It encodes the dual-transplant pairs the paper
// highlights (heart–kidney, liver–kidney, kidney–pancreas) and the
// comorbidity cascades (heart→kidney→liver) of §IV-A, so Figure 3's
// asymmetric co-mention structure reproduces.
var coupling = [organ.Count][organ.Count]float64{
	organ.Heart:     {0, 0.46, 0.22, 0.20, 0.07, 0.05},
	organ.Kidney:    {0.38, 0, 0.26, 0.10, 0.20, 0.06},
	organ.Liver:     {0.24, 0.48, 0, 0.14, 0.09, 0.05},
	organ.Lung:      {0.44, 0.26, 0.18, 0, 0.07, 0.05},
	organ.Pancreas:  {0.22, 0.50, 0.16, 0.07, 0, 0.05},
	organ.Intestine: {0.42, 0.26, 0.18, 0.09, 0.05, 0},
}

// regionBias multiplies state population when sampling user home states,
// reproducing the demographic skew the paper cites (Mislove et al.):
// Twitter over-represents the coasts and under-represents the Midwest.
var regionBias = map[string]float64{
	"Northeast": 1.18,
	"South":     1.02,
	"West":      1.10,
	"Midwest":   0.78,
	"Territory": 0.55,
}

// stateOrganBoost holds per-state organ multipliers that create the
// geographic anomalies of Figures 5 and 6: the Kansas kidney excess (the
// only Midwestern state with one, matching the deceased-donor surplus),
// Louisiana kidney, Massachusetts kidney+lung, the liver zone
// (DE/RI/CO/ND), the lung zone (OR/GA/VA/WI), a kidney zone (NY/MD
// corridor), and a heart zone (MN→CA).
//
// The boosts keep the paper's tension intact: organ prevalence is so
// skewed that heart stays the raw-count winner in *most* states (the
// paper's §IV-B1: "most states in the USA have their first and
// second-most-mentioned organ as heart and kidney"), so the anomalies are
// only reliably visible through the relative risk of Equation 4, and only
// with enough users per state — the paper needed its full 72k users;
// reproducing CI significance here needs scale ≥ 0.5.
var stateOrganBoost = map[string]map[organ.Organ]float64{
	"KS": {organ.Kidney: 1.70},
	"LA": {organ.Kidney: 1.45},
	"MA": {organ.Kidney: 1.32, organ.Lung: 1.55},
	"DE": {organ.Liver: 1.85},
	"RI": {organ.Liver: 1.80},
	"CO": {organ.Liver: 1.50},
	"ND": {organ.Liver: 1.50},
	"OR": {organ.Lung: 1.60},
	"GA": {organ.Lung: 1.40},
	"VA": {organ.Lung: 1.35, organ.Kidney: 1.12},
	"WI": {organ.Lung: 1.30},
	"NY": {organ.Kidney: 1.22},
	"MD": {organ.Kidney: 1.22},
	"MN": {organ.Heart: 1.32},
	"CA": {organ.Heart: 1.22},
	"WA": {organ.Heart: 1.18},
	"TN": {organ.Heart: 1.20},
	"MS": {organ.Kidney: 1.38},
	"AZ": {organ.Liver: 1.30},
}
