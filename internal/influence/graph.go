// Package influence implements the social-influence modelling the
// paper's conclusion calls for: "this characterization can inform models
// of social influence to be employed in the context of organ donation
// aiming at designing interventions that effectively target specific
// groups of users."
//
// It provides a synthetic follower graph over the dataset's users (with
// the homophily and hub structure real follower graphs show), an
// independent-cascade diffusion model whose edge probabilities depend on
// organ-interest affinity, and seed-selection strategies (greedy marginal
// gain vs. top-degree and random baselines) for planning campaigns.
package influence

import (
	"fmt"
	"math"
	"math/rand/v2"

	"donorsense/internal/organ"
)

// Node is one user in the influence graph.
type Node struct {
	UserID int64
	// StateCode drives geographic homophily.
	StateCode string
	// Primary drives interest homophily and cascade affinity.
	Primary organ.Organ
	// Activity (tweet count) drives hub probability: loud accounts
	// accumulate followers.
	Activity int
}

// Graph is a directed follower graph: an edge u→v means v follows u, so
// content cascades from u to v.
type Graph struct {
	nodes []Node
	// out[u] lists the followers of u.
	out [][]int32
}

// GraphConfig tunes synthetic graph generation.
type GraphConfig struct {
	// Seed drives all randomness.
	Seed uint64
	// AvgFollowers is the mean out-degree (default 8).
	AvgFollowers float64
	// StateHomophily is the probability a follow edge is drawn from the
	// same state (default 0.35).
	StateHomophily float64
	// OrganHomophily is the probability a follow edge is drawn from the
	// same primary-organ community (default 0.25); the remainder is
	// global.
	OrganHomophily float64
	// HubShare is the fraction of highest-activity nodes treated as hubs
	// (default 0.02). Hubs get large follower lists through the
	// activity-scaled degree, and additionally follow broadly themselves
	// (advocacy-org behaviour — they follow back): HubFollowProb is the
	// chance any account's follower slot is filled by a hub
	// (default 0.25), which places hubs inside most cascade paths.
	HubShare      float64
	HubFollowProb float64
}

// DefaultGraphConfig returns the standard tuning.
func DefaultGraphConfig() GraphConfig {
	return GraphConfig{
		Seed:           1,
		AvgFollowers:   8,
		StateHomophily: 0.35,
		OrganHomophily: 0.25,
		HubShare:       0.02,
		HubFollowProb:  0.25,
	}
}

func (c *GraphConfig) fill() {
	if c.AvgFollowers <= 0 {
		c.AvgFollowers = 8
	}
	if c.StateHomophily <= 0 {
		c.StateHomophily = 0.35
	}
	if c.OrganHomophily <= 0 {
		c.OrganHomophily = 0.25
	}
	if c.HubShare <= 0 {
		c.HubShare = 0.02
	}
	if c.HubFollowProb <= 0 {
		c.HubFollowProb = 0.25
	}
}

// SyntheticGraph builds a follower graph over the nodes with state and
// organ homophily and activity-based hubs. Generation is deterministic
// for a (nodes, config) pair.
func SyntheticGraph(nodes []Node, cfg GraphConfig) (*Graph, error) {
	if len(nodes) < 2 {
		return nil, fmt.Errorf("influence: need at least 2 nodes, got %d", len(nodes))
	}
	cfg.fill()
	r := rand.New(rand.NewPCG(cfg.Seed, 0x1F7))

	g := &Graph{nodes: nodes, out: make([][]int32, len(nodes))}

	// Communities for O(1) target sampling.
	byState := map[string][]int32{}
	byOrgan := make([][]int32, organ.Count)
	for i, n := range nodes {
		byState[n.StateCode] = append(byState[n.StateCode], int32(i))
		byOrgan[n.Primary.Index()] = append(byOrgan[n.Primary.Index()], int32(i))
	}

	// Hubs: the top HubShare nodes by activity.
	hubCount := int(float64(len(nodes)) * cfg.HubShare)
	if hubCount < 1 {
		hubCount = 1
	}
	hubs := topActivity(nodes, hubCount)

	// Out-degree ∝ 1 + log1p(activity) scaled to the configured mean —
	// louder accounts have more followers.
	weights := make([]float64, len(nodes))
	totalW := 0.0
	for i, n := range nodes {
		weights[i] = 1 + math.Log1p(float64(n.Activity))
		totalW += weights[i]
	}
	degScale := cfg.AvgFollowers * float64(len(nodes)) / totalW

	for u := range nodes {
		deg := int(weights[u]*degScale + r.Float64())
		seen := map[int32]bool{int32(u): true}
		for e := 0; e < deg; e++ {
			v := g.sampleTarget(r, u, byState, byOrgan, hubs, cfg)
			if v < 0 || seen[v] {
				continue
			}
			seen[v] = true
			g.out[u] = append(g.out[u], v)
		}
	}
	return g, nil
}

// sampleTarget picks one follower for u per the homophily mixture.
func (g *Graph) sampleTarget(r *rand.Rand, u int, byState map[string][]int32, byOrgan [][]int32, hubs []int32, cfg GraphConfig) int32 {
	if r.Float64() < cfg.HubFollowProb {
		return hubs[r.IntN(len(hubs))]
	}
	x := r.Float64()
	var pool []int32
	switch {
	case x < cfg.StateHomophily:
		pool = byState[g.nodes[u].StateCode]
	case x < cfg.StateHomophily+cfg.OrganHomophily:
		pool = byOrgan[g.nodes[u].Primary.Index()]
	}
	if len(pool) < 2 {
		return int32(r.IntN(len(g.nodes)))
	}
	return pool[r.IntN(len(pool))]
}

// topActivity returns the indices of the k most active nodes.
func topActivity(nodes []Node, k int) []int32 {
	idx := make([]int32, len(nodes))
	for i := range idx {
		idx[i] = int32(i)
	}
	// Partial selection sort is fine for small k.
	for i := 0; i < k && i < len(idx); i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if nodes[idx[j]].Activity > nodes[idx[best]].Activity {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:k]
}

// Nodes returns the node count.
func (g *Graph) Nodes() int { return len(g.nodes) }

// Node returns the node metadata at index i.
func (g *Graph) Node(i int) Node { return g.nodes[i] }

// Followers returns the follower list of node u (shared slice; do not
// mutate).
func (g *Graph) Followers(u int) []int32 { return g.out[u] }

// OutDegree returns the follower count of node u.
func (g *Graph) OutDegree(u int) int { return len(g.out[u]) }

// Edges returns the total edge count.
func (g *Graph) Edges() int {
	n := 0
	for _, l := range g.out {
		n += len(l)
	}
	return n
}
