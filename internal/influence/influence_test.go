package influence

import (
	"math/rand/v2"
	"testing"

	"donorsense/internal/geo"
	"donorsense/internal/organ"
)

// syntheticNodes fabricates a user population with states, organ
// interests, and a heavy-tailed activity profile.
func syntheticNodes(n int, seed uint64) []Node {
	r := rand.New(rand.NewPCG(seed, 0xA0DE))
	states := geo.StateCodes()
	nodes := make([]Node, n)
	for i := range nodes {
		act := 1
		if r.Float64() < 0.03 {
			act = 50 + r.IntN(400) // loud accounts
		} else {
			act = 1 + r.IntN(4)
		}
		nodes[i] = Node{
			UserID:    int64(1000 + i),
			StateCode: states[r.IntN(len(states))],
			Primary:   organ.Organ(r.IntN(organ.Count)),
			Activity:  act,
		}
	}
	return nodes
}

func testGraph(t testing.TB, n int) *Graph {
	t.Helper()
	g, err := SyntheticGraph(syntheticNodes(n, 7), DefaultGraphConfig())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSyntheticGraphShape(t *testing.T) {
	g := testGraph(t, 2000)
	if g.Nodes() != 2000 {
		t.Fatalf("nodes = %d", g.Nodes())
	}
	avg := float64(g.Edges()) / float64(g.Nodes())
	if avg < 5 || avg > 12 {
		t.Errorf("average out-degree = %.2f, want ≈8", avg)
	}
	// No self-loops or duplicate followers.
	for u := 0; u < g.Nodes(); u++ {
		seen := map[int32]bool{}
		for _, v := range g.Followers(u) {
			if int(v) == u {
				t.Fatalf("self-loop at %d", u)
			}
			if seen[v] {
				t.Fatalf("duplicate edge %d→%d", u, v)
			}
			seen[v] = true
		}
	}
}

func TestSyntheticGraphDeterministic(t *testing.T) {
	nodes := syntheticNodes(500, 3)
	a, _ := SyntheticGraph(nodes, DefaultGraphConfig())
	b, _ := SyntheticGraph(nodes, DefaultGraphConfig())
	if a.Edges() != b.Edges() {
		t.Fatal("edge counts differ across identical builds")
	}
	for u := 0; u < a.Nodes(); u++ {
		af, bf := a.Followers(u), b.Followers(u)
		if len(af) != len(bf) {
			t.Fatalf("node %d follower counts differ", u)
		}
		for i := range af {
			if af[i] != bf[i] {
				t.Fatalf("node %d follower %d differs", u, i)
			}
		}
	}
}

func TestSyntheticGraphErrors(t *testing.T) {
	if _, err := SyntheticGraph(nil, DefaultGraphConfig()); err == nil {
		t.Error("empty node set accepted")
	}
	if _, err := SyntheticGraph(syntheticNodes(1, 1), DefaultGraphConfig()); err == nil {
		t.Error("single node accepted")
	}
}

func TestGraphHomophily(t *testing.T) {
	g := testGraph(t, 3000)
	sameState, total := 0, 0
	for u := 0; u < g.Nodes(); u++ {
		for _, v := range g.Followers(u) {
			total++
			if g.Node(u).StateCode == g.Node(int(v)).StateCode {
				sameState++
			}
		}
	}
	frac := float64(sameState) / float64(total)
	// Random mixing across 52 states would give ≈1/52 ≈ 0.02; the
	// configured homophily should push it well above 0.2.
	if frac < 0.2 {
		t.Errorf("same-state edge share = %.3f, want > 0.2", frac)
	}
}

func TestGraphHubsAttractFollowers(t *testing.T) {
	// The cascade spreads u → out[u] (out[u] are u's followers), so
	// out-degree is a node's influence. The loudest account must have far
	// more followers than the quiet average — both via the log-activity
	// degree scaling and the hub follow bias.
	g := testGraph(t, 3000)
	var loudest, quietSum, quietN int
	bestAct := -1
	for i := 0; i < g.Nodes(); i++ {
		if g.Node(i).Activity > bestAct {
			bestAct, loudest = g.Node(i).Activity, i
		}
		if g.Node(i).Activity <= 4 {
			quietSum += g.OutDegree(i)
			quietN++
		}
	}
	quietAvg := float64(quietSum) / float64(quietN)
	if float64(g.OutDegree(loudest)) < quietAvg*1.5 {
		t.Errorf("loudest account degree %d not above quiet average %.1f", g.OutDegree(loudest), quietAvg)
	}
}

func TestCascadeBasics(t *testing.T) {
	g := testGraph(t, 1000)
	c, err := NewCascade(g, DefaultCascadeConfig(organ.Kidney))
	if err != nil {
		t.Fatal(err)
	}
	seeds := []int{0, 1, 2}
	reach := c.EstimateReach(seeds)
	if reach < 3 {
		t.Errorf("reach %.2f below seed count", reach)
	}
	// Zero probability → reach == seeds exactly.
	cz, _ := NewCascade(g, CascadeConfig{Topic: organ.Kidney, BaseProb: 1e-12, Runs: 8, Seed: 1})
	if got := cz.EstimateReach(seeds); got != 3 {
		t.Errorf("zero-prob reach = %v, want 3", got)
	}
	// Duplicate and invalid seeds are tolerated.
	if got := cz.EstimateReach([]int{0, 0, -5, 999999}); got != 1 {
		t.Errorf("dedup/invalid seeds reach = %v, want 1", got)
	}
}

func TestCascadeInvalidTopic(t *testing.T) {
	g := testGraph(t, 100)
	if _, err := NewCascade(g, CascadeConfig{Topic: organ.Organ(-1)}); err == nil {
		t.Error("invalid topic accepted")
	}
}

func TestCascadeMonotoneInProbability(t *testing.T) {
	g := testGraph(t, 1500)
	seeds := TopDegreeSeeds(g, 3)
	prev := 0.0
	for _, p := range []float64{0.01, 0.05, 0.15, 0.4} {
		c, _ := NewCascade(g, CascadeConfig{Topic: organ.Heart, BaseProb: p, Runs: 32, Seed: 1})
		reach := c.EstimateReach(seeds)
		if reach < prev {
			t.Errorf("reach not monotone: p=%v gives %.1f < %.1f", p, reach, prev)
		}
		prev = reach
	}
}

func TestAffinityBonusSteersTopicReach(t *testing.T) {
	g := testGraph(t, 2000)
	seeds := TopDegreeSeeds(g, 3)
	with, _ := NewCascade(g, CascadeConfig{Topic: organ.Kidney, BaseProb: 0.03, AffinityBonus: 0.15, Runs: 64, Seed: 1})
	without, _ := NewCascade(g, CascadeConfig{Topic: organ.Kidney, BaseProb: 0.03, AffinityBonus: -0, Runs: 64, Seed: 1})
	tw := with.EstimateTopicReach(seeds)
	to := without.EstimateTopicReach(seeds)
	if tw <= to {
		t.Errorf("affinity bonus did not raise topic reach: %.1f vs %.1f", tw, to)
	}
}

func TestTopDegreeAndRandomSeeds(t *testing.T) {
	g := testGraph(t, 500)
	top := TopDegreeSeeds(g, 5)
	if len(top) != 5 {
		t.Fatalf("top seeds = %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if g.OutDegree(top[i-1]) < g.OutDegree(top[i]) {
			t.Error("top-degree seeds not sorted")
		}
	}
	rnd := RandomSeeds(g, 5, 9)
	if len(rnd) != 5 {
		t.Fatalf("random seeds = %d", len(rnd))
	}
	seen := map[int]bool{}
	for _, s := range rnd {
		if seen[s] {
			t.Error("duplicate random seed")
		}
		seen[s] = true
	}
	// Oversized k clamps.
	if got := TopDegreeSeeds(g, 10000); len(got) != g.Nodes() {
		t.Errorf("oversized top-degree k = %d", len(got))
	}
}

func TestGreedyBeatsBaselines(t *testing.T) {
	g := testGraph(t, 2000)
	c, err := NewCascade(g, CascadeConfig{Topic: organ.Lung, BaseProb: 0.05, AffinityBonus: 0.05, Runs: 48, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanCampaign(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Seeds) != 4 {
		t.Fatalf("plan seeds = %d", len(plan.Seeds))
	}
	// The classic ordering: greedy ≥ top-degree ≥ random (allow a small
	// Monte Carlo slack on the first comparison).
	if plan.Reach < plan.DegreeReach*0.97 {
		t.Errorf("greedy reach %.1f below top-degree %.1f", plan.Reach, plan.DegreeReach)
	}
	if plan.DegreeReach <= plan.RandomReach {
		t.Errorf("top-degree reach %.1f not above random %.1f", plan.DegreeReach, plan.RandomReach)
	}
	if plan.TopicReach <= 0 || plan.TopicReach > plan.Reach {
		t.Errorf("topic reach %.1f inconsistent with total %.1f", plan.TopicReach, plan.Reach)
	}
}

func TestGreedySeedsErrors(t *testing.T) {
	g := testGraph(t, 100)
	c, _ := NewCascade(g, DefaultCascadeConfig(organ.Heart))
	if _, err := GreedySeeds(c, 0, nil); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := GreedySeeds(c, 5, []int{1, 2}); err == nil {
		t.Error("too few candidates accepted")
	}
}

func BenchmarkCascadeReach(b *testing.B) {
	g, err := SyntheticGraph(syntheticNodes(5000, 7), DefaultGraphConfig())
	if err != nil {
		b.Fatal(err)
	}
	c, _ := NewCascade(g, DefaultCascadeConfig(organ.Kidney))
	seeds := TopDegreeSeeds(g, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.EstimateReach(seeds)
	}
}

func BenchmarkGreedySeeds(b *testing.B) {
	g, err := SyntheticGraph(syntheticNodes(2000, 7), DefaultGraphConfig())
	if err != nil {
		b.Fatal(err)
	}
	c, _ := NewCascade(g, CascadeConfig{Topic: organ.Kidney, BaseProb: 0.04, AffinityBonus: 0.08, Runs: 16, Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GreedySeeds(c, 3, nil); err != nil {
			b.Fatal(err)
		}
	}
}
