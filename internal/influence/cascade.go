package influence

import (
	"fmt"
	"math/rand/v2"

	"donorsense/internal/organ"
)

// CascadeConfig parameterizes the independent-cascade diffusion model.
type CascadeConfig struct {
	// Topic is the organ the campaign promotes; edges into users whose
	// primary interest matches get the affinity bonus (the paper's §IV-A
	// insight that co-interest predicts receptiveness).
	Topic organ.Organ
	// BaseProb is the per-edge activation probability (default 0.04).
	BaseProb float64
	// AffinityBonus is added when the target's primary organ equals the
	// topic (default 0.08).
	AffinityBonus float64
	// Runs is the Monte Carlo sample count for reach estimation
	// (default 64).
	Runs int
	// Seed drives the simulation randomness.
	Seed uint64
}

// DefaultCascadeConfig returns the standard tuning for a topic.
func DefaultCascadeConfig(topic organ.Organ) CascadeConfig {
	return CascadeConfig{Topic: topic, BaseProb: 0.04, AffinityBonus: 0.08, Runs: 64, Seed: 1}
}

func (c *CascadeConfig) fill() {
	if c.BaseProb <= 0 {
		c.BaseProb = 0.04
	}
	if c.AffinityBonus < 0 {
		c.AffinityBonus = 0
	}
	if c.Runs <= 0 {
		c.Runs = 64
	}
}

// Cascade simulates independent-cascade diffusion over a graph.
type Cascade struct {
	g   *Graph
	cfg CascadeConfig
}

// NewCascade builds a simulator. It errors on an invalid topic.
func NewCascade(g *Graph, cfg CascadeConfig) (*Cascade, error) {
	if !cfg.Topic.Valid() {
		return nil, fmt.Errorf("influence: invalid topic organ %d", int(cfg.Topic))
	}
	cfg.fill()
	return &Cascade{g: g, cfg: cfg}, nil
}

// edgeProb returns the activation probability of the edge into v.
func (c *Cascade) edgeProb(v int32) float64 {
	p := c.cfg.BaseProb
	if c.g.nodes[v].Primary == c.cfg.Topic {
		p += c.cfg.AffinityBonus
	}
	if p > 1 {
		p = 1
	}
	return p
}

// simulate runs one cascade from the seeds and returns the number of
// activated nodes (including seeds).
func (c *Cascade) simulate(r *rand.Rand, seeds []int, active []bool) int {
	for i := range active {
		active[i] = false
	}
	queue := make([]int32, 0, len(seeds))
	count := 0
	for _, s := range seeds {
		if s < 0 || s >= len(active) || active[s] {
			continue
		}
		active[s] = true
		count++
		queue = append(queue, int32(s))
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range c.g.out[u] {
			if active[v] {
				continue
			}
			if r.Float64() < c.edgeProb(v) {
				active[v] = true
				count++
				queue = append(queue, v)
			}
		}
	}
	return count
}

// EstimateReach returns the Monte Carlo expected cascade size for the
// seed set.
func (c *Cascade) EstimateReach(seeds []int) float64 {
	r := rand.New(rand.NewPCG(c.cfg.Seed, 0xCA5C))
	active := make([]bool, c.g.Nodes())
	total := 0
	for run := 0; run < c.cfg.Runs; run++ {
		total += c.simulate(r, seeds, active)
	}
	return float64(total) / float64(c.cfg.Runs)
}

// EstimateTopicReach returns the expected number of activated users whose
// primary interest is the topic — the campaign-relevant audience.
func (c *Cascade) EstimateTopicReach(seeds []int) float64 {
	r := rand.New(rand.NewPCG(c.cfg.Seed, 0xCA5C))
	active := make([]bool, c.g.Nodes())
	total := 0
	for run := 0; run < c.cfg.Runs; run++ {
		c.simulate(r, seeds, active)
		for v, on := range active {
			if on && c.g.nodes[v].Primary == c.cfg.Topic {
				total++
			}
		}
	}
	return float64(total) / float64(c.cfg.Runs)
}
