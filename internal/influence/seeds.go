package influence

import (
	"fmt"
	"math/rand/v2"
	"sort"
)

// The seed-selection strategies a campaign planner compares. Greedy
// marginal-gain (Kempe–Kleinberg–Tardos style, with Monte Carlo reach
// estimates) against the cheap baselines.

// TopDegreeSeeds returns the k nodes with the most followers.
func TopDegreeSeeds(g *Graph, k int) []int {
	idx := make([]int, g.Nodes())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return g.OutDegree(idx[a]) > g.OutDegree(idx[b]) })
	if k > len(idx) {
		k = len(idx)
	}
	return append([]int(nil), idx[:k]...)
}

// RandomSeeds returns k distinct random nodes (deterministic for a seed).
func RandomSeeds(g *Graph, k int, seed uint64) []int {
	r := rand.New(rand.NewPCG(seed, 0x5EED))
	perm := r.Perm(g.Nodes())
	if k > len(perm) {
		k = len(perm)
	}
	return perm[:k]
}

// GreedySeeds selects k seeds by greedy marginal gain over the cascade's
// Monte Carlo reach, restricted to the candidate set (pass nil to use the
// top 4k-degree nodes, which keeps the search tractable without
// sacrificing much quality — high-reach seeds are high-degree in
// practice).
func GreedySeeds(c *Cascade, k int, candidates []int) ([]int, error) {
	if k < 1 {
		return nil, fmt.Errorf("influence: k = %d", k)
	}
	if candidates == nil {
		candidates = TopDegreeSeeds(c.g, 4*k)
	}
	if len(candidates) < k {
		return nil, fmt.Errorf("influence: %d candidates for k = %d", len(candidates), k)
	}
	var seeds []int
	chosen := map[int]bool{}
	currentReach := 0.0
	for len(seeds) < k {
		bestGain, bestNode := -1.0, -1
		for _, cand := range candidates {
			if chosen[cand] {
				continue
			}
			reach := c.EstimateReach(append(seeds, cand))
			if gain := reach - currentReach; gain > bestGain {
				bestGain, bestNode = gain, cand
			}
		}
		if bestNode < 0 {
			break
		}
		chosen[bestNode] = true
		seeds = append(seeds, bestNode)
		currentReach += bestGain
	}
	return seeds, nil
}

// PlanCampaign is the end-to-end planner: given a cascade model and a
// budget of k seed accounts, it returns the greedy seed set with its
// estimated total and topic-specific reach, alongside the baselines for
// comparison.
type CampaignPlan struct {
	Seeds       []int
	Reach       float64
	TopicReach  float64
	DegreeReach float64 // top-degree baseline reach
	RandomReach float64 // random baseline reach
}

// PlanCampaign runs the three strategies and packages the comparison.
func PlanCampaign(c *Cascade, k int) (*CampaignPlan, error) {
	greedy, err := GreedySeeds(c, k, nil)
	if err != nil {
		return nil, err
	}
	plan := &CampaignPlan{
		Seeds:      greedy,
		Reach:      c.EstimateReach(greedy),
		TopicReach: c.EstimateTopicReach(greedy),
	}
	plan.DegreeReach = c.EstimateReach(TopDegreeSeeds(c.g, k))
	plan.RandomReach = c.EstimateReach(RandomSeeds(c.g, k, c.cfg.Seed))
	return plan, nil
}
