package report

import (
	"strings"
	"testing"
	"time"

	"donorsense/internal/organ"
	"donorsense/internal/roles"
	"donorsense/internal/temporal"
	"donorsense/internal/text"
	"donorsense/internal/twitter"
)

func TestSparkline(t *testing.T) {
	if got := Sparkline([]int{0, 0, 0}); got != "▁▁▁" {
		t.Errorf("flat zero sparkline = %q", got)
	}
	got := Sparkline([]int{0, 5, 10})
	runes := []rune(got)
	if len(runes) != 3 || runes[0] >= runes[1] || runes[1] >= runes[2] {
		t.Errorf("ascending sparkline wrong: %q", got)
	}
	if Sparkline(nil) != "" {
		t.Error("nil series should render empty")
	}
}

func TestTemporalText(t *testing.T) {
	start := time.Date(2015, 4, 22, 0, 0, 0, 0, time.UTC)
	s, err := temporal.NewSeries(start, 60)
	if err != nil {
		t.Fatal(err)
	}
	ex := text.NewExtractor()
	for d := 0; d < 60; d++ {
		tw := twitter.Tweet{Text: "kidney donor drive", CreatedAt: start.AddDate(0, 0, d)}
		s.Observe(tw, ex.Extract(tw.Text))
	}
	bursts := []temporal.Burst{{Organ: organ.Kidney, StartDay: 30, EndDay: 35, Peak: 12, PeakDay: 32, Z: 4.2}}
	out := TemporalText(s, bursts)
	if !strings.Contains(out, "kidney") || !strings.Contains(out, "z=4.2") {
		t.Errorf("temporal text malformed:\n%s", out)
	}
	quiet := TemporalText(s, nil)
	if !strings.Contains(quiet, "no bursts") {
		t.Errorf("quiet text malformed:\n%s", quiet)
	}
}

func TestRoleEvaluationText(t *testing.T) {
	ev := roles.Evaluation{
		Accuracy:  0.8,
		Confusion: [][]int{{10, 2, 0, 0, 0}, {1, 9, 0, 0, 0}, {0, 0, 5, 0, 0}, {0, 0, 0, 4, 0}, {0, 0, 0, 0, 3}},
		Recall:    []float64{0.83, 0.9, 1, 1, 1},
		Precision: []float64{0.91, 0.82, 1, 1, 1},
		N:         34,
	}
	out := RoleEvaluationText(ev)
	for _, want := range []string{"advocacy", "practitioner", "0.800", "general-public"} {
		if !strings.Contains(out, want) {
			t.Errorf("role text missing %q:\n%s", want, out)
		}
	}
}

func TestCorrectionComparisonText(t *testing.T) {
	out := CorrectionComparisonText(map[string]int{"none": 25, "benjamini-hochberg": 18, "bonferroni": 9})
	ni := strings.Index(out, "none")
	bh := strings.Index(out, "benjamini-hochberg")
	bf := strings.Index(out, "bonferroni")
	if !(ni < bh && bh < bf) {
		t.Errorf("corrections out of order:\n%s", out)
	}
	if !strings.Contains(out, "25") || !strings.Contains(out, "9") {
		t.Errorf("counts missing:\n%s", out)
	}
}
