// Package report renders the paper's tables and figures as text: the
// Table I statistics block, log-scale ranked histograms (Figures 2, 3, 4,
// 7), the relative-risk state map (Figure 5), and the similarity heatmap
// with dendrogram ordering (Figure 6). The benchmark harness and the CLI
// print these so a reader can compare runs against the paper directly.
package report

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"donorsense/internal/cluster"
	"donorsense/internal/core"
	"donorsense/internal/organ"
	"donorsense/internal/pipeline"
	"donorsense/internal/stats"
)

// TableIText renders the Table I statistics block.
func TableIText(s pipeline.TableI) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %s\n", "Statistic", "Value")
	fmt.Fprintf(&b, "%-28s %s\n", strings.Repeat("-", 28), strings.Repeat("-", 12))
	fmt.Fprintf(&b, "%-28s %s\n", "Start Data Collection", s.Start.Format("Jan 02 2006"))
	fmt.Fprintf(&b, "%-28s %s\n", "Finish Data Collection", s.End.Format("Jan 02 2006"))
	fmt.Fprintf(&b, "%-28s %d\n", "Number of Days", s.Days)
	fmt.Fprintf(&b, "%-28s %d\n", "Tweets collected (US)", s.TweetsCollected)
	fmt.Fprintf(&b, "%-28s %d\n", "Tweets collected (total)", s.TotalCollected)
	fmt.Fprintf(&b, "%-28s %d\n", "Number of Users", s.Users)
	fmt.Fprintf(&b, "%-28s %.1f\n", "Avg. Tweets / Day", s.AvgTweetsPerDay)
	fmt.Fprintf(&b, "%-28s %.2f\n", "Avg. Tweets / User", s.AvgTweetsPerUser)
	fmt.Fprintf(&b, "%-28s %.2f\n", "Organs mentioned / Tweet", s.OrgansPerTweet)
	fmt.Fprintf(&b, "%-28s %.2f\n", "Organs mentioned / User", s.OrgansPerUser)
	fmt.Fprintf(&b, "%-28s %.2f%%\n", "Geo-tagged tweets", s.GeoTagRate*100)
	return b.String()
}

// logBar renders a log-scaled bar for a count, width ≤ max characters.
func logBar(count, maxCount int, width int) string {
	if count <= 0 || maxCount <= 0 {
		return ""
	}
	frac := math.Log1p(float64(count)) / math.Log1p(float64(maxCount))
	n := int(frac * float64(width))
	if n < 1 {
		n = 1
	}
	return strings.Repeat("#", n)
}

// UsersPerOrganText renders Figure 2(a): users per organ, log-scale bars.
func UsersPerOrganText(counts [organ.Count]int) string {
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	b.WriteString("Figure 2(a): users per organ (log scale)\n")
	// Present in descending popularity like the paper's histogram.
	order := organ.All()
	sort.SliceStable(order, func(i, j int) bool {
		return counts[order[i].Index()] > counts[order[j].Index()]
	})
	for _, o := range order {
		c := counts[o.Index()]
		fmt.Fprintf(&b, "  %-10s %8d %s\n", o, c, logBar(c, maxCount, 40))
	}
	return b.String()
}

// MultiOrganText renders Figure 2(b): tweets and users mentioning k
// distinct organs.
func MultiOrganText(tweets, users [organ.Count]int) string {
	var b strings.Builder
	b.WriteString("Figure 2(b): multi-organ mentions (log scale)\n")
	b.WriteString("  k     tweets     users\n")
	maxCount := 0
	for i := range tweets {
		if tweets[i] > maxCount {
			maxCount = tweets[i]
		}
		if users[i] > maxCount {
			maxCount = users[i]
		}
	}
	for k := 0; k < organ.Count; k++ {
		fmt.Fprintf(&b, "  %d %9d %9d  T:%-20s U:%s\n",
			k+1, tweets[k], users[k],
			logBar(tweets[k], maxCount, 20), logBar(users[k], maxCount, 20))
	}
	return b.String()
}

// OrganCharacterizationText renders Figure 3: one ranked, log-scaled
// histogram per organ showing where its focused users put the rest of
// their attention.
func OrganCharacterizationText(oc *core.OrganCharacterization) string {
	var b strings.Builder
	b.WriteString("Figure 3: organ characterization (rows of K, ranked bins)\n")
	for _, o := range organ.All() {
		sig := oc.Signature(o)
		fmt.Fprintf(&b, "  [%s] users=%d\n", o, oc.GroupSizes[o.Index()])
		idx := stats.RankDescending(sig)
		for _, j := range idx {
			if sig[j] <= 0 {
				continue
			}
			width := int(math.Max(1, sig[j]*40))
			fmt.Fprintf(&b, "    %-10s %.4f %s\n", organ.Organ(j), sig[j], strings.Repeat("#", width))
		}
	}
	return b.String()
}

// RegionCharacterizationText renders Figure 4: the per-state attention
// histograms (states with users only).
func RegionCharacterizationText(rc *core.RegionCharacterization) string {
	var b strings.Builder
	b.WriteString("Figure 4: state characterization (rows of K)\n")
	b.WriteString(fmt.Sprintf("  %-6s %s\n", "state", strings.Join(organ.Names(), "  ")))
	for i, code := range rc.StateCodes {
		if rc.GroupSizes[i] == 0 {
			continue
		}
		row := rc.K.Row(i)
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = fmt.Sprintf("%5.3f", v)
		}
		fmt.Fprintf(&b, "  %-6s %s  (n=%d)\n", code, strings.Join(cells, "  "), rc.GroupSizes[i])
	}
	return b.String()
}

// RegionHistogramsText renders Figure 4 the way the paper draws it: one
// compact ranked histogram per state, bars log-scaled, so the per-state
// "organ signatures" and their differing shapes are visible at a glance.
func RegionHistogramsText(rc *core.RegionCharacterization) string {
	var b strings.Builder
	b.WriteString("Figure 4 (signature view): ranked per-state histograms\n")
	for i, code := range rc.StateCodes {
		if rc.GroupSizes[i] == 0 {
			continue
		}
		row := rc.K.Row(i)
		fmt.Fprintf(&b, "  %-4s (n=%6d) ", code, rc.GroupSizes[i])
		for _, j := range stats.RankDescending(row) {
			if row[j] <= 0 {
				continue
			}
			// Log-scale bars relative to the leading organ.
			width := 1 + int(math.Log1p(row[j]*100)/math.Log1p(100)*8)
			fmt.Fprintf(&b, "%s%s ", organ.Organ(j).String()[:2], strings.Repeat("▇", width))
		}
		b.WriteString("\n")
	}
	b.WriteString("  (bars: log-scaled attention, ranked; letter = organ initial)\n")
	return b.String()
}

// HighlightText renders Figure 5: per state, the organs whose relative
// risk significantly exceeds the national expectation, with RR and CI.
func HighlightText(h *core.HighlightResult) string {
	var b strings.Builder
	b.WriteString("Figure 5: organs highlighted per state (RR lower CI > 1)\n")
	for row, code := range h.StateCodes {
		var parts []string
		for _, r := range h.Risks[row] {
			if r.Highlighted() {
				parts = append(parts, fmt.Sprintf("%s RR=%.2f [%.2f,%.2f]",
					r.Organ, r.RR.RR, r.RR.Lower, r.RR.Upper))
			}
		}
		if len(parts) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-4s %s\n", code, strings.Join(parts, "; "))
	}
	return b.String()
}

// SimilarityHeatmapText renders Figure 6: the state×state distance matrix
// in dendrogram leaf order, bucketed into shade characters (darker =
// more similar), plus the ordered state list.
func SimilarityHeatmapText(dist [][]float64, codes []string, dg *cluster.Dendrogram) string {
	order := dg.LeafOrder()
	shades := []byte{'@', '#', '+', '-', '.', ' '}
	// Scale by the maximum finite distance.
	maxD := 0.0
	for _, row := range dist {
		for _, v := range row {
			if !math.IsInf(v, 1) && v > maxD {
				maxD = v
			}
		}
	}
	var b strings.Builder
	b.WriteString("Figure 6: state similarity heatmap (dendrogram order; darker = more similar)\n  ")
	for _, i := range order {
		b.WriteString(codes[i][:1])
	}
	b.WriteString("\n")
	for _, i := range order {
		fmt.Fprintf(&b, "%-4s", codes[i])
		for _, j := range order {
			v := dist[i][j]
			var c byte
			switch {
			case math.IsInf(v, 1):
				c = ' '
			default:
				bucket := int(v / (maxD + 1e-12) * float64(len(shades)))
				if bucket >= len(shades) {
					bucket = len(shades) - 1
				}
				c = shades[bucket]
			}
			b.WriteByte(c)
		}
		b.WriteString("\n")
	}
	b.WriteString("order: " + strings.Join(reorder(codes, order), " ") + "\n")
	return b.String()
}

func reorder(codes []string, order []int) []string {
	out := make([]string, len(order))
	for i, idx := range order {
		out[i] = codes[idx]
	}
	return out
}

// DendrogramText renders the merge tree as an indented outline with
// heights — a textual Figure 6 dendrogram.
func DendrogramText(dg *cluster.Dendrogram, labels []string) string {
	var b strings.Builder
	b.WriteString("Dendrogram (merge heights)\n")
	var walk func(node int, depth int)
	children := map[int][2]int{}
	heights := map[int]float64{}
	for i, m := range dg.Merges {
		children[dg.N+i] = [2]int{m.A, m.B}
		heights[dg.N+i] = m.Height
	}
	walk = func(node, depth int) {
		indent := strings.Repeat("  ", depth)
		if node < dg.N {
			fmt.Fprintf(&b, "%s- %s\n", indent, labels[node])
			return
		}
		fmt.Fprintf(&b, "%s+ h=%.4f\n", indent, heights[node])
		c := children[node]
		walk(c[0], depth+1)
		walk(c[1], depth+1)
	}
	if dg.N == 1 {
		fmt.Fprintf(&b, "- %s\n", labels[0])
		return b.String()
	}
	walk(dg.N+len(dg.Merges)-1, 0)
	return b.String()
}

// UserClustersText renders Figure 7: each K-Means cluster's centroid as a
// ranked histogram with its relative size.
func UserClustersText(res *cluster.KMeansResult, totalUsers int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: %d user clusters (K-Means)\n", res.K)
	// Present clusters largest first, like the paper's size-annotated
	// panels.
	idx := make([]int, res.K)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return res.Sizes[idx[a]] > res.Sizes[idx[b]] })
	for _, c := range idx {
		share := float64(res.Sizes[c]) / float64(totalUsers) * 100
		fmt.Fprintf(&b, "  cluster %2d  size=%6d (%.1f%%)\n", c, res.Sizes[c], share)
		cent := res.Centroids[c]
		for _, j := range stats.RankDescending(cent) {
			if cent[j] < 0.005 {
				continue
			}
			width := int(math.Max(1, cent[j]*40))
			fmt.Fprintf(&b, "    %-10s %.3f %s\n", organ.Organ(j), cent[j], strings.Repeat("#", width))
		}
	}
	return b.String()
}

// SweepText renders a K-Means model-selection sweep (the paper's
// silhouette / inertia / average-size comparison behind k = 12).
func SweepText(results []cluster.SweepResult) string {
	var b strings.Builder
	b.WriteString("K-Means model selection sweep\n")
	b.WriteString("  k   silhouette    inertia    avg size   min size\n")
	for _, r := range results {
		fmt.Fprintf(&b, "  %-3d %9.4f %10.2f %10.1f %10d\n", r.K, r.Silhouette, r.Inertia, r.AvgSize, r.MinSize)
	}
	return b.String()
}

// SpearmanText renders the Figure 2(a) validation line.
func SpearmanText(r stats.SpearmanResult) string {
	return fmt.Sprintf("Spearman correlation vs OPTN 2012 transplants: r=%.3f, p=%.4f, n=%d\n", r.R, r.P, r.N)
}
