package report

import (
	"testing"

	"donorsense/internal/gen"
	"donorsense/internal/pipeline"
)

// The benchmark suite behind BENCH_incremental.{txt,json}: latency of
// one full-report refresh after a 10k-tweet delta lands on a large
// store, incremental engine versus from-scratch Analyze (archived as
// BENCH_incremental_before.*). Both sides run the same config — sweep
// off, k=12 — so the diff isolates the incremental machinery. The 1M
// benchmarks are baseline-only (minutes of wall clock); the CI gate
// reruns the 100k subset.

const benchDeltaTweets = 10_000

// benchEngineConfig mirrors the live collector's refresh config.
func benchEngineConfig() AnalysisConfig {
	cfg := DefaultAnalysisConfig()
	cfg.KUsers = 12
	cfg.SweepKs = nil
	cfg.SilhouetteSample = 0
	cfg.Workers = 0
	return cfg
}

// benchSetup fabricates the large store, folds a 5k-tweet warm-up
// prefix (so the delta's users are established), cold-builds the
// engine, and returns the closure that lands one 10k-tweet delta.
func benchSetup(b *testing.B, users int) (*pipeline.Dataset, *Engine, func()) {
	b.Helper()
	corpus := gen.Generate(gen.DefaultConfig(0.02))
	if len(corpus.Tweets) < benchDeltaTweets+5000 {
		b.Fatalf("generated corpus too small: %d tweets", len(corpus.Tweets))
	}
	d := pipeline.SynthDataset(users, 1)
	for _, tw := range corpus.Tweets[:5000] {
		d.Process(tw)
	}
	e := NewEngine(d, benchEngineConfig())
	if _, err := e.Refresh(); err != nil { // cold build
		b.Fatal(err)
	}
	deltaTweets := corpus.Tweets[5000 : 5000+benchDeltaTweets]
	applyDelta := func() {
		for _, tw := range deltaTweets {
			d.Process(tw)
		}
	}
	return d, e, applyDelta
}

func benchIncrementalRefresh(b *testing.B, users int) {
	_, e, applyDelta := benchSetup(b, users)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		applyDelta()
		b.StartTimer()
		if _, err := e.Refresh(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFromScratchAnalyze(b *testing.B, users int) {
	d, _, applyDelta := benchSetup(b, users)
	cfg := benchEngineConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		applyDelta()
		b.StartTimer()
		if _, err := Analyze(d, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIncrementalRefresh100k(b *testing.B) { benchIncrementalRefresh(b, 100_000) }
func BenchmarkFromScratchAnalyze100k(b *testing.B) { benchFromScratchAnalyze(b, 100_000) }
func BenchmarkIncrementalRefresh1M(b *testing.B)   { benchIncrementalRefresh(b, 1_000_000) }
func BenchmarkFromScratchAnalyze1M(b *testing.B)   { benchFromScratchAnalyze(b, 1_000_000) }
