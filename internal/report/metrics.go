package report

import (
	"time"

	"donorsense/internal/obs"
)

// Analysis stage labels for the stage-latency histogram.
const (
	StageAttention    = "attention"     // build Û from the dataset
	StageCharacterize = "characterize"  // Figures 3–5 aggregations
	StageStateCluster = "state_cluster" // Figure 6: distances + dendrogram
	StageUserCluster  = "user_cluster"  // Figure 7: K-Means at KUsers
	StageSweep        = "sweep"         // model-selection sweep over SweepKs
)

// Metrics instruments Analyze with a per-stage latency histogram,
// mirroring the pipeline.Metrics idiom for the collection side. Attach
// it via AnalysisConfig.Metrics; a nil *Metrics disables observation.
type Metrics struct {
	stage *obs.HistogramVec
}

// NewMetrics registers the analysis metric families on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		stage: reg.HistogramVec("donorsense_analyze_stage_seconds",
			"Per-stage analysis latency (attention build, characterizations, clustering, sweep).",
			nil, "stage"),
	}
}

// observe records one stage duration; safe on a nil receiver so Analyze
// can call it unconditionally.
func (m *Metrics) observe(stage string, start time.Time) {
	if m == nil {
		return
	}
	m.stage.With(stage).Since(start)
}
