package report

import (
	"strings"
	"sync"
	"testing"

	"donorsense/internal/core"
	"donorsense/internal/gen"
	"donorsense/internal/geo"
	"donorsense/internal/organ"
	"donorsense/internal/pipeline"
)

var (
	fixtureOnce sync.Once
	fixture     *Analysis
	fixtureErr  error
)

// analyzedFixture analyzes a scale-0.2 corpus (~14k US users) once; the
// geographic checks need that much data to rise above sampling noise,
// just as the paper's 72k users back its Figure 5.
func analyzedFixture(t testing.TB) *Analysis {
	t.Helper()
	fixtureOnce.Do(func() {
		corpus := gen.Generate(gen.DefaultConfig(0.2))
		d := pipeline.NewDataset()
		for _, tw := range corpus.Tweets {
			d.Process(tw)
		}
		cfg := DefaultAnalysisConfig()
		cfg.SweepKs = []int{6, 12} // keep the test fast
		cfg.SilhouetteSample = 300
		fixture, fixtureErr = Analyze(d, cfg)
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixture
}

func TestAnalyzeEndToEnd(t *testing.T) {
	a := analyzedFixture(t)
	if a.Stats.Users == 0 || a.Attention.Users() != a.Stats.Users {
		t.Errorf("users inconsistent: %d vs %d", a.Stats.Users, a.Attention.Users())
	}
	if a.Organs == nil || a.Regions == nil || a.Highlight == nil || a.Dendrogram == nil || a.Clusters == nil {
		t.Fatal("analysis missing components")
	}
	if a.Clusters.K != 12 {
		t.Errorf("k = %d, want 12", a.Clusters.K)
	}
	if len(a.Sweep) != 2 {
		t.Errorf("sweep results = %d, want 2", len(a.Sweep))
	}
	if a.Spearman.R < 0.7 {
		t.Errorf("Spearman r = %.3f, want ≈0.83", a.Spearman.R)
	}
	// Baseline blind spot: among states with a meaningful sample, the
	// winner-takes-all organ is heart nearly everywhere (the paper's
	// §IV-B1 motivation for RR). Tiny states are pure noise, so gate on
	// group size.
	heartWins, withUsers := 0, 0
	for i, code := range a.Regions.StateCodes {
		if a.Regions.GroupSizes[i] < 30 {
			continue
		}
		withUsers++
		if a.Baseline[code] == organ.Heart {
			heartWins++
		}
	}
	if withUsers == 0 || float64(heartWins)/float64(withUsers) < 0.75 {
		t.Errorf("heart wins %d/%d sizeable states; baseline should be dominated by heart", heartWins, withUsers)
	}
}

func TestAnalyzeFindsPlantedAnomalies(t *testing.T) {
	// At scale 0.2 any single state's RR is still dominated by sampling
	// noise (~100 Kansas users), so pool the planted kidney states: their mean
	// kidney RR must sit above the unboosted states' mean. The per-state
	// significance story is tested at paper scale below.
	a := analyzedFixture(t)
	boosted := map[string]bool{"KS": true, "LA": true, "MA": true, "MS": true, "NY": true, "MD": true, "VA": true}
	// Weight each state by its user count: tiny states contribute noise,
	// not signal.
	var boostedSum, boostedW, plainSum, plainW float64
	for i, code := range a.Highlight.StateCodes {
		rr := a.Highlight.Risks[i][organ.Kidney.Index()]
		if !rr.Defined {
			continue
		}
		w := float64(a.Regions.GroupSizes[i])
		if boosted[code] {
			boostedSum += rr.RR.RR * w
			boostedW += w
		} else {
			plainSum += rr.RR.RR * w
			plainW += w
		}
	}
	if boostedW == 0 || plainW == 0 {
		t.Fatal("no defined RRs")
	}
	boostedMean := boostedSum / boostedW
	plainMean := plainSum / plainW
	if boostedMean <= plainMean*1.04 {
		t.Errorf("boosted-state weighted kidney RR %.3f not above plain %.3f", boostedMean, plainMean)
	}
}

// TestFigure5SignificanceAtScale reproduces the paper's Figure 5 at the
// paper's own magnitude (≈72k users — the CI rule needs that much data,
// which is exactly the paper's point): Kansas kidney must be
// significantly highlighted and must lead the Midwest (the paper's
// headline geographic finding).
func TestFigure5SignificanceAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale corpus is slow; skipped in -short")
	}
	corpus := gen.Generate(gen.DefaultConfig(1.0))
	d := pipeline.NewDataset()
	for _, tw := range corpus.Tweets {
		d.Process(tw)
	}
	att, err := d.BuildAttention()
	if err != nil {
		t.Fatal(err)
	}
	h, err := core.HighlightOrgans(att, d.StateOf())
	if err != nil {
		t.Fatal(err)
	}
	kidneyStates := h.StatesHighlighting(organ.Kidney)
	foundKS := false
	for _, code := range kidneyStates {
		if code == "KS" {
			foundKS = true
		}
	}
	if !foundKS {
		t.Errorf("Kansas not significant for kidney at paper scale; states = %v", kidneyStates)
	}
	// The paper: Kansas is the Midwestern state whose kidney conversations
	// "highly exceed" the national expectation. The α=0.05 rule runs 312
	// uncorrected tests, so another Midwestern state can occasionally
	// squeak past the CI bound by chance (the paper has the same
	// exposure); the robust claim is that Kansas carries the region's
	// largest kidney excess by a margin.
	ksRR := 0.0
	for _, code := range geo.StateCodes() {
		st, _ := geo.StateByCode(code)
		if st.Region != geo.Midwest {
			continue
		}
		r := h.Risks[geo.StateIndex(code)][organ.Kidney.Index()]
		if !r.Defined {
			continue
		}
		if code == "KS" {
			ksRR = r.RR.RR
		} else if r.Highlighted() {
			t.Logf("note: midwestern %s also crossed the CI bound (RR=%.2f) — multiplicity noise", code, r.RR.RR)
		}
	}
	for _, code := range geo.StateCodes() {
		st, _ := geo.StateByCode(code)
		if st.Region != geo.Midwest || code == "KS" {
			continue
		}
		r := h.Risks[geo.StateIndex(code)][organ.Kidney.Index()]
		if r.Defined && r.RR.RR >= ksRR {
			t.Errorf("midwestern %s kidney RR %.2f >= Kansas %.2f; Kansas should lead the region", code, r.RR.RR, ksRR)
		}
	}
	// The raw-count baseline names heart in the overwhelming majority of
	// states — the paper's §IV-B1 blind spot ("most states have their
	// first-most-mentioned organ as heart").
	w, err := core.WinnerTakesAll(att, d.StateOf())
	if err != nil {
		t.Fatal(err)
	}
	heartWins, total := 0, 0
	for _, code := range h.StateCodes {
		if w[code] == organ.Organ(-1) {
			continue
		}
		total++
		if w[code] == organ.Heart {
			heartWins++
		}
	}
	if float64(heartWins)/float64(total) < 0.85 {
		t.Errorf("heart wins only %d/%d states in the raw-count baseline", heartWins, total)
	}
}

func TestRenderContainsAllSections(t *testing.T) {
	a := analyzedFixture(t)
	out := a.Render()
	for _, section := range []string{
		"Table I", "Figure 2(a)", "Figure 2(b)", "Figure 3", "Figure 4",
		"Figure 5", "Figure 6", "Figure 7", "Spearman", "model selection",
	} {
		if !strings.Contains(out, section) {
			t.Errorf("render missing %q", section)
		}
	}
}
