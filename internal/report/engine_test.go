package report

import (
	"math"
	"reflect"
	"testing"

	"donorsense/internal/gen"
	"donorsense/internal/pipeline"
)

// engineTestConfig keeps the differential runs fast: no sweep, modest k.
func engineTestConfig() AnalysisConfig {
	cfg := DefaultAnalysisConfig()
	cfg.KUsers = 8
	cfg.SweepKs = nil
	cfg.SilhouetteSample = 0
	cfg.Workers = 2
	return cfg
}

func floatsIdentical(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d want %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d] = %x want %x", what, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

// compareAnalyses asserts a refreshed analysis is bit-identical to a
// from-scratch one: every float through Float64bits, everything else
// through DeepEqual.
func compareAnalyses(t *testing.T, got, want *Analysis) {
	t.Helper()
	if !reflect.DeepEqual(got.Stats, want.Stats) {
		t.Fatalf("Table I differs:\n got %+v\nwant %+v", got.Stats, want.Stats)
	}
	if got.Popularity != want.Popularity || got.MultiTweets != want.MultiTweets || got.MultiUsers != want.MultiUsers {
		t.Fatal("figure 2 histograms differ")
	}
	if got.Spearman != want.Spearman {
		t.Fatalf("Spearman %+v want %+v", got.Spearman, want.Spearman)
	}
	if !reflect.DeepEqual(got.Attention.UserIDs(), want.Attention.UserIDs()) {
		t.Fatal("attention user ids differ")
	}
	floatsIdentical(t, "attention", got.Attention.Matrix().Data(), want.Attention.Matrix().Data())
	floatsIdentical(t, "organ K", got.Organs.K.Data(), want.Organs.K.Data())
	if !reflect.DeepEqual(got.Organs.GroupSizes, want.Organs.GroupSizes) {
		t.Fatal("organ group sizes differ")
	}
	floatsIdentical(t, "region K", got.Regions.K.Data(), want.Regions.K.Data())
	if !reflect.DeepEqual(got.Regions.GroupSizes, want.Regions.GroupSizes) ||
		!reflect.DeepEqual(got.Regions.EmptyStates, want.Regions.EmptyStates) {
		t.Fatal("region group sizes / empty states differ")
	}
	if !reflect.DeepEqual(got.Highlight, want.Highlight) {
		t.Fatal("figure 5 differs")
	}
	if !reflect.DeepEqual(got.Baseline, want.Baseline) {
		t.Fatal("winner-takes-all baseline differs")
	}
	if !reflect.DeepEqual(got.StateCodes, want.StateCodes) {
		t.Fatal("state codes differ")
	}
	if len(got.StateDist) != len(want.StateDist) {
		t.Fatalf("state distance matrix %d rows want %d", len(got.StateDist), len(want.StateDist))
	}
	for i := range want.StateDist {
		floatsIdentical(t, "state distances", got.StateDist[i], want.StateDist[i])
	}
	if !reflect.DeepEqual(got.Dendrogram, want.Dendrogram) {
		t.Fatal("dendrogram differs")
	}
	if !reflect.DeepEqual(got.Clusters, want.Clusters) {
		t.Fatal("user clusters differ")
	}
	if !reflect.DeepEqual(got.Sweep, want.Sweep) {
		t.Fatal("sweep differs")
	}
}

// TestEngineDifferential drives a corpus through the pipeline in phases —
// growth, tweet deletions (including full user removals), a dataset
// merge, more growth — and after every phase asserts Engine.Refresh is
// bit-identical to a from-scratch Analyze of the same dataset. Warm
// K-Means is off so the clustering comparison is exact.
func TestEngineDifferential(t *testing.T) {
	corpus := gen.Generate(gen.DefaultConfig(0.05))
	tweets := corpus.Tweets
	if len(tweets) < 1000 {
		t.Fatalf("corpus too small: %d tweets", len(tweets))
	}
	cfg := engineTestConfig()

	d := pipeline.NewDataset()
	d.TrackDeletions()
	e := NewEngine(d, cfg)
	e.Warm = false
	if !d.DeltaTracking() {
		t.Fatal("NewEngine did not enable delta tracking")
	}

	// Hold out a slice to arrive via Merge (the associative path).
	held := tweets[len(tweets)*9/10:]
	main := tweets[: len(tweets)*9/10 : len(tweets)*9/10]

	checkpointEpochs := []uint64{}
	check := func() {
		t.Helper()
		got, err := e.Refresh()
		if err != nil {
			t.Fatal(err)
		}
		want, err := Analyze(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		compareAnalyses(t, got, want)
		checkpointEpochs = append(checkpointEpochs, e.Epoch())
	}

	// Phase 1: cold build over the first third.
	third := len(main) / 3
	for _, tw := range main[:third] {
		d.Process(tw)
	}
	check()
	if e.Epoch() != 0 {
		t.Fatalf("cold build at epoch %d", e.Epoch())
	}

	// Phase 2: growth — new users appear, old users tweet again.
	for _, tw := range main[third : 2*third] {
		d.Process(tw)
	}
	check()
	if e.Epoch() == 0 {
		t.Fatal("incremental refresh did not advance the epoch")
	}

	// Phase 3: delete-notice compliance — reverse a swath of retained
	// tweets; single-tweet users drop out of the store entirely.
	deleted := 0
	for _, tw := range main[:third] {
		if d.Delete(tw.ID) {
			deleted++
		}
		if deleted >= 400 {
			break
		}
	}
	if deleted == 0 {
		t.Fatal("no tweets deleted; fixture broken")
	}
	check()

	// Phase 4: merge a separately-collected shard.
	d2 := pipeline.NewDataset()
	for _, tw := range held {
		d2.Process(tw)
	}
	d.Merge(d2)
	check()

	// Phase 5: more growth after the merge.
	for _, tw := range main[2*third:] {
		d.Process(tw)
	}
	check()

	// Phase 6: nothing changed — refresh must still match exactly.
	check()

	for i := 1; i < len(checkpointEpochs); i++ {
		if checkpointEpochs[i] < checkpointEpochs[i-1] {
			t.Fatalf("epoch moved backwards: %v", checkpointEpochs)
		}
	}
}

// TestEngineWarmEquivalence runs warm-on and warm-off engines over the
// same stream: every non-clustering artifact must be bit-identical, and
// the warm clustering must behave as a converged fixed point — an
// unchanged-data refresh reproduces it exactly, including through a
// MarshalWarm/RestoreWarm checkpoint round-trip.
func TestEngineWarmEquivalence(t *testing.T) {
	corpus := gen.Generate(gen.DefaultConfig(0.05))
	tweets := corpus.Tweets
	cfg := engineTestConfig()

	build := func(warm bool, upto int) (*pipeline.Dataset, *Engine) {
		d := pipeline.NewDataset()
		e := NewEngine(d, cfg)
		e.Warm = warm
		for _, tw := range tweets[:upto] {
			d.Process(tw)
		}
		return d, e
	}

	half := len(tweets) / 2
	dCold, eCold := build(false, half)
	dWarm, eWarm := build(true, half)
	if _, err := eCold.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := eWarm.Refresh(); err != nil {
		t.Fatal(err)
	}
	for _, tw := range tweets[half:] {
		dCold.Process(tw)
		dWarm.Process(tw)
	}
	aCold, err := eCold.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	aWarm, err := eWarm.Refresh()
	if err != nil {
		t.Fatal(err)
	}

	// Everything except the K-Means result is float-path independent of
	// the warm knob.
	floatsIdentical(t, "attention", aWarm.Attention.Matrix().Data(), aCold.Attention.Matrix().Data())
	if !reflect.DeepEqual(aWarm.Highlight, aCold.Highlight) {
		t.Fatal("figure 5 differs under warm clustering")
	}
	if !reflect.DeepEqual(aWarm.Dendrogram, aCold.Dendrogram) {
		t.Fatal("dendrogram differs under warm clustering")
	}

	// The warm clustering is a converged partition of the same data:
	// sizes account for every user, and an unchanged-data refresh is a
	// fixed point.
	if aWarm.Clusters == nil || aCold.Clusters == nil {
		t.Fatal("missing clusters")
	}
	total := 0
	for _, s := range aWarm.Clusters.Sizes {
		total += s
	}
	if total != aWarm.Attention.Users() {
		t.Fatalf("warm cluster sizes cover %d of %d users", total, aWarm.Attention.Users())
	}
	again, err := eWarm.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	// Converged-equal, not bit-identical: the resume's convergence check
	// drifts centroids by sub-tolerance ulps (exactly like the cold
	// path's last iteration), so the contract is same partition at
	// indistinguishable inertia.
	if !reflect.DeepEqual(again.Clusters.Labels, aWarm.Clusters.Labels) ||
		!reflect.DeepEqual(again.Clusters.Sizes, aWarm.Clusters.Sizes) {
		t.Fatal("unchanged-data warm refresh moved the partition")
	}
	if rel := math.Abs(again.Clusters.Inertia-aWarm.Clusters.Inertia) / aWarm.Clusters.Inertia; rel > 1e-9 {
		t.Fatalf("unchanged-data warm refresh drifted inertia by %g", rel)
	}

	// Checkpoint round-trip: a fresh engine restored from the warm blob
	// resumes instead of re-searching — on unchanged data it converges
	// immediately to the same partition.
	blob, err := eWarm.MarshalWarm()
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) == 0 {
		t.Fatal("empty warm blob after clustering")
	}
	eRestored := NewEngine(dWarm, cfg)
	if err := eRestored.RestoreWarm(blob); err != nil {
		t.Fatal(err)
	}
	aRestored, err := eRestored.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if aRestored.Clusters.Iterations > 2 {
		t.Fatalf("restored warm resume took %d iterations", aRestored.Clusters.Iterations)
	}
	if !reflect.DeepEqual(aRestored.Clusters.Labels, aWarm.Clusters.Labels) {
		t.Fatal("restored warm resume changed the partition")
	}
	// Garbage blobs are rejected; nil blobs are ignored.
	if err := eRestored.RestoreWarm([]byte("not gob")); err == nil {
		t.Fatal("garbage warm blob accepted")
	}
	if err := eRestored.RestoreWarm(nil); err != nil {
		t.Fatal(err)
	}
}

// TestEngineErrorResets drives the engine into a patch-to-empty error
// (every user deleted) and asserts it recovers with a cold rebuild once
// data returns.
func TestEngineErrorResets(t *testing.T) {
	corpus := gen.Generate(gen.DefaultConfig(0.01))
	tweets := corpus.Tweets
	cfg := engineTestConfig()
	cfg.KUsers = 4

	d := pipeline.NewDataset()
	d.TrackDeletions()
	e := NewEngine(d, cfg)
	e.Warm = false

	n := len(tweets) / 10
	for _, tw := range tweets[:n] {
		d.Process(tw)
	}
	if _, err := e.Refresh(); err != nil {
		t.Fatal(err)
	}

	for _, tw := range tweets[:n] {
		d.Delete(tw.ID)
	}
	if d.Users() != 0 {
		t.Fatalf("%d users survived full deletion", d.Users())
	}
	if _, err := e.Refresh(); err == nil {
		t.Fatal("refresh of an emptied dataset succeeded")
	}

	for _, tw := range tweets[n : 2*n] {
		d.Process(tw)
	}
	got, err := e.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	want, err := Analyze(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	compareAnalyses(t, got, want)
	if e.Epoch() != 0 {
		t.Fatalf("recovery was not a cold rebuild (epoch %d)", e.Epoch())
	}
}
