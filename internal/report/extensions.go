package report

import (
	"fmt"
	"strings"

	"donorsense/internal/gen"
	"donorsense/internal/influence"
	"donorsense/internal/organ"
	"donorsense/internal/roles"
	"donorsense/internal/temporal"
)

// sparkRunes render a small time series inline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders an integer series as a unicode sparkline, scaled to
// the series maximum.
func Sparkline(series []int) string {
	max := 0
	for _, v := range series {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return strings.Repeat(string(sparkRunes[0]), len(series))
	}
	var b strings.Builder
	for _, v := range series {
		i := v * (len(sparkRunes) - 1) / max
		b.WriteRune(sparkRunes[i])
	}
	return b.String()
}

// TemporalText renders weekly per-organ sparklines and the detected
// bursts — the real-time-sensor extension view.
func TemporalText(s *temporal.Series, bursts []temporal.Burst) string {
	var b strings.Builder
	b.WriteString("Temporal sensor: weekly volume per organ\n")
	for _, o := range organ.All() {
		daily := s.OrganSeries(o)
		weekly := make([]int, (len(daily)+6)/7)
		for d, n := range daily {
			weekly[d/7] += n
		}
		fmt.Fprintf(&b, "  %-10s %s\n", o, Sparkline(weekly))
	}
	if len(bursts) == 0 {
		b.WriteString("  no bursts detected\n")
		return b.String()
	}
	b.WriteString("Detected bursts:\n")
	for _, burst := range bursts {
		start := s.Start().AddDate(0, 0, burst.StartDay)
		end := s.Start().AddDate(0, 0, burst.EndDay)
		fmt.Fprintf(&b, "  %-10s %s – %s  peak %d/day (z=%.1f)\n",
			burst.Organ, start.Format("Jan 02 2006"), end.Format("Jan 02 2006"), burst.Peak, burst.Z)
	}
	return b.String()
}

// RoleEvaluationText renders the role-recovery confusion matrix and
// per-class metrics.
func RoleEvaluationText(ev roles.Evaluation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "User-role recovery (Gaussian naive Bayes, n=%d): accuracy %.3f\n", ev.N, ev.Accuracy)
	b.WriteString("  true \\ predicted ")
	for c := 0; c < len(ev.Confusion); c++ {
		fmt.Fprintf(&b, "%14s", gen.Role(c))
	}
	b.WriteString("    recall  precision\n")
	for c, row := range ev.Confusion {
		fmt.Fprintf(&b, "  %-16s", gen.Role(c))
		for _, n := range row {
			fmt.Fprintf(&b, "%14d", n)
		}
		fmt.Fprintf(&b, "  %8.3f %10.3f\n", ev.Recall[c], ev.Precision[c])
	}
	return b.String()
}

// CorrectionComparisonText renders how many Figure 5 highlights survive
// each multiple-testing correction.
func CorrectionComparisonText(counts map[string]int) string {
	var b strings.Builder
	b.WriteString("Figure 5 highlights under multiple-testing correction:\n")
	for _, name := range []string{"none", "benjamini-hochberg", "bonferroni"} {
		if n, ok := counts[name]; ok {
			fmt.Fprintf(&b, "  %-20s %d (state, organ) pairs\n", name, n)
		}
	}
	return b.String()
}

// InfluencePlanText renders a campaign plan comparison.
func InfluencePlanText(topic organ.Organ, g *influence.Graph, plan *influence.CampaignPlan) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Influence campaign plan (%s) over a %d-user, %d-edge follower graph:\n",
		topic, g.Nodes(), g.Edges())
	fmt.Fprintf(&b, "  greedy seeds:      reach %.0f users (%.0f %s-interested)\n",
		plan.Reach, plan.TopicReach, topic)
	fmt.Fprintf(&b, "  top-degree seeds:  reach %.0f\n", plan.DegreeReach)
	fmt.Fprintf(&b, "  random seeds:      reach %.0f\n", plan.RandomReach)
	for _, s := range plan.Seeds {
		n := g.Node(s)
		fmt.Fprintf(&b, "    seed %d (%s, %s, %d followers)\n", n.UserID, n.StateCode, n.Primary, g.OutDegree(s))
	}
	return b.String()
}
