package report

import (
	"fmt"
	"sort"
	"time"

	"donorsense/internal/cluster"
	"donorsense/internal/core"
	"donorsense/internal/geo"
	"donorsense/internal/obs/trace"
	"donorsense/internal/organ"
	"donorsense/internal/pipeline"
	"donorsense/internal/stats"
)

// Engine is the incremental counterpart of Analyze: it keeps every
// intermediate of the full analysis alive between calls — the
// epoch-versioned Û, the integer accumulators behind Table I / Figure 2 /
// Figure 5, the per-group characterization state, the pairwise-distance
// cache, and the K-Means warm state — and on each Refresh folds in only
// the users the dataset changed since the previous one (DESIGN.md §14).
// Refresh cost is O(users changed) plus the clustering resume, not
// O(corpus age); the produced *Analysis is bit-identical to what
// Analyze would compute over the same dataset (with Warm off; warm
// K-Means is converged-equal, reached through a resumed rather than
// restarted run).
//
// The engine owns the dataset's change feed: NewEngine enables delta
// tracking and every Refresh drains it. It is single-threaded like the
// Dataset itself — callers serialize Refresh with dataset mutation.
type Engine struct {
	d   *pipeline.Dataset
	cfg AnalysisConfig

	// Warm resumes K-Means from the previous refresh's converged state
	// (labels of changed rows invalidated) instead of cold-starting with
	// restarts. On: refreshes stop paying the dominant clustering cost.
	// Off: every refresh's clustering is bit-identical to Analyze's.
	Warm bool

	att *core.Attention

	// Row-aligned shadow of Û: each row's mention mask, geo.StateCodes()
	// row (-1 unresolvable), and primary-organ group. These are what the
	// accumulators and the dirty-group recompute need about the previous
	// state of a changed user.
	masks     []uint8
	states    []int16
	primaries []int16

	// Subtractable group-size counters for the two characterizations.
	orgSizes []int
	regSizes []int

	// Integer accumulators: Figure 5 / winner-takes-all cells, and the
	// Figure 2 / Table I mention-mask statistics.
	cells *core.StateOrganCells
	ment  core.MentionAccum

	// Previous characterizations; clean group rows are carried over
	// bit-for-bit by the dirty-group recompute.
	organs  *core.OrganCharacterization
	regions *core.RegionCharacterization

	// Clustering warm state: the keyed pairwise-distance cache (Figure 6)
	// and the resumable K-Means state (Figure 7).
	pc     cluster.PairwiseCache
	kmWarm *cluster.KMeansWarmState

	metrics *EngineMetrics
	tracer  *trace.Tracer

	refreshes   uint64
	lastDirty   int
	lastLatency time.Duration
	lastCold    bool
}

// NewEngine wraps a dataset for incremental analysis, enabling its
// change tracking. The first Refresh is a cold build; subsequent ones
// consume deltas. Warm-started K-Means is on by default.
func NewEngine(d *pipeline.Dataset, cfg AnalysisConfig) *Engine {
	d.EnableDeltaTracking()
	return &Engine{d: d, cfg: cfg, Warm: true}
}

// SetMetrics attaches refresh instrumentation (nil disables).
func (e *Engine) SetMetrics(m *EngineMetrics) { e.metrics = m }

// SetTracer attaches a tracer; each Refresh emits a report.refresh span.
func (e *Engine) SetTracer(t *trace.Tracer) { e.tracer = t }

// Epoch returns the attention matrix's patch epoch (0 before the first
// Refresh and right after a cold build).
func (e *Engine) Epoch() uint64 {
	if e.att == nil {
		return 0
	}
	return e.att.Epoch()
}

// Refreshes returns how many Refresh calls have completed successfully.
func (e *Engine) Refreshes() uint64 { return e.refreshes }

// LastRefresh reports the previous Refresh: rows applied, latency, and
// whether it was a cold build — the /statusz analytics section's feed.
func (e *Engine) LastRefresh() (dirtyRows int, latency time.Duration, cold bool) {
	return e.lastDirty, e.lastLatency, e.lastCold
}

// Refresh drains the dataset's change delta and returns the analysis of
// the current state. The first call (and any call after an error
// poisoned the incremental state) runs a cold build. An empty delta
// still produces a complete, current *Analysis — the tweet-level Table I
// scalars can move without any user row changing.
func (e *Engine) Refresh() (*Analysis, error) {
	start := time.Now()
	sp := e.tracer.StartRoot("report.refresh")
	var (
		a     *Analysis
		err   error
		dirty int
	)
	cold := e.att == nil
	if cold {
		// A cold build reflects the live store; discard any pending delta.
		e.d.DrainDelta()
		a, err = e.coldBuild()
	} else {
		delta := e.d.DrainDelta()
		dirty = delta.Rows.Count() + len(delta.Deleted)
		a, err = e.incremental(delta.Rows.Each, delta.Deleted)
		if err != nil {
			// The partial state is unusable; the next Refresh rebuilds.
			e.reset()
		}
	}
	e.lastDirty, e.lastLatency, e.lastCold = dirty, time.Since(start), cold
	if err == nil {
		e.refreshes++
	}
	if m := e.metrics; m != nil {
		m.refresh.Since(start)
		m.epoch.Set(float64(e.Epoch()))
		m.dirty.Set(float64(dirty))
	}
	if sp != nil {
		sp.SetInt("dirty_rows", int64(dirty))
		sp.SetInt("epoch", int64(e.Epoch()))
		if cold {
			sp.SetAttr("cold", "true")
		}
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
		sp.End()
	}
	return a, err
}

// reset drops all incremental state so the next Refresh cold-builds.
func (e *Engine) reset() {
	e.att = nil
	e.masks, e.states, e.primaries = nil, nil, nil
	e.orgSizes, e.regSizes = nil, nil
	e.cells, e.ment = nil, core.MentionAccum{}
	e.organs, e.regions = nil, nil
	e.pc = cluster.PairwiseCache{}
	e.kmWarm = nil
}

// coldBuild computes everything from scratch — the same work Analyze
// does, through the cache- and accumulator-aware entry points — and
// seeds the incremental state from the results.
func (e *Engine) coldBuild() (*Analysis, error) {
	att, err := e.d.BuildAttention()
	if err != nil {
		return nil, fmt.Errorf("report: attention: %w", err)
	}
	e.att = att

	n := att.Users()
	e.masks = make([]uint8, n)
	e.states = make([]int16, n)
	e.primaries = make([]int16, n)
	e.orgSizes = make([]int, organ.Count)
	e.regSizes = make([]int, len(geo.StateCodes()))
	e.cells = core.NewStateOrganCells()
	e.ment = core.MentionAccum{}
	stateOf := e.d.StateLookup()
	for row, id := range att.UserIDs() {
		mask := core.MentionMask(att, row)
		prim := int16(att.PrimaryOrgan(row).Index())
		si := int16(-1)
		if code, ok := stateOf(id); ok {
			if s := geo.StateIndex(code); s >= 0 {
				si = int16(s)
			}
		}
		e.masks[row], e.states[row], e.primaries[row] = mask, si, prim
		e.orgSizes[prim]++
		if si >= 0 {
			e.regSizes[si]++
			e.cells.AddUser(int(si), mask, 1)
		}
		e.ment.AddMask(mask, 1)
	}

	if e.organs, err = core.CharacterizeOrgans(att); err != nil {
		return nil, fmt.Errorf("report: figure 3: %w", err)
	}
	if e.regions, err = core.CharacterizeRegionsFunc(att, stateOf); err != nil {
		return nil, fmt.Errorf("report: figure 4: %w", err)
	}
	return e.assemble(func(string) bool { return true })
}

// pendingChange is one user whose Û row changes this refresh.
type pendingChange struct {
	id     int64
	mask   uint8
	state  int16
	counts [organ.Count]int32
	oldRow int // pre-patch att row; -1 = insert
	// previous shadow values when oldRow >= 0
	oldMask  uint8
	oldState int16
	oldPrim  int16
}

// incremental folds one drained delta into the cached state. eachRow
// iterates the dirty store rows (valid against the live store), deleted
// lists removed user ids — userstore.Delta's contract.
func (e *Engine) incremental(eachRow func(func(uint32)), deleted []int64) (*Analysis, error) {
	removed := make(map[int64]bool, len(deleted))
	for _, id := range deleted {
		removed[id] = true
	}

	// Classify dirty rows against the previous Û: nonzero rows are
	// updates or inserts; rows whose mentions dropped to zero leave Û
	// through removes, mirroring AttentionFromCounts' zero-row filter.
	var ups []pendingChange
	var removes []int64
	eachRow(func(row uint32) {
		id, code, ments := e.d.UserAt(row)
		// A deleted id that is live again nets out to an update/insert.
		delete(removed, id)
		var cnt [organ.Count]int32
		copy(cnt[:], ments)
		sum := int32(0)
		mask := uint8(0)
		for j, v := range cnt {
			sum += v
			if v > 0 {
				mask |= 1 << j
			}
		}
		oldRow := e.att.RowOf(id)
		if sum == 0 {
			if oldRow >= 0 {
				removes = append(removes, id)
			}
			return
		}
		si := int16(-1)
		if s := geo.StateIndex(code); s >= 0 {
			si = int16(s)
		}
		ups = append(ups, pendingChange{id: id, mask: mask, state: si, counts: cnt, oldRow: oldRow})
	})
	for id := range removed {
		if e.att.RowOf(id) >= 0 {
			removes = append(removes, id)
		}
	}
	sort.Slice(ups, func(i, j int) bool { return ups[i].id < ups[j].id })
	sort.Slice(removes, func(i, j int) bool { return removes[i] < removes[j] })

	// Capture previous shadow values before the patch invalidates row
	// indices; accumulators are only touched after Patch succeeds, so an
	// error leaves nothing half-applied (Refresh resets on error anyway).
	inserts := 0
	for i := range ups {
		up := &ups[i]
		if up.oldRow < 0 {
			inserts++
			continue
		}
		up.oldMask = e.masks[up.oldRow]
		up.oldState = e.states[up.oldRow]
		up.oldPrim = e.primaries[up.oldRow]
	}
	type removal struct {
		mask  uint8
		state int16
		prim  int16
	}
	rms := make([]removal, len(removes))
	for i, id := range removes {
		row := e.att.RowOf(id)
		rms[i] = removal{mask: e.masks[row], state: e.states[row], prim: e.primaries[row]}
	}

	oldIDs := e.att.UserIDs()
	upIDs := make([]int64, len(ups))
	upCounts := make([]int32, 0, len(ups)*organ.Count)
	for i := range ups {
		upIDs[i] = ups[i].id
		upCounts = append(upCounts, ups[i].counts[:]...)
	}
	if err := e.att.Patch(upIDs, upCounts, removes); err != nil {
		return nil, fmt.Errorf("report: patch: %w", err)
	}

	orgDirty := make([]bool, organ.Count)
	regDirty := make([]bool, len(e.regSizes))
	sub := func(mask uint8, state, prim int16) {
		e.ment.AddMask(mask, -1)
		e.orgSizes[prim]--
		orgDirty[prim] = true
		if state >= 0 {
			e.cells.AddUser(int(state), mask, -1)
			e.regSizes[state]--
			regDirty[state] = true
		}
	}
	add := func(mask uint8, state, prim int16) {
		e.ment.AddMask(mask, 1)
		e.orgSizes[prim]++
		orgDirty[prim] = true
		if state >= 0 {
			e.cells.AddUser(int(state), mask, 1)
			e.regSizes[state]++
			regDirty[state] = true
		}
	}

	if inserts == 0 && len(removes) == 0 {
		// Row set unchanged: Patch renormalized in place, shadow rows and
		// warm-state rows keep their indices.
		for i := range ups {
			up := &ups[i]
			row := up.oldRow
			sub(up.oldMask, up.oldState, up.oldPrim)
			prim := int16(e.att.PrimaryOrgan(row).Index())
			e.masks[row], e.states[row], e.primaries[row] = up.mask, up.state, prim
			add(up.mask, up.state, prim)
			if e.kmWarm != nil && row < len(e.kmWarm.Labels) {
				e.kmWarm.Labels[row] = -1
			}
		}
	} else {
		// Membership changed: rebuild the row-aligned shadow (and remap
		// the K-Means warm state) with one merge over the new id order,
		// exactly the splice Patch performed.
		newIDs := e.att.UserIDs()
		n := len(newIDs)
		masks := make([]uint8, n)
		states := make([]int16, n)
		prims := make([]int16, n)
		warm := e.kmWarm
		remapWarm := warm != nil && len(warm.Labels) == len(oldIDs)
		var wl []int32
		var wu, wlo []float64
		if remapWarm {
			wl = make([]int32, n)
			wu = make([]float64, n)
			wlo = make([]float64, n)
		}
		oi, ui := 0, 0
		for r, id := range newIDs {
			if ui < len(ups) && ups[ui].id == id {
				up := &ups[ui]
				if up.oldRow >= 0 {
					sub(up.oldMask, up.oldState, up.oldPrim)
				}
				prim := int16(e.att.PrimaryOrgan(r).Index())
				masks[r], states[r], prims[r] = up.mask, up.state, prim
				add(up.mask, up.state, prim)
				if remapWarm {
					wl[r] = -1
				}
				if oi < len(oldIDs) && oldIDs[oi] == id {
					oi++
				}
				ui++
				continue
			}
			for oldIDs[oi] != id {
				oi++ // removed ids fall out of the merge
			}
			masks[r], states[r], prims[r] = e.masks[oi], e.states[oi], e.primaries[oi]
			if remapWarm {
				wl[r], wu[r], wlo[r] = warm.Labels[oi], warm.Upper[oi], warm.Lower[oi]
			}
			oi++
		}
		for _, rm := range rms {
			sub(rm.mask, rm.state, rm.prim)
		}
		e.masks, e.states, e.primaries = masks, states, prims
		if remapWarm {
			e.kmWarm = &cluster.KMeansWarmState{
				K: warm.K, Dim: warm.Dim, Centroids: warm.Centroids,
				Labels: wl, Upper: wu, Lower: wlo,
			}
		} else {
			e.kmWarm = nil
		}
	}

	var err error
	if e.organs, err = core.CharacterizeOrgansDelta(e.att, e.organs, e.primaries, e.orgSizes, orgDirty); err != nil {
		return nil, fmt.Errorf("report: figure 3: %w", err)
	}
	if e.regions, err = core.CharacterizeRegionsDelta(e.att, e.regions, e.states, e.regSizes, regDirty); err != nil {
		return nil, fmt.Errorf("report: figure 4: %w", err)
	}
	return e.assemble(func(code string) bool {
		s := geo.StateIndex(code)
		return s >= 0 && regDirty[s]
	})
}

// assemble turns the cached state into a complete *Analysis: integer
// accumulators feed Table I, Figure 2, Figure 5, and the baseline; the
// pairwise cache and warm K-Means state feed the clustering figures.
// stateDirty tells the distance cache which state rows changed.
func (e *Engine) assemble(stateDirty func(code string) bool) (*Analysis, error) {
	d, cfg := e.d, e.cfg
	a := &Analysis{
		Stats:      d.StatsFromDistinct(int(e.ment.DistinctPairs)),
		Popularity: e.ment.UsersPerOrgan(),
		KUsers:     cfg.KUsers,
		MultiUsers: e.ment.MultiOrganUsers(),
	}
	a.MultiTweets = d.TweetOrganHistogram()

	x := make([]float64, organ.Count)
	for i, c := range a.Popularity {
		x[i] = float64(c)
	}
	sp, err := stats.Spearman(x, organ.TransplantCounts())
	if err != nil {
		return nil, fmt.Errorf("report: popularity correlation: %w", err)
	}
	a.Spearman = sp

	a.Attention = e.att
	a.StateOf = d.StateLookup()
	a.Organs, a.Regions = e.organs, e.regions

	if a.Highlight, err = e.cells.Highlight(); err != nil {
		return nil, fmt.Errorf("report: figure 5: %w", err)
	}
	if a.Baseline, err = e.cells.WinnerTakesAll(); err != nil {
		return nil, fmt.Errorf("report: winner-takes-all: %w", err)
	}

	rows, codes := a.Regions.NonEmptyRows()
	a.StateCodes = codes
	if len(rows) >= 2 {
		if a.StateDist, _, err = e.pc.Refresh(rows, codes, stateDirty, cluster.Bhattacharyya, cfg.Workers); err != nil {
			return nil, fmt.Errorf("report: figure 6 distances: %w", err)
		}
		if a.Dendrogram, err = e.pc.Dendrogram(cluster.AverageLinkage); err != nil {
			return nil, fmt.Errorf("report: figure 6 clustering: %w", err)
		}
	}

	u := e.att.Matrix()
	if cfg.KUsers > 0 && u.Rows() >= cfg.KUsers {
		warm := e.kmWarm
		if !e.Warm {
			warm = nil
		}
		res, ws, _, kerr := cluster.KMeansDenseWarm(u, cluster.KMeansConfig{
			K: cfg.KUsers, Seed: cfg.Seed, Restarts: 2, Workers: cfg.Workers,
		}, warm)
		if kerr != nil {
			return nil, fmt.Errorf("report: figure 7: %w", kerr)
		}
		a.Clusters = res
		e.kmWarm = ws
	}
	if len(cfg.SweepKs) > 0 && u.Rows() > maxInt(cfg.SweepKs) {
		if a.Sweep, err = cluster.SweepKDense(u, cfg.SweepKs, cfg.Seed, cfg.SilhouetteSample, cfg.Workers); err != nil {
			return nil, fmt.Errorf("report: k sweep: %w", err)
		}
	}
	return a, nil
}
