package report

import (
	"sort"
	"testing"

	"donorsense/internal/organ"
	"donorsense/internal/pipeline"
)

// topOracle is the brute-force reference: snapshot every user, full sort,
// cut to max.
func topOracle(d *pipeline.Dataset, max int) []TopUser {
	var all []TopUser
	for row := 0; row < d.Users(); row++ {
		id, code, ments := d.UserAt(uint32(row))
		u := TopUser{ID: id, State: code}
		copy(u.Mentions[:], ments)
		for _, m := range ments {
			u.Total += int64(m)
		}
		if u.Total == 0 {
			continue
		}
		all = append(all, u)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Total != all[j].Total {
			return all[i].Total > all[j].Total
		}
		return all[i].ID < all[j].ID
	})
	if max < len(all) {
		all = all[:max]
	}
	return all
}

func TestTopMentionersMatchesFullSort(t *testing.T) {
	d := pipeline.SynthDataset(5000, 7)
	for _, max := range []int{1, 10, 100, 4999, 5000, 10000} {
		got := TopMentioners(d, max)
		want := topOracle(d, max)
		if len(got) != len(want) {
			t.Fatalf("max=%d: got %d users, want %d", max, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("max=%d: rank %d = %+v, want %+v", max, i, got[i], want[i])
			}
		}
	}
}

func TestTopMentionersEdgeCases(t *testing.T) {
	d := pipeline.SynthDataset(100, 3)
	if got := TopMentioners(d, 0); got != nil {
		t.Errorf("max=0 returned %d users, want nil", len(got))
	}
	if got := TopMentioners(pipeline.NewDataset(), 10); got != nil {
		t.Errorf("empty dataset returned %d users, want nil", len(got))
	}
	// Ordering within the result is strictly descending (total, then id).
	top := TopMentioners(d, 100)
	for i := 1; i < len(top); i++ {
		a, b := top[i-1], top[i]
		if a.Total < b.Total || (a.Total == b.Total && a.ID > b.ID) {
			t.Fatalf("rank %d out of order: %+v before %+v", i, a, b)
		}
	}
}

func TestTopUserPrimary(t *testing.T) {
	u := TopUser{Mentions: [organ.Count]int32{1, 5, 5, 0, 0, 0}}
	if got := u.Primary(); got != organ.Organ(1) {
		t.Errorf("Primary tie = %v, want index 1 (lowest tied index)", got)
	}
}
