package report

import (
	"sort"

	"donorsense/internal/organ"
	"donorsense/internal/pipeline"
)

// TopUser is one row of the "top attention users" report slice: a user
// ranked by total organ mentions, with the per-organ breakdown the serve
// layer renders. It is a value type holding copies only — nothing aliases
// the live store, so a slice of these can outlive the dataset state it
// was drawn from (the property the RCU snapshots rely on).
type TopUser struct {
	ID       int64
	State    string
	Total    int64
	Mentions [organ.Count]int32
}

// TopMentioners returns the max most-mentioning users of the dataset,
// ordered by descending total organ mentions with ascending user id as
// the deterministic tie-break. It runs a bounded partial selection — a
// size-max min-heap over one store scan, O(users · log max) — so pulling
// the top 1000 out of 10M rows never materializes a full sort. Users
// with zero mentions are skipped (they are not in Û either).
func TopMentioners(d *pipeline.Dataset, max int) []TopUser {
	n := d.Users()
	if max <= 0 || n == 0 {
		return nil
	}
	if max > n {
		max = n
	}

	// heap is a min-heap under the ranking order: the root is the weakest
	// of the current top set, evicted whenever a stronger row arrives.
	heap := make([]TopUser, 0, max)
	less := func(a, b *TopUser) bool {
		if a.Total != b.Total {
			return a.Total < b.Total
		}
		return a.ID > b.ID
	}
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			smallest := i
			if l < len(heap) && less(&heap[l], &heap[smallest]) {
				smallest = l
			}
			if r < len(heap) && less(&heap[r], &heap[smallest]) {
				smallest = r
			}
			if smallest == i {
				return
			}
			heap[i], heap[smallest] = heap[smallest], heap[i]
			i = smallest
		}
	}
	siftUp := func(i int) {
		for i > 0 {
			parent := (i - 1) / 2
			if !less(&heap[i], &heap[parent]) {
				return
			}
			heap[i], heap[parent] = heap[parent], heap[i]
			i = parent
		}
	}

	var u TopUser
	for row := 0; row < n; row++ {
		id, code, ments := d.UserAt(uint32(row))
		total := int64(0)
		for _, m := range ments {
			total += int64(m)
		}
		if total == 0 {
			continue
		}
		u = TopUser{ID: id, State: code, Total: total}
		copy(u.Mentions[:], ments)
		if len(heap) < max {
			heap = append(heap, u)
			siftUp(len(heap) - 1)
			continue
		}
		if less(&heap[0], &u) {
			heap[0] = u
			siftDown(0)
		}
	}

	sort.Slice(heap, func(i, j int) bool { return less(&heap[j], &heap[i]) })
	return heap
}

// Primary returns the user's most-mentioned organ by raw counts, ties
// resolved to the lowest organ index — a display aid for the serve
// layer, not the Û arg-max (which hash-splits exact ties; see
// Attention.PrimaryOrgan).
func (u *TopUser) Primary() organ.Organ {
	best, bi := int32(-1), 0
	for i, v := range u.Mentions {
		if v > best {
			best, bi = v, i
		}
	}
	return organ.Organ(bi)
}
