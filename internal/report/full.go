package report

import (
	"fmt"
	"strings"
	"time"

	"donorsense/internal/cluster"
	"donorsense/internal/core"
	"donorsense/internal/organ"
	"donorsense/internal/pipeline"
	"donorsense/internal/stats"
)

// Analysis bundles every result of the paper's evaluation computed over
// one dataset, ready for rendering or programmatic inspection.
type Analysis struct {
	Stats      pipeline.TableI
	Popularity [organ.Count]int
	Spearman   stats.SpearmanResult
	// MultiTweets/MultiUsers: Figure 2(b) histograms (index 0 ⇒ k=1).
	MultiTweets [organ.Count]int
	MultiUsers  [organ.Count]int

	Attention *core.Attention
	// StateOf resolves a user id to its state straight off the dataset's
	// columnar store — no O(users) map is materialized for the region
	// analyses anymore.
	StateOf core.StateLookup

	Organs    *core.OrganCharacterization  // Figure 3
	Regions   *core.RegionCharacterization // Figure 4
	Highlight *core.HighlightResult        // Figure 5
	Baseline  map[string]organ.Organ       // winner-takes-all baseline

	// Figure 6: distances between non-empty state rows, their codes, and
	// the dendrogram.
	StateDist  [][]float64
	StateCodes []string
	Dendrogram *cluster.Dendrogram

	// Figure 7: user clustering at KUsers clusters, plus the selection
	// sweep.
	KUsers   int
	Clusters *cluster.KMeansResult
	Sweep    []cluster.SweepResult
}

// AnalysisConfig tunes the expensive parts of Analyze.
type AnalysisConfig struct {
	// KUsers is the user-cluster count (paper: 12).
	KUsers int
	// SweepKs lists the ks for the model-selection sweep; empty skips
	// the sweep.
	SweepKs []int
	// SilhouetteSample bounds silhouette computations (0 = exact).
	SilhouetteSample int
	// Seed drives K-Means initialization.
	Seed uint64
	// Workers bounds the concurrency of the clustering passes
	// (0 = GOMAXPROCS). Results are bit-identical for any value.
	Workers int
	// Metrics, when non-nil, records per-stage latencies.
	Metrics *Metrics
}

// DefaultAnalysisConfig mirrors the paper's choices.
func DefaultAnalysisConfig() AnalysisConfig {
	return AnalysisConfig{
		KUsers:           12,
		SweepKs:          []int{6, 8, 10, 12, 14, 16},
		SilhouetteSample: 2000,
		Seed:             1,
	}
}

// Analyze runs the complete evaluation of the paper over a processed
// dataset: Table I, Figure 2 histograms and Spearman validation, the
// organ/region characterizations, RR highlighting, state clustering, and
// user clustering.
func Analyze(d *pipeline.Dataset, cfg AnalysisConfig) (*Analysis, error) {
	a := &Analysis{
		Stats:      d.Stats(),
		Popularity: d.UsersPerOrgan(),
		KUsers:     cfg.KUsers,
	}
	a.MultiTweets, a.MultiUsers = d.MultiOrganHistogram()

	sp, err := d.PopularityCorrelation()
	if err != nil {
		return nil, fmt.Errorf("report: popularity correlation: %w", err)
	}
	a.Spearman = sp

	start := time.Now()
	att, err := d.BuildAttention()
	if err != nil {
		return nil, fmt.Errorf("report: attention: %w", err)
	}
	cfg.Metrics.observe(StageAttention, start)
	a.Attention = att
	a.StateOf = d.StateLookup()

	start = time.Now()
	if a.Organs, err = core.CharacterizeOrgans(att); err != nil {
		return nil, fmt.Errorf("report: figure 3: %w", err)
	}
	if a.Regions, err = core.CharacterizeRegionsFunc(att, a.StateOf); err != nil {
		return nil, fmt.Errorf("report: figure 4: %w", err)
	}
	if a.Highlight, err = core.HighlightOrgansFunc(att, a.StateOf); err != nil {
		return nil, fmt.Errorf("report: figure 5: %w", err)
	}
	if a.Baseline, err = core.WinnerTakesAllFunc(att, a.StateOf); err != nil {
		return nil, fmt.Errorf("report: winner-takes-all: %w", err)
	}
	cfg.Metrics.observe(StageCharacterize, start)

	rows, codes := a.Regions.NonEmptyRows()
	a.StateCodes = codes
	if len(rows) >= 2 {
		start = time.Now()
		if a.StateDist, err = cluster.PairwiseMatrixWorkers(rows, cluster.Bhattacharyya, cfg.Workers); err != nil {
			return nil, fmt.Errorf("report: figure 6 distances: %w", err)
		}
		if a.Dendrogram, err = cluster.Agglomerative(a.StateDist, cluster.AverageLinkage); err != nil {
			return nil, fmt.Errorf("report: figure 6 clustering: %w", err)
		}
		cfg.Metrics.observe(StageStateCluster, start)
	}

	// The user clustering runs zero-copy against Û's flat matrix.
	u := att.Matrix()
	if cfg.KUsers > 0 && u.Rows() >= cfg.KUsers {
		start = time.Now()
		if a.Clusters, err = cluster.KMeansDense(u, cluster.KMeansConfig{
			K: cfg.KUsers, Seed: cfg.Seed, Restarts: 2, Workers: cfg.Workers,
		}); err != nil {
			return nil, fmt.Errorf("report: figure 7: %w", err)
		}
		cfg.Metrics.observe(StageUserCluster, start)
	}
	if len(cfg.SweepKs) > 0 && u.Rows() > maxInt(cfg.SweepKs) {
		start = time.Now()
		if a.Sweep, err = cluster.SweepKDense(u, cfg.SweepKs, cfg.Seed, cfg.SilhouetteSample, cfg.Workers); err != nil {
			return nil, fmt.Errorf("report: k sweep: %w", err)
		}
		cfg.Metrics.observe(StageSweep, start)
	}
	return a, nil
}

func maxInt(xs []int) int {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Render produces the complete textual report, every table and figure in
// paper order.
func (a *Analysis) Render() string {
	var b strings.Builder
	b.WriteString("=== Table I: dataset statistics ===\n")
	b.WriteString(TableIText(a.Stats))
	b.WriteString("\n=== Figure 2 ===\n")
	b.WriteString(UsersPerOrganText(a.Popularity))
	b.WriteString(SpearmanText(a.Spearman))
	b.WriteString("\n")
	b.WriteString(MultiOrganText(a.MultiTweets, a.MultiUsers))
	b.WriteString("\n=== Figure 3 ===\n")
	b.WriteString(OrganCharacterizationText(a.Organs))
	b.WriteString("\n=== Figure 4 ===\n")
	b.WriteString(RegionCharacterizationText(a.Regions))
	b.WriteString(RegionHistogramsText(a.Regions))
	b.WriteString("\n=== Figure 5 ===\n")
	b.WriteString(HighlightText(a.Highlight))
	if a.Dendrogram != nil {
		b.WriteString("\n=== Figure 6 ===\n")
		b.WriteString(SimilarityHeatmapText(a.StateDist, a.StateCodes, a.Dendrogram))
	}
	if a.Clusters != nil {
		b.WriteString("\n=== Figure 7 ===\n")
		b.WriteString(UserClustersText(a.Clusters, a.Attention.Users()))
	}
	if len(a.Sweep) > 0 {
		b.WriteString("\n")
		b.WriteString(SweepText(a.Sweep))
	}
	return b.String()
}
