package report

import (
	"strings"
	"testing"
	"time"

	"donorsense/internal/cluster"
	"donorsense/internal/core"
	"donorsense/internal/organ"
	"donorsense/internal/pipeline"
	"donorsense/internal/stats"
)

func TestTableIText(t *testing.T) {
	s := pipeline.TableI{
		Start:            time.Date(2015, 4, 22, 0, 0, 0, 0, time.UTC),
		End:              time.Date(2016, 5, 11, 0, 0, 0, 0, time.UTC),
		Days:             385,
		TweetsCollected:  134986,
		TotalCollected:   975021,
		Users:            71947,
		AvgTweetsPerDay:  350,
		AvgTweetsPerUser: 1.88,
		OrgansPerTweet:   1.03,
		OrgansPerUser:    1.13,
		GeoTagRate:       0.014,
	}
	out := TableIText(s)
	for _, want := range []string{"134986", "975021", "71947", "385", "1.88", "1.03", "1.13", "Apr 22 2015", "May 11 2016"} {
		if !strings.Contains(out, want) {
			t.Errorf("TableIText missing %q:\n%s", want, out)
		}
	}
}

func TestUsersPerOrganTextOrdersByPopularity(t *testing.T) {
	var counts [organ.Count]int
	counts[organ.Heart.Index()] = 1000
	counts[organ.Kidney.Index()] = 500
	counts[organ.Intestine.Index()] = 3
	out := UsersPerOrganText(counts)
	hi := strings.Index(out, "heart")
	ki := strings.Index(out, "kidney")
	ii := strings.Index(out, "intestine")
	if !(hi < ki && ki < ii) {
		t.Errorf("popularity order wrong:\n%s", out)
	}
	// Log-scale bars: 1000 vs 3 must not be ~333x longer.
	lines := strings.Split(out, "\n")
	var heartBar, intBar int
	for _, l := range lines {
		if strings.Contains(l, "heart") {
			heartBar = strings.Count(l, "#")
		}
		if strings.Contains(l, "intestine") {
			intBar = strings.Count(l, "#")
		}
	}
	if heartBar == 0 || intBar == 0 {
		t.Fatalf("missing bars:\n%s", out)
	}
	if heartBar > intBar*10 {
		t.Errorf("bars look linear, not log: %d vs %d", heartBar, intBar)
	}
}

func TestMultiOrganText(t *testing.T) {
	var tweets, users [organ.Count]int
	tweets[0], users[0] = 1000, 600
	tweets[1], users[1] = 20, 80
	out := MultiOrganText(tweets, users)
	if !strings.Contains(out, "1000") || !strings.Contains(out, "600") {
		t.Errorf("counts missing:\n%s", out)
	}
}

func buildSmallCharacterization(t *testing.T) (*core.Attention, map[int64]string) {
	t.Helper()
	b := core.NewAttentionBuilder()
	states := map[int64]string{}
	var m [organ.Count]int
	for i := int64(1); i <= 30; i++ {
		m = [organ.Count]int{}
		m[int(i)%organ.Count] = 2
		m[(int(i)+1)%organ.Count] = 1
		b.Observe(i, m)
		if i%2 == 0 {
			states[i] = "KS"
		} else {
			states[i] = "TX"
		}
	}
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return a, states
}

func TestOrganCharacterizationText(t *testing.T) {
	a, _ := buildSmallCharacterization(t)
	oc, err := core.CharacterizeOrgans(a)
	if err != nil {
		t.Fatal(err)
	}
	out := OrganCharacterizationText(oc)
	for _, name := range organ.Names() {
		if !strings.Contains(out, "["+name+"]") {
			t.Errorf("missing organ %s:\n%s", name, out)
		}
	}
}

func TestRegionCharacterizationText(t *testing.T) {
	a, states := buildSmallCharacterization(t)
	rc, err := core.CharacterizeRegions(a, states)
	if err != nil {
		t.Fatal(err)
	}
	out := RegionCharacterizationText(rc)
	if !strings.Contains(out, "KS") || !strings.Contains(out, "TX") {
		t.Errorf("states missing:\n%s", out)
	}
	if strings.Contains(out, "WY") {
		t.Errorf("empty state rendered:\n%s", out)
	}
}

func TestHighlightText(t *testing.T) {
	b := core.NewAttentionBuilder()
	states := map[int64]string{}
	for i := int64(1); i <= 40; i++ {
		var m [organ.Count]int
		switch {
		case i <= 20:
			m[organ.Kidney.Index()] = 1
			states[i] = "KS"
		case i <= 23:
			// A few kidney mentions outside KS so the RR is defined.
			m[organ.Kidney.Index()] = 1
			states[i] = "TX"
		default:
			m[organ.Heart.Index()] = 1
			states[i] = "TX"
		}
		b.Observe(i, m)
	}
	a, _ := b.Build()
	h, err := core.HighlightOrgans(a, states)
	if err != nil {
		t.Fatal(err)
	}
	out := HighlightText(h)
	if !strings.Contains(out, "KS") || !strings.Contains(out, "kidney") {
		t.Errorf("KS kidney missing:\n%s", out)
	}
	if !strings.Contains(out, "RR=") {
		t.Errorf("no RR values:\n%s", out)
	}
}

func TestSimilarityHeatmapAndDendrogram(t *testing.T) {
	rows := [][]float64{
		{0.9, 0.1, 0, 0, 0, 0},
		{0.85, 0.15, 0, 0, 0, 0},
		{0.1, 0.9, 0, 0, 0, 0},
		{0.15, 0.85, 0, 0, 0, 0},
	}
	codes := []string{"AA", "BB", "CC", "DD"}
	dist, err := cluster.PairwiseMatrix(rows, cluster.Hellinger)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := cluster.Agglomerative(dist, cluster.AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	heat := SimilarityHeatmapText(dist, codes, dg)
	if !strings.Contains(heat, "AA") || !strings.Contains(heat, "order:") {
		t.Errorf("heatmap malformed:\n%s", heat)
	}
	// Leaf order must keep the similar pairs adjacent.
	orderLine := heat[strings.Index(heat, "order:"):]
	ai := strings.Index(orderLine, "AA")
	bi := strings.Index(orderLine, "BB")
	ci := strings.Index(orderLine, "CC")
	di := strings.Index(orderLine, "DD")
	pairTogether := func(x, y, other1, other2 int) bool {
		return (x < other1 && x < other2 && y < other1 && y < other2) ||
			(x > other1 && x > other2 && y > other1 && y > other2)
	}
	if !pairTogether(ai, bi, ci, di) {
		t.Errorf("similar states not adjacent:\n%s", heat)
	}
	dtxt := DendrogramText(dg, codes)
	if !strings.Contains(dtxt, "h=") || !strings.Contains(dtxt, "- AA") {
		t.Errorf("dendrogram malformed:\n%s", dtxt)
	}
}

func TestUserClustersText(t *testing.T) {
	rows := [][]float64{
		{1, 0, 0, 0, 0, 0}, {1, 0, 0, 0, 0, 0},
		{0, 1, 0, 0, 0, 0}, {0, 1, 0, 0, 0, 0}, {0, 1, 0, 0, 0, 0},
	}
	res, err := cluster.KMeans(rows, cluster.KMeansConfig{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := UserClustersText(res, len(rows))
	if !strings.Contains(out, "cluster") || !strings.Contains(out, "%") {
		t.Errorf("clusters text malformed:\n%s", out)
	}
	// Largest cluster (kidney, 60%) must print before the smaller one.
	if strings.Index(out, "60.0%") > strings.Index(out, "40.0%") {
		t.Errorf("clusters not size-ordered:\n%s", out)
	}
}

func TestSweepText(t *testing.T) {
	out := SweepText([]cluster.SweepResult{
		{K: 6, Silhouette: 0.8, Inertia: 120, AvgSize: 100, MinSize: 4},
		{K: 12, Silhouette: 0.95, Inertia: 60, AvgSize: 50, MinSize: 2},
	})
	if !strings.Contains(out, "12") || !strings.Contains(out, "0.95") {
		t.Errorf("sweep text malformed:\n%s", out)
	}
}

func TestSpearmanText(t *testing.T) {
	out := SpearmanText(stats.SpearmanResult{R: 0.829, P: 0.042, N: 6})
	if !strings.Contains(out, "0.829") || !strings.Contains(out, "0.042") {
		t.Errorf("spearman text malformed: %s", out)
	}
}

func TestLogBarEdgeCases(t *testing.T) {
	if logBar(0, 100, 40) != "" {
		t.Error("zero count should render empty bar")
	}
	if logBar(5, 0, 40) != "" {
		t.Error("zero max should render empty bar")
	}
	if got := logBar(1, 1000000, 40); len(got) < 1 || len(got) > 3 {
		t.Errorf("tiny count bar = %q, want 1-3 chars", got)
	}
}

func TestRegionHistogramsText(t *testing.T) {
	a, states := buildSmallCharacterization(t)
	rc, err := core.CharacterizeRegions(a, states)
	if err != nil {
		t.Fatal(err)
	}
	out := RegionHistogramsText(rc)
	if !strings.Contains(out, "KS") || !strings.Contains(out, "▇") {
		t.Errorf("histogram view malformed:\n%s", out)
	}
	// Empty states do not render.
	if strings.Contains(out, "WY") {
		t.Errorf("empty state rendered:\n%s", out)
	}
}
