package report

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"donorsense/internal/cluster"
	"donorsense/internal/obs"
)

// EngineMetrics instruments the incremental engine: refresh latency, the
// attention epoch, and the rows applied by the last refresh. Attach via
// Engine.SetMetrics.
type EngineMetrics struct {
	refresh *obs.Histogram
	epoch   *obs.Gauge
	dirty   *obs.Gauge
}

// NewEngineMetrics registers the analytics metric families on reg.
func NewEngineMetrics(reg *obs.Registry) *EngineMetrics {
	return &EngineMetrics{
		refresh: reg.Histogram("donorsense_analytics_refresh_seconds",
			"Incremental analysis refresh latency (delta drain through full report assembly).",
			obs.ExpBuckets(0.001, 2, 14)),
		epoch: reg.Gauge("donorsense_analytics_epoch",
			"Attention matrix epoch: patches applied since the last cold build."),
		dirty: reg.Gauge("donorsense_analytics_dirty_rows",
			"User rows applied by the last analysis refresh."),
	}
}

// engineWarmBlob is the gob shape of the persisted clustering warm state
// — the checkpoint v4 analytics payload. Only the K-Means state is worth
// persisting: it is O(users); the pairwise cache is O(states²) and
// rebuilds in microseconds.
type engineWarmBlob struct {
	KMeans *cluster.KMeansWarmState
}

// MarshalWarm serializes the clustering warm state for checkpointing
// (Dataset.SetAnalyticsState). Returns nil when there is nothing to
// persist yet.
func (e *Engine) MarshalWarm() ([]byte, error) {
	if e.kmWarm == nil {
		return nil, nil
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(engineWarmBlob{KMeans: e.kmWarm}); err != nil {
		return nil, fmt.Errorf("report: marshal warm state: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreWarm loads a blob produced by MarshalWarm, seeding the next
// refresh's K-Means resume. The restored state is validated against the
// data at use time (KMeansDenseWarm falls back to a cold start on any
// mismatch), so restoring a stale blob is safe. A nil/empty blob is a
// no-op.
func (e *Engine) RestoreWarm(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	var blob engineWarmBlob
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&blob); err != nil {
		return fmt.Errorf("report: restore warm state: %w", err)
	}
	e.kmWarm = blob.KMeans
	return nil
}
