package pipeline

import (
	"donorsense/internal/geo"
	"donorsense/internal/userstore"
)

// Merge folds the state of another dataset into this one. It is the
// combine step of sharded collection: N shard collectors each build a
// Dataset over their hash-partition of the stream, and merging the shard
// outputs (in any order, any grouping) yields statistics bit-identical
// to one process consuming the whole stream.
//
// The fold is associative and commutative:
//
//   - Counters (totalCollected, usTweets, geoTagged, mentionSum) and the
//     Figure 2(b) histogram are key-wise sums.
//   - The collection window is min(firstTweet) / max(lastTweet).
//   - Per-user records for distinct user ids are unioned. When the same
//     user id appears on both sides (impossible under user-id hash
//     partitioning, but Merge does not assume it), the counts sum and
//     the identity fields (StateCode, GeoTagged) follow the record with
//     the earlier first retained tweet — ties broken by smaller first
//     tweet id, then lexicographic StateCode, then GeoTagged false
//     before true. The tie-break is a total order on the identity key,
//     which is what makes conflicting merges order-insensitive.
//   - Deletion-tracking contribution records are unioned when every
//     input tracks them; if either side does not, tracking is disabled
//     on the result (a delete notice could not be honored exactly).
//     Status ids are globally unique in a real stream, so cross-shard
//     contribution collisions are undefined input; Merge keeps the
//     receiver's record.
//   - The geocode memo is unioned best-effort (it is a cache; it cannot
//     change results). The stream cursor is reset to zero: a merged
//     dataset has no single upstream position.
//
// Merge takes ownership of other's user records and must be the last use
// of other. Merging a dataset into itself is not allowed.
func (d *Dataset) Merge(other *Dataset) {
	if other == nil || other == d {
		return
	}
	d.totalCollected += other.totalCollected
	d.usTweets += other.usTweets
	d.geoTagged += other.geoTagged
	d.mentionSum += other.mentionSum
	if d.firstTweet.IsZero() || (!other.firstTweet.IsZero() && other.firstTweet.Before(d.firstTweet)) {
		d.firstTweet = other.firstTweet
	}
	if other.lastTweet.After(d.lastTweet) {
		d.lastTweet = other.lastTweet
	}
	for k, n := range other.organsPerTweet {
		d.organsPerTweet[k] += n
	}

	os := other.store
	for row := int32(0); row < int32(os.Len()); row++ {
		id := os.ID(row)
		drow, ok := d.store.Find(id)
		if !ok {
			drow = d.store.Insert(id, os.StateCode(row), os.Flags(row),
				os.FirstSeen(row), os.FirstTweetID(row))
		} else if rowBefore(os, row, d.store, drow) {
			d.store.SetIdentity(drow, os.StateCode(row), os.Flags(row),
				os.FirstSeen(row), os.FirstTweetID(row))
		}
		d.store.AddCounts(drow, os.Tweets(row), os.Clinical(row), os.Hashtags(row))
		dst := d.store.MentionsRow(drow)
		for i, v := range os.MentionsRow(row) {
			dst[i] += v
		}
	}

	if d.contributions == nil || other.contributions == nil {
		d.contributions = nil
	} else {
		for id, c := range other.contributions {
			if _, ok := d.contributions[id]; !ok {
				d.contributions[id] = c
			}
		}
	}

	other.locCache.each(func(k string, v geo.Location) { d.locCache.put(k, v) })
	d.cursor = 0
	if d.metrics != nil {
		d.metrics.updateSizes(d)
	}
}

// rowBefore reports whether store a's row ar has the earlier first
// retained tweet under the documented merge tie-break order: first-seen
// time, then tweet id, then state code, then geo-tag flag. It is a
// strict weak order; rows equal under all four keys compare false both
// ways (either wins, and their identity fields are identical anyway).
func rowBefore(a *userstore.Store, ar int32, b *userstore.Store, br int32) bool {
	if a.FirstSeen(ar) != b.FirstSeen(br) {
		return a.FirstSeen(ar) < b.FirstSeen(br)
	}
	if a.FirstTweetID(ar) != b.FirstTweetID(br) {
		return a.FirstTweetID(ar) < b.FirstTweetID(br)
	}
	if a.StateCode(ar) != b.StateCode(br) {
		return a.StateCode(ar) < b.StateCode(br)
	}
	return !a.GeoTagged(ar) && b.GeoTagged(br)
}
